package cape

import (
	"fmt"
	"testing"
)

// TestGoldenRunningExample pins the exact ranked output of the running
// example — a regression net over the whole pipeline (engine grouping,
// chi-square goodness-of-fit, local/global pattern semantics, relevance,
// refinement, distance, NORM, scoring, top-k). Any change to these
// numbers is a semantic change and must be deliberate.
func TestGoldenRunningExample(t *testing.T) {
	s := NewSession(RunningExample())
	s.SetMetric(NewMetric().SetFunc("year", NumericDistance{Scale: 4}))
	err := s.Mine(MiningOptions{
		MaxPatternSize: 3,
		Thresholds:     Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Patterns()); got != 14 {
		t.Errorf("mined patterns = %d, want 14", got)
	}

	expls, stats, err := s.Ask(
		[]string{"author", "venue", "year"}, Count(),
		Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		Low, ExplainOptions{K: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelevantPatterns != 11 {
		t.Errorf("relevant patterns = %d, want 11", stats.RelevantPatterns)
	}

	type golden struct {
		tuple string
		score string
	}
	want := []golden{
		{"(AX, ICDE, 2007)", "6.35"},   // [year]: author,venue — NORM = 1 (the question tuple's own count)
		{"(AX, SIGKDD, 2006)", "6.00"}, // [venue]: author,year — adjacent year
		{"(AX, SIGKDD, 2008)", "6.00"},
		{"(AX, ICDE, 2007)", "5.20"},   // [author]: venue,year view of the same counterbalance
		{"(AX, SIGKDD, 2006)", "4.16"}, // total-order tie-break (smaller key) over 2008 at 4.16
	}
	if len(expls) != len(want) {
		t.Fatalf("explanations = %d, want %d", len(expls), len(want))
	}
	for i, w := range want {
		got := golden{
			tuple: renderByAttr(expls[i], "author", "venue", "year"),
			score: fmt.Sprintf("%.2f", expls[i].Score),
		}
		if got != w {
			t.Errorf("rank %d = %+v, want %+v", i+1, got, w)
		}
	}
}

// renderByAttr formats the explanation tuple in a fixed attribute order
// regardless of the pattern's internal ordering.
func renderByAttr(e Explanation, attrs ...string) string {
	out := "("
	for i, want := range attrs {
		if i > 0 {
			out += ", "
		}
		found := false
		for j, a := range e.Attrs {
			if a == want {
				out += e.Tuple[j].String()
				found = true
				break
			}
		}
		if !found {
			out += "·"
		}
	}
	return out + ")"
}

// TestGoldenBaseline pins the baseline's running-example output.
func TestGoldenBaseline(t *testing.T) {
	tab := RunningExample()
	q := Question{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      Count(),
		Values:   Tuple{String("AX"), String("SIGKDD"), Int(2007)},
		AggValue: Int(1),
		Dir:      Low,
	}
	expls, err := ExplainBaseline(q, tab,
		BaselineOptions{K: 3, Metric: NewMetric().SetFunc("year", NumericDistance{Scale: 4})})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) != 3 {
		t.Fatalf("baseline explanations = %d", len(expls))
	}
	top := expls[0]
	if top.Tuple[1].Str() != "ICDE" || top.Tuple[2].Int() != 2007 {
		t.Errorf("baseline top = %s", top)
	}
	if got := fmt.Sprintf("%.2f", top.Score); got != "6.35" {
		t.Errorf("baseline top score = %s, want 6.35", got)
	}
}
