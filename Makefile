GO ?= go

.PHONY: all build test check check-full bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The gate every PR must pass: vet, staticcheck (when installed — CI
# always has it; locally it is skipped rather than failing on a missing
# binary), build, the full suite under the race detector (the parallel
# generator, sharded cache, batch worker pool, morsel executor, and
# concurrent columnar builds are only meaningfully exercised with
# -race), the fuzz seed corpora as a smoke pass (fuzzing off — seeds
# only, so a corpus regression fails fast and deterministically), and
# the benchscale identity pass under -race at 4 workers, which drives
# the whole morsel-parallel mining stack and byte-compares it to the
# sequential dense reference, the benchload identity pass, which
# answers the same questions against 1-shard and 2-shard deployments of
# the scatter-gather coordinator and byte-compares the explanations,
# and the benchserve identity pass, which byte-compares indexed against
# linear-scan generation and cache-on against cache-off serving,
# including cached replays across appends.
check:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run '^Fuzz' ./...
	$(GO) test -run Recovery -race -short ./internal/store
	$(GO) run -race ./cmd/capebench benchscale -smoke -parallel 4
	$(GO) run -race ./cmd/capebench benchload -smoke
	$(GO) run -race ./cmd/capebench benchserve -smoke

# check plus the exhaustive crash matrix: every syscall boundary of the
# WAL store crashed under every fsync policy and crash-image variant,
# against the larger workload (-crashfull). The sampled matrix already
# runs inside check's -race suite; this is the nightly-strength pass.
check-full: check
	$(GO) test -race -timeout 20m -run Recovery ./internal/store -crashfull

# Performance trajectory: the explanation worker-count sweep, the
# GroupBy hot path, and the offline-mining fast path, plus the capebench
# runs that write BENCH_explain.json, BENCH_mine.json, BENCH_batch.json,
# BENCH_engine.json, BENCH_incr.json, BENCH_scale.json,
# BENCH_load.json and BENCH_serve.json.
bench:
	$(GO) test -bench 'BenchmarkGenOptParallel|BenchmarkGroupBy$$|BenchmarkARPMine|BenchmarkFitShared' -benchmem -run XXX ./...
	$(GO) run ./cmd/capebench benchexplain
	$(GO) run ./cmd/capebench benchmine
	$(GO) run ./cmd/capebench benchbatch
	$(GO) run ./cmd/capebench benchengine
	$(GO) run ./cmd/capebench benchincr
	$(GO) run ./cmd/capebench benchscale
	$(GO) run ./cmd/capebench benchload
	$(GO) run ./cmd/capebench benchserve

clean:
	$(GO) clean ./...
