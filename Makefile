GO ?= go

.PHONY: all build test check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The gate every PR must pass: vet, build, and the full suite under the
# race detector (the parallel generator and sharded cache are only
# meaningfully exercised with -race).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Performance trajectory: the explanation worker-count sweep, the
# GroupBy hot path, and the offline-mining fast path, plus the capebench
# runs that write BENCH_explain.json and BENCH_mine.json.
bench:
	$(GO) test -bench 'BenchmarkGenOptParallel|BenchmarkGroupBy$$|BenchmarkARPMine|BenchmarkFitShared' -benchmem -run XXX ./...
	$(GO) run ./cmd/capebench benchexplain
	$(GO) run ./cmd/capebench benchmine

clean:
	$(GO) clean ./...
