GO ?= go

.PHONY: all build test check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The gate every PR must pass: vet, build, and the full suite under the
# race detector (the parallel generator and sharded cache are only
# meaningfully exercised with -race).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# Performance trajectory: the explanation worker-count sweep and the
# GroupBy hot path, plus the capebench run that writes BENCH_explain.json.
bench:
	$(GO) test -bench 'BenchmarkGenOptParallel|BenchmarkGroupBy$$' -benchmem -run XXX ./...
	$(GO) run ./cmd/capebench benchexplain

clean:
	$(GO) clean ./...
