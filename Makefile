GO ?= go

.PHONY: all build test check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The gate every PR must pass: vet, build, the full suite under the
# race detector (the parallel generator, sharded cache, and batch worker
# pool are only meaningfully exercised with -race), and the fuzz seed
# corpora as a smoke pass (fuzzing off — seeds only, so a corpus
# regression fails fast and deterministically).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run '^Fuzz' ./...

# Performance trajectory: the explanation worker-count sweep, the
# GroupBy hot path, and the offline-mining fast path, plus the capebench
# runs that write BENCH_explain.json, BENCH_mine.json and
# BENCH_batch.json.
bench:
	$(GO) test -bench 'BenchmarkGenOptParallel|BenchmarkGroupBy$$|BenchmarkARPMine|BenchmarkFitShared' -benchmem -run XXX ./...
	$(GO) run ./cmd/capebench benchexplain
	$(GO) run ./cmd/capebench benchmine
	$(GO) run ./cmd/capebench benchbatch

clean:
	$(GO) clean ./...
