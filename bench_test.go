package cape

// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one per experiment. Run with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmarks carry the experiment parameters in their names
// (dataset/D=<rows>/A=<attrs> etc.), so -bench can select a single series,
// e.g. -bench 'Fig3b/D=10000'.

import (
	"fmt"
	"testing"
)

func crimeTable(b *testing.B, rows, attrs int) *Table {
	b.Helper()
	return GenerateCrime(CrimeConfig{Rows: rows, Seed: 1, NumAttrs: attrs})
}

func dblpTable(b *testing.B, rows int) *Table {
	b.Helper()
	return GenerateDBLP(DBLPConfig{Rows: rows, Seed: 1})
}

func benchThresholds() Thresholds {
	return Thresholds{Theta: 0.5, LocalSupport: 5, Lambda: 0.5, GlobalSupport: 5}
}

func benchMiningOpts(attrs []string, psi int) MiningOptions {
	return MiningOptions{
		MaxPatternSize: psi,
		Attributes:     attrs,
		Thresholds:     benchThresholds(),
		AggFuncs:       []AggFunc{AggCount, AggSum},
	}
}

// BenchmarkFig3a_MiningVariantsByAttrs is Figure 3a: mining runtime vs
// attribute count for the four miner variants on the Crime data. NAIVE
// only runs at A=4 (the paper omitted its larger points too).
func BenchmarkFig3a_MiningVariantsByAttrs(b *testing.B) {
	variants := []struct {
		name string
		run  func(*Table, MiningOptions) (*MiningResult, error)
	}{
		{"NAIVE", MinePatternsNaive},
		{"CUBE", MinePatternsCube},
		{"SHARE-GRP", MinePatternsShareGrp},
		{"ARP-MINE", MinePatterns},
	}
	for _, a := range []int{4, 5, 6} {
		tab := crimeTable(b, 2000, a)
		opt := benchMiningOpts(tab.Schema().Names(), 4)
		for _, v := range variants {
			if v.name == "NAIVE" && a > 4 {
				continue
			}
			b.Run(fmt.Sprintf("A=%d/%s", a, v.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := v.run(tab, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3b_MiningByRowsCrime is Figure 3b: mining runtime vs row
// count on Crime (A=7), ARP-MINE vs SHARE-GRP vs CUBE.
func BenchmarkFig3b_MiningByRowsCrime(b *testing.B) {
	for _, d := range []int{2000, 5000, 10000} {
		tab := crimeTable(b, d, 7)
		opt := benchMiningOpts(tab.Schema().Names(), 3)
		for _, v := range []struct {
			name string
			run  func(*Table, MiningOptions) (*MiningResult, error)
		}{
			{"CUBE", MinePatternsCube},
			{"SHARE-GRP", MinePatternsShareGrp},
			{"ARP-MINE", MinePatterns},
		} {
			b.Run(fmt.Sprintf("D=%d/%s", d, v.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := v.run(tab, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3c_MiningByRowsDBLP is Figure 3c: mining runtime vs row
// count on DBLP.
func BenchmarkFig3c_MiningByRowsDBLP(b *testing.B) {
	for _, d := range []int{2000, 5000, 10000} {
		tab := dblpTable(b, d)
		opt := benchMiningOpts([]string{"author", "year", "venue"}, 3)
		b.Run(fmt.Sprintf("D=%d/ARP-MINE", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MinePatterns(tab, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4_SubtaskBreakdown is Figure 4: it reports the regression
// and query shares of one ARP-MINE run as custom metrics (ns per op).
func BenchmarkFig4_SubtaskBreakdown(b *testing.B) {
	for _, a := range []int{4, 6} {
		tab := crimeTable(b, 2000, a)
		opt := benchMiningOpts(tab.Schema().Names(), 4)
		b.Run(fmt.Sprintf("A=%d/ARP-MINE", a), func(b *testing.B) {
			var regress, query int64
			for i := 0; i < b.N; i++ {
				res, err := MinePatterns(tab, opt)
				if err != nil {
					b.Fatal(err)
				}
				regress += int64(res.Timers.Regression)
				query += int64(res.Timers.Query)
			}
			b.ReportMetric(float64(regress)/float64(b.N), "regress-ns/op")
			b.ReportMetric(float64(query)/float64(b.N), "query-ns/op")
		})
	}
}

// BenchmarkFig5_FDOptimization is Figure 5: ARP-MINE with the functional
// dependency optimizations on versus off, on the FD-rich 10-attribute
// Crime schema.
func BenchmarkFig5_FDOptimization(b *testing.B) {
	tab := crimeTable(b, 5000, 10)
	for _, useFDs := range []bool{false, true} {
		opt := benchMiningOpts(tab.Schema().Names(), 3)
		opt.UseFDs = useFDs
		name := "FDs=off"
		if useFDs {
			name = "FDs=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MinePatterns(tab, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// explBenchSetup mines a lenient pattern pool and fixes one question.
func explBenchSetup(b *testing.B, tab *Table, attrs, qAttrs []string) ([]*MinedPattern, Question, *Metric) {
	b.Helper()
	res, err := MinePatterns(tab, MiningOptions{
		MaxPatternSize: 3,
		Attributes:     attrs,
		Thresholds:     Thresholds{Theta: 0.1, LocalSupport: 3, Lambda: 0.1, GlobalSupport: 2},
		AggFuncs:       []AggFunc{AggCount},
	})
	if err != nil {
		b.Fatal(err)
	}
	grouped, err := tab.GroupBy(qAttrs, []AggSpec{Count()})
	if err != nil {
		b.Fatal(err)
	}
	// The largest group — the paper's worst-case bias.
	var best Tuple
	bestN := int64(-1)
	aggIdx := len(qAttrs)
	for _, row := range grouped.Rows() {
		if n := row[aggIdx].Int(); n > bestN {
			bestN = n
			best = row.Clone()
		}
	}
	q, err := QuestionFromRow(qAttrs, Count(), best, Low)
	if err != nil {
		b.Fatal(err)
	}
	metric := NewMetric().SetFunc("year", NumericDistance{Scale: 4})
	return res.Patterns, q, metric
}

// BenchmarkFig6a_ExplainDBLP is Figure 6a: explanation generation on
// DBLP, naive vs bound-pruned.
func BenchmarkFig6a_ExplainDBLP(b *testing.B) {
	tab := dblpTable(b, 10000)
	patterns, q, metric := explBenchSetup(b, tab,
		[]string{"author", "venue", "year"}, []string{"author", "venue", "year"})
	b.Run("EXPLGEN-NAIVE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ExplainNaive(q, tab, patterns, ExplainOptions{K: 10, Metric: metric}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EXPLGEN-OPT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Explain(q, tab, patterns, ExplainOptions{K: 10, Metric: metric}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6b_ExplainCrime is Figure 6b: explanation generation on
// Crime.
func BenchmarkFig6b_ExplainCrime(b *testing.B) {
	tab := crimeTable(b, 10000, 6)
	patterns, q, metric := explBenchSetup(b, tab,
		[]string{"type", "community", "year", "month"},
		[]string{"type", "community", "year"})
	b.Run("EXPLGEN-NAIVE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ExplainNaive(q, tab, patterns, ExplainOptions{K: 10, Metric: metric}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EXPLGEN-OPT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Explain(q, tab, patterns, ExplainOptions{K: 10, Metric: metric}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6c_ExplainByQuestionWidth is Figure 6c: explanation
// runtime as the question's group-by width A_φ grows.
func BenchmarkFig6c_ExplainByQuestionWidth(b *testing.B) {
	tab := crimeTable(b, 10000, 7)
	attrs := []string{"type", "community", "year", "month", "district"}
	for aPhi := 2; aPhi <= 4; aPhi++ {
		patterns, q, metric := explBenchSetup(b, tab, attrs, attrs[:aPhi])
		b.Run(fmt.Sprintf("Aphi=%d", aPhi), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Explain(q, tab, patterns, ExplainOptions{K: 10, Metric: metric}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_PrecisionRun is Figure 7's unit of work: one full
// inject → re-mine → explain → check cycle at the recommended
// thresholds.
func BenchmarkFig7_PrecisionRun(b *testing.B) {
	tab := GenerateCrime(CrimeConfig{
		Rows: 10000, Seed: 7, NumAttrs: 5, NumTypes: 6, NumCommunities: 12,
	})
	metric := NewMetric().
		SetFunc("year", NumericDistance{Scale: 3}).
		SetFunc("community", NumericDistance{Scale: 2})
	cfg := PrecisionConfig{
		Table: tab,
		Spec:  SiteSpec{TypeAttr: "type", FragAttr: "community", PredAttr: "year", MinOutlierCount: 10},
		Mining: MiningOptions{
			MaxPatternSize: 3,
			Attributes:     []string{"type", "community", "year"},
			Thresholds:     Thresholds{Theta: 0.2, LocalSupport: 3, Lambda: 0.2, GlobalSupport: 5},
			AggFuncs:       []AggFunc{AggCount},
		},
		NumQuestions: 2,
		K:            10,
		Delta:        5,
		Metric:       metric,
	}
	for i := 0; i < b.N; i++ {
		if _, err := RunPrecisionExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3_RunningExample times the full table-3 pipeline (mine +
// explain) on the running example.
func BenchmarkTable3_RunningExample(b *testing.B) {
	tab := RunningExample()
	for i := 0; i < b.N; i++ {
		s := NewSession(tab)
		s.SetMetric(NewMetric().SetFunc("year", NumericDistance{Scale: 4}))
		err := s.Mine(MiningOptions{
			MaxPatternSize: 3,
			Thresholds:     Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
			AggFuncs:       []AggFunc{AggCount},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Ask([]string{"author", "venue", "year"}, Count(),
			Tuple{String("AX"), String("SIGKDD"), Int(2007)}, Low,
			ExplainOptions{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTables6and7_Baseline times the Appendix-A baseline explainer.
func BenchmarkTables6and7_Baseline(b *testing.B) {
	tab := crimeTable(b, 10000, 5)
	grouped, err := tab.GroupBy([]string{"type", "community", "year"}, []AggSpec{Count()})
	if err != nil {
		b.Fatal(err)
	}
	q, err := QuestionFromRow([]string{"type", "community", "year"}, Count(), grouped.Row(0), Low)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := ExplainBaseline(q, tab, BaselineOptions{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benches for DESIGN.md's called-out design choices ----

// BenchmarkAblation_SortOrderReuse isolates ARP-MINE's sort-order reuse
// against plain per-(F,V) sorting (SHARE-GRP) at equal query sharing.
func BenchmarkAblation_SortOrderReuse(b *testing.B) {
	tab := crimeTable(b, 5000, 6)
	opt := benchMiningOpts(tab.Schema().Names(), 4)
	b.Run("per-split-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MinePatternsShareGrp(tab, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MinePatterns(tab, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ScoreBoundPruning isolates the Section-3.5 upper
// score bound at a small K, where pruning bites hardest.
func BenchmarkAblation_ScoreBoundPruning(b *testing.B) {
	tab := dblpTable(b, 10000)
	patterns, q, metric := explBenchSetup(b, tab,
		[]string{"author", "venue", "year"}, []string{"author", "venue", "year"})
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("K=%d/naive", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ExplainNaive(q, tab, patterns, ExplainOptions{K: k, Metric: metric}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("K=%d/pruned", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Explain(q, tab, patterns, ExplainOptions{K: k, Metric: metric}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine_GroupBy measures the hash-aggregation hot path the
// miners are built on.
func BenchmarkEngine_GroupBy(b *testing.B) {
	tab := crimeTable(b, 20000, 7)
	aggs := []AggSpec{Count(), Sum("month")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.GroupBy([]string{"type", "community", "year"}, aggs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_Cube measures the cube operator CubeMine pays for.
func BenchmarkEngine_Cube(b *testing.B) {
	tab := crimeTable(b, 5000, 6)
	aggs := []AggSpec{Count()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Cube(tab.Schema().Names(), 2, 4, aggs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_NormVisitOrder compares the two pattern visit orders
// for the bound-pruned generator: ascending NORM (our default — largest
// possible scores first) versus descending NORM (the order the paper's
// prose literally states). Ascending should prune at least as much.
func BenchmarkAblation_NormVisitOrder(b *testing.B) {
	tab := crimeTable(b, 10000, 7)
	attrs := []string{"type", "community", "year", "month", "district"}
	patterns, q, metric := explBenchSetup(b, tab, attrs, attrs[:4])
	b.Run("ascending", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Explain(q, tab, patterns, ExplainOptions{K: 10, Metric: metric}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("descending", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Explain(q, tab, patterns, ExplainOptions{K: 10, Metric: metric, DescendingNorm: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenOptParallel sweeps the explanation worker count. On
// multi-core hosts the higher worker counts should approach proportional
// speedups; on a single vCPU the sweep mostly measures how cheap the
// coordination (atomic cursor, shared bound, singleflight cache) is.
func BenchmarkGenOptParallel(b *testing.B) {
	tab := dblpTable(b, 10000)
	patterns, q, metric := explBenchSetup(b, tab,
		[]string{"author", "venue", "year"}, []string{"author", "venue", "year"})
	for _, w := range []int{1, 2, 4, 8} {
		opt := ExplainOptions{K: 10, Metric: metric, Parallelism: w}
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Explain(q, tab, patterns, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ParallelMining compares sequential mining with a
// 4-worker fan-out over attribute sets. On multi-core hosts the parallel
// run should approach a proportional speedup; on a single vCPU it mostly
// measures coordination overhead.
func BenchmarkAblation_ParallelMining(b *testing.B) {
	tab := crimeTable(b, 5000, 7)
	for _, workers := range []int{1, 4} {
		opt := benchMiningOpts(tab.Schema().Names(), 3)
		opt.Parallelism = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MinePatterns(tab, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ExplainerCache compares cold per-question generation
// (Generate re-groups the relation for every refined pattern) against the
// warm-cache Explainer answering the same question repeatedly.
func BenchmarkAblation_ExplainerCache(b *testing.B) {
	tab := dblpTable(b, 10000)
	patterns, q, metric := explBenchSetup(b, tab,
		[]string{"author", "venue", "year"}, []string{"author", "venue", "year"})
	opt := ExplainOptions{K: 10, Metric: metric}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Explain(q, tab, patterns, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ex := NewExplainer(tab, patterns, opt)
		if _, _, err := ex.Explain(q); err != nil { // prime the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ex.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_PointLookupIndex compares SelectEq as a full scan
// against the hash-index path over the same column set.
func BenchmarkAblation_PointLookupIndex(b *testing.B) {
	tab := crimeTable(b, 20000, 5)
	cols := []string{"type", "community", "year"}
	key := tab.Row(0)[:3]
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tab.SelectEq(cols, Tuple(key)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		if err := tab.BuildIndex(cols); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tab.SelectEq(cols, Tuple(key)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
