package cape_test

import (
	"fmt"

	"cape"
)

// Example runs the paper's running example end to end: mine patterns
// over the mini-DBLP instance and explain why AX's SIGKDD 2007
// publication count is low.
func Example() {
	tab := cape.RunningExample()

	s := cape.NewSession(tab)
	s.SetMetric(cape.NewMetric().SetFunc("year", cape.NumericDistance{Scale: 4}))
	if err := s.Mine(cape.MiningOptions{
		MaxPatternSize: 3,
		Thresholds:     cape.Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []cape.AggFunc{cape.AggCount},
	}); err != nil {
		panic(err)
	}

	expls, _, err := s.Ask(
		[]string{"author", "venue", "year"}, cape.Count(),
		cape.Tuple{cape.String("AX"), cape.String("SIGKDD"), cape.Int(2007)},
		cape.Low, cape.ExplainOptions{K: 1},
	)
	if err != nil {
		panic(err)
	}
	top := expls[0]
	venue, year := "", int64(0)
	for i, a := range top.Attrs {
		switch a {
		case "venue":
			venue = top.Tuple[i].Str()
		case "year":
			year = top.Tuple[i].Int()
		}
	}
	fmt.Printf("top counterbalance: %s %d with %s = %s (%.2f above prediction)\n",
		venue, year, top.Refined.Agg, top.AggValue, top.Deviation)
	// Output:
	// top counterbalance: ICDE 2007 with count(*) = 7 (3.67 above prediction)
}

// ExampleRunSQL shows the SQL dialect the CLI exposes.
func ExampleRunSQL() {
	tab := cape.RunningExample()
	out, err := cape.RunSQL(
		"SELECT venue, count(*) AS n FROM pub WHERE author = 'AX' GROUP BY venue ORDER BY n DESC, venue",
		cape.SQLCatalog{"pub": tab},
	)
	if err != nil {
		panic(err)
	}
	for _, row := range out.Rows() {
		fmt.Printf("%s: %d\n", row[0], row[1].Int())
	}
	// Output:
	// ICDE: 23
	// VLDB: 20
	// SIGKDD: 17
}

// ExampleMinePatterns demonstrates direct miner use and the mined
// pattern's local models.
func ExampleMinePatterns() {
	tab := cape.RunningExample()
	res, err := cape.MinePatterns(tab, cape.MiningOptions{
		MaxPatternSize: 2,
		Attributes:     []string{"author", "year"},
		Thresholds:     cape.Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.5, GlobalSupport: 2},
		AggFuncs:       []cape.AggFunc{cape.AggCount},
	})
	if err != nil {
		panic(err)
	}
	for _, m := range res.Patterns {
		if m.Pattern.Model != cape.ModelConst || m.Pattern.F[0] != "author" {
			continue
		}
		fmt.Printf("%s holds for %d fragments\n", m.Pattern, m.GlobalSupport())
		if lm, ok := m.Local(cape.Tuple{cape.String("AX")}); ok {
			fmt.Printf("AX publishes about %.0f papers per year\n", lm.Model.Predict(nil))
		}
	}
	// Output:
	// [author]: year ~Const~> count(*) holds for 3 fragments
	// AX publishes about 12 papers per year
}

// ExampleExplanation_Narrate renders an explanation as prose.
func ExampleExplanation_Narrate() {
	tab := cape.RunningExample()
	s := cape.NewSession(tab)
	s.SetMetric(cape.NewMetric().SetFunc("year", cape.NumericDistance{Scale: 4}))
	if err := s.Mine(cape.MiningOptions{
		MaxPatternSize: 3,
		Thresholds:     cape.Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []cape.AggFunc{cape.AggCount},
	}); err != nil {
		panic(err)
	}
	q := cape.Question{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      cape.Count(),
		Values:   cape.Tuple{cape.String("AX"), cape.String("SIGKDD"), cape.Int(2007)},
		AggValue: cape.Int(1),
		Dir:      cape.Low,
	}
	expls, _, err := s.Explain(q, cape.ExplainOptions{K: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(expls[0].Narrate(q))
}
