package explain

import (
	"fmt"
	"strings"
)

// Narrate renders an explanation as prose in the style of the paper's
// Example 5 interpretation:
//
//	Even though the data follows the pattern "[author]: year ~Const~>
//	count(*)", count(*) = 1 for (author=AX, venue=SIGKDD, year=2007) is
//	lower than usual. A possible counterbalance: (author=AX, venue=ICDE,
//	year=2007) has count(*) = 7, which is 3.67 above the 3.33 its own
//	trend predicts.
//
// The question supplies the outcome the explanation accounts for.
func (e Explanation) Narrate(q UserQuestion) string {
	var sb strings.Builder

	direction := "lower"
	opposite := "above"
	if q.Dir == High {
		direction = "higher"
		opposite = "below"
	}

	fmt.Fprintf(&sb, "Even though the data follows the pattern %q, %s = %s for (",
		e.Relevant.String(), q.Agg, q.AggValue)
	for i, a := range q.GroupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", a, q.Values[i])
	}
	fmt.Fprintf(&sb, ") is %s than usual. A possible counterbalance: (", direction)
	for i, a := range e.Attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", a, e.Tuple[i])
	}
	dev := e.Deviation
	if dev < 0 {
		dev = -dev
	}
	fmt.Fprintf(&sb, ") has %s = %s, which is %.2f %s the %.2f its own trend (%q) predicts.",
		e.Refined.Agg, e.AggValue, dev, opposite, e.Predicted, e.Refined.String())
	return sb.String()
}
