package explain

import (
	"sync"
	"testing"

	"cape/internal/value"
)

// TestExplainerMatchesGenerate: the warm-cache path must return exactly
// what a cold Generate run returns.
func TestExplainerMatchesGenerate(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	opt := Options{K: 10, Metric: yearMetric()}
	ex := NewExplainer(tab, pats, opt)

	questions := []UserQuestion{
		sigkddQuestion(),
		{
			GroupBy:  []string{"author", "venue", "year"},
			Agg:      sigkddQuestion().Agg,
			Values:   value.Tuple{value.NewString("AX"), value.NewString("ICDE"), value.NewInt(2007)},
			AggValue: value.NewInt(7),
			Dir:      High,
		},
	}
	for qi, q := range questions {
		cold, _, err := Generate(q, tab, pats, opt)
		if err != nil {
			t.Fatal(err)
		}
		warm, _, err := ex.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(cold) != len(warm) {
			t.Fatalf("question %d: %d vs %d explanations", qi, len(cold), len(warm))
		}
		for i := range cold {
			if cold[i].Score != warm[i].Score || !cold[i].Tuple.Equal(warm[i].Tuple) {
				t.Errorf("question %d rank %d: %s vs %s", qi, i, cold[i], warm[i])
			}
		}
	}
	if ex.CachedGroupings() == 0 {
		t.Error("explainer cached nothing across two questions")
	}
}

// TestExplainerConcurrent hammers one Explainer from several goroutines;
// run under -race this verifies the shared cache locking.
func TestExplainerConcurrent(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	ex := NewExplainer(tab, pats, Options{K: 5, Metric: yearMetric()})
	q := sigkddQuestion()

	want, _, err := ex.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := ex.Explain(q)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(want) || got[0].Score != want[0].Score {
				t.Errorf("concurrent result differs")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestExplainerInvalidQuestion propagates validation errors.
func TestExplainerInvalidQuestion(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	ex := NewExplainer(tab, pats, Options{})
	if _, _, err := ex.Explain(UserQuestion{}); err == nil {
		t.Error("invalid question should error")
	}
}
