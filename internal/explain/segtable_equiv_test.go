package explain

import (
	"fmt"
	"testing"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
)

// segTableOf splits a table's rows into sealed segments plus an
// uncompressed tail, exercising the full segment-backed layout.
func segTableOf(t *testing.T, tab *engine.Table, nSegs, tailRows int) *engine.SegTable {
	t.Helper()
	n := tab.NumRows() - tailRows
	st := engine.NewSegTable(tab.Schema())
	per := n / nSegs
	for s := 0; s < nSegs; s++ {
		lo, hi := s*per, (s+1)*per
		if s == nSegs-1 {
			hi = n
		}
		w := engine.NewSegmentWriter(tab.Schema())
		for i := lo; i < hi; i++ {
			if err := w.Append(tab.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.AddSegment(w.Segment()); err != nil {
			t.Fatal(err)
		}
	}
	for i := n; i < tab.NumRows(); i++ {
		if err := st.AppendRows(tab.Rows()[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if st.NumRows() != tab.NumRows() {
		t.Fatalf("segtable has %d rows, want %d", st.NumRows(), tab.NumRows())
	}
	return st
}

// TestExplainSegTableEquivalence is the end-to-end differential test of
// the segment-backed path: mining and explanation generation over a
// SegTable (compressed segments + uncompressed tail) must produce
// identical patterns, identical explanations, and identical sequential
// Stats to the same pipeline over the dense Table.
func TestExplainSegTableEquivalence(t *testing.T) {
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 2500, Seed: 5})
	st := segTableOf(t, tab, 3, 137)

	attrs := []string{"author", "venue", "year"}
	pats := mineLenient(t, tab, attrs)
	segRes, err := mining.ARPMine(st, mining.Options{
		MaxPatternSize: 3,
		Attributes:     attrs,
		Thresholds:     pattern.Thresholds{Theta: 0.1, LocalSupport: 3, Lambda: 0.1, GlobalSupport: 2},
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(segRes.Patterns) != len(pats) {
		t.Fatalf("segment mining found %d patterns, dense %d", len(segRes.Patterns), len(pats))
	}
	for i := range pats {
		if segRes.Patterns[i].Pattern.Key() != pats[i].Pattern.Key() {
			t.Fatalf("pattern %d: segment %q, dense %q",
				i, segRes.Patterns[i].Pattern.Key(), pats[i].Pattern.Key())
		}
	}

	qs := sampleQuestions(t, tab, attrs, 4)
	qs = append(qs, sampleQuestions(t, tab, []string{"author", "year"}, 2)...)
	opt := Options{K: 8, Metric: metric, Parallelism: 1}
	for qi, q := range qs {
		label := fmt.Sprintf("question %d", qi)
		want, wantStats, err := GenOpt(q, tab, pats, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := GenOpt(q, st, segRes.Patterns, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, label+" GenOpt", want, got)
		requireStatsEqual(t, label+" GenOpt", wantStats, gotStats)

		wantN, wantNStats, err := GenNaive(q, tab, pats, opt)
		if err != nil {
			t.Fatal(err)
		}
		gotN, gotNStats, err := GenNaive(q, st, segRes.Patterns, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, label+" GenNaive", wantN, gotN)
		requireStatsEqual(t, label+" GenNaive", wantNStats, gotNStats)
	}
}
