package explain

import (
	"fmt"
	"sync"
	"testing"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// mineLenient mines a generously thresholded pattern pool over attrs.
func mineLenient(t testing.TB, tab *engine.Table, attrs []string) []*pattern.Mined {
	t.Helper()
	res, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Attributes:     attrs,
		Thresholds:     pattern.Thresholds{Theta: 0.1, LocalSupport: 3, Lambda: 0.1, GlobalSupport: 2},
		AggFuncs:       []engine.AggFunc{engine.Count},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("mining found no patterns")
	}
	return res.Patterns
}

// sampleQuestions builds questions from the first result rows of the
// aggregate query, alternating direction.
func sampleQuestions(t testing.TB, tab *engine.Table, groupBy []string, n int) []UserQuestion {
	t.Helper()
	grouped, err := tab.GroupBy(groupBy, []engine.AggSpec{{Func: engine.Count}})
	if err != nil {
		t.Fatal(err)
	}
	if grouped.NumRows() < n {
		n = grouped.NumRows()
	}
	out := make([]UserQuestion, 0, n)
	for i := 0; i < n; i++ {
		dir := Low
		if i%2 == 1 {
			dir = High
		}
		q, err := QuestionFromRow(groupBy, engine.AggSpec{Func: engine.Count}, grouped.Row(i), dir)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, q)
	}
	return out
}

// requireIdentical asserts two explanation lists match field for field.
func requireIdentical(t *testing.T, label string, want, got []Explanation) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d explanations", label, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		switch {
		case w.Score != g.Score,
			!w.Tuple.Equal(g.Tuple),
			w.key() != g.key(),
			w.Relevant.Key() != g.Relevant.Key(),
			w.Refined.Key() != g.Refined.Key(),
			w.Deviation != g.Deviation,
			w.Predicted != g.Predicted,
			w.Distance != g.Distance,
			w.Norm != g.Norm,
			!value.Equal(w.AggValue, g.AggValue):
			t.Errorf("%s rank %d differs:\n  seq: %s\n  par: %s", label, i, w, g)
		}
	}
}

// TestGenOptParallelDeterminism: GenOpt with Parallelism 8 must return
// exactly the same ranked explanations (scores, keys, order — every
// field) as Parallelism 1, on both sample dataset families.
func TestGenOptParallelDeterminism(t *testing.T) {
	cases := []struct {
		name    string
		tab     *engine.Table
		attrs   []string
		groupBy []string
		metric  *distance.Metric
	}{
		{
			name:    "dblp",
			tab:     dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 4000, Seed: 11}),
			attrs:   []string{"author", "venue", "year"},
			groupBy: []string{"author", "venue", "year"},
			metric:  distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4}),
		},
		{
			name:    "crime",
			tab:     dataset.GenerateCrime(dataset.CrimeConfig{Rows: 4000, Seed: 11, NumAttrs: 5}),
			attrs:   []string{"type", "community", "year", "month"},
			groupBy: []string{"type", "community", "year"},
			metric: distance.NewMetric().
				SetFunc("year", distance.Numeric{Scale: 3}).
				SetFunc("community", distance.Numeric{Scale: 2}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pats := mineLenient(t, tc.tab, tc.attrs)
			for qi, q := range sampleQuestions(t, tc.tab, tc.groupBy, 4) {
				seq, seqStats, err := GenOpt(q, tc.tab, pats, Options{K: 10, Metric: tc.metric, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				par, parStats, err := GenOpt(q, tc.tab, pats, Options{K: 10, Metric: tc.metric, Parallelism: 8})
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("question %d", qi), seq, par)
				// RefinementPairs is exact under concurrency; pruning
				// (and the candidate scans it skips) varies with the
				// bound's staleness.
				if seqStats.RefinementPairs != parStats.RefinementPairs {
					t.Errorf("question %d: refinement pairs %d vs %d",
						qi, seqStats.RefinementPairs, parStats.RefinementPairs)
				}
			}
		})
	}
}

// TestExplainerParallelMatchesSequential covers the Explainer path
// (shared cache + worker pool) against cold sequential generation.
func TestExplainerParallelMatchesSequential(t *testing.T) {
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 3000, Seed: 5})
	pats := mineLenient(t, tab, []string{"author", "venue", "year"})
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	ex := NewExplainer(tab, pats, Options{K: 10, Metric: metric, Parallelism: 8})
	for qi, q := range sampleQuestions(t, tab, []string{"author", "venue", "year"}, 3) {
		seq, _, err := GenOpt(q, tab, pats, Options{K: 10, Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := ex.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("question %d", qi), seq, par)
	}
}

// TestExplainerSingleflight: under 16 concurrent identical questions,
// each distinct group-by must be computed exactly once — the
// singleflight guarantee. The compute hook counts actual GroupBy
// executions (not lookups). Run with -race this also exercises the
// sharded cache locking.
func TestExplainerSingleflight(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	ex := NewExplainer(tab, pats, Options{K: 5, Metric: yearMetric(), Parallelism: 4})

	var mu sync.Mutex
	computes := make(map[string]int)
	ex.cache.onCompute = func(key string) {
		mu.Lock()
		computes[key]++
		mu.Unlock()
	}

	q := sigkddQuestion()
	want, _, err := GenOpt(q, tab, pats, Options{K: 5, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	start := make(chan struct{})
	results := make([][]Explanation, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], _, errs[i] = ex.Explain(q)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		requireIdentical(t, fmt.Sprintf("client %d", i), want, results[i])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(computes) == 0 {
		t.Fatal("no group-bys computed")
	}
	for key, n := range computes {
		if n != 1 {
			t.Errorf("grouping %q computed %d times, want exactly 1", key, n)
		}
	}
	if got := ex.CachedGroupings(); got != len(computes) {
		t.Errorf("CachedGroupings() = %d, want %d", got, len(computes))
	}
}

// TestGroupCacheErrorNotCached: a failed computation must propagate to
// concurrent waiters but not poison the cache — the next caller retries.
func TestGroupCacheErrorNotCached(t *testing.T) {
	c := newGroupCache()
	boom := fmt.Errorf("boom")
	if _, err := c.get("k", 1, func() (*engine.Table, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := c.len(); n != 0 {
		t.Fatalf("failed computation cached (%d entries)", n)
	}
	want := engine.NewTable(engine.Schema{{Name: "a", Kind: value.Int}})
	got, err := c.get("k", 1, func() (*engine.Table, error) { return want, nil })
	if err != nil || got != want {
		t.Fatalf("retry after error failed: %v, %v", got, err)
	}
	// Now a hit: compute must not run again.
	got, err = c.get("k", 1, func() (*engine.Table, error) { return nil, boom })
	if err != nil || got != want {
		t.Fatalf("cached hit failed: %v, %v", got, err)
	}
}

// TestGroupCacheEpochStaleness: an entry computed at an older epoch is
// recomputed on the next lookup at a newer epoch; matching epochs hit.
func TestGroupCacheEpochStaleness(t *testing.T) {
	c := newGroupCache()
	old := engine.NewTable(engine.Schema{{Name: "a", Kind: value.Int}})
	fresh := engine.NewTable(engine.Schema{{Name: "a", Kind: value.Int}})
	got, err := c.get("k", 1, func() (*engine.Table, error) { return old, nil })
	if err != nil || got != old {
		t.Fatalf("initial compute: %v, %v", got, err)
	}
	// Same epoch: cached result, compute must not run.
	got, err = c.get("k", 1, func() (*engine.Table, error) { t.Fatal("recomputed at same epoch"); return nil, nil })
	if err != nil || got != old {
		t.Fatalf("same-epoch hit: %v, %v", got, err)
	}
	// Newer epoch: the stale entry is replaced.
	got, err = c.get("k", 2, func() (*engine.Table, error) { return fresh, nil })
	if err != nil || got != fresh {
		t.Fatalf("stale entry not recomputed: %v, %v", got, err)
	}
	got, err = c.get("k", 2, func() (*engine.Table, error) { t.Fatal("recomputed at same epoch"); return nil, nil })
	if err != nil || got != fresh {
		t.Fatalf("post-refresh hit: %v, %v", got, err)
	}
	if n := c.len(); n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
}
