package explain

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/regress"
)

// structuralRelevant is the linear reference for Index.Relevant: the
// question-independent half of Definition 5, checked pattern by pattern
// in slice order.
func structuralRelevant(patterns []*pattern.Mined, groupBy []string, agg engine.AggSpec) []int32 {
	in := make(map[string]bool, len(groupBy))
	for _, a := range groupBy {
		in[a] = true
	}
	var out []int32
	for i, m := range patterns {
		if m.Pattern.Agg != agg {
			continue
		}
		ok := true
		for _, a := range m.Pattern.F {
			ok = ok && in[a]
		}
		for _, a := range m.Pattern.V {
			ok = ok && in[a]
		}
		if ok {
			out = append(out, int32(i))
		}
	}
	return out
}

// randomPool draws n structurally-valid patterns (distinct F and V,
// disjoint, duplicates across patterns allowed) over the given attribute
// vocabulary — at least 5 attributes, or the draws cannot terminate —
// mixing count(*) with sum aggregates so bucket keys differ by aggregate
// as well as attribute set.
func randomPool(rng *rand.Rand, vocab []string, n int) []*pattern.Mined {
	if len(vocab) < 5 {
		panic("randomPool needs at least 5 attributes")
	}
	draw := func(k int, excl map[string]bool) []string {
		var out []string
		seen := make(map[string]bool)
		for len(out) < k {
			a := vocab[rng.Intn(len(vocab))]
			if seen[a] || excl[a] {
				continue
			}
			seen[a] = true
			out = append(out, a)
		}
		return out
	}
	pool := make([]*pattern.Mined, n)
	for i := range pool {
		f := draw(1+rng.Intn(3), nil)
		fset := make(map[string]bool, len(f))
		for _, a := range f {
			fset[a] = true
		}
		v := draw(1+rng.Intn(2), fset)
		agg := engine.AggSpec{Func: engine.Count}
		if rng.Intn(3) == 0 {
			agg = engine.AggSpec{Func: engine.Sum, Arg: "m"}
		}
		pool[i] = &pattern.Mined{Pattern: pattern.Pattern{F: f, V: v, Agg: agg, Model: regress.Const}}
	}
	return pool
}

// TestIndexRelevantMatchesLinearScan: for random pattern pools and
// random group-bys, Index.Relevant must return exactly the positions the
// linear structural scan finds, in the same ascending order — across
// both lookup strategies (subset enumeration for small group-bys,
// bucket scan once 2^|G| outgrows the bucket count or |G| exceeds
// maxEnumAttrs).
func TestIndexRelevantMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vocab := make([]string, maxEnumAttrs+2)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("a%02d", i)
	}
	aggs := []engine.AggSpec{
		{Func: engine.Count},
		{Func: engine.Sum, Arg: "m"},
		{Func: engine.Avg, Arg: "m"}, // never mined: must return nothing
	}
	for trial := 0; trial < 40; trial++ {
		pool := randomPool(rng, vocab, 1+rng.Intn(60))
		ix := NewIndex(pool)
		for _, gSize := range []int{1, 2, 3, 5, len(vocab)} {
			g := make([]string, gSize)
			copy(g, vocab)
			rng.Shuffle(len(vocab), func(i, j int) { vocab[i], vocab[j] = vocab[j], vocab[i] })
			copy(g, vocab[:gSize])
			for _, agg := range aggs {
				got := ix.Relevant(g, agg)
				want := structuralRelevant(pool, g, agg)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d |pool|=%d g=%v agg=%s:\n index:  %v\n linear: %v",
						trial, len(pool), g, agg, got, want)
				}
			}
		}
	}
}

// TestIndexRefinementsMatchLinearScan: the precomputed adjacency must
// reproduce refinementsOf — same patterns, same order — for every
// pattern in the pool, including pools whose F sets exceed maxEnumAttrs
// (the subset-enumeration fallback in buildRefs).
func TestIndexRefinementsMatchLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := make([]string, maxEnumAttrs+4)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("a%02d", i)
	}
	for trial := 0; trial < 30; trial++ {
		pool := randomPool(rng, vocab, 1+rng.Intn(50))
		if trial%3 == 0 {
			// Wide-F patterns past the enumeration cutoff: one pattern
			// refines the other, exercising the subsetSorted fallback.
			wideV := []string{vocab[len(vocab)-1]}
			wideF := append([]string(nil), vocab[:maxEnumAttrs+1]...)
			agg := engine.AggSpec{Func: engine.Count}
			pool = append(pool,
				&pattern.Mined{Pattern: pattern.Pattern{F: wideF[:2], V: wideV, Agg: agg, Model: regress.Const}},
				&pattern.Mined{Pattern: pattern.Pattern{F: wideF, V: wideV, Agg: agg, Model: regress.Const}},
			)
		}
		ix := NewIndex(pool)
		for i, m := range pool {
			got := ix.Refinements(m)
			want := refinementsOf(m, pool)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d pattern %d (%s): adjacency diverges\n index:  %d refs\n linear: %d refs",
					trial, i, m.Pattern, len(got), len(want))
			}
			found := false
			for _, r := range got {
				found = found || r == m
			}
			if !found {
				t.Fatalf("trial %d pattern %d: refinement list must include the pattern itself", trial, i)
			}
		}
	}
}

// TestIndexOutsidePatternFallsBack: Refinements on a pattern the index
// never saw degrades to the linear scan instead of misbehaving.
func TestIndexOutsidePatternFallsBack(t *testing.T) {
	pool := randomPool(rand.New(rand.NewSource(3)), []string{"a", "b", "c", "d", "e", "f"}, 20)
	ix := NewIndex(pool)
	stranger := &pattern.Mined{Pattern: pattern.Pattern{
		F: []string{"a"}, V: []string{"b"}, Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const,
	}}
	got := ix.Refinements(stranger)
	want := refinementsOf(stranger, pool)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("outside-pattern fallback diverges: %d vs %d refs", len(got), len(want))
	}
}

func TestIndexStatsShape(t *testing.T) {
	pool := randomPool(rand.New(rand.NewSource(5)), []string{"a", "b", "c", "d", "e"}, 12)
	st := NewIndex(pool).Stats()
	if st.Patterns != len(pool) {
		t.Errorf("Stats.Patterns = %d, want %d", st.Patterns, len(pool))
	}
	if st.Buckets <= 0 || st.MaxBucket <= 0 || st.RefEdges < len(pool) {
		t.Errorf("degenerate stats: %+v", st)
	}
	empty := NewIndex(nil)
	if got := empty.Relevant([]string{"a"}, engine.AggSpec{Func: engine.Count}); got != nil {
		t.Errorf("empty index returned %v", got)
	}
	if st := empty.Stats(); st.Patterns != 0 || st.Buckets != 0 {
		t.Errorf("empty index stats: %+v", st)
	}
}

// TestIndexedGenerationByteIdentical: GenOpt, GenNaive, and
// GenerateBatch must produce exactly the same explanations AND stats
// with the index as with opt.LinearScan — the index prefilters, it never
// changes what is computed. Parallelism is pinned to 1 so every stats
// counter is deterministic.
func TestIndexedGenerationByteIdentical(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	questions := []UserQuestion{sigkddQuestion()}
	{
		q := sigkddQuestion()
		q.Dir = High // no explanations on this one: identical emptiness matters too
		questions = append(questions, q)
	}

	for _, k := range []int{1, 5, 25} {
		indexed := Options{K: k, Metric: yearMetric(), Parallelism: 1}
		linear := indexed
		linear.LinearScan = true
		for qi, q := range questions {
			for name, gen := range map[string]func(UserQuestion, engine.Relation, []*pattern.Mined, Options) ([]Explanation, *Stats, error){
				"GenOpt": GenOpt, "GenNaive": GenNaive,
			} {
				ei, si, err := gen(q, tab, pats, indexed)
				if err != nil {
					t.Fatal(err)
				}
				el, sl, err := gen(q, tab, pats, linear)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ei, el) {
					t.Errorf("%s k=%d q%d: explanations diverge (%d vs %d)", name, k, qi, len(ei), len(el))
				}
				if !reflect.DeepEqual(si, sl) {
					t.Errorf("%s k=%d q%d: stats diverge: %+v vs %+v", name, k, qi, si, sl)
				}
			}
		}
		bad := UserQuestion{GroupBy: []string{"x", "x"}}
		batchQs := append(append([]UserQuestion(nil), questions...), bad)
		bi := GenerateBatch(batchQs, tab, pats, indexed)
		bl := GenerateBatch(batchQs, tab, pats, linear)
		if len(bi) != len(bl) {
			t.Fatalf("batch lengths diverge: %d vs %d", len(bi), len(bl))
		}
		for i := range bi {
			if (bi[i].Err == nil) != (bl[i].Err == nil) {
				t.Errorf("batch k=%d item %d: error presence diverges: %v vs %v", k, i, bi[i].Err, bl[i].Err)
				continue
			}
			if bi[i].Err != nil {
				if bi[i].Err.Error() != bl[i].Err.Error() {
					t.Errorf("batch k=%d item %d: errors diverge: %v vs %v", k, i, bi[i].Err, bl[i].Err)
				}
				continue
			}
			if !reflect.DeepEqual(bi[i].Explanations, bl[i].Explanations) {
				t.Errorf("batch k=%d item %d: explanations diverge", k, i)
			}
			if !reflect.DeepEqual(bi[i].Stats, bl[i].Stats) {
				t.Errorf("batch k=%d item %d: stats diverge: %+v vs %+v", k, i, bi[i].Stats, bl[i].Stats)
			}
		}
	}
}

// TestExplainerUsesIndex: the warm Explainer path answers through its
// prebuilt index and must match a fresh linear-scan Generate call.
func TestExplainerUsesIndex(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	ex := NewExplainer(tab, pats, Options{K: 10, Metric: yearMetric(), Parallelism: 1})
	if st := ex.IndexStats(); st.Patterns != len(pats) {
		t.Fatalf("explainer index covers %d of %d patterns", st.Patterns, len(pats))
	}
	q := sigkddQuestion()
	ei, si, err := ex.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	el, sl, err := GenOpt(q, tab, pats, Options{K: 10, Metric: yearMetric(), Parallelism: 1, LinearScan: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ei, el) || !reflect.DeepEqual(si, sl) {
		t.Fatalf("explainer diverges from linear reference")
	}
}
