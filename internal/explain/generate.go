package explain

import (
	"fmt"
	"math"
	"sort"

	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/value"
)

// Options configures explanation generation.
type Options struct {
	// K is the number of explanations to return (default 10).
	K int
	// Metric supplies attribute distances and weights; nil uses
	// categorical distance with equal weights.
	Metric *distance.Metric
	// Epsilon guards denominators against zero (default 1e-9, the
	// paper's footnote 2).
	Epsilon float64
	// DescendingNorm makes GenOpt visit relevant patterns in descending
	// NORM order — the order the paper's prose literally states. The
	// default ascending order visits small-NORM (large-possible-score)
	// patterns first, which fills the top-k with strong candidates early
	// and lets the upper bound prune more; this flag exists for the
	// ablation benchmark.
	DescendingNorm bool
	// LinearScan disables the structural relevance index: relevant
	// patterns are found by the original linear scan over the whole
	// pattern set and refinement lists by per-pattern rescans. Output is
	// byte-identical either way; the flag exists for the ablation
	// benchmark and the differential suite that pins that equivalence.
	LinearScan bool
	// Parallelism is the number of worker goroutines GenOpt (and the
	// Explainer) fan the (relevant pattern, refinement) pairs across.
	// 0 or 1 runs sequentially. Parallel runs return exactly the
	// sequential explanation list — same scores, tuples, and order —
	// because the top-k order is total and the shared score bound only
	// ever under-prunes. Stats.PrunedRefinements — and with it
	// Candidates, since a skipped pair also skips its candidate scan —
	// may vary between runs (a stale bound lets a worker enumerate a
	// pair a tighter schedule would have pruned); the explanations,
	// RelevantPatterns, and RefinementPairs do not. At Parallelism 1
	// every counter is exactly reproducible, and independent of whether
	// enumerate scans dictionary codes or boxed rows: the columnar scan
	// counts candidates row-for-row like the reference (a dictionary
	// miss still counts the full grouped result).
	Parallelism int
}

// workers clamps Parallelism to a usable worker count.
func (o Options) workers() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-9
	}
	return o
}

// Stats reports the work a generation run performed, for the Figure-6
// experiments.
type Stats struct {
	// RelevantPatterns is the number of mined patterns relevant to the
	// question (Definition 5).
	RelevantPatterns int
	// RefinementPairs is the number of (P, P') pairs considered.
	RefinementPairs int
	// Candidates is the number of result tuples t' tested.
	Candidates int
	// PrunedRefinements counts (P, P') pairs skipped by the upper score
	// bound (GenOpt only).
	PrunedRefinements int
}

// relevantEntry pairs a relevant pattern with the question-fragment data
// the scoring needs.
type relevantEntry struct {
	mined *pattern.Mined
	frag  value.Tuple // t[F]
	norm  float64     // NORM of Definition 10
}

// generator carries the shared state of one generation run. After
// prepare returns, every field is read-only except the cache, which is
// safe for concurrent use — a generator may be driven by many workers.
type generator struct {
	q     UserQuestion
	r     engine.Relation
	opt   Options
	cache *groupCache // grouped result per refined pattern
	// lookup resolves γ_{F'∪V, agg}(R) for a refined pattern; defaults to
	// the per-run cache, overridden by Explainer's shared cache. Must be
	// safe for concurrent calls.
	lookup func(pattern.Pattern) (*engine.Table, error)
	// refine lists the mined patterns refining a relevant pattern;
	// defaults to a linear scan of the run's pattern set, overridden by
	// the batch planner's precomputed lists. Must be safe for concurrent
	// calls.
	refine func(*pattern.Mined) []*pattern.Mined
}

// Generate runs the optimized generator — the default entry point.
func Generate(q UserQuestion, r engine.Relation, patterns []*pattern.Mined, opt Options) ([]Explanation, *Stats, error) {
	return GenOpt(q, r, patterns, opt)
}

// GenNaive is Algorithm 1: test every candidate tuple of every refinement
// of every relevant pattern, maintaining a top-k heap.
func GenNaive(q UserQuestion, r engine.Relation, patterns []*pattern.Mined, opt Options) ([]Explanation, *Stats, error) {
	g, rel, stats, err := prepare(q, r, patterns, opt)
	if err != nil {
		return nil, nil, err
	}
	tk := newTopK(g.opt.K)
	for _, re := range rel {
		for _, ref := range g.refine(re.mined) {
			stats.RefinementPairs++
			if err := g.enumerate(re, ref, tk, stats); err != nil {
				return nil, nil, err
			}
		}
	}
	return tk.sorted(), stats, nil
}

// GenOpt is the Section-3.5 generator: relevant patterns are visited in
// ascending NORM order (largest possible scores first) and a refinement
// P' is skipped whenever its upper score bound
//
//	score↑(φ, P, P') = dev↑(P') / (d↓(φ, P') · NORM + ε)
//
// cannot beat the current k-th best score. With opt.Parallelism > 1 the
// (P, P') pairs are fanned across a worker pool; the result is identical
// to the sequential run.
func GenOpt(q UserQuestion, r engine.Relation, patterns []*pattern.Mined, opt Options) ([]Explanation, *Stats, error) {
	g, rel, stats, err := prepare(q, r, patterns, opt)
	if err != nil {
		return nil, nil, err
	}
	expls, err := g.run(rel, stats)
	if err != nil {
		return nil, nil, err
	}
	return expls, stats, nil
}

// sortRelevant orders relevant patterns by NORM. Ascending is the
// default: score ∝ 1/NORM, so small NORM first finds high-score
// explanations early and makes the bound bite sooner. The sort is stable
// so ties keep the (deterministic) mined-pattern order.
func sortRelevant(rel []relevantEntry, descending bool) {
	if descending {
		sort.SliceStable(rel, func(i, j int) bool { return rel[i].norm > rel[j].norm })
	} else {
		sort.SliceStable(rel, func(i, j int) bool { return rel[i].norm < rel[j].norm })
	}
}

// run executes the bound-pruned search over the relevant patterns,
// sequentially or — when opt.Parallelism asks for it — fanned across a
// bounded worker pool.
func (g *generator) run(rel []relevantEntry, stats *Stats) ([]Explanation, error) {
	sortRelevant(rel, g.opt.DescendingNorm)
	// Flatten the (P, P') pairs in visit order. Workers claim items in
	// this same order, so parallel runs tighten the bound as early as the
	// sequential loop does.
	var items []workItem
	for _, re := range rel {
		for _, ref := range g.refine(re.mined) {
			items = append(items, workItem{re: re, ref: ref})
		}
	}
	stats.RefinementPairs = len(items)
	if workers := g.opt.workers(); workers > 1 && len(items) > 1 {
		if workers > len(items) {
			workers = len(items)
		}
		return g.runParallel(items, stats, workers)
	}
	tk := newTopK(g.opt.K)
	for _, it := range items {
		if min, full := tk.minScore(); full {
			// Strict comparison: a refinement whose bound ties the
			// current k-th score could still win the key tiebreak.
			if g.scoreBound(it.re, it.ref) < min {
				stats.PrunedRefinements++
				continue
			}
		}
		if err := g.enumerate(it.re, it.ref, tk, stats); err != nil {
			return nil, err
		}
	}
	return tk.sorted(), nil
}

// prepare validates inputs and finds the relevant patterns with their
// NORM factors. Unless opt.LinearScan asks for the reference path, a
// per-call relevance index replaces both the full-set relevance scan
// and the per-pattern refinement rescans (an Explainer passes its
// prebuilt index through prepareIndexed instead).
func prepare(q UserQuestion, r engine.Relation, patterns []*pattern.Mined, opt Options) (*generator, []relevantEntry, *Stats, error) {
	var idx *Index
	if !opt.LinearScan {
		idx = NewIndex(patterns)
	}
	return prepareIndexed(q, r, patterns, opt, idx)
}

// prepareIndexed is prepare with the relevance index supplied by the
// caller; idx == nil selects the linear reference path. The index only
// prefilters: every surviving pattern still runs the full per-question
// relevance check, so both paths produce identical entries in identical
// order.
func prepareIndexed(q UserQuestion, r engine.Relation, patterns []*pattern.Mined, opt Options, idx *Index) (*generator, []relevantEntry, *Stats, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, nil, err
	}
	g := &generator{q: q, r: r, opt: opt.withDefaults(), cache: newGroupCache()}
	g.lookup = g.grouped
	stats := &Stats{}
	var rel []relevantEntry
	if idx != nil {
		g.refine = idx.Refinements
		for _, pi := range idx.Relevant(q.GroupBy, q.Agg) {
			re, ok, err := g.relevant(patterns[pi])
			if err != nil {
				return nil, nil, nil, err
			}
			if ok {
				rel = append(rel, re)
				stats.RelevantPatterns++
			}
		}
		return g, rel, stats, nil
	}
	g.refine = func(m *pattern.Mined) []*pattern.Mined { return refinementsOf(m, patterns) }
	for _, m := range patterns {
		re, ok, err := g.relevant(m)
		if err != nil {
			return nil, nil, nil, err
		}
		if ok {
			rel = append(rel, re)
			stats.RelevantPatterns++
		}
	}
	return g, rel, stats, nil
}

// relevant implements Definition 5 plus the NORM computation: the pattern
// must share the question's aggregate, use only question attributes, and
// hold locally on the question's fragment.
func (g *generator) relevant(m *pattern.Mined) (relevantEntry, bool, error) {
	if m.Pattern.Agg != g.q.Agg {
		return relevantEntry{}, false, nil
	}
	frag, ok := g.q.Project(m.Pattern.F)
	if !ok {
		return relevantEntry{}, false, nil // F ⊄ G
	}
	if _, ok := g.q.Project(m.Pattern.V); !ok {
		return relevantEntry{}, false, nil // V ⊄ G
	}
	if !m.HoldsLocally(frag) {
		return relevantEntry{}, false, nil
	}
	norm, err := g.norm(m.Pattern)
	if err != nil {
		return relevantEntry{}, false, err
	}
	return relevantEntry{mined: m, frag: frag, norm: norm}, true, nil
}

// norm computes Definition 10's normalization factor: the aggregate value
// of the question's own group under the relevant pattern's (coarser)
// grouping, i.e. π_{agg}(σ_{F∪V = t[F∪V]}(R)) aggregated.
func (g *generator) norm(p pattern.Pattern) (float64, error) {
	attrs := p.GroupAttrs()
	vals, ok := g.q.Project(attrs)
	if !ok {
		return 0, fmt.Errorf("explain: pattern attributes %v outside question group-by", attrs)
	}
	sel, err := g.r.SelectEq(attrs, vals)
	if err != nil {
		return 0, err
	}
	agg, err := sel.GroupBy(nil, []engine.AggSpec{p.Agg})
	if err != nil {
		return 0, err
	}
	if agg.NumRows() == 0 {
		return 0, nil
	}
	f, _ := agg.Row(0)[0].AsFloat()
	return math.Abs(f), nil
}

// refinementsOf lists the mined patterns refining P w.r.t. the question
// (Definition 6) — including P itself, since F' ⊇ F is non-strict.
func refinementsOf(p *pattern.Mined, patterns []*pattern.Mined) []*pattern.Mined {
	var out []*pattern.Mined
	for _, c := range patterns {
		if c.Pattern.Refines(p.Pattern) {
			out = append(out, c)
		}
	}
	return out
}

// scoreBound is score↑(φ, P, P') from Section 3.5, using the refined
// pattern's per-fragment deviation extremes: only fragments agreeing with
// the question on P's partition attributes can produce candidates, so the
// bound takes the maximum counterbalancing deviation over exactly those
// local models (the paper's "more accurate bound using the information
// stored with the local versions of a pattern").
func (g *generator) scoreBound(re relevantEntry, ref *pattern.Mined) float64 {
	devUp := g.devBound(re, ref)
	if devUp <= 0 {
		return 0 // no counterbalancing deviation exists in reachable fragments
	}
	dLow := g.opt.Metric.LowerBound(g.q.GroupBy, ref.Pattern.GroupAttrs())
	return devUp / (dLow*re.norm + g.opt.Epsilon)
}

// devBound computes dev↑(φ, P') restricted to fragments matching the
// question's partition values, falling back to the pattern-global extreme
// when the attribute mapping fails.
func (g *generator) devBound(re relevantEntry, ref *pattern.Mined) float64 {
	global := ref.MaxPosDev
	if g.q.Dir == High {
		global = -ref.MaxNegDev
	}
	// Map P.F positions into P'.F (both canonical order).
	p, pRef := re.mined.Pattern, ref.Pattern
	idx := make([]int, len(p.F))
	for i, a := range p.F {
		idx[i] = -1
		for j, b := range pRef.F {
			if a == b {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return global // should not happen for a valid refinement
		}
	}
	best := 0.0
	for _, lm := range ref.Locals {
		match := true
		for i, j := range idx {
			if !value.Equal(lm.Frag[j], re.frag[i]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		dev := lm.MaxPosDev
		if g.q.Dir == High {
			dev = -lm.MaxNegDev
		}
		if dev > best {
			best = dev
		}
	}
	return best
}

// enumerate walks the aggregate result of the refined pattern's grouping
// and offers every valid counterbalance to the top-k collector
// (Definition 7 conditions 3–5). It only reads generator state and
// writes through the sink and stats it is handed, so concurrent calls
// with distinct sinks-and-stats (or a concurrency-safe sink) are safe.
func (g *generator) enumerate(re relevantEntry, ref *pattern.Mined, sink explSink, stats *Stats) error {
	p, pRef := re.mined.Pattern, ref.Pattern
	attrs := pRef.GroupAttrs()
	grouped, err := g.lookup(pRef)
	if err != nil {
		return err
	}
	sch := grouped.Schema()
	fIdx, err := sch.Indices(p.F)
	if err != nil {
		return err
	}
	fRefIdx, err := sch.Indices(pRef.F)
	if err != nil {
		return err
	}
	vIdx, err := sch.Indices(pRef.V)
	if err != nil {
		return err
	}
	aggIdx := sch.Index(pRef.Agg.String())
	if aggIdx < 0 {
		return fmt.Errorf("explain: grouped result missing aggregate column %q", pRef.Agg)
	}
	attrIdx, err := sch.Indices(attrs)
	if err != nil {
		return err
	}

	// When the counterbalance schema equals the question's, exclude the
	// question tuple itself (Definition 7, condition 4).
	sameSchema := sameSet(attrs, g.q.GroupBy)
	var tOnAttrs value.Tuple
	if sameSchema {
		tOnAttrs, _ = g.q.Project(attrs)
	}

	sc := candScan{
		g: g, re: re, ref: ref, p: p, pRef: pRef,
		attrs: attrs, attrIdx: attrIdx, fRefIdx: fRefIdx, vIdx: vIdx,
		aggIdx: aggIdx, sameSchema: sameSchema, tOnAttrs: tOnAttrs,
		qDist:   g.q.DistTuple(),
		fragRef: make(value.Tuple, len(fRefIdx)),
		sink:    sink,
	}

	rows := grouped.Rows()
	if !grouped.RowPathForced() && len(rows) > 0 {
		if g.enumerateColumnar(grouped, fIdx, &sc, stats) {
			return nil
		}
	}

	// Boxed reference scan: also the fallback when dictionary-code
	// equality would diverge from value.Equal on a fragment value (NaN,
	// magnitudes past the float-exact integer range).
	for _, row := range rows {
		stats.Candidates++
		// Condition 4: t'[F] = t[F].
		match := true
		for i, ci := range fIdx {
			if !value.Equal(row[ci], re.frag[i]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		y, numeric := row[aggIdx].AsFloat()
		sc.offer(row, 0, y, numeric)
	}
	return nil
}

// enumerateColumnar is enumerate's vectorized scan: the t'[F] = t[F]
// match compares dictionary codes, and the aggregate and predictor
// values come from the columnar view's flat buffers. It reports false
// when any fragment value is code-divergent (EqCode) and the boxed
// reference loop must run instead. Candidate counting matches the
// reference exactly: every row of the grouped result is one candidate,
// even when a dictionary miss proves no row can match.
func (g *generator) enumerateColumnar(grouped *engine.Table, fIdx []int, sc *candScan, stats *Stats) bool {
	cols := grouped.Columns()
	n := grouped.NumRows()
	want := make([]int32, 0, len(fIdx))
	codeCols := make([][]int32, 0, len(fIdx))
	miss := false
	for i, ci := range fIdx {
		code, ok, divergent := cols.Col(ci).EqCode(sc.re.frag[i])
		if divergent {
			return false
		}
		if !ok {
			miss = true
			continue
		}
		want = append(want, code)
		codeCols = append(codeCols, cols.Col(ci).Codes)
	}
	if miss {
		stats.Candidates += n
		return true
	}
	agg := cols.FlatCol(sc.aggIdx)
	sc.vF64 = make([][]float64, len(sc.vIdx))
	sc.vNum = make([][]bool, len(sc.vIdx))
	for i, ci := range sc.vIdx {
		fc := cols.FlatCol(ci)
		sc.vF64[i], sc.vNum[i] = fc.F64, fc.Num
	}
	sc.vScratch = make([]float64, len(sc.vIdx))
	rows := grouped.Rows()
	for r := 0; r < n; r++ {
		stats.Candidates++
		match := true
		for j, codes := range codeCols {
			if codes[r] != want[j] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		sc.offer(rows[r], r, agg.F64[r], agg.Num[r])
	}
	return true
}

// candScan carries the per-enumerate state shared by the boxed and
// columnar scans, so both evaluate Definition 7 conditions 3–5
// identically for each row that matches t'[F] = t[F].
type candScan struct {
	g          *generator
	re         relevantEntry
	ref        *pattern.Mined
	p, pRef    pattern.Pattern
	attrs      []string
	attrIdx    []int
	fRefIdx    []int
	vIdx       []int
	aggIdx     int
	sameSchema bool
	tOnAttrs   value.Tuple
	qDist      distance.Tuple
	fragRef    value.Tuple // scratch, refilled per row
	sink       explSink

	// Flat predictor buffers; nil on the boxed path, where predictors
	// are encoded from the row (identical values by the FlatCol
	// contract: F64/Num agree with AsFloat everywhere).
	vF64     [][]float64
	vNum     [][]bool
	vScratch []float64
}

// offer evaluates conditions 3–5 for one candidate row already matching
// t'[F] = t[F] and offers the resulting explanation to the sink. ri is
// the row's position in the grouped table (used only by the flat
// predictor reads); y/numeric is the row's aggregate value as AsFloat
// reports it.
func (sc *candScan) offer(row value.Tuple, ri int, y float64, numeric bool) {
	// Condition 3: P' holds locally on t'[F'].
	for i, ci := range sc.fRefIdx {
		sc.fragRef[i] = row[ci]
	}
	lm, ok := sc.ref.Local(sc.fragRef)
	if !ok {
		return
	}
	// Condition 5: deviation opposite to the question direction.
	if !numeric {
		return
	}
	var pred float64
	if sc.vF64 != nil {
		allNum := true
		for i := range sc.vF64 {
			if !sc.vNum[i][ri] {
				allNum = false
				break
			}
			sc.vScratch[i] = sc.vF64[i][ri]
		}
		if allNum {
			pred = lm.Model.Predict(sc.vScratch)
		} else {
			pred = lm.Model.Predict(nil)
		}
	} else {
		vVals := make(value.Tuple, len(sc.vIdx))
		for i, ci := range sc.vIdx {
			vVals[i] = row[ci]
		}
		if enc, ok := pattern.EncodePredictors(vVals); ok {
			pred = lm.Model.Predict(enc)
		} else {
			pred = lm.Model.Predict(nil)
		}
	}
	dev := y - pred
	g := sc.g
	if (g.q.Dir == Low && dev <= 0) || (g.q.Dir == High && dev >= 0) {
		return
	}
	// Condition 4 second half: t' ≠ t for same-schema tuples.
	tup := make(value.Tuple, len(sc.attrs))
	for i, ci := range sc.attrIdx {
		tup[i] = row[ci]
	}
	if sc.sameSchema && tup.Equal(sc.tOnAttrs) {
		return
	}

	e := Explanation{
		Relevant:  sc.p,
		Refined:   sc.pRef,
		Attrs:     sc.attrs,
		Tuple:     tup.Clone(),
		AggValue:  row[sc.aggIdx],
		Predicted: pred,
		Deviation: dev,
		Norm:      sc.re.norm,
	}
	e.Distance = g.opt.Metric.Distance(sc.qDist, e.DistTuple())
	isLow := 1.0
	if g.q.Dir == High {
		isLow = -1
	}
	e.Score = dev * isLow / (e.Distance*sc.re.norm + g.opt.Epsilon)
	sc.sink.offer(e)
}

// grouped returns (and caches) γ_{F'∪V, agg}(R) for a refined pattern.
// The per-run cache has the same sharded singleflight structure as the
// Explainer's shared one, so parallel workers needing different
// groupings compute them concurrently while duplicates are computed
// once.
func (g *generator) grouped(p pattern.Pattern) (*engine.Table, error) {
	return g.cache.get(groupKey(p), g.r.Epoch(), func() (*engine.Table, error) {
		return g.r.GroupBy(p.GroupAttrs(), []engine.AggSpec{p.Agg})
	})
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[string]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	for _, y := range b {
		if !in[y] {
			return false
		}
	}
	return true
}
