package explain

import (
	"context"
	"math"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"cape/internal/pattern"
)

// workItem is one (relevant pattern, refinement) pair of the generation
// search space.
type workItem struct {
	re  relevantEntry
	ref *pattern.Mined
}

// explSink receives candidate explanations; topK is the sequential
// implementation, sharedTopK the concurrent one.
type explSink interface {
	offer(Explanation)
}

// sharedTopK guards a topK for concurrent offers and republishes the
// current k-th best score through an atomic, so workers read the pruning
// bound of Section 3.5 without taking the heap lock. The published score
// only ever increases, so a stale read under-prunes — it can never drop
// an explanation that belongs in the final top-k. Combined with the
// deterministic tie-breaks in topK, this makes the parallel result
// identical to the sequential one.
type sharedTopK struct {
	mu   sync.Mutex
	tk   *topK
	full atomic.Bool
	kth  atomic.Uint64 // math.Float64bits of the current k-th best score
}

func newSharedTopK(k int) *sharedTopK {
	return &sharedTopK{tk: newTopK(k)}
}

func (s *sharedTopK) offer(e Explanation) {
	s.mu.Lock()
	s.tk.offer(e)
	if min, full := s.tk.minScore(); full {
		s.kth.Store(math.Float64bits(min))
		s.full.Store(true)
	}
	s.mu.Unlock()
}

// minScore returns the last published k-th best score. It may lag the
// true value, which is safe: pruning against a lower bound is
// conservative.
func (s *sharedTopK) minScore() (float64, bool) {
	if !s.full.Load() {
		return 0, false
	}
	return math.Float64frombits(s.kth.Load()), true
}

// runParallel fans the work items across `workers` goroutines. Items are
// claimed through an atomic cursor in the same ascending-NORM order the
// sequential loop visits, so the shared bound tightens early and pruning
// stays effective under concurrency. Per-worker Stats are summed at the
// end; PrunedRefinements — and Candidates, since a pruned pair skips its
// candidate scan — may vary run-to-run with scheduling (a worker may
// enumerate a pair a faster schedule would have pruned) without
// affecting the returned explanations. Scheduling is the only source of
// that variance: for every pair that does get enumerated, the columnar
// and boxed scans count candidates identically (see enumerate), so the
// storage path never shows up in Stats.
func (g *generator) runParallel(items []workItem, stats *Stats, workers int) ([]Explanation, error) {
	shared := newSharedTopK(g.opt.K)
	var next atomic.Int64
	var failed atomic.Bool
	workerStats := make([]Stats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	labels := pprof.Labels("cape_pool", "explain:refinements")
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) {
				st := &workerStats[w]
				for {
					i := int(next.Add(1)) - 1
					if i >= len(items) || failed.Load() {
						return
					}
					it := items[i]
					if min, full := shared.minScore(); full && g.scoreBound(it.re, it.ref) < min {
						st.PrunedRefinements++
						continue
					}
					if err := g.enumerate(it.re, it.ref, shared, st); err != nil {
						errs[w] = err
						failed.Store(true)
						return
					}
				}
			})
		}(w)
	}
	wg.Wait()
	for w := range workerStats {
		stats.Candidates += workerStats[w].Candidates
		stats.PrunedRefinements += workerStats[w].PrunedRefinements
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return shared.tk.sorted(), nil
}
