package explain

import (
	"strings"
	"sync"

	"cape/internal/engine"
	"cape/internal/pattern"
)

// groupKey canonically identifies the aggregate query γ_{F'∪V, agg}(R)
// a refined pattern enumerates over.
func groupKey(p pattern.Pattern) string {
	return strings.Join(p.GroupAttrs(), "\x1f") + "\x1e" + p.Agg.String()
}

// cacheShards is the number of lock stripes in a groupCache. Sixteen
// keeps contention negligible at any worker count this package spawns
// while costing only sixteen small maps.
const cacheShards = 16

// groupCache maps group-by keys to materialized aggregate results. It is
// sharded — concurrent lookups of different keys take different locks —
// and performs singleflight duplicate suppression: concurrent misses on
// the same key run the GroupBy once, with the late arrivals blocking on
// the first caller's result instead of recomputing it. (A single-mutex
// map would both serialize every lookup and let two concurrent misses
// each run the full aggregation.)
//
// Cached tables are columnar carriers: the engine caches each table's
// dictionary-encoded columnar view on the table itself (built lazily,
// safe to build and read concurrently), so every question enumerating
// the same grouping — in this run or, through the Explainer's shared
// cache, any later one — reuses one set of code vectors and flat
// buffers instead of re-encoding.
type groupCache struct {
	shards [cacheShards]cacheShard

	// onCompute, when non-nil, is invoked once per actual computation
	// (not per lookup), before compute runs — a test hook for the
	// computed-exactly-once guarantee.
	onCompute func(key string)
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

// cacheEntry is one in-flight or completed computation. ready is closed
// when tab/err are valid. epoch is the source-table epoch the result was
// (or is being) computed at: a lookup at a newer epoch treats the entry
// as stale and recomputes, so appends invalidate cached groupings lazily
// and per grouping — untouched groupings keep their warm results until
// actually requested.
type cacheEntry struct {
	ready chan struct{}
	epoch uint64
	tab   *engine.Table
	err   error
}

func newGroupCache() *groupCache {
	c := &groupCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry)
	}
	return c
}

// shardFor hashes the key (FNV-1a) onto a lock stripe.
func (c *groupCache) shardFor(key string) *cacheShard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h%cacheShards]
}

// get returns the table cached under key at the given source epoch,
// running compute on the first request. Concurrent callers of the same
// key block until that single computation finishes and share its
// result. A failed computation is not cached: in-flight waiters observe
// the error, later callers retry. An entry computed at an older epoch
// is stale — the caller recomputes and replaces it; readers that raced
// onto the old entry before the epoch advanced still get the old
// result, which is correct for the data they were reading. (The server
// excludes appends from in-flight reads, so mixed epochs never overlap
// there.)
func (c *groupCache) get(key string, epoch uint64, compute func() (*engine.Table, error)) (*engine.Table, error) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok && e.epoch == epoch {
		sh.mu.Unlock()
		<-e.ready
		return e.tab, e.err
	}
	e := &cacheEntry{ready: make(chan struct{}), epoch: epoch}
	sh.entries[key] = e
	sh.mu.Unlock()

	if c.onCompute != nil {
		c.onCompute(key)
	}
	e.tab, e.err = compute()
	if e.err != nil {
		sh.mu.Lock()
		if sh.entries[key] == e {
			delete(sh.entries, key)
		}
		sh.mu.Unlock()
	}
	close(e.ready)
	return e.tab, e.err
}

// len reports the number of cached (or in-flight) groupings.
func (c *groupCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
