package explain

import (
	"container/heap"
	"fmt"
	"strings"

	"cape/internal/distance"
	"cape/internal/pattern"
	"cape/internal/value"
)

// Explanation is Definition 7's triple (P, P', t') augmented with the
// quantities that produced its score.
type Explanation struct {
	// Relevant is the pattern P relevant for the question.
	Relevant pattern.Pattern
	// Refined is the refinement P' whose local model the counterbalance
	// deviates from.
	Refined pattern.Pattern
	// Attrs names the counterbalance tuple's attributes (F' then V,
	// canonical order); Tuple holds the corresponding values.
	Attrs []string
	Tuple value.Tuple
	// AggValue is t'[agg(A)]; Predicted is g_{P',t'[F']}(t'[V]).
	AggValue  value.V
	Predicted float64
	// Deviation is AggValue − Predicted (Definition 8).
	Deviation float64
	// Distance is d(t[G], t'[F' ∪ V]) under the configured metric.
	Distance float64
	// Norm is the normalization factor NORM of Definition 10.
	Norm float64
	// Score is Definition 10's deviation/distance score; higher is a
	// better explanation.
	Score float64
}

// DistTuple renders the counterbalance tuple for the distance metric.
func (e Explanation) DistTuple() distance.Tuple {
	out := make(distance.Tuple, len(e.Attrs))
	for i, a := range e.Attrs {
		out[a] = e.Tuple[i]
	}
	return out
}

// key identifies the (P', t') combination for deduplication: when several
// relevant patterns refine to the same P' and tuple, only the
// highest-scoring explanation is kept (per Section 3.3).
func (e Explanation) key() string {
	return e.Refined.Key() + "\x1e" + e.Tuple.Key()
}

// String renders "(AX, ICDE, 2007, 6) score=13.78 via [author]: ...".
func (e Explanation) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, a := range e.Attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", a, e.Tuple[i])
	}
	fmt.Fprintf(&sb, ", %s=%s) score=%.2f [dev=%+.2f pred=%.2f] via %s refined to %s",
		e.Refined.Agg, e.AggValue, e.Score, e.Deviation, e.Predicted, e.Relevant, e.Refined)
	return sb.String()
}

// better imposes a total order on explanations — higher score first, ties
// broken by key — so the kept top-k set is unique and the top-k list is
// always a prefix of any larger-k list.
func better(a, b Explanation) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.key() < b.key()
}

// explHeap is a min-heap under the `better` order holding the best k
// explanations seen so far (the heap root is the current k-th best).
type explHeap []Explanation

func (h explHeap) Len() int            { return len(h) }
func (h explHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h explHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *explHeap) Push(x interface{}) { *h = append(*h, x.(Explanation)) }
func (h *explHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// topK maintains the best k explanations with per-(P', t') dedup.
type topK struct {
	k    int
	heap explHeap
	// best maps explanation key to its best score seen, so a later lower
	// score for the same (P', t') never displaces the earlier one.
	best map[string]float64
}

func newTopK(k int) *topK {
	return &topK{k: k, best: make(map[string]float64)}
}

// minScore is the current k-th best score, or -inf semantics (ok=false)
// when fewer than k explanations are held.
func (t *topK) minScore() (float64, bool) {
	if len(t.heap) < t.k {
		return 0, false
	}
	return t.heap[0].Score, true
}

// offer inserts an explanation, handling dedup and eviction.
func (t *topK) offer(e Explanation) {
	if prev, seen := t.best[e.key()]; seen {
		if prev > e.Score {
			return
		}
		if prev == e.Score {
			// Equal-score duplicate of a held key: different relevant
			// patterns can produce the same (P', t') at the same score.
			// Tie-break on the relevant pattern's key, so the kept entry
			// does not depend on arrival order — parallel runs must
			// reproduce the sequential result byte for byte.
			for i := range t.heap {
				if t.heap[i].key() == e.key() {
					if e.Relevant.Key() < t.heap[i].Relevant.Key() {
						t.heap[i] = e
					}
					break
				}
			}
			return
		}
	}
	t.best[e.key()] = e.Score
	// Remove a previous entry for the same key if it is in the heap.
	for i := range t.heap {
		if t.heap[i].key() == e.key() {
			t.heap[i] = e
			heap.Fix(&t.heap, i)
			return
		}
	}
	if len(t.heap) < t.k {
		heap.Push(&t.heap, e)
		return
	}
	if better(e, t.heap[0]) {
		t.heap[0] = e
		heap.Fix(&t.heap, 0)
	}
}

// sorted returns the held explanations ordered by descending score, ties
// broken by tuple key for determinism.
func (t *topK) sorted() []Explanation {
	out := append([]Explanation(nil), t.heap...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Score > b.Score || (a.Score == b.Score && a.key() <= b.key()) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}
