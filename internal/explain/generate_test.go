package explain

import (
	"testing"

	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/value"
)

// runningExample builds a deterministic version of the paper's DBLP
// story: three authors publish a constant number of papers per venue per
// year over 2005–2009, except that AX published only 1 SIGKDD paper in
// 2007 (the outlier) while publishing 7 ICDE papers that year (the
// counterbalance). AX's yearly total stays exactly 12, so the coarse
// pattern [author]: year ~Const~> count(*) holds perfectly.
func runningExample(t testing.TB) *engine.Table {
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "venue", Kind: value.String},
		{Name: "year", Kind: value.Int},
	})
	add := func(author, venue string, year int64, n int) {
		for i := 0; i < n; i++ {
			tab.MustAppend(value.Tuple{
				value.NewString(author), value.NewString(venue), value.NewInt(year),
			})
		}
	}
	venues := []string{"SIGKDD", "VLDB", "ICDE"}
	for year := int64(2005); year <= 2009; year++ {
		for _, v := range venues {
			n := 4
			if v == "SIGKDD" && year == 2007 {
				n = 1
			}
			if v == "ICDE" && year == 2007 {
				n = 7
			}
			add("AX", v, year, n)
			add("AY", v, year, 3)
			add("AZ", v, year, 3)
		}
	}
	return tab
}

func minePatterns(t testing.TB, tab *engine.Table) []*pattern.Mined {
	res, err := mining.ARPMine(tab, mining.Options{
		MaxPatternSize: 3,
		Thresholds:     pattern.Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2},
		AggFuncs:       []engine.AggFunc{engine.Count},
		Models:         []regress.ModelType{regress.Const},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("mining found no patterns")
	}
	return res.Patterns
}

func sigkddQuestion() UserQuestion {
	return UserQuestion{
		GroupBy: []string{"author", "venue", "year"},
		Agg:     engine.AggSpec{Func: engine.Count},
		Values: value.Tuple{
			value.NewString("AX"), value.NewString("SIGKDD"), value.NewInt(2007),
		},
		AggValue: value.NewInt(1),
		Dir:      Low,
	}
}

func yearMetric() *distance.Metric {
	return distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
}

func TestRunningExampleTopExplanation(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	expls, stats, err := Generate(sigkddQuestion(), tab, pats, Options{K: 10, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) == 0 {
		t.Fatal("no explanations produced")
	}
	if stats.RelevantPatterns == 0 {
		t.Error("no relevant patterns counted")
	}
	top := expls[0]
	// The strongest counterbalance is AX's 7 ICDE papers in 2007.
	venue, year := findAttr(top, "venue"), findAttr(top, "year")
	if venue == nil || venue.Str() != "ICDE" || year == nil || year.Int() != 2007 {
		t.Errorf("top explanation = %s, want ICDE 2007", top)
	}
	if top.Deviation <= 0 {
		t.Errorf("low question needs positive deviation, got %g", top.Deviation)
	}
	for i := 1; i < len(expls); i++ {
		if expls[i].Score > expls[i-1].Score {
			t.Errorf("explanations not sorted by score at %d", i)
		}
	}
}

func findAttr(e Explanation, attr string) *value.V {
	for i, a := range e.Attrs {
		if a == attr {
			v := e.Tuple[i]
			return &v
		}
	}
	return nil
}

// TestNaiveOptEquivalence: the bound-pruned generator must return exactly
// the brute-force top-k.
func TestNaiveOptEquivalence(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	for _, k := range []int{1, 3, 10, 50} {
		opt := Options{K: k, Metric: yearMetric()}
		naive, _, err := GenNaive(sigkddQuestion(), tab, pats, opt)
		if err != nil {
			t.Fatal(err)
		}
		fast, _, err := GenOpt(sigkddQuestion(), tab, pats, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(naive) != len(fast) {
			t.Fatalf("k=%d: %d vs %d explanations", k, len(naive), len(fast))
		}
		for i := range naive {
			if naive[i].Score != fast[i].Score || !naive[i].Tuple.Equal(fast[i].Tuple) {
				t.Errorf("k=%d rank %d: %s vs %s", k, i, naive[i], fast[i])
			}
		}
	}
}

func TestHighDirectionFindsNegativeDeviations(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	q := UserQuestion{
		GroupBy: []string{"author", "venue", "year"},
		Agg:     engine.AggSpec{Func: engine.Count},
		Values: value.Tuple{
			value.NewString("AX"), value.NewString("ICDE"), value.NewInt(2007),
		},
		AggValue: value.NewInt(7),
		Dir:      High,
	}
	expls, _, err := Generate(q, tab, pats, Options{K: 5, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) == 0 {
		t.Fatal("no explanations for high question")
	}
	for _, e := range expls {
		if e.Deviation >= 0 {
			t.Errorf("high question requires negative deviations: %s", e)
		}
	}
	// The strongest counterbalance is AX's single SIGKDD paper in 2007.
	top := expls[0]
	if v := findAttr(top, "venue"); v == nil || v.Str() != "SIGKDD" {
		t.Errorf("top high-explanation = %s, want SIGKDD 2007", top)
	}
}

func TestQuestionTupleExcluded(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	q := sigkddQuestion()
	expls, _, err := Generate(q, tab, pats, Options{K: 1000, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range expls {
		if !sameSet(e.Attrs, q.GroupBy) {
			continue
		}
		proj, _ := q.Project(e.Attrs)
		if e.Tuple.Equal(proj) {
			t.Errorf("question tuple returned as its own explanation: %s", e)
		}
	}
}

func TestDeviationDirectionConsistency(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	expls, _, err := Generate(sigkddQuestion(), tab, pats, Options{K: 1000, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range expls {
		if e.Deviation <= 0 {
			t.Errorf("low question: non-positive deviation survived: %s", e)
		}
		if e.Score <= 0 {
			t.Errorf("scores must be positive: %s", e)
		}
	}
}

func TestOptPrunesSomething(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	_, statsN, err := GenNaive(sigkddQuestion(), tab, pats, Options{K: 1, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	_, statsO, err := GenOpt(sigkddQuestion(), tab, pats, Options{K: 1, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	if statsN.PrunedRefinements != 0 {
		t.Error("naive must not prune")
	}
	if statsO.Candidates > statsN.Candidates {
		t.Errorf("opt checked more candidates (%d) than naive (%d)", statsO.Candidates, statsN.Candidates)
	}
}

func TestGenerateInvalidQuestion(t *testing.T) {
	tab := runningExample(t)
	bad := UserQuestion{GroupBy: nil}
	if _, _, err := Generate(bad, tab, nil, Options{}); err == nil {
		t.Error("invalid question should error")
	}
	dup := UserQuestion{
		GroupBy:  []string{"a", "a"},
		Values:   value.Tuple{value.NewInt(1), value.NewInt(2)},
		Agg:      engine.AggSpec{Func: engine.Count},
		AggValue: value.NewInt(1),
	}
	if _, _, err := Generate(dup, tab, nil, Options{}); err == nil {
		t.Error("duplicate group-by attribute should error")
	}
	mismatch := UserQuestion{
		GroupBy:  []string{"a", "b"},
		Values:   value.Tuple{value.NewInt(1)},
		Agg:      engine.AggSpec{Func: engine.Count},
		AggValue: value.NewInt(1),
	}
	if _, _, err := Generate(mismatch, tab, nil, Options{}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestNoPatternsNoExplanations(t *testing.T) {
	tab := runningExample(t)
	expls, stats, err := Generate(sigkddQuestion(), tab, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) != 0 || stats.RelevantPatterns != 0 {
		t.Error("no patterns should produce no explanations")
	}
}

func TestParseDirection(t *testing.T) {
	if d, err := ParseDirection("LOW"); err != nil || d != Low {
		t.Errorf("ParseDirection(LOW) = %v, %v", d, err)
	}
	if d, err := ParseDirection("high"); err != nil || d != High {
		t.Errorf("ParseDirection(high) = %v, %v", d, err)
	}
	if _, err := ParseDirection("sideways"); err == nil {
		t.Error("bad direction should error")
	}
	if Low.String() != "low" || High.String() != "high" {
		t.Error("Direction.String wrong")
	}
}

func TestQuestionHelpers(t *testing.T) {
	q := sigkddQuestion()
	if v, ok := q.ValueOf("venue"); !ok || v.Str() != "SIGKDD" {
		t.Errorf("ValueOf(venue) = %v, %v", v, ok)
	}
	if _, ok := q.ValueOf("ghost"); ok {
		t.Error("ValueOf unknown attribute should fail")
	}
	proj, ok := q.Project([]string{"year", "author"})
	if !ok || proj[0].Int() != 2007 || proj[1].Str() != "AX" {
		t.Errorf("Project = %v, %v", proj, ok)
	}
	if _, ok := q.Project([]string{"author", "nope"}); ok {
		t.Error("Project with unknown attribute should fail")
	}
	dt := q.DistTuple()
	if len(dt) != 3 || dt["author"].Str() != "AX" {
		t.Errorf("DistTuple = %v", dt)
	}
	s := q.String()
	if s == "" || s[len(s)-1] != '?' {
		t.Errorf("String() = %q", s)
	}
}

func TestQuestionFromRow(t *testing.T) {
	row := value.Tuple{value.NewString("AX"), value.NewInt(2007), value.NewInt(5)}
	q, err := QuestionFromRow([]string{"author", "year"}, engine.AggSpec{Func: engine.Count}, row, High)
	if err != nil {
		t.Fatal(err)
	}
	if q.AggValue.Int() != 5 || q.Values[1].Int() != 2007 || q.Dir != High {
		t.Errorf("QuestionFromRow = %+v", q)
	}
	if _, err := QuestionFromRow([]string{"a", "b"}, engine.AggSpec{Func: engine.Count}, row[:2], Low); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestTopKDedupKeepsBest(t *testing.T) {
	tk := newTopK(3)
	p := pattern.Pattern{F: []string{"f"}, V: []string{"v"}, Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const}
	mk := func(score float64, val int64) Explanation {
		return Explanation{
			Refined: p, Attrs: []string{"f", "v"},
			Tuple: value.Tuple{value.NewInt(val), value.NewInt(0)},
			Score: score,
		}
	}
	tk.offer(mk(1.0, 1))
	tk.offer(mk(5.0, 1)) // same tuple, better score: replaces
	tk.offer(mk(2.0, 1)) // same tuple, worse: ignored
	out := tk.sorted()
	if len(out) != 1 || out[0].Score != 5.0 {
		t.Fatalf("dedup failed: %v", out)
	}
	tk.offer(mk(3.0, 2))
	tk.offer(mk(4.0, 3))
	tk.offer(mk(6.0, 4)) // evicts score 3
	out = tk.sorted()
	if len(out) != 3 {
		t.Fatalf("topK size = %d", len(out))
	}
	if out[0].Score != 6 || out[1].Score != 5 || out[2].Score != 4 {
		t.Errorf("topK order = %v %v %v", out[0].Score, out[1].Score, out[2].Score)
	}
	if min, full := tk.minScore(); !full || min != 4 {
		t.Errorf("minScore = %g, %v", min, full)
	}
}

func TestTopKMinScoreNotFull(t *testing.T) {
	tk := newTopK(5)
	if _, full := tk.minScore(); full {
		t.Error("empty topK should not report full")
	}
}

func TestExplanationString(t *testing.T) {
	e := Explanation{
		Relevant: pattern.Pattern{F: []string{"a"}, V: []string{"y"}, Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const},
		Refined:  pattern.Pattern{F: []string{"a", "v"}, V: []string{"y"}, Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const},
		Attrs:    []string{"a", "v", "y"},
		Tuple:    value.Tuple{value.NewString("AX"), value.NewString("ICDE"), value.NewInt(2007)},
		AggValue: value.NewInt(6),
		Score:    13.78,
	}
	s := e.String()
	if s == "" {
		t.Error("empty String()")
	}
	for _, want := range []string{"ICDE", "2007", "13.78"} {
		if !contains(s, want) {
			t.Errorf("String() %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestVisitOrderResultEquivalence: both NORM visit orders must return the
// same top-k (order only affects pruning efficiency, not correctness),
// and ascending must never check more candidates.
func TestVisitOrderResultEquivalence(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	asc, ascStats, err := GenOpt(sigkddQuestion(), tab, pats, Options{K: 5, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	desc, descStats, err := GenOpt(sigkddQuestion(), tab, pats, Options{K: 5, Metric: yearMetric(), DescendingNorm: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(asc) != len(desc) {
		t.Fatalf("lengths differ: %d vs %d", len(asc), len(desc))
	}
	for i := range asc {
		if asc[i].Score != desc[i].Score || !asc[i].Tuple.Equal(desc[i].Tuple) {
			t.Errorf("rank %d differs: %s vs %s", i, asc[i], desc[i])
		}
	}
	if ascStats.Candidates > descStats.Candidates {
		t.Errorf("ascending order checked more candidates (%d) than descending (%d)",
			ascStats.Candidates, descStats.Candidates)
	}
}

// TestTopKPrefixProperty: the top-k list must be a prefix of the
// top-(k+n) list — growing K only appends.
func TestTopKPrefixProperty(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	var prev []Explanation
	for _, k := range []int{1, 2, 5, 10, 25} {
		cur, _, err := Generate(sigkddQuestion(), tab, pats, Options{K: k, Metric: yearMetric()})
		if err != nil {
			t.Fatal(err)
		}
		for i := range prev {
			if i >= len(cur) {
				t.Fatalf("K=%d list shorter than previous", k)
			}
			if prev[i].Score != cur[i].Score || !prev[i].Tuple.Equal(cur[i].Tuple) {
				t.Errorf("K=%d: rank %d changed: %s vs %s", k, i, prev[i], cur[i])
			}
		}
		prev = cur
	}
}
