package explain

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/value"
)

// Generalization is an explanation by drill-up — the combination the
// paper's conclusion names as future work ("a unified system that
// combines explanations through counterbalance with explanations through
// generalization/specialization"). A generalization shows that a coarser
// aggregate derived from the question by dropping group-by attributes
// deviates in the *same* direction as the question: "AX's SIGKDD 2007
// count is low — and so is AX's total 2007 output", telling the user the
// outcome reflects a broader phenomenon rather than a venue-local shift.
type Generalization struct {
	// Pattern is the mined ARP whose local model supplies the
	// prediction.
	Pattern pattern.Pattern
	// Attrs/Tuple identify the coarser group: the question's values on
	// the pattern's F ∪ V.
	Attrs []string
	Tuple value.Tuple
	// AggValue is the coarser group's actual aggregate; Predicted the
	// local model's prediction for it.
	AggValue  value.V
	Predicted float64
	// Deviation = actual − predicted; its sign matches the question's
	// direction (negative for low questions).
	Deviation float64
	// Score is the relative deviation |dev| / (|predicted| + ε); higher
	// means the coarser aggregate is further from its own trend.
	Score float64
}

// String renders "(author=AX, year=2007) count(*)=46 is 14.00 below its
// trend (60.00) via [author]: year ...".
func (g Generalization) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, a := range g.Attrs {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", a, g.Tuple[i])
	}
	dir := "above"
	if g.Deviation < 0 {
		dir = "below"
	}
	fmt.Fprintf(&sb, ") %s=%s is %.2f %s its trend (%.2f) via %s",
		g.Pattern.Agg, g.AggValue, math.Abs(g.Deviation), dir, g.Predicted, g.Pattern)
	return sb.String()
}

// Generalize finds the question's same-direction deviations at coarser
// granularities: for every mined pattern whose attributes are a strict
// subset of the question's group-by (and whose aggregate matches), it
// compares the question's coarser aggregate against the pattern's local
// model and reports deviations in the question's direction, strongest
// relative deviation first.
func Generalize(q UserQuestion, r engine.Relation, patterns []*pattern.Mined, opt Options) ([]Generalization, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	var out []Generalization
	for _, m := range patterns {
		p := m.Pattern
		if p.Agg != q.Agg {
			continue
		}
		attrs := p.GroupAttrs()
		if len(attrs) >= len(q.GroupBy) {
			continue // not strictly coarser
		}
		tuple, ok := q.Project(attrs)
		if !ok {
			continue // uses attributes outside the question
		}
		frag, _ := q.Project(p.F)
		lm, ok := m.Local(frag)
		if !ok {
			continue
		}
		// The coarser group's actual aggregate over the full relation.
		sel, err := r.SelectEq(attrs, tuple)
		if err != nil {
			return nil, err
		}
		agged, err := sel.GroupBy(nil, []engine.AggSpec{p.Agg})
		if err != nil {
			return nil, err
		}
		if agged.NumRows() == 0 {
			continue
		}
		actualV := agged.Row(0)[0]
		actual, numeric := actualV.AsFloat()
		if !numeric {
			continue
		}
		vVals, _ := q.Project(p.V)
		var pred float64
		if enc, ok := pattern.EncodePredictors(vVals); ok {
			pred = lm.Model.Predict(enc)
		} else {
			pred = lm.Model.Predict(nil)
		}
		dev := actual - pred
		if (q.Dir == Low && dev >= 0) || (q.Dir == High && dev <= 0) {
			continue // deviates against (or not at all in) the question's direction
		}
		out = append(out, Generalization{
			Pattern:   p,
			Attrs:     attrs,
			Tuple:     tuple,
			AggValue:  actualV,
			Predicted: pred,
			Deviation: dev,
			Score:     math.Abs(dev) / (math.Abs(pred) + opt.Epsilon),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Pattern.Key() < out[j].Pattern.Key()
	})
	if len(out) > opt.K {
		out = out[:opt.K]
	}
	return out, nil
}
