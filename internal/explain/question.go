// Package explain implements CAPE's online phase (Section 3 of the
// paper): given a user question about a surprisingly high or low
// aggregate result and a set of mined aggregate regression patterns, it
// finds counterbalancing explanations — tuples that deviate in the
// opposite direction with respect to a refinement of a pattern relevant
// to the question — and ranks them by the deviation/distance score of
// Definition 10. Both the brute-force generator (Algorithm 1) and the
// bound-pruned generator (Section 3.5) are provided.
package explain

import (
	"fmt"
	"strings"

	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/value"
)

// Direction says whether the user finds the aggregate value lower or
// higher than expected.
type Direction uint8

const (
	// Low means "why is this value so low?" — counterbalances are
	// higher-than-predicted outcomes.
	Low Direction = iota
	// High means "why is this value so high?" — counterbalances are
	// lower-than-predicted outcomes.
	High
)

// String returns "low" or "high".
func (d Direction) String() string {
	if d == Low {
		return "low"
	}
	return "high"
}

// ParseDirection converts "low"/"high" (case-insensitive) to a Direction.
func ParseDirection(s string) (Direction, error) {
	switch strings.ToLower(s) {
	case "low":
		return Low, nil
	case "high":
		return High, nil
	}
	return 0, fmt.Errorf("explain: unknown direction %q", s)
}

// UserQuestion is Definition 1: an aggregate query (group-by attributes
// plus aggregate), one of its result tuples, and a direction. Values is
// aligned positionally with GroupBy; AggValue is the aggregate output the
// user is asking about.
type UserQuestion struct {
	GroupBy  []string
	Agg      engine.AggSpec
	Values   value.Tuple
	AggValue value.V
	Dir      Direction
}

// Validate checks structural consistency of the question.
func (q UserQuestion) Validate() error {
	if len(q.GroupBy) == 0 {
		return fmt.Errorf("explain: question has no group-by attributes")
	}
	if len(q.Values) != len(q.GroupBy) {
		return fmt.Errorf("explain: question has %d values for %d group-by attributes",
			len(q.Values), len(q.GroupBy))
	}
	seen := map[string]bool{}
	for _, a := range q.GroupBy {
		if seen[a] {
			return fmt.Errorf("explain: duplicate group-by attribute %q", a)
		}
		seen[a] = true
	}
	if q.Agg.IsStar() && q.Agg.Func != engine.Count {
		return fmt.Errorf("explain: %s requires an argument", q.Agg.Func)
	}
	return nil
}

// ValueOf returns the question's value for a group-by attribute.
func (q UserQuestion) ValueOf(attr string) (value.V, bool) {
	for i, a := range q.GroupBy {
		if a == attr {
			return q.Values[i], true
		}
	}
	return value.V{}, false
}

// Project extracts the question's values for the given attributes, in the
// given order. ok is false when any attribute is not part of the
// question's group-by.
func (q UserQuestion) Project(attrs []string) (value.Tuple, bool) {
	out := make(value.Tuple, len(attrs))
	for i, a := range attrs {
		v, found := q.ValueOf(a)
		if !found {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// DistTuple renders the question tuple for the distance metric:
// attribute-name-tagged values over the group-by attributes.
func (q UserQuestion) DistTuple() distance.Tuple {
	out := make(distance.Tuple, len(q.GroupBy))
	for i, a := range q.GroupBy {
		out[a] = q.Values[i]
	}
	return out
}

// String renders the question in the paper's style:
// "why is count(*) = 1 low for (author=AX, venue=SIGKDD, year=2007)?".
func (q UserQuestion) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "why is %s = %s %s for (", q.Agg, q.AggValue, q.Dir)
	for i, a := range q.GroupBy {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%s", a, q.Values[i])
	}
	sb.WriteString(")?")
	return sb.String()
}

// QuestionFromRow builds a question from one row of an aggregate query
// result whose schema is (groupBy..., agg). It verifies the row arity.
func QuestionFromRow(groupBy []string, agg engine.AggSpec, row value.Tuple, dir Direction) (UserQuestion, error) {
	if len(row) != len(groupBy)+1 {
		return UserQuestion{}, fmt.Errorf("explain: row has %d values, want %d group-by values plus aggregate",
			len(row), len(groupBy))
	}
	q := UserQuestion{
		GroupBy:  groupBy,
		Agg:      agg,
		Values:   row[:len(groupBy)].Clone(),
		AggValue: row[len(groupBy)],
		Dir:      dir,
	}
	return q, q.Validate()
}
