package explain

import (
	"fmt"
	"math/rand"
	"testing"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/value"
)

// randomBatchTable builds a randomized publication-shaped relation whose
// cardinalities vary per seed, so each round of the differential test
// mines a different pattern set.
func randomBatchTable(rng *rand.Rand, rows int) *engine.Table {
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "venue", Kind: value.String},
		{Name: "year", Kind: value.Int},
	})
	nAuthors := rng.Intn(10) + 3
	nVenues := rng.Intn(4) + 2
	nYears := rng.Intn(6) + 3
	venues := []string{"KDD", "ICDE", "VLDB", "SIGMOD", "PODS"}
	for i := 0; i < rows; i++ {
		tab.MustAppend(value.Tuple{
			value.NewString(string(rune('A' + rng.Intn(nAuthors)))),
			value.NewString(venues[rng.Intn(nVenues)]),
			value.NewInt(int64(2000 + rng.Intn(nYears))),
		})
	}
	return tab
}

// randomBatch draws a question batch exercising everything the batch
// planner shares and dedups: mixed directions, several group-by sets
// (and permuted attribute orders of the same set), exact duplicates,
// and invalid questions that must fail per item.
func randomBatch(t *testing.T, rng *rand.Rand, tab *engine.Table, n int) []UserQuestion {
	t.Helper()
	groupBys := [][]string{
		{"author", "venue", "year"},
		{"venue", "author", "year"}, // permuted: same signature set
		{"author", "year"},
		{"venue", "year"},
		{"author", "venue"},
	}
	var qs []UserQuestion
	for len(qs) < n {
		switch {
		case len(qs) > 2 && rng.Intn(4) == 0:
			// Exact duplicate of an earlier question.
			qs = append(qs, qs[rng.Intn(len(qs))])
		case len(qs) > 0 && rng.Intn(8) == 0:
			// Invalid: duplicate group-by attribute fails Validate.
			q := qs[rng.Intn(len(qs))]
			bad := q
			bad.GroupBy = append([]string{q.GroupBy[0]}, q.GroupBy...)
			bad.Values = append(value.Tuple{q.Values[0]}, q.Values...)
			qs = append(qs, bad)
		default:
			gb := groupBys[rng.Intn(len(groupBys))]
			grouped, err := tab.GroupBy(gb, []engine.AggSpec{{Func: engine.Count}})
			if err != nil {
				t.Fatal(err)
			}
			row := grouped.Row(rng.Intn(grouped.NumRows()))
			dir := Low
			if rng.Intn(2) == 1 {
				dir = High
			}
			q, err := QuestionFromRow(gb, engine.AggSpec{Func: engine.Count}, row, dir)
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, q)
		}
	}
	return qs
}

// requireBatchMatchesSequential checks one batch result element-wise
// against the sequential single-question path: identical explanations
// (every field), identical errors, and identical deterministic stats.
// candidatesExact says whether the batch ran with per-question
// parallelism 1: only then are PrunedRefinements and Candidates
// deterministic. Under parallel enumeration a stale bound can skip a
// different set of refinements than the sequential loop, and each
// skipped refinement also skips its candidate scan, so both counters
// legitimately vary (the explanations never do).
func requireBatchMatchesSequential(t *testing.T, label string, qs []UserQuestion, items []BatchItem,
	candidatesExact bool, sequential func(UserQuestion) ([]Explanation, *Stats, error)) {
	t.Helper()
	if len(items) != len(qs) {
		t.Fatalf("%s: %d items for %d questions", label, len(items), len(qs))
	}
	for i, q := range qs {
		want, wantStats, wantErr := sequential(q)
		got := items[i]
		if (wantErr != nil) != (got.Err != nil) {
			t.Fatalf("%s q%d: err = %v, sequential err = %v", label, i, got.Err, wantErr)
		}
		if wantErr != nil {
			if got.Err.Error() != wantErr.Error() {
				t.Errorf("%s q%d: err %q, sequential %q", label, i, got.Err, wantErr)
			}
			continue
		}
		requireIdentical(t, fmt.Sprintf("%s q%d", label, i), want, got.Explanations)
		if got.Stats == nil {
			t.Fatalf("%s q%d: nil stats", label, i)
		}
		if got.Stats.RelevantPatterns != wantStats.RelevantPatterns ||
			got.Stats.RefinementPairs != wantStats.RefinementPairs ||
			(candidatesExact && got.Stats.Candidates != wantStats.Candidates) {
			t.Errorf("%s q%d: stats (rel=%d pairs=%d cand=%d) vs sequential (rel=%d pairs=%d cand=%d)",
				label, i,
				got.Stats.RelevantPatterns, got.Stats.RefinementPairs, got.Stats.Candidates,
				wantStats.RelevantPatterns, wantStats.RefinementPairs, wantStats.Candidates)
		}
	}
}

// TestGenerateBatchEquivalenceRandomized is the differential property
// test of the batch planner: across randomized tables, pattern sets and
// batches (mixed directions, duplicates, permuted and differing
// group-bys, invalid questions), GenerateBatch must be element-wise
// identical to looping GenOpt — at batch parallelism 1 and >1.
func TestGenerateBatchEquivalenceRandomized(t *testing.T) {
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomBatchTable(rng, 200+rng.Intn(300))
		pats := mineLenient(t, tab, []string{"author", "venue", "year"})
		qs := randomBatch(t, rng, tab, 8+rng.Intn(9))
		sequential := func(q UserQuestion) ([]Explanation, *Stats, error) {
			return GenOpt(q, tab, pats, Options{K: 5, Metric: metric, Parallelism: 1})
		}
		for _, par := range []int{1, 8} {
			items := GenerateBatch(qs, tab, pats, Options{K: 5, Metric: metric, Parallelism: par})
			requireBatchMatchesSequential(t,
				fmt.Sprintf("seed %d par %d", seed, par), qs, items, par == 1, sequential)
		}
	}
}

// TestExplainerBatchEquivalence covers the warm-cache Explainer batch
// path (the server's) against its own single-question path, including a
// second batch over the already-warm cache.
func TestExplainerBatchEquivalence(t *testing.T) {
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 3000, Seed: 7})
	pats := mineLenient(t, tab, []string{"author", "venue", "year"})
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	ex := NewExplainer(tab, pats, Options{K: 10, Metric: metric, Parallelism: 4})
	qs := sampleQuestions(t, tab, []string{"author", "venue", "year"}, 6)
	qs = append(qs, qs[0], qs[2]) // duplicates
	sequential := func(q UserQuestion) ([]Explanation, *Stats, error) {
		return GenOpt(q, tab, pats, Options{K: 10, Metric: metric, Parallelism: 1})
	}
	for round := 0; round < 2; round++ {
		items := ex.ExplainBatch(qs)
		requireBatchMatchesSequential(t, fmt.Sprintf("round %d", round), qs, items, false, sequential)
	}
}

// TestGenerateBatchEdgeCases: empty batches, all-invalid batches, and
// batches larger than the worker budget must all behave.
func TestGenerateBatchEdgeCases(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	opt := Options{K: 5, Metric: yearMetric(), Parallelism: 4}

	if items := GenerateBatch(nil, tab, pats, opt); len(items) != 0 {
		t.Errorf("empty batch returned %d items", len(items))
	}

	bad := UserQuestion{} // empty group-by: fails Validate
	items := GenerateBatch([]UserQuestion{bad, bad}, tab, pats, opt)
	for i, it := range items {
		if it.Err == nil {
			t.Errorf("item %d: invalid question did not error", i)
		}
	}

	// One valid question fanned out far beyond the worker budget.
	q := sigkddQuestion()
	many := make([]UserQuestion, 40)
	for i := range many {
		many[i] = q
	}
	want, _, err := GenOpt(q, tab, pats, opt)
	if err != nil {
		t.Fatal(err)
	}
	items = GenerateBatch(many, tab, pats, opt)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		requireIdentical(t, fmt.Sprintf("dup %d", i), want, it.Explanations)
		if it.Stats == nil {
			t.Fatalf("item %d: nil stats", i)
		}
	}
	// Duplicate stats must be private copies, not shared pointers.
	if items[0].Stats == items[1].Stats {
		t.Error("duplicate items share one Stats pointer")
	}
}
