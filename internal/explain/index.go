package explain

import (
	"math/bits"
	"sort"
	"strings"

	"cape/internal/engine"
	"cape/internal/pattern"
)

// maxEnumAttrs bounds the subset enumerations below: past this many
// attributes 2^n explodes, so lookup and adjacency construction fall
// back to scanning group summaries, which is never worse than the
// linear pattern scan the index replaces.
const maxEnumAttrs = 12

// Index is an immutable structural-relevance index over one pattern
// set, built once per set (at load, mine, or maintenance) and shared by
// every question answered from it. It accelerates the two per-question
// scans of the serve path:
//
//   - Relevant pattern discovery (Definition 5's question-independent
//     half): patterns are bucketed by (aggregate, F ∪ V attribute set),
//     and a question grouped by G probes the buckets for subsets of G
//     instead of testing all P patterns. The per-question parts of
//     relevance — fragment projection, local hold, NORM — still run on
//     the survivors, so answers are byte-identical to the linear scan.
//   - Refinement lists (Definition 6): refs[i] precomputes
//     refinementsOf(patterns[i], patterns) — same patterns, same order —
//     replacing the O(P) rescan per relevant pattern.
//
// The index assumes its patterns pass Pattern.Validate (in particular,
// no duplicate attributes inside F or V), which everything the miner or
// a pattern store produces does.
type Index struct {
	patterns []*pattern.Mined
	pos      map[*pattern.Mined]int32

	buckets map[string]*idxBucket
	order   []*idxBucket // insertion order, for the fallback bucket scan

	refs [][]*pattern.Mined

	minAttrs, maxAttrs int
	maxBucket          int
	refEdges           int
}

// idxBucket is one (aggregate, F ∪ V set) equivalence class.
type idxBucket struct {
	agg   string
	attrs []string // sorted distinct F ∪ V
	idxs  []int32  // ascending pattern positions
}

// IndexStats summarizes an index for observability endpoints.
type IndexStats struct {
	Patterns  int `json:"patterns"`
	Buckets   int `json:"buckets"`
	MaxBucket int `json:"maxBucket"`
	RefEdges  int `json:"refEdges"`
}

// NewIndex builds the relevance index for a pattern set. Cost is
// O(P · 2^|F|) with the small |F| the miner produces; the result is
// read-only and safe for concurrent use.
func NewIndex(patterns []*pattern.Mined) *Index {
	ix := &Index{
		patterns: patterns,
		pos:      make(map[*pattern.Mined]int32, len(patterns)),
		buckets:  make(map[string]*idxBucket),
		refs:     make([][]*pattern.Mined, len(patterns)),
		minAttrs: -1,
	}
	for i, m := range patterns {
		ix.pos[m] = int32(i)
		attrs := pattern.SortedSet(m.Pattern.F, m.Pattern.V)
		key := m.Pattern.Agg.String() + "\x1e" + strings.Join(attrs, "\x1f")
		b := ix.buckets[key]
		if b == nil {
			b = &idxBucket{agg: m.Pattern.Agg.String(), attrs: attrs}
			ix.buckets[key] = b
			ix.order = append(ix.order, b)
		}
		b.idxs = append(b.idxs, int32(i))
		if len(b.idxs) > ix.maxBucket {
			ix.maxBucket = len(b.idxs)
		}
		if n := len(attrs); ix.minAttrs < 0 || n < ix.minAttrs {
			ix.minAttrs = n
		}
		if n := len(attrs); n > ix.maxAttrs {
			ix.maxAttrs = n
		}
	}
	ix.buildRefs()
	return ix
}

// buildRefs precomputes the refinement adjacency. Patterns are grouped
// by (aggregate, V set) — Refines requires both equal — and each
// candidate refinement c contributes itself to every group member whose
// F set is a subset of c's F, found by enumerating the subsets of c's F
// against an exact F-set table. Candidates are visited in pattern-slice
// order, so every refs list matches refinementsOf's output order.
func (ix *Index) buildRefs() {
	type vGroup struct {
		idxs  []int32            // ascending member positions
		exact map[string][]int32 // F-set signature → ascending positions
	}
	groups := make(map[string]*vGroup)
	fSets := make([][]string, len(ix.patterns))
	vKeys := make([]string, len(ix.patterns))
	for i, m := range ix.patterns {
		fSets[i] = pattern.SortedSet(m.Pattern.F)
		vKeys[i] = m.Pattern.Agg.String() + "\x1e" + strings.Join(pattern.SortedSet(m.Pattern.V), "\x1f")
		g := groups[vKeys[i]]
		if g == nil {
			g = &vGroup{exact: make(map[string][]int32)}
			groups[vKeys[i]] = g
		}
		g.idxs = append(g.idxs, int32(i))
		sig := strings.Join(fSets[i], "\x1f")
		g.exact[sig] = append(g.exact[sig], int32(i))
	}
	var sb strings.Builder
	for j, m := range ix.patterns {
		g := groups[vKeys[j]]
		f := fSets[j]
		if len(f) <= maxEnumAttrs {
			for mask := 1; mask < 1<<uint(len(f)); mask++ {
				sb.Reset()
				for k := 0; k < len(f); k++ {
					if mask&(1<<uint(k)) == 0 {
						continue
					}
					if sb.Len() > 0 {
						sb.WriteByte('\x1f')
					}
					sb.WriteString(f[k])
				}
				for _, pi := range g.exact[sb.String()] {
					ix.refs[pi] = append(ix.refs[pi], m)
					ix.refEdges++
				}
			}
		} else {
			for _, pi := range g.idxs {
				if subsetSorted(fSets[pi], f) {
					ix.refs[pi] = append(ix.refs[pi], m)
					ix.refEdges++
				}
			}
		}
	}
}

// Relevant returns the positions (ascending, i.e. pattern-slice order)
// of every pattern passing the structural half of Definition 5 for a
// question grouped by groupBy with aggregate agg: same aggregate and
// F ∪ V ⊆ groupBy. When the subset space of the group-by is small
// relative to the bucket count it enumerates subsets of groupBy;
// otherwise it scans the bucket summaries — either way O(buckets) at
// worst instead of O(patterns).
func (ix *Index) Relevant(groupBy []string, agg engine.AggSpec) []int32 {
	if len(ix.order) == 0 {
		return nil
	}
	g := pattern.SortedSet(groupBy)
	aggKey := agg.String()
	var out []int32
	if len(g) <= maxEnumAttrs && (1<<uint(len(g))) <= 2*len(ix.order) {
		var sb strings.Builder
		for mask := 1; mask < 1<<uint(len(g)); mask++ {
			n := bits.OnesCount(uint(mask))
			if n < ix.minAttrs || n > ix.maxAttrs {
				continue
			}
			sb.Reset()
			sb.WriteString(aggKey)
			sb.WriteByte('\x1e')
			first := true
			for k := 0; k < len(g); k++ {
				if mask&(1<<uint(k)) == 0 {
					continue
				}
				if !first {
					sb.WriteByte('\x1f')
				}
				first = false
				sb.WriteString(g[k])
			}
			if b := ix.buckets[sb.String()]; b != nil {
				out = append(out, b.idxs...)
			}
		}
	} else {
		for _, b := range ix.order {
			if b.agg == aggKey && subsetSorted(b.attrs, g) {
				out = append(out, b.idxs...)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Refinements returns refinementsOf(m, patterns) from the precomputed
// adjacency — same patterns, same order. Patterns outside the indexed
// set (which the generator never passes) fall back to the linear scan.
func (ix *Index) Refinements(m *pattern.Mined) []*pattern.Mined {
	if i, ok := ix.pos[m]; ok {
		return ix.refs[i]
	}
	return refinementsOf(m, ix.patterns)
}

// Stats reports the index shape.
func (ix *Index) Stats() IndexStats {
	return IndexStats{
		Patterns:  len(ix.patterns),
		Buckets:   len(ix.order),
		MaxBucket: ix.maxBucket,
		RefEdges:  ix.refEdges,
	}
}

// subsetSorted reports a ⊆ b for sorted, duplicate-free slices.
func subsetSorted(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
