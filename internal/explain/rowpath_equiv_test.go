package explain

import (
	"fmt"
	"math/rand"
	"testing"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
)

// requireStatsEqual asserts every Stats counter matches. Only valid for
// sequential (parallelism-1) runs, where all four counters are
// deterministic — including Candidates, which the columnar enumerate
// path counts row-for-row like the boxed reference.
func requireStatsEqual(t *testing.T, label string, want, got *Stats) {
	t.Helper()
	if *want != *got {
		t.Errorf("%s: stats %+v vs %+v", label, *want, *got)
	}
}

// TestExplainRowPathEquivalence is the end-to-end differential test of
// the columnar explain path: generation over a ForceRowPath clone (all
// engine operators and the enumerate scan on the boxed reference
// implementations) must produce identical explanations and identical
// sequential Stats — explanation-by-explanation, field-by-field —
// across both generators and randomized inputs.
func TestExplainRowPathEquivalence(t *testing.T) {
	metric := distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})
	tables := []*engine.Table{
		dataset.GenerateDBLP(dataset.DBLPConfig{Rows: 2000, Seed: 3}),
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tables = append(tables, randomBatchTable(rng, 150+rng.Intn(250)))
	}
	for ti, tab := range tables {
		pats := mineLenient(t, tab, []string{"author", "venue", "year"})
		rowTab := tab.Clone().ForceRowPath(true)
		qs := sampleQuestions(t, tab, []string{"author", "venue", "year"}, 4)
		qs = append(qs, sampleQuestions(t, tab, []string{"author", "year"}, 2)...)
		opt := Options{K: 8, Metric: metric, Parallelism: 1}
		for qi, q := range qs {
			label := fmt.Sprintf("table %d question %d", ti, qi)
			want, wantStats, err := GenOpt(q, rowTab, pats, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := GenOpt(q, tab, pats, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, label+" GenOpt", want, got)
			requireStatsEqual(t, label+" GenOpt", wantStats, gotStats)

			wantN, wantNStats, err := GenNaive(q, rowTab, pats, opt)
			if err != nil {
				t.Fatal(err)
			}
			gotN, gotNStats, err := GenNaive(q, tab, pats, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, label+" GenNaive", wantN, gotN)
			requireStatsEqual(t, label+" GenNaive", wantNStats, gotNStats)
		}
	}
}
