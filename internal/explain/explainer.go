package explain

import (
	"cape/internal/engine"
	"cape/internal/pattern"
)

// Explainer answers many questions over one relation and pattern set,
// reusing the aggregate query results that candidate enumeration scans.
// A fresh Generate call re-groups the relation for every refined pattern
// it visits; in an interactive session asking several questions, those
// group-bys are identical across questions, so the Explainer caches
// them. The cache is sharded (concurrent questions needing different
// groupings do not contend on one lock) with singleflight duplicate
// suppression (N concurrent questions needing the same grouping compute
// it once). It is safe for concurrent use.
type Explainer struct {
	r        engine.Relation
	patterns []*pattern.Mined
	opt      Options
	cache    *groupCache
	// idx is the structural relevance index over patterns, built at
	// construction and rebuilt by SetPatterns — the serve path's
	// load/admission-time index (questions never pay the build cost).
	idx *Index
}

// NewExplainer builds an explainer over the relation and mined patterns.
// The options supply defaults for every question; ExplainOpts' per-call
// options override fields that are set.
func NewExplainer(r engine.Relation, patterns []*pattern.Mined, opt Options) *Explainer {
	return &Explainer{
		r:        r,
		patterns: patterns,
		opt:      opt.withDefaults(),
		cache:    newGroupCache(),
		idx:      NewIndex(patterns),
	}
}

// Explain answers one question with the bound-pruned generator under the
// explainer's default options, reusing cached aggregate results across
// calls.
func (e *Explainer) Explain(q UserQuestion) ([]Explanation, *Stats, error) {
	return e.ExplainOpts(q, e.opt)
}

// ExplainOpts answers one question with per-call options: zero-valued
// fields fall back to the explainer's defaults. This is the shape a
// server needs — per-request K, metric, or parallelism while still
// sharing one warm group-by cache across every request for the table.
func (e *Explainer) ExplainOpts(q UserQuestion, opt Options) ([]Explanation, *Stats, error) {
	merged := e.merged(opt)
	idx := e.idx
	if merged.LinearScan {
		idx = nil
	}
	g, rel, stats, err := prepareIndexed(q, e.r, e.patterns, merged, idx)
	if err != nil {
		return nil, nil, err
	}
	// Swap in the shared sharded cache.
	g.lookup = e.cachedGrouped
	expls, err := g.run(rel, stats)
	if err != nil {
		return nil, nil, err
	}
	return expls, stats, nil
}

// merged overlays the set fields of opt onto the explainer defaults.
func (e *Explainer) merged(opt Options) Options {
	out := e.opt
	if opt.K > 0 {
		out.K = opt.K
	}
	if opt.Metric != nil {
		out.Metric = opt.Metric
	}
	if opt.Epsilon > 0 {
		out.Epsilon = opt.Epsilon
	}
	if opt.Parallelism != 0 {
		out.Parallelism = opt.Parallelism
	}
	if opt.DescendingNorm {
		out.DescendingNorm = true
	}
	if opt.LinearScan {
		out.LinearScan = true
	}
	return out
}

// CachedGroupings reports how many distinct aggregate results are held.
func (e *Explainer) CachedGroupings() int {
	return e.cache.len()
}

// SetPatterns swaps the pattern set the explainer answers from — the
// maintenance path after an append updates patterns without discarding
// the group-by cache (entries invalidate themselves lazily, per
// grouping, via the table epoch). The caller must exclude concurrent
// Explain calls while swapping, as the server's append path does.
func (e *Explainer) SetPatterns(patterns []*pattern.Mined) {
	e.patterns = patterns
	e.idx = NewIndex(patterns)
}

// IndexStats reports the shape of the explainer's relevance index.
func (e *Explainer) IndexStats() IndexStats {
	return e.idx.Stats()
}

// cachedGrouped is the shared, sharded variant of generator.grouped.
// Results are stamped with the relation's epoch: after an append, each
// grouping recomputes on its next use, while groupings the questions
// never revisit cost nothing.
func (e *Explainer) cachedGrouped(p pattern.Pattern) (*engine.Table, error) {
	return e.cache.get(groupKey(p), e.r.Epoch(), func() (*engine.Table, error) {
		return e.r.GroupBy(p.GroupAttrs(), []engine.AggSpec{p.Agg})
	})
}
