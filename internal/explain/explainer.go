package explain

import (
	"strings"
	"sync"

	"cape/internal/engine"
	"cape/internal/pattern"
)

// Explainer answers many questions over one relation and pattern set,
// reusing the aggregate query results that candidate enumeration scans.
// A fresh Generate call re-groups the relation for every refined pattern
// it visits; in an interactive session asking several questions, those
// group-bys are identical across questions, so the Explainer caches them.
// It is safe for concurrent use.
type Explainer struct {
	r        *engine.Table
	patterns []*pattern.Mined
	opt      Options

	mu    sync.Mutex
	cache map[string]*engine.Table
}

// NewExplainer builds an explainer over the relation and mined patterns.
// The options supply defaults for every question; Explain's per-call
// options override fields that are set.
func NewExplainer(r *engine.Table, patterns []*pattern.Mined, opt Options) *Explainer {
	return &Explainer{
		r:        r,
		patterns: patterns,
		opt:      opt.withDefaults(),
		cache:    make(map[string]*engine.Table),
	}
}

// Explain answers one question with the bound-pruned generator, reusing
// cached aggregate results across calls.
func (e *Explainer) Explain(q UserQuestion) ([]Explanation, *Stats, error) {
	g, rel, stats, err := prepare(q, e.r, e.patterns, e.opt)
	if err != nil {
		return nil, nil, err
	}
	// Swap in the shared cache behind a lock-guarded getter.
	g.lookup = e.cachedGrouped
	if e.opt.DescendingNorm {
		sortRelevant(rel, true)
	} else {
		sortRelevant(rel, false)
	}
	tk := newTopK(g.opt.K)
	for _, re := range rel {
		for _, ref := range refinementsOf(re.mined, e.patterns) {
			stats.RefinementPairs++
			if min, full := tk.minScore(); full {
				// Strict comparison: a refinement whose bound ties the
				// current k-th score could still win the key tiebreak.
				if g.scoreBound(re, ref) < min {
					stats.PrunedRefinements++
					continue
				}
			}
			if err := g.enumerate(re, ref, tk, stats); err != nil {
				return nil, nil, err
			}
		}
	}
	return tk.sorted(), stats, nil
}

// CachedGroupings reports how many distinct aggregate results are held.
func (e *Explainer) CachedGroupings() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// cachedGrouped is the shared, locked variant of generator.grouped.
func (e *Explainer) cachedGrouped(p pattern.Pattern) (*engine.Table, error) {
	key := strings.Join(p.GroupAttrs(), "\x1f") + "\x1e" + p.Agg.String()
	e.mu.Lock()
	t, ok := e.cache[key]
	e.mu.Unlock()
	if ok {
		return t, nil
	}
	t, err := e.r.GroupBy(p.GroupAttrs(), []engine.AggSpec{p.Agg})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.cache[key] = t
	e.mu.Unlock()
	return t, nil
}

// sortRelevant orders relevant patterns by NORM.
func sortRelevant(rel []relevantEntry, descending bool) {
	for i := 1; i < len(rel); i++ {
		for j := i; j > 0; j-- {
			less := rel[j].norm < rel[j-1].norm
			if descending {
				less = rel[j].norm > rel[j-1].norm
			}
			if !less {
				break
			}
			rel[j-1], rel[j] = rel[j], rel[j-1]
		}
	}
}
