package explain

import (
	"strings"
	"testing"

	"cape/internal/value"
)

func TestNarrateLowQuestion(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	q := sigkddQuestion()
	expls, _, err := Generate(q, tab, pats, Options{K: 1, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) == 0 {
		t.Fatal("no explanations")
	}
	text := expls[0].Narrate(q)
	for _, want := range []string{
		"lower than usual",
		"counterbalance",
		"ICDE",
		"2007",
		"above",
		"predicts",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("narration missing %q:\n%s", want, text)
		}
	}
}

func TestNarrateHighQuestion(t *testing.T) {
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	q := sigkddQuestion()
	q.Dir = High
	q.Values[1] = value.NewString("ICDE")
	q.AggValue = value.NewInt(7)
	expls, _, err := Generate(q, tab, pats, Options{K: 1, Metric: yearMetric()})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) == 0 {
		t.Fatal("no explanations")
	}
	text := expls[0].Narrate(q)
	if !strings.Contains(text, "higher than usual") || !strings.Contains(text, "below") {
		t.Errorf("high-direction narration wrong:\n%s", text)
	}
	// Deviation is rendered as a magnitude, never with a minus sign.
	if strings.Contains(text, "is -") {
		t.Errorf("narration leaks signed deviation:\n%s", text)
	}
}
