package explain

import (
	"strings"
	"testing"

	"cape/internal/engine"
	"cape/internal/value"
)

// generalizationExample builds data where AX's entire 2007 output is
// depressed (not just one venue): every venue has 2 instead of 4 papers
// in 2007, so the question about SIGKDD 2007 generalizes to "AX's 2007
// total is low".
func generalizationExample(t testing.TB) *engine.Table {
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "venue", Kind: value.String},
		{Name: "year", Kind: value.Int},
	})
	add := func(author, venue string, year int64, n int) {
		for i := 0; i < n; i++ {
			tab.MustAppend(value.Tuple{
				value.NewString(author), value.NewString(venue), value.NewInt(year),
			})
		}
	}
	for year := int64(2005); year <= 2009; year++ {
		for _, v := range []string{"SIGKDD", "VLDB", "ICDE"} {
			n := 4
			if year == 2007 {
				n = 2 // author-wide dip
			}
			add("AX", v, year, n)
			add("AY", v, year, 3)
			add("AZ", v, year, 3)
		}
	}
	return tab
}

func TestGeneralizeFindsAuthorWideDip(t *testing.T) {
	tab := generalizationExample(t)
	pats := minePatterns(t, tab)
	q := UserQuestion{
		GroupBy: []string{"author", "venue", "year"},
		Agg:     engine.AggSpec{Func: engine.Count},
		Values: value.Tuple{
			value.NewString("AX"), value.NewString("SIGKDD"), value.NewInt(2007),
		},
		AggValue: value.NewInt(2),
		Dir:      Low,
	}
	gens, err := Generalize(q, tab, pats, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) == 0 {
		t.Fatal("no generalizations found for an author-wide dip")
	}
	// The strongest generalization should be the author-year dip: AX's
	// 2007 total (6) well below the ~12 trend.
	top := gens[0]
	if top.Deviation >= 0 {
		t.Errorf("low question must generalize to negative deviation: %+v", top)
	}
	s := top.String()
	if !strings.Contains(s, "AX") || !strings.Contains(s, "2007") || !strings.Contains(s, "below") {
		t.Errorf("top generalization = %s", s)
	}
	// Every generalization is strictly coarser than the question.
	for _, g := range gens {
		if len(g.Attrs) >= len(q.GroupBy) {
			t.Errorf("generalization not coarser: %v", g.Attrs)
		}
		if g.Deviation >= 0 {
			t.Errorf("wrong-direction generalization: %s", g)
		}
	}
}

func TestGeneralizeNoDipNoFindings(t *testing.T) {
	// In the counterbalanced running example AX's yearly totals are
	// exactly constant, so no author-level generalization should fire
	// for the low question.
	tab := runningExample(t)
	pats := minePatterns(t, tab)
	gens, err := Generalize(sigkddQuestion(), tab, pats, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gens {
		isAuthorYear := len(g.Attrs) == 2 &&
			((g.Attrs[0] == "author" && g.Attrs[1] == "year") ||
				(g.Attrs[0] == "year" && g.Attrs[1] == "author"))
		if isAuthorYear {
			t.Errorf("author-year generalization on perfectly-counterbalanced data: %s", g)
		}
	}
}

func TestGeneralizeHighDirection(t *testing.T) {
	tab := generalizationExample(t)
	pats := minePatterns(t, tab)
	// 2005's values sit slightly above the (dip-lowered) constant model,
	// so a high question should generalize with positive deviations only.
	q := UserQuestion{
		GroupBy: []string{"author", "venue", "year"},
		Agg:     engine.AggSpec{Func: engine.Count},
		Values: value.Tuple{
			value.NewString("AX"), value.NewString("SIGKDD"), value.NewInt(2005),
		},
		AggValue: value.NewInt(4),
		Dir:      High,
	}
	gens, err := Generalize(q, tab, pats, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gens {
		if g.Deviation <= 0 {
			t.Errorf("high question requires positive deviations: %s", g)
		}
	}
}

func TestGeneralizeInvalidQuestion(t *testing.T) {
	tab := generalizationExample(t)
	if _, err := Generalize(UserQuestion{}, tab, nil, Options{}); err == nil {
		t.Error("invalid question should error")
	}
}

func TestGeneralizeKLimit(t *testing.T) {
	tab := generalizationExample(t)
	pats := minePatterns(t, tab)
	q := UserQuestion{
		GroupBy: []string{"author", "venue", "year"},
		Agg:     engine.AggSpec{Func: engine.Count},
		Values: value.Tuple{
			value.NewString("AX"), value.NewString("SIGKDD"), value.NewInt(2007),
		},
		AggValue: value.NewInt(2),
		Dir:      Low,
	}
	gens, err := Generalize(q, tab, pats, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) > 1 {
		t.Errorf("K=1 returned %d generalizations", len(gens))
	}
}
