package explain

import (
	"context"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/value"
)

// BatchItem is the outcome of one question in a batch: the question's
// ranked explanations with their generation stats, or the error that
// prevented them. Err is nil exactly when Explanations/Stats are valid.
type BatchItem struct {
	Explanations []Explanation
	Stats        *Stats
	Err          error
}

// GenerateBatch answers many questions over one relation and pattern
// set in a single pass. Per-question output is identical to calling
// Generate on each question in isolation — same explanations, same
// order, same deterministic stats — but the batch amortizes the work
// the questions share:
//
//   - the structural relevance scan runs once per distinct
//     (group-by set, aggregate) signature instead of once per question;
//   - refinement lists are resolved once per pattern for the whole
//     batch instead of once per (question, relevant pattern);
//   - the γ_{F'∪V, agg}(R) aggregate results are held in one
//     singleflight group-by cache shared by every question, so each
//     distinct grouping is computed at most once per batch;
//   - opt.Parallelism fans the questions across a worker pool, and
//     byte-identical duplicate questions are answered once and copied.
//
// Questions that fail validation (or error during generation) yield a
// per-item Err without affecting the other items.
func GenerateBatch(qs []UserQuestion, r engine.Relation, patterns []*pattern.Mined, opt Options) []BatchItem {
	cache := newGroupCache()
	lookup := func(p pattern.Pattern) (*engine.Table, error) {
		return cache.get(groupKey(p), r.Epoch(), func() (*engine.Table, error) {
			return r.GroupBy(p.GroupAttrs(), []engine.AggSpec{p.Agg})
		})
	}
	opt = opt.withDefaults()
	var idx *Index
	if !opt.LinearScan {
		idx = NewIndex(patterns)
	}
	return runBatch(qs, r, patterns, opt, lookup, idx)
}

// ExplainBatch answers a batch of questions under the explainer's
// default options, sharing the explainer's warm group-by cache both
// across the batch and with every other Explain/ExplainBatch call.
func (e *Explainer) ExplainBatch(qs []UserQuestion) []BatchItem {
	return e.ExplainBatchOpts(qs, e.opt)
}

// ExplainBatchOpts is ExplainBatch with per-call options; zero-valued
// fields fall back to the explainer's defaults (the same overlay rule
// as ExplainOpts).
func (e *Explainer) ExplainBatchOpts(qs []UserQuestion, opt Options) []BatchItem {
	merged := e.merged(opt)
	idx := e.idx
	if merged.LinearScan {
		idx = nil
	}
	return runBatch(qs, e.r, e.patterns, merged, e.cachedGrouped, idx)
}

// batchPlan is the state one batch shares across its questions: the
// structurally relevant pattern subset per question signature and the
// memoized refinement lists.
type batchPlan struct {
	patterns []*pattern.Mined
	// structRel maps a question signature — the group-by attribute set
	// plus aggregate, which is all the attribute-containment checks of
	// Definition 5 depend on — to the indices of patterns passing them.
	// Questions sharing a signature share this scan; the per-question
	// parts of relevance (fragment projection, local hold, NORM) still
	// run per question.
	structRel map[string][]int
	// refs memoizes refinementsOf for every structurally relevant
	// pattern on the linear reference path; when the plan is built over
	// an index, the index's precomputed adjacency serves instead.
	refs map[*pattern.Mined][]*pattern.Mined
	idx  *Index
}

func newBatchPlan(qs []UserQuestion, patterns []*pattern.Mined, idx *Index) *batchPlan {
	bp := &batchPlan{
		patterns:  patterns,
		structRel: make(map[string][]int),
		refs:      make(map[*pattern.Mined][]*pattern.Mined),
		idx:       idx,
	}
	for _, q := range qs {
		key := signatureKey(q)
		if _, done := bp.structRel[key]; done {
			continue
		}
		if idx != nil {
			rel := idx.Relevant(q.GroupBy, q.Agg)
			idxs := make([]int, len(rel))
			for i, pi := range rel {
				idxs[i] = int(pi)
			}
			bp.structRel[key] = idxs
			continue
		}
		gset := make(map[string]bool, len(q.GroupBy))
		for _, a := range q.GroupBy {
			gset[a] = true
		}
		idxs := []int{}
		for i, m := range patterns {
			if !structuralMatch(m, gset, q.Agg) {
				continue
			}
			idxs = append(idxs, i)
			if _, ok := bp.refs[m]; !ok {
				bp.refs[m] = refinementsOf(m, patterns)
			}
		}
		bp.structRel[key] = idxs
	}
	return bp
}

// refine serves the generator's refinement hook from the index's
// adjacency or the memoized lists. Both are read-only after
// newBatchPlan, so concurrent reads from the question workers are safe.
func (bp *batchPlan) refine(m *pattern.Mined) []*pattern.Mined {
	if bp.idx != nil {
		return bp.idx.Refinements(m)
	}
	if refs, ok := bp.refs[m]; ok {
		return refs
	}
	return refinementsOf(m, bp.patterns)
}

// structuralMatch is the question-value-independent part of
// Definition 5: the pattern shares the aggregate and uses only
// attributes of the question's group-by. Patterns failing it are
// irrelevant to every question with this signature.
func structuralMatch(m *pattern.Mined, gset map[string]bool, agg engine.AggSpec) bool {
	if m.Pattern.Agg != agg {
		return false
	}
	for _, a := range m.Pattern.F {
		if !gset[a] {
			return false
		}
	}
	for _, a := range m.Pattern.V {
		if !gset[a] {
			return false
		}
	}
	return true
}

// signatureKey identifies the (group-by set, aggregate) signature of a
// question. The attribute order is canonicalized so questions that
// group by the same set in different orders share one scan.
func signatureKey(q UserQuestion) string {
	attrs := append([]string(nil), q.GroupBy...)
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j-1] > attrs[j]; j-- {
			attrs[j-1], attrs[j] = attrs[j], attrs[j-1]
		}
	}
	return strings.Join(attrs, "\x1f") + "\x1e" + q.Agg.String()
}

// questionKey identifies a question completely (attributes, aggregate,
// values, aggregate value, direction) for duplicate suppression. Tuple
// keys are type-tagged, so e.g. Int(1) and String("1") do not collide.
func questionKey(q UserQuestion) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(q.GroupBy, "\x1f"))
	sb.WriteByte('\x1e')
	sb.WriteString(q.Agg.String())
	sb.WriteByte('\x1e')
	sb.WriteString(q.Values.Key())
	sb.WriteByte('\x1e')
	sb.WriteString(value.Tuple{q.AggValue}.Key())
	sb.WriteByte('\x1e')
	sb.WriteByte('0' + byte(q.Dir))
	return sb.String()
}

// runBatch executes the planner + worker pool over validated options.
// opt must already have defaults applied.
func runBatch(qs []UserQuestion, r engine.Relation, patterns []*pattern.Mined, opt Options,
	lookup func(pattern.Pattern) (*engine.Table, error), idx *Index) []BatchItem {

	items := make([]BatchItem, len(qs))
	if len(qs) == 0 {
		return items
	}
	plan := newBatchPlan(qs, patterns, idx)

	// Duplicate questions are answered once: canon[i] is the index of
	// the first occurrence of qs[i]'s key, and only those first
	// occurrences enter the work queue.
	canon := make([]int, len(qs))
	firstOf := make(map[string]int, len(qs))
	distinct := make([]int, 0, len(qs))
	for i, q := range qs {
		k := questionKey(q)
		if j, seen := firstOf[k]; seen {
			canon[i] = j
			continue
		}
		firstOf[k] = i
		canon[i] = i
		distinct = append(distinct, i)
	}

	// Split the worker budget: up to opt.Parallelism questions in
	// flight, and whatever is left over fans each question's own
	// (pattern, refinement) pairs. Per-question output is deterministic
	// at every split, so the division is a pure scheduling choice.
	batchWorkers := opt.workers()
	if batchWorkers > len(distinct) {
		batchWorkers = len(distinct)
	}
	perQ := opt
	perQ.Parallelism = opt.workers() / batchWorkers
	if perQ.Parallelism < 1 {
		perQ.Parallelism = 1
	}

	answer := func(i int) {
		items[i].Explanations, items[i].Stats, items[i].Err = plan.explainOne(qs[i], r, perQ, lookup)
	}
	if batchWorkers <= 1 {
		for _, i := range distinct {
			answer(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		labels := pprof.Labels("cape_pool", "explain:batch")
		for w := 0; w < batchWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pprof.Do(context.Background(), labels, func(context.Context) {
					for {
						n := int(next.Add(1)) - 1
						if n >= len(distinct) {
							return
						}
						answer(distinct[n])
					}
				})
			}()
		}
		wg.Wait()
	}

	// Fill duplicates from their canonical answer. Explanations are
	// immutable once returned, so sharing the slice is safe; Stats gets
	// a private copy so callers may aggregate in place.
	for i, j := range canon {
		if i == j {
			continue
		}
		items[i] = BatchItem{Explanations: items[j].Explanations, Err: items[j].Err}
		if items[j].Stats != nil {
			st := *items[j].Stats
			items[i].Stats = &st
		}
	}
	return items
}

// explainOne runs the standard bound-pruned generation for one question
// of the batch, with the shared lookup and refinement hooks swapped in.
// Semantics are exactly prepare+run: the structural prefilter only
// skips patterns Definition 5 would reject anyway, and g.relevant
// re-derives the per-question parts unchanged.
func (bp *batchPlan) explainOne(q UserQuestion, r engine.Relation, opt Options,
	lookup func(pattern.Pattern) (*engine.Table, error)) ([]Explanation, *Stats, error) {

	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	g := &generator{q: q, r: r, opt: opt, lookup: lookup, refine: bp.refine}
	stats := &Stats{}
	var rel []relevantEntry
	for _, pi := range bp.structRel[signatureKey(q)] {
		re, ok, err := g.relevant(bp.patterns[pi])
		if err != nil {
			return nil, nil, err
		}
		if ok {
			rel = append(rel, re)
			stats.RelevantPatterns++
		}
	}
	expls, err := g.run(rel, stats)
	if err != nil {
		return nil, nil, err
	}
	return expls, stats, nil
}
