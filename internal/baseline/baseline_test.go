package baseline

import (
	"testing"

	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/value"
)

func smallTable(t *testing.T) *engine.Table {
	t.Helper()
	tab := engine.NewTable(engine.Schema{
		{Name: "venue", Kind: value.String},
		{Name: "year", Kind: value.Int},
	})
	add := func(venue string, year int64, n int) {
		for i := 0; i < n; i++ {
			tab.MustAppend(value.Tuple{value.NewString(venue), value.NewInt(year)})
		}
	}
	add("KDD", 2006, 4)
	add("KDD", 2007, 1) // the low outlier
	add("KDD", 2008, 4)
	add("ICDE", 2007, 9) // big counterbalance
	add("VLDB", 2007, 2) // below average: not a counterbalance for "low"
	return tab
}

func lowQuestion() explain.UserQuestion {
	return explain.UserQuestion{
		GroupBy:  []string{"venue", "year"},
		Agg:      engine.AggSpec{Func: engine.Count},
		Values:   value.Tuple{value.NewString("KDD"), value.NewInt(2007)},
		AggValue: value.NewInt(1),
		Dir:      explain.Low,
	}
}

func TestBaselineFindsAboveAverageRows(t *testing.T) {
	tab := smallTable(t)
	// Result rows: 4, 1, 4, 9, 2 → avg = 4.
	expls, err := Explain(lowQuestion(), tab, Options{K: 10, Metric: distance.NewMetric().SetFunc("year", distance.Numeric{Scale: 4})})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) != 1 {
		t.Fatalf("explanations = %d, want 1 (only ICDE 2007 above avg)", len(expls))
	}
	top := expls[0]
	if top.Tuple[0].Str() != "ICDE" || top.Tuple[1].Int() != 2007 {
		t.Errorf("top = %s, want ICDE 2007", top)
	}
	if top.Deviation != 5 {
		t.Errorf("deviation = %g, want 5 (9−4)", top.Deviation)
	}
	if top.Score <= 0 {
		t.Errorf("score = %g", top.Score)
	}
}

func TestBaselineHighDirection(t *testing.T) {
	tab := smallTable(t)
	q := explain.UserQuestion{
		GroupBy:  []string{"venue", "year"},
		Agg:      engine.AggSpec{Func: engine.Count},
		Values:   value.Tuple{value.NewString("ICDE"), value.NewInt(2007)},
		AggValue: value.NewInt(9),
		Dir:      explain.High,
	}
	expls, err := Explain(q, tab, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range expls {
		if e.Deviation >= 0 {
			t.Errorf("high question requires below-average rows: %s", e)
		}
	}
	if len(expls) != 2 { // KDD 2007 (1) and VLDB 2007 (2) below avg 4
		t.Errorf("explanations = %d, want 2", len(expls))
	}
	if expls[0].Tuple[0].Str() != "KDD" {
		t.Errorf("strongest below-average should be KDD 2007: %s", expls[0])
	}
}

func TestBaselineExcludesQuestionTuple(t *testing.T) {
	tab := smallTable(t)
	expls, err := Explain(lowQuestion(), tab, Options{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range expls {
		if e.Tuple.Equal(lowQuestion().Values) {
			t.Error("question tuple must be excluded")
		}
	}
}

func TestBaselineKLimit(t *testing.T) {
	tab := engine.NewTable(engine.Schema{{Name: "g", Kind: value.Int}})
	for g := int64(0); g < 20; g++ {
		for i := int64(0); i <= g; i++ {
			tab.MustAppend(value.Tuple{value.NewInt(g)})
		}
	}
	q := explain.UserQuestion{
		GroupBy:  []string{"g"},
		Agg:      engine.AggSpec{Func: engine.Count},
		Values:   value.Tuple{value.NewInt(0)},
		AggValue: value.NewInt(1),
		Dir:      explain.Low,
	}
	expls, err := Explain(q, tab, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) != 3 {
		t.Errorf("K=3 returned %d", len(expls))
	}
	// Sorted descending.
	for i := 1; i < len(expls); i++ {
		if expls[i].Score > expls[i-1].Score {
			t.Error("not sorted by score")
		}
	}
}

func TestBaselineInvalidQuestion(t *testing.T) {
	tab := smallTable(t)
	if _, err := Explain(explain.UserQuestion{}, tab, Options{}); err == nil {
		t.Error("invalid question should error")
	}
}

func TestBaselineString(t *testing.T) {
	e := Explanation{
		Attrs:    []string{"venue"},
		Tuple:    value.Tuple{value.NewString("ICDE")},
		AggValue: value.NewInt(9),
		Score:    1.5,
	}
	if s := e.String(); s == "" {
		t.Error("empty String")
	}
}
