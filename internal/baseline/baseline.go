// Package baseline implements the comparison method of Appendix A.2 in
// the CAPE paper: counterbalances are sought only within the result of
// the user's own query, scored by deviation from the result's average
// aggregate value divided by distance to the question tuple. It is
// pattern-blind — it cannot tell a predictably high value from an
// unusually high one, and it cannot produce coarser- or finer-grained
// explanations — which is exactly the contrast Tables 6 and 7 of the
// paper illustrate.
package baseline

import (
	"fmt"
	"sort"

	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/value"
)

// Explanation is a counterbalance from the question's own query result.
type Explanation struct {
	// Attrs and Tuple give the result row's group-by values.
	Attrs []string
	Tuple value.Tuple
	// AggValue is the row's aggregate output.
	AggValue value.V
	// Deviation is AggValue − mean(aggregate over the query result).
	Deviation float64
	// Distance is the metric distance to the question tuple.
	Distance float64
	// Score is |Deviation| / (Distance + ε) for rows deviating opposite
	// to the question's direction.
	Score float64
}

// String renders the explanation compactly.
func (e Explanation) String() string {
	s := "("
	for i, a := range e.Attrs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%s", a, e.Tuple[i])
	}
	return s + fmt.Sprintf(", agg=%s) score=%.2f dev=%+.2f", e.AggValue, e.Score, e.Deviation)
}

// Options configures the baseline explainer.
type Options struct {
	// K is the number of explanations to return (default 10).
	K int
	// Metric supplies attribute distances; nil means categorical with
	// equal weights.
	Metric *distance.Metric
	// Epsilon guards the distance denominator (default 1e-9).
	Epsilon float64
}

// Explain evaluates the question's query over r and ranks opposite-
// direction deviations from the result average.
func Explain(q explain.UserQuestion, r *engine.Table, opt Options) ([]Explanation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opt.K <= 0 {
		opt.K = 10
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = 1e-9
	}

	result, err := r.GroupBy(q.GroupBy, []engine.AggSpec{q.Agg})
	if err != nil {
		return nil, err
	}
	aggIdx := len(q.GroupBy)

	// Average aggregate value over the whole query result.
	var sum float64
	var n int
	for _, row := range result.Rows() {
		if f, ok := row[aggIdx].AsFloat(); ok {
			sum += f
			n++
		}
	}
	if n == 0 {
		return nil, nil
	}
	avg := sum / float64(n)

	isLow := 1.0
	if q.Dir == explain.High {
		isLow = -1
	}
	qDist := q.DistTuple()

	var out []Explanation
	for _, row := range result.Rows() {
		tup := value.Tuple(row[:aggIdx])
		if tup.Equal(q.Values) {
			continue
		}
		f, ok := row[aggIdx].AsFloat()
		if !ok {
			continue
		}
		dev := f - avg
		if dev*isLow <= 0 {
			continue // deviates in the question's own direction
		}
		dt := make(distance.Tuple, len(q.GroupBy))
		for i, a := range q.GroupBy {
			dt[a] = tup[i]
		}
		d := opt.Metric.Distance(qDist, dt)
		out = append(out, Explanation{
			Attrs:     q.GroupBy,
			Tuple:     tup.Clone(),
			AggValue:  row[aggIdx],
			Deviation: dev,
			Distance:  d,
			Score:     dev * isLow / (d + opt.Epsilon),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tuple.Key() < out[j].Tuple.Key()
	})
	if len(out) > opt.K {
		out = out[:opt.K]
	}
	return out, nil
}
