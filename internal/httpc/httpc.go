// Package httpc provides the tuned HTTP client shared by every CAPE
// process that talks to a capeserver — the coordinator's scatter-gather
// fan-out and the cape CLI's -server mode. A default http.Client per
// request would open a fresh TCP connection each call; under the
// open-loop load harness that exhausts ephemeral ports long before the
// shards saturate. One shared Transport with generous per-host idle
// pools keeps connections alive across requests.
package httpc

import (
	"net"
	"net/http"
	"time"
)

// NewTransport returns a keep-alive-tuned transport sized for fanning
// requests out to shardCount backends. MaxIdleConnsPerHost is raised to
// at least max(shardCount, 32) so a coordinator holding N shard
// connections plus a burst of concurrent fan-outs never churns the idle
// pool (the net/http default of 2 would close and reopen connections on
// every scatter).
func NewTransport(shardCount int) *http.Transport {
	perHost := shardCount
	if perHost < 32 {
		perHost = 32
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          4 * perHost,
		MaxIdleConnsPerHost:   perHost,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// NewClient wraps NewTransport in a client with no global timeout:
// callers bound each request with a context deadline instead (the
// coordinator's per-shard deadline, the CLI's -timeout flag), which
// composes with retries and keeps slow-but-progressing streams alive.
func NewClient(shardCount int) *http.Client {
	return &http.Client{Transport: NewTransport(shardCount)}
}

// Default is the process-wide shared client for CAPE HTTP callers that
// do not manage their own (the cape CLI). Sized for a typical small
// deployment; the coordinator builds its own via NewClient with the
// real shard count.
var Default = NewClient(8)
