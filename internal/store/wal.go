package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"cape/internal/value"
)

// WAL format: a flat sequence of frames, each
//
//	length  uint32 LE   payload bytes (excludes this 8-byte header)
//	crc     uint32 LE   CRC-32C over the payload
//	payload             one JSON record terminated by '\n'
//
// The payload is a JSONL batch record: {"seq":N,"rows":[[v,...],...]}
// with each value in the kind-tagged object form value.V marshals, so a
// WAL is greppable/jq-able after stripping frames, and a frame is
// self-validating: a torn tail (short header, short payload, CRC
// mismatch, malformed JSON) is detected exactly at the first bad frame.
// Sequence numbers are assigned by the store, increase by one per
// batch, and tie the WAL to the manifest's flushedSeq watermark.

// walMaxFrame bounds a single frame so a corrupt length field cannot
// drive a giant allocation. 64 MiB matches the server's request cap.
const walMaxFrame = 64 << 20

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// Record is one WAL batch record.
type Record struct {
	// Seq is the batch sequence number, starting at 1 and increasing by
	// one per appended batch over the life of the store.
	Seq uint64 `json:"seq"`
	// Rows is the appended batch, values in kind-tagged form.
	Rows []value.Tuple `json:"rows"`
}

// EncodeFrame serializes one record into its framed wire form.
func EncodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	payload = append(payload, '\n')
	if len(payload) > walMaxFrame {
		return nil, fmt.Errorf("store: WAL record of %d bytes exceeds frame limit %d", len(payload), walMaxFrame)
	}
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, walCRC))
	frame = append(frame, payload...)
	return frame, nil
}

// ScanWAL decodes frames from data. It returns every whole valid record
// in order, the byte offset just past the last whole valid frame, and —
// when the file does not end exactly at a frame boundary — an error
// describing the first malformed frame. Recovery treats a malformed
// suffix as a torn tail: everything before goodLen is intact (each
// frame is CRC-checked), everything after is discarded and truncated
// away before new appends land. The scanner never panics on arbitrary
// input (fuzzed by FuzzWALRecord).
func ScanWAL(data []byte) (recs []Record, goodLen int, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return recs, off, fmt.Errorf("store: torn WAL frame header at offset %d (%d trailing bytes)", off, len(rest))
		}
		length := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if length == 0 || length > walMaxFrame {
			return recs, off, fmt.Errorf("store: bad WAL frame length %d at offset %d", length, off)
		}
		if len(rest) < 8+length {
			return recs, off, fmt.Errorf("store: torn WAL payload at offset %d (want %d bytes, have %d)", off, length, len(rest)-8)
		}
		payload := rest[8 : 8+length]
		if got := crc32.Checksum(payload, walCRC); got != crc {
			return recs, off, fmt.Errorf("store: WAL frame CRC mismatch at offset %d (stored %08x, computed %08x)", off, crc, got)
		}
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return recs, off, fmt.Errorf("store: WAL record at offset %d: %v", off, jerr)
		}
		recs = append(recs, rec)
		off += 8 + length
	}
	return recs, off, nil
}
