package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"cape/internal/engine"
	"cape/internal/value"
)

// testSchema is the fixture table: two categorical columns and one
// numeric, enough for pattern mining to find fragments and fits.
func testSchema() engine.Schema {
	return engine.Schema{
		{Name: "region", Kind: value.String},
		{Name: "product", Kind: value.String},
		{Name: "sales", Kind: value.Int},
	}
}

// testBatches builds n deterministic append batches of 4 rows each.
// Within a (region, product) group, sales grow linearly in the batch
// index, so Const fits hold per count aggregates and Lin fits appear on
// sums — the mining differential has real patterns to disagree on.
func testBatches(n int) [][]value.Tuple {
	regions := []string{"east", "west"}
	out := make([][]value.Tuple, n)
	for b := 0; b < n; b++ {
		batch := make([]value.Tuple, 0, 4)
		for i := 0; i < 4; i++ {
			batch = append(batch, value.Tuple{
				value.NewString(regions[b%len(regions)]),
				value.NewString(fmt.Sprintf("p%d", i%2)),
				value.NewInt(int64(10*b + i)),
			})
		}
		out[b] = batch
	}
	return out
}

func flatten(batches [][]value.Tuple) []value.Tuple {
	var out []value.Tuple
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// tableRows materializes every row of a relation (copied).
func tableRows(t *testing.T, tab engine.MutableRelation) []value.Tuple {
	t.Helper()
	var out []value.Tuple
	err := tab.ScanRows(0, tab.NumRows(), func(row value.Tuple) error {
		cp := make(value.Tuple, len(row))
		copy(cp, row)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// requireRowsEqual checks field-identical row sequences.
func requireRowsEqual(t *testing.T, label string, got, want []value.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for r := range got {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("%s: row %d has %d fields, want %d", label, r, len(got[r]), len(want[r]))
		}
		for c := range got[r] {
			if !value.Equal(got[r][c], want[r][c]) {
				t.Fatalf("%s: row %d col %d = %s, want %s", label, r, c, got[r][c], want[r][c])
			}
		}
	}
}

func mustCreate(t *testing.T, fs FS, opt Options) *Store {
	t.Helper()
	opt.FS = fs
	st, err := Create("data", "sales", testSchema(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreRoundtrip: append + flush + close, then reopen and get the
// same rows, epoch, and a replay-free boot (the close sealed the tail).
func TestStoreRoundtrip(t *testing.T) {
	fs := NewMemFS()
	st := mustCreate(t, fs, Options{})
	batches := testBatches(5)
	for i, b := range batches {
		seq, err := st.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("batch %d got seq %d", i, seq)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "reopen", tableRows(t, re.Table()), flatten(batches))
	info := re.Info()
	if info.Replayed != 0 {
		t.Errorf("clean close still replayed %d batches", info.Replayed)
	}
	if info.Epoch != uint64(len(batches)) {
		t.Errorf("epoch %d, want %d", info.Epoch, len(batches))
	}
	if info.Table != "sales" {
		t.Errorf("table %q", info.Table)
	}
	if info.SealedRows != info.Rows {
		t.Errorf("sealed %d of %d rows after close", info.SealedRows, info.Rows)
	}
}

// TestStoreReplayWithoutFlush: no flush ever runs; reopen must rebuild
// everything from the WAL alone with the exact epoch trajectory.
func TestStoreReplayWithoutFlush(t *testing.T) {
	fs := NewMemFS()
	st := mustCreate(t, fs, Options{})
	batches := testBatches(4)
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate a hard stop with a fully synced WAL.
	re, err := Open("data", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "replayed", tableRows(t, re.Table()), flatten(batches))
	if got := re.Info().Replayed; got != len(batches) {
		t.Errorf("replayed %d batches, want %d", got, len(batches))
	}
	if got := re.Table().Epoch(); got != uint64(len(batches)) {
		t.Errorf("epoch %d, want %d", got, len(batches))
	}
	// The reopened store continues the sequence where the old one left off.
	seq, err := re.Append(testBatches(5)[4])
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(batches)+1) {
		t.Errorf("resumed at seq %d, want %d", seq, len(batches)+1)
	}
}

// TestStoreDiskFS exercises the production filesystem end to end in a
// temp dir: create, auto-flush, reopen, and resume.
func TestStoreDiskFS(t *testing.T) {
	dir := t.TempDir() + "/store"
	st, err := Create(dir, "sales", testSchema(), Options{FlushEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	batches := testBatches(6)
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireRowsEqual(t, "disk reopen", tableRows(t, re.Table()), flatten(batches))
	if re.Info().Segments == 0 {
		t.Error("auto-flush never sealed a segment")
	}
	if _, err := re.Append(testBatches(7)[6]); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSegTableBacking: a SegTable backing adopts recovered
// segments zero-copy and compacts its tail on flush, so its in-memory
// segment list mirrors the on-disk one.
func TestStoreSegTableBacking(t *testing.T) {
	opt := Options{
		FlushEvery: 8,
		Backing: func(s engine.Schema) engine.MutableRelation {
			return engine.NewSegTable(s)
		},
	}
	fs := NewMemFS()
	st := mustCreate(t, fs, opt)
	batches := testBatches(6)
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	seg := st.Table().(*engine.SegTable)
	if seg.NumSegments() == 0 {
		t.Fatal("flush did not compact the SegTable tail")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open("data", opt.withFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "segtable reopen", tableRows(t, re.Table()), flatten(batches))
	reseg := re.Table().(*engine.SegTable)
	if reseg.NumSegments() != re.Info().Segments {
		t.Errorf("backing has %d segments, manifest has %d", reseg.NumSegments(), re.Info().Segments)
	}
	if reseg.TailRows() != 0 {
		t.Errorf("recovered tail holds %d rows, want 0", reseg.TailRows())
	}
	// The compressed kernels answer over the recovered segments.
	n, err := reseg.CountDistinct([]string{"region"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("CountDistinct(region) = %d, want 2", n)
	}
}

func (o Options) withFS(fs FS) Options { o.FS = fs; return o }

// TestStoreRejectsInvalidBatch: bad rows are rejected whole, before any
// WAL byte is written.
func TestStoreRejectsInvalidBatch(t *testing.T) {
	fs := NewMemFS()
	st := mustCreate(t, fs, Options{})
	before, _ := fs.ReadFile("data/" + walName)
	bad := []value.Tuple{
		{value.NewString("east"), value.NewString("p0"), value.NewInt(1)},
		{value.NewString("east"), value.NewInt(7), value.NewInt(2)}, // wrong kind
	}
	if _, err := st.Append(bad); !errors.Is(err, ErrInvalidBatch) {
		t.Fatalf("err = %v, want ErrInvalidBatch", err)
	}
	if _, err := st.Append([]value.Tuple{{value.NewString("x")}}); !errors.Is(err, ErrInvalidBatch) {
		t.Fatal("short row must be rejected")
	}
	after, _ := fs.ReadFile("data/" + walName)
	if !bytes.Equal(before, after) {
		t.Fatal("rejected batch reached the WAL")
	}
	if st.Table().NumRows() != 0 {
		t.Fatal("rejected batch reached the table")
	}
	// A rejection is not a fault: the store keeps serving.
	if _, err := st.Append(testBatches(1)[0]); err != nil {
		t.Fatal(err)
	}
}

// TestStoreFsyncFailurePoisons: when the WAL fsync fails, durability is
// unknown — the append must error and the store must refuse everything
// after, rather than acknowledge on hope.
func TestStoreFsyncFailurePoisons(t *testing.T) {
	ffs := NewFaultFS(nil)
	st := mustCreate(t, ffs, Options{})
	if _, err := st.Append(testBatches(1)[0]); err != nil {
		t.Fatal(err)
	}
	ffs.SyncErrAfter(ffs.syncs + 1) // the next append's WAL fsync
	if _, err := st.Append(testBatches(2)[1]); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("append err = %v, want ErrInjectedIO", err)
	}
	if _, err := st.Append(testBatches(3)[2]); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after fault = %v, want ErrPoisoned", err)
	}
	if err := st.Flush(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("flush after fault = %v, want ErrPoisoned", err)
	}
	if err := st.Err(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Err() = %v", err)
	}
	// Reopening recovers the acknowledged prefix: batch 1 only, or
	// batches 1-2 if the unsynced frame happened to survive — here the
	// inner MemFS kept the written bytes, so both replay.
	re, err := Open("data", Options{FS: ffs.Inner()})
	if err != nil {
		t.Fatal(err)
	}
	if n := re.Table().NumRows(); n < 4 {
		t.Errorf("recovered %d rows, want at least the acked batch (4)", n)
	}
}

// TestStoreShortWritePoisons: a short WAL append leaves a torn frame;
// the store must not ack and must go read-only. Reopen trims the torn
// tail and keeps serving.
func TestStoreShortWritePoisons(t *testing.T) {
	ffs := NewFaultFS(nil)
	st := mustCreate(t, ffs, Options{})
	if _, err := st.Append(testBatches(1)[0]); err != nil {
		t.Fatal(err)
	}
	ffs.ShortWriteAfter(ffs.writes + 1)
	if _, err := st.Append(testBatches(2)[1]); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("append err = %v, want ErrInjectedIO", err)
	}
	if _, err := st.Append(testBatches(3)[2]); !errors.Is(err, ErrPoisoned) {
		t.Fatal("store must be poisoned after a short append")
	}
	re, err := Open("data", Options{FS: ffs.Inner()})
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "post-torn-frame", tableRows(t, re.Table()), testBatches(1)[0])
	// The trimmed WAL accepts the batch again on a clean boundary.
	if _, err := re.Append(testBatches(2)[1]); err != nil {
		t.Fatal(err)
	}
	re2, err := Open("data", Options{FS: ffs.Inner()})
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "after retry", tableRows(t, re2.Table()), flatten(testBatches(2)))
}

// TestStoreCreateCollision: creating over an existing store fails.
func TestStoreCreateCollision(t *testing.T) {
	fs := NewMemFS()
	mustCreate(t, fs, Options{})
	if _, err := Create("data", "sales", testSchema(), Options{FS: fs}); !errors.Is(err, ErrStoreExists) {
		t.Fatalf("err = %v, want ErrStoreExists", err)
	}
	if _, err := Open("elsewhere", Options{FS: fs}); !errors.Is(err, ErrNoStore) {
		t.Fatalf("err = %v, want ErrNoStore", err)
	}
}

// TestStoreReadOnlyOpen: a read-only open serves rows (including the
// un-trimmed torn tail case) but refuses writes and repairs nothing.
func TestStoreReadOnlyOpen(t *testing.T) {
	fs := NewMemFS()
	st := mustCreate(t, fs, Options{})
	batches := testBatches(3)
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the WAL tail by hand.
	wal, _ := fs.ReadFile("data/" + walName)
	torn := append(append([]byte(nil), wal...), 0xde, 0xad)
	tornFS := SeedMemFS(map[string][]byte{
		"data/" + manifestName: mustRead(t, fs, "data/"+manifestName),
		"data/" + walName:      torn,
	})
	ro, err := Open("data", Options{FS: tornFS, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "readonly", tableRows(t, ro.Table()), flatten(batches))
	if _, err := ro.Append(batches[0]); err == nil {
		t.Fatal("read-only store accepted an append")
	}
	if err := ro.Flush(); err == nil {
		t.Fatal("read-only store accepted a flush")
	}
	if got, _ := tornFS.ReadFile("data/" + walName); !bytes.Equal(got, torn) {
		t.Fatal("read-only open repaired the WAL")
	}
}

func mustRead(t *testing.T, fs FS, path string) []byte {
	t.Helper()
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestExportImportRoundtrip: the JSONL backup reproduces rows and epoch
// in a fresh store.
func TestExportImportRoundtrip(t *testing.T) {
	fs := NewMemFS()
	st := mustCreate(t, fs, Options{})
	batches := testBatches(4)
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := st.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	fs2 := NewMemFS()
	im, err := ImportJSONL("restored", bytes.NewReader(buf.Bytes()), Options{FS: fs2})
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "import", tableRows(t, im.Table()), flatten(batches))
	if got, want := im.Table().Epoch(), st.Table().Epoch(); got != want {
		t.Errorf("imported epoch %d, want %d (stamps must stay comparable)", got, want)
	}
	if im.TableName() != "sales" {
		t.Errorf("imported table %q", im.TableName())
	}
	// The imported store reopens like any other.
	if err := im.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open("restored", Options{FS: fs2})
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, "import reopen", tableRows(t, re.Table()), flatten(batches))

	// A truncated stream fails loudly.
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	short := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	if _, err := ImportJSONL("bad", bytes.NewReader(short), Options{FS: NewMemFS()}); err == nil {
		t.Fatal("truncated backup imported silently")
	}
}

// TestManifestCorruptionFailsLoudly: flipped bytes anywhere in the
// manifest must refuse to load.
func TestManifestCorruptionFailsLoudly(t *testing.T) {
	fs := NewMemFS()
	st := mustCreate(t, fs, Options{})
	if _, err := st.Append(testBatches(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	man := mustRead(t, fs, "data/"+manifestName)
	wal := mustRead(t, fs, "data/"+walName)
	segs := map[string][]byte{}
	names, _ := fs.ReadDir("data")
	for _, n := range names {
		if n != manifestName && n != walName {
			segs["data/"+n] = mustRead(t, fs, "data/"+n)
		}
	}
	for i := 0; i < len(man); i += 7 {
		bad := append([]byte(nil), man...)
		bad[i] ^= 0x40
		seed := map[string][]byte{"data/" + manifestName: bad, "data/" + walName: wal}
		for k, v := range segs {
			seed[k] = v
		}
		if _, err := Open("data", Options{FS: SeedMemFS(seed)}); err == nil {
			t.Fatalf("manifest with byte %d flipped loaded without error", i)
		}
	}
}
