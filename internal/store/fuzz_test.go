package store

import (
	"encoding/binary"
	"testing"

	"cape/internal/value"
)

// FuzzWALRecord throws arbitrary bytes at the WAL frame/JSONL decoder.
// The contract under fuzzing: never panic, never allocate past the
// frame bound, and — the recovery invariant — whatever prefix it does
// accept must re-encode to exactly the input bytes it consumed
// (goodLen), with strictly increasing sequence numbers preserved as
// written. Corrupted CRCs and truncated frames must surface as errors,
// not records.
func FuzzWALRecord(f *testing.F) {
	// Seeds: a valid two-frame log, plus each canonical corruption.
	frame1, err := EncodeFrame(Record{Seq: 1, Rows: []value.Tuple{
		{value.NewString("east"), value.NewInt(7)},
	}})
	if err != nil {
		f.Fatal(err)
	}
	frame2, err := EncodeFrame(Record{Seq: 2, Rows: []value.Tuple{
		{value.NewNull(), value.NewFloat(1.5)},
	}})
	if err != nil {
		f.Fatal(err)
	}
	valid := append(append([]byte(nil), frame1...), frame2...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])  // truncated payload
	f.Add(valid[:len(frame1)+5]) // truncated header
	flipped := append([]byte(nil), valid...)
	flipped[6] ^= 0xff // corrupt payload byte → CRC mismatch
	f.Add(flipped)
	badCRC := append([]byte(nil), valid...)
	badCRC[4] ^= 0x01 // corrupt stored CRC
	f.Add(badCRC)
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint32(huge, 1<<31) // absurd length field
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, err := ScanWAL(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d outside [0, %d]", goodLen, len(data))
		}
		if err == nil && goodLen != len(data) {
			t.Fatalf("no error but only %d of %d bytes consumed", goodLen, len(data))
		}
		// Round-trip: the accepted prefix re-encodes byte-identically,
		// so recovery's truncate-to-goodLen keeps exactly these records.
		off := 0
		for i, rec := range recs {
			enc, eerr := EncodeFrame(rec)
			if eerr != nil {
				t.Fatalf("record %d decoded but does not re-encode: %v", i, eerr)
			}
			if off+len(enc) > goodLen {
				t.Fatalf("record %d runs past goodLen", i)
			}
			if string(enc) != string(data[off:off+len(enc)]) {
				// JSON with different key order / whitespace decodes to
				// the same record; the frame boundary must still match
				// the original length field.
				length := int(binary.LittleEndian.Uint32(data[off:]))
				off += 8 + length
				continue
			}
			off += len(enc)
		}
		if off > goodLen {
			t.Fatalf("records cover %d bytes, goodLen %d", off, goodLen)
		}
	})
}
