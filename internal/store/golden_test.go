package store

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cape/internal/mining"
	"cape/internal/pattern"
)

// -regen-golden rewrites testdata/golden from the generator below. The
// committed bytes pin the on-disk format: if a change regresses WAL
// framing, the manifest encoding, or the segment format, this test
// fails against the old files instead of silently reading the new
// dialect.
var regenGolden = flag.Bool("regen-golden", false, "rewrite testdata/golden")

const goldenDir = "testdata/golden"

// The frozen history behind testdata/golden: batches 1-2 sealed into
// one segment (flush at 8 rows), batch 3 alive only in the WAL — the
// store was cut off without a clean close, as after a crash.
func generateGolden(t *testing.T) {
	t.Helper()
	if err := os.RemoveAll(goldenDir); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(goldenDir, "data")
	st, err := Create(dataDir, "sales", testSchema(), Options{FlushEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	batches := testBatches(3)
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the tail batch must stay WAL-only, like a hard stop.
	// (Close would seal it into a second segment.)
	st.wal.Close()

	// A pattern store mined at the sealed watermark (rows=8, epoch=2):
	// recovery must read it as stale-but-maintainable. Rebuild that
	// state by opening a WAL-less snapshot of the fresh image.
	part, err := Open(dataDir, Options{FS: snapshotWithoutWAL(t)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.ARPMine(part.Table(), miningOpts())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := mining.SpecFor(part.Table(), miningOpts())
	if err != nil {
		t.Fatal(err)
	}
	stamp := &pattern.StoreStamp{Epoch: part.Table().Epoch(), Rows: part.Table().NumRows()}
	if _, err := pattern.SaveStoreStamped(filepath.Join(goldenDir, "patterns"), "sales", res.Patterns, stamp, spec); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s", goldenDir)
}

// snapshotWithoutWAL rebuilds the golden store's on-disk state as of
// the flush watermark: manifest + segment only, no WAL.
func snapshotWithoutWAL(t *testing.T) FS {
	t.Helper()
	seed := map[string][]byte{}
	names, err := DiskFS{}.ReadDir(filepath.Join(goldenDir, "data"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == walName {
			continue
		}
		data, err := os.ReadFile(filepath.Join(goldenDir, "data", n))
		if err != nil {
			t.Fatal(err)
		}
		seed[join(filepath.Join(goldenDir, "data"), n)] = data
	}
	return SeedMemFS(seed)
}

// copyGolden clones the committed data dir into a temp dir so the test
// never mutates testdata (Open repairs torn tails and appends in place).
func copyGolden(t *testing.T) string {
	t.Helper()
	src := filepath.Join(goldenDir, "data")
	dst := filepath.Join(t.TempDir(), "data")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := DiskFS{}.ReadDir(src)
	if err != nil {
		t.Fatalf("read golden dir (regenerate with -regen-golden): %v", err)
	}
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(src, n))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, n), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestGoldenRecovery opens the committed store image and pins every
// recovery-visible fact: the replayed batch count, the row total, the
// epoch trajectory, the segment list, and the staleness arithmetic of
// the committed pattern store against the recovered table.
func TestGoldenRecovery(t *testing.T) {
	if *regenGolden {
		generateGolden(t)
	}
	dir := copyGolden(t)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("golden image no longer recovers: %v", err)
	}
	defer st.Close()

	info := st.Info()
	if info.Table != "sales" {
		t.Errorf("table %q, want sales", info.Table)
	}
	if info.Rows != 12 {
		t.Errorf("rows %d, want 12", info.Rows)
	}
	if info.SealedRows != 8 {
		t.Errorf("sealed rows %d, want 8 (one flushed segment)", info.SealedRows)
	}
	if info.Segments != 1 {
		t.Errorf("segments %d, want 1", info.Segments)
	}
	if info.Replayed != 1 {
		t.Errorf("replayed %d WAL batches, want 1", info.Replayed)
	}
	if info.Epoch != 3 {
		t.Errorf("epoch %d, want 3 (flush at 2, one replayed batch)", info.Epoch)
	}
	if info.FlushedSeq != 2 || info.NextSeq != 4 {
		t.Errorf("watermarks flushed=%d next=%d, want 2/4", info.FlushedSeq, info.NextSeq)
	}
	requireRowsEqual(t, "golden rows", tableRows(t, st.Table()), flatten(testBatches(3)))

	// The committed pattern store was stamped at the flush watermark
	// (rows=8, epoch=2): behind the recovered table on both axes but
	// with rows a clean prefix — the stale-but-maintainable shape. A
	// maintainer resumed from its spec must heal it to a cold re-mine.
	entries, err := pattern.LoadStoreEntries(filepath.Join(goldenDir, "patterns"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Table != "sales" {
		t.Fatalf("golden pattern store holds %d entries", len(entries))
	}
	entry := entries[0]
	if entry.Stamp == nil || entry.Stamp.Rows != 8 || entry.Stamp.Epoch != 2 {
		t.Fatalf("golden stamp = %+v, want rows=8 epoch=2", entry.Stamp)
	}
	if entry.Stamp.Rows > info.Rows || entry.Stamp.Epoch > info.Epoch {
		t.Fatal("golden stamp reads as from-the-future against the recovered table")
	}
	opt, err := mining.OptionsFromSpec(entry.Spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mining.NewMaintainer(st.Table(), opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := mining.ARPMine(st.Table(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := pattern.WriteJSON(&got, m.Patterns()); err != nil {
		t.Fatal(err)
	}
	if err := pattern.WriteJSON(&want, cold.Patterns); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("healed pattern set diverges from cold re-mine over the golden table")
	}
	if len(cold.Patterns) == 0 {
		t.Error("golden table mines no patterns; the staleness pinning is vacuous")
	}

	// The recovered store stays writable: one more batch, one more
	// reopen.
	if _, err := st.Append(testBatches(4)[3]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	requireRowsEqual(t, "golden resumed", tableRows(t, re.Table()), flatten(testBatches(4)))
}
