package store

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"cape/internal/engine"
	"cape/internal/value"
)

// SyncPolicy says when the WAL is fsynced relative to acknowledging an
// append.
type SyncPolicy int

const (
	// SyncAlways fsyncs the WAL before every append returns. An
	// acknowledged batch survives any crash (the ack-durability
	// invariant the recovery matrix checks).
	SyncAlways SyncPolicy = iota
	// SyncNever leaves WAL writeback to the OS and to flushes. Crashes
	// may lose a suffix of acknowledged batches — never a prefix, never
	// a torn batch.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("store: unknown sync policy %q (want always or never)", s)
	}
}

// ErrInvalidBatch wraps validation failures on appended rows: the batch
// was rejected whole and nothing was logged or applied.
var ErrInvalidBatch = errors.New("store: invalid batch")

// ErrNoStore is returned by Open when dir holds no store (no manifest).
var ErrNoStore = errors.New("store: no store in directory")

// ErrStoreExists is returned by Create/Bootstrap when dir already holds
// one.
var ErrStoreExists = errors.New("store: store already exists")

// ErrPoisoned wraps the fault that disabled a store. After any write
// whose durability is unknown (a failed fsync, a failed WAL append or
// flush), the store refuses all further writes — acknowledging on top
// of an unknown-durability state would break the ack invariant.
var ErrPoisoned = errors.New("store: disabled after I/O fault")

// Options configures a store.
type Options struct {
	// FS is the filesystem to run on; nil means DiskFS.
	FS FS
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// FlushEvery seals the WAL tail into a segment whenever at least
	// this many unflushed rows have accumulated; 0 disables automatic
	// flushing (Flush and Close still seal).
	FlushEvery int
	// Backing builds the in-memory relation the store maintains. nil
	// means a dense *engine.Table — the representation the server
	// catalogues. A *engine.SegTable backing additionally compacts its
	// tail on every flush, keeping memory bounded at paper scale.
	Backing func(engine.Schema) engine.MutableRelation
	// ReadOnly opens without repairing the WAL tail or taking the
	// append handle; Append and Flush fail.
	ReadOnly bool
}

func (o Options) fs() FS {
	if o.FS == nil {
		return DiskFS{}
	}
	return o.FS
}

func (o Options) backing(schema engine.Schema) engine.MutableRelation {
	if o.Backing == nil {
		return engine.NewTable(schema)
	}
	return o.Backing(schema)
}

// epochRestorer is the recovery hook both engine table representations
// implement.
type epochRestorer interface{ RestoreEpoch(uint64) }

// Info is a snapshot of a store's state, for logs and status output.
type Info struct {
	Table      string
	Rows       int
	Epoch      uint64
	Segments   int
	SealedRows int
	// Replayed is how many WAL batches the last Open replayed.
	Replayed   int
	NextSeq    uint64
	FlushedSeq uint64
	Sync       SyncPolicy
}

// Store is a crash-safe durable table: an in-memory relation backed by
// sealed CAPESEG1 segments plus a write-ahead log of appended batches.
//
// The write path is: validate → frame into the WAL (fsync per policy) →
// acknowledge → apply to the in-memory relation → maybe flush. A flush
// scans the unsealed rows into a new segment file, writes it atomically
// (temp + fsync + rename + dir fsync), swaps in a manifest naming it,
// and truncates the WAL. Every prefix of that sequence is a recoverable
// on-disk state; see DESIGN.md §14 for the case analysis.
//
// Store is safe for concurrent use; writes serialize on one mutex.
// Reads of the backing relation follow the engine's contract (no
// concurrent mutation) — callers must arrange their own read/write
// exclusion around Table(), as the server does with its append lock.
type Store struct {
	mu  sync.Mutex
	fsi FS
	dir string
	opt Options

	table  string
	schema engine.Schema
	tab    engine.MutableRelation

	wal         File
	nextSeq     uint64 // sequence number of the next batch
	flushedSeq  uint64 // last sequence folded into segments
	flushedRows int    // rows covered by the manifest's segments
	segments    []segRef
	replayed    int
	failed      error // sticky poison; non-nil disables writes
}

// Create initializes a new empty store in dir.
func Create(dir, table string, schema engine.Schema, opt Options) (*Store, error) {
	return create(dir, table, opt, func() (engine.MutableRelation, error) {
		return opt.backing(schema), nil
	})
}

// Bootstrap initializes a new store in dir seeded with an existing
// relation: its rows are sealed into a first segment and its current
// epoch is recorded, so pattern stores stamped against the live table
// remain valid against the recovered one. The relation becomes the
// store's backing.
func Bootstrap(dir, table string, src engine.MutableRelation, opt Options) (*Store, error) {
	return create(dir, table, opt, func() (engine.MutableRelation, error) {
		return src, nil
	})
}

func create(dir, table string, opt Options, backing func() (engine.MutableRelation, error)) (*Store, error) {
	if table == "" {
		return nil, fmt.Errorf("store: empty table name")
	}
	fsi := opt.fs()
	if _, err := fsi.ReadFile(join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrStoreExists, dir)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: probe %s: %v", dir, err)
	}
	if err := fsi.MkdirAll(dir); err != nil {
		return nil, err
	}
	tab, err := backing()
	if err != nil {
		return nil, err
	}
	schemaJSON, err := engine.MarshalSchemaJSON(tab.Schema())
	if err != nil {
		return nil, err
	}
	s := &Store{
		fsi:     fsi,
		dir:     dir,
		opt:     opt,
		table:   table,
		schema:  tab.Schema(),
		tab:     tab,
		nextSeq: 1,
	}
	// Seed rows (Bootstrap) are sealed into a first segment before the
	// manifest names the store live.
	if tab.NumRows() > 0 {
		if err := s.writeSegment(0, tab.NumRows()); err != nil {
			return nil, err
		}
		s.flushedRows = tab.NumRows()
	}
	m := &manifest{
		Version:    manifestVersion,
		Table:      table,
		Schema:     schemaJSON,
		Epoch:      tab.Epoch(),
		Rows:       s.flushedRows,
		FlushedSeq: 0,
		Segments:   s.segments,
	}
	if err := s.writeManifest(m); err != nil {
		return nil, err
	}
	if !opt.ReadOnly {
		wal, err := fsi.OpenAppend(join(dir, walName))
		if err != nil {
			return nil, err
		}
		// The WAL's directory entry must be durable before any frame in
		// it is: fsyncing file content does not persist the file's name.
		if err := fsi.SyncDir(dir); err != nil {
			return nil, err
		}
		s.wal = wal
	}
	return s, nil
}

// Open recovers the store in dir: loads the manifest's segments into a
// fresh backing relation, restores the recorded epoch, replays the WAL
// tail (one epoch tick per batch, reproducing the live trajectory), and
// truncates any torn WAL suffix so new appends land on a clean
// boundary. Any inconsistency it cannot prove harmless — a sequence
// gap, a row-count mismatch, a corrupt manifest or segment — is a loud
// error, never a silently degraded table.
func Open(dir string, opt Options) (*Store, error) {
	fsi := opt.fs()
	rawMan, err := fsi.ReadFile(join(dir, manifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNoStore, dir)
		}
		return nil, err
	}
	m, err := parseManifest(rawMan)
	if err != nil {
		return nil, err
	}
	schema, err := engine.ParseSchemaJSON(m.Schema)
	if err != nil {
		return nil, fmt.Errorf("store: manifest schema: %v", err)
	}
	tab := opt.backing(schema)
	if !tab.Schema().Equal(schema) {
		return nil, fmt.Errorf("store: backing schema does not match manifest")
	}
	rows := 0
	for _, ref := range m.Segments {
		seg, err := fsi.OpenSegment(join(dir, ref.File))
		if err != nil {
			return nil, fmt.Errorf("store: segment %s: %v", ref.File, err)
		}
		if seg.NumRows() != ref.Rows {
			return nil, fmt.Errorf("store: segment %s has %d rows, manifest says %d", ref.File, seg.NumRows(), ref.Rows)
		}
		if !seg.Schema().Equal(schema) {
			return nil, fmt.Errorf("store: segment %s schema does not match manifest", ref.File)
		}
		if err := loadSegment(tab, seg); err != nil {
			return nil, fmt.Errorf("store: segment %s: %v", ref.File, err)
		}
		rows += ref.Rows
	}
	if rows != m.Rows {
		return nil, fmt.Errorf("store: segments hold %d rows, manifest says %d", rows, m.Rows)
	}
	er, ok := tab.(epochRestorer)
	if !ok {
		return nil, fmt.Errorf("store: backing %T cannot restore epochs", tab)
	}
	er.RestoreEpoch(m.Epoch)

	s := &Store{
		fsi:         fsi,
		dir:         dir,
		opt:         opt,
		table:       m.Table,
		schema:      schema,
		tab:         tab,
		flushedSeq:  m.FlushedSeq,
		flushedRows: m.Rows,
		segments:    m.Segments,
	}

	walData, err := fsi.ReadFile(join(dir, walName))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	recs, goodLen, scanErr := ScanWAL(walData)
	seq := m.FlushedSeq
	for _, rec := range recs {
		if rec.Seq <= m.FlushedSeq {
			// Already folded into a segment; the crash hit between the
			// manifest swap and the WAL truncation.
			continue
		}
		if rec.Seq != seq+1 {
			return nil, fmt.Errorf("store: WAL sequence gap: have %d, next record is %d", seq, rec.Seq)
		}
		for i, row := range rec.Rows {
			if err := schema.ValidateRow(row); err != nil {
				return nil, fmt.Errorf("store: WAL batch %d row %d: %v", rec.Seq, i, err)
			}
		}
		if err := tab.AppendRows(rec.Rows); err != nil {
			return nil, fmt.Errorf("store: WAL batch %d: %v", rec.Seq, err)
		}
		seq = rec.Seq
		s.replayed++
	}
	s.nextSeq = seq + 1
	if scanErr != nil && !opt.ReadOnly {
		// Torn tail: discard it so new frames land on a frame boundary.
		if err := fsi.Truncate(join(dir, walName), int64(goodLen)); err != nil {
			return nil, fmt.Errorf("store: trim torn WAL tail: %v", err)
		}
	}
	if !opt.ReadOnly {
		wal, err := fsi.OpenAppend(join(dir, walName))
		if err != nil {
			return nil, err
		}
		// A crash may have erased the WAL's directory entry (it is
		// recreated above); make the name durable before trusting frames
		// to it.
		if err := fsi.SyncDir(dir); err != nil {
			return nil, err
		}
		s.wal = wal
	}
	return s, nil
}

// loadSegment feeds a sealed segment into the backing relation. A
// SegTable adopts it wholesale (zero-copy); anything else gets the rows
// decoded and appended.
func loadSegment(tab engine.MutableRelation, seg *engine.Segment) error {
	if st, ok := tab.(*engine.SegTable); ok {
		return st.AddSegment(seg)
	}
	n := seg.NumRows()
	width := len(seg.Schema())
	const chunk = 4096
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		slab := make(value.Tuple, 0, (hi-lo)*width)
		batch := make([]value.Tuple, 0, hi-lo)
		for r := lo; r < hi; r++ {
			slab = seg.AppendRowAt(r, slab)
			batch = append(batch, slab[len(slab)-width:len(slab):len(slab)])
		}
		if err := tab.AppendRows(batch); err != nil {
			return err
		}
	}
	return nil
}

// Table returns the backing relation. The engine's concurrency contract
// applies: readers must not race Append/Flush (the server's append lock
// provides that exclusion).
func (s *Store) Table() engine.MutableRelation { return s.tab }

// TableName returns the table name recorded in the manifest.
func (s *Store) TableName() string { return s.table }

// Schema returns the store's schema.
func (s *Store) Schema() engine.Schema { return s.schema }

// Info returns a snapshot of the store's state.
func (s *Store) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Info{
		Table:      s.table,
		Rows:       s.tab.NumRows(),
		Epoch:      s.tab.Epoch(),
		Segments:   len(s.segments),
		SealedRows: s.flushedRows,
		Replayed:   s.replayed,
		NextSeq:    s.nextSeq,
		FlushedSeq: s.flushedSeq,
		Sync:       s.opt.Sync,
	}
}

// Err reports the sticky fault that disabled the store, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// poison records a fatal write-path fault. Every later write returns
// the wrapped error; reads of the in-memory table remain valid (it only
// ever holds acknowledged or about-to-be-acknowledged batches).
func (s *Store) poison(err error) error {
	s.failed = fmt.Errorf("%w: %v", ErrPoisoned, err)
	return err
}

// Append durably logs one batch and applies it to the backing relation,
// returning the batch's WAL sequence number. The acknowledgement
// contract: when Append returns nil under SyncAlways, the batch
// survives any crash; under SyncNever it survives any crash after the
// next successful flush. On any fault whose durability is unknown the
// store poisons itself and refuses further writes.
func (s *Store) Append(rows []value.Tuple) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return 0, s.failed
	}
	if s.opt.ReadOnly {
		return 0, fmt.Errorf("store: read-only")
	}
	if len(rows) == 0 {
		return s.nextSeq - 1, nil
	}
	for i, row := range rows {
		if err := s.schema.ValidateRow(row); err != nil {
			return 0, fmt.Errorf("%w: row %d: %v", ErrInvalidBatch, i, err)
		}
	}
	seq := s.nextSeq
	frame, err := EncodeFrame(Record{Seq: seq, Rows: rows})
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalidBatch, err)
	}
	if n, err := s.wal.Write(frame); err != nil {
		return 0, s.poison(fmt.Errorf("store: WAL append: %w", err))
	} else if n != len(frame) {
		return 0, s.poison(fmt.Errorf("store: WAL short append: %d of %d bytes", n, len(frame)))
	}
	if s.opt.Sync == SyncAlways {
		if err := s.wal.Sync(); err != nil {
			return 0, s.poison(fmt.Errorf("store: WAL fsync: %w", err))
		}
	}
	s.nextSeq++
	if err := s.tab.AppendRows(rows); err != nil {
		// Cannot happen post-validation; if it does, the memory and
		// disk images have diverged — stop everything.
		return 0, s.poison(fmt.Errorf("store: apply batch %d: %w", seq, err))
	}
	// The batch is acknowledged from here on: an auto-flush failure
	// poisons the store for later writes but must not retract this ack
	// (the rows are already WAL-durable).
	if s.opt.FlushEvery > 0 && s.tab.NumRows()-s.flushedRows >= s.opt.FlushEvery {
		if err := s.flushLocked(); err != nil {
			s.poison(fmt.Errorf("store: flush after batch %d: %w", seq, err))
		}
	}
	return seq, nil
}

// Flush seals all unsealed rows into a new segment, swaps the manifest,
// and truncates the WAL.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.opt.ReadOnly {
		return fmt.Errorf("store: read-only")
	}
	if err := s.flushLocked(); err != nil {
		return s.poison(err)
	}
	return nil
}

func (s *Store) flushLocked() error {
	n := s.tab.NumRows()
	if n == s.flushedRows {
		return nil
	}
	if err := s.writeSegment(s.flushedRows, n); err != nil {
		return err
	}
	// A SegTable backing seals its in-memory tail too, so its segment
	// list mirrors the on-disk one and memory stays bounded. (This
	// ticks its epoch — see the recovery note in DESIGN.md §14.)
	if c, ok := s.tab.(interface{ Compact() error }); ok {
		if err := c.Compact(); err != nil {
			return err
		}
	}
	m := &manifest{
		Version:    manifestVersion,
		Table:      s.table,
		Epoch:      s.tab.Epoch(),
		Rows:       n,
		FlushedSeq: s.nextSeq - 1,
		Segments:   s.segments,
	}
	var err error
	if m.Schema, err = engine.MarshalSchemaJSON(s.schema); err != nil {
		return err
	}
	if err := s.writeManifest(m); err != nil {
		return err
	}
	s.flushedSeq = s.nextSeq - 1
	s.flushedRows = n
	// The WAL's frames are all folded in now. Truncating is a pure
	// optimization — recovery skips stale frames by sequence number —
	// so a crash anywhere in here is still a valid state.
	if err := s.fsi.Truncate(join(s.dir, walName), 0); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	return nil
}

// writeSegment seals rows [lo, hi) of the backing relation into the
// next numbered segment file, written atomically and recorded in
// s.segments (the manifest swap that makes it live is the caller's).
func (s *Store) writeSegment(lo, hi int) error {
	w := engine.NewSegmentWriter(s.schema)
	if err := s.tab.ScanRows(lo, hi, w.Append); err != nil {
		return err
	}
	blob, err := w.Encode()
	if err != nil {
		return err
	}
	name := fmt.Sprintf("seg-%06d.capeseg", len(s.segments)+1)
	if err := s.writeFileAtomic(name, blob); err != nil {
		return err
	}
	s.segments = append(s.segments, segRef{File: name, Rows: hi - lo})
	return nil
}

func (s *Store) writeManifest(m *manifest) error {
	data, err := m.encode()
	if err != nil {
		return err
	}
	return s.writeFileAtomic(manifestName, data)
}

// writeFileAtomic is the temp-write + fsync + rename + dir-fsync
// protocol: after it returns, the file is durable under its final name;
// a crash anywhere inside leaves either the old file or the new one.
func (s *Store) writeFileAtomic(name string, data []byte) error {
	tmp := join(s.dir, name+".tmp")
	f, err := s.fsi.Create(tmp)
	if err != nil {
		return err
	}
	if n, err := f.Write(data); err != nil {
		f.Close()
		return err
	} else if n != len(data) {
		f.Close()
		return fmt.Errorf("store: short write to %s: %d of %d bytes", tmp, n, len(data))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fsi.Rename(tmp, join(s.dir, name)); err != nil {
		return err
	}
	return s.fsi.SyncDir(s.dir)
}

// Close flushes unsealed rows (so a clean restart replays nothing) and
// releases the WAL handle. A poisoned or read-only store skips the
// flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if s.failed == nil && !s.opt.ReadOnly {
		if err := s.flushLocked(); err != nil {
			first = s.poison(err)
		}
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && first == nil {
			first = err
		}
		s.wal = nil
	}
	return first
}
