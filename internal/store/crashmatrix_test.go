package store

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"testing"

	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// -crashfull widens the matrix to the big workload (more batches, more
// flush cycles) — the nightly run. The default workload still
// enumerates every crash point; -short samples them.
var crashFull = flag.Bool("crashfull", false, "run the full-size crash-recovery matrix")

// miningOpts are lenient thresholds so the fixture data mines a
// non-empty pattern set — the Maintainer/ARPMine differential must have
// something to disagree on.
func miningOpts() mining.Options {
	return mining.Options{
		MaxPatternSize: 2,
		Thresholds:     pattern.Thresholds{Theta: 0.1, LocalSupport: 2, Lambda: 0.3, GlobalSupport: 1},
	}
}

// crashOutcome is what one simulated machine lifetime produced: which
// appends were acknowledged before the crash.
type crashOutcome struct {
	acked   int // batches whose Append returned nil
	created bool
}

// runCrashWorkload drives a fresh store through the canonical workload
// on fsi: create, append every batch (auto-flush per flushEvery), one
// explicit flush, close. It stops at the first error — the machine is
// down or the store is poisoned — and reports how many batches were
// acknowledged first.
func runCrashWorkload(fsi FS, batches [][]value.Tuple, flushEvery int, sync SyncPolicy) crashOutcome {
	var out crashOutcome
	st, err := Create("data", "sales", testSchema(), Options{FS: fsi, Sync: sync, FlushEvery: flushEvery})
	if err != nil {
		return out
	}
	out.created = true
	for _, b := range batches {
		if _, err := st.Append(b); err != nil {
			return out
		}
		out.acked++
	}
	if err := st.Flush(); err != nil {
		return out
	}
	st.Close()
	return out
}

// cuts for the three admissible crash images at each crash point:
// strictZero loses the crashing op entirely, strictHalf persists half
// of the torn sync/write, generousHalf additionally keeps all unsynced
// page-cache content (CrashView(false)).
func cutZero(int) int   { return 0 }
func cutHalf(n int) int { return n / 2 }

// requireBatchPrefix asserts rows is exactly batches[0..j) for some j
// and returns j. Anything else — a torn batch, a gap, a mutated field —
// is a fatal matrix violation.
func requireBatchPrefix(t *testing.T, label string, rows []value.Tuple, batches [][]value.Tuple) int {
	t.Helper()
	j, off := 0, 0
	for j < len(batches) && off+len(batches[j]) <= len(rows) {
		off += len(batches[j])
		j++
	}
	if off != len(rows) {
		t.Fatalf("%s: %d recovered rows do not land on a batch boundary", label, len(rows))
	}
	requireRowsEqual(t, label, rows, flatten(batches[:j]))
	return j
}

// requireMaintainerMatchesCold pins the maintained pattern set over tab
// byte-identical to a cold ARPMine of the same rows.
func requireMaintainerMatchesCold(t *testing.T, label string, m *mining.Maintainer, tab engine.MutableRelation) {
	t.Helper()
	opt := miningOpts()
	cold, err := mining.ARPMine(tab, opt)
	if err != nil {
		t.Fatalf("%s: cold mine: %v", label, err)
	}
	var got, want bytes.Buffer
	if err := pattern.WriteJSON(&got, m.Patterns()); err != nil {
		t.Fatal(err)
	}
	if err := pattern.WriteJSON(&want, cold.Patterns); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("%s: maintained patterns diverge from cold re-mine\nmaintained: %s\ncold: %s",
			label, got.Bytes(), want.Bytes())
	}
}

// TestRecoveryCrashMatrix is the headline harness: the workload is
// dry-run once to learn its mutating-syscall count T, then re-run with
// a crash injected at every point k ∈ 1..T. Each crash point is
// examined under three admissible post-crash disk images (strict with
// nothing of the torn op, strict with half the torn sync/write,
// generous with all page-cache content). For every image, reopening
// must recover exactly a batch-boundary prefix of the submitted
// batches, covering at least every acknowledged one (under
// SyncAlways), with field-identical rows and the exact epoch
// trajectory — and an incremental Maintainer run over the recovered
// table, resumed through the remaining batches, must stay
// byte-identical to a cold ARPMine.
func TestRecoveryCrashMatrix(t *testing.T) {
	nBatches, flushEvery := 6, 8
	if *crashFull {
		nBatches, flushEvery = 16, 12
	}
	batches := testBatches(nBatches)

	for _, sync := range []SyncPolicy{SyncAlways, SyncNever} {
		sync := sync
		t.Run("sync="+sync.String(), func(t *testing.T) {
			// Dry run: no crash armed; learn T and pin the reference.
			dry := NewFaultFS(nil)
			out := runCrashWorkload(dry, batches, flushEvery, sync)
			if out.acked != len(batches) {
				t.Fatalf("dry run acked %d of %d batches", out.acked, len(batches))
			}
			totalOps := dry.Ops()
			if totalOps < 20 {
				t.Fatalf("workload only issued %d mutating ops; matrix is vacuous", totalOps)
			}
			ref, err := Open("data", Options{FS: dry.Inner()})
			if err != nil {
				t.Fatal(err)
			}
			refRows := tableRows(t, ref.Table())
			refMine, err := mining.ARPMine(ref.Table(), miningOpts())
			if err != nil {
				t.Fatal(err)
			}
			if len(refMine.Patterns) == 0 {
				t.Fatal("fixture mines no patterns; the mining differential is vacuous")
			}

			step := 1
			if testing.Short() {
				step = 5
			}
			variants := []struct {
				name   string
				strict bool
				cut    func(int) int
			}{
				{"strict-none", true, cutZero},
				{"strict-half", true, cutHalf},
				{"generous-half", false, cutHalf},
			}
			for k := 1; k <= totalOps; k += step {
				for _, v := range variants {
					label := fmt.Sprintf("crash@%d/%d %s", k, totalOps, v.name)
					ffs := NewFaultFS(nil)
					ffs.CrashAfter(k, v.cut, v.cut)
					out := runCrashWorkload(ffs, batches, flushEvery, sync)
					if !ffs.Crashed() {
						t.Fatalf("%s: crash never fired", label)
					}
					boot := SeedMemFS(ffs.Inner().CrashView(v.strict))
					if !out.created {
						// Died before the store existed; nothing to recover.
						if _, err := Open("data", Options{FS: boot}); !errors.Is(err, ErrNoStore) && err == nil {
							// A manifest may already be durable — then
							// recovery of the empty store must work.
							continue
						}
						continue
					}
					re, err := Open("data", Options{FS: boot})
					if err != nil {
						t.Fatalf("%s: recovery failed loudly where a valid state exists: %v", label, err)
					}
					rows := tableRows(t, re.Table())
					j := requireBatchPrefix(t, label, rows, batches)
					if sync == SyncAlways && j < out.acked {
						t.Fatalf("%s: recovered %d batches but %d were acknowledged", label, j, out.acked)
					}
					if got := re.Table().Epoch(); got != uint64(j) {
						t.Fatalf("%s: recovered epoch %d, want %d (one tick per batch)", label, got, j)
					}

					// Resume: mine the recovered table incrementally, feed
					// the remaining batches through the reopened store, and
					// demand byte-identity with a cold re-mine at the end.
					m, err := mining.NewMaintainer(re.Table(), miningOpts())
					if err != nil {
						t.Fatalf("%s: maintainer: %v", label, err)
					}
					for _, b := range batches[j:] {
						if _, err := re.Append(b); err != nil {
							t.Fatalf("%s: resumed append: %v", label, err)
						}
					}
					if err := m.CatchUp(); err != nil {
						t.Fatalf("%s: catch-up: %v", label, err)
					}
					requireRowsEqual(t, label+" resumed", tableRows(t, re.Table()), refRows)
					if got, want := re.Table().Epoch(), uint64(len(batches)); got != want {
						t.Fatalf("%s: resumed epoch %d, want %d", label, got, want)
					}
					requireMaintainerMatchesCold(t, label, m, re.Table())

					// And the resumed store itself persists: one more
					// reopen sees everything.
					if err := re.Close(); err != nil {
						t.Fatalf("%s: close after resume: %v", label, err)
					}
					re2, err := Open("data", Options{FS: boot})
					if err != nil {
						t.Fatalf("%s: second reopen: %v", label, err)
					}
					requireRowsEqual(t, label+" second reopen", tableRows(t, re2.Table()), refRows)
				}
			}
		})
	}
}

// TestRecoveryCrashDuringRecovery: recovery itself may crash (its only
// mutating step is trimming a torn WAL tail). Enumerate a crash at
// every recovery syscall after a first crash that left a torn tail, and
// require the third boot to still recover the same prefix.
func TestRecoveryCrashDuringRecovery(t *testing.T) {
	batches := testBatches(6)

	// First lifetime: find the latest crash point whose generous image
	// leaves a torn WAL tail (a half-applied frame write), scanning back
	// from the end of the op budget.
	dry := NewFaultFS(nil)
	runCrashWorkload(dry, batches, 0, SyncAlways)
	var ffs *FaultFS
	tornAt := -1
	for k := dry.Ops(); k >= 1 && tornAt < 0; k-- {
		f := NewFaultFS(nil)
		f.CrashAfter(k, cutHalf, cutHalf)
		runCrashWorkload(f, batches, 0, SyncAlways)
		img := f.Inner().CrashView(false)
		if wal, ok := img["data/"+walName]; ok {
			if _, _, err := ScanWAL(wal); err != nil {
				ffs = f
				tornAt = k
			}
		}
	}
	if tornAt < 0 {
		t.Fatal("no crash point produces a torn WAL tail; harness is broken")
	}

	img := ffs.Inner().CrashView(false)
	base, err := Open("data", Options{FS: SeedMemFS(img)})
	if err != nil {
		t.Fatal(err)
	}
	baseRows := tableRows(t, base.Table())
	wantJ := requireBatchPrefix(t, "baseline", baseRows, batches)

	// Second lifetime: recovery with a crash at every op.
	for k2 := 1; ; k2++ {
		f2 := NewFaultFS(SeedMemFS(img))
		f2.CrashAfter(k2, cutHalf, cutHalf)
		_, err := Open("data", Options{FS: f2})
		if !f2.Crashed() {
			// Recovery used fewer than k2 ops — enumeration done.
			if err != nil {
				t.Fatalf("uncrashed recovery failed: %v", err)
			}
			break
		}
		if err == nil {
			t.Fatalf("recovery crash@%d returned a store from a dead machine", k2)
		}
		// Third lifetime: boot from the second crash's image.
		for _, strict := range []bool{true, false} {
			img2 := f2.Inner().CrashView(strict)
			re, err := Open("data", Options{FS: SeedMemFS(img2)})
			if err != nil {
				t.Fatalf("recovery crash@%d strict=%v: third boot failed: %v", k2, strict, err)
			}
			j := requireBatchPrefix(t, fmt.Sprintf("recovery crash@%d strict=%v", k2, strict),
				tableRows(t, re.Table()), batches)
			if j != wantJ {
				t.Fatalf("recovery crash@%d strict=%v: recovered %d batches, baseline %d", k2, strict, j, wantJ)
			}
		}
	}
}
