package store

import (
	"errors"
	"sync"

	"cape/internal/engine"
)

// ErrCrashed is returned by every FaultFS operation at and after the
// injected crash point: the simulated machine is down.
var ErrCrashed = errors.New("store: simulated crash")

// ErrInjectedIO is the error FaultFS returns for injected non-fatal
// faults (a failed fsync, a short write) — the process survives but the
// operation did not complete.
var ErrInjectedIO = errors.New("store: injected I/O fault")

// FaultFS wraps a MemFS and injects faults at syscall granularity:
//
//   - CrashAfter(k): the k-th mutating operation (write, sync, create,
//     rename, remove, truncate, dir-sync, mkdir) fails with ErrCrashed,
//     as does everything after it. A crashing Write may first apply a
//     configurable prefix of its payload (a torn write); a crashing Sync
//     may persist a configurable prefix of the file (a torn sync — the
//     kernel got partway through writeback).
//   - SyncErrAfter(n): the n-th Sync returns ErrInjectedIO without
//     syncing — the fsync-failure case, where durability is unknown.
//   - ShortWriteAfter(n): the n-th Write persists only half its payload
//     and returns a short count with ErrInjectedIO.
//
// Mutating operations are counted deterministically, so a workload can
// be dry-run once to learn its operation count T and then re-run with a
// crash injected at every point 1..T — the crash-at-every-syscall-
// boundary enumeration the recovery matrix drives.
type FaultFS struct {
	mu    sync.Mutex
	inner *MemFS

	ops       int // mutating operations observed
	crashAt   int // crash on the op with this ordinal (0 = disabled)
	crashed   bool
	syncCut   func(n int) int // bytes of the file persisted by the crashing Sync
	writeCut  func(n int) int // bytes of the payload applied by the crashing Write
	syncErrAt int             // ordinal (in Syncs) failing with ErrInjectedIO; 0 = disabled
	syncs     int
	shortAt   int // ordinal (in Writes) going short; 0 = disabled
	writes    int
}

// NewFaultFS wraps inner (a fresh MemFS if nil) with no faults armed.
func NewFaultFS(inner *MemFS) *FaultFS {
	if inner == nil {
		inner = NewMemFS()
	}
	return &FaultFS{inner: inner}
}

// Inner returns the wrapped MemFS, e.g. to take a CrashView.
func (f *FaultFS) Inner() *MemFS { return f.inner }

// Ops reports how many mutating operations have run.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Syncs reports how many Sync calls have run — the ordinal space
// SyncErrAfter counts in.
func (f *FaultFS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// CrashAfter arms a crash on the k-th mutating operation (1-based).
// cutSync / cutWrite control the torn prefix the crashing Sync or Write
// leaves behind; nil means no partial effect.
func (f *FaultFS) CrashAfter(k int, cutSync, cutWrite func(n int) int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = k
	f.syncCut = cutSync
	f.writeCut = cutWrite
}

// SyncErrAfter arms ErrInjectedIO on the n-th Sync (1-based).
func (f *FaultFS) SyncErrAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErrAt = n
}

// ShortWriteAfter arms a short write on the n-th Write (1-based).
func (f *FaultFS) ShortWriteAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortAt = n
}

// Crashed reports whether the armed crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step accounts one mutating operation. It returns true when this very
// operation is the crash point (the caller applies its torn effect and
// fails), and an error when the machine is already down.
func (f *FaultFS) step() (crashNow bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops == f.crashAt {
		f.crashed = true
		return true, nil
	}
	return false, nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if crash, err := f.step(); err != nil {
		return err
	} else if crash {
		return ErrCrashed
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) Create(path string) (File, error) {
	if crash, err := f.step(); err != nil {
		return nil, err
	} else if crash {
		return nil, ErrCrashed
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file.(*memFile)}, nil
}

func (f *FaultFS) OpenAppend(path string) (File, error) {
	if crash, err := f.step(); err != nil {
		return nil, err
	} else if crash {
		return nil, ErrCrashed
	}
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file.(*memFile)}, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	down := f.crashed
	f.mu.Unlock()
	if down {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) OpenSegment(path string) (*engine.Segment, error) {
	f.mu.Lock()
	down := f.crashed
	f.mu.Unlock()
	if down {
		return nil, ErrCrashed
	}
	return f.inner.OpenSegment(path)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if crash, err := f.step(); err != nil {
		return err
	} else if crash {
		return ErrCrashed
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if crash, err := f.step(); err != nil {
		return err
	} else if crash {
		return ErrCrashed
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) Truncate(path string, size int64) error {
	if crash, err := f.step(); err != nil {
		return err
	} else if crash {
		return ErrCrashed
	}
	return f.inner.Truncate(path, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if crash, err := f.step(); err != nil {
		return err
	} else if crash {
		return ErrCrashed
	}
	return f.inner.SyncDir(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	down := f.crashed
	f.mu.Unlock()
	if down {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

// faultFile threads Write/Sync through the fault machinery.
type faultFile struct {
	fs    *FaultFS
	inner *memFile
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	ff.fs.ops++
	ff.fs.writes++
	crashNow := ff.fs.crashAt > 0 && ff.fs.ops == ff.fs.crashAt
	shortNow := ff.fs.shortAt > 0 && ff.fs.writes == ff.fs.shortAt
	cut := ff.fs.writeCut
	if crashNow {
		ff.fs.crashed = true
	}
	ff.fs.mu.Unlock()

	switch {
	case crashNow:
		// Torn write: a prefix of the payload may have reached the page
		// cache before the machine died.
		n := 0
		if cut != nil {
			n = cut(len(p))
		}
		if n > 0 {
			ff.inner.Write(p[:n])
		}
		return 0, ErrCrashed
	case shortNow:
		n := len(p) / 2
		ff.inner.Write(p[:n])
		return n, ErrInjectedIO
	default:
		return ff.inner.Write(p)
	}
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return ErrCrashed
	}
	ff.fs.ops++
	ff.fs.syncs++
	crashNow := ff.fs.crashAt > 0 && ff.fs.ops == ff.fs.crashAt
	errNow := ff.fs.syncErrAt > 0 && ff.fs.syncs == ff.fs.syncErrAt
	cut := ff.fs.syncCut
	if crashNow {
		ff.fs.crashed = true
	}
	ff.fs.mu.Unlock()

	switch {
	case crashNow:
		// Torn sync: writeback got partway through the file before the
		// machine died — persist an arbitrary prefix. It can only extend
		// what earlier fsyncs made durable: a dying fsync never
		// un-persists bytes (unless the live file shrank — a truncate
		// being written back).
		ino := ff.inner.ino
		m := ff.inner.fs
		m.mu.Lock()
		n := 0
		if cut != nil {
			n = cut(len(ino.data))
		}
		if n < len(ino.synced) {
			n = len(ino.synced)
		}
		if n > len(ino.data) {
			n = len(ino.data)
		}
		ino.synced = append(ino.synced[:0], ino.data[:n]...)
		m.mu.Unlock()
		return ErrCrashed
	case errNow:
		return ErrInjectedIO
	default:
		return ff.inner.Sync()
	}
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
