package store

import (
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"

	"cape/internal/engine"
)

// MemFS is a strict in-memory filesystem with POSIX-flavoured crash
// semantics, modelled after the "strict mem" filesystems databases use
// for recovery testing:
//
//   - File data written but not Sync'd lives only in the "page cache":
//     readers see it, a crash may lose it.
//   - Directory entries (creates, renames, removes) are durable only
//     after SyncDir; until then a crash may revert the namespace to its
//     last synced snapshot. Content and namespace durability are
//     independent, exactly as with real fsync vs directory fsync.
//   - Rename is atomic: a crash observes the old or the new binding,
//     never a mix.
//
// CrashView materializes the two admissible post-crash images: the
// strict one (everything unsynced lost) and the generous one (the OS
// happened to write everything back before the crash). A correct
// recovery protocol must handle both — POSIX allows either.
type MemFS struct {
	mu sync.Mutex
	// files is the live namespace: name → inode.
	files map[string]*memInode
	// durable is the namespace as of the last SyncDir of each directory:
	// name → inode. Inodes are shared with files, so content durability
	// (inode.synced) remains per-file.
	durable map[string]*memInode
	dirs    map[string]bool
}

type memInode struct {
	data   []byte // live content (page cache included)
	synced []byte // content as of the last successful Sync
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   make(map[string]*memInode),
		durable: make(map[string]*memInode),
		dirs:    make(map[string]bool),
	}
}

// SeedMemFS builds a filesystem whose contents are fully durable — the
// state a machine boots with after a crash. Directories for every file
// are implied.
func SeedMemFS(contents map[string][]byte) *MemFS {
	m := NewMemFS()
	for name, data := range contents {
		ino := &memInode{data: append([]byte(nil), data...), synced: append([]byte(nil), data...)}
		m.files[name] = ino
		m.durable[name] = ino
		for d := dirOf(name); d != "" && d != "."; d = dirOf(d) {
			m.dirs[d] = true
		}
	}
	return m
}

func dirOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return "."
	}
	return path[:i]
}

// CrashView returns the admissible post-crash contents. strict=true
// loses everything unsynced (content beyond each inode's last Sync, and
// namespace changes since each directory's last SyncDir); strict=false
// is the generous image where the OS wrote everything back: the live
// namespace with live contents.
func (m *MemFS) CrashView(strict bool) map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.files
	if strict {
		src = m.durable
	}
	out := make(map[string][]byte, len(src))
	for name, ino := range src {
		var data []byte
		if strict {
			data = ino.synced
		} else {
			data = ino.data
		}
		out[name] = append([]byte(nil), data...)
	}
	return out
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := dir; d != "" && d != "."; d = dirOf(d) {
		m.dirs[d] = true
	}
	return nil
}

func (m *MemFS) lookup(path string) (*memInode, bool) {
	ino, ok := m.files[path]
	return ino, ok
}

func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dirOf(path)] && dirOf(path) != "." {
		return nil, fmt.Errorf("memfs: create %s: %w", path, fs.ErrNotExist)
	}
	ino := &memInode{}
	m.files[path] = ino
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[path]
	if !ok {
		if !m.dirs[dirOf(path)] && dirOf(path) != "." {
			return nil, fmt.Errorf("memfs: open %s: %w", path, fs.ErrNotExist)
		}
		ino = &memInode{}
		m.files[path] = ino
	}
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.lookup(path)
	if !ok {
		return nil, fmt.Errorf("memfs: read %s: %w", path, fs.ErrNotExist)
	}
	return append([]byte(nil), ino.data...), nil
}

func (m *MemFS) OpenSegment(path string) (*engine.Segment, error) {
	data, err := m.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return engine.OpenSegmentBytes(data)
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[oldpath]
	if !ok {
		return fmt.Errorf("memfs: rename %s: %w", oldpath, fs.ErrNotExist)
	}
	delete(m.files, oldpath)
	m.files[newpath] = ino
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("memfs: remove %s: %w", path, fs.ErrNotExist)
	}
	delete(m.files, path)
	return nil
}

func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.files[path]
	if !ok {
		return fmt.Errorf("memfs: truncate %s: %w", path, fs.ErrNotExist)
	}
	if size < 0 || size > int64(len(ino.data)) {
		return fmt.Errorf("memfs: truncate %s to %d: out of range", path, size)
	}
	ino.data = ino.data[:size]
	return nil
}

// SyncDir snapshots the directory's current entries as the durable
// namespace for that directory (entries elsewhere keep their snapshot).
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name := range m.durable {
		if dirOf(name) == dir {
			if _, live := m.files[name]; !live {
				delete(m.durable, name)
			}
		}
	}
	for name, ino := range m.files {
		if dirOf(name) == dir {
			m.durable[name] = ino
		}
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] && dir != "." {
		return nil, fmt.Errorf("memfs: readdir %s: %w", dir, fs.ErrNotExist)
	}
	var names []string
	for name := range m.files {
		if dirOf(name) == dir {
			names = append(names, name[strings.LastIndexByte(name, '/')+1:])
		}
	}
	sort.Strings(names)
	return names, nil
}

// memFile is a handle on a MemFS inode. All writes append, matching the
// store's write discipline.
type memFile struct {
	fs  *MemFS
	ino *memInode
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.data = append(f.ino.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.synced = append(f.ino.synced[:0], f.ino.data...)
	return nil
}

func (f *memFile) Close() error { return nil }
