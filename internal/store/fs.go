// Package store is the crash-safe durable write path for CAPE tables:
// an append-only write-ahead log of length-prefixed, CRC-32C-framed
// JSONL batch records, periodic flushes of the logged tail into
// immutable CAPESEG1 column segments, and an atomically swapped manifest
// naming the live segments, the WAL watermark, and the table epoch.
// Opening a store replays the WAL over the sealed segments and restores
// the exact epoch sequence the original table went through, so
// mining.Maintainer catch-up and stamped pattern stores line up with the
// recovered table without re-mining.
//
// Every byte the store persists flows through the FS interface, so the
// recovery tests can substitute a strict in-memory filesystem with fault
// injection — torn writes, short writes, failed fsyncs, and a crash at
// every syscall boundary — and check the recovery invariant at each
// crash point: reopen recovers exactly a prefix of acknowledged batches
// or fails loudly, and never loads corrupt state. See DESIGN.md §14.
package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"cape/internal/engine"
)

// File is a writable file handle. Writes append (the store never seeks:
// the WAL only grows, and segment/manifest images are written once into
// fresh temp files).
type File interface {
	io.Writer
	// Sync flushes written data to stable storage. An error means the
	// data may or may not be durable — the store treats it as fatal.
	Sync() error
	Close() error
}

// FS is the filesystem surface the store runs on. DiskFS is the real
// implementation; the test harness substitutes MemFS/FaultFS. Paths are
// plain slash-joined strings relative to whatever root the
// implementation defines (DiskFS uses them as OS paths).
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string) error
	// Create opens a new file for writing, truncating any existing one.
	Create(path string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// ReadFile reads a whole file. A missing file returns an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// OpenSegment opens and validates a CAPESEG1 segment file.
	OpenSegment(path string) (*engine.Segment, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// Truncate cuts a file to size bytes.
	Truncate(path string, size int64) error
	// SyncDir flushes directory metadata (created/renamed/removed
	// entries) to stable storage.
	SyncDir(dir string) error
	// ReadDir lists the file names in a directory, sorted. A missing
	// directory returns an error satisfying errors.Is(err, fs.ErrNotExist).
	ReadDir(dir string) ([]string, error)
}

// DiskFS is the production filesystem: real files, real fsync, and
// segments served via mmap.
type DiskFS struct{}

func (DiskFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (DiskFS) Create(path string) (File, error) {
	return os.Create(path)
}

func (DiskFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (DiskFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (DiskFS) OpenSegment(path string) (*engine.Segment, error) {
	return engine.OpenSegment(path)
}

func (DiskFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (DiskFS) Remove(path string) error { return os.Remove(path) }

func (DiskFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir fsyncs the directory so renames and creates within it are
// durable. Platforms where directories cannot be fsynced (the open
// fails) degrade to a no-op, matching what most databases do there.
func (DiskFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return err
		}
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems reject fsync on directories (EINVAL); treat
		// as best-effort like everyone else does.
		return nil
	}
	return nil
}

func (DiskFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// join builds store-relative paths; kept tiny so MemFS can use the same
// separator convention as DiskFS.
func join(dir, name string) string { return filepath.ToSlash(filepath.Join(dir, name)) }
