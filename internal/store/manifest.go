package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// File names inside a store directory.
const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
)

const manifestVersion = 1

// segRef names one live segment file and pins its row count, so a
// swapped or truncated segment is caught at open even if its internal
// checksums happen to pass.
type segRef struct {
	File string `json:"file"`
	Rows int    `json:"rows"`
}

// manifest is the store's root metadata: which segment files are live,
// how far the WAL has been folded into them (flushedSeq), and the exact
// table state (rows, epoch) at that watermark. It is always replaced
// atomically (temp write + fsync + rename + dir fsync), so recovery
// sees either the old or the new manifest, never a blend. The CRC field
// covers the rest of the document, making a half-persisted manifest
// fail loudly instead of loading quietly.
type manifest struct {
	Version int    `json:"version"`
	Table   string `json:"table"`
	// Schema is the engine schema JSON (engine.MarshalSchemaJSON).
	Schema json.RawMessage `json:"schema"`
	// Epoch is the table's mutation counter at flush time. Recovery
	// restores it, then ticks once per replayed WAL batch — reproducing
	// the exact epoch trajectory, so persisted pattern-store stamps
	// remain comparable.
	Epoch uint64 `json:"epoch"`
	// Rows is the total row count at flush time (all of it sealed in
	// Segments; the WAL tail holds everything after).
	Rows int `json:"rows"`
	// FlushedSeq is the last WAL sequence number folded into the
	// segments. Replay skips frames at or below it.
	FlushedSeq uint64   `json:"flushedSeq"`
	Segments   []segRef `json:"segments"`
	// CRC is the hex CRC-32C of the document serialized with CRC unset.
	CRC string `json:"crc,omitempty"`
}

// encode serializes the manifest with its self-CRC filled in, newline
// terminated.
func (m *manifest) encode() ([]byte, error) {
	m.CRC = ""
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	m.CRC = fmt.Sprintf("%08x", crc32.Checksum(body, walCRC))
	out, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// parseManifest decodes and validates a manifest image. Unknown fields,
// a version from the future, or a CRC mismatch all fail loudly — a
// corrupt manifest must never be acted on.
func parseManifest(data []byte) (*manifest, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest: %v", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d not supported (want %d)", m.Version, manifestVersion)
	}
	want := m.CRC
	if want == "" {
		return nil, fmt.Errorf("store: manifest missing checksum")
	}
	m.CRC = ""
	body, err := json.Marshal(&m)
	if err != nil {
		return nil, err
	}
	if got := fmt.Sprintf("%08x", crc32.Checksum(body, walCRC)); got != want {
		return nil, fmt.Errorf("store: manifest checksum mismatch (stored %s, computed %s)", want, got)
	}
	m.CRC = want
	return &m, nil
}
