package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cape/internal/engine"
	"cape/internal/value"
)

// Portable JSONL backup: one header object line, then one JSON array
// per row with kind-tagged values. The row lines are exactly the format
// `cape append -rows` consumes (strip the header line and the stream is
// a valid -rows file), so a backup doubles as an append payload.

const backupVersion = 1

// backupHeader is the first line of a backup stream.
type backupHeader struct {
	CapeBackup int             `json:"cape_backup"`
	Table      string          `json:"table"`
	Schema     json.RawMessage `json:"schema"`
	Rows       int             `json:"rows"`
	Epoch      uint64          `json:"epoch"`
}

// ExportJSONL streams the store's table as a portable backup. The
// header pins the row count (verified on import) and the table epoch,
// so pattern stores stamped against this deployment stay comparable
// after a restore.
func (s *Store) ExportJSONL(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	schemaJSON, err := engine.MarshalSchemaJSON(s.schema)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := backupHeader{
		CapeBackup: backupVersion,
		Table:      s.table,
		Schema:     schemaJSON,
		Rows:       s.tab.NumRows(),
		Epoch:      s.tab.Epoch(),
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	bw.Write(hb)
	bw.WriteByte('\n')
	enc := json.NewEncoder(bw) // one compact array per row, '\n'-terminated
	if err := s.tab.ScanRows(0, s.tab.NumRows(), func(row value.Tuple) error {
		return enc.Encode(row)
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBackup parses a backup stream into its parts. Row values accept
// both kind-tagged objects (what ExportJSONL writes) and raw scalars
// (hand-written backups), like every other JSONL row input.
func ReadBackup(r io.Reader) (table string, schema engine.Schema, rows []value.Tuple, epoch uint64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	if !sc.Scan() {
		if err = sc.Err(); err == nil {
			err = fmt.Errorf("store: empty backup stream")
		}
		return
	}
	var hdr backupHeader
	dec := json.NewDecoder(strings.NewReader(sc.Text()))
	dec.DisallowUnknownFields()
	if err = dec.Decode(&hdr); err != nil {
		err = fmt.Errorf("store: backup header: %v", err)
		return
	}
	if hdr.CapeBackup != backupVersion {
		err = fmt.Errorf("store: backup version %d not supported (want %d)", hdr.CapeBackup, backupVersion)
		return
	}
	if schema, err = engine.ParseSchemaJSON(hdr.Schema); err != nil {
		err = fmt.Errorf("store: backup schema: %v", err)
		return
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var raws []json.RawMessage
		if err = json.Unmarshal([]byte(line), &raws); err != nil {
			err = fmt.Errorf("store: backup line %d: %v", lineNo, err)
			return
		}
		var t value.Tuple
		if t, err = value.ParseJSONTuple(raws); err != nil {
			err = fmt.Errorf("store: backup line %d: %v", lineNo, err)
			return
		}
		if err = schema.ValidateRow(t); err != nil {
			err = fmt.Errorf("store: backup line %d: %v", lineNo, err)
			return
		}
		rows = append(rows, t)
	}
	if err = sc.Err(); err != nil {
		return
	}
	if len(rows) != hdr.Rows {
		err = fmt.Errorf("store: backup has %d rows, header says %d (truncated stream?)", len(rows), hdr.Rows)
		return
	}
	return hdr.Table, schema, rows, hdr.Epoch, nil
}

// ImportJSONL creates a new store at dir from a backup stream,
// restoring the exported epoch so pattern-store stamps carried over
// from the source deployment still line up.
func ImportJSONL(dir string, r io.Reader, opt Options) (*Store, error) {
	table, schema, rows, epoch, err := ReadBackup(r)
	if err != nil {
		return nil, err
	}
	tab := opt.backing(schema)
	if len(rows) > 0 {
		if err := tab.AppendRows(rows); err != nil {
			return nil, err
		}
	}
	er, ok := tab.(epochRestorer)
	if !ok {
		return nil, fmt.Errorf("store: backing %T cannot restore epochs", tab)
	}
	er.RestoreEpoch(epoch)
	return Bootstrap(dir, table, tab, opt)
}
