package distance

import (
	"math"
	"testing"
	"testing/quick"

	"cape/internal/value"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCategorical(t *testing.T) {
	c := Categorical{}
	if c.Distance(value.NewString("a"), value.NewString("a")) != 0 {
		t.Error("equal values should have distance 0")
	}
	if c.Distance(value.NewString("a"), value.NewString("b")) != 1 {
		t.Error("distinct values should have distance 1")
	}
	if c.Distance(value.NewInt(1), value.NewFloat(1)) != 0 {
		t.Error("numerically equal values should have distance 0")
	}
}

func TestNumeric(t *testing.T) {
	n := Numeric{Scale: 4}
	if got := n.Distance(value.NewInt(2007), value.NewInt(2008)); got != 0.25 {
		t.Errorf("1 year at scale 4 = %g, want 0.25", got)
	}
	if got := n.Distance(value.NewInt(2007), value.NewInt(2020)); got != 1 {
		t.Errorf("13 years should cap at 1, got %g", got)
	}
	if got := n.Distance(value.NewInt(5), value.NewInt(5)); got != 0 {
		t.Errorf("equal = %g", got)
	}
	if got := n.Distance(value.NewString("x"), value.NewInt(5)); got != 1 {
		t.Errorf("non-numeric mismatch = %g, want 1", got)
	}
	zero := Numeric{} // Scale 0 treated as 1
	if got := zero.Distance(value.NewInt(0), value.NewFloat(0.5)); got != 0.5 {
		t.Errorf("default scale distance = %g, want 0.5", got)
	}
}

func TestNumericSymmetry(t *testing.T) {
	n := Numeric{Scale: 10}
	f := func(a, b int16) bool {
		va, vb := value.NewInt(int64(a)), value.NewInt(int64(b))
		return n.Distance(va, vb) == n.Distance(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassed(t *testing.T) {
	c := Classed{
		Class:       map[string]string{"SIGKDD": "DM", "ICDM": "DM", "SIGMOD": "DB", "VLDB": "DB"},
		WithinClass: 0.3,
	}
	if got := c.Distance(value.NewString("SIGKDD"), value.NewString("ICDM")); got != 0.3 {
		t.Errorf("same class = %g, want 0.3", got)
	}
	if got := c.Distance(value.NewString("SIGKDD"), value.NewString("VLDB")); got != 1 {
		t.Errorf("different class = %g, want 1", got)
	}
	if got := c.Distance(value.NewString("SIGKDD"), value.NewString("SIGKDD")); got != 0 {
		t.Errorf("equal = %g, want 0", got)
	}
	if got := c.Distance(value.NewString("UNKNOWN"), value.NewString("SIGKDD")); got != 1 {
		t.Errorf("unmapped value = %g, want 1", got)
	}
}

func TestMetricDistanceSameSchema(t *testing.T) {
	m := NewMetric()
	t1 := Tuple{"a": value.NewString("x"), "b": value.NewString("y")}
	t2 := Tuple{"a": value.NewString("x"), "b": value.NewString("z")}
	// One attribute of two differs: sqrt((0 + 1)/2).
	if got := m.Distance(t1, t2); !almostEq(got, math.Sqrt(0.5), 1e-12) {
		t.Errorf("distance = %g, want %g", got, math.Sqrt(0.5))
	}
	if got := m.Distance(t1, t1); got != 0 {
		t.Errorf("identical tuples = %g, want 0", got)
	}
}

func TestMetricDistanceDifferentSchemas(t *testing.T) {
	m := NewMetric()
	t1 := Tuple{"a": value.NewString("x"), "b": value.NewString("y")}
	t2 := Tuple{"a": value.NewString("x"), "c": value.NewString("z")}
	// Union = {a,b,c}; a matches (0), b and c each contribute 1.
	want := math.Sqrt(2.0 / 3.0)
	if got := m.Distance(t1, t2); !almostEq(got, want, 1e-12) {
		t.Errorf("distance = %g, want %g", got, want)
	}
}

func TestMetricDistanceSymmetric(t *testing.T) {
	m := NewMetric().SetWeight("a", 2).SetFunc("b", Numeric{Scale: 5})
	t1 := Tuple{"a": value.NewString("x"), "b": value.NewInt(3)}
	t2 := Tuple{"b": value.NewInt(5), "c": value.NewString("q")}
	if m.Distance(t1, t2) != m.Distance(t2, t1) {
		t.Error("metric distance should be symmetric")
	}
}

func TestMetricWeights(t *testing.T) {
	m := NewMetric().SetWeight("a", 3).SetWeight("b", 1)
	t1 := Tuple{"a": value.NewString("x"), "b": value.NewString("y")}
	t2 := Tuple{"a": value.NewString("q"), "b": value.NewString("y")}
	// a differs with weight 3 of total 4: sqrt(3/4).
	if got := m.Distance(t1, t2); !almostEq(got, math.Sqrt(0.75), 1e-12) {
		t.Errorf("weighted distance = %g, want %g", got, math.Sqrt(0.75))
	}
}

func TestMetricDefaults(t *testing.T) {
	var m *Metric // nil metric: all defaults
	if m.WeightOf("a") != 1 {
		t.Error("nil metric default weight should be 1")
	}
	m2 := &Metric{Default: Numeric{Scale: 2}, DefaultWeight: 5}
	if m2.WeightOf("anything") != 5 {
		t.Error("DefaultWeight not honored")
	}
	if got := m2.funcFor("z").Distance(value.NewInt(0), value.NewInt(1)); got != 0.5 {
		t.Errorf("Default func not honored: %g", got)
	}
}

func TestMetricEmptyTuples(t *testing.T) {
	m := NewMetric()
	if got := m.Distance(Tuple{}, Tuple{}); got != 0 {
		t.Errorf("empty tuples = %g, want 0", got)
	}
}

func TestDistanceRange(t *testing.T) {
	m := NewMetric().SetFunc("n", Numeric{Scale: 3})
	f := func(a, b int8, s1, s2 string) bool {
		t1 := Tuple{"n": value.NewInt(int64(a)), "s": value.NewString(s1)}
		t2 := Tuple{"n": value.NewInt(int64(b)), "s": value.NewString(s2)}
		d := m.Distance(t1, t2)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowerBound(t *testing.T) {
	m := NewMetric()
	// Same attribute sets: bound 0.
	if got := m.LowerBound([]string{"a", "b"}, []string{"b", "a"}); got != 0 {
		t.Errorf("identical attr sets bound = %g, want 0", got)
	}
	// One extra attribute on one side: sqrt(1/3).
	if got := m.LowerBound([]string{"a", "b"}, []string{"a", "b", "c"}); !almostEq(got, math.Sqrt(1.0/3.0), 1e-12) {
		t.Errorf("bound = %g, want %g", got, math.Sqrt(1.0/3.0))
	}
	if got := m.LowerBound(nil, nil); got != 0 {
		t.Errorf("empty bound = %g", got)
	}
}

// TestLowerBoundIsActuallyLower: for random tuples over the given
// schemas, Distance is never below LowerBound.
func TestLowerBoundIsActuallyLower(t *testing.T) {
	m := NewMetric().SetFunc("n", Numeric{Scale: 2}).SetWeight("s", 3)
	attrs1 := []string{"n", "s", "only1"}
	attrs2 := []string{"n", "s", "only2"}
	bound := m.LowerBound(attrs1, attrs2)
	f := func(a, b int8, s1, s2 string) bool {
		t1 := Tuple{"n": value.NewInt(int64(a)), "s": value.NewString(s1), "only1": value.NewInt(0)}
		t2 := Tuple{"n": value.NewInt(int64(b)), "s": value.NewString(s2), "only2": value.NewInt(0)}
		return m.Distance(t1, t2) >= bound-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
