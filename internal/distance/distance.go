// Package distance implements the tuple-distance model of Definition 9 in
// the CAPE paper: per-attribute distance functions with values in [0, 1],
// per-attribute weights, and a weighted L2 tuple distance that remains
// comparable across tuples with different schemas by charging the maximal
// distance 1 for attributes present in only one of the two tuples and
// normalizing by the total weight of the union.
package distance

import (
	"math"

	"cape/internal/value"
)

// Func measures the distance between two values of a single attribute.
// Implementations must be symmetric, return values in [0, 1], and return
// 0 for equal values.
type Func interface {
	Distance(a, b value.V) float64
}

// Categorical treats every pair of distinct values as maximally distant.
type Categorical struct{}

// Distance returns 0 when a equals b, 1 otherwise.
func (Categorical) Distance(a, b value.V) float64 {
	if value.Equal(a, b) {
		return 0
	}
	return 1
}

// Numeric scales the absolute difference of two numeric values by Scale,
// capping at 1. Non-numeric operands that are unequal are maximally
// distant. A Scale of 4, say, makes values 4 or more apart maximally
// distant — suitable for year-like attributes where adjacency matters.
type Numeric struct {
	Scale float64
}

// Distance returns min(1, |a−b| / Scale).
func (n Numeric) Distance(a, b value.V) float64 {
	if value.Equal(a, b) {
		return 0
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return 1
	}
	scale := n.Scale
	if scale <= 0 {
		scale = 1
	}
	d := math.Abs(af-bf) / scale
	if d > 1 {
		return 1
	}
	return d
}

// Classed partitions an attribute's domain into named classes — the
// paper's default distance: two values in the same class are close
// (WithinClass), values in different classes are maximally distant, and
// equal values have distance 0. Values absent from the mapping form an
// implicit class of their own.
type Classed struct {
	// Class maps the rendered value (value.V.String()) to its class name.
	Class map[string]string
	// WithinClass is the distance of two distinct same-class values.
	WithinClass float64
}

// Distance implements Func.
func (c Classed) Distance(a, b value.V) float64 {
	if value.Equal(a, b) {
		return 0
	}
	ca, aok := c.Class[a.String()]
	cb, bok := c.Class[b.String()]
	if aok && bok && ca == cb {
		return c.WithinClass
	}
	return 1
}

// Metric bundles the per-attribute functions and weights into the tuple
// distance of Definition 9.
type Metric struct {
	// Funcs maps attribute name to its distance function; attributes not
	// present use Default.
	Funcs map[string]Func
	// Weights maps attribute name to its weight w_A; attributes not
	// present weigh DefaultWeight. The normalization factor W makes only
	// relative weights matter.
	Weights map[string]float64
	// Default is the distance function for unlisted attributes
	// (Categorical when nil).
	Default Func
	// DefaultWeight is the weight of unlisted attributes (1 when 0).
	DefaultWeight float64
}

// NewMetric returns a metric with categorical distance and equal weights
// everywhere.
func NewMetric() *Metric {
	return &Metric{Funcs: map[string]Func{}, Weights: map[string]float64{}}
}

// SetFunc assigns the distance function of one attribute and returns the
// metric for chaining.
func (m *Metric) SetFunc(attr string, f Func) *Metric {
	if m.Funcs == nil {
		m.Funcs = map[string]Func{}
	}
	m.Funcs[attr] = f
	return m
}

// SetWeight assigns the weight of one attribute and returns the metric.
func (m *Metric) SetWeight(attr string, w float64) *Metric {
	if m.Weights == nil {
		m.Weights = map[string]float64{}
	}
	m.Weights[attr] = w
	return m
}

func (m *Metric) funcFor(attr string) Func {
	if m != nil && m.Funcs != nil {
		if f, ok := m.Funcs[attr]; ok {
			return f
		}
	}
	if m != nil && m.Default != nil {
		return m.Default
	}
	return Categorical{}
}

// WeightOf returns the weight of an attribute under the metric.
func (m *Metric) WeightOf(attr string) float64 {
	if m != nil && m.Weights != nil {
		if w, ok := m.Weights[attr]; ok {
			return w
		}
	}
	if m != nil && m.DefaultWeight > 0 {
		return m.DefaultWeight
	}
	return 1
}

// Tuple is a schema-tagged tuple: attribute name → value. Tuples passed
// to Distance may have different attribute sets.
type Tuple map[string]value.V

// Distance computes Definition 9:
//
//	d(t1, t2) = sqrt( (1/W) Σ_{A ∈ T1 ∪ T2} w_A · d_A^exists(t1, t2)² )
//
// where d_A^exists is the attribute distance when A appears in both
// tuples and the maximal distance 1 otherwise, and W = Σ_{A ∈ T1∪T2} w_A.
func (m *Metric) Distance(t1, t2 Tuple) float64 {
	var sum, w float64
	for attr, v1 := range t1 {
		wa := m.WeightOf(attr)
		w += wa
		if v2, ok := t2[attr]; ok {
			d := m.funcFor(attr).Distance(v1, v2)
			sum += wa * d * d
		} else {
			sum += wa
		}
	}
	for attr := range t2 {
		if _, ok := t1[attr]; ok {
			continue
		}
		wa := m.WeightOf(attr)
		w += wa
		sum += wa
	}
	if w == 0 {
		return 0
	}
	return math.Sqrt(sum / w)
}

// LowerBound computes the smallest possible Distance between a tuple with
// attribute set attrs1 and one with attribute set attrs2, achieved when
// every shared attribute has distance 0: only the symmetric difference
// contributes (at the maximal per-attribute distance 1). This is the
// d↓(φ, P') bound of Section 3.5.
func (m *Metric) LowerBound(attrs1, attrs2 []string) float64 {
	in1 := make(map[string]bool, len(attrs1))
	for _, a := range attrs1 {
		in1[a] = true
	}
	in2 := make(map[string]bool, len(attrs2))
	for _, a := range attrs2 {
		in2[a] = true
	}
	var sum, w float64
	for _, a := range attrs1 {
		wa := m.WeightOf(a)
		w += wa
		if !in2[a] {
			sum += wa
		}
	}
	for _, a := range attrs2 {
		if in1[a] {
			continue
		}
		wa := m.WeightOf(a)
		w += wa
		sum += wa
	}
	if w == 0 {
		return 0
	}
	return math.Sqrt(sum / w)
}
