package mining

import (
	"time"

	"cape/internal/engine"
	"cape/internal/pattern"
)

// CubeMine materializes a single CUBE query covering every grouping of
// size 2..ψ over the mining attributes (Section 4.1, "Using the CUBE BY
// operator"), then serves each pattern candidate by slicing and sorting
// the materialized result. The cube pays for every grouping up front —
// the cost that makes this variant lose to ShareGrp/ARPMine as the
// attribute count grows (Figure 3a).
func CubeMine(r engine.Relation, opt Options) (*Result, error) {
	opt, err := opt.withDefaults(r)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	maxSize := opt.MaxPatternSize
	if maxSize > len(opt.Attributes) {
		maxSize = len(opt.Attributes)
	}
	if maxSize < 2 {
		return res, nil
	}

	// One cube evaluates all aggregates over all attributes; aggregates
	// whose argument falls inside a particular grouping are simply unused
	// for that grouping (mirroring the GROUPING() filter in SQL).
	allAggs := aggSpecsFor(r, opt.AggFuncs, nil)
	t0 := time.Now()
	cube, err := r.Cube(opt.Attributes, 2, maxSize, allAggs)
	if err != nil {
		return nil, err
	}
	res.Timers.Query += time.Since(t0)

	for size := 2; size <= maxSize; size++ {
		err := eachCombination(opt.Attributes, size, func(g []string) error {
			aggs := aggSpecsFor(r, opt.AggFuncs, g)
			t0 = time.Now()
			slice, err := engine.CubeSlice(cube, opt.Attributes, g, aggs)
			if err != nil {
				return err
			}
			codes, err := engine.BuildSortCodes(slice, g)
			if err != nil {
				return err
			}
			perm := codes.NewPerm()
			res.Timers.Query += time.Since(t0)
			fitter, err := pattern.NewSharedFitter(slice, aggs, opt.Models, opt.Thresholds)
			if err != nil {
				return err
			}
			for _, sp := range splits(g) {
				f, v := sp[0], sp[1]
				t0 = time.Now()
				if err := codes.SortPerm(perm, append(append([]string{}, f...), v...), 0); err != nil {
					return err
				}
				res.Timers.Query += time.Since(t0)
				res.Candidates += len(aggs) * len(opt.Models)
				mined, err := fitter.Fit(f, v, perm, codes, &res.Timers)
				if err != nil {
					return err
				}
				res.Patterns = append(res.Patterns, mined...)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	res.sortPatterns()
	return res, nil
}
