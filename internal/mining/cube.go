package mining

import (
	"time"

	"cape/internal/engine"
	"cape/internal/pattern"
)

// CubeMine materializes a single CUBE query covering every grouping of
// size 2..ψ over the mining attributes (Section 4.1, "Using the CUBE BY
// operator"), then serves each pattern candidate by slicing and sorting
// the materialized result. The cube pays for every grouping up front —
// the cost that makes this variant lose to ShareGrp/ARPMine as the
// attribute count grows (Figure 3a).
func CubeMine(r engine.Relation, opt Options) (*Result, error) {
	opt, err := opt.withDefaults(r)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	maxSize := opt.MaxPatternSize
	if maxSize > len(opt.Attributes) {
		maxSize = len(opt.Attributes)
	}
	if maxSize < 2 {
		return res, nil
	}

	// One cube evaluates all aggregates over all attributes; aggregates
	// whose argument falls inside a particular grouping are simply unused
	// for that grouping (mirroring the GROUPING() filter in SQL). The
	// cube's own groupings fan across the pool inside cubeOver; the
	// per-attribute-set slicing and fitting below fans across the same
	// pool afterwards, with per-G results merged in enumeration order.
	pool, detach := runPool(r, opt.Parallelism)
	defer detach()
	allAggs := aggSpecsFor(r, opt.AggFuncs, nil)
	t0 := time.Now()
	cube, err := r.Cube(opt.Attributes, 2, maxSize, allAggs)
	if err != nil {
		return nil, err
	}
	res.Timers.Query += time.Since(t0)

	var gs [][]string
	for size := 2; size <= maxSize; size++ {
		gs = append(gs, combinations(opt.Attributes, size)...)
	}
	outs := make([]Result, len(gs))
	err = pool.ForEach("mine:cube", len(gs), func(i int) error {
		g := gs[i]
		out := &outs[i]
		aggs := aggSpecsFor(r, opt.AggFuncs, g)
		t0 := time.Now()
		slice, err := engine.CubeSlice(cube, opt.Attributes, g, aggs)
		if err != nil {
			return err
		}
		codes, err := engine.BuildSortCodes(slice, g)
		if err != nil {
			return err
		}
		perm := codes.NewPerm()
		out.Timers.Query += time.Since(t0)
		fitter, err := pattern.NewSharedFitter(slice, aggs, opt.Models, opt.Thresholds)
		if err != nil {
			return err
		}
		for _, sp := range splits(g) {
			f, v := sp[0], sp[1]
			t0 = time.Now()
			if err := codes.SortPerm(perm, append(append([]string{}, f...), v...), 0); err != nil {
				return err
			}
			out.Timers.Query += time.Since(t0)
			out.Candidates += len(aggs) * len(opt.Models)
			mined, err := fitter.Fit(f, v, perm, codes, &out.Timers)
			if err != nil {
				return err
			}
			out.Patterns = append(out.Patterns, mined...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range outs {
		res.Patterns = append(res.Patterns, outs[i].Patterns...)
		res.Candidates += outs[i].Candidates
		res.Timers.Add(outs[i].Timers)
	}
	res.sortPatterns()
	return res, nil
}
