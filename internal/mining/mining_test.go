package mining

import (
	"math/rand"
	"testing"

	"cape/internal/engine"
	"cape/internal/fd"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/value"
)

// testTable builds a small 4-attribute relation with planted trends:
// per (author, venue) the yearly publication count is roughly constant,
// and "cites" carries a numeric payload.
func testTable(t testing.TB, rows int) *engine.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "venue", Kind: value.String},
		{Name: "year", Kind: value.Int},
		{Name: "cites", Kind: value.Int},
	})
	authors := []string{"a1", "a2", "a3", "a4", "a5"}
	venues := []string{"KDD", "ICDE", "VLDB"}
	for i := 0; i < rows; i++ {
		tab.MustAppend(value.Tuple{
			value.NewString(authors[rng.Intn(len(authors))]),
			value.NewString(venues[rng.Intn(len(venues))]),
			value.NewInt(int64(2000 + rng.Intn(6))),
			value.NewInt(int64(rng.Intn(30))),
		})
	}
	return tab
}

func lenientOpts() Options {
	return Options{
		MaxPatternSize: 3,
		Thresholds:     pattern.Thresholds{Theta: 0.1, LocalSupport: 2, Lambda: 0.3, GlobalSupport: 1},
		AggFuncs:       []engine.AggFunc{engine.Count, engine.Sum},
		Models:         []regress.ModelType{regress.Const, regress.Lin},
	}
}

func patternKeys(res *Result) map[string]bool {
	out := make(map[string]bool, len(res.Patterns))
	for _, m := range res.Patterns {
		out[m.Pattern.Key()] = true
	}
	return out
}

// TestMinerEquivalence is the central consistency check: all four miner
// variants must discover exactly the same set of globally-holding
// patterns (FD pruning disabled), since they differ only in query
// sharing, not semantics.
func TestMinerEquivalence(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()

	naive, err := Naive(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	share, err := ShareGrp(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := CubeMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	arp, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}

	if len(naive.Patterns) == 0 {
		t.Fatal("no patterns found at lenient thresholds — test data or miner broken")
	}
	nk := patternKeys(naive)
	for name, res := range map[string]*Result{"ShareGrp": share, "Cube": cube, "ARPMine": arp} {
		rk := patternKeys(res)
		if len(rk) != len(nk) {
			t.Errorf("%s found %d patterns, Naive found %d", name, len(rk), len(nk))
		}
		for k := range nk {
			if !rk[k] {
				t.Errorf("%s missing pattern %s", name, k)
			}
		}
		for k := range rk {
			if !nk[k] {
				t.Errorf("%s has extra pattern %s", name, k)
			}
		}
	}
}

// TestMinerLocalModelsAgree verifies the per-fragment models agree
// between the naive and shared implementations, not just the pattern
// sets.
func TestMinerLocalModelsAgree(t *testing.T) {
	tab := testTable(t, 300)
	opt := lenientOpts()
	naive, err := Naive(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	arp, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	arpByKey := map[string]*pattern.Mined{}
	for _, m := range arp.Patterns {
		arpByKey[m.Pattern.Key()] = m
	}
	for _, nm := range naive.Patterns {
		am, ok := arpByKey[nm.Pattern.Key()]
		if !ok {
			t.Fatalf("ARPMine missing %s", nm.Pattern)
		}
		if len(am.Locals) != len(nm.Locals) {
			t.Errorf("%s: local model count %d vs %d", nm.Pattern, len(am.Locals), len(nm.Locals))
			continue
		}
		for k, nlm := range nm.Locals {
			alm, ok := am.Locals[k]
			if !ok {
				t.Errorf("%s: missing fragment %v", nm.Pattern, nlm.Frag)
				continue
			}
			if alm.Support != nlm.Support {
				t.Errorf("%s %v: support %d vs %d", nm.Pattern, nlm.Frag, alm.Support, nlm.Support)
			}
			np, ap := nlm.Model.Params(), alm.Model.Params()
			for i := range np {
				if diff := np[i] - ap[i]; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("%s %v: params %v vs %v", nm.Pattern, nlm.Frag, np, ap)
					break
				}
			}
		}
	}
}

func TestARPMineFDPruning(t *testing.T) {
	// Add a column functionally determined by venue (venue → area).
	tab := testTable(t, 300)
	area := map[string]string{"KDD": "DM", "ICDE": "DB", "VLDB": "DB"}
	aug := engine.NewTable(append(tab.Schema().Clone(), engine.Column{Name: "area", Kind: value.String}))
	for _, r := range tab.Rows() {
		row := append(r.Clone(), value.NewString(area[r[1].Str()]))
		aug.MustAppend(row)
	}

	opt := lenientOpts()
	opt.UseFDs = true
	res, err := ARPMine(aug, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedByFD == 0 {
		t.Error("FD pruning should skip some (F,V) pairs with venue → area present")
	}
	if res.FDs == nil || !res.FDs.Implies([]string{"venue"}, "area") {
		t.Error("venue → area should have been detected")
	}
	// Pruned patterns must all be redundant: every surviving pattern has
	// minimal F.
	for _, m := range res.Patterns {
		if !res.FDs.IsMinimal(m.Pattern.F) {
			t.Errorf("non-minimal F survived FD pruning: %s", m.Pattern)
		}
	}

	// Without FDs the superset includes everything found with FDs except
	// pruned-but-redundant ones.
	opt.UseFDs = false
	noFD, err := ARPMine(aug, opt)
	if err != nil {
		t.Fatal(err)
	}
	withKeys := patternKeys(res)
	noKeys := patternKeys(noFD)
	for k := range withKeys {
		if !noKeys[k] {
			t.Errorf("FD run found pattern absent from full run: %s", k)
		}
	}
	if res.Candidates >= noFD.Candidates {
		t.Errorf("FD pruning should reduce candidates: %d vs %d", res.Candidates, noFD.Candidates)
	}
}

func TestARPMineInitialFDs(t *testing.T) {
	tab := testTable(t, 200)
	seed := fd.NewSet()
	seed.Add([]string{"author"}, "venue") // artificial: prunes {author,venue} F sets
	opt := lenientOpts()
	opt.UseFDs = true
	opt.InitialFDs = seed
	res, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Patterns {
		if !seed.IsMinimal(m.Pattern.F) {
			t.Errorf("pattern with non-minimal F survived: %s", m.Pattern)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	tab := testTable(t, 50)
	got, err := Options{}.withDefaults(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxPatternSize != 4 || len(got.Attributes) != 4 || len(got.AggFuncs) != 2 || len(got.Models) != 2 {
		t.Errorf("defaults = %+v", got)
	}
	if _, err := (Options{MaxPatternSize: 1}).withDefaults(tab); err == nil {
		t.Error("ψ = 1 should error")
	}
	if _, err := (Options{Attributes: []string{"ghost"}}).withDefaults(tab); err == nil {
		t.Error("unknown attribute should error")
	}
	if _, err := (Options{Thresholds: pattern.Thresholds{Theta: 5, LocalSupport: 1, Lambda: 0, GlobalSupport: 1}}).withDefaults(tab); err == nil {
		t.Error("invalid thresholds should error")
	}
}

func TestCombinations(t *testing.T) {
	attrs := []string{"a", "b", "c", "d"}
	if got := len(combinations(attrs, 2)); got != 6 {
		t.Errorf("C(4,2) = %d, want 6", got)
	}
	if got := len(combinations(attrs, 4)); got != 1 {
		t.Errorf("C(4,4) = %d, want 1", got)
	}
	if combinations(attrs, 0) != nil || combinations(attrs, 5) != nil {
		t.Error("out-of-range k should return nil")
	}
	// Subsets preserve input order.
	for _, c := range combinations(attrs, 3) {
		for i := 1; i < len(c); i++ {
			if c[i-1] >= c[i] {
				t.Errorf("combination %v not in input order", c)
			}
		}
	}
}

func TestSplits(t *testing.T) {
	g := []string{"a", "b", "c"}
	sp := splits(g)
	if len(sp) != 6 { // 2³ − 2
		t.Errorf("splits of 3 attrs = %d, want 6", len(sp))
	}
	for _, s := range sp {
		if len(s[0]) == 0 || len(s[1]) == 0 {
			t.Errorf("split has empty side: %v", s)
		}
		if len(s[0])+len(s[1]) != len(g) {
			t.Errorf("split loses attributes: %v", s)
		}
	}
}

func TestSortOrderCover(t *testing.T) {
	if sortOrderCover(nil) != nil {
		t.Error("cover of empty should be nil")
	}
	// binom(n, k) without floats.
	binom := func(n, k int) int {
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for n := 1; n <= 6; n++ {
		g := make([]string, n)
		for i := range g {
			g[i] = string(rune('a' + i))
		}
		orders := sortOrderCover(g)
		// Minimal size: C(n, ⌊n/2⌋) orders.
		if want := binom(n, n/2); len(orders) != want {
			t.Errorf("n=%d: %d orders, want %d", n, len(orders), want)
		}
		// Each order is a permutation of g.
		for _, s := range orders {
			seen := map[string]bool{}
			for _, a := range s {
				seen[a] = true
			}
			if len(s) != n || len(seen) != n {
				t.Errorf("n=%d: order %v is not a permutation of %v", n, s, g)
			}
		}
		// Every non-empty proper subset is a prefix set of some order.
		covered := map[string]bool{}
		for _, s := range orders {
			for k := 1; k < n; k++ {
				covered[fd.Key(s[:k])] = true
			}
		}
		for mask := 1; mask < (1<<uint(n))-1; mask++ {
			var f []string
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					f = append(f, g[i])
				}
			}
			if !covered[fd.Key(f)] {
				t.Errorf("n=%d: subset %v not covered by any sort order", n, f)
			}
		}
	}
}

func TestSharedPrefix(t *testing.T) {
	if got := sharedPrefix([]string{"a", "b", "c"}, []string{"a", "b", "d"}); got != 2 {
		t.Errorf("sharedPrefix = %d, want 2", got)
	}
	if got := sharedPrefix(nil, []string{"a"}); got != 0 {
		t.Errorf("sharedPrefix with nil = %d, want 0", got)
	}
}

func TestAggSpecsFor(t *testing.T) {
	tab := testTable(t, 10)
	specs := aggSpecsFor(tab, []engine.AggFunc{engine.Count, engine.Sum}, []string{"author", "year"})
	var haveCount, haveSumCites, haveSumYear bool
	for _, s := range specs {
		switch s.String() {
		case "count(*)":
			haveCount = true
		case "sum(cites)":
			haveSumCites = true
		case "sum(year)":
			haveSumYear = true
		}
	}
	if !haveCount || !haveSumCites {
		t.Errorf("specs missing expected aggregates: %v", specs)
	}
	if haveSumYear {
		t.Error("sum(year) must be excluded: year ∈ G")
	}
	// String columns are never aggregate arguments.
	for _, s := range specs {
		if s.Arg == "author" || s.Arg == "venue" {
			t.Errorf("string column used as aggregate argument: %v", s)
		}
	}
}

func TestMiningTimersPopulated(t *testing.T) {
	tab := testTable(t, 200)
	res, err := ARPMine(tab, lenientOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timers.Query <= 0 {
		t.Error("query time should be positive")
	}
	if res.Timers.Regression <= 0 {
		t.Error("regression time should be positive")
	}
	if res.Candidates <= 0 {
		t.Error("candidate count should be positive")
	}
}

func TestMaxPatternSizeRestricts(t *testing.T) {
	tab := testTable(t, 200)
	opt := lenientOpts()
	opt.MaxPatternSize = 2
	res, err := ShareGrp(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Patterns {
		if len(m.Pattern.F)+len(m.Pattern.V) > 2 {
			t.Errorf("pattern exceeds ψ=2: %s", m.Pattern)
		}
	}
}

func TestAttributesRestricts(t *testing.T) {
	tab := testTable(t, 200)
	opt := lenientOpts()
	opt.Attributes = []string{"author", "year"}
	res, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Patterns {
		for _, a := range m.Pattern.GroupAttrs() {
			if a != "author" && a != "year" {
				t.Errorf("pattern uses excluded attribute: %s", m.Pattern)
			}
		}
	}
}
