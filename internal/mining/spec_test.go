package mining

import (
	"reflect"
	"testing"
)

// TestSpecRoundTrip: Options → StoreSpec → Options must reproduce the
// normalized mining configuration, so a maintainer rebuilt from a
// persisted spec runs with exactly the parameters the store was mined
// under.
func TestSpecRoundTrip(t *testing.T) {
	tab := testTable(t, 60)
	opt := lenientOpts()
	spec, err := SpecFor(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := OptionsFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := opt.withDefaults(tab)
	if err != nil {
		t.Fatal(err)
	}
	backNorm, err := back.withDefaults(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(norm, backNorm) {
		t.Errorf("round trip diverged:\n  orig: %+v\n  back: %+v", norm, backNorm)
	}
}

// TestSpecForRejectsFDs: FD-pruned candidate sets are not parameter-
// reconstructible.
func TestSpecForRejectsFDs(t *testing.T) {
	opt := lenientOpts()
	opt.UseFDs = true
	if _, err := SpecFor(testTable(t, 30), opt); err == nil {
		t.Fatal("SpecFor must reject UseFDs")
	}
}

// TestOptionsFromSpecBadNames: unknown aggregate or model names error
// instead of silently dropping.
func TestOptionsFromSpecBadNames(t *testing.T) {
	tab := testTable(t, 30)
	spec, err := SpecFor(tab, lenientOpts())
	if err != nil {
		t.Fatal(err)
	}
	bad := *spec
	bad.Aggregates = []string{"median"}
	if _, err := OptionsFromSpec(&bad); err == nil {
		t.Fatal("unknown aggregate must error")
	}
	bad = *spec
	bad.Models = []string{"cubic"}
	if _, err := OptionsFromSpec(&bad); err == nil {
		t.Fatal("unknown model must error")
	}
}
