package mining

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachParallelRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var count int64
		err := forEachParallel(20, workers, func(i int) error {
			atomic.AddInt64(&count, 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 20 {
			t.Errorf("workers=%d ran %d of 20", workers, count)
		}
	}
}

func TestForEachParallelPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := forEachParallel(50, 4, func(i int) error {
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("error = %v, want sentinel", err)
	}
}

// TestForEachParallelFailsFast: after an error is recorded, the
// dispatcher must stop feeding work — a large run should execute only a
// handful of items past the failure, not all of them.
func TestForEachParallelFailsFast(t *testing.T) {
	sentinel := errors.New("boom")
	const n = 10000
	var ran int64
	err := forEachParallel(n, 4, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return sentinel
		}
		time.Sleep(time.Millisecond) // let the dispatcher observe the error
		return nil
	})
	if err != sentinel {
		t.Fatalf("error = %v, want sentinel", err)
	}
	if got := atomic.LoadInt64(&ran); got > n/10 {
		t.Errorf("ran %d of %d items after the first error; fail-fast not effective", got, n)
	}
}

func TestForEachParallelZeroItems(t *testing.T) {
	if err := forEachParallel(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero items should not run fn: %v", err)
	}
}

// TestParallelMiningEquivalence: parallel ShareGrp and ARPMine (with and
// without FDs) must produce exactly the sequential pattern sets and
// counters.
func TestParallelMiningEquivalence(t *testing.T) {
	tab := testTable(t, 400)
	for _, useFDs := range []bool{false, true} {
		opt := lenientOpts()
		opt.UseFDs = useFDs
		seqA, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Parallelism = 4
		parA, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(seqA.Patterns) != len(parA.Patterns) ||
			seqA.Candidates != parA.Candidates ||
			seqA.SkippedByFD != parA.SkippedByFD {
			t.Fatalf("FDs=%v: parallel ARPMine differs: %d/%d/%d vs %d/%d/%d",
				useFDs,
				len(seqA.Patterns), seqA.Candidates, seqA.SkippedByFD,
				len(parA.Patterns), parA.Candidates, parA.SkippedByFD)
		}
		for i := range seqA.Patterns {
			if seqA.Patterns[i].Pattern.Key() != parA.Patterns[i].Pattern.Key() {
				t.Fatalf("pattern order differs at %d", i)
			}
		}
	}

	opt := lenientOpts()
	seqS, err := ShareGrp(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 4
	parS, err := ShareGrp(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqS.Patterns) != len(parS.Patterns) || seqS.Candidates != parS.Candidates {
		t.Fatalf("parallel ShareGrp differs: %d/%d vs %d/%d",
			len(seqS.Patterns), seqS.Candidates, len(parS.Patterns), parS.Candidates)
	}
}
