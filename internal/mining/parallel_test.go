package mining

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cape/internal/engine"
)

func TestPoolForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var count int64
		err := engine.NewPool(workers).ForEach("test", 20, func(i int) error {
			atomic.AddInt64(&count, 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 20 {
			t.Errorf("workers=%d ran %d of 20", workers, count)
		}
	}
}

func TestPoolForEachPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := engine.NewPool(4).ForEach("test", 50, func(i int) error {
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Errorf("error = %v, want sentinel", err)
	}
}

// TestPoolForEachFailsFast: after an error is recorded, no worker may
// claim further items — a large run should execute only a handful of
// items past the failure, not all of them.
func TestPoolForEachFailsFast(t *testing.T) {
	sentinel := errors.New("boom")
	const n = 10000
	var ran int64
	err := engine.NewPool(4).ForEach("test", n, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return sentinel
		}
		time.Sleep(time.Millisecond) // let other workers observe the error
		return nil
	})
	if err != sentinel {
		t.Fatalf("error = %v, want sentinel", err)
	}
	if got := atomic.LoadInt64(&ran); got > n/10 {
		t.Errorf("ran %d of %d items after the first error; fail-fast not effective", got, n)
	}
}

func TestPoolForEachZeroItems(t *testing.T) {
	if err := engine.NewPool(4).ForEach("test", 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("zero items should not run fn: %v", err)
	}
}

// TestPoolNestedForEach: a ForEach issued from inside a pool worker must
// complete (caller-runs keeps the composition deadlock-free) and run
// every inner item.
func TestPoolNestedForEach(t *testing.T) {
	pool := engine.NewPool(4)
	var count int64
	err := pool.ForEach("outer", 8, func(i int) error {
		return pool.ForEach("inner", 8, func(j int) error {
			atomic.AddInt64(&count, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 64 {
		t.Errorf("nested ForEach ran %d of 64", count)
	}
}

// TestParallelMiningEquivalence: every miner run with Parallelism > 1
// must produce exactly the sequential pattern set and counters, over
// both a plain Table and a SegTable (where the engine's morsel kernels
// add a second level of fan-out).
func TestParallelMiningEquivalence(t *testing.T) {
	tab := testTable(t, 400)
	seg := segTableFrom(t, tab, 3, 40)
	defer seg.Close()

	miners := []struct {
		name string
		run  func(engine.Relation, Options) (*Result, error)
	}{
		{"Naive", Naive},
		{"CubeMine", CubeMine},
		{"ShareGrp", ShareGrp},
		{"ARPMine", ARPMine},
	}
	rels := []struct {
		name string
		r    engine.Relation
	}{
		{"Table", tab},
		{"SegTable", seg},
	}
	for _, m := range miners {
		for _, rel := range rels {
			opt := lenientOpts()
			seq, err := m.run(rel.r, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Parallelism = 4
			par, err := m.run(rel.r, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq.Patterns) != len(par.Patterns) || seq.Candidates != par.Candidates {
				t.Fatalf("%s/%s: parallel differs: %d/%d vs %d/%d", m.name, rel.name,
					len(seq.Patterns), seq.Candidates, len(par.Patterns), par.Candidates)
			}
			for i := range seq.Patterns {
				if seq.Patterns[i].Pattern.Key() != par.Patterns[i].Pattern.Key() {
					t.Fatalf("%s/%s: pattern order differs at %d", m.name, rel.name, i)
				}
			}
		}
	}

	// FD pruning composes with parallelism: counters must agree too.
	for _, useFDs := range []bool{false, true} {
		opt := lenientOpts()
		opt.UseFDs = useFDs
		seqA, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Parallelism = 4
		parA, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(seqA.Patterns) != len(parA.Patterns) ||
			seqA.Candidates != parA.Candidates ||
			seqA.SkippedByFD != parA.SkippedByFD {
			t.Fatalf("FDs=%v: parallel ARPMine differs: %d/%d/%d vs %d/%d/%d",
				useFDs,
				len(seqA.Patterns), seqA.Candidates, seqA.SkippedByFD,
				len(parA.Patterns), parA.Candidates, parA.SkippedByFD)
		}
	}
}
