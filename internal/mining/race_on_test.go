//go:build race

package mining

const raceEnabled = true
