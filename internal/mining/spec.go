package mining

import (
	"fmt"
	"strings"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/regress"
)

// Conversions between mining.Options and the pattern store's StoreSpec
// envelope field. A stamped store that carries a spec records everything
// needed to rebuild an equivalent mining configuration — and therefore a
// Maintainer able to fold future appends into the persisted set — without
// the store format importing this package.

// SpecFor renders the normalized mining options for tab as a store spec.
// FD-pruned runs have no spec (an FD detected on a prefix of the data can
// be violated by later rows, so the candidate set is not reconstructible
// from parameters alone): callers should persist such stores stamp-only.
func SpecFor(tab engine.Relation, opt Options) (*pattern.StoreSpec, error) {
	opt, err := opt.withDefaults(tab)
	if err != nil {
		return nil, err
	}
	if opt.UseFDs {
		return nil, fmt.Errorf("mining: FD-pruned runs have no reconstructible store spec")
	}
	spec := &pattern.StoreSpec{
		MaxPatternSize: opt.MaxPatternSize,
		Attributes:     append([]string(nil), opt.Attributes...),
		Theta:          opt.Thresholds.Theta,
		LocalSupport:   opt.Thresholds.LocalSupport,
		Lambda:         opt.Thresholds.Lambda,
		GlobalSupport:  opt.Thresholds.GlobalSupport,
	}
	for _, f := range opt.AggFuncs {
		spec.Aggregates = append(spec.Aggregates, f.String())
	}
	for _, m := range opt.Models {
		spec.Models = append(spec.Models, strings.ToLower(m.String()))
	}
	return spec, nil
}

// OptionsFromSpec rebuilds mining options from a store spec, inverting
// SpecFor.
func OptionsFromSpec(spec *pattern.StoreSpec) (Options, error) {
	opt := Options{
		MaxPatternSize: spec.MaxPatternSize,
		Attributes:     append([]string(nil), spec.Attributes...),
		Thresholds: pattern.Thresholds{
			Theta:         spec.Theta,
			LocalSupport:  spec.LocalSupport,
			Lambda:        spec.Lambda,
			GlobalSupport: spec.GlobalSupport,
		},
	}
	for _, a := range spec.Aggregates {
		f, err := engine.ParseAggFunc(a)
		if err != nil {
			return opt, fmt.Errorf("mining: store spec: %w", err)
		}
		opt.AggFuncs = append(opt.AggFuncs, f)
	}
	for _, m := range spec.Models {
		mt, err := regress.ParseModelType(m)
		if err != nil {
			return opt, fmt.Errorf("mining: store spec: %w", err)
		}
		opt.Models = append(opt.Models, mt)
	}
	return opt, nil
}
