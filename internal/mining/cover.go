package mining

import "sort"

// sortOrderCover returns a minimal set of orderings of g such that every
// (F, V) split of g — F a non-empty proper subset — is a prefix split of
// at least one ordering. The old implementation enumerated all n!
// permutations and relied on the tested-pair map to skip redundant ones;
// the cover achieves the information-theoretic minimum of C(n, ⌊n/2⌋)
// orders via the symmetric chain decomposition of the subset lattice
// (de Bruijn–Tengbergen–Kruyswijk): each chain of nested subsets
// S₁ ⊂ S₂ ⊂ … becomes one sort order whose prefix sets include exactly
// those subsets, and every subset of g lies on exactly one chain.
//
// Orders are returned sorted lexicographically, which maximizes the
// shared prefix between consecutive orders — the prefix SortPerm keeps
// when re-sorting.
func sortOrderCover(g []string) [][]string {
	n := len(g)
	if n == 0 {
		return nil
	}

	// Build the symmetric chain decomposition over bitmask subsets of
	// {0, …, n−1}. Invariant after processing k elements: every subset of
	// the first k elements lies on exactly one chain, and each chain is a
	// run of nested subsets growing one element per step. Adding element
	// k, chain [S₁, …, Sₘ] spawns [S₁, …, Sₘ, Sₘ∪{k}] and (when m > 1)
	// [S₁∪{k}, …, Sₘ₋₁∪{k}].
	chains := [][]uint{{0, 1}}
	for k := 1; k < n; k++ {
		bit := uint(1) << uint(k)
		next := make([][]uint, 0, 2*len(chains))
		for _, c := range chains {
			ext := make([]uint, len(c)+1)
			copy(ext, c)
			ext[len(c)] = c[len(c)-1] | bit
			next = append(next, ext)
			if len(c) > 1 {
				lift := make([]uint, len(c)-1)
				for i, m := range c[:len(c)-1] {
					lift[i] = m | bit
				}
				next = append(next, lift)
			}
		}
		chains = next
	}

	// Each chain becomes one attribute order: the smallest subset's
	// attributes first (in g order), then the element added at each chain
	// step, then whatever the largest subset is missing. Prefix lengths
	// |S₁| … |Sₘ| of the order then realize exactly the chain's subsets.
	orders := make([][]string, 0, len(chains))
	full := uint(1)<<uint(n) - 1
	for _, c := range chains {
		order := make([]string, 0, n)
		appendMask := func(mask uint) {
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					order = append(order, g[i])
				}
			}
		}
		appendMask(c[0])
		for i := 1; i < len(c); i++ {
			appendMask(c[i] &^ c[i-1])
		}
		appendMask(full &^ c[len(c)-1])
		orders = append(orders, order)
	}

	sort.Slice(orders, func(x, y int) bool {
		a, b := orders[x], orders[y]
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	})
	return orders
}

// sharedPrefix is the length of the longest common prefix of a and b.
func sharedPrefix(a, b []string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
