package mining

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/value"
)

// patternsJSON serializes a pattern set through the store's canonical
// encoder — the byte-equality oracle the pattern store persists.
func patternsJSON(t testing.TB, ps []*pattern.Mined) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pattern.WriteJSON(&buf, ps); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireSameAsRemine pins the maintainer's set byte-identical to a cold
// ARPMine run over the maintainer's current table contents.
func requireSameAsRemine(t *testing.T, label string, m *Maintainer, opt Options) {
	t.Helper()
	cold, err := ARPMine(m.Table(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Candidates(); got != cold.Candidates {
		t.Errorf("%s: maintainer candidates = %d, re-mine = %d", label, got, cold.Candidates)
	}
	gotJSON := patternsJSON(t, m.Patterns())
	wantJSON := patternsJSON(t, cold.Patterns)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("%s: maintained set diverges from re-mine\nmaintained: %s\nre-mined: %s",
			label, gotJSON, wantJSON)
	}
}

// TestMaintainerMatchesInitialMine: a fresh maintainer's set equals a
// cold mine of the same table, byte for byte.
func TestMaintainerMatchesInitialMine(t *testing.T) {
	tab := testTable(t, 300)
	opt := lenientOpts()
	m, err := NewMaintainer(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameAsRemine(t, "initial", m, opt)
	if got := len(m.Patterns()); got == 0 {
		t.Fatal("test fixture mined no patterns; the identity check is vacuous")
	}
	rows, epoch := m.Synced()
	if rows != tab.NumRows() || epoch != tab.Epoch() {
		t.Errorf("synced (%d, %d), want (%d, %d)", rows, epoch, tab.NumRows(), tab.Epoch())
	}
}

// TestMaintainerRejectsFDs: FD pruning depends on prefix-of-the-data
// facts and is not maintainable.
func TestMaintainerRejectsFDs(t *testing.T) {
	opt := lenientOpts()
	opt.UseFDs = true
	if _, err := NewMaintainer(testTable(t, 50), opt); err == nil {
		t.Fatal("UseFDs must be rejected")
	}
}

// TestMaintainerAppendStream drives a deterministic append stream over
// the planted-trend fixture: every batch lands new rows in existing
// fragments, creates new groups, and crosses the δ threshold upward as
// small groups accumulate rows. After each batch the maintained set is
// pinned byte-identical to a cold re-mine.
func TestMaintainerAppendStream(t *testing.T) {
	tab := testTable(t, 200)
	opt := lenientOpts()
	m, err := NewMaintainer(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	authors := []string{"a1", "a2", "a3", "a4", "a5", "a6"} // a6 is new
	venues := []string{"KDD", "ICDE", "VLDB", "WWW"}        // WWW is new
	for batch := 0; batch < 5; batch++ {
		nRows := 1 + rng.Intn(20)
		rows := make([]value.Tuple, nRows)
		for i := range rows {
			rows[i] = value.Tuple{
				value.NewString(authors[rng.Intn(len(authors))]),
				value.NewString(venues[rng.Intn(len(venues))]),
				value.NewInt(int64(2000 + rng.Intn(8))),
				value.NewInt(int64(rng.Intn(30))),
			}
		}
		if err := m.Apply(rows); err != nil {
			t.Fatal(err)
		}
		requireSameAsRemine(t, "batch "+string(rune('0'+batch)), m, opt)
	}
}

// TestMaintainerRandomizedStreams is the differential property suite:
// randomized tables and append streams — including brand-new dictionary
// values, NULL aggregate payloads (the untyped score column), fragments
// crossing δ in both directions effectively (new fragments born below
// support, old ones growing past it), and single-row batches — pin
// maintainer output == full re-mine at every step.
func TestMaintainerRandomizedStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("differential stream suite is slow")
	}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		tab := engine.NewTable(engine.Schema{
			{Name: "author", Kind: value.String},
			{Name: "venue", Kind: value.String},
			{Name: "year", Kind: value.Int},
			{Name: "score", Kind: value.Null}, // untyped: Int, Float, NULL mix
		})
		genRow := func() value.Tuple {
			var score value.V
			switch rng.Intn(4) {
			case 0:
				score = value.NewNull()
			case 1:
				score = value.NewFloat(math.Floor(rng.Float64()*1000)/8 + 0.5)
			default:
				score = value.NewInt(int64(rng.Intn(40)))
			}
			return value.Tuple{
				value.NewString(string(rune('A' + rng.Intn(6+int(seed))))),
				value.NewString([]string{"KDD", "ICDE", "VLDB", "SIGMOD"}[rng.Intn(2+rng.Intn(3))]),
				value.NewInt(int64(2000 + rng.Intn(5))),
				score,
			}
		}
		for i := 0; i < 80+rng.Intn(120); i++ {
			tab.MustAppend(genRow())
		}
		opt := lenientOpts()
		m, err := NewMaintainer(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameAsRemine(t, "seed init", m, opt)
		for batch := 0; batch < 4; batch++ {
			rows := make([]value.Tuple, 1+rng.Intn(30))
			for i := range rows {
				rows[i] = genRow()
			}
			if err := m.Apply(rows); err != nil {
				t.Fatal(err)
			}
			requireSameAsRemine(t, "seed stream", m, opt)
		}
	}
}

// TestMaintainerCatchUpExternalAppend: rows appended directly to the
// table (not through Apply) are folded by CatchUp — the server's path,
// where one append serves several maintained sets.
func TestMaintainerCatchUpExternalAppend(t *testing.T) {
	tab := testTable(t, 150)
	opt := lenientOpts()
	m, err := NewMaintainer(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	tab.MustAppend(value.Tuple{
		value.NewString("a2"), value.NewString("KDD"),
		value.NewInt(2003), value.NewInt(12),
	})
	if err := m.CatchUp(); err != nil {
		t.Fatal(err)
	}
	requireSameAsRemine(t, "external append", m, opt)

	// CatchUp with nothing new is a no-op that still refreshes the epoch.
	if err := m.CatchUp(); err != nil {
		t.Fatal(err)
	}
	rows, epoch := m.Synced()
	if rows != tab.NumRows() || epoch != tab.Epoch() {
		t.Errorf("synced (%d, %d) after no-op CatchUp, want (%d, %d)",
			rows, epoch, tab.NumRows(), tab.Epoch())
	}
}

// TestMaintainerDeterminism: two maintainers fed the same stream yield
// identical bytes.
func TestMaintainerDeterminism(t *testing.T) {
	opt := lenientOpts()
	build := func() []byte {
		tab := testTable(t, 200)
		m, err := NewMaintainer(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		batch := []value.Tuple{
			{value.NewString("a9"), value.NewString("KDD"), value.NewInt(2001), value.NewInt(5)},
			{value.NewString("a1"), value.NewString("VLDB"), value.NewInt(2002), value.NewInt(7)},
		}
		if err := m.Apply(batch); err != nil {
			t.Fatal(err)
		}
		return patternsJSON(t, m.Patterns())
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatal("maintainer output is not deterministic")
	}
}

// TestMaintainerShrunkTable: a table that lost rows since the last sync
// is unrecoverable and must be reported.
func TestMaintainerShrunkTable(t *testing.T) {
	tab := testTable(t, 50)
	m, err := NewMaintainer(tab, lenientOpts())
	if err != nil {
		t.Fatal(err)
	}
	small := testTable(t, 10)
	m.tab = small // simulate external truncation
	if err := m.CatchUp(); err == nil {
		t.Fatal("CatchUp on a shrunk table must error")
	}
}
