// Package mining implements the ARP-mining problem (Section 4 of the CAPE
// paper): given a relation and the four thresholds, find every aggregate
// regression pattern that holds globally. Four miner variants are
// provided, matching the paper's experimental comparison:
//
//   - Naive: brute force — one retrieval query per pattern per fragment
//     (Algorithms 3 and 4).
//   - ShareGrp: one group-by query per attribute set F ∪ V, evaluating all
//     aggregates at once; one sort per (F, V) split.
//   - CubeMine: a single CUBE query materializes every grouping; per-
//     pattern work is slicing + sorting the materialized result.
//   - ARPMine: ShareGrp plus sort-order reuse across (F, V) splits and
//     optional functional-dependency pruning (Algorithm 2, Appendix D).
package mining

import (
	"fmt"
	"sort"

	"cape/internal/engine"
	"cape/internal/fd"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/value"
)

// Options configures a mining run.
type Options struct {
	// MaxPatternSize is ψ: the maximum |F ∪ V| considered. Minimum 2.
	MaxPatternSize int
	// Thresholds are the four ARP thresholds (θ, δ, λ, Δ).
	Thresholds pattern.Thresholds
	// Attributes restricts mining to these columns; nil means every
	// column of the input relation.
	Attributes []string
	// AggFuncs lists the aggregate functions to consider. count is
	// evaluated as count(*); the others are evaluated over every numeric
	// attribute outside F ∪ V. Default: {count, sum}.
	AggFuncs []engine.AggFunc
	// Models lists the regression families to consider.
	// Default: {Const, Lin}.
	Models []regress.ModelType
	// UseFDs enables the Appendix-D functional-dependency optimizations
	// (only honored by ARPMine).
	UseFDs bool
	// InitialFDs seeds the FD set (e.g. from known keys); may be nil.
	InitialFDs *fd.Set
	// Parallelism is the width of the bounded worker pool one run shares
	// across every parallel stage: all four miners (and the Maintainer)
	// fan per-attribute-set work across it, and the same pool is attached
	// to the relation so the engine's compressed kernels fan morsels and
	// parts across it too — nested fan-out never oversubscribes the
	// width. 0 or 1 runs sequentially. Parallel runs produce identical
	// pattern sets (the engine's merge-order contract keeps even float
	// summation order fixed); Result.Timers then aggregate CPU time
	// across workers instead of wall-clock time.
	Parallelism int
}

// withDefaults fills zero-valued options.
func (o Options) withDefaults(r engine.Relation) (Options, error) {
	if o.MaxPatternSize == 0 {
		o.MaxPatternSize = 4
	}
	if o.MaxPatternSize < 2 {
		return o, fmt.Errorf("mining: ψ = %d must be ≥ 2", o.MaxPatternSize)
	}
	if o.Thresholds == (pattern.Thresholds{}) {
		o.Thresholds = pattern.DefaultThresholds()
	}
	if err := o.Thresholds.Validate(); err != nil {
		return o, err
	}
	if len(o.Attributes) == 0 {
		o.Attributes = r.Schema().Names()
	} else if _, err := r.Schema().Indices(o.Attributes); err != nil {
		return o, err
	}
	if len(o.AggFuncs) == 0 {
		o.AggFuncs = []engine.AggFunc{engine.Count, engine.Sum}
	}
	if len(o.Models) == 0 {
		o.Models = []regress.ModelType{regress.Const, regress.Lin}
	}
	return o, nil
}

// Result is the outcome of a mining run.
type Result struct {
	// Patterns holds every pattern found to hold globally, with local
	// models attached.
	Patterns []*pattern.Mined
	// Timers break the run into query / regression / other, for the
	// Figure-4 subtask analysis.
	Timers pattern.Timers
	// Candidates is the number of (F, V, agg, A, M) candidates examined.
	Candidates int
	// SkippedByFD counts candidate (F, V) pairs pruned by the FD
	// optimizations.
	SkippedByFD int
	// FDs is the final FD set (detected + initial); nil unless FDs were
	// used.
	FDs *fd.Set
}

// sortPatterns orders the result deterministically by pattern key.
func (res *Result) sortPatterns() {
	sort.Slice(res.Patterns, func(i, j int) bool {
		return res.Patterns[i].Pattern.Key() < res.Patterns[j].Pattern.Key()
	})
}

// aggSpecsFor returns the aggregate expressions evaluable for a grouping
// on g: count(*) when count is requested, and f(A) for every other
// requested function f and every attribute A of the relation that is
// outside g (per Definition 2, A ∉ F ∪ V). Only numeric or untyped
// columns are used as arguments, since regression needs numeric
// observations.
func aggSpecsFor(r engine.Relation, funcs []engine.AggFunc, g []string) []engine.AggSpec {
	inG := make(map[string]bool, len(g))
	for _, a := range g {
		inG[a] = true
	}
	var out []engine.AggSpec
	for _, f := range funcs {
		if f == engine.Count {
			out = append(out, engine.AggSpec{Func: engine.Count})
			continue
		}
		for _, col := range r.Schema() {
			if inG[col.Name] {
				continue
			}
			// Regression needs numeric observations; untyped columns are
			// allowed and simply fail per-fragment if non-numeric.
			if col.Kind == value.Int || col.Kind == value.Float || col.Kind == value.Null {
				out = append(out, engine.AggSpec{Func: f, Arg: col.Name})
			}
		}
	}
	return out
}

// eachCombination calls fn with every k-element subset of attrs in
// lexicographic index order, preserving input order within each subset.
// The slice passed to fn is reused between calls; fn must copy it if it
// retains it. Generation is lazy — nothing is materialized, so miners
// that only stream subsets pay no allocation for the enumeration.
func eachCombination(attrs []string, k int, fn func([]string) error) error {
	if k <= 0 || k > len(attrs) {
		return nil
	}
	idx := make([]int, k)
	sub := make([]string, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		for i, j := range idx {
			sub[i] = attrs[j]
		}
		if err := fn(sub); err != nil {
			return err
		}
		// advance
		i := k - 1
		for i >= 0 && idx[i] == len(attrs)-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// combinations materializes all k-element subsets of attrs, for callers
// (the parallel miners) that need an indexable work list.
func combinations(attrs []string, k int) [][]string {
	var out [][]string
	eachCombination(attrs, k, func(sub []string) error {
		out = append(out, append([]string(nil), sub...))
		return nil
	})
	return out
}

// splits returns every (F, V) partition of g into two non-empty sets,
// where F takes each non-empty proper subset of g.
func splits(g []string) [][2][]string {
	n := len(g)
	var out [][2][]string
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		var f, v []string
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				f = append(f, g[i])
			} else {
				v = append(v, g[i])
			}
		}
		out = append(out, [2][]string{f, v})
	}
	return out
}

// pairKey canonically identifies an (F, V) pair.
func pairKey(f, v []string) string { return fd.Key(f) + "||" + fd.Key(v) }
