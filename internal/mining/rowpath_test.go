package mining

import (
	"testing"

	"cape/internal/pattern"
)

// requireResultsIdentical deep-compares two mining results: counters,
// pattern order, and every local model field with exact float equality.
func requireResultsIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Candidates != got.Candidates || want.SkippedByFD != got.SkippedByFD {
		t.Fatalf("%s: counters %d/%d vs %d/%d",
			label, want.Candidates, want.SkippedByFD, got.Candidates, got.SkippedByFD)
	}
	if len(want.Patterns) != len(got.Patterns) {
		t.Fatalf("%s: %d vs %d patterns", label, len(want.Patterns), len(got.Patterns))
	}
	for i := range want.Patterns {
		w, g := want.Patterns[i], got.Patterns[i]
		if w.Pattern.Key() != g.Pattern.Key() {
			t.Fatalf("%s: pattern %d key %q vs %q", label, i, w.Pattern.Key(), g.Pattern.Key())
		}
		if w.NumFragments != g.NumFragments || w.NumSupported != g.NumSupported ||
			w.Confidence != g.Confidence ||
			w.MaxPosDev != g.MaxPosDev || w.MaxNegDev != g.MaxNegDev {
			t.Fatalf("%s: pattern %q global stats differ", label, w.Pattern.Key())
		}
		if len(w.Locals) != len(g.Locals) {
			t.Fatalf("%s: pattern %q has %d vs %d locals",
				label, w.Pattern.Key(), len(w.Locals), len(g.Locals))
		}
		for key, wl := range w.Locals {
			gl, ok := g.Locals[key]
			if !ok {
				t.Fatalf("%s: pattern %q missing fragment %q", label, w.Pattern.Key(), key)
			}
			requireLocalsIdentical(t, label, w.Pattern.Key(), key, wl, gl)
		}
	}
}

func requireLocalsIdentical(t *testing.T, label, pat, frag string, w, g *pattern.LocalModel) {
	t.Helper()
	if !w.Frag.Equal(g.Frag) || w.Support != g.Support ||
		w.MaxPosDev != g.MaxPosDev || w.MaxNegDev != g.MaxNegDev ||
		w.Model.GoF() != g.Model.GoF() {
		t.Fatalf("%s: pattern %q fragment %q local model differs", label, pat, frag)
	}
	wp, gp := w.Model.Params(), g.Model.Params()
	if len(wp) != len(gp) {
		t.Fatalf("%s: pattern %q fragment %q param arity differs", label, pat, frag)
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("%s: pattern %q fragment %q param %d: %v vs %v",
				label, pat, frag, i, wp[i], gp[i])
		}
	}
}

// TestMiningRowPathEquivalence pins the whole columnar mining pipeline
// (group-by kernels, sort codes, shared fitter inputs) bit-for-bit to
// the row-oriented reference: mining a ForceRowPath clone must produce
// identical patterns, local model parameters, and Stats counters.
func TestMiningRowPathEquivalence(t *testing.T) {
	tab := testTable(t, 500)
	rowTab := tab.Clone().ForceRowPath(true)
	for _, useFDs := range []bool{false, true} {
		opt := lenientOpts()
		opt.UseFDs = useFDs
		want, err := ARPMine(rowTab, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireResultsIdentical(t, "ARPMine", want, got)
	}

	opt := lenientOpts()
	want, err := ShareGrp(rowTab, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ShareGrp(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireResultsIdentical(t, "ShareGrp", want, got)
}

// TestMiningStatsDeterministicSequential: at Parallelism 1 the columnar
// kernels must make every repeated run identical — Candidates and
// SkippedByFD exactly, plus every pattern and local model — so the
// counters reported by the benchmarks and the server are reproducible.
func TestMiningStatsDeterministicSequential(t *testing.T) {
	tab := testTable(t, 500)
	opt := lenientOpts()
	opt.Parallelism = 1
	first, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireResultsIdentical(t, "repeat run", first, again)
	}
}
