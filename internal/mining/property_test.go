package mining

import (
	"testing"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/value"
)

// TestThetaMonotonicity: raising the local model quality threshold can
// only shrink the set of patterns that hold globally (every fragment that
// passes a higher θ also passes a lower one, and confidence/support can
// only drop).
func TestThetaMonotonicity(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()
	var prev map[string]bool
	for _, theta := range []float64{0.05, 0.2, 0.5, 0.8} {
		opt.Thresholds.Theta = theta
		res, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		cur := patternKeys(res)
		if prev != nil {
			for k := range cur {
				if !prev[k] {
					t.Errorf("θ=%g found pattern absent at lower θ: %s", theta, k)
				}
			}
		}
		prev = cur
	}
}

// TestGlobalSupportMonotonicity: raising Δ can only shrink the pattern
// set.
func TestGlobalSupportMonotonicity(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()
	var prev map[string]bool
	for _, gs := range []int{1, 2, 4, 8} {
		opt.Thresholds.GlobalSupport = gs
		res, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		cur := patternKeys(res)
		if prev != nil {
			for k := range cur {
				if !prev[k] {
					t.Errorf("Δ=%d found pattern absent at lower Δ: %s", gs, k)
				}
			}
		}
		prev = cur
	}
}

// TestLambdaMonotonicity: raising λ can only shrink the pattern set.
func TestLambdaMonotonicity(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()
	var prev map[string]bool
	for _, lambda := range []float64{0.05, 0.3, 0.6, 0.9} {
		opt.Thresholds.Lambda = lambda
		res, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		cur := patternKeys(res)
		if prev != nil {
			for k := range cur {
				if !prev[k] {
					t.Errorf("λ=%g found pattern absent at lower λ: %s", lambda, k)
				}
			}
		}
		prev = cur
	}
}

// TestLocalSupportShrinksSupportedFragments: raising δ cannot increase
// any pattern's number of supported fragments.
func TestLocalSupportShrinksSupportedFragments(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()
	opt.Thresholds.LocalSupport = 2
	loose, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	looseByKey := map[string]*pattern.Mined{}
	for _, m := range loose.Patterns {
		looseByKey[m.Pattern.Key()] = m
	}
	opt.Thresholds.LocalSupport = 4
	tight, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tight.Patterns {
		lm, ok := looseByKey[m.Pattern.Key()]
		if !ok {
			continue // pattern may gain confidence when weak fragments drop out
		}
		if m.NumSupported > lm.NumSupported {
			t.Errorf("%s: δ=4 supported %d fragments, δ=2 only %d",
				m.Pattern, m.NumSupported, lm.NumSupported)
		}
	}
}

// TestAugmentationRule verifies the Appendix-D inference rule on data:
// with the FD venue → area holding, whenever [F]: V holds globally with
// venue ∈ F, the augmented pattern [F ∪ {area}]: V must also hold
// globally (same thresholds), because the fragments are identical sets of
// rows.
func TestAugmentationRule(t *testing.T) {
	base := testTable(t, 400)
	area := map[string]string{"KDD": "DM", "ICDE": "DB", "VLDB": "DB"}
	tab := engine.NewTable(append(base.Schema().Clone(), engine.Column{Name: "area", Kind: value.String}))
	for _, r := range base.Rows() {
		tab.MustAppend(append(r.Clone(), value.NewString(area[r[1].Str()])))
	}

	opt := lenientOpts()
	opt.MaxPatternSize = 3
	res, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*pattern.Mined{}
	for _, m := range res.Patterns {
		byKey[m.Pattern.Key()] = m
	}
	checked := 0
	for _, m := range res.Patterns {
		hasVenue, hasArea := false, false
		for _, a := range m.Pattern.F {
			if a == "venue" {
				hasVenue = true
			}
			if a == "area" {
				hasArea = true
			}
		}
		usesArea := hasArea
		for _, a := range m.Pattern.V {
			if a == "area" {
				usesArea = true
			}
		}
		if !hasVenue || usesArea {
			continue
		}
		if len(m.Pattern.GroupAttrs())+1 > opt.MaxPatternSize {
			continue // augmented pattern exceeds ψ, not mined
		}
		aug := m.Pattern
		aug.F = append(append([]string(nil), aug.F...), "area")
		augKey := aug.Key()
		if _, ok := byKey[augKey]; !ok {
			t.Errorf("augmentation rule violated: %s holds but %s does not", m.Pattern, augKey)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no venue-partitioned patterns small enough to check")
	}
}

// TestMiningDeterminism: identical inputs yield identical pattern sets
// and statistics across runs.
func TestMiningDeterminism(t *testing.T) {
	tab := testTable(t, 300)
	opt := lenientOpts()
	a, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) || a.Candidates != b.Candidates {
		t.Fatalf("non-deterministic mining: %d/%d vs %d/%d patterns/candidates",
			len(a.Patterns), a.Candidates, len(b.Patterns), b.Candidates)
	}
	for i := range a.Patterns {
		if a.Patterns[i].Pattern.Key() != b.Patterns[i].Pattern.Key() {
			t.Errorf("pattern order differs at %d", i)
		}
	}
}
