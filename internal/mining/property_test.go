package mining

import (
	"math"
	"math/rand"
	"testing"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/value"
)

// TestThetaMonotonicity: raising the local model quality threshold can
// only shrink the set of patterns that hold globally (every fragment that
// passes a higher θ also passes a lower one, and confidence/support can
// only drop).
func TestThetaMonotonicity(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()
	var prev map[string]bool
	for _, theta := range []float64{0.05, 0.2, 0.5, 0.8} {
		opt.Thresholds.Theta = theta
		res, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		cur := patternKeys(res)
		if prev != nil {
			for k := range cur {
				if !prev[k] {
					t.Errorf("θ=%g found pattern absent at lower θ: %s", theta, k)
				}
			}
		}
		prev = cur
	}
}

// TestGlobalSupportMonotonicity: raising Δ can only shrink the pattern
// set.
func TestGlobalSupportMonotonicity(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()
	var prev map[string]bool
	for _, gs := range []int{1, 2, 4, 8} {
		opt.Thresholds.GlobalSupport = gs
		res, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		cur := patternKeys(res)
		if prev != nil {
			for k := range cur {
				if !prev[k] {
					t.Errorf("Δ=%d found pattern absent at lower Δ: %s", gs, k)
				}
			}
		}
		prev = cur
	}
}

// TestLambdaMonotonicity: raising λ can only shrink the pattern set.
func TestLambdaMonotonicity(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()
	var prev map[string]bool
	for _, lambda := range []float64{0.05, 0.3, 0.6, 0.9} {
		opt.Thresholds.Lambda = lambda
		res, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		cur := patternKeys(res)
		if prev != nil {
			for k := range cur {
				if !prev[k] {
					t.Errorf("λ=%g found pattern absent at lower λ: %s", lambda, k)
				}
			}
		}
		prev = cur
	}
}

// TestLocalSupportShrinksSupportedFragments: raising δ cannot increase
// any pattern's number of supported fragments.
func TestLocalSupportShrinksSupportedFragments(t *testing.T) {
	tab := testTable(t, 400)
	opt := lenientOpts()
	opt.Thresholds.LocalSupport = 2
	loose, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	looseByKey := map[string]*pattern.Mined{}
	for _, m := range loose.Patterns {
		looseByKey[m.Pattern.Key()] = m
	}
	opt.Thresholds.LocalSupport = 4
	tight, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tight.Patterns {
		lm, ok := looseByKey[m.Pattern.Key()]
		if !ok {
			continue // pattern may gain confidence when weak fragments drop out
		}
		if m.NumSupported > lm.NumSupported {
			t.Errorf("%s: δ=4 supported %d fragments, δ=2 only %d",
				m.Pattern, m.NumSupported, lm.NumSupported)
		}
	}
}

// TestAugmentationRule verifies the Appendix-D inference rule on data:
// with the FD venue → area holding, whenever [F]: V holds globally with
// venue ∈ F, the augmented pattern [F ∪ {area}]: V must also hold
// globally (same thresholds), because the fragments are identical sets of
// rows.
func TestAugmentationRule(t *testing.T) {
	base := testTable(t, 400)
	area := map[string]string{"KDD": "DM", "ICDE": "DB", "VLDB": "DB"}
	tab := engine.NewTable(append(base.Schema().Clone(), engine.Column{Name: "area", Kind: value.String}))
	for _, r := range base.Rows() {
		tab.MustAppend(append(r.Clone(), value.NewString(area[r[1].Str()])))
	}

	opt := lenientOpts()
	opt.MaxPatternSize = 3
	res, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*pattern.Mined{}
	for _, m := range res.Patterns {
		byKey[m.Pattern.Key()] = m
	}
	checked := 0
	for _, m := range res.Patterns {
		hasVenue, hasArea := false, false
		for _, a := range m.Pattern.F {
			if a == "venue" {
				hasVenue = true
			}
			if a == "area" {
				hasArea = true
			}
		}
		usesArea := hasArea
		for _, a := range m.Pattern.V {
			if a == "area" {
				usesArea = true
			}
		}
		if !hasVenue || usesArea {
			continue
		}
		if len(m.Pattern.GroupAttrs())+1 > opt.MaxPatternSize {
			continue // augmented pattern exceeds ψ, not mined
		}
		aug := m.Pattern
		aug.F = append(append([]string(nil), aug.F...), "area")
		augKey := aug.Key()
		if _, ok := byKey[augKey]; !ok {
			t.Errorf("augmentation rule violated: %s holds but %s does not", m.Pattern, augKey)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no venue-partitioned patterns small enough to check")
	}
}

// randomMiningTable builds a table with randomized cardinalities and a
// mix of planted and noise structure, so the fast-path equivalence check
// exercises shapes the fixed test fixture does not: skewed fragment
// sizes, stringly and numeric attributes, and null-prone payloads.
func randomMiningTable(rng *rand.Rand, rows int) *engine.Table {
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "venue", Kind: value.String},
		{Name: "year", Kind: value.Int},
		{Name: "cites", Kind: value.Int},
	})
	nAuthors := rng.Intn(12) + 3
	nVenues := rng.Intn(4) + 2
	nYears := rng.Intn(8) + 2
	for i := 0; i < rows; i++ {
		author := value.NewString(string(rune('A' + rng.Intn(nAuthors))))
		venue := value.NewString([]string{"KDD", "ICDE", "VLDB", "SIGMOD", "PODS", "CIKM"}[rng.Intn(nVenues)])
		year := value.NewInt(int64(2000 + rng.Intn(nYears)))
		cites := value.NewInt(int64(rng.Intn(50)))
		tab.MustAppend(value.Tuple{author, venue, year, cites})
	}
	return tab
}

// TestRandomizedMinerEquivalence: across randomized tables, the
// fast-path ARPMine, ShareGrp, and the brute-force Naive miner must
// agree on everything observable — pattern key sets, candidate counts,
// per-pattern fragment statistics, local model fragments and supports,
// and model parameters/GoF within 1e-9 (the miners feed observations to
// the regression kernels in different row orders, so bit equality is not
// guaranteed, but 1e-9 is orders of magnitude below any threshold).
func TestRandomizedMinerEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomMiningTable(rng, 150+rng.Intn(250))
		opt := lenientOpts()

		naive, err := Naive(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		share, err := ShareGrp(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		arp, err := ARPMine(tab, opt)
		if err != nil {
			t.Fatal(err)
		}

		for name, res := range map[string]*Result{"ShareGrp": share, "ARPMine": arp} {
			if res.Candidates != naive.Candidates {
				t.Errorf("seed %d: %s evaluated %d candidates, Naive %d",
					seed, name, res.Candidates, naive.Candidates)
			}
			if len(res.Patterns) != len(naive.Patterns) {
				t.Errorf("seed %d: %s found %d patterns, Naive %d",
					seed, name, len(res.Patterns), len(naive.Patterns))
				continue
			}
			byKey := map[string]*pattern.Mined{}
			for _, m := range res.Patterns {
				byKey[m.Pattern.Key()] = m
			}
			for _, nm := range naive.Patterns {
				m, ok := byKey[nm.Pattern.Key()]
				if !ok {
					t.Errorf("seed %d: %s missing pattern %s", seed, name, nm.Pattern)
					continue
				}
				if m.NumSupported != nm.NumSupported || m.Confidence != nm.Confidence {
					t.Errorf("seed %d: %s %s: supported/confidence (%d, %g) vs Naive (%d, %g)",
						seed, name, m.Pattern, m.NumSupported, m.Confidence, nm.NumSupported, nm.Confidence)
				}
				if len(m.Locals) != len(nm.Locals) {
					t.Errorf("seed %d: %s %s: %d local models, Naive %d",
						seed, name, m.Pattern, len(m.Locals), len(nm.Locals))
					continue
				}
				for k, nlm := range nm.Locals {
					lm, ok := m.Locals[k]
					if !ok {
						t.Errorf("seed %d: %s %s: missing fragment %v", seed, name, m.Pattern, nlm.Frag)
						continue
					}
					if lm.Support != nlm.Support {
						t.Errorf("seed %d: %s %s %v: support %d vs %d",
							seed, name, m.Pattern, nlm.Frag, lm.Support, nlm.Support)
					}
					gp, np := lm.Model.Params(), nlm.Model.Params()
					if len(gp) != len(np) {
						t.Errorf("seed %d: %s %s %v: %d params vs %d",
							seed, name, m.Pattern, nlm.Frag, len(gp), len(np))
						continue
					}
					for i := range gp {
						if math.Abs(gp[i]-np[i]) > 1e-9 {
							t.Errorf("seed %d: %s %s %v: param[%d] %g vs %g",
								seed, name, m.Pattern, nlm.Frag, i, gp[i], np[i])
						}
					}
					if math.Abs(lm.Model.GoF()-nlm.Model.GoF()) > 1e-9 {
						t.Errorf("seed %d: %s %s %v: gof %g vs %g",
							seed, name, m.Pattern, nlm.Frag, lm.Model.GoF(), nlm.Model.GoF())
					}
					if math.Abs(lm.MaxPosDev-nlm.MaxPosDev) > 1e-9 ||
						math.Abs(lm.MaxNegDev-nlm.MaxNegDev) > 1e-9 {
						t.Errorf("seed %d: %s %s %v: deviations (%g, %g) vs (%g, %g)",
							seed, name, m.Pattern, nlm.Frag,
							lm.MaxPosDev, lm.MaxNegDev, nlm.MaxPosDev, nlm.MaxNegDev)
					}
				}
			}
		}
	}
}

// TestMiningDeterminism: identical inputs yield identical pattern sets
// and statistics across runs.
func TestMiningDeterminism(t *testing.T) {
	tab := testTable(t, 300)
	opt := lenientOpts()
	a, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) || a.Candidates != b.Candidates {
		t.Fatalf("non-deterministic mining: %d/%d vs %d/%d patterns/candidates",
			len(a.Patterns), a.Candidates, len(b.Patterns), b.Candidates)
	}
	for i := range a.Patterns {
		if a.Patterns[i].Pattern.Key() != b.Patterns[i].Pattern.Key() {
			t.Errorf("pattern order differs at %d", i)
		}
	}
}
