package mining

import (
	"testing"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/regress"
)

// benchDBLP is the DBLP-style workload BENCH_mine.json measures: a
// synthetic publication table mined over (author, year, venue) at ψ=3.
func benchDBLP(rows int) (*engine.Table, Options) {
	tab := dataset.GenerateDBLP(dataset.DBLPConfig{Rows: rows, Seed: 1})
	opt := Options{
		MaxPatternSize: 3,
		Attributes:     []string{"author", "year", "venue"},
		Thresholds:     pattern.Thresholds{Theta: 0.5, LocalSupport: 5, Lambda: 0.5, GlobalSupport: 5},
		AggFuncs:       []engine.AggFunc{engine.Count, engine.Sum},
		Models:         []regress.ModelType{regress.Const, regress.Lin},
	}
	return tab, opt
}

// BenchmarkARPMine is the offline-mining hot path end to end: group-by
// evaluation, sort-order exploration, and shared fitting on a DBLP-style
// table at ψ=3 (the BENCH_mine.json configuration).
func BenchmarkARPMine(b *testing.B) {
	tab, opt := benchDBLP(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ARPMine(tab, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Patterns) == 0 {
			b.Fatal("benchmark workload mined no patterns")
		}
	}
}

// BenchmarkFitShared isolates the shared fragment-scan fitter: one
// grouped-and-sorted input, every (agg, model) candidate of one (F, V)
// split evaluated per iteration.
func BenchmarkFitShared(b *testing.B) {
	tab, opt := benchDBLP(5000)
	g := []string{"author", "year", "venue"}
	aggs := aggSpecsFor(tab, opt.AggFuncs, g)
	grouped, err := tab.GroupBy(g, aggs)
	if err != nil {
		b.Fatal(err)
	}
	f, v := []string{"author", "venue"}, []string{"year"}
	sorted, err := grouped.Sorted(append(append([]string{}, f...), v...))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pattern.FitShared(f, v, aggs, opt.Models, sorted, opt.Thresholds, nil); err != nil {
			b.Fatal(err)
		}
	}
}
