//go:build !race

package mining

// raceEnabled reports whether the race detector is compiled in; timing
// ratio tests skip under it since instrumentation skews both sides
// unevenly.
const raceEnabled = false
