package mining

import (
	"sync"
)

// forEachParallel runs fn(i) for i in [0, n) on up to `workers`
// goroutines, returning the first error encountered (remaining items are
// still drained, so all goroutines exit cleanly). workers ≤ 1 runs
// sequentially.
func forEachParallel(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	work := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return firstErr
}
