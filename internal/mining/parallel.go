package mining

import (
	"sync"
	"sync/atomic"
)

// forEachParallel runs fn(i) for i in [0, n) on up to `workers`
// goroutines, returning the first error encountered. It fails fast: once
// an error is recorded, no further items are dispatched and already
// queued items are drained without running, so a large mining run does
// not grind through the remaining attribute sets after one has failed.
// workers ≤ 1 runs sequentially.
func forEachParallel(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	work := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if failed.Load() {
					continue // drain without running
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break // stop feeding the pool
		}
		work <- i
	}
	close(work)
	wg.Wait()
	return firstErr
}
