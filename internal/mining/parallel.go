package mining

import "cape/internal/engine"

// runPool creates the bounded worker pool one mining run shares across
// every parallel stage — the per-attribute-set fan-out in the miners
// here, and the per-morsel / per-part fan-out inside the engine's
// compressed kernels — and attaches it to the relation when it supports
// pools (engine.Table, engine.SegTable). engine.Pool's caller-runs,
// non-blocking token acquisition makes the two levels compose without
// oversubscription: a saturated nested ForEach simply runs inline on the
// miner worker that issued the query. detach restores the relation's
// sequential behaviour; callers must invoke it when the run finishes.
func runPool(r engine.Relation, workers int) (pool *engine.Pool, detach func()) {
	pool = engine.NewPool(workers)
	if ps, ok := r.(engine.PoolSettable); ok && workers > 1 {
		ps.SetPool(pool)
		return pool, func() { ps.SetPool(nil) }
	}
	return pool, func() {}
}
