package mining

import (
	"testing"
	"time"

	"cape/internal/engine"
)

// naiveOver runs NAIVE on r and returns the best wall time of three
// runs — min-of-N is the standard defense against scheduler noise on a
// loaded machine.
func naiveOver(t *testing.T, r engine.Relation, opt Options) (time.Duration, *Result) {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	var res *Result
	for i := 0; i < 3; i++ {
		start := time.Now()
		out, err := Naive(r, opt)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best, res = d, out
		}
	}
	return best, res
}

// TestNaiveSegDenseRatio is the regression fence for the compressed-path
// pathology this PR fixed: NAIVE over sealed segments used to re-unpack
// bit-packed blocks per row inside its many small group-bys, costing
// ~10x the dense path. With batch block decode the gap is near 1x; the
// bound here is deliberately generous (8x) so the test only fires on a
// real pathology, not on machine noise.
func TestNaiveSegDenseRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("timing ratio test; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing ratio test; race instrumentation skews the two paths unevenly")
	}
	tab, opt := benchDBLP(8000)
	st := segTableFrom(t, tab, 4, 200)
	defer st.Close()

	denseT, denseRes := naiveOver(t, tab, opt)
	segT, segRes := naiveOver(t, st, opt)

	if len(denseRes.Patterns) == 0 {
		t.Fatal("workload mined no patterns; the ratio is vacuous")
	}
	if len(denseRes.Patterns) != len(segRes.Patterns) {
		t.Fatalf("segment path mined %d patterns, dense %d", len(segRes.Patterns), len(denseRes.Patterns))
	}
	ratio := float64(segT) / float64(denseT)
	t.Logf("NAIVE dense %v, segments %v, ratio %.2fx", denseT, segT, ratio)
	if ratio > 8 {
		t.Errorf("NAIVE over segments is %.1fx dense (budget 8x): the compressed group-by path has regressed", ratio)
	}
}

// BenchmarkNaiveDense and BenchmarkNaiveSegments expose the same
// comparison as ordinary benchmarks for profiling work on the
// compressed kernels.
func BenchmarkNaiveDense(b *testing.B) {
	tab, opt := benchDBLP(8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Naive(tab, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveSegments(b *testing.B) {
	tab, opt := benchDBLP(8000)
	st := segTableFromB(b, tab, 4, 200)
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Naive(st, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// segTableFromB mirrors segTableFrom for benchmarks.
func segTableFromB(b *testing.B, tab *engine.Table, nSegs, tailRows int) *engine.SegTable {
	b.Helper()
	n := tab.NumRows() - tailRows
	st := engine.NewSegTable(tab.Schema())
	per := n / nSegs
	for s := 0; s < nSegs; s++ {
		lo, hi := s*per, (s+1)*per
		if s == nSegs-1 {
			hi = n
		}
		w := engine.NewSegmentWriter(tab.Schema())
		for i := lo; i < hi; i++ {
			if err := w.Append(tab.Row(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.AddSegment(w.Segment()); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.AppendRows(tab.Rows()[n:]); err != nil {
		b.Fatal(err)
	}
	return st
}
