package mining

import (
	"time"

	"cape/internal/engine"
	"cape/internal/pattern"
)

// ShareGrp shares one group-by query across every pattern with the same
// attribute set F ∪ V ("one query per F ∪ V" + "one query for all
// patterns sharing F and V" from Section 4.1): the aggregation over G is
// computed once with all aggregate expressions, then re-sorted once per
// (F, V) split. With Options.Parallelism > 1 the per-attribute-set work
// fans out across goroutines; results are identical to the sequential
// run.
func ShareGrp(r engine.Relation, opt Options) (*Result, error) {
	opt, err := opt.withDefaults(r)
	if err != nil {
		return nil, err
	}
	var gs [][]string
	for size := 2; size <= opt.MaxPatternSize && size <= len(opt.Attributes); size++ {
		gs = append(gs, combinations(opt.Attributes, size)...)
	}

	pool, detach := runPool(r, opt.Parallelism)
	defer detach()
	outs := make([]Result, len(gs))
	err = pool.ForEach("mine:sharegrp", len(gs), func(i int) error {
		g := gs[i]
		out := &outs[i]
		aggs := aggSpecsFor(r, opt.AggFuncs, g)
		t0 := time.Now()
		grouped, err := r.GroupBy(g, aggs)
		if err != nil {
			return err
		}
		codes, err := engine.BuildSortCodes(grouped, g)
		if err != nil {
			return err
		}
		perm := codes.NewPerm()
		out.Timers.Query += time.Since(t0)
		fitter, err := pattern.NewSharedFitter(grouped, aggs, opt.Models, opt.Thresholds)
		if err != nil {
			return err
		}
		for _, sp := range splits(g) {
			f, v := sp[0], sp[1]
			// One full index sort per split: ShareGrp deliberately skips
			// ARPMine's sort-order reuse, keeping its historical cost shape.
			t0 = time.Now()
			if err := codes.SortPerm(perm, append(append([]string{}, f...), v...), 0); err != nil {
				return err
			}
			out.Timers.Query += time.Since(t0)
			out.Candidates += len(aggs) * len(opt.Models)
			mined, err := fitter.Fit(f, v, perm, codes, &out.Timers)
			if err != nil {
				return err
			}
			out.Patterns = append(out.Patterns, mined...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for i := range outs {
		res.Patterns = append(res.Patterns, outs[i].Patterns...)
		res.Candidates += outs[i].Candidates
		res.Timers.Add(outs[i].Timers)
	}
	res.sortPatterns()
	return res, nil
}
