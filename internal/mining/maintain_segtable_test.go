package mining

import (
	"bytes"
	"math/rand"
	"testing"

	"cape/internal/engine"
	"cape/internal/value"
)

// segTableFrom rebuilds a table as a SegTable: the first rows split into
// nSegs sealed compressed segments, the last tailRows appended to the
// uncompressed tail — the layout a long-lived segment-backed dataset has
// after a few compactions plus fresh appends.
func segTableFrom(t *testing.T, tab *engine.Table, nSegs, tailRows int) *engine.SegTable {
	t.Helper()
	n := tab.NumRows() - tailRows
	st := engine.NewSegTable(tab.Schema())
	per := n / nSegs
	for s := 0; s < nSegs; s++ {
		lo, hi := s*per, (s+1)*per
		if s == nSegs-1 {
			hi = n
		}
		w := engine.NewSegmentWriter(tab.Schema())
		for i := lo; i < hi; i++ {
			if err := w.Append(tab.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.AddSegment(w.Segment()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendRows(tab.Rows()[n:]); err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != tab.NumRows() {
		t.Fatalf("segtable has %d rows, want %d", st.NumRows(), tab.NumRows())
	}
	return st
}

// TestMaintainerOverSegTable pins the segment-backed maintenance path:
// a Maintainer over a SegTable (compressed segments + uncompressed
// tail) must stay byte-identical both to a cold re-mine of the SegTable
// and to a dense-table Maintainer fed the same appends, across append
// batches and a mid-stream Compact that seals the tail.
func TestMaintainerOverSegTable(t *testing.T) {
	tab := testTable(t, 300)
	st := segTableFrom(t, tab, 2, 40)
	opt := lenientOpts()

	m, err := NewMaintainer(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewMaintainer(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameAsRemine(t, "initial", m, opt)
	if len(m.Patterns()) == 0 {
		t.Fatal("fixture mined no patterns; the identity checks are vacuous")
	}

	requireSameAsDense := func(label string) {
		t.Helper()
		got := patternsJSON(t, m.Patterns())
		want := patternsJSON(t, dense.Patterns())
		if !bytes.Equal(got, want) {
			t.Errorf("%s: segment-backed maintainer diverges from dense maintainer\nsegment: %s\ndense: %s",
				label, got, want)
		}
	}
	requireSameAsDense("initial")

	rng := rand.New(rand.NewSource(11))
	authors := []string{"a1", "a2", "a3", "a4", "a5", "a6"}
	venues := []string{"KDD", "ICDE", "VLDB", "WWW"}
	nextBatch := func() []value.Tuple {
		rows := make([]value.Tuple, 1+rng.Intn(20))
		for i := range rows {
			rows[i] = value.Tuple{
				value.NewString(authors[rng.Intn(len(authors))]),
				value.NewString(venues[rng.Intn(len(venues))]),
				value.NewInt(int64(2000 + rng.Intn(8))),
				value.NewInt(int64(rng.Intn(30))),
			}
		}
		return rows
	}
	apply := func(label string, rows []value.Tuple) {
		t.Helper()
		if err := m.Apply(rows); err != nil {
			t.Fatal(err)
		}
		if err := dense.Apply(rows); err != nil {
			t.Fatal(err)
		}
		requireSameAsRemine(t, label, m, opt)
		requireSameAsDense(label)
	}
	for batch := 0; batch < 3; batch++ {
		apply("batch "+string(rune('0'+batch)), nextBatch())
	}

	// Compact seals the tail into a new compressed segment. Row count
	// and contents are unchanged, so CatchUp must fold nothing and the
	// maintained set must not move; only the epoch advances.
	before := patternsJSON(t, m.Patterns())
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.TailRows() != 0 {
		t.Fatalf("tail holds %d rows after Compact", st.TailRows())
	}
	if err := m.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if got := patternsJSON(t, m.Patterns()); !bytes.Equal(got, before) {
		t.Errorf("Compact moved the maintained set\nafter: %s\nbefore: %s", got, before)
	}
	if _, epoch := m.Synced(); epoch != st.Epoch() {
		t.Errorf("maintainer epoch %d, segtable epoch %d after Compact", epoch, st.Epoch())
	}

	// Appends after the compact land in a fresh tail; the maintained set
	// must keep tracking both the re-mine and the dense maintainer.
	for batch := 3; batch < 5; batch++ {
		apply("post-compact batch "+string(rune('0'+batch)), nextBatch())
	}
}

// TestMaintainerParallelDeterminism: a Maintainer with Parallelism > 1
// must stay byte-identical to a sequential Maintainer over the same
// SegTable — through the initial catch-up, append batches, and a
// mid-stream Compact — because grouping sets fold independently and the
// chunked scan preserves row order within each set.
func TestMaintainerParallelDeterminism(t *testing.T) {
	// Shrink the catch-up chunk so the 300-row catch-up and the larger
	// batches cross several flush boundaries.
	origChunk := maintainChunkRows
	maintainChunkRows = 64
	defer func() { maintainChunkRows = origChunk }()

	tab := testTable(t, 300)
	opt := lenientOpts()
	popt := opt
	popt.Parallelism = 4

	seqSt := segTableFrom(t, tab, 2, 40)
	parSt := segTableFrom(t, tab, 2, 40)
	defer seqSt.Close()
	defer parSt.Close()

	seq, err := NewMaintainer(seqSt, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewMaintainer(parSt, popt)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		got := patternsJSON(t, par.Patterns())
		want := patternsJSON(t, seq.Patterns())
		if !bytes.Equal(got, want) {
			t.Errorf("%s: parallel maintainer diverges\nparallel: %s\nsequential: %s", label, got, want)
		}
	}
	check("initial")
	if len(seq.Patterns()) == 0 {
		t.Fatal("fixture mined no patterns; the identity checks are vacuous")
	}

	rng := rand.New(rand.NewSource(23))
	authors := []string{"a1", "a2", "a3", "a4", "a5", "a6"}
	venues := []string{"KDD", "ICDE", "VLDB", "WWW"}
	nextBatch := func() []value.Tuple {
		// With the shrunken chunk size, batches up to 600 rows cross
		// several flush boundaries while staying fast.
		rows := make([]value.Tuple, 1+rng.Intn(600))
		for i := range rows {
			rows[i] = value.Tuple{
				value.NewString(authors[rng.Intn(len(authors))]),
				value.NewString(venues[rng.Intn(len(venues))]),
				value.NewInt(int64(2000 + rng.Intn(8))),
				value.NewInt(int64(rng.Intn(30))),
			}
		}
		return rows
	}
	for batch := 0; batch < 3; batch++ {
		rows := nextBatch()
		if err := seq.Apply(rows); err != nil {
			t.Fatal(err)
		}
		if err := par.Apply(rows); err != nil {
			t.Fatal(err)
		}
		check("batch " + string(rune('0'+batch)))
		if batch == 1 {
			// Mid-stream Compact on the parallel side only: sealing the
			// tail must not move the maintained set, so the two sides still
			// agree even though their storage layouts now differ.
			if err := parSt.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := par.CatchUp(); err != nil {
				t.Fatal(err)
			}
			check("post-compact")
		}
	}
}
