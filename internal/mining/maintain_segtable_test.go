package mining

import (
	"bytes"
	"math/rand"
	"testing"

	"cape/internal/engine"
	"cape/internal/value"
)

// segTableFrom rebuilds a table as a SegTable: the first rows split into
// nSegs sealed compressed segments, the last tailRows appended to the
// uncompressed tail — the layout a long-lived segment-backed dataset has
// after a few compactions plus fresh appends.
func segTableFrom(t *testing.T, tab *engine.Table, nSegs, tailRows int) *engine.SegTable {
	t.Helper()
	n := tab.NumRows() - tailRows
	st := engine.NewSegTable(tab.Schema())
	per := n / nSegs
	for s := 0; s < nSegs; s++ {
		lo, hi := s*per, (s+1)*per
		if s == nSegs-1 {
			hi = n
		}
		w := engine.NewSegmentWriter(tab.Schema())
		for i := lo; i < hi; i++ {
			if err := w.Append(tab.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.AddSegment(w.Segment()); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendRows(tab.Rows()[n:]); err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != tab.NumRows() {
		t.Fatalf("segtable has %d rows, want %d", st.NumRows(), tab.NumRows())
	}
	return st
}

// TestMaintainerOverSegTable pins the segment-backed maintenance path:
// a Maintainer over a SegTable (compressed segments + uncompressed
// tail) must stay byte-identical both to a cold re-mine of the SegTable
// and to a dense-table Maintainer fed the same appends, across append
// batches and a mid-stream Compact that seals the tail.
func TestMaintainerOverSegTable(t *testing.T) {
	tab := testTable(t, 300)
	st := segTableFrom(t, tab, 2, 40)
	opt := lenientOpts()

	m, err := NewMaintainer(st, opt)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewMaintainer(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameAsRemine(t, "initial", m, opt)
	if len(m.Patterns()) == 0 {
		t.Fatal("fixture mined no patterns; the identity checks are vacuous")
	}

	requireSameAsDense := func(label string) {
		t.Helper()
		got := patternsJSON(t, m.Patterns())
		want := patternsJSON(t, dense.Patterns())
		if !bytes.Equal(got, want) {
			t.Errorf("%s: segment-backed maintainer diverges from dense maintainer\nsegment: %s\ndense: %s",
				label, got, want)
		}
	}
	requireSameAsDense("initial")

	rng := rand.New(rand.NewSource(11))
	authors := []string{"a1", "a2", "a3", "a4", "a5", "a6"}
	venues := []string{"KDD", "ICDE", "VLDB", "WWW"}
	nextBatch := func() []value.Tuple {
		rows := make([]value.Tuple, 1+rng.Intn(20))
		for i := range rows {
			rows[i] = value.Tuple{
				value.NewString(authors[rng.Intn(len(authors))]),
				value.NewString(venues[rng.Intn(len(venues))]),
				value.NewInt(int64(2000 + rng.Intn(8))),
				value.NewInt(int64(rng.Intn(30))),
			}
		}
		return rows
	}
	apply := func(label string, rows []value.Tuple) {
		t.Helper()
		if err := m.Apply(rows); err != nil {
			t.Fatal(err)
		}
		if err := dense.Apply(rows); err != nil {
			t.Fatal(err)
		}
		requireSameAsRemine(t, label, m, opt)
		requireSameAsDense(label)
	}
	for batch := 0; batch < 3; batch++ {
		apply("batch "+string(rune('0'+batch)), nextBatch())
	}

	// Compact seals the tail into a new compressed segment. Row count
	// and contents are unchanged, so CatchUp must fold nothing and the
	// maintained set must not move; only the epoch advances.
	before := patternsJSON(t, m.Patterns())
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.TailRows() != 0 {
		t.Fatalf("tail holds %d rows after Compact", st.TailRows())
	}
	if err := m.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if got := patternsJSON(t, m.Patterns()); !bytes.Equal(got, before) {
		t.Errorf("Compact moved the maintained set\nafter: %s\nbefore: %s", got, before)
	}
	if _, epoch := m.Synced(); epoch != st.Epoch() {
		t.Errorf("maintainer epoch %d, segtable epoch %d after Compact", epoch, st.Epoch())
	}

	// Appends after the compact land in a fresh tail; the maintained set
	// must keep tracking both the re-mine and the dense maintainer.
	for batch := 3; batch < 5; batch++ {
		apply("post-compact batch "+string(rune('0'+batch)), nextBatch())
	}
}
