package mining

import (
	"time"

	"cape/internal/engine"
	"cape/internal/fd"
	"cape/internal/pattern"
)

// ARPMine is the paper's Algorithm 2: the ShareGrp query sharing plus
// (i) sort-order reuse — one sort of the grouped result serves every
// (F, V) split whose F is a prefix of the sort order — and (ii) optional
// functional-dependency pruning: patterns whose partition attributes are
// non-minimal w.r.t. detected FDs, or where F functionally determines V,
// are skipped (Appendix D). FDs are detected for free from the group
// counts the miner computes anyway.
//
// With Options.Parallelism > 1, the independent per-attribute-set work
// (group-by evaluation and sort-order exploration) fans out across
// goroutines level by level; FD detection stays sequential between
// phases, preserving the invariant that an FD is known before any
// pattern that could use it is considered. Results are identical to the
// sequential run; Timers then aggregate CPU time across workers rather
// than wall-clock time.
func ARPMine(r engine.Relation, opt Options) (*Result, error) {
	opt, err := opt.withDefaults(r)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	pool, detach := runPool(r, opt.Parallelism)
	defer detach()
	fds := opt.InitialFDs
	if fds == nil {
		fds = fd.NewSet()
	}
	groupSizes := make(map[string]int)

	if opt.UseFDs {
		res.FDs = fds
		// Record singleton distinct counts so FDs with single-attribute
		// left-hand sides are detectable at |G| = 2.
		t0 := time.Now()
		for _, a := range opt.Attributes {
			n, err := r.CountDistinct([]string{a})
			if err != nil {
				return nil, err
			}
			groupSizes[fd.Key([]string{a})] = n
		}
		res.Timers.Query += time.Since(t0)
	}

	for size := 2; size <= opt.MaxPatternSize && size <= len(opt.Attributes); size++ {
		gs := combinations(opt.Attributes, size)

		// Phase 1 (parallel): one multi-aggregate group-by per G.
		type gState struct {
			aggs    []engine.AggSpec
			grouped *engine.Table
			timers  pattern.Timers
			out     Result
		}
		states := make([]gState, len(gs))
		err := pool.ForEach("mine:arpmine-group", len(gs), func(i int) error {
			st := &states[i]
			st.aggs = aggSpecsFor(r, opt.AggFuncs, gs[i])
			t0 := time.Now()
			grouped, err := r.GroupBy(gs[i], st.aggs)
			if err != nil {
				return err
			}
			st.timers.Query += time.Since(t0)
			st.grouped = grouped
			return nil
		})
		if err != nil {
			return nil, err
		}

		// Phase 2 (sequential): record group counts, detect FDs. Every FD
		// usable at this level has a left-hand side of size ≤ size−1 and
		// was detected at an earlier level, so detection order within the
		// level does not affect pruning decisions.
		for i, g := range gs {
			groupSizes[fd.Key(g)] = states[i].grouped.NumRows()
			if opt.UseFDs {
				fds.Detect(groupSizes, g)
			}
		}

		// Phase 3 (parallel): explore sort orders per G. The tested-pair
		// set is per G because (F, V) pairs from different attribute sets
		// never coincide.
		err = pool.ForEach("mine:arpmine-sort", len(gs), func(i int) error {
			st := &states[i]
			tested := make(map[string]bool)
			return exploreSortOrders(gs[i], st.grouped, st.aggs, opt, fds, tested, &st.out)
		})
		if err != nil {
			return nil, err
		}

		for i := range states {
			st := &states[i]
			res.Patterns = append(res.Patterns, st.out.Patterns...)
			res.Candidates += st.out.Candidates
			res.SkippedByFD += st.out.SkippedByFD
			res.Timers.Add(st.timers)
			res.Timers.Add(st.out.Timers)
		}
	}
	res.sortPatterns()
	return res, nil
}

// exploreSortOrders is Algorithm 5 on the fast path: instead of copying
// and re-sorting the grouped rows per sort order, it dictionary-encodes
// the grouping columns once (BuildSortCodes) and sorts a row-index
// permutation, reusing the sorted prefix shared with the previous order.
// The orders come from the minimal cover (C(n, ⌊n/2⌋) of the n!
// permutations); each order evaluates every split whose F is a prefix,
// through one SharedFitter that scans fragments columnar.
func exploreSortOrders(g []string, grouped *engine.Table, aggs []engine.AggSpec,
	opt Options, fds *fd.Set, tested map[string]bool, res *Result) error {

	t0 := time.Now()
	codes, err := engine.BuildSortCodes(grouped, g)
	if err != nil {
		return err
	}
	perm := codes.NewPerm()
	res.Timers.Query += time.Since(t0)

	fitter, err := pattern.NewSharedFitter(grouped, aggs, opt.Models, opt.Thresholds)
	if err != nil {
		return err
	}

	var prev []string
	for _, s := range sortOrderCover(g) {
		// Does this sort order cover anything new?
		covers := false
		for k := 1; k < len(s); k++ {
			if !tested[pairKey(s[:k], s[k:])] {
				covers = true
				break
			}
		}
		if !covers {
			continue
		}
		t0 := time.Now()
		if err := codes.SortPerm(perm, s, sharedPrefix(prev, s)); err != nil {
			return err
		}
		res.Timers.Query += time.Since(t0)
		prev = s

		for k := 1; k < len(s); k++ {
			f, v := s[:k], s[k:]
			pk := pairKey(f, v)
			if tested[pk] {
				continue
			}
			tested[pk] = true
			if opt.UseFDs && (!fds.IsMinimal(f) || fds.DeterminesAll(f, v)) {
				res.SkippedByFD++
				continue
			}
			res.Candidates += len(aggs) * len(opt.Models)
			mined, err := fitter.Fit(f, v, perm, codes, &res.Timers)
			if err != nil {
				return err
			}
			res.Patterns = append(res.Patterns, mined...)
		}
	}
	return nil
}
