package mining

import (
	"time"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/value"
)

// Naive is the brute-force miner (Algorithms 3–4): it enumerates every
// candidate (F, V, agg, A, M) independently and, for each, evaluates one
// retrieval query per fragment — a full scan of the relation per
// fragment. It shares nothing and exists as the experimental baseline for
// Figure 3a. With Options.Parallelism > 1 the per-attribute-set work
// fans out across a shared pool; the pattern set is identical to the
// sequential run.
func Naive(r engine.Relation, opt Options) (*Result, error) {
	opt, err := opt.withDefaults(r)
	if err != nil {
		return nil, err
	}
	var gs [][]string
	for size := 2; size <= opt.MaxPatternSize && size <= len(opt.Attributes); size++ {
		gs = append(gs, combinations(opt.Attributes, size)...)
	}

	pool, detach := runPool(r, opt.Parallelism)
	defer detach()
	outs := make([]Result, len(gs))
	err = pool.ForEach("mine:naive", len(gs), func(i int) error {
		g := gs[i]
		out := &outs[i]
		aggs := aggSpecsFor(r, opt.AggFuncs, g)
		for _, sp := range splits(g) {
			for _, a := range aggs {
				for _, m := range opt.Models {
					p := pattern.Pattern{F: sp[0], V: sp[1], Agg: a, Model: m}
					out.Candidates++
					mined, err := naivePatternHolds(p, r, opt.Thresholds, &out.Timers)
					if err != nil {
						return err
					}
					if mined != nil {
						out.Patterns = append(out.Patterns, mined)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for i := range outs {
		res.Patterns = append(res.Patterns, outs[i].Patterns...)
		res.Candidates += outs[i].Candidates
		res.Timers.Add(outs[i].Timers)
	}
	res.sortPatterns()
	return res, nil
}

// naivePatternHolds mirrors Algorithm 4: enumerate the fragments of P,
// run the retrieval query γ_{V,agg}(σ_{F=f}(R)) for each, fit a model,
// and apply the global thresholds.
func naivePatternHolds(p pattern.Pattern, r engine.Relation, th pattern.Thresholds, tm *pattern.Timers) (*pattern.Mined, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Canonical attribute order, matching pattern.FitShared, so fragment
	// keys agree across miner variants.
	p.F = pattern.SortedCopy(p.F)
	p.V = pattern.SortedCopy(p.V)
	t0 := time.Now()
	frags, err := r.DistinctProject(p.F)
	if err != nil {
		return nil, err
	}
	tm.Query += time.Since(t0)

	mined := &pattern.Mined{
		Pattern: p,
		Locals:  make(map[string]*pattern.LocalModel),
	}
	numSupp := 0
	for _, frag := range frags.Rows() {
		t0 = time.Now()
		sel, err := r.SelectEq(p.F, frag)
		if err != nil {
			return nil, err
		}
		q, err := sel.GroupBy(p.V, []engine.AggSpec{p.Agg})
		if err != nil {
			return nil, err
		}
		tm.Query += time.Since(t0)

		mined.NumFragments++
		xs := make([][]float64, 0, q.NumRows())
		ys := make([]float64, 0, q.NumRows())
		numericX, numericY := true, true
		aggCol := len(p.V)
		for _, row := range q.Rows() {
			y, ok := row[aggCol].AsFloat()
			if !ok {
				numericY = false
				break
			}
			ys = append(ys, y)
			if numericX {
				if enc, ok := pattern.EncodePredictors(value.Tuple(row[:aggCol])); ok {
					xs = append(xs, enc)
				} else {
					numericX = false
				}
			}
		}
		if !numericY || len(ys) < th.LocalSupport {
			continue
		}
		numSupp++
		if p.Model == regress.Lin && !numericX {
			continue
		}
		var x [][]float64
		if p.Model == regress.Lin {
			x = xs
		} else {
			x = make([][]float64, len(ys))
		}
		t0 = time.Now()
		model, ferr := regress.Fit(p.Model, x, ys)
		tm.Regression += time.Since(t0)
		if ferr != nil || model.GoF() < th.Theta {
			continue
		}
		lm := &pattern.LocalModel{Frag: frag.Clone(), Model: model, Support: len(ys)}
		for i, y := range ys {
			var pred float64
			if p.Model == regress.Lin {
				pred = model.Predict(xs[i])
			} else {
				pred = model.Predict(nil)
			}
			dev := y - pred
			if dev > lm.MaxPosDev {
				lm.MaxPosDev = dev
			}
			if dev < lm.MaxNegDev {
				lm.MaxNegDev = dev
			}
		}
		mined.Locals[frag.Key()] = lm
		if lm.MaxPosDev > mined.MaxPosDev {
			mined.MaxPosDev = lm.MaxPosDev
		}
		if lm.MaxNegDev < mined.MaxNegDev {
			mined.MaxNegDev = lm.MaxNegDev
		}
	}

	good := mined.GlobalSupport()
	if good < th.GlobalSupport || numSupp == 0 {
		return nil, nil
	}
	conf := float64(good) / float64(numSupp)
	if conf < th.Lambda {
		return nil, nil
	}
	mined.NumSupported = numSupp
	mined.Confidence = conf
	return mined, nil
}
