package mining

import (
	"fmt"
	"sort"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/value"
)

// Maintainer keeps a mined pattern set fresh under appends. It retains,
// for every grouping attribute set the miner would consider, the group
// aggregation state (engine.AggAccum per aggregate per group) and, for
// every (F, V) split, the fragment membership of each group — so an
// appended batch of rows costs O(batch × groupings) routing plus a
// re-fit of only the fragments whose groups changed, instead of the
// full group-sort-fit pipeline over the whole table.
//
// The maintained set is pinned byte-identical to a cold ARPMine run
// (without FD pruning) over the same rows:
//
//   - Appended rows land at the table tail, so folding them onto the
//     retained accumulators reproduces GroupBy's per-group fold order
//     bit for bit, and new groups enter in first-appearance order —
//     exactly where a re-run's grouped table would place them.
//   - Each fragment keeps its groups in the miner's observation order:
//     sorted by the predictor sequence of the sort order that first
//     tested the split (value.Compare ranks, ties by grouped-row
//     index — the engine's permutation sorts are stable). Re-fitting
//     folds observations through the same ConstStats / FitLinInto
//     kernels in the same order, so float arithmetic agrees exactly.
//
// Float sums are order-sensitive, which is why touched fragments are
// re-fit from their (retained, ordered) group aggregates rather than
// stat-merged; the mergeable regress.ConstStats.Merge / LinStats exist
// for callers that can accept reassociated sums. See DESIGN.md §11.
//
// Precondition (shared with the engine's sort and index kernels): the
// grouping attributes contain no NaN, no −0.0-vs-+0.0 mixes, and no
// integers ≥ 2⁵³, where canonical-key equality diverges from
// value.Compare equality. Aggregate observations are unrestricted.
//
// With Options.Parallelism > 1 the per-grouping-set work — folding
// appended rows into the retained accumulators, routing touched groups,
// re-fitting dirty fragments — fans across a shared pool. Grouping sets
// are fully independent retained states, and each one still folds the
// appended rows in row order, so the maintained set is identical to the
// sequential maintainer's at any width.
//
// A Maintainer is not safe for concurrent use.
type Maintainer struct {
	tab    engine.MutableRelation
	opt    Options
	synced int    // rows folded so far
	epoch  uint64 // table epoch at last CatchUp
	cands  int    // ARPMine-parity candidate count
	gsets  []*gSet
}

// gSet is the retained state of one grouping attribute set.
type gSet struct {
	attrs  []string
	colIdx []int // table column per attr
	aggs   []engine.AggSpec
	aggIdx []int // table column per aggregate argument (-1 for star)
	hasLin bool

	groups  []*mGroup // first-appearance order == grouped-row index
	lookup  map[string]int32
	splits  []*mSplit
	touched []int32 // groups touched by the current batch

	// Scratch reused across folds and fragment re-fits. Per grouping set
	// (not per maintainer) so CatchUp can fan grouping sets across a
	// pool.
	ys     []float64
	xs     []float64
	keyBuf []byte
	stats  regress.ConstStats
	lin    regress.LinScratch
}

// mGroup is one group: its key values (from the group's first row, the
// same representative GroupBy emits) and resumable aggregate state.
type mGroup struct {
	key     value.Tuple
	accs    []engine.AggAccum
	touched bool
	fresh   bool // created by the current batch
}

// mSplit is one (F, V) split of a grouping set.
type mSplit struct {
	f, v []string // sorted, as Pattern carries them
	fPos []int    // positions into gSet.attrs, sorted-F order
	vPos []int    // positions into gSet.attrs, sorted-V order
	// seqPos orders observations within a fragment: the predictor
	// attributes in the order of the sort order that first tested this
	// split, exactly as the miner's permutation sort left them.
	seqPos []int
	frags  map[string]*mFrag
	dirty  []*mFrag
	cands  []*mCand
}

// mFrag is one fragment of a split: the groups it contains, in
// observation order, plus the per-aggregate support flag that feeds the
// λ denominator.
type mFrag struct {
	key       string
	groups    []int32
	supported []bool // per aggregate: numeric and |groups| ≥ δ
	dirty     bool
}

// mCand is one (aggregate, model) candidate of a split.
type mCand struct {
	p pattern.Pattern
	// key caches p.Key() — the canonical identity every CandStats call
	// and admission push matches on. Candidates are fixed for the
	// maintainer's lifetime, so deriving the key (two sorts plus string
	// joins per candidate) once at construction keeps the per-append
	// candidate path allocation-free here.
	key    string
	agg    int
	model  regress.ModelType
	locals map[string]*pattern.LocalModel
}

// NewMaintainer builds the retained mining state for tab under opt and
// performs the initial full fit; Patterns then equals ARPMine(tab, opt).
// tab is any mutable relation — the in-memory Table or a segment-backed
// SegTable, whose appended rows stream in via ScanRows without ever
// materializing the sealed segments. FD pruning is not maintainable (an
// FD detected on a prefix of the data can be violated by later rows,
// silently changing which candidates were skipped), so opt.UseFDs is
// rejected.
func NewMaintainer(tab engine.MutableRelation, opt Options) (*Maintainer, error) {
	opt, err := opt.withDefaults(tab)
	if err != nil {
		return nil, err
	}
	if opt.UseFDs {
		return nil, fmt.Errorf("mining: FD pruning is not supported by the incremental maintainer")
	}
	m := &Maintainer{tab: tab, opt: opt}
	attrPos := func(attrs []string, a string) int {
		for i, b := range attrs {
			if b == a {
				return i
			}
		}
		return -1
	}
	for size := 2; size <= opt.MaxPatternSize && size <= len(opt.Attributes); size++ {
		for _, g := range combinations(opt.Attributes, size) {
			aggs := aggSpecsFor(tab, opt.AggFuncs, g)
			gs := &gSet{
				attrs:  g,
				aggs:   aggs,
				aggIdx: make([]int, len(aggs)),
				lookup: make(map[string]int32),
			}
			gs.colIdx, err = tab.Schema().Indices(g)
			if err != nil {
				return nil, err
			}
			for i, a := range aggs {
				gs.aggIdx[i] = -1
				if !a.IsStar() {
					gs.aggIdx[i] = tab.Schema().Index(a.Arg)
				}
			}
			// Replicate the miner's split enumeration: iterate the sort-
			// order cover and keep, per (F, V) pair, the predictor sequence
			// of the first order that tests it.
			tested := make(map[string]bool)
			for _, s := range sortOrderCover(g) {
				for k := 1; k < len(s); k++ {
					f, v := s[:k], s[k:]
					pk := pairKey(f, v)
					if tested[pk] {
						continue
					}
					tested[pk] = true
					m.cands += len(aggs) * len(opt.Models)
					sp := &mSplit{
						f:     pattern.SortedCopy(f),
						v:     pattern.SortedCopy(v),
						frags: make(map[string]*mFrag),
					}
					for _, a := range sp.f {
						sp.fPos = append(sp.fPos, attrPos(g, a))
					}
					for _, a := range sp.v {
						sp.vPos = append(sp.vPos, attrPos(g, a))
					}
					for _, a := range v {
						sp.seqPos = append(sp.seqPos, attrPos(g, a))
					}
					for ai, a := range aggs {
						for _, mt := range opt.Models {
							p := pattern.Pattern{F: sp.f, V: sp.v, Agg: a, Model: mt}
							if err := p.Validate(); err != nil {
								return nil, err
							}
							if mt == regress.Lin {
								gs.hasLin = true
							}
							sp.cands = append(sp.cands, &mCand{
								p: p, key: p.Key(), agg: ai, model: mt,
								locals: make(map[string]*pattern.LocalModel),
							})
						}
					}
					gs.splits = append(gs.splits, sp)
				}
			}
			m.gsets = append(m.gsets, gs)
		}
	}
	if err := m.CatchUp(); err != nil {
		return nil, err
	}
	return m, nil
}

// Table returns the relation the maintainer tracks.
func (m *Maintainer) Table() engine.MutableRelation { return m.tab }

// Synced returns the number of table rows folded into the retained
// state, and the table epoch observed at that point.
func (m *Maintainer) Synced() (rows int, epoch uint64) { return m.synced, m.epoch }

// Candidates reports the ARPMine-equivalent candidate count: every
// (F, V, aggregate, model) combination the enumeration examines.
func (m *Maintainer) Candidates() int { return m.cands }

// Options returns the normalized mining options the maintainer runs
// with.
func (m *Maintainer) Options() Options { return m.opt }

// Apply appends rows to the table and folds them into the pattern set.
func (m *Maintainer) Apply(rows []value.Tuple) error {
	if err := m.tab.AppendRows(rows); err != nil {
		return err
	}
	return m.CatchUp()
}

// CatchUp folds any table rows appended since the last sync (by this
// maintainer or by other appenders) and re-fits the touched fragments.
// Rows already folded must not have been reordered or rewritten; only
// appends are maintainable.
func (m *Maintainer) CatchUp() error {
	n := m.tab.NumRows()
	if n < m.synced {
		return fmt.Errorf("mining: table shrank from %d to %d rows; maintainer state is stale", m.synced, n)
	}
	if n == m.synced {
		m.epoch = m.tab.Epoch()
		return nil
	}
	pool, detach := runPool(m.tab, m.opt.Parallelism)
	defer detach()

	// One streaming pass over the appended range folds every grouping
	// set — segment-backed relations decode each new row once, not once
	// per grouping set. Rows arrive through the scanner's reused buffer,
	// so they are slab-copied into bounded chunks; each flush fans the
	// grouping sets across the pool, every set folding the chunk's rows
	// in row order — the same per-set fold the sequential pass performs.
	// Chunking keeps the initial full catch-up memory-bounded (the table
	// is never buffered whole).
	width := len(m.tab.Schema())
	chunk := make([]value.Tuple, 0, maintainChunkRows)
	slab := make([]value.V, 0, maintainChunkRows*width)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		err := pool.ForEach("mine:maintain-fold", len(m.gsets), func(i int) error {
			gs := m.gsets[i]
			for _, row := range chunk {
				gs.foldRow(row)
			}
			return nil
		})
		chunk, slab = chunk[:0], slab[:0]
		return err
	}
	err := m.tab.ScanRows(m.synced, n, func(row value.Tuple) error {
		slab = append(slab, row...)
		chunk = append(chunk, slab[len(slab)-width:len(slab):len(slab)])
		if len(chunk) == maintainChunkRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}

	err = pool.ForEach("mine:maintain-refit", len(m.gsets), func(i int) error {
		gs := m.gsets[i]
		for _, sp := range gs.splits {
			gs.routeTouched(sp)
			for _, fr := range sp.dirty {
				gs.refit(m.opt, sp, fr)
				fr.dirty = false
			}
			sp.dirty = sp.dirty[:0]
		}
		for _, gi := range gs.touched {
			gs.groups[gi].touched = false
			gs.groups[gi].fresh = false
		}
		gs.touched = gs.touched[:0]
		return nil
	})
	if err != nil {
		return err
	}
	m.synced = n
	m.epoch = m.tab.Epoch()
	return nil
}

// maintainChunkRows bounds how many appended rows CatchUp buffers
// between parallel folds.
var maintainChunkRows = 4096

// foldRow routes one appended row to its group in gs (creating new
// groups in first-appearance order) and folds it into the aggregate
// accumulators. Only value.V structs are retained (copied into the
// group key), so the row may live in a reused chunk slab.
func (gs *gSet) foldRow(row value.Tuple) {
	gs.keyBuf = gs.keyBuf[:0]
	for _, ci := range gs.colIdx {
		gs.keyBuf = row[ci].AppendKey(gs.keyBuf)
	}
	gi, ok := gs.lookup[string(gs.keyBuf)]
	if !ok {
		gi = int32(len(gs.groups))
		key := make(value.Tuple, len(gs.colIdx))
		for i, ci := range gs.colIdx {
			key[i] = row[ci]
		}
		grp := &mGroup{key: key, accs: make([]engine.AggAccum, len(gs.aggs)), fresh: true}
		for ai, a := range gs.aggs {
			grp.accs[ai] = engine.NewAggAccum(a)
		}
		gs.groups = append(gs.groups, grp)
		gs.lookup[string(gs.keyBuf)] = gi
	}
	grp := gs.groups[gi]
	if !grp.touched {
		grp.touched = true
		gs.touched = append(gs.touched, gi)
	}
	for ai := range gs.aggs {
		var arg value.V
		if ci := gs.aggIdx[ai]; ci >= 0 {
			arg = row[ci]
		}
		grp.accs[ai].Add(arg)
	}
}

// routeTouched maps every touched group to its fragment in sp, inserting
// fresh groups at their observation-order position, and collects the
// dirty fragments.
func (gs *gSet) routeTouched(sp *mSplit) {
	for _, gi := range gs.touched {
		grp := gs.groups[gi]
		gs.keyBuf = gs.keyBuf[:0]
		for _, p := range sp.fPos {
			gs.keyBuf = grp.key[p].AppendKey(gs.keyBuf)
		}
		fr, ok := sp.frags[string(gs.keyBuf)]
		if !ok {
			fr = &mFrag{key: string(gs.keyBuf), supported: make([]bool, len(gs.aggs))}
			sp.frags[fr.key] = fr
		}
		if grp.fresh {
			// Insert at the observation-order position: predictor-sequence
			// values under value.Compare, ties after (the fresh group's
			// grouped-row index is larger than every existing one's).
			pos := sort.Search(len(fr.groups), func(i int) bool {
				return obsLess(gs, sp, gi, fr.groups[i])
			})
			fr.groups = append(fr.groups, 0)
			copy(fr.groups[pos+1:], fr.groups[pos:])
			fr.groups[pos] = gi
		}
		if !fr.dirty {
			fr.dirty = true
			sp.dirty = append(sp.dirty, fr)
		}
	}
}

// obsLess orders groups within a fragment: by the split's predictor
// sequence under value.Compare, then by grouped-row index — the order
// the miner's stable permutation sort visits them in.
func obsLess(gs *gSet, sp *mSplit, a, b int32) bool {
	ka, kb := gs.groups[a].key, gs.groups[b].key
	for _, p := range sp.seqPos {
		if c := value.Compare(ka[p], kb[p]); c != 0 {
			return c < 0
		}
	}
	return a < b
}

// numFloat mirrors the engine's flat column decode: the float64 payload
// of a numeric value, declined otherwise.
func numFloat(v value.V) (float64, bool) {
	switch v.Kind() {
	case value.Int:
		return float64(v.Int()), true
	case value.Float:
		return v.Float(), true
	}
	return 0, false
}

// refit re-evaluates every candidate of sp on fragment fr, replicating
// SharedFitter.flushFragment over the fragment's groups in observation
// order: same gather order, same ConstStats / FitLinInto arithmetic,
// same threshold gates — so the resulting local models are bitwise
// those of a cold re-mine.
func (gs *gSet) refit(opt Options, sp *mSplit, fr *mFrag) {
	n := len(fr.groups)
	d := len(sp.v)

	numericX := true
	xs := gs.xs[:0]
	if gs.hasLin {
	gather:
		for _, gi := range fr.groups {
			key := gs.groups[gi].key
			for _, p := range sp.vPos {
				f, ok := numFloat(key[p])
				if !ok {
					numericX = false
					break gather
				}
				xs = append(xs, f)
			}
		}
		gs.xs = xs
	}

	var frag value.Tuple
	nModels := len(opt.Models)
	for ai := range gs.aggs {
		numericY := true
		gs.stats.Reset()
		ys := gs.ys[:0]
		for _, gi := range fr.groups {
			y, ok := numFloat(gs.groups[gi].accs[ai].Result())
			if !ok {
				numericY = false
				break
			}
			gs.stats.Add(y)
			ys = append(ys, y)
		}
		gs.ys = ys
		fr.supported[ai] = numericY && n >= opt.Thresholds.LocalSupport

		for mi := 0; mi < nModels; mi++ {
			cs := sp.cands[ai*nModels+mi]
			if !fr.supported[ai] {
				delete(cs.locals, fr.key)
				continue
			}
			isLin := cs.model == regress.Lin
			if isLin && !numericX {
				delete(cs.locals, fr.key)
				continue
			}
			var gof, cmean float64
			var ferr error
			if isLin {
				gof, ferr = regress.FitLinInto(xs[:n*d], d, ys, &gs.lin)
			} else {
				cmean, gof, ferr = gs.stats.FitParams()
			}
			if ferr != nil || gof < opt.Thresholds.Theta {
				delete(cs.locals, fr.key)
				continue
			}
			var model regress.Model
			if isLin {
				model = gs.lin.Model(gof)
			} else {
				model = regress.NewConst(cmean, gof)
			}
			if frag == nil {
				first := gs.groups[fr.groups[0]].key
				frag = make(value.Tuple, len(sp.fPos))
				for i, p := range sp.fPos {
					frag[i] = first[p]
				}
			}
			lm := &pattern.LocalModel{Frag: frag, Model: model, Support: n}
			if isLin {
				for i, y := range ys {
					dev := y - model.Predict(xs[i*d:(i+1)*d])
					if dev > lm.MaxPosDev {
						lm.MaxPosDev = dev
					}
					if dev < lm.MaxNegDev {
						lm.MaxNegDev = dev
					}
				}
			} else {
				mean := model.Predict(nil)
				if dev := gs.stats.Max - mean; dev > 0 {
					lm.MaxPosDev = dev
				}
				if dev := gs.stats.Min - mean; dev < 0 {
					lm.MaxNegDev = dev
				}
			}
			cs.locals[fr.key] = lm
		}
	}
}

// Patterns assembles the globally-holding pattern set from the retained
// state: the same Definition-4 gates, counters, and deviation extremes
// a cold ARPMine run computes, sorted by pattern key. The returned
// Mined values are fresh (maps copied); the LocalModels are shared but
// immutable — re-fits replace them, never mutate.
func (m *Maintainer) Patterns() []*pattern.Mined {
	th := m.opt.Thresholds
	var out []*pattern.Mined
	for _, gs := range m.gsets {
		for _, sp := range gs.splits {
			numSupp := make([]int, len(gs.aggs))
			for _, fr := range sp.frags {
				for ai, s := range fr.supported {
					if s {
						numSupp[ai]++
					}
				}
			}
			for _, cs := range sp.cands {
				good := len(cs.locals)
				if good == 0 || numSupp[cs.agg] == 0 {
					continue
				}
				if good < th.GlobalSupport {
					continue
				}
				conf := float64(good) / float64(numSupp[cs.agg])
				if conf < th.Lambda {
					continue
				}
				mined := &pattern.Mined{
					Pattern:      cs.p,
					Locals:       make(map[string]*pattern.LocalModel, good),
					NumFragments: len(sp.frags),
					NumSupported: numSupp[cs.agg],
					Confidence:   conf,
				}
				for k, lm := range cs.locals {
					mined.Locals[k] = lm
					if lm.MaxPosDev > mined.MaxPosDev {
						mined.MaxPosDev = lm.MaxPosDev
					}
					if lm.MaxNegDev < mined.MaxNegDev {
						mined.MaxNegDev = lm.MaxNegDev
					}
				}
				out = append(out, mined)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Pattern.Key() < out[j].Pattern.Key()
	})
	return out
}

// CandStat is the raw per-candidate evidence behind the Definition-4
// global gates, before any threshold is applied: how many fragments the
// candidate's split produced, how many were supported (≥ LocalSupport
// rows, numeric aggregate), and how many of those yielded a good local
// fit (GoF ≥ Theta). A sharded deployment mines each shard with
// loosened global thresholds (λ=0, Δ=1), sums these counters across
// shards — fragments are disjoint between shards when the shard key is
// part of every F — and applies the real λ/Δ gates to the totals,
// reproducing single-node admission exactly.
type CandStat struct {
	// Key is the candidate pattern's canonical identity (pattern.Key()).
	Key string
	// Good counts fragments with a passing local fit. Zero is
	// meaningful: a shard holding supported-but-unfit fragments still
	// contributes to the global confidence denominator.
	Good int
	// Supported counts fragments meeting the local support gate.
	Supported int
	// Fragments counts all fragments of the candidate's (F, V) split.
	Fragments int
}

// CandStats reports the raw evidence for every candidate the miner
// enumerated — including candidates Patterns() would gate out — sorted
// by pattern key.
func (m *Maintainer) CandStats() []CandStat {
	var out []CandStat
	for _, gs := range m.gsets {
		for _, sp := range gs.splits {
			numSupp := make([]int, len(gs.aggs))
			for _, fr := range sp.frags {
				for ai, s := range fr.supported {
					if s {
						numSupp[ai]++
					}
				}
			}
			for _, cs := range sp.cands {
				out = append(out, CandStat{
					Key:       cs.key,
					Good:      len(cs.locals),
					Supported: numSupp[cs.agg],
					Fragments: len(sp.frags),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
