// Package exp contains the shared experiment machinery behind the
// paper-reproduction harness (cmd/capebench), the benchmarks, and the
// sensitivity example: ground-truth outlier injection with site
// selection, the precision measurement of Section 5.3, and random
// user-question generation for the explanation-performance experiments.
package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// SiteSpec describes where ground-truth counterbalances may be planted:
// the question schema is (TypeAttr, FragAttr, PredAttr); the outlier and
// its counterbalance share FragAttr and PredAttr values but differ in
// TypeAttr (the paper's cross-venue / cross-crime-type story).
type SiteSpec struct {
	// TypeAttr varies between outlier and counterbalance (venue, type).
	TypeAttr string
	// FragAttr is the shared partition attribute (author, community).
	FragAttr string
	// PredAttr is the predictor attribute (year).
	PredAttr string
	// MinOutlierCount is the minimum group size to deplete (default 10).
	MinOutlierCount int64
	// MinCounterMean is the minimum fragment mean for the receiving
	// group (default 6).
	MinCounterMean float64
}

// Site is one injectable outlier/counterbalance pair over the question
// schema (TypeAttr, FragAttr, PredAttr).
type Site struct {
	Outlier value.Tuple
	Counter value.Tuple
}

// QuestionAttrs returns the question's group-by attributes in site
// order.
func (s SiteSpec) QuestionAttrs() []string {
	return []string{s.TypeAttr, s.FragAttr, s.PredAttr}
}

func (s SiteSpec) targetKey(agg engine.AggSpec) string {
	f := []string{s.FragAttr, s.TypeAttr}
	sort.Strings(f)
	return strings.Join(f, ",") + "|" + s.PredAttr + "|" + agg.String() + "|Const"
}

func (s SiteSpec) coarseKey(agg engine.AggSpec) string {
	return s.FragAttr + "|" + s.PredAttr + "|" + agg.String() + "|Const"
}

// FindSites locates up to maxSites injectable pairs in tab, using mined
// patterns to ensure (i) the outlier fragment genuinely follows the
// constant-per-predictor trend, (ii) the coarser pattern over FragAttr
// alone also holds (so refinement reaches the counterbalance), and
// (iii) the receiving group sits at or below its fragment mean so the
// planted spike reads as a clean deviation.
func FindSites(tab *engine.Table, spec SiteSpec, patterns []*pattern.Mined, maxSites int) ([]Site, error) {
	if spec.MinOutlierCount == 0 {
		spec.MinOutlierCount = 10
	}
	if spec.MinCounterMean == 0 {
		spec.MinCounterMean = 6
	}
	agg := engine.AggSpec{Func: engine.Count}
	var target, coarse *pattern.Mined
	for _, p := range patterns {
		switch p.Pattern.Key() {
		case spec.targetKey(agg):
			target = p
		case spec.coarseKey(agg):
			coarse = p
		}
	}
	if target == nil || coarse == nil {
		return nil, fmt.Errorf("exp: required patterns not mined (need %q and %q)",
			spec.targetKey(agg), spec.coarseKey(agg))
	}
	qAttrs := spec.QuestionAttrs()
	grouped, err := tab.GroupBy(qAttrs, []engine.AggSpec{agg})
	if err != nil {
		return nil, err
	}

	// Canonical fragment order for target: sorted (FragAttr, TypeAttr).
	fragOrder := []string{spec.FragAttr, spec.TypeAttr}
	sort.Strings(fragOrder)
	fragOf := func(row value.Tuple) value.Tuple {
		// row layout: TypeAttr, FragAttr, PredAttr, count.
		byName := map[string]value.V{spec.TypeAttr: row[0], spec.FragAttr: row[1]}
		return value.Tuple{byName[fragOrder[0]], byName[fragOrder[1]]}
	}

	var sites []Site
	for _, row := range grouped.Rows() {
		if row[3].Int() < spec.MinOutlierCount {
			continue
		}
		if _, ok := target.Local(fragOf(row)); !ok {
			continue
		}
		if _, ok := coarse.Local(value.Tuple{row[1]}); !ok {
			continue
		}
		for _, other := range grouped.Rows() {
			if !value.Equal(other[1], row[1]) || !value.Equal(other[2], row[2]) ||
				value.Equal(other[0], row[0]) {
				continue
			}
			lm, ok := target.Local(fragOf(other))
			if !ok {
				continue
			}
			mu := lm.Model.Predict(nil)
			c := float64(other[3].Int())
			if mu < spec.MinCounterMean || c > mu || c < mu-2 {
				continue
			}
			sites = append(sites, Site{
				Outlier: value.Tuple{row[0], row[1], row[2]},
				Counter: value.Tuple{other[0], other[1], other[2]},
			})
			if len(sites) >= maxSites {
				return sites, nil
			}
			break // one counterbalance per outlier group
		}
	}
	return sites, nil
}

// Covers reports whether an explanation matches the ground-truth
// counterbalance on every question attribute it shares — the hit
// criterion of the Section-5.3 precision measurement. Coarser-schema
// explanations count only if they retain all question attributes.
func Covers(e explain.Explanation, qAttrs []string, gtTuple value.Tuple) bool {
	n := 0
	for i, a := range e.Attrs {
		for j, ga := range qAttrs {
			if a == ga {
				if !value.Equal(e.Tuple[i], gtTuple[j]) {
					return false
				}
				n++
			}
		}
	}
	return n == len(qAttrs)
}

// RandomQuestions samples n user questions from the result of grouping
// tab on groupBy, biased toward groups with large counts (the paper's
// worst-case bias) and with random directions.
func RandomQuestions(tab *engine.Table, groupBy []string, agg engine.AggSpec, n int, seed int64) ([]explain.UserQuestion, error) {
	grouped, err := tab.GroupBy(groupBy, []engine.AggSpec{agg})
	if err != nil {
		return nil, err
	}
	if grouped.NumRows() == 0 {
		return nil, fmt.Errorf("exp: empty query result")
	}
	rows := append([]value.Tuple(nil), grouped.Rows()...)
	aggIdx := len(groupBy)
	sort.Slice(rows, func(i, j int) bool {
		return value.Compare(rows[i][aggIdx], rows[j][aggIdx]) > 0
	})
	// Bias: draw from the top half of groups by count.
	pool := rows[:(len(rows)+1)/2]
	rng := rand.New(rand.NewSource(seed))
	out := make([]explain.UserQuestion, 0, n)
	for i := 0; i < n; i++ {
		row := pool[rng.Intn(len(pool))]
		dir := explain.Low
		if rng.Intn(2) == 1 {
			dir = explain.High
		}
		q, err := explain.QuestionFromRow(groupBy, agg, row, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// PrecisionConfig parameterizes the Section-5.3 ground-truth experiment.
type PrecisionConfig struct {
	// Table is the clean dataset to inject into.
	Table *engine.Table
	// Spec selects injection sites.
	Spec SiteSpec
	// Mining configures the measurement pass: the injected data is
	// re-mined with these (swept) thresholds before explaining.
	Mining mining.Options
	// SiteMining configures the site-discovery pass over the clean data.
	// Leave zero to reuse Mining. A sweep should pin SiteMining to one
	// lenient setting so every sweep point measures the same planted
	// ground truths.
	SiteMining mining.Options
	// NumQuestions is the number of injected outlier questions
	// (default 10).
	NumQuestions int
	// K is the explanation list length checked for the ground truth
	// (default 10).
	K int
	// Delta is the number of rows moved per injection (default 5).
	Delta int
	// Metric scores explanations; nil uses categorical distances.
	Metric *distance.Metric
}

// PrecisionResult reports how many injected counterbalances CAPE
// recovered.
type PrecisionResult struct {
	Questions int
	Found     int
}

// Precision is Found/Questions (0 when no questions ran).
func (r PrecisionResult) Precision() float64 {
	if r.Questions == 0 {
		return 0
	}
	return float64(r.Found) / float64(r.Questions)
}

// RunPrecision mines the clean data to find injection sites, then for
// each site: injects the outlier/counterbalance pair, re-mines the
// injected data with the configured thresholds, asks the "why low?"
// question, and checks whether the ground truth appears in the top-K.
func RunPrecision(cfg PrecisionConfig) (PrecisionResult, error) {
	if cfg.NumQuestions <= 0 {
		cfg.NumQuestions = 10
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 5
	}
	var res PrecisionResult

	siteMining := cfg.SiteMining
	if siteMining.MaxPatternSize == 0 && siteMining.Attributes == nil {
		siteMining = cfg.Mining
	}
	clean, err := mining.ARPMine(cfg.Table, siteMining)
	if err != nil {
		return res, err
	}
	sites, err := FindSites(cfg.Table, cfg.Spec, clean.Patterns, cfg.NumQuestions)
	if err != nil {
		return res, err
	}
	qAttrs := cfg.Spec.QuestionAttrs()
	agg := engine.AggSpec{Func: engine.Count}
	for _, site := range sites {
		injected, gt, err := dataset.InjectCounterbalance(cfg.Table, qAttrs, site.Outlier, site.Counter, cfg.Delta, "low")
		if err != nil {
			return res, err
		}
		mined, err := mining.ARPMine(injected, cfg.Mining)
		if err != nil {
			return res, err
		}
		aggValue, err := groupCount(injected, qAttrs, site.Outlier)
		if err != nil {
			return res, err
		}
		q := explain.UserQuestion{
			GroupBy: qAttrs, Agg: agg,
			Values: site.Outlier, AggValue: aggValue, Dir: explain.Low,
		}
		expls, _, err := explain.Generate(q, injected, mined.Patterns, explain.Options{K: cfg.K, Metric: cfg.Metric})
		if err != nil {
			return res, err
		}
		res.Questions++
		for _, e := range expls {
			if Covers(e, qAttrs, gt.CounterTuple) {
				res.Found++
				break
			}
		}
	}
	return res, nil
}

func groupCount(tab *engine.Table, groupBy []string, key value.Tuple) (value.V, error) {
	sel, err := tab.SelectEq(groupBy, key)
	if err != nil {
		return value.V{}, err
	}
	return value.NewInt(int64(sel.NumRows())), nil
}
