package exp

import (
	"testing"

	"cape/internal/dataset"
	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/value"
)

func crimeSpec() SiteSpec {
	return SiteSpec{TypeAttr: "type", FragAttr: "community", PredAttr: "year", MinOutlierCount: 10}
}

func crimeMiningOpts() mining.Options {
	return mining.Options{
		MaxPatternSize: 3,
		Attributes:     []string{"type", "community", "year"},
		Thresholds:     pattern.Thresholds{Theta: 0.2, LocalSupport: 3, Lambda: 0.2, GlobalSupport: 5},
		AggFuncs:       []engine.AggFunc{engine.Count},
	}
}

func TestFindSites(t *testing.T) {
	tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: 10000, Seed: 7, NumAttrs: 5, NumTypes: 6, NumCommunities: 12})
	mined, err := mining.ARPMine(tab, crimeMiningOpts())
	if err != nil {
		t.Fatal(err)
	}
	sites, err := FindSites(tab, crimeSpec(), mined.Patterns, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) == 0 {
		t.Fatal("no injection sites found")
	}
	for _, s := range sites {
		// Outlier and counter share community and year, differ in type.
		if !value.Equal(s.Outlier[1], s.Counter[1]) || !value.Equal(s.Outlier[2], s.Counter[2]) {
			t.Errorf("site must share frag/pred values: %v / %v", s.Outlier, s.Counter)
		}
		if value.Equal(s.Outlier[0], s.Counter[0]) {
			t.Errorf("site must differ in type: %v / %v", s.Outlier, s.Counter)
		}
	}
}

func TestFindSitesMissingPatterns(t *testing.T) {
	tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: 1000, Seed: 7, NumAttrs: 5})
	if _, err := FindSites(tab, crimeSpec(), nil, 5); err == nil {
		t.Error("missing required patterns should error")
	}
}

func TestCovers(t *testing.T) {
	qAttrs := []string{"type", "community", "year"}
	gt := value.Tuple{value.NewString("Theft"), value.NewInt(12), value.NewInt(2007)}
	p := pattern.Pattern{F: []string{"community", "type"}, V: []string{"year"},
		Agg: engine.AggSpec{Func: engine.Count}, Model: regress.Const}
	exact := explain.Explanation{
		Refined: p,
		Attrs:   []string{"community", "type", "year"},
		Tuple:   value.Tuple{value.NewInt(12), value.NewString("Theft"), value.NewInt(2007)},
	}
	if !Covers(exact, qAttrs, gt) {
		t.Error("exact match should cover")
	}
	wrongYear := exact
	wrongYear.Tuple = value.Tuple{value.NewInt(12), value.NewString("Theft"), value.NewInt(2008)}
	if Covers(wrongYear, qAttrs, gt) {
		t.Error("wrong year must not cover")
	}
	coarse := explain.Explanation{
		Refined: p,
		Attrs:   []string{"community", "year"},
		Tuple:   value.Tuple{value.NewInt(12), value.NewInt(2007)},
	}
	if Covers(coarse, qAttrs, gt) {
		t.Error("coarser schema lacking the type attribute must not cover")
	}
}

func TestRandomQuestions(t *testing.T) {
	tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: 3000, Seed: 3, NumAttrs: 5})
	qs, err := RandomQuestions(tab, []string{"type", "community"}, engine.AggSpec{Func: engine.Count}, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 8 {
		t.Fatalf("questions = %d", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("invalid question: %v", err)
		}
		if q.AggValue.Int() <= 0 {
			t.Errorf("question about empty group: %v", q)
		}
	}
	// Determinism.
	qs2, _ := RandomQuestions(tab, []string{"type", "community"}, engine.AggSpec{Func: engine.Count}, 8, 42)
	for i := range qs {
		if !qs[i].Values.Equal(qs2[i].Values) || qs[i].Dir != qs2[i].Dir {
			t.Error("RandomQuestions not deterministic for fixed seed")
		}
	}
}

func TestRandomQuestionsEmptyResult(t *testing.T) {
	tab := engine.NewTable(engine.Schema{{Name: "a", Kind: value.Int}})
	if _, err := RandomQuestions(tab, []string{"a"}, engine.AggSpec{Func: engine.Count}, 3, 1); err == nil {
		t.Error("empty table should error")
	}
}

func TestRunPrecision(t *testing.T) {
	tab := dataset.GenerateCrime(dataset.CrimeConfig{Rows: 10000, Seed: 7, NumAttrs: 5, NumTypes: 6, NumCommunities: 12})
	metric := distance.NewMetric().
		SetFunc("year", distance.Numeric{Scale: 3}).
		SetFunc("community", distance.Numeric{Scale: 2})
	res, err := RunPrecision(PrecisionConfig{
		Table:        tab,
		Spec:         crimeSpec(),
		Mining:       crimeMiningOpts(),
		NumQuestions: 4,
		K:            100,
		Delta:        5,
		Metric:       metric,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions == 0 {
		t.Fatal("no questions ran")
	}
	if res.Found < 0 || res.Found > res.Questions {
		t.Errorf("found %d of %d", res.Found, res.Questions)
	}
	if p := res.Precision(); p < 0 || p > 1 {
		t.Errorf("precision %g out of range", p)
	}
	// With a generous K the ground truth should be recovered at least
	// once — otherwise the whole pipeline is broken.
	if res.Found == 0 {
		t.Error("K=100 recovered no ground truths at all")
	}
}

func TestPrecisionResultZero(t *testing.T) {
	if (PrecisionResult{}).Precision() != 0 {
		t.Error("zero questions should give precision 0")
	}
}
