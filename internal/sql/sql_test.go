package sql

import (
	"strings"
	"testing"

	"cape/internal/engine"
	"cape/internal/value"
)

func pubCatalog(t *testing.T) Catalog {
	t.Helper()
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "year", Kind: value.Int},
		{Name: "venue", Kind: value.String},
		{Name: "cites", Kind: value.Null},
	})
	rows := []struct {
		a     string
		y     int64
		v     string
		cites value.V
	}{
		{"AX", 2006, "SIGKDD", value.NewInt(10)},
		{"AX", 2006, "SIGKDD", value.NewInt(4)},
		{"AX", 2007, "SIGKDD", value.NewInt(1)},
		{"AX", 2007, "ICDE", value.NewInt(7)},
		{"AX", 2007, "ICDE", value.NewInt(3)},
		{"AY", 2006, "ICDE", value.NewNull()},
		{"AY", 2007, "VLDB", value.NewInt(2)},
	}
	for _, r := range rows {
		tab.MustAppend(value.Tuple{
			value.NewString(r.a), value.NewInt(r.y), value.NewString(r.v), r.cites,
		})
	}
	return Catalog{"pub": tab}
}

func mustRun(t *testing.T, cat Catalog, q string) *engine.Table {
	t.Helper()
	out, err := Run(q, cat)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return out
}

func TestSelectStar(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT * FROM pub")
	if out.NumRows() != 7 || len(out.Schema()) != 4 {
		t.Errorf("rows=%d cols=%d", out.NumRows(), len(out.Schema()))
	}
}

func TestProjectionAndAlias(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT author AS a, venue FROM pub")
	if out.Schema()[0].Name != "a" || out.Schema()[1].Name != "venue" {
		t.Errorf("schema = %v", out.Schema().Names())
	}
	if out.NumRows() != 7 {
		t.Errorf("rows = %d", out.NumRows())
	}
}

func TestDistinct(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT DISTINCT author FROM pub")
	if out.NumRows() != 2 {
		t.Errorf("distinct authors = %d", out.NumRows())
	}
}

func TestWhereComparisons(t *testing.T) {
	cat := pubCatalog(t)
	cases := []struct {
		q    string
		want int
	}{
		{"SELECT * FROM pub WHERE year = 2007", 4},
		{"SELECT * FROM pub WHERE year != 2007", 3},
		{"SELECT * FROM pub WHERE year > 2006", 4},
		{"SELECT * FROM pub WHERE year >= 2006", 7},
		{"SELECT * FROM pub WHERE year < 2007", 3},
		{"SELECT * FROM pub WHERE year <= 2006", 3},
		{"SELECT * FROM pub WHERE venue = 'SIGKDD'", 3},
		{"SELECT * FROM pub WHERE venue = 'SIGKDD' AND year = 2007", 1},
		{"SELECT * FROM pub WHERE venue = 'SIGKDD' OR venue = 'VLDB'", 4},
		{"SELECT * FROM pub WHERE NOT venue = 'SIGKDD'", 4},
		{"SELECT * FROM pub WHERE (venue = 'SIGKDD' OR venue = 'ICDE') AND year = 2007", 3},
		{"SELECT * FROM pub WHERE cites IS NULL", 1},
		{"SELECT * FROM pub WHERE cites IS NOT NULL", 6},
		{"SELECT * FROM pub WHERE cites > 5", 2},
		{"SELECT * FROM pub WHERE author = 'nobody'", 0},
	}
	for _, c := range cases {
		out := mustRun(t, cat, c.q)
		if out.NumRows() != c.want {
			t.Errorf("%s: rows = %d, want %d", c.q, out.NumRows(), c.want)
		}
	}
}

func TestNullComparisonsNeverMatch(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT * FROM pub WHERE cites = NULL")
	if out.NumRows() != 0 {
		t.Errorf("= NULL matched %d rows, want 0 (three-valued logic)", out.NumRows())
	}
}

func TestGroupByCount(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT author, year, count(*) AS n FROM pub GROUP BY author, year ORDER BY author, year")
	want := [][3]interface{}{
		{"AX", int64(2006), int64(2)},
		{"AX", int64(2007), int64(3)},
		{"AY", int64(2006), int64(1)},
		{"AY", int64(2007), int64(1)},
	}
	if out.NumRows() != len(want) {
		t.Fatalf("groups = %d", out.NumRows())
	}
	for i, w := range want {
		r := out.Row(i)
		if r[0].Str() != w[0].(string) || r[1].Int() != w[1].(int64) || r[2].Int() != w[2].(int64) {
			t.Errorf("row %d = %v, want %v", i, r, w)
		}
	}
	if out.Schema()[2].Name != "n" {
		t.Errorf("alias lost: %v", out.Schema().Names())
	}
}

func TestGroupByMultipleAggregates(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT venue, count(*), sum(cites), avg(cites), min(cites), max(cites) FROM pub GROUP BY venue ORDER BY venue")
	// Venues sorted: ICDE, SIGKDD, VLDB.
	r := out.Row(0) // ICDE: cites 7, 3, NULL
	if r[1].Int() != 3 || r[2].Int() != 10 || r[3].Float() != 5 || r[4].Int() != 3 || r[5].Int() != 7 {
		t.Errorf("ICDE aggregates = %v", r)
	}
}

func TestSelectItemOrderIndependentOfGroupBy(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT count(*), author FROM pub GROUP BY author ORDER BY author")
	if out.Schema()[0].Name != "count(*)" || out.Schema()[1].Name != "author" {
		t.Errorf("schema = %v", out.Schema().Names())
	}
	if out.Row(0)[0].Int() != 5 || out.Row(0)[1].Str() != "AX" {
		t.Errorf("row 0 = %v", out.Row(0))
	}
}

func TestGlobalAggregate(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT count(*) FROM pub")
	if out.NumRows() != 1 || out.Row(0)[0].Int() != 7 {
		t.Errorf("global count = %v", out.Rows())
	}
}

func TestWhereThenGroup(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT venue, count(*) FROM pub WHERE author = 'AX' GROUP BY venue ORDER BY venue")
	if out.NumRows() != 2 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	if out.Row(0)[0].Str() != "ICDE" || out.Row(0)[1].Int() != 2 {
		t.Errorf("row 0 = %v", out.Row(0))
	}
	if out.Row(1)[0].Str() != "SIGKDD" || out.Row(1)[1].Int() != 3 {
		t.Errorf("row 1 = %v", out.Row(1))
	}
}

func TestOrderByDesc(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT author, count(*) AS n FROM pub GROUP BY author ORDER BY n DESC, author")
	if out.Row(0)[0].Str() != "AX" || out.Row(1)[0].Str() != "AY" {
		t.Errorf("desc order wrong: %v", out.Rows())
	}
}

func TestLimit(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT * FROM pub LIMIT 3")
	if out.NumRows() != 3 {
		t.Errorf("limit rows = %d", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT * FROM pub LIMIT 0")
	if out.NumRows() != 0 {
		t.Errorf("limit 0 rows = %d", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT * FROM pub LIMIT 100")
	if out.NumRows() != 7 {
		t.Errorf("oversized limit rows = %d", out.NumRows())
	}
}

func TestTrailingSemicolonAndKeywordCase(t *testing.T) {
	cat := pubCatalog(t)
	// Keywords and aggregate names are case-insensitive.
	out := mustRun(t, cat, "select author, COUNT(*) from pub group by author;")
	if out.NumRows() != 2 {
		t.Errorf("groups = %d, want 2", out.NumRows())
	}
	// Column identifiers are case-sensitive: wrong case is an error.
	if _, err := Run("select Author from pub", cat); err == nil {
		t.Error("wrong-case column should error")
	}
}

func TestStringEscapes(t *testing.T) {
	tab := engine.NewTable(engine.Schema{{Name: "s", Kind: value.String}})
	tab.MustAppend(value.Tuple{value.NewString("it's")})
	tab.MustAppend(value.Tuple{value.NewString("plain")})
	cat := Catalog{"t": tab}
	out := mustRun(t, cat, "SELECT * FROM t WHERE s = 'it''s'")
	if out.NumRows() != 1 {
		t.Errorf("escaped quote match = %d rows", out.NumRows())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM pub",
		"SELECT * FROM",
		"SELECT * pub",
		"SELECT * FROM pub WHERE",
		"SELECT * FROM pub WHERE year",
		"SELECT * FROM pub WHERE year ==",
		"SELECT * FROM pub WHERE year = ",
		"SELECT * FROM pub GROUP year",
		"SELECT * FROM pub ORDER year",
		"SELECT * FROM pub LIMIT x",
		"SELECT * FROM pub LIMIT -1",
		"SELECT median(x) FROM pub",
		"SELECT sum(*) FROM pub",
		"SELECT * FROM pub extra",
		"SELECT * FROM pub WHERE s = 'unterminated",
		"SELECT * FROM pub WHERE a ! b",
		"SELECT * FROM pub WHERE year IS 5",
		"SELECT a AS FROM pub",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted bad query %q", q)
		}
	}
}

func TestExecErrors(t *testing.T) {
	cat := pubCatalog(t)
	bad := []string{
		"SELECT * FROM nope",
		"SELECT ghost FROM pub",
		"SELECT * FROM pub WHERE ghost = 1",
		"SELECT author FROM pub GROUP BY year",
		"SELECT * FROM pub GROUP BY year",
		"SELECT author, count(*) FROM pub GROUP BY author ORDER BY ghost",
	}
	for _, q := range bad {
		if _, err := Run(q, cat); err == nil {
			t.Errorf("accepted bad query %q", q)
		}
	}
}

func TestExprString(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE NOT (a = 1 AND b != 'x') OR c IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	s := stmt.Where.String()
	for _, want := range []string{"NOT", "a = 1", "b != 'x'", "c IS NOT NULL", "OR"} {
		if !strings.Contains(s, want) {
			t.Errorf("Where.String() = %q missing %q", s, want)
		}
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	tab := engine.NewTable(engine.Schema{{Name: "x", Kind: value.Int}})
	tab.MustAppend(value.Tuple{value.NewInt(-5)})
	tab.MustAppend(value.Tuple{value.NewInt(5)})
	cat := Catalog{"t": tab}
	out := mustRun(t, cat, "SELECT * FROM t WHERE x = -5")
	if out.NumRows() != 1 {
		t.Errorf("negative literal matched %d rows", out.NumRows())
	}
	out = mustRun(t, cat, "SELECT * FROM t WHERE x < -1")
	if out.NumRows() != 1 {
		t.Errorf("negative comparison matched %d rows", out.NumRows())
	}
}

func TestPaperQuery(t *testing.T) {
	// The paper's Q0, verbatim modulo table name.
	cat := pubCatalog(t)
	out := mustRun(t, cat, `SELECT author, year, venue, count(*) AS pubcnt
FROM pub
GROUP BY author, year, venue`)
	if out.Schema().Names()[3] != "pubcnt" {
		t.Errorf("schema = %v", out.Schema().Names())
	}
	if out.NumRows() != 5 {
		t.Errorf("groups = %d, want 5", out.NumRows())
	}
}

func TestHaving(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT author, count(*) AS n FROM pub GROUP BY author HAVING n > 2 ORDER BY author")
	if out.NumRows() != 1 || out.Row(0)[0].Str() != "AX" {
		t.Errorf("HAVING result = %v", out.Rows())
	}
	// HAVING can reference the canonical aggregate name too.
	out = mustRun(t, cat, "SELECT venue, count(*) FROM pub GROUP BY venue HAVING venue != 'VLDB' ORDER BY venue")
	if out.NumRows() != 2 {
		t.Errorf("HAVING on group column = %v", out.Rows())
	}
}

func TestHavingErrors(t *testing.T) {
	cat := pubCatalog(t)
	if _, err := Parse("SELECT * FROM pub HAVING x = 1"); err == nil {
		t.Error("HAVING without GROUP BY should not parse")
	}
	if _, err := Run("SELECT author, count(*) FROM pub GROUP BY author HAVING ghost > 1", cat); err == nil {
		t.Error("HAVING over unknown column should error")
	}
}

func TestHavingAggregateCallSyntax(t *testing.T) {
	cat := pubCatalog(t)
	out := mustRun(t, cat, "SELECT author, count(*) FROM pub GROUP BY author HAVING count(*) > 2")
	if out.NumRows() != 1 || out.Row(0)[0].Str() != "AX" {
		t.Errorf("HAVING count(*) result = %v", out.Rows())
	}
	out = mustRun(t, cat, "SELECT venue, sum(cites) FROM pub GROUP BY venue HAVING sum(cites) >= 10 ORDER BY venue")
	if out.NumRows() != 2 { // ICDE 10, SIGKDD 15
		t.Errorf("HAVING sum(cites) result = %v", out.Rows())
	}
	// The aggregate in HAVING must have been computed (it is resolved by
	// output column name).
	if _, err := Run("SELECT author, count(*) FROM pub GROUP BY author HAVING sum(cites) > 1", cat); err == nil {
		t.Error("HAVING over an unselected aggregate should error")
	}
	if _, err := Parse("SELECT a, count(*) FROM t GROUP BY a HAVING median(x) > 1"); err == nil {
		t.Error("unknown aggregate in HAVING should not parse")
	}
}
