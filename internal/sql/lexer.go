// Package sql implements the small SQL dialect the CAPE paper's
// interface assumes: single-table SELECT with projection, DISTINCT,
// WHERE predicates, GROUP BY with the aggregate functions of
// Definition 2, ORDER BY, and LIMIT. Queries compile onto the relational
// engine's operators; the explanation CLI uses it to pose aggregate
// queries and user questions the way the paper writes them:
//
//	SELECT author, year, venue, count(*) AS pubcnt
//	FROM pub
//	GROUP BY author, year, venue
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep their case
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// keywords of the dialect. Aggregate function names are ordinary
// identifiers followed by '('.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "AS": true,
	"ASC": true, "DESC": true, "IS": true, "NULL": true,
}

// lex tokenizes a query. It returns an error with a byte offset for
// unterminated strings and unexpected characters.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				out = append(out, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				out = append(out, token{kind: tokIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' && startsValue(out)):
			start := i
			if c == '-' {
				i++
			}
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			out = append(out, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // '' escape
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			out = append(out, token{kind: tokString, text: sb.String(), pos: start})
		case c == '<' || c == '>' || c == '!':
			start := i
			i++
			if i < n && input[i] == '=' {
				i++
			}
			sym := input[start:i]
			if sym == "!" {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d (did you mean !=?)", start)
			}
			out = append(out, token{kind: tokSymbol, text: sym, pos: start})
		case c == '=' || c == ',' || c == '(' || c == ')' || c == '*' || c == ';':
			out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}

// startsValue reports whether a '-' at the current position begins a
// negative literal (previous token was an operator or keyword) rather
// than being part of an identifier context.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokSymbol:
		return last.text != ")" && last.text != "*"
	case tokKeyword:
		return true
	default:
		return false
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
