package sql

import (
	"strings"
	"testing"

	"cape/internal/engine"
	"cape/internal/value"
)

// FuzzParse asserts the parser never panics and that accepted statements
// execute (or fail cleanly) against a small catalog.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, count(*) FROM t GROUP BY a",
		"SELECT a AS x, sum(b) FROM t WHERE b > 1 AND a != 'q' GROUP BY a ORDER BY x DESC LIMIT 3",
		"SELECT DISTINCT a FROM t WHERE a IS NOT NULL",
		"SELECT * FROM t WHERE NOT (a = 1 OR b < -2.5)",
		"select a from t where a = 'it''s';",
		"SELECT min(b), max(b), avg(b) FROM t",
		"SELECT * FROM t WHERE a = NULL",
		"SELECT",
		"SELECT * FROM t WHERE 'unterminated",
		"SELECT * FROM t LIMIT 99999999999999999999",
		"SELECT (((((((((( FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	tab := engine.NewTable(engine.Schema{
		{Name: "a", Kind: value.Null},
		{Name: "b", Kind: value.Null},
	})
	tab.MustAppend(value.Tuple{value.NewString("x"), value.NewInt(1)})
	tab.MustAppend(value.Tuple{value.NewInt(3), value.NewNull()})
	cat := Catalog{"t": tab}

	f.Fuzz(func(t *testing.T, query string) {
		if len(query) > 4096 {
			return
		}
		stmt, err := Parse(query)
		if err != nil {
			return
		}
		// Parsed statements must execute or fail with an error, never
		// panic; output, if any, must respect LIMIT.
		out, err := Exec(stmt, cat)
		if err != nil {
			return
		}
		if stmt.Limit >= 0 && out.NumRows() > stmt.Limit {
			t.Errorf("LIMIT %d violated: %d rows", stmt.Limit, out.NumRows())
		}
		// Re-rendering the WHERE clause must itself parse.
		if stmt.Where != nil {
			requery := "SELECT * FROM t WHERE " + stmt.Where.String()
			if _, err := Parse(requery); err != nil {
				t.Errorf("Where.String() produced unparsable SQL %q: %v", requery, err)
			}
		}
	})
}

// FuzzLex asserts the lexer terminates without panicking on arbitrary
// input and that token positions are monotonically non-decreasing.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"", "'", "a'b", "<=>=!=", "1.2.3e++4", "--5", "\x00\xff"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 4096 {
			return
		}
		toks, err := lex(input)
		if err != nil {
			return
		}
		prev := -1
		for _, tok := range toks {
			if tok.pos < prev {
				t.Errorf("token positions regressed: %d after %d", tok.pos, prev)
			}
			prev = tok.pos
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Error("token stream must end with EOF")
		}
	})
}

// FuzzParseIdempotent: strings.ToUpper of keywords must not change parse
// outcomes for a fixed-shape query template.
func FuzzParseIdempotent(f *testing.F) {
	f.Add("select a from t where a = 1")
	f.Fuzz(func(t *testing.T, q string) {
		if len(q) > 1024 {
			return
		}
		s1, err1 := Parse(q)
		s2, err2 := Parse(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("parse not deterministic")
		}
		if err1 == nil && s1.From != s2.From {
			t.Fatal("parse not deterministic: FROM differs")
		}
		_ = strings.ToUpper
	})
}
