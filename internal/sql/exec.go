package sql

import (
	"fmt"
	"sort"

	"cape/internal/engine"
	"cape/internal/value"
)

// Catalog resolves table names for execution.
type Catalog map[string]*engine.Table

// Run parses and executes a query against the catalog.
func Run(query string, cat Catalog) (*engine.Table, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Exec(stmt, cat)
}

// Exec evaluates a parsed statement against the catalog.
func Exec(stmt *SelectStmt, cat Catalog) (*engine.Table, error) {
	base, ok := cat[stmt.From]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", stmt.From)
	}

	cur := base
	if stmt.Where != nil {
		pred, err := compilePredicate(stmt.Where, base.Schema())
		if err != nil {
			return nil, err
		}
		cur = cur.Select(pred)
	}

	hasAgg := false
	for _, item := range stmt.Items {
		if item.Agg != nil {
			hasAgg = true
		}
	}

	var out *engine.Table
	var err error
	switch {
	case hasAgg || len(stmt.GroupBy) > 0:
		out, err = execAggregate(stmt, cur)
	default:
		out, err = execProjection(stmt, cur)
	}
	if err != nil {
		return nil, err
	}

	if stmt.Having != nil {
		// HAVING sees the output schema: group columns and aggregate
		// aliases both resolve.
		pred, err := compilePredicate(stmt.Having, out.Schema())
		if err != nil {
			return nil, err
		}
		out = out.Select(pred)
	}
	if len(stmt.OrderBy) > 0 {
		if err := orderBy(out, stmt.OrderBy); err != nil {
			return nil, err
		}
	}
	if stmt.Limit >= 0 && out.NumRows() > stmt.Limit {
		limited := engine.NewTable(out.Schema())
		for i := 0; i < stmt.Limit; i++ {
			limited.MustAppend(out.Row(i))
		}
		out = limited
	}
	return out, nil
}

// execProjection handles SELECT [DISTINCT] cols|* FROM ... (no grouping).
func execProjection(stmt *SelectStmt, cur *engine.Table) (*engine.Table, error) {
	var cols []string
	var names []string
	for _, item := range stmt.Items {
		if item.Star {
			if item.Alias != "" {
				return nil, fmt.Errorf("sql: cannot alias *")
			}
			for _, c := range cur.Schema() {
				cols = append(cols, c.Name)
				names = append(names, c.Name)
			}
			continue
		}
		cols = append(cols, item.Column)
		names = append(names, item.OutputName())
	}
	var out *engine.Table
	var err error
	if stmt.Distinct {
		out, err = cur.DistinctProject(cols)
	} else {
		out, err = cur.Project(cols)
	}
	if err != nil {
		return nil, err
	}
	return rename(out, names), nil
}

// execAggregate handles grouped (and global-group) aggregation.
func execAggregate(stmt *SelectStmt, cur *engine.Table) (*engine.Table, error) {
	inGroup := make(map[string]bool, len(stmt.GroupBy))
	for _, g := range stmt.GroupBy {
		inGroup[g] = true
	}
	var aggs []engine.AggSpec
	for _, item := range stmt.Items {
		switch {
		case item.Star:
			return nil, fmt.Errorf("sql: * is not allowed with GROUP BY")
		case item.Agg != nil:
			aggs = append(aggs, item.Agg.Spec())
		default:
			if !inGroup[item.Column] {
				return nil, fmt.Errorf("sql: column %q must appear in GROUP BY or inside an aggregate", item.Column)
			}
		}
	}
	grouped, err := cur.GroupBy(stmt.GroupBy, aggs)
	if err != nil {
		return nil, err
	}

	// Reorder/rename into SELECT order.
	sch := grouped.Schema()
	srcIdx := make([]int, 0, len(stmt.Items))
	names := make([]string, 0, len(stmt.Items))
	aggSeen := 0
	for _, item := range stmt.Items {
		if item.Agg != nil {
			// Aggregates appear after the group columns, in aggs order;
			// duplicates of the same aggregate share a column.
			ci := len(stmt.GroupBy) + aggSeen
			aggSeen++
			srcIdx = append(srcIdx, ci)
		} else {
			ci := sch.Index(item.Column)
			if ci < 0 {
				return nil, fmt.Errorf("sql: internal: lost group column %q", item.Column)
			}
			srcIdx = append(srcIdx, ci)
		}
		names = append(names, item.OutputName())
	}

	outSch := make(engine.Schema, len(srcIdx))
	for i, ci := range srcIdx {
		outSch[i] = engine.Column{Name: names[i], Kind: sch[ci].Kind}
	}
	out := engine.NewTable(outSch)
	for _, row := range grouped.Rows() {
		proj := make(value.Tuple, len(srcIdx))
		for i, ci := range srcIdx {
			proj[i] = row[ci]
		}
		out.MustAppend(proj)
	}
	if stmt.Distinct {
		return out.DistinctProject(out.Schema().Names())
	}
	return out, nil
}

// rename rebuilds a table with new column names (same data).
func rename(t *engine.Table, names []string) *engine.Table {
	sch := t.Schema().Clone()
	changed := false
	for i := range sch {
		if sch[i].Name != names[i] {
			sch[i].Name = names[i]
			changed = true
		}
	}
	if !changed {
		return t
	}
	out := engine.NewTable(sch)
	for _, r := range t.Rows() {
		out.MustAppend(r)
	}
	return out
}

// orderBy sorts in place honoring per-key direction.
func orderBy(t *engine.Table, keys []OrderKey) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		ci := t.Schema().Index(k.Column)
		if ci < 0 {
			return fmt.Errorf("sql: ORDER BY references unknown column %q", k.Column)
		}
		idx[i] = ci
	}
	rows := t.Rows()
	sort.SliceStable(rows, func(a, b int) bool {
		for i, ci := range idx {
			c := value.Compare(rows[a][ci], rows[b][ci])
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// compilePredicate turns a WHERE expression into a row predicate with
// column indices resolved once.
func compilePredicate(e Expr, sch engine.Schema) (func(value.Tuple) bool, error) {
	eval, err := compileBool(e, sch)
	if err != nil {
		return nil, err
	}
	return eval, nil
}

// compileBool compiles boolean expressions.
func compileBool(e Expr, sch engine.Schema) (func(value.Tuple) bool, error) {
	switch n := e.(type) {
	case Logical:
		l, err := compileBool(n.L, sch)
		if err != nil {
			return nil, err
		}
		r, err := compileBool(n.R, sch)
		if err != nil {
			return nil, err
		}
		if n.And {
			return func(row value.Tuple) bool { return l(row) && r(row) }, nil
		}
		return func(row value.Tuple) bool { return l(row) || r(row) }, nil
	case Not:
		inner, err := compileBool(n.E, sch)
		if err != nil {
			return nil, err
		}
		return func(row value.Tuple) bool { return !inner(row) }, nil
	case IsNull:
		scalar, err := compileScalar(n.E, sch)
		if err != nil {
			return nil, err
		}
		negate := n.Negate
		return func(row value.Tuple) bool { return scalar(row).IsNull() != negate }, nil
	case Compare:
		l, err := compileScalar(n.L, sch)
		if err != nil {
			return nil, err
		}
		r, err := compileScalar(n.R, sch)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(row value.Tuple) bool {
			lv, rv := l(row), r(row)
			// SQL three-valued logic collapsed to false: comparisons
			// against NULL never match.
			if lv.IsNull() || rv.IsNull() {
				return false
			}
			c := value.Compare(lv, rv)
			switch op {
			case OpEq:
				return c == 0
			case OpNe:
				return c != 0
			case OpLt:
				return c < 0
			case OpLe:
				return c <= 0
			case OpGt:
				return c > 0
			default:
				return c >= 0
			}
		}, nil
	default:
		return nil, fmt.Errorf("sql: expression %s is not boolean", e)
	}
}

// compileScalar compiles column references and literals.
func compileScalar(e Expr, sch engine.Schema) (func(value.Tuple) value.V, error) {
	switch n := e.(type) {
	case ColumnRef:
		ci := sch.Index(n.Name)
		if ci < 0 {
			return nil, fmt.Errorf("sql: unknown column %q", n.Name)
		}
		return func(row value.Tuple) value.V { return row[ci] }, nil
	case Literal:
		v := n.Val
		return func(value.Tuple) value.V { return v }, nil
	default:
		return nil, fmt.Errorf("sql: expression %s is not scalar", e)
	}
}
