package sql

import (
	"strings"

	"cape/internal/engine"
	"cape/internal/value"
)

// SelectStmt is the parsed form of a query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     string
	Where    Expr // nil when absent
	GroupBy  []string
	Having   Expr // nil when absent; evaluated over the grouped output
	OrderBy  []OrderKey
	Limit    int // -1 when absent
}

// SelectItem is one projection entry: a bare star, a column reference, or
// an aggregate call, optionally aliased.
type SelectItem struct {
	Star   bool
	Column string
	Agg    *AggExpr
	Alias  string
}

// OutputName is the column name the item produces: the alias if present,
// otherwise the column name or the aggregate's canonical rendering.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.Agg != nil {
		return s.Agg.Spec().String()
	}
	return s.Column
}

// AggExpr is an aggregate call, e.g. count(*) or sum(amount).
type AggExpr struct {
	Func engine.AggFunc
	Arg  string // empty for star
	Star bool
}

// Spec converts to the engine's aggregate representation.
func (a AggExpr) Spec() engine.AggSpec {
	if a.Star {
		return engine.AggSpec{Func: a.Func}
	}
	return engine.AggSpec{Func: a.Func, Arg: a.Arg}
}

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	Column string
	Desc   bool
}

// Expr is a boolean or scalar expression evaluable over a row.
type Expr interface {
	// String renders the expression in SQL syntax.
	String() string
	// columns appends the column names the expression references.
	columns(dst []string) []string
}

// ColumnRef references a column by name.
type ColumnRef struct{ Name string }

func (c ColumnRef) String() string                { return c.Name }
func (c ColumnRef) columns(dst []string) []string { return append(dst, c.Name) }

// Literal is a constant value.
type Literal struct{ Val value.V }

func (l Literal) String() string {
	if l.Val.Kind() == value.String {
		return "'" + strings.ReplaceAll(l.Val.Str(), "'", "''") + "'"
	}
	if l.Val.IsNull() {
		return "NULL"
	}
	return l.Val.String()
}
func (l Literal) columns(dst []string) []string { return dst }

// CompareOp enumerates comparison operators.
type CompareOp uint8

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var compareOpNames = map[CompareOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

// Compare is a binary comparison between two scalar expressions.
type Compare struct {
	Op   CompareOp
	L, R Expr
}

func (c Compare) String() string {
	return c.L.String() + " " + compareOpNames[c.Op] + " " + c.R.String()
}
func (c Compare) columns(dst []string) []string {
	return c.R.columns(c.L.columns(dst))
}

// Logical is AND/OR of two boolean expressions.
type Logical struct {
	And  bool // true = AND, false = OR
	L, R Expr
}

func (l Logical) String() string {
	op := " OR "
	if l.And {
		op = " AND "
	}
	return "(" + l.L.String() + op + l.R.String() + ")"
}
func (l Logical) columns(dst []string) []string {
	return l.R.columns(l.L.columns(dst))
}

// Not negates a boolean expression.
type Not struct{ E Expr }

func (n Not) String() string                { return "NOT (" + n.E.String() + ")" }
func (n Not) columns(dst []string) []string { return n.E.columns(dst) }

// IsNull tests a column for NULL (negated when Negate is set).
type IsNull struct {
	E      Expr
	Negate bool
}

func (i IsNull) String() string {
	if i.Negate {
		return i.E.String() + " IS NOT NULL"
	}
	return i.E.String() + " IS NULL"
}
func (i IsNull) columns(dst []string) []string { return i.E.columns(dst) }
