package sql

import (
	"fmt"

	"cape/internal/engine"
)

// AggregateQuery extracts the (group-by attributes, aggregate) pair from
// a statement of the shape the CAPE user question requires:
//
//	SELECT g1, ..., gn, agg(x) FROM t GROUP BY g1, ..., gn
//
// Exactly one aggregate item is allowed; every non-aggregate item must be
// a group-by column; WHERE/ORDER BY/LIMIT are rejected because a user
// question ranges over the full query result.
func AggregateQuery(stmt *SelectStmt) (groupBy []string, agg engine.AggSpec, err error) {
	if len(stmt.GroupBy) == 0 {
		return nil, agg, fmt.Errorf("sql: user question query needs GROUP BY")
	}
	if stmt.Where != nil {
		return nil, agg, fmt.Errorf("sql: user question query must not have WHERE (ask about the full result)")
	}
	if len(stmt.OrderBy) > 0 || stmt.Limit >= 0 || stmt.Distinct || stmt.Having != nil {
		return nil, agg, fmt.Errorf("sql: user question query must not use HAVING, ORDER BY, LIMIT, or DISTINCT")
	}
	var aggItem *AggExpr
	for _, item := range stmt.Items {
		switch {
		case item.Star:
			return nil, agg, fmt.Errorf("sql: * is not allowed in a user question query")
		case item.Agg != nil:
			if aggItem != nil {
				return nil, agg, fmt.Errorf("sql: user question query needs exactly one aggregate")
			}
			aggItem = item.Agg
		}
	}
	if aggItem == nil {
		return nil, agg, fmt.Errorf("sql: user question query needs an aggregate item")
	}
	inSelect := map[string]bool{}
	for _, item := range stmt.Items {
		if item.Agg == nil && !item.Star {
			inSelect[item.Column] = true
		}
	}
	for _, g := range stmt.GroupBy {
		if !inSelect[g] {
			return nil, agg, fmt.Errorf("sql: group-by column %q missing from SELECT list", g)
		}
	}
	return stmt.GroupBy, aggItem.Spec(), nil
}
