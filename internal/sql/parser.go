package sql

import (
	"fmt"
	"strconv"
	"strings"

	"cape/internal/engine"
	"cape/internal/value"
)

// Parse turns a query string into a SelectStmt.
func Parse(query string) (*SelectStmt, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	p.acceptSymbol(";")
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: "+format+" (offset %d)", append(args, p.peek().pos)...)
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q, got %s", sym, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	return "", p.errf("expected identifier, got %s", p.peek())
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	if p.acceptKeyword("WHERE") {
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = expr
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		if len(stmt.GroupBy) == 0 {
			return nil, p.errf("HAVING requires GROUP BY")
		}
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Having = expr
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Column: col}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, got %s", t)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

// parseSelectItem handles "*", "col [AS alias]", and "agg(arg) [AS alias]".
func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	t := p.peek()
	if t.kind != tokIdent {
		return SelectItem{}, p.errf("expected column or aggregate, got %s", t)
	}
	name := t.text
	p.next()

	var item SelectItem
	if p.acceptSymbol("(") {
		fn, err := engine.ParseAggFunc(name)
		if err != nil {
			return SelectItem{}, p.errf("unknown aggregate function %q", name)
		}
		agg := &AggExpr{Func: fn}
		if p.acceptSymbol("*") {
			agg.Star = true
		} else {
			arg, err := p.expectIdent()
			if err != nil {
				return SelectItem{}, err
			}
			agg.Arg = arg
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectItem{}, err
		}
		if agg.Star && fn != engine.Count {
			return SelectItem{}, p.errf("%s(*) is not valid; only count(*)", strings.ToLower(fn.String()))
		}
		item = SelectItem{Agg: agg}
	} else {
		item = SelectItem{Column: name}
	}

	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

// Expression grammar: or := and (OR and)* ; and := unary (AND unary)* ;
// unary := NOT unary | primary ; primary := '(' or ')' | operand
// ((cmp operand) | IS [NOT] NULL).
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Logical{And: false, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = Logical{And: true, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{E: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	if p.acceptSymbol("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IS") {
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return IsNull{E: left, Negate: negate}, nil
	}
	op, err := p.parseCompareOp()
	if err != nil {
		return nil, err
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return Compare{Op: op, L: left, R: right}, nil
}

func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.next()
		// An aggregate call used as an operand (HAVING count(*) > 2)
		// resolves to the aggregate's output column.
		if p.acceptSymbol("(") {
			fn, err := engine.ParseAggFunc(t.text)
			if err != nil {
				return nil, p.errf("unknown aggregate function %q", t.text)
			}
			agg := AggExpr{Func: fn}
			if p.acceptSymbol("*") {
				agg.Star = true
			} else {
				arg, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			if agg.Star && fn != engine.Count {
				return nil, p.errf("%s(*) is not valid; only count(*)", strings.ToLower(fn.String()))
			}
			return ColumnRef{Name: agg.Spec().String()}, nil
		}
		return ColumnRef{Name: t.text}, nil
	case tokNumber:
		p.next()
		return Literal{Val: value.Parse(t.text)}, nil
	case tokString:
		p.next()
		return Literal{Val: value.NewString(t.text)}, nil
	case tokKeyword:
		if t.text == "NULL" {
			p.next()
			return Literal{Val: value.NewNull()}, nil
		}
	}
	return nil, p.errf("expected column, literal, or NULL, got %s", t)
}

func (p *parser) parseCompareOp() (CompareOp, error) {
	t := p.peek()
	if t.kind != tokSymbol {
		return 0, p.errf("expected comparison operator, got %s", t)
	}
	var op CompareOp
	switch t.text {
	case "=":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return 0, p.errf("expected comparison operator, got %s", t)
	}
	p.next()
	return op, nil
}
