package sql

import (
	"testing"

	"cape/internal/engine"
)

func TestAggregateQueryExtraction(t *testing.T) {
	stmt, err := Parse("SELECT author, year, venue, count(*) AS pubcnt FROM pub GROUP BY author, year, venue")
	if err != nil {
		t.Fatal(err)
	}
	groupBy, agg, err := AggregateQuery(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(groupBy) != 3 || groupBy[0] != "author" || groupBy[2] != "venue" {
		t.Errorf("groupBy = %v", groupBy)
	}
	if agg.Func != engine.Count || !agg.IsStar() {
		t.Errorf("agg = %v", agg)
	}
}

func TestAggregateQuerySum(t *testing.T) {
	stmt, _ := Parse("SELECT region, sum(amount) FROM sales GROUP BY region")
	_, agg, err := AggregateQuery(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Func != engine.Sum || agg.Arg != "amount" {
		t.Errorf("agg = %v", agg)
	}
}

func TestAggregateQueryRejections(t *testing.T) {
	bad := []string{
		"SELECT author FROM pub GROUP BY author",                             // no aggregate
		"SELECT author, count(*), sum(x) FROM pub GROUP BY author",           // two aggregates
		"SELECT count(*) FROM pub",                                           // no group-by
		"SELECT author, count(*) FROM pub WHERE year = 2007 GROUP BY author", // WHERE
		"SELECT author, count(*) FROM pub GROUP BY author ORDER BY author",   // ORDER BY
		"SELECT author, count(*) FROM pub GROUP BY author LIMIT 5",           // LIMIT
		"SELECT DISTINCT author, count(*) FROM pub GROUP BY author",          // DISTINCT
		"SELECT *, count(*) FROM pub GROUP BY author",                        // star
		"SELECT count(*) FROM pub GROUP BY author",                           // group col missing from SELECT
	}
	for _, q := range bad {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, _, err := AggregateQuery(stmt); err == nil {
			t.Errorf("accepted invalid question query %q", q)
		}
	}
}

func TestAggregateQueryRejectsHaving(t *testing.T) {
	stmt, err := Parse("SELECT author, count(*) AS n FROM pub GROUP BY author HAVING n > 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := AggregateQuery(stmt); err == nil {
		t.Error("HAVING should be rejected in a user question query")
	}
}
