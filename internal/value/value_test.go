package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Null: "null", Int: "int", Float: "float", String: "string", Kind(99): "kind(99)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !NewNull().IsNull() {
		t.Error("NewNull should be null")
	}
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int() = %d, want 42", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %g, want 2.5", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str() = %q, want abc", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Int on string": func() { NewString("x").Int() },
		"Float on int":  func() { NewInt(1).Float() },
		"Str on float":  func() { NewFloat(1).Str() },
		"Int on null":   func() { NewNull().Int() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("AsFloat(Int 3) = %g,%v", f, ok)
	}
	if f, ok := NewFloat(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("AsFloat(Float 1.5) = %g,%v", f, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("AsFloat(String) should fail")
	}
	if _, ok := NewNull().AsFloat(); ok {
		t.Error("AsFloat(Null) should fail")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b V
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(1), NewFloat(1.0), 0},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewNull(), NewNull(), 0},
		{NewNull(), NewInt(0), -1},
		{NewInt(0), NewNull(), 1},
		{NewInt(5), NewString("5"), -1}, // numeric kinds sort before string
		{NewString(""), NewFloat(9), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualMatchesCompare(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := NewFloat(a), NewFloat(b)
		return Equal(va, vb) == (Compare(va, vb) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    V
		want string
	}{
		{NewNull(), "∅"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("ICDE"), "ICDE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAppendKeyInjective(t *testing.T) {
	vals := []V{
		NewNull(), NewInt(0), NewInt(1), NewInt(-1),
		NewFloat(0.5), NewFloat(-0.5), NewString(""), NewString("a"),
		NewString("ab"), NewString("a\x00b"),
	}
	seen := map[string]V{}
	for _, v := range vals {
		k := string(v.AppendKey(nil))
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestAppendKeyEqualValuesShareKey(t *testing.T) {
	// Int(7) and Float(7.0) must group together: Compare says equal.
	a := string(NewInt(7).AppendKey(nil))
	b := string(NewFloat(7).AppendKey(nil))
	if a != b {
		t.Errorf("Int(7) and Float(7.0) encode differently: %q vs %q", a, b)
	}
}

func TestAppendKeyStringPrefixSafety(t *testing.T) {
	// ("a", "b") must not collide with ("ab", "") etc.
	t1 := Tuple{NewString("a"), NewString("b")}
	t2 := Tuple{NewString("ab"), NewString("")}
	if t1.Key() == t2.Key() {
		t.Error("tuple key collision for string concatenation ambiguity")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want V
	}{
		{"", NewNull()},
		{"42", NewInt(42)},
		{"-3", NewInt(-3)},
		{"2.5", NewFloat(2.5)},
		{"1e3", NewFloat(1000)},
		{"SIGKDD", NewString("SIGKDD")},
		{"12abc", NewString("12abc")},
	}
	for _, c := range cases {
		if got := Parse(c.in); !Equal(got, c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{NewInt(1), NewString("x")}
	cl := orig.Clone()
	cl[0] = NewInt(99)
	if orig[0].Int() != 1 {
		t.Error("Clone did not copy backing array")
	}
}

func TestTupleEqualAndCompare(t *testing.T) {
	a := Tuple{NewInt(1), NewString("x")}
	b := Tuple{NewInt(1), NewString("x")}
	c := Tuple{NewInt(1), NewString("y")}
	d := Tuple{NewInt(1)}
	if !a.Equal(b) {
		t.Error("identical tuples should be Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different tuples should not be Equal")
	}
	if a.Compare(c) >= 0 {
		t.Error("a < c expected")
	}
	if d.Compare(a) >= 0 {
		t.Error("shorter prefix tuple should sort first")
	}
	if a.Compare(d) <= 0 {
		t.Error("longer tuple should sort after its prefix")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		t1 := Tuple{NewInt(a), NewString(s1)}
		t2 := Tuple{NewInt(b), NewString(s2)}
		return t1.Equal(t2) == (t1.Key() == t2.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{NewInt(1), NewString("ICDE"), NewNull()}
	if got := tp.String(); got != "(1, ICDE, ∅)" {
		t.Errorf("Tuple.String() = %q", got)
	}
}

func TestCompareTotalOrderTransitivity(t *testing.T) {
	vals := []V{NewNull(), NewInt(-5), NewInt(0), NewFloat(0.5), NewInt(3), NewString(""), NewString("z")}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated: %v <= %v <= %v but %v > %v", a, b, b, a, c)
				}
			}
		}
	}
}
