package value

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// ParseJSON decodes one JSON token into a V, accepting both the
// kind-tagged object form this package marshals ({"k":"int","i":3})
// and raw JSON scalars, so append payloads can be written by hand:
// a JSON string becomes a String, null becomes NULL, and a number
// becomes an Int when it is written as an integer (no fraction or
// exponent) and a Float otherwise — mirroring Parse's treatment of
// text input.
func ParseJSON(raw json.RawMessage) (V, error) {
	data := bytes.TrimSpace(raw)
	if len(data) == 0 {
		return V{}, fmt.Errorf("value: empty JSON value")
	}
	switch data[0] {
	case '{':
		var v V
		if err := json.Unmarshal(data, &v); err != nil {
			return V{}, err
		}
		return v, nil
	case '"':
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return V{}, err
		}
		return NewString(s), nil
	case 'n':
		if string(data) == "null" {
			return NewNull(), nil
		}
	case 't', 'f':
		return V{}, fmt.Errorf("value: booleans are not supported")
	default:
		// A number literal. Integer syntax → Int, otherwise Float.
		if i, err := strconv.ParseInt(string(data), 10, 64); err == nil {
			return NewInt(i), nil
		}
		if f, err := strconv.ParseFloat(string(data), 64); err == nil {
			return NewFloat(f), nil
		}
	}
	return V{}, fmt.Errorf("value: cannot decode JSON value %s", data)
}

// ParseJSONTuple decodes a JSON array of values via ParseJSON.
func ParseJSONTuple(raws []json.RawMessage) (Tuple, error) {
	out := make(Tuple, len(raws))
	for i, raw := range raws {
		v, err := ParseJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
