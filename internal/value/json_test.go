package value

import (
	"encoding/json"
	"testing"
)

func TestValueJSONRoundTrip(t *testing.T) {
	vals := []V{NewNull(), NewInt(-7), NewInt(0), NewFloat(2.5), NewString(""), NewString("SIGKDD")}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back V
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Kind() != v.Kind() || !Equal(back, v) {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
	}
}

func TestTupleJSONRoundTrip(t *testing.T) {
	tup := Tuple{NewString("AX"), NewInt(2007), NewNull()}
	data, err := json.Marshal(tup)
	if err != nil {
		t.Fatal(err)
	}
	var back Tuple
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(tup) {
		t.Errorf("tuple round trip: %v vs %v", back, tup)
	}
}

func TestValueJSONErrors(t *testing.T) {
	var v V
	if err := json.Unmarshal([]byte(`{"k":"complex"}`), &v); err == nil {
		t.Error("unknown kind should error")
	}
	if err := json.Unmarshal([]byte(`42`), &v); err == nil {
		t.Error("non-object should error")
	}
}

func TestIntFloatDistinguishedInJSON(t *testing.T) {
	i, _ := json.Marshal(NewInt(3))
	f, _ := json.Marshal(NewFloat(3))
	if string(i) == string(f) {
		t.Error("Int(3) and Float(3) must serialize distinctly (kind tag)")
	}
}
