// Package value defines the dynamically typed scalar values that flow
// through the relational engine: 64-bit integers, 64-bit floats, strings,
// and NULL. Values are small immutable structs that are cheap to copy and
// compare; they carry their kind so operators can type-check lazily.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

const (
	// Null is the absence of a value. Nulls sort before everything else
	// and compare equal only to other nulls.
	Null Kind = iota
	// Int is a 64-bit signed integer.
	Int
	// Float is a 64-bit IEEE-754 float.
	Float
	// String is an arbitrary UTF-8 string.
	String
)

// String returns the kind name ("null", "int", "float", "string").
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// V is a single scalar value. The zero V is NULL.
type V struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// NewNull returns the NULL value.
func NewNull() V { return V{} }

// NewInt wraps a 64-bit integer.
func NewInt(i int64) V { return V{kind: Int, i: i} }

// NewFloat wraps a 64-bit float.
func NewFloat(f float64) V { return V{kind: Float, f: f} }

// NewString wraps a string.
func NewString(s string) V { return V{kind: String, s: s} }

// Kind reports the runtime type of v.
func (v V) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v V) IsNull() bool { return v.kind == Null }

// Int returns the integer payload. It panics if v is not an Int.
func (v V) Int() int64 {
	if v.kind != Int {
		panic(fmt.Sprintf("value: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload. It panics if v is not a Float.
func (v V) Float() float64 {
	if v.kind != Float {
		panic(fmt.Sprintf("value: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload. It panics if v is not a String.
func (v V) Str() string {
	if v.kind != String {
		panic(fmt.Sprintf("value: Str() on %s value", v.kind))
	}
	return v.s
}

// AsFloat converts numeric values to float64. ok is false for NULL and
// String values.
func (v V) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case Int:
		return float64(v.i), true
	case Float:
		return v.f, true
	default:
		return 0, false
	}
}

// IsNumeric reports whether v is an Int or a Float.
func (v V) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// Compare orders two values. NULL < Int/Float < String across kinds,
// except that Int and Float compare numerically with each other.
// The result is -1, 0 or +1.
func Compare(a, b V) int {
	// Numeric cross-kind comparison.
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		// Equal as floats: break ties so Int(1) and Float(1) are stable
		// but considered equal for grouping purposes.
		return 0
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case Null:
		return 0
	case String:
		return strings.Compare(a.s, b.s)
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b V) bool { return Compare(a, b) == 0 }

// String renders the value for display. NULL renders as "∅".
func (v V) String() string {
	switch v.kind {
	case Null:
		return "∅"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case String:
		return v.s
	default:
		return "?"
	}
}

// AppendKey appends a canonical, injective byte encoding of v to dst.
// The encoding is used as a hash key for grouping: distinct values produce
// distinct encodings and Equal values produce identical encodings
// (Int(1) and Float(1) encode identically because they group together).
func (v V) AppendKey(dst []byte) []byte {
	switch v.kind {
	case Null:
		return append(dst, 0x00)
	case Int:
		dst = append(dst, 0x01)
		return appendUint64(dst, uint64(v.i))
	case Float:
		// Encode integral floats exactly like the equivalent Int so that
		// grouping treats them as equal, matching Compare.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) &&
			v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			dst = append(dst, 0x01)
			return appendUint64(dst, uint64(int64(v.f)))
		}
		dst = append(dst, 0x02)
		return appendUint64(dst, math.Float64bits(v.f))
	case String:
		dst = append(dst, 0x03)
		dst = appendUint64(dst, uint64(len(v.s)))
		return append(dst, v.s...)
	default:
		panic("value: unknown kind")
	}
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// Parse converts a raw text token to the most specific value kind:
// empty string → NULL, integer syntax → Int, float syntax → Float,
// otherwise String.
func Parse(tok string) V {
	if tok == "" {
		return NewNull()
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return NewFloat(f)
	}
	return NewString(tok)
}

// Tuple is an ordered list of values, positionally aligned with a schema.
type Tuple []V

// Clone returns a copy of t with its own backing array.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// AppendKey appends the canonical byte encoding of the whole tuple (the
// Key bytes) to dst and returns the extended slice, so hot paths can
// amortize one buffer across many keys.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.AppendKey(dst)
	}
	return dst
}

// Key returns the canonical byte encoding of the whole tuple, suitable
// for use as a map key via string conversion.
func (t Tuple) Key() string {
	return string(t.AppendKey(nil))
}

// Equal reports element-wise equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !Equal(t[i], o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := min(len(t), len(o))
	for i := 0; i < n; i++ {
		if c := Compare(t[i], o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
