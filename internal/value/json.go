package value

import (
	"encoding/json"
	"fmt"
)

// jsonValue is the wire representation of a V: the kind tag keeps
// int64(3) and float64(3) and "3" distinguishable across a round trip.
type jsonValue struct {
	Kind string  `json:"k"`
	Int  int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
}

// MarshalJSON encodes the value with an explicit kind tag.
func (v V) MarshalJSON() ([]byte, error) {
	jv := jsonValue{Kind: v.kind.String()}
	switch v.kind {
	case Int:
		jv.Int = v.i
	case Float:
		jv.F = v.f
	case String:
		jv.S = v.s
	}
	return json.Marshal(jv)
}

// UnmarshalJSON decodes a kind-tagged value.
func (v *V) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	switch jv.Kind {
	case "null":
		*v = NewNull()
	case "int":
		*v = NewInt(jv.Int)
	case "float":
		*v = NewFloat(jv.F)
	case "string":
		*v = NewString(jv.S)
	default:
		return fmt.Errorf("value: unknown kind %q in JSON", jv.Kind)
	}
	return nil
}
