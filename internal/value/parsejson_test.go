package value

import (
	"encoding/json"
	"testing"
)

func TestParseJSON(t *testing.T) {
	cases := []struct {
		in   string
		want V
		err  bool
	}{
		{in: `"hi"`, want: NewString("hi")},
		{in: `null`, want: NewNull()},
		{in: `42`, want: NewInt(42)},
		{in: `-7`, want: NewInt(-7)},
		{in: `2.5`, want: NewFloat(2.5)},
		{in: `1e3`, want: NewFloat(1000)},
		{in: ` 3 `, want: NewInt(3)},
		{in: `{"k":"int","i":9}`, want: NewInt(9)},
		{in: `{"k":"float","f":1.5}`, want: NewFloat(1.5)},
		{in: `{"k":"string","s":"x"}`, want: NewString("x")},
		{in: `{"k":"null"}`, want: NewNull()},
		{in: `true`, err: true},
		{in: `[1]`, err: true},
		{in: ``, err: true},
		{in: `{"k":"ghost"}`, err: true},
	}
	for _, c := range cases {
		got, err := ParseJSON(json.RawMessage(c.in))
		if c.err {
			if err == nil {
				t.Errorf("ParseJSON(%q): expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseJSON(%q): %v", c.in, err)
			continue
		}
		if !Equal(got, c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("ParseJSON(%q) = %v (%s), want %v (%s)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParseJSONTuple(t *testing.T) {
	raws := []json.RawMessage{
		json.RawMessage(`"a"`), json.RawMessage(`1`), json.RawMessage(`null`),
	}
	tup, err := ParseJSONTuple(raws)
	if err != nil {
		t.Fatal(err)
	}
	want := Tuple{NewString("a"), NewInt(1), NewNull()}
	if !tup.Equal(want) {
		t.Fatalf("tuple = %v, want %v", tup, want)
	}
	if _, err := ParseJSONTuple([]json.RawMessage{json.RawMessage(`true`)}); err == nil {
		t.Fatal("bad element must error")
	}
}
