package server

import (
	"container/list"
	"encoding/json"
	"strconv"
	"sync"
)

// defaultAnswerCacheEntries bounds each pattern set's answer cache when
// the operator does not configure a size.
const defaultAnswerCacheEntries = 4096

// answerCache is an LRU + singleflight cache of rendered answers for
// one pattern set. Keys embed the pattern-set version and the table
// epoch (see ansKey), so an append or admission swap invalidates every
// cached answer for free — stale entries simply stop being addressable
// and age out of the LRU. Values are immutable once inserted: a fully
// rendered response value (DTO maps on the server, raw shard bytes on
// the coordinator) that concurrent hits share by reference.
//
// Negative answers are cached too: a question that fails validation
// deterministically (bad direction, tuple not in the result, pattern
// mismatch) keeps failing until the table or pattern set changes, which
// the key already encodes — so repeated bad requests cost one lookup
// instead of one aggregate query each.
type answerCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are *ansEntry
	entries  map[string]*list.Element
	inflight map[string]*ansCall

	hits, misses, evictions uint64
}

// ansEntry is one cached answer.
type ansEntry struct {
	key    string
	status int
	v      interface{}
}

// ansCall is an in-flight computation other callers of the same key
// wait on instead of recomputing (singleflight).
type ansCall struct {
	done   chan struct{}
	status int
	v      interface{}
	cache  bool
}

// answerCacheStats is the observability snapshot for GET /v1.
type answerCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Entries   int    `json:"entries"`
	Evictions uint64 `json:"evictions"`
}

func newAnswerCache(capacity int) *answerCache {
	if capacity <= 0 {
		capacity = defaultAnswerCacheEntries
	}
	return &answerCache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*ansCall),
	}
}

// do returns the cached answer for key, or runs compute exactly once
// across concurrent callers and caches its result when compute reports
// it deterministic (cacheable). hit reports whether the answer came
// from the cache or another caller's in-flight computation.
func (c *answerCache) do(key string, compute func() (status int, v interface{}, cacheable bool)) (int, interface{}, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*ansEntry)
		c.hits++
		c.mu.Unlock()
		return e.status, e.v, true
	}
	if call, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-call.done
		return call.status, call.v, true
	}
	call := &ansCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	call.status, call.v, call.cache = compute()
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.cache {
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
		} else {
			c.entries[key] = c.lru.PushFront(&ansEntry{key: key, status: call.status, v: call.v})
			for c.lru.Len() > c.capacity {
				last := c.lru.Back()
				c.lru.Remove(last)
				delete(c.entries, last.Value.(*ansEntry).key)
				c.evictions++
			}
		}
	}
	c.mu.Unlock()
	return call.status, call.v, false
}

// lookup is the non-blocking read half of do, for batch items: a hit
// refreshes the LRU position, a miss only counts. Batch handlers use
// lookup + insert instead of do so one slow batch never blocks another
// behind an in-flight singleflight call.
func (c *answerCache) lookup(key string) (int, interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*ansEntry)
		c.hits++
		return e.status, e.v, true
	}
	c.misses++
	return 0, nil, false
}

// insert stores a computed answer, evicting from the LRU tail.
func (c *answerCache) insert(key string, status int, v interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&ansEntry{key: key, status: status, v: v})
	for c.lru.Len() > c.capacity {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*ansEntry).key)
		c.evictions++
	}
}

// ansKey renders the canonical cache key for one question against a
// pattern set at a given table state. kind separates the /v1/explain
// and batch-item namespaces (their cached values have different
// shapes). The JSON body is deterministic — fixed struct field order,
// map keys sorted by encoding/json — so equal requests produce equal
// keys, and the version/generation/epoch prefix makes every pattern
// swap, table reload, and append open a fresh keyspace.
func ansKey(kind byte, version, gen, epoch uint64, spec QuestionSpec, k, parallelism int, numeric, weights map[string]float64) string {
	body, _ := json.Marshal(struct {
		Q QuestionSpec       `json:"q"`
		K int                `json:"k"`
		P int                `json:"p"`
		N map[string]float64 `json:"n,omitempty"`
		W map[string]float64 `json:"w,omitempty"`
	}{spec, k, parallelism, numeric, weights})
	return string(kind) + "|" + strconv.FormatUint(version, 10) + "|" +
		strconv.FormatUint(gen, 10) + "|" + strconv.FormatUint(epoch, 10) + "|" + string(body)
}

// stats snapshots the counters.
func (c *answerCache) stats() answerCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return answerCacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len(), Evictions: c.evictions}
}
