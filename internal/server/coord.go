package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cape/internal/engine"
	"cape/internal/httpc"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/value"
)

// Coordinator is the front door of a sharded CAPE deployment (DESIGN.md
// §15): N shard capeservers each hold one hash partition of every
// table, and the coordinator presents them as a single /v1 API.
//
// Partitioning is by a fixed shard-key attribute set K: a row lives on
// shard hash(row[K]) mod N. The deployment serves only patterns whose
// partition attributes F contain K — the coordinator enforces this at
// admission — which is what makes every question local to one shard:
// for a question grouped by G ⊇ K about tuple t, every candidate
// counterbalance t' of a served pattern satisfies t'[F] = t[F], hence
// t'[K] = t[K], so t', the NORM selection, and the question's own group
// all live on the shard owning hash(t[K]). The coordinator routes the
// question there and returns the owner's answer verbatim — byte-
// identical to a single node holding all the rows and the same admitted
// pattern set. Questions whose group-by does not cover K are rejected
// with 422 rather than answered wrongly from partial groups.
//
// Writes fan out by key: /v1/append splits the batch by row owner,
// appends each piece to its shard (durability = min walSeq across the
// shards touched), folds the refreshed per-shard candidate evidence
// into global pattern admission, and pushes the new admitted set to
// every shard before any explanation can observe the new rows.
//
// The read path has admission control: a bounded queue sheds excess
// concurrent explains with 429 + Retry-After instead of letting
// latency collapse, and all shard traffic flows through one keep-alive
// transport with a bounded in-flight fan-out.
type Coordinator struct {
	mux    *http.ServeMux
	cfg    CoordConfig
	client *http.Client
	sem    chan struct{} // bounds concurrent outgoing shard calls
	queue  chan struct{} // read-path admission; full ⇒ shed 429

	// appendMu mirrors the single-node server's write exclusion at
	// deployment scope: appends, mines, loads, and admission pushes run
	// exclusively; explains and status share the read side. The window
	// between a shard append and the matching admission push is
	// invisible to readers because both happen under the write lock.
	appendMu sync.RWMutex

	mu       sync.Mutex
	tables   map[string]*coordTable
	sets     map[string]*coordSet
	tableGen map[string]uint64 // load counter per table name, survives reloads
	nextID   int
}

// CoordConfig configures NewCoordinator.
type CoordConfig struct {
	// Shards are the base URLs of the shard servers, e.g.
	// "http://10.0.0.1:8081". Order defines shard indices and must be
	// stable across coordinator restarts (the hash routing depends on
	// position).
	Shards []string
	// Key is the shard-key attribute set K.
	Key []string
	// ShardTimeout bounds each shard call (default 60s).
	ShardTimeout time.Duration
	// MaxInflight bounds concurrent outgoing shard requests across all
	// client requests (default 4× shard count, min 16).
	MaxInflight int
	// MaxQueue is the read-path admission limit: at most MaxQueue
	// explain/batch requests are in flight; beyond that the coordinator
	// sheds with 429 (default 256).
	MaxQueue int
	// Client overrides the HTTP client (default: httpc.NewClient sized
	// for the shard count).
	Client *http.Client
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// AnswerCacheSize bounds each pattern set's coordinator-tier answer
	// cache (entries). 0 uses the default; negative disables caching, so
	// every explain fans out to its owning shard.
	AnswerCacheSize int
}

// coordTable is the coordinator's view of one partitioned table.
type coordTable struct {
	part   engine.Partitioner
	cols   []string
	keyIdx []int
	// shardRows is the last acknowledged row count per shard, indexed
	// like cfg.Shards: set at load, refreshed from each append ack.
	// Mutated only under the deployment write lock (load and append
	// are both appendMu-exclusive), so the sum reported by an append
	// is the deployment-wide table total — matching the single-node
	// append response, which reports the full table's rows.
	shardRows []int
	// epochs is the last acknowledged table epoch per shard, refreshed
	// from append acks. Answer-cache keys embed the owning shard's
	// epoch, so an append invalidates only the questions routed to the
	// shards it touched — hot questions on untouched shards keep
	// hitting. Mutated only under the deployment write lock.
	epochs []uint64
	// gen disambiguates reloads: shard epochs restart when a table is
	// re-pushed, so (gen, epoch) is what never repeats.
	gen uint64
}

// coordSet tracks one logical pattern set across shards.
type coordSet struct {
	id      string
	table   string
	shardPS []string // per-shard pattern set id, indexed like cfg.Shards
	th      pattern.Thresholds
	options MineRequest
	// stats holds the last known candidate evidence per shard; appends
	// replace only the shards they touched (fragments are disjoint, so
	// untouched shards' evidence is still current).
	stats [][]mining.CandStat
	// admitted is the current globally-admitted key set, sorted.
	admitted []string
	// version counts changes to the admitted set. It is bumped only
	// when an append's re-admission actually changes the served keys —
	// an append that leaves admission unchanged invalidates only the
	// shards it touched (via their epochs), not the whole keyspace.
	version uint64
	// anscache holds rendered shard answers keyed by question × version
	// × table generation × owning-shard epoch, so repeated hot
	// questions never fan out. Nil when caching is disabled.
	anscache *answerCache
}

// NewCoordinator validates the configuration and returns a ready
// handler. It performs no shard I/O; shards are contacted lazily per
// request.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("coordinator needs at least one shard URL")
	}
	for i, u := range cfg.Shards {
		if u == "" {
			return nil, fmt.Errorf("shard %d has an empty URL", i)
		}
		cfg.Shards[i] = strings.TrimSuffix(u, "/")
	}
	p := engine.Partitioner{Key: cfg.Key, N: len(cfg.Shards)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 60 * time.Second
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * len(cfg.Shards)
		if cfg.MaxInflight < 16 {
			cfg.MaxInflight = 16
		}
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Client == nil {
		cfg.Client = httpc.NewClient(len(cfg.Shards))
	}
	c := &Coordinator{
		cfg:      cfg,
		client:   cfg.Client,
		sem:      make(chan struct{}, cfg.MaxInflight),
		queue:    make(chan struct{}, cfg.MaxQueue),
		tables:   make(map[string]*coordTable),
		sets:     make(map[string]*coordSet),
		tableGen: make(map[string]uint64),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1", c.handleStatus)
	mux.HandleFunc("GET /v1/{$}", c.handleStatus)
	mux.HandleFunc("GET /v1/tables", c.handleListTables)
	mux.HandleFunc("POST /v1/tables", c.handleLoadTable)
	mux.HandleFunc("POST /v1/append", c.handleAppend)
	mux.HandleFunc("POST /v1/mine", c.handleMine)
	mux.HandleFunc("GET /v1/patterns/{id}", c.handleGetPatterns)
	mux.HandleFunc("POST /v1/explain", c.handleExplain)
	mux.HandleFunc("POST /v1/explain/batch", c.handleExplainBatch)
	for _, p := range []string{"/v1/query", "/v1/generalize", "/v1/intervene", "/v1/baseline"} {
		path := p
		mux.HandleFunc("POST "+path, func(w http.ResponseWriter, _ *http.Request) {
			httpError(w, http.StatusNotImplemented, "%s is not available on a shard coordinator; run it against a single capeserver", path)
		})
	}
	c.mux = mux
	return c, nil
}

// ServeHTTP implements http.Handler with the deployment-level
// write/read exclusion and read-path load shedding.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	path := strings.TrimSuffix(r.URL.Path, "/")
	if r.Method == http.MethodPost &&
		(path == "/v1/append" || path == "/v1/mine" || path == "/v1/tables") {
		c.appendMu.Lock()
		defer c.appendMu.Unlock()
		c.mux.ServeHTTP(w, r)
		return
	}
	if r.Method == http.MethodPost && (path == "/v1/explain" || path == "/v1/explain/batch") {
		// Open-loop overload protection: when MaxQueue explains are
		// already in flight, shedding immediately is strictly better
		// than queueing — the client can retry against a server that
		// has caught up, instead of timing out behind an unbounded
		// backlog.
		select {
		case c.queue <- struct{}{}:
			defer func() { <-c.queue }()
		default:
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "explain admission queue is full (%d in flight); retry", c.cfg.MaxQueue)
			return
		}
	}
	c.appendMu.RLock()
	defer c.appendMu.RUnlock()
	c.mux.ServeHTTP(w, r)
}

// ---- shard I/O ----

// shardCall is one request to one shard: bounded by the fan-out
// semaphore and the per-shard deadline, returning status + body.
func (c *Coordinator) shardCall(ctx context.Context, shard int, method, path, contentType string, body []byte) (int, []byte, error) {
	c.sem <- struct{}{}
	defer func() { <-c.sem }()
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.Shards[shard]+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

func (c *Coordinator) shardJSON(ctx context.Context, shard int, method, path string, in, out interface{}) (int, []byte, error) {
	var body []byte
	var err error
	if in != nil {
		body, err = json.Marshal(in)
		if err != nil {
			return 0, nil, err
		}
	}
	status, b, err := c.shardCall(ctx, shard, method, path, "application/json", body)
	if err != nil {
		return status, b, err
	}
	if out != nil && status/100 == 2 {
		if err := json.Unmarshal(b, out); err != nil {
			return status, b, fmt.Errorf("decoding shard %d response: %w", shard, err)
		}
	}
	return status, b, nil
}

// shardErrf renders a failed shard interaction as a gateway error.
func shardErrf(w http.ResponseWriter, shard int, url string, status int, body []byte, err error) {
	if err != nil {
		httpError(w, http.StatusBadGateway, "shard %d (%s): %v", shard, url, err)
		return
	}
	msg := strings.TrimSpace(string(body))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	// Client-class shard errors (bad question, unknown table) pass
	// through with their original status; server-class become 502.
	if status/100 == 4 {
		httpError(w, status, "%s", msg)
		return
	}
	httpError(w, http.StatusBadGateway, "shard %d (%s) returned %d: %s", shard, url, status, msg)
}

// ---- tables ----

func (c *Coordinator) handleLoadTable(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		httpError(w, http.StatusBadRequest, "query parameter 'name' is required")
		return
	}
	tab, err := engine.ReadCSV(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "loading CSV: %v", err)
		return
	}
	part := engine.Partitioner{Key: c.cfg.Key, N: len(c.cfg.Shards)}
	keyIdx, err := part.KeyIndices(tab.Schema())
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "table %q cannot be partitioned by key %v: %v", name, c.cfg.Key, err)
		return
	}
	parts, err := part.PartitionTable(tab)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type res struct {
		shard  int
		status int
		body   []byte
		err    error
	}
	results := make([]res, len(parts))
	var wg sync.WaitGroup
	for i, pt := range parts {
		wg.Add(1)
		go func(i int, pt *engine.Table) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := pt.WriteCSV(&buf); err != nil {
				results[i] = res{shard: i, err: err}
				return
			}
			status, body, err := c.shardCall(r.Context(), i, http.MethodPost, "/v1/tables?name="+name, "text/csv", buf.Bytes())
			results[i] = res{shard: i, status: status, body: body, err: err}
		}(i, pt)
	}
	wg.Wait()
	for _, re := range results {
		if re.err != nil || re.status != http.StatusCreated {
			shardErrf(w, re.shard, c.cfg.Shards[re.shard], re.status, re.body, re.err)
			return
		}
	}
	shardRows := make([]int, len(parts))
	for i, pt := range parts {
		shardRows[i] = pt.NumRows()
	}
	c.mu.Lock()
	c.tableGen[name]++
	c.tables[name] = &coordTable{
		part: part, cols: tab.Schema().Names(), keyIdx: keyIdx,
		shardRows: shardRows, epochs: make([]uint64, len(parts)),
		gen: c.tableGen[name],
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"name": name, "rows": tab.NumRows(), "columns": tab.Schema().Names(),
		"shards": len(parts),
	})
}

func (c *Coordinator) handleListTables(w http.ResponseWriter, r *http.Request) {
	type info struct {
		Name    string   `json:"name"`
		Rows    int      `json:"rows"`
		Columns []string `json:"columns"`
	}
	totals := make(map[string]*info)
	for i := range c.cfg.Shards {
		var shardTables []info
		status, body, err := c.shardJSON(r.Context(), i, http.MethodGet, "/v1/tables", nil, &shardTables)
		if err != nil || status != http.StatusOK {
			shardErrf(w, i, c.cfg.Shards[i], status, body, err)
			return
		}
		for _, t := range shardTables {
			if agg, ok := totals[t.Name]; ok {
				agg.Rows += t.Rows
			} else {
				tc := t
				totals[t.Name] = &tc
			}
		}
	}
	out := make([]info, 0, len(totals))
	for _, t := range totals {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// ---- mining and admission ----

func (c *Coordinator) handleMine(w http.ResponseWriter, r *http.Request) {
	var req MineRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	_, ok := c.tables[req.Table]
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown table %q", req.Table)
		return
	}
	if m := strings.ToLower(req.Miner); m != "" && m != "arpmine" {
		httpError(w, http.StatusBadRequest, "sharded mining supports only the arpmine miner, not %q", req.Miner)
		return
	}
	if req.UseFDs {
		httpError(w, http.StatusBadRequest, "sharded mining is incompatible with useFDs")
		return
	}
	opt, err := req.options()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Shards mine with the real per-fragment gates (θ, local support)
	// but loosened global gates: λ and Δ are statements about the whole
	// fragment population, which no single shard sees. The coordinator
	// applies them below, to the summed evidence.
	shardReq := req
	shardReq.WithStats = true
	shardReq.Theta = opt.Thresholds.Theta
	shardReq.LocalSupport = opt.Thresholds.LocalSupport
	shardReq.Lambda = 0
	shardReq.GlobalSupport = 1

	type mineResp struct {
		ID        string            `json:"id"`
		CandStats []mining.CandStat `json:"candStats"`
	}
	type res struct {
		resp   mineResp
		status int
		body   []byte
		err    error
	}
	results := make([]res, len(c.cfg.Shards))
	var wg sync.WaitGroup
	for i := range c.cfg.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var mr mineResp
			status, body, err := c.shardJSON(r.Context(), i, http.MethodPost, "/v1/mine", shardReq, &mr)
			results[i] = res{resp: mr, status: status, body: body, err: err}
		}(i)
	}
	wg.Wait()
	cs := &coordSet{
		table:   req.Table,
		shardPS: make([]string, len(c.cfg.Shards)),
		th:      opt.Thresholds,
		options: req,
		stats:   make([][]mining.CandStat, len(c.cfg.Shards)),
	}
	if c.cfg.AnswerCacheSize >= 0 {
		cs.anscache = newAnswerCache(c.cfg.AnswerCacheSize)
	}
	for i, re := range results {
		if re.err != nil || re.status != http.StatusCreated {
			shardErrf(w, i, c.cfg.Shards[i], re.status, re.body, re.err)
			return
		}
		cs.shardPS[i] = re.resp.ID
		cs.stats[i] = re.resp.CandStats
	}
	cs.admitted = admittedKeys(cs.stats, cs.th, c.cfg.Key)
	if !c.pushAdmission(w, r.Context(), cs) {
		return
	}
	c.mu.Lock()
	c.nextID++
	cs.id = "ps-" + strconv.Itoa(c.nextID)
	c.sets[cs.id] = cs
	c.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"id": cs.id, "table": cs.table, "patterns": len(cs.admitted),
		"options": req, "shards": cs.shardPS,
	})
}

// admittedKeys applies the real global gates to the summed per-shard
// evidence, plus the deployment's locality gate: only patterns whose
// partition attributes contain the shard key are servable (candidates
// of any other pattern would straddle shards). Keys come out sorted.
func admittedKeys(stats [][]mining.CandStat, th pattern.Thresholds, key []string) []string {
	type evidence struct{ good, supp int }
	sum := make(map[string]*evidence)
	for _, shard := range stats {
		for _, cs := range shard {
			e, ok := sum[cs.Key]
			if !ok {
				e = &evidence{}
				sum[cs.Key] = e
			}
			e.good += cs.Good
			e.supp += cs.Supported
		}
	}
	var out []string
	for k, e := range sum {
		if e.good == 0 || e.supp == 0 {
			continue
		}
		if e.good < th.GlobalSupport {
			continue
		}
		if float64(e.good)/float64(e.supp) < th.Lambda {
			continue
		}
		if !keyInPatternF(k, key) {
			continue
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// equalSortedKeys reports whether two sorted key lists are identical.
func equalSortedKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// keyInPatternF reports whether every shard-key attribute appears in
// the F part of a canonical pattern key ("f1,f2|v|agg|model").
func keyInPatternF(patternKey string, key []string) bool {
	f := patternKey
	if i := strings.IndexByte(f, '|'); i >= 0 {
		f = f[:i]
	}
	attrs := strings.Split(f, ",")
	for _, k := range key {
		found := false
		for _, a := range attrs {
			if a == k {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// pushAdmission sends the set's current admitted keys to every shard.
// Returns false after writing an error response.
func (c *Coordinator) pushAdmission(w http.ResponseWriter, ctx context.Context, cs *coordSet) bool {
	type res struct {
		status int
		body   []byte
		err    error
	}
	results := make([]res, len(c.cfg.Shards))
	var wg sync.WaitGroup
	for i := range c.cfg.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := c.shardJSON(ctx, i, http.MethodPost,
				"/v1/patterns/"+cs.shardPS[i]+"/admit", AdmitRequest{Keys: cs.admitted}, nil)
			results[i] = res{status: status, body: body, err: err}
		}(i)
	}
	wg.Wait()
	for i, re := range results {
		if re.err != nil || re.status != http.StatusOK {
			shardErrf(w, i, c.cfg.Shards[i], re.status, re.body, re.err)
			return false
		}
	}
	return true
}

func (c *Coordinator) handleGetPatterns(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	cs, ok := c.sets[id]
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown pattern set %q", id)
		return
	}
	// Display strings come from the shards; the global counters come
	// from the coordinator's summed evidence (a shard's own confidence
	// reflects only its partition).
	display := make(map[string]string)
	for i := range c.cfg.Shards {
		var resp struct {
			Patterns []patternDTO `json:"patterns"`
		}
		status, body, err := c.shardJSON(r.Context(), i, http.MethodGet, "/v1/patterns/"+cs.shardPS[i], nil, &resp)
		if err != nil || status != http.StatusOK {
			shardErrf(w, i, c.cfg.Shards[i], status, body, err)
			return
		}
		for _, p := range resp.Patterns {
			if _, ok := display[p.Key]; !ok {
				display[p.Key] = p.Pattern
			}
		}
	}
	type evidence struct{ good, supp, frags int }
	sum := make(map[string]*evidence)
	for _, shard := range cs.stats {
		for _, st := range shard {
			e, ok := sum[st.Key]
			if !ok {
				e = &evidence{}
				sum[st.Key] = e
			}
			e.good += st.Good
			e.supp += st.Supported
			e.frags += st.Fragments
		}
	}
	out := make([]patternDTO, 0, len(cs.admitted))
	for _, k := range cs.admitted {
		e := sum[k]
		if e == nil {
			continue
		}
		out = append(out, patternDTO{
			Pattern:    display[k],
			Key:        k,
			Confidence: float64(e.good) / float64(e.supp),
			Locals:     e.good,
			Supported:  e.supp,
			Fragments:  e.frags,
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id": cs.id, "table": cs.table, "patterns": out,
	})
}

// ---- append ----

func (c *Coordinator) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	ct, ok := c.tables[req.Table]
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown table %q", req.Table)
		return
	}
	// Parse rows with the shard's own rules so routing hashes exactly
	// the values the shard will store; forward the raw JSON untouched.
	perShard := make([][][]json.RawMessage, len(c.cfg.Shards))
	for i, raw := range req.Rows {
		t, err := value.ParseJSONTuple(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "row %d: %v", i, err)
			return
		}
		if len(t) != len(ct.cols) {
			httpError(w, http.StatusBadRequest, "row %d has %d values, table %q has %d columns", i, len(t), req.Table, len(ct.cols))
			return
		}
		s := ct.part.ShardOfRow(t, ct.keyIdx)
		perShard[s] = append(perShard[s], raw)
	}

	type appendResp struct {
		Appended    int               `json:"appended"`
		Rows        int               `json:"rows"`
		Epoch       uint64            `json:"epoch"`
		PatternSets []appendSetStatus `json:"patternSets"`
		WalSeq      uint64            `json:"walSeq"`
		Durable     bool              `json:"durable"`
		Table       string            `json:"table"`
	}
	type res struct {
		resp   appendResp
		status int
		body   []byte
		err    error
		sent   bool
	}
	results := make([]res, len(c.cfg.Shards))
	var wg sync.WaitGroup
	for i := range c.cfg.Shards {
		if len(perShard[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var ar appendResp
			status, body, err := c.shardJSON(r.Context(), i, http.MethodPost, "/v1/append",
				AppendRequest{Table: req.Table, Rows: perShard[i]}, &ar)
			results[i] = res{resp: ar, status: status, body: body, err: err, sent: true}
		}(i)
	}
	wg.Wait()
	for i, re := range results {
		if re.sent && (re.err != nil || re.status != http.StatusOK) {
			// Keyed routing means sibling shards may already have
			// appended their pieces; surface which shard failed so the
			// operator can reconcile rather than silently diverge.
			shardErrf(w, i, c.cfg.Shards[i], re.status, re.body, re.err)
			return
		}
	}

	// Fold the refreshed evidence into every set over this table and
	// re-push admission, all before releasing the write lock.
	c.mu.Lock()
	var sets []*coordSet
	for _, cs := range c.sets {
		if cs.table == req.Table {
			sets = append(sets, cs)
		}
	}
	c.mu.Unlock()
	sort.Slice(sets, func(i, j int) bool { return sets[i].id < sets[j].id })
	setStatuses := make([]map[string]interface{}, 0, len(sets))
	for _, cs := range sets {
		byShardPS := make(map[string]int, len(cs.shardPS))
		for i, id := range cs.shardPS {
			byShardPS[id] = i
		}
		for i, re := range results {
			if !re.sent {
				continue
			}
			for _, st := range re.resp.PatternSets {
				if j, ok := byShardPS[st.ID]; ok && j == i && st.CandStats != nil {
					cs.stats[i] = st.CandStats
				}
			}
		}
		admitted := admittedKeys(cs.stats, cs.th, c.cfg.Key)
		// The version bump is what invalidates cached answers on shards
		// this append did not touch, so it happens only when admission
		// actually changed; epoch-keyed invalidation covers the rest.
		if !equalSortedKeys(admitted, cs.admitted) {
			cs.version++
		}
		cs.admitted = admitted
		if !c.pushAdmission(w, r.Context(), cs) {
			return
		}
		setStatuses = append(setStatuses, map[string]interface{}{
			"id": cs.id, "status": "maintained", "patterns": len(cs.admitted),
		})
	}

	appended := 0
	var minWal uint64
	durable := true
	shardAcks := make([]map[string]interface{}, 0, len(results))
	for i, re := range results {
		if !re.sent {
			continue
		}
		appended += re.resp.Appended
		ct.shardRows[i] = re.resp.Rows
		ct.epochs[i] = re.resp.Epoch
		ack := map[string]interface{}{
			"shard": i, "appended": re.resp.Appended, "rows": re.resp.Rows, "epoch": re.resp.Epoch,
		}
		if re.resp.Durable {
			ack["walSeq"] = re.resp.WalSeq
			if minWal == 0 || re.resp.WalSeq < minWal {
				minWal = re.resp.WalSeq
			}
		} else {
			durable = false
		}
		shardAcks = append(shardAcks, ack)
	}
	totalRows := 0
	for _, n := range ct.shardRows {
		totalRows += n
	}
	resp := map[string]interface{}{
		"table":       req.Table,
		"appended":    appended,
		"rows":        totalRows,
		"patternSets": setStatuses,
		"shards":      shardAcks,
	}
	if durable && minWal > 0 {
		// The weakest shard bounds the deployment's durability: every
		// acknowledged row is framed at least up to its own shard's
		// walSeq, and minWalSeq is the floor across the shards touched.
		resp["minWalSeq"] = minWal
		resp["durable"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- explain ----

// ownerOf routes a question to the shard owning its group: the
// shard-key values are read out of the question tuple (422 when the
// group-by does not cover the key — such a group straddles shards and
// no shard can answer it alone).
func (c *Coordinator) ownerOf(ct *coordTable, groupBy, tuple []string) (int, error) {
	if len(tuple) != len(groupBy) {
		return 0, fmt.Errorf("groupBy and tuple must be non-empty and the same length")
	}
	keyVals := make(value.Tuple, len(c.cfg.Key))
	for i, k := range c.cfg.Key {
		pos := -1
		for j, g := range groupBy {
			if g == k {
				pos = j
				break
			}
		}
		if pos < 0 {
			return 0, fmt.Errorf("sharded questions must group by the shard key: %q is not in groupBy %v", k, groupBy)
		}
		keyVals[i] = value.Parse(tuple[pos])
	}
	return ct.part.ShardOf(keyVals), nil
}

func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	cs, ok := c.sets[req.Patterns]
	var ct *coordTable
	if ok {
		ct = c.tables[cs.table]
	}
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown pattern set %q", req.Patterns)
		return
	}
	if ct == nil {
		httpError(w, http.StatusNotFound, "table %q for pattern set is gone", cs.table)
		return
	}
	owner, err := c.ownerOf(ct, req.GroupBy, req.Tuple)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// The owner holds the whole group, every candidate, and the NORM
	// selection (locality contract), so its answer — produced by the
	// same engine over the same rows in the same order — is forwarded
	// verbatim: byte-identical to single-node output. The coordinator
	// caches the raw reply bytes keyed by the set version, table
	// generation, and the owner's epoch: a hit replays the exact bytes
	// the shard produced without any fan-out, and answers from shards
	// an append did not touch survive the append.
	compute := func() (int, interface{}, bool) {
		shardReq := req
		shardReq.Patterns = cs.shardPS[owner]
		status, body, err := c.shardJSON(r.Context(), owner, http.MethodPost, "/v1/explain", shardReq, nil)
		ans := &coordAnswer{status: status, body: body, err: err}
		// Only 200 and 400 are deterministic functions of the keyed
		// state; transport failures and transient shard statuses (e.g.
		// 404 during re-mining) must be retried, not replayed.
		cacheable := err == nil && (status == http.StatusOK || status == http.StatusBadRequest)
		return status, ans, cacheable
	}
	var ans *coordAnswer
	if cs.anscache == nil {
		_, v, _ := compute()
		ans = v.(*coordAnswer)
	} else {
		key := ansKey('e', cs.version, ct.gen, ct.epochs[owner],
			QuestionSpec{GroupBy: req.GroupBy, Aggregate: req.Aggregate, Tuple: req.Tuple, Dir: req.Dir},
			req.K, req.Parallelism, req.Numeric, req.Weights)
		_, v, _ := cs.anscache.do(key, compute)
		ans = v.(*coordAnswer)
	}
	if ans.err != nil {
		shardErrf(w, owner, c.cfg.Shards[owner], ans.status, ans.body, ans.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ans.status)
	_, _ = w.Write(ans.body)
}

// coordAnswer is a cached (or just-computed) shard explain reply: the
// verbatim status and body bytes, immutable once stored.
type coordAnswer struct {
	status int
	body   []byte
	err    error
}

func (c *Coordinator) handleExplainBatch(w http.ResponseWriter, r *http.Request) {
	var req ExplainBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Questions) == 0 {
		httpError(w, http.StatusBadRequest, "batch needs at least one question")
		return
	}
	if len(req.Questions) > maxBatchQuestions {
		httpError(w, http.StatusBadRequest, "batch of %d questions exceeds the limit of %d", len(req.Questions), maxBatchQuestions)
		return
	}
	c.mu.Lock()
	cs, ok := c.sets[req.Patterns]
	var ct *coordTable
	if ok {
		ct = c.tables[cs.table]
	}
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown pattern set %q", req.Patterns)
		return
	}
	if ct == nil {
		httpError(w, http.StatusNotFound, "table %q for pattern set is gone", cs.table)
		return
	}

	// Scatter: each question goes to its owning shard's sub-batch; the
	// per-shard batches keep their relative question order so the
	// shard-side builder memo and batch cache behave as on one node.
	// Items with a cached answer never enter a sub-batch — a fully
	// cached batch performs zero shard calls.
	items := make([]batchItemDTO, len(req.Questions))
	keys := make([]string, len(req.Questions))
	subIdx := make([][]int, len(c.cfg.Shards)) // original index per shard sub-batch
	subQs := make([][]QuestionSpec, len(c.cfg.Shards))
	for i, spec := range req.Questions {
		items[i].Index = i
		owner, err := c.ownerOf(ct, spec.GroupBy, spec.Tuple)
		if err != nil {
			items[i].Status = http.StatusUnprocessableEntity
			items[i].Error = err.Error()
			continue
		}
		if cs.anscache != nil {
			keys[i] = ansKey('b', cs.version, ct.gen, ct.epochs[owner], spec,
				req.K, req.Parallelism, req.Numeric, req.Weights)
			if _, v, ok := cs.anscache.lookup(keys[i]); ok {
				items[i] = reindexed(v.(batchItemDTO), i)
				continue
			}
		}
		subIdx[owner] = append(subIdx[owner], i)
		subQs[owner] = append(subQs[owner], spec)
	}
	type batchResp struct {
		Items []batchItemDTO `json:"items"`
	}
	type res struct {
		resp   batchResp
		status int
		body   []byte
		err    error
		sent   bool
	}
	results := make([]res, len(c.cfg.Shards))
	var wg sync.WaitGroup
	for s := range c.cfg.Shards {
		if len(subQs[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sub := ExplainBatchRequest{
				Patterns: cs.shardPS[s], Questions: subQs[s],
				K: req.K, Parallelism: req.Parallelism,
				Numeric: req.Numeric, Weights: req.Weights,
			}
			var br batchResp
			status, body, err := c.shardJSON(r.Context(), s, http.MethodPost, "/v1/explain/batch", sub, &br)
			results[s] = res{resp: br, status: status, body: body, err: err, sent: true}
		}(s)
	}
	wg.Wait()
	for s, re := range results {
		if !re.sent {
			continue
		}
		if re.err != nil || re.status != http.StatusOK {
			shardErrf(w, s, c.cfg.Shards[s], re.status, re.body, re.err)
			return
		}
		if len(re.resp.Items) != len(subIdx[s]) {
			httpError(w, http.StatusBadGateway, "shard %d answered %d of %d batch items", s, len(re.resp.Items), len(subIdx[s]))
			return
		}
		// Gather: items come back in sub-batch order; restore the
		// caller's indices. Deterministic items (200/400) are cached at
		// index 0 for future batches.
		for j, it := range re.resp.Items {
			orig := subIdx[s][j]
			it.Index = orig
			items[orig] = it
			if cs.anscache != nil && (it.Status == http.StatusOK || it.Status == http.StatusBadRequest) {
				cs.anscache.insert(keys[orig], it.Status, reindexed(it, 0))
			}
		}
	}
	okCount := 0
	for _, it := range items {
		if it.Status == http.StatusOK {
			okCount++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"items":  items,
		"ok":     okCount,
		"failed": len(items) - okCount,
	})
}

// ---- status ----

// coordShardStatus is the decoded shard GET /v1 body plus reachability.
type coordShardStatus struct {
	URL    string `json:"url"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Tables []struct {
		Name          string `json:"name"`
		Rows          int    `json:"rows"`
		Epoch         uint64 `json:"epoch"`
		Durable       bool   `json:"durable,omitempty"`
		WriteDisabled bool   `json:"writeDisabled,omitempty"`
		WriteError    string `json:"writeError,omitempty"`
	} `json:"tables,omitempty"`
	PatternSets []struct {
		ID        string `json:"id"`
		Table     string `json:"table"`
		Patterns  int    `json:"patterns"`
		Freshness string `json:"freshness"`
		Stale     bool   `json:"stale"`
	} `json:"patternSets,omitempty"`
}

// handleStatus aggregates GET /v1 across shards: deployment-wide table
// totals, per-set freshness (worst across shards), and an explicit
// diverged list — any shard that is unreachable, write-disabled, or
// reports a diverged pattern set.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	shards := make([]coordShardStatus, len(c.cfg.Shards))
	var wg sync.WaitGroup
	for i := range c.cfg.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shards[i].URL = c.cfg.Shards[i]
			var body struct {
				Tables      json.RawMessage `json:"tables"`
				PatternSets json.RawMessage `json:"patternSets"`
			}
			status, raw, err := c.shardJSON(r.Context(), i, http.MethodGet, "/v1", nil, &body)
			if err != nil {
				shards[i].Error = err.Error()
				return
			}
			if status != http.StatusOK {
				shards[i].Error = fmt.Sprintf("status %d: %s", status, strings.TrimSpace(string(raw)))
				return
			}
			_ = json.Unmarshal(body.Tables, &shards[i].Tables)
			_ = json.Unmarshal(body.PatternSets, &shards[i].PatternSets)
			shards[i].OK = true
		}(i)
	}
	wg.Wait()

	type tableAgg struct {
		Name          string `json:"name"`
		Rows          int    `json:"rows"`
		Durable       bool   `json:"durable,omitempty"`
		WriteDisabled bool   `json:"writeDisabled,omitempty"`
	}
	tables := make(map[string]*tableAgg)
	var diverged []string
	divergedSeen := make(map[string]bool)
	markDiverged := func(i int, why string) {
		entry := fmt.Sprintf("%s: %s", c.cfg.Shards[i], why)
		if !divergedSeen[entry] {
			divergedSeen[entry] = true
			diverged = append(diverged, entry)
		}
	}
	for i, sh := range shards {
		if !sh.OK {
			markDiverged(i, "unreachable: "+sh.Error)
			continue
		}
		for _, t := range sh.Tables {
			agg, ok := tables[t.Name]
			if !ok {
				agg = &tableAgg{Name: t.Name}
				tables[t.Name] = agg
			}
			agg.Rows += t.Rows
			agg.Durable = agg.Durable || t.Durable
			if t.WriteDisabled {
				agg.WriteDisabled = true
				markDiverged(i, fmt.Sprintf("table %q write-disabled: %s", t.Name, t.WriteError))
			}
		}
	}

	c.mu.Lock()
	setIDs := make([]string, 0, len(c.sets))
	for id := range c.sets {
		setIDs = append(setIDs, id)
	}
	sort.Strings(setIDs)
	type setAgg struct {
		ID        string `json:"id"`
		Table     string `json:"table"`
		Patterns  int    `json:"patterns"`
		Freshness string `json:"freshness"`
		// Version counts admission changes; with the per-shard epochs
		// it keys the coordinator-tier answer cache, whose counters
		// follow. A high hit rate here means questions are answered
		// without any shard fan-out.
		Version uint64            `json:"version"`
		Cache   *answerCacheStats `json:"answerCache,omitempty"`
	}
	sets := make([]setAgg, 0, len(setIDs))
	for _, id := range setIDs {
		cs := c.sets[id]
		agg := setAgg{ID: id, Table: cs.table, Patterns: len(cs.admitted), Freshness: "fresh", Version: cs.version}
		if cs.anscache != nil {
			acs := cs.anscache.stats()
			agg.Cache = &acs
		}
		for i, sh := range shards {
			if !sh.OK {
				agg.Freshness = "unknown"
				continue
			}
			for _, ss := range sh.PatternSets {
				if ss.ID != cs.shardPS[i] {
					continue
				}
				switch ss.Freshness {
				case "diverged":
					agg.Freshness = "diverged"
					markDiverged(i, fmt.Sprintf("pattern set %s diverged from table %q", ss.ID, ss.Table))
				case "behind", "unknown":
					if agg.Freshness == "fresh" {
						agg.Freshness = ss.Freshness
					}
				}
			}
		}
		sets = append(sets, agg)
	}
	c.mu.Unlock()

	tableList := make([]*tableAgg, 0, len(tables))
	for _, t := range tables {
		tableList = append(tableList, t)
	}
	sort.Slice(tableList, func(i, j int) bool { return tableList[i].Name < tableList[j].Name })
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"role":        "coordinator",
		"shardKey":    c.cfg.Key,
		"shards":      shards,
		"tables":      tableList,
		"patternSets": sets,
		"diverged":    diverged,
	})
}
