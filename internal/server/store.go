package server

import (
	"fmt"
	"path/filepath"
	"strings"

	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/store"
)

// Durable tables: a table attached via AttachStore is backed by a
// crash-safe WAL store (internal/store). /v1/append routes through the
// store — the response is sent only after the batch is WAL-durable per
// the store's fsync policy — and a restart recovers the table, with its
// exact epoch trajectory, from the data directory instead of requiring
// a re-load and re-mine.

// AttachStore registers a WAL-backed table: the store's backing
// relation becomes the served table and appends route through the WAL.
func (s *Server) AttachStore(name string, st *store.Store) error {
	tab, ok := st.Table().(*engine.Table)
	if !ok {
		return fmt.Errorf("server: store for %q has backing %T; the server serves dense tables", name, st.Table())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.stores[name]; exists {
		return fmt.Errorf("server: table %q already has a store attached", name)
	}
	s.tables[name] = tab
	s.tableGen[name]++
	s.stores[name] = st
	return nil
}

// storeFor looks up the WAL store backing a table, if any.
func (s *Server) storeFor(name string) (*store.Store, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.stores[name]
	return st, ok
}

// CloseStores flushes and closes every attached store — the graceful-
// shutdown path that seals WAL tails into segments so the next boot
// replays nothing. The first error is returned; all stores are still
// closed.
func (s *Server) CloseStores() error {
	s.mu.Lock()
	stores := make([]*store.Store, 0, len(s.stores))
	for _, st := range s.stores {
		stores = append(stores, st)
	}
	s.mu.Unlock()
	var first error
	for _, st := range stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BootstrapStore creates a durable store for a freshly loaded table
// under the server's data directory (DataDir must be set) and attaches
// it: the table's rows are sealed into a first segment and its epoch
// recorded, so later recoveries and pattern-store stamps line up.
// handleLoadTable uses it for every new table when DataDir is
// configured; capeserver uses it for -load bootstraps.
func (s *Server) BootstrapStore(name string, tab *engine.Table) error {
	if err := validateStoreName(name); err != nil {
		return err
	}
	st, err := store.Bootstrap(filepath.Join(s.DataDir, name), name, tab, s.StoreOptions)
	if err != nil {
		return err
	}
	return s.AttachStore(name, st)
}

// validateStoreName keeps table names usable as directory names under
// the data dir.
func validateStoreName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, `/\`) || strings.HasPrefix(name, ".") {
		return fmt.Errorf("server: table name %q is not usable as a data directory name", name)
	}
	return nil
}

// ---- pattern-store staleness classification ----

// stampClass says how a pattern store's stamp relates to the live shape
// of its table. The distinction that matters operationally: a set
// strictly *behind* the table describes a prefix of its history and
// incremental maintenance heals it, while a set *ahead* of the table on
// either axis was mined against a different history — catch-up cannot
// reconcile it and only a re-mine can.
type stampClass int

const (
	stampFresh    stampClass = iota // matches the table exactly
	stampUnknown                    // no stamp (legacy store): undetectable
	stampBehind                     // strictly behind: maintainable
	stampDiverged                   // ahead on rows or epoch: must re-mine
)

func (c stampClass) String() string {
	switch c {
	case stampFresh:
		return "fresh"
	case stampUnknown:
		return "unknown"
	case stampBehind:
		return "behind"
	case stampDiverged:
		return "diverged"
	default:
		return fmt.Sprintf("stampClass(%d)", int(c))
	}
}

// classifyStamp compares a stamp against a table's live row count and
// epoch.
func classifyStamp(stamp *pattern.StoreStamp, rows int, epoch uint64) stampClass {
	switch {
	case stamp == nil:
		return stampUnknown
	case stamp.Rows == rows && stamp.Epoch == epoch:
		return stampFresh
	case stamp.Rows <= rows && stamp.Epoch <= epoch:
		return stampBehind
	default:
		return stampDiverged
	}
}

// staleWarning renders the operator-facing message for a non-fresh
// stamp; empty for fresh/unknown.
func staleWarning(table string, c stampClass, stamp *pattern.StoreStamp, rows int, epoch uint64, maintainable bool) string {
	switch c {
	case stampBehind:
		heal := "POST /v1/append or re-mine to refresh"
		if maintainable {
			heal = "maintainable: the next POST /v1/append heals it"
		}
		return fmt.Sprintf(
			"pattern store for table %q is STALE: mined at rows=%d epoch=%d, table has rows=%d epoch=%d — explanations may not reflect current data (%s)",
			table, stamp.Rows, stamp.Epoch, rows, epoch, heal)
	case stampDiverged:
		return fmt.Sprintf(
			"pattern store for table %q has an EPOCH MISMATCH: mined at rows=%d epoch=%d but the table has rows=%d epoch=%d — the mined history is not a prefix of this table, so maintenance cannot heal it; re-mine",
			table, stamp.Rows, stamp.Epoch, rows, epoch)
	default:
		return ""
	}
}
