package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// batchResponse mirrors the /v1/explain/batch wire shape for decoding
// in tests.
type batchResponse struct {
	Items []struct {
		Index        int    `json:"index"`
		Status       int    `json:"status"`
		Question     string `json:"question"`
		Error        string `json:"error"`
		Explanations []struct {
			Tuple []string `json:"tuple"`
			Score float64  `json:"score"`
		} `json:"explanations"`
		Stats *struct {
			RelevantPatterns int `json:"RelevantPatterns"`
			Candidates       int `json:"Candidates"`
		} `json:"stats"`
	} `json:"items"`
	OK     int `json:"ok"`
	Failed int `json:"failed"`
}

func postBatch(t *testing.T, ts *httptest.Server, req ExplainBatchRequest) (*http.Response, batchResponse) {
	t.Helper()
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/explain/batch", req)
	var out batchResponse
	buf, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func sigkddSpec() QuestionSpec {
	return QuestionSpec{
		GroupBy: []string{"author", "venue", "year"},
		Tuple:   []string{"AX", "SIGKDD", "2007"},
		Dir:     "low",
	}
}

// TestExplainBatchEndpoint: a mixed batch returns HTTP 200 with
// per-item statuses — good questions answered, bad ones carrying their
// own 400 items, duplicates answered identically.
func TestExplainBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	ps := mineExample(t, ts)

	req := ExplainBatchRequest{
		Patterns: ps,
		K:        5,
		Numeric:  map[string]float64{"year": 4},
		Questions: []QuestionSpec{
			sigkddSpec(),
			{GroupBy: []string{"author", "venue", "year"}, Tuple: []string{"AX", "ICDE", "2007"}, Dir: "high"},
			sigkddSpec(), // duplicate of item 0
			{GroupBy: []string{"author"}, Tuple: []string{"AX", "extra"}, Dir: "low"},                                // arity
			{GroupBy: []string{"author", "venue", "year"}, Tuple: []string{"AX", "SIGKDD", "2007"}, Dir: "sideways"}, // bad dir
			{GroupBy: []string{"author", "venue", "year"}, Tuple: []string{"NOBODY", "X", "1900"}, Dir: "low"},       // not a result
		},
	}
	resp, out := postBatch(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if out.OK != 3 || out.Failed != 3 || len(out.Items) != 6 {
		t.Fatalf("ok=%d failed=%d items=%d", out.OK, out.Failed, len(out.Items))
	}
	for _, i := range []int{0, 1, 2} {
		it := out.Items[i]
		if it.Status != http.StatusOK || it.Error != "" || len(it.Explanations) == 0 || it.Stats == nil {
			t.Errorf("item %d = %+v", i, it)
		}
	}
	for _, i := range []int{3, 4, 5} {
		it := out.Items[i]
		if it.Status != http.StatusBadRequest || it.Error == "" || len(it.Explanations) != 0 {
			t.Errorf("item %d should be a per-item 400: %+v", i, it)
		}
	}
	// The SIGKDD-low question must surface the ICDE 2007 counterbalance.
	found := false
	for _, e := range out.Items[0].Explanations {
		if strings.Contains(strings.Join(e.Tuple, ","), "ICDE") {
			found = true
		}
	}
	if !found {
		t.Errorf("item 0 missing the ICDE counterbalance: %+v", out.Items[0])
	}
	// Duplicate items answer identically.
	if fmt.Sprint(out.Items[0].Explanations) != fmt.Sprint(out.Items[2].Explanations) {
		t.Error("duplicate question answered differently")
	}
}

// TestExplainBatchMatchesSingle: every batch item must equal the
// /v1/explain answer for the same question — the endpoint-level
// differential check.
func TestExplainBatchMatchesSingle(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	ps := mineExample(t, ts)

	specs := []QuestionSpec{
		sigkddSpec(),
		{GroupBy: []string{"author", "venue", "year"}, Tuple: []string{"AX", "ICDE", "2007"}, Dir: "high"},
		{GroupBy: []string{"author", "year"}, Tuple: []string{"AX", "2007"}, Dir: "low"},
	}
	_, out := postBatch(t, ts, ExplainBatchRequest{
		Patterns: ps, K: 5, Numeric: map[string]float64{"year": 4}, Questions: specs,
	})
	for i, spec := range specs {
		resp, single := doJSON(t, "POST", ts.URL+"/v1/explain", ExplainRequest{
			Patterns: ps, K: 5, Numeric: map[string]float64{"year": 4},
			GroupBy: spec.GroupBy, Tuple: spec.Tuple, Dir: spec.Dir,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single explain %d status = %d", i, resp.StatusCode)
		}
		buf, _ := json.Marshal(single["explanations"])
		var singleExpls []struct {
			Tuple []string `json:"tuple"`
			Score float64  `json:"score"`
		}
		if err := json.Unmarshal(buf, &singleExpls); err != nil {
			t.Fatal(err)
		}
		got := out.Items[i].Explanations
		if len(got) != len(singleExpls) {
			t.Fatalf("question %d: batch %d explanations, single %d", i, len(got), len(singleExpls))
		}
		for j := range got {
			if got[j].Score != singleExpls[j].Score || strings.Join(got[j].Tuple, ",") != strings.Join(singleExpls[j].Tuple, ",") {
				t.Errorf("question %d rank %d: batch %v/%g vs single %v/%g",
					i, j, got[j].Tuple, got[j].Score, singleExpls[j].Tuple, singleExpls[j].Score)
			}
		}
	}
}

// TestExplainBatchErrors covers the whole-request failure modes that do
// return a non-200: empty batches, oversized batches, unknown pattern
// sets, bad metrics, malformed bodies.
func TestExplainBatchErrors(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	ps := mineExample(t, ts)

	cases := []struct {
		name   string
		req    interface{}
		status int
	}{
		{"no questions", ExplainBatchRequest{Patterns: ps}, http.StatusBadRequest},
		{"unknown pattern set", ExplainBatchRequest{Patterns: "ps-999", Questions: []QuestionSpec{sigkddSpec()}}, http.StatusNotFound},
		{"bad metric", ExplainBatchRequest{Patterns: ps, Questions: []QuestionSpec{sigkddSpec()},
			Numeric: map[string]float64{"year": -1}}, http.StatusBadRequest},
		{"unknown field", map[string]interface{}{"patterns": ps, "bogus": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := doJSON(t, "POST", ts.URL+"/v1/explain/batch", tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	over := ExplainBatchRequest{Patterns: ps}
	for i := 0; i <= maxBatchQuestions; i++ {
		over.Questions = append(over.Questions, sigkddSpec())
	}
	resp, _ := doJSON(t, "POST", ts.URL+"/v1/explain/batch", over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", resp.StatusCode)
	}
}

// TestExplainBatchConcurrentStress posts many overlapping batches from
// concurrent goroutines against one pattern set. Every response must be
// identical to the reference answer computed up front — proving the
// shared explainer cache cannot be poisoned across batches — and with
// -race this doubles as the batch path's data-race check.
func TestExplainBatchConcurrentStress(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	ps := mineExample(t, ts)

	// Two overlapping batch shapes plus per-item errors in flight.
	reqs := []ExplainBatchRequest{
		{Patterns: ps, K: 5, Numeric: map[string]float64{"year": 4}, Questions: []QuestionSpec{
			sigkddSpec(),
			{GroupBy: []string{"author", "venue", "year"}, Tuple: []string{"AX", "ICDE", "2007"}, Dir: "high"},
			{GroupBy: []string{"author"}, Tuple: []string{"AX"}, Dir: "sideways"},
		}},
		{Patterns: ps, K: 5, Numeric: map[string]float64{"year": 4}, Questions: []QuestionSpec{
			{GroupBy: []string{"author", "year"}, Tuple: []string{"AX", "2007"}, Dir: "low"},
			sigkddSpec(),
		}},
	}
	// Canonical JSON comparison: the decoded struct holds a Stats
	// pointer, whose address would make fmt.Sprint differ per response.
	// Candidates is zeroed first — at the server's default parallelism a
	// stale score bound can skip a different set of refinements (and
	// their candidate scans) per run; everything else must be
	// byte-stable.
	canon := func(out batchResponse) (string, error) {
		for _, it := range out.Items {
			if it.Stats != nil {
				it.Stats.Candidates = 0
			}
		}
		buf, err := json.Marshal(out)
		return string(buf), err
	}
	want := make([]string, len(reqs))
	for i, req := range reqs {
		_, out := postBatch(t, ts, req)
		s, err := canon(out)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}

	// Goroutine-safe poster: test helpers call t.Fatal, which must stay
	// on the test goroutine, so the workers report over a channel.
	post := func(req ExplainBatchRequest) (batchResponse, error) {
		var out batchResponse
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			return out, err
		}
		resp, err := http.Post(ts.URL+"/v1/explain/batch", "application/json", &body)
		if err != nil {
			return out, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return out, fmt.Errorf("status %d", resp.StatusCode)
		}
		return out, json.NewDecoder(resp.Body).Decode(&out)
	}

	const clients = 12
	const rounds = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(reqs)
				out, err := post(reqs[i])
				if err != nil {
					errCh <- fmt.Errorf("client %d round %d: %v", c, r, err)
					return
				}
				got, err := canon(out)
				if err != nil {
					errCh <- err
					return
				}
				if got != want[i] {
					errCh <- fmt.Errorf("client %d round %d: response drifted:\n got %s\nwant %s", c, r, got, want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
