package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/exp"
)

// The sharded differential suite: a coordinator over n shards must
// answer explain, batch-explain, and append-then-explain request
// sequences byte-identically to one capeserver holding all the rows and
// the same admitted pattern set, across multiple shard counts. This is
// the correctness pin for the whole deployment mode — routing, global
// admission, fragment colocation, and the merge contract all have to
// hold simultaneously for the bodies to match.

// shardedFixture is one coordinator + n shard servers + the single-node
// baseline, all loaded with the same partitioned table and logically
// identical pattern sets.
type shardedFixture struct {
	coordURL string
	baseURL  string
	baseSrv  *Server
	coordID  string // coordinator pattern set id
	baseID   string // baseline pattern set id
}

const diffShardKey = "author"

var diffMine = MineRequest{
	Table:          "pub",
	MaxPatternSize: 3,
	Attributes:     []string{"author", "venue", "year"},
	Theta:          0.15, LocalSupport: 3, Lambda: 0.25, GlobalSupport: 2,
	Aggregates: []string{"count"},
}

// newShardedFixture spins up n shards + coordinator + baseline, loads
// csv into both deployments, mines, and aligns the baseline's served
// patterns with the coordinator's admitted set.
func newShardedFixture(t *testing.T, n int, csv []byte) *shardedFixture {
	t.Helper()
	shardURLs := make([]string, n)
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(New())
		t.Cleanup(ts.Close)
		shardURLs[i] = ts.URL
	}
	coord, err := NewCoordinator(CoordConfig{Shards: shardURLs, Key: []string{diffShardKey}})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)

	baseSrv := New()
	bts := httptest.NewServer(baseSrv)
	t.Cleanup(bts.Close)

	f := &shardedFixture{coordURL: cts.URL, baseURL: bts.URL, baseSrv: baseSrv}
	for _, url := range []string{cts.URL, bts.URL} {
		resp, err := http.Post(url+"/v1/tables?name=pub", "text/csv", bytes.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("load table on %s: status %d", url, resp.StatusCode)
		}
	}

	// Coordinator mines with the real thresholds; it loosens the global
	// gates shard-side and re-applies them to the summed evidence.
	resp, out := doJSON(t, "POST", cts.URL+"/v1/mine", diffMine)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("coordinator mine: %d %v", resp.StatusCode, out)
	}
	f.coordID = out["id"].(string)

	// The baseline serves exactly the deployment's pattern algebra: a
	// loosened withStats mine filtered to the coordinator's admitted
	// keys via the same admission endpoint the shards use.
	loose := diffMine
	loose.WithStats = true
	loose.Lambda = 0
	loose.GlobalSupport = 1
	resp, out = doJSON(t, "POST", bts.URL+"/v1/mine", loose)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("baseline mine: %d %v", resp.StatusCode, out)
	}
	f.baseID = out["id"].(string)
	f.alignAdmission(t)
	return f
}

// alignAdmission pushes the coordinator's current admitted key set to
// the baseline server.
func (f *shardedFixture) alignAdmission(t *testing.T) {
	t.Helper()
	keys := f.coordAdmittedKeys(t)
	resp, out := doJSON(t, "POST", f.baseURL+"/v1/patterns/"+f.baseID+"/admit", AdmitRequest{Keys: keys})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline admit: %d %v", resp.StatusCode, out)
	}
	if got := int(out["patterns"].(float64)); got != len(keys) {
		// Every globally-admitted pattern must exist on the node that
		// holds all the rows.
		t.Fatalf("baseline serves %d of %d admitted patterns", got, len(keys))
	}
}

func (f *shardedFixture) coordAdmittedKeys(t *testing.T) []string {
	t.Helper()
	resp, out := doJSON(t, "GET", f.coordURL+"/v1/patterns/"+f.coordID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator patterns: %d %v", resp.StatusCode, out)
	}
	var keys []string
	for _, p := range out["patterns"].([]interface{}) {
		keys = append(keys, p.(map[string]interface{})["key"].(string))
	}
	return keys
}

func diffTable(rows int) *engine.Table {
	return dataset.GenerateDBLP(dataset.DBLPConfig{
		Rows: rows, Seed: 11, NumVenues: 6, StartYear: 2004, EndYear: 2010,
	})
}

// diffQuestions derives wire question specs from randomized questions
// biased toward large groups (the same generator the benchmarks use).
func diffQuestions(t *testing.T, tab *engine.Table, n int, seed int64) []QuestionSpec {
	t.Helper()
	groupBy := []string{"author", "venue", "year"}
	qs, err := exp.RandomQuestions(tab, groupBy, engine.AggSpec{Func: engine.Count}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]QuestionSpec, len(qs))
	for i, q := range qs {
		tuple := make([]string, len(q.Values))
		for j, v := range q.Values {
			tuple[j] = v.String()
		}
		specs[i] = QuestionSpec{GroupBy: groupBy, Aggregate: "count(*)", Tuple: tuple, Dir: q.Dir.String()}
	}
	return specs
}

// explainView extracts the comparable part of an explain response:
// status, question, and the explanations JSON. Stats are deliberately
// excluded — they are work counters and deployment-specific (an owner
// shard enumerates only its partition's candidates).
func explainView(t *testing.T, resp *http.Response, body map[string]interface{}) string {
	t.Helper()
	view := map[string]interface{}{
		"status":       resp.StatusCode,
		"question":     body["question"],
		"explanations": body["explanations"],
		"error":        body["error"],
	}
	b, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// diffExplain compares one question across deployments and reports
// whether it produced any explanations (for vacuousness guards).
func (f *shardedFixture) diffExplain(t *testing.T, spec QuestionSpec, k int) bool {
	t.Helper()
	mk := func(ps string) ExplainRequest {
		return ExplainRequest{
			Patterns: ps, GroupBy: spec.GroupBy, Aggregate: spec.Aggregate,
			Tuple: spec.Tuple, Dir: spec.Dir, K: k,
		}
	}
	cResp, cBody := doJSON(t, "POST", f.coordURL+"/v1/explain", mk(f.coordID))
	bResp, bBody := doJSON(t, "POST", f.baseURL+"/v1/explain", mk(f.baseID))
	got, want := explainView(t, cResp, cBody), explainView(t, bResp, bBody)
	if got != want {
		t.Fatalf("sharded explain diverges for %v:\n sharded: %s\n single:  %s", spec.Tuple, got, want)
	}
	expls, _ := cBody["explanations"].([]interface{})
	return len(expls) > 0
}

func (f *shardedFixture) diffBatch(t *testing.T, specs []QuestionSpec, k int) {
	t.Helper()
	mk := func(ps string) ExplainBatchRequest {
		return ExplainBatchRequest{Patterns: ps, Questions: specs, K: k}
	}
	cResp, cBody := doJSON(t, "POST", f.coordURL+"/v1/explain/batch", mk(f.coordID))
	bResp, bBody := doJSON(t, "POST", f.baseURL+"/v1/explain/batch", mk(f.baseID))
	if cResp.StatusCode != http.StatusOK || bResp.StatusCode != http.StatusOK {
		t.Fatalf("batch statuses: sharded %d, single %d", cResp.StatusCode, bResp.StatusCode)
	}
	cItems := cBody["items"].([]interface{})
	bItems := bBody["items"].([]interface{})
	if len(cItems) != len(bItems) {
		t.Fatalf("batch item counts: sharded %d, single %d", len(cItems), len(bItems))
	}
	for i := range cItems {
		ci := cItems[i].(map[string]interface{})
		bi := bItems[i].(map[string]interface{})
		delete(ci, "stats")
		delete(bi, "stats")
		if !reflect.DeepEqual(ci, bi) {
			cj, _ := json.Marshal(ci)
			bj, _ := json.Marshal(bi)
			t.Fatalf("batch item %d diverges:\n sharded: %s\n single:  %s", i, cj, bj)
		}
	}
	if cBody["ok"] != bBody["ok"] || cBody["failed"] != bBody["failed"] {
		t.Fatalf("batch summary diverges: sharded ok=%v failed=%v, single ok=%v failed=%v",
			cBody["ok"], cBody["failed"], bBody["ok"], bBody["failed"])
	}
}

func rowsToJSON(t *testing.T, tab *engine.Table, from, to int) [][]json.RawMessage {
	t.Helper()
	all := tab.Rows()
	out := make([][]json.RawMessage, 0, to-from)
	for _, row := range all[from:to] {
		cells := make([]json.RawMessage, len(row))
		for j, v := range row {
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			cells[j] = b
		}
		out = append(out, cells)
	}
	return out
}

func TestShardedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded differential is not short")
	}
	const initialRows = 2600
	grown := diffTable(3000) // deterministic superset: rows [initialRows:] get appended later
	initial := engine.NewTable(grown.Schema())
	for _, row := range grown.Rows()[:initialRows] {
		initial.MustAppend(row)
	}
	var csv bytes.Buffer
	if err := initial.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 3, 5} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			f := newShardedFixture(t, n, csv.Bytes())

			// Admission sanity: the coordinator's globally-admitted keys
			// must be exactly the single-node real-threshold mine
			// restricted to key-local patterns.
			resp, out := doJSON(t, "POST", f.baseURL+"/v1/mine", diffMine)
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("reference mine: %d %v", resp.StatusCode, out)
			}
			refID := out["id"].(string)
			_, pout := doJSON(t, "GET", f.baseURL+"/v1/patterns/"+refID, nil)
			var wantKeys []string
			for _, p := range pout["patterns"].([]interface{}) {
				k := p.(map[string]interface{})["key"].(string)
				if keyInPatternF(k, []string{diffShardKey}) {
					wantKeys = append(wantKeys, k)
				}
			}
			gotKeys := f.coordAdmittedKeys(t)
			if len(wantKeys) == 0 {
				t.Fatal("reference mine admitted no key-local patterns; the differential would be vacuous")
			}
			if !reflect.DeepEqual(gotKeys, wantKeys) {
				t.Fatalf("admitted keys diverge:\n sharded: %v\n single:  %v", gotKeys, wantKeys)
			}

			questions := diffQuestions(t, initial, 12, 1000+int64(n))
			answered := 0
			for _, spec := range questions[:6] {
				if f.diffExplain(t, spec, 5) {
					answered++
				}
			}
			if answered == 0 {
				t.Fatal("no question produced any explanation; the differential would be vacuous")
			}
			f.diffBatch(t, questions, 5)

			// Append the deterministic continuation in two batches and
			// re-compare: maintenance, admission refresh, and routing
			// all have to agree with the single node again.
			for _, cut := range []int{2800, 3000} {
				prev := initialRows
				if cut == 3000 {
					prev = 2800
				}
				rows := rowsToJSON(t, grown, prev, cut)
				req := AppendRequest{Table: "pub", Rows: rows}
				bResp, bOut := doJSON(t, "POST", f.baseURL+"/v1/append", req)
				if bResp.StatusCode != http.StatusOK {
					t.Fatalf("baseline append: %d %v", bResp.StatusCode, bOut)
				}
				cResp, cOut := doJSON(t, "POST", f.coordURL+"/v1/append", req)
				if cResp.StatusCode != http.StatusOK {
					t.Fatalf("sharded append: %d %v", cResp.StatusCode, cOut)
				}
				if got := int(cOut["appended"].(float64)); got != len(rows) {
					t.Fatalf("sharded append acked %d of %d rows", got, len(rows))
				}
				if got := int(cOut["rows"].(float64)); got != cut {
					t.Fatalf("sharded deployment reports %d rows, want %d", got, cut)
				}
				f.alignAdmission(t)

				grownSoFar := engine.NewTable(grown.Schema())
				for _, row := range grown.Rows()[:cut] {
					grownSoFar.MustAppend(row)
				}
				postQs := diffQuestions(t, grownSoFar, 8, 2000+int64(n)+int64(cut))
				for _, spec := range postQs[:4] {
					f.diffExplain(t, spec, 5)
				}
				f.diffBatch(t, postQs, 5)
			}
		})
	}
}

// TestShardedQuestionRouting pins routing-level behaviors that the
// differential cannot see: questions not grouped by the shard key are
// rejected, and unknown groups return the single-node error.
func TestShardedQuestionRouting(t *testing.T) {
	tab := diffTable(1200)
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	f := newShardedFixture(t, 2, csv.Bytes())

	resp, out := doJSON(t, "POST", f.coordURL+"/v1/explain", ExplainRequest{
		Patterns: f.coordID, GroupBy: []string{"venue", "year"},
		Tuple: []string{"SIGKDD", "2005"}, Dir: "low",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("non-key question status = %d %v, want 422", resp.StatusCode, out)
	}

	resp, out = doJSON(t, "POST", f.coordURL+"/v1/explain", ExplainRequest{
		Patterns: f.coordID, GroupBy: []string{"author", "venue", "year"},
		Tuple: []string{"no-such-author", "SIGKDD", "2005"}, Dir: "low",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown group status = %d %v, want 400", resp.StatusCode, out)
	}
}
