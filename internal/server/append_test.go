package server

import (
	"bytes"
	"net/http"
	"reflect"
	"testing"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/regress"
	"cape/internal/value"
)

// appendRows is the JSON-shaped batch used across these tests; it
// matches the running-example schema (author, venue, year).
func appendBody(rows ...[]interface{}) map[string]interface{} {
	return map[string]interface{}{"table": "pub", "rows": rows}
}

// exampleMiningOpts mirrors mineExample's MineRequest, so a cold
// ARPMine under these options is the ground truth for what a maintained
// /v1/mine set must equal.
func exampleMiningOpts() mining.Options {
	return mining.Options{
		MaxPatternSize: 3,
		Thresholds: pattern.Thresholds{
			Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2,
		},
		AggFuncs: []engine.AggFunc{engine.Count},
		Models:   []regress.ModelType{regress.Const, regress.Lin},
	}
}

func explainExample(t *testing.T, url, id string) interface{} {
	t.Helper()
	resp, out := doJSON(t, "POST", url+"/v1/explain", ExplainRequest{
		Patterns: id,
		GroupBy:  []string{"author", "venue", "year"},
		Tuple:    []string{"AX", "SIGKDD", "2007"},
		Dir:      "low",
		K:        5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d: %v", resp.StatusCode, out)
	}
	return out["explanations"]
}

// requireSetEquals pins a registered pattern set byte-identical to a
// cold re-mine over the given table under the set's own recorded spec.
func requireSetEquals(t *testing.T, s *Server, id string, tab *engine.Table) {
	t.Helper()
	s.mu.RLock()
	ps := s.patterns[id]
	s.mu.RUnlock()
	if ps == nil {
		t.Fatalf("no pattern set %s", id)
	}
	opt, err := mining.OptionsFromSpec(ps.spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := pattern.WriteJSON(&got, ps.patterns); err != nil {
		t.Fatal(err)
	}
	if err := pattern.WriteJSON(&want, res.Patterns); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("maintained set %s diverges from cold re-mine:\n%s\nvs\n%s", id, &got, &want)
	}
}

// TestAppendMaintainsPatternSet is the core endpoint contract: POST
// /v1/append grows the table, reports "maintained" for its mined set,
// and leaves the set byte-identical to a full re-mine over the grown
// table — with explanations to match.
func TestAppendMaintainsPatternSet(t *testing.T) {
	s, ts := newTestServer(t)
	loadRunningExample(t, ts)
	id := mineExample(t, ts)
	explainExample(t, ts.URL, id) // warm the group-by cache pre-append

	resp, out := doJSON(t, "POST", ts.URL+"/v1/append", appendBody(
		[]interface{}{"AX", "VLDB", 2008},
		[]interface{}{"NEW", "SIGKDD", 2009},
		[]interface{}{"AY", "ICDE", 2005},
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d: %v", resp.StatusCode, out)
	}
	if out["appended"].(float64) != 3 || out["rows"].(float64) != 153 {
		t.Errorf("append response = %v", out)
	}
	sets := out["patternSets"].([]interface{})
	if len(sets) != 1 {
		t.Fatalf("patternSets = %v", sets)
	}
	st := sets[0].(map[string]interface{})
	if st["id"] != id || st["status"] != "maintained" {
		t.Errorf("set status = %v", st)
	}

	grown := dataset.RunningExample()
	if err := grown.AppendRows([]value.Tuple{
		{value.NewString("AX"), value.NewString("VLDB"), value.NewInt(2008)},
		{value.NewString("NEW"), value.NewString("SIGKDD"), value.NewInt(2009)},
		{value.NewString("AY"), value.NewString("ICDE"), value.NewInt(2005)},
	}); err != nil {
		t.Fatal(err)
	}
	requireSetEquals(t, s, id, grown)

	// The cached explainer must answer from the maintained patterns and
	// a recomputed (epoch-invalidated) group-by: identical to a fresh
	// server that loaded the grown table and mined from scratch.
	_, ts2 := newTestServer(t)
	var csv bytes.Buffer
	if err := grown.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts2.URL+"/v1/tables?name=pub", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	id2 := mineExample(t, ts2)
	got := explainExample(t, ts.URL, id)
	want := explainExample(t, ts2.URL, id2)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-append explanations diverge from fresh server:\n%v\nvs\n%v", got, want)
	}
}

// TestAppendAtomicOnBadRows pins that a batch with any invalid row is
// rejected with 400 and leaves the table, its epoch, and its pattern
// sets untouched.
func TestAppendAtomicOnBadRows(t *testing.T) {
	s, ts := newTestServer(t)
	loadRunningExample(t, ts)
	id := mineExample(t, ts)
	s.mu.RLock()
	before := s.patterns[id].patterns
	epoch := s.tables["pub"].Epoch()
	s.mu.RUnlock()

	cases := []map[string]interface{}{
		// Arity mismatch in the second row: nothing from the batch lands.
		appendBody([]interface{}{"AX", "VLDB", 2008}, []interface{}{"short"}),
		// Booleans have no value kind; the parse error precedes any append.
		appendBody([]interface{}{"AX", "VLDB", true}),
		{"table": "ghost", "rows": [][]interface{}{{"x"}}},
	}
	wants := []int{http.StatusBadRequest, http.StatusBadRequest, http.StatusNotFound}
	for i, body := range cases {
		resp, _ := doJSON(t, "POST", ts.URL+"/v1/append", body)
		if resp.StatusCode != wants[i] {
			t.Errorf("case %d: status = %d, want %d", i, resp.StatusCode, wants[i])
		}
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tables["pub"].NumRows() != 150 || s.tables["pub"].Epoch() != epoch {
		t.Errorf("table mutated by rejected appends: rows=%d epoch=%d",
			s.tables["pub"].NumRows(), s.tables["pub"].Epoch())
	}
	if &s.patterns[id].patterns[0] != &before[0] {
		t.Error("pattern set replaced by rejected append")
	}
}

// TestStatusReportsStaleness exercises GET /v1 across the three
// freshness states: a fresh mined set, a stamped-but-stale store entry,
// and a legacy un-stamped one.
func TestStatusReportsStaleness(t *testing.T) {
	s, ts := newTestServer(t)
	loadRunningExample(t, ts)
	freshID := mineExample(t, ts)

	tab := dataset.RunningExample()
	opt := exampleMiningOpts()
	res, err := mining.ARPMine(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := mining.SpecFor(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	staleID, warning := s.AddPatternSetEntry(&pattern.StoreEntry{
		Table: "pub", Patterns: res.Patterns,
		Stamp: &pattern.StoreStamp{Epoch: 10, Rows: 10},
		Spec:  spec,
	})
	if warning == "" {
		t.Error("stale entry registered without warning")
	}
	legacyID, warning := s.AddPatternSetEntry(&pattern.StoreEntry{
		Table: "pub", Patterns: res.Patterns,
	})
	if warning != "" {
		t.Errorf("legacy un-stamped entry warned: %q", warning)
	}
	orphanID, warning := s.AddPatternSetEntry(&pattern.StoreEntry{
		Table: "nosuch", Patterns: res.Patterns,
	})
	if warning == "" {
		t.Error("entry for unloaded table registered without warning")
	}

	resp, out := doJSON(t, "GET", ts.URL+"/v1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	tables := out["tables"].([]interface{})
	if len(tables) != 1 {
		t.Fatalf("tables = %v", tables)
	}
	pub := tables[0].(map[string]interface{})
	if pub["name"] != "pub" || pub["rows"].(float64) != 150 {
		t.Errorf("table status = %v", pub)
	}

	byID := map[string]map[string]interface{}{}
	for _, raw := range out["patternSets"].([]interface{}) {
		st := raw.(map[string]interface{})
		byID[st["id"].(string)] = st
	}
	check := func(id string, stamped, maintainable, stale bool) {
		t.Helper()
		st := byID[id]
		if st == nil {
			t.Fatalf("set %s missing from status", id)
		}
		if st["stamped"] != stamped || st["maintainable"] != maintainable || st["stale"] != stale {
			t.Errorf("set %s status = %v, want stamped=%v maintainable=%v stale=%v",
				id, st, stamped, maintainable, stale)
		}
		if stale && st["reason"] == "" {
			t.Errorf("stale set %s has no reason", id)
		}
	}
	check(freshID, true, true, false)
	check(staleID, true, true, true)
	check(legacyID, false, false, false)
	check(orphanID, false, false, true)
}

// TestAppendHealsStaleStore pins the healing path: a store that was
// already stale when loaded is rebuilt from the live table on the first
// append, after which it equals a cold re-mine and reports fresh.
func TestAppendHealsStaleStore(t *testing.T) {
	s, ts := newTestServer(t)
	tab := dataset.RunningExample()
	s.AddTable("pub", tab)

	// Mine over a truncated copy so the stored patterns genuinely differ
	// from what the full table would yield.
	small := engine.NewTable(tab.Schema())
	if err := small.AppendRows(tab.Rows()[:80]); err != nil {
		t.Fatal(err)
	}
	opt := exampleMiningOpts()
	res, err := mining.ARPMine(small, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := mining.SpecFor(small, opt)
	if err != nil {
		t.Fatal(err)
	}
	id, warning := s.AddPatternSetEntry(&pattern.StoreEntry{
		Table: "pub", Patterns: res.Patterns,
		Stamp: &pattern.StoreStamp{Epoch: small.Epoch(), Rows: small.NumRows()},
		Spec:  spec,
	})
	if warning == "" {
		t.Fatal("stale store loaded without warning")
	}

	resp, out := doJSON(t, "POST", ts.URL+"/v1/append",
		appendBody([]interface{}{"AX", "VLDB", 2008}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d: %v", resp.StatusCode, out)
	}
	st := out["patternSets"].([]interface{})[0].(map[string]interface{})
	if st["id"] != id || st["status"] != "maintained" {
		t.Fatalf("set status = %v", st)
	}
	requireSetEquals(t, s, id, tab)

	_, out = doJSON(t, "GET", ts.URL+"/v1", nil)
	sets := out["patternSets"].([]interface{})
	if sst := sets[0].(map[string]interface{}); sst["stale"] != false {
		t.Errorf("healed set still stale: %v", sst)
	}
}

// TestAppendSkipsUnmaintainableSets pins that a legacy set with no spec
// survives an append untouched and is reported "stale" with a reason.
func TestAppendSkipsUnmaintainableSets(t *testing.T) {
	s, ts := newTestServer(t)
	tab := dataset.RunningExample()
	s.AddTable("pub", tab)
	res, err := mining.ARPMine(tab, exampleMiningOpts())
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.AddPatternSetEntry(&pattern.StoreEntry{Table: "pub", Patterns: res.Patterns})

	resp, out := doJSON(t, "POST", ts.URL+"/v1/append",
		appendBody([]interface{}{"AX", "VLDB", 2008}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d: %v", resp.StatusCode, out)
	}
	st := out["patternSets"].([]interface{})[0].(map[string]interface{})
	if st["id"] != id || st["status"] != "stale" || st["reason"] == "" {
		t.Errorf("unmaintainable set status = %v", st)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.patterns[id].patterns) != len(res.Patterns) {
		t.Error("unmaintainable set was mutated")
	}
}
