package server

import (
	"net/http"
	"reflect"
	"testing"

	"cape/internal/pattern"
)

// TestPatternStoreSurvivesRestart is the persistence round trip at the
// server level: patterns mined by one server instance, saved with
// pattern.SaveStore, and loaded into a fresh instance (the
// -patterns-dir startup path) must answer an explain request with
// exactly the same explanations as the original in-memory set.
func TestPatternStoreSurvivesRestart(t *testing.T) {
	sA, tsA := newTestServer(t)
	loadRunningExample(t, tsA)
	id := mineExample(t, tsA)

	sA.mu.RLock()
	mined := sA.patterns[id].patterns
	sA.mu.RUnlock()
	dir := t.TempDir()
	if _, err := pattern.SaveStore(dir, "pub", mined); err != nil {
		t.Fatal(err)
	}

	sB, tsB := newTestServer(t)
	loadRunningExample(t, tsB)
	stores, err := pattern.LoadStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	loadedID := sB.AddPatternSet("pub", stores["pub"])
	if loadedID == "" {
		t.Fatal("AddPatternSet returned empty id")
	}

	req := ExplainRequest{
		Patterns: "",
		GroupBy:  []string{"author", "venue", "year"},
		Tuple:    []string{"AX", "SIGKDD", "2007"},
		Dir:      "low",
		K:        5,
		Numeric:  map[string]float64{"year": 4},
	}
	req.Patterns = id
	respA, outA := doJSON(t, "POST", tsA.URL+"/v1/explain", req)
	req.Patterns = loadedID
	respB, outB := doJSON(t, "POST", tsB.URL+"/v1/explain", req)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("explain statuses = %d / %d: %v / %v",
			respA.StatusCode, respB.StatusCode, outA, outB)
	}
	if !reflect.DeepEqual(outA["explanations"], outB["explanations"]) {
		t.Errorf("explanations differ after store round trip:\n  mined:  %v\n  loaded: %v",
			outA["explanations"], outB["explanations"])
	}

	// The loaded set is introspectable like a mined one.
	resp, out := doJSON(t, "GET", tsB.URL+"/v1/patterns/"+loadedID, nil)
	if resp.StatusCode != http.StatusOK || out["table"] != "pub" {
		t.Fatalf("get loaded patterns = %d %v", resp.StatusCode, out)
	}
}
