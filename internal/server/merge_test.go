package server

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// refTopK is the independently-written reference for the engine's
// explanation order (explain.Explanation.better): score descending,
// ties by sort key ascending, one entry per key, truncated to k.
func refTopK(all []explanationDTO, k int) []explanationDTO {
	byKey := make(map[string]explanationDTO)
	for _, e := range all {
		if old, ok := byKey[e.SortKey]; !ok || e.Score > old.Score {
			byKey[e.SortKey] = e
		}
	}
	out := make([]explanationDTO, 0, len(byKey))
	for _, e := range byKey {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].SortKey < out[j].SortKey
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// genExplanations produces a pool with heavy score collisions: few
// distinct scores over many keys, the adversarial case for merge
// determinism.
func genExplanations(rng *rand.Rand, n int) []explanationDTO {
	scores := []float64{3.5, 3.5, 2.0, 2.0, 2.0, 1.25, 0.5}
	out := make([]explanationDTO, n)
	for i := range out {
		out[i] = explanationDTO{
			SortKey: fmt.Sprintf("p%02d\x1et%03d", rng.Intn(12), i),
			Score:   scores[rng.Intn(len(scores))],
			Tuple:   []string{fmt.Sprintf("t%03d", i)},
		}
	}
	return out
}

// TestMergeTopKDeterministic: however a result set is partitioned
// across shards — any shard count, any assignment, any per-shard order
// — the merged top-k must be the single reference ordering, including
// across adversarial score ties. Merges run concurrently so the race
// detector watches the merge path itself.
func TestMergeTopKDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var wg sync.WaitGroup
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		k := 1 + rng.Intn(20)
		shards := 1 + rng.Intn(9)
		all := genExplanations(rng, n)
		want := refTopK(all, k)

		// Partition randomly; each shard reports its items sorted the
		// way a real shard would (its own local top-k order), but also
		// try raw arrival order to prove merge doesn't rely on it.
		lists := make([][]explanationDTO, shards)
		for _, e := range all {
			s := rng.Intn(shards)
			lists[s] = append(lists[s], e)
		}
		if trial%2 == 0 {
			for _, l := range lists {
				sort.Slice(l, func(i, j int) bool {
					if l[i].Score != l[j].Score {
						return l[i].Score > l[j].Score
					}
					return l[i].SortKey < l[j].SortKey
				})
			}
		}
		wg.Add(1)
		go func(trial int, lists [][]explanationDTO, k int, want []explanationDTO) {
			defer wg.Done()
			got := mergeTopK(lists, k)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d: merged top-%d diverges from reference\n got:  %v\n want: %v", trial, k, got, want)
			}
		}(trial, lists, k, want)
	}
	wg.Wait()
}

func TestMergeTopKEdgeCases(t *testing.T) {
	if got := mergeTopK(nil, 5); len(got) != 0 {
		t.Fatalf("merge of nothing = %v", got)
	}
	a := explanationDTO{SortKey: "a", Score: 1}
	b := explanationDTO{SortKey: "b", Score: 1}
	// Equal scores: order must follow the sort key, whichever shard
	// reported which.
	got := mergeTopK([][]explanationDTO{{b}, {a}}, 10)
	if len(got) != 2 || got[0].SortKey != "a" || got[1].SortKey != "b" {
		t.Fatalf("tie order = %v", got)
	}
	// Duplicate key across shards keeps the better-scoring instance.
	a2 := explanationDTO{SortKey: "a", Score: 2}
	got = mergeTopK([][]explanationDTO{{a}, {a2}}, 10)
	if len(got) != 1 || got[0].Score != 2 {
		t.Fatalf("dedup = %v", got)
	}
	// k=0 applies the engine default of 10.
	var many []explanationDTO
	for i := 0; i < 30; i++ {
		many = append(many, explanationDTO{SortKey: fmt.Sprintf("k%02d", i), Score: float64(i)})
	}
	if got := mergeTopK([][]explanationDTO{many}, 0); len(got) != 10 {
		t.Fatalf("default k kept %d", len(got))
	}
}
