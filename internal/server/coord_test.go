package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"cape/internal/dataset"
	"cape/internal/mining"
	"cape/internal/pattern"
)

func TestCoordinatorConfigValidation(t *testing.T) {
	cases := []CoordConfig{
		{},                             // no shards
		{Shards: []string{"http://x"}}, // no key
		{Shards: []string{""}, Key: []string{"a"}},              // empty URL
		{Shards: []string{"http://x"}, Key: []string{"a", "a"}}, // dup key
	}
	for i, cfg := range cases {
		if _, err := NewCoordinator(cfg); err == nil {
			t.Errorf("case %d: NewCoordinator(%+v) accepted an invalid config", i, cfg)
		}
	}
}

// TestCoordinatorLoadShedding: with the admission queue full, explain
// requests shed immediately with 429 + Retry-After instead of queueing.
func TestCoordinatorLoadShedding(t *testing.T) {
	c, err := NewCoordinator(CoordConfig{
		Shards: []string{"http://127.0.0.1:1"}, Key: []string{"author"}, MaxQueue: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the admission queue as two in-flight explains would.
	c.queue <- struct{}{}
	c.queue <- struct{}{}

	req := httptest.NewRequest(http.MethodPost, "/v1/explain", strings.NewReader(`{}`))
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated explain status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// Batch explains share the same queue.
	req = httptest.NewRequest(http.MethodPost, "/v1/explain/batch", strings.NewReader(`{}`))
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated batch status = %d, want 429", rec.Code)
	}

	// Draining one slot readmits (the request then fails on lookup, not
	// on admission).
	<-c.queue
	req = httptest.NewRequest(http.MethodPost, "/v1/explain",
		strings.NewReader(`{"patterns":"ps-1","groupBy":["author"],"tuple":["AX"],"dir":"low"}`))
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code == http.StatusTooManyRequests {
		t.Fatal("request shed after queue drained")
	}
}

// TestCoordinatorStatusAggregation: GET /v1 must fold per-shard status
// into deployment-level freshness and name shards that diverged or
// became unreachable.
func TestCoordinatorStatusAggregation(t *testing.T) {
	tab := dataset.RunningExample()
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	shard0 := httptest.NewServer(New())
	t.Cleanup(shard0.Close)
	shard1 := httptest.NewServer(New())
	t.Cleanup(shard1.Close)
	coord, err := NewCoordinator(CoordConfig{
		Shards: []string{shard0.URL, shard1.URL}, Key: []string{"author"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)

	resp, err := http.Post(cts.URL+"/v1/tables?name=pub", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load: %d", resp.StatusCode)
	}
	mresp, mout := doJSON(t, "POST", cts.URL+"/v1/mine", MineRequest{
		Table: "pub", MaxPatternSize: 3,
		Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2,
		Aggregates: []string{"count"},
	})
	if mresp.StatusCode != http.StatusCreated {
		t.Fatalf("mine: %d %v", mresp.StatusCode, mout)
	}

	// Healthy deployment: totals add up, nothing diverged.
	sresp, status := doJSON(t, "GET", cts.URL+"/v1", nil)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", sresp.StatusCode)
	}
	if status["role"] != "coordinator" {
		t.Fatalf("role = %v", status["role"])
	}
	tables := status["tables"].([]interface{})
	if len(tables) != 1 {
		t.Fatalf("tables = %v", tables)
	}
	if rows := tables[0].(map[string]interface{})["rows"].(float64); int(rows) != tab.NumRows() {
		t.Fatalf("aggregate rows = %v, want %d", rows, tab.NumRows())
	}
	if d, _ := status["diverged"].([]interface{}); len(d) != 0 {
		t.Fatalf("healthy deployment reports diverged = %v", d)
	}
	sets := status["patternSets"].([]interface{})
	if len(sets) != 1 || sets[0].(map[string]interface{})["freshness"] != "fresh" {
		t.Fatalf("patternSets = %v", sets)
	}

	// Replace shard 0's partition behind the coordinator's back with a
	// truncated table (header + first row): the shard's pattern set
	// stamp is now ahead of its table on rows — diverged.
	var full bytes.Buffer
	if err := tab.WriteCSV(&full); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(full.String(), "\n", 3)
	if len(lines) < 3 {
		t.Fatalf("expected ≥2 CSV lines, got %q", full.String())
	}
	truncated := lines[0] + "\n" + lines[1] + "\n"
	resp, err = http.Post(shard0.URL+"/v1/tables?name=pub", "text/csv", strings.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	_, status = doJSON(t, "GET", cts.URL+"/v1", nil)
	sets = status["patternSets"].([]interface{})
	if got := sets[0].(map[string]interface{})["freshness"]; got != "diverged" {
		t.Fatalf("freshness after shard reload = %v, want diverged", got)
	}
	d, _ := status["diverged"].([]interface{})
	if len(d) == 0 || !strings.Contains(d[0].(string), shard0.URL) {
		t.Fatalf("diverged = %v, want entry naming %s", d, shard0.URL)
	}

	// Kill shard 1: it must be reported unreachable, not silently
	// dropped from the aggregate.
	shard1.Close()
	_, status = doJSON(t, "GET", cts.URL+"/v1", nil)
	d, _ = status["diverged"].([]interface{})
	found := false
	for _, e := range d {
		if strings.Contains(e.(string), "unreachable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diverged after shard death = %v, want an unreachable entry", d)
	}
}

// TestCoordinatorAppendRowsTotal: the append response's top-level
// "rows" must be the deployment-wide table total (single-node parity),
// not the sum over the shards the batch happened to touch. A
// single-author batch routes to exactly one shard, so the two differ
// unless the coordinator tracks the untouched shards' counts.
func TestCoordinatorAppendRowsTotal(t *testing.T) {
	tab := dataset.RunningExample()
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	shard0 := httptest.NewServer(New())
	t.Cleanup(shard0.Close)
	shard1 := httptest.NewServer(New())
	t.Cleanup(shard1.Close)
	coord, err := NewCoordinator(CoordConfig{
		Shards: []string{shard0.URL, shard1.URL}, Key: []string{"author"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)

	resp, err := http.Post(cts.URL+"/v1/tables?name=pub", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load: %d", resp.StatusCode)
	}

	row := func(author string, year int) []json.RawMessage {
		return []json.RawMessage{
			json.RawMessage(`"` + author + `"`),
			json.RawMessage(`"VLDB"`),
			json.RawMessage(strconv.Itoa(year)),
		}
	}
	aresp, out := doJSON(t, "POST", cts.URL+"/v1/append", AppendRequest{
		Table: "pub",
		Rows:  [][]json.RawMessage{row("AX", 2010), row("AX", 2011)},
	})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %v", aresp.StatusCode, out)
	}
	if got := int(out["appended"].(float64)); got != 2 {
		t.Fatalf("appended = %d, want 2", got)
	}
	acks := out["shards"].([]interface{})
	if len(acks) != 1 {
		t.Fatalf("single-author batch touched %d shards, want 1: %v", len(acks), acks)
	}
	want := tab.NumRows() + 2
	if got := int(out["rows"].(float64)); got != want {
		t.Fatalf("append reports rows = %d, want deployment total %d", got, want)
	}

	// A second batch to the same shard keeps the total honest.
	aresp, out = doJSON(t, "POST", cts.URL+"/v1/append", AppendRequest{
		Table: "pub",
		Rows:  [][]json.RawMessage{row("AX", 2012)},
	})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("second append: %d %v", aresp.StatusCode, out)
	}
	if got := int(out["rows"].(float64)); got != want+1 {
		t.Fatalf("second append reports rows = %d, want %d", got, want+1)
	}
}

func TestKeyInPatternF(t *testing.T) {
	cases := []struct {
		pkey string
		key  []string
		want bool
	}{
		{"author|year|count(*)|Const", []string{"author"}, true},
		{"author,venue|year|count(*)|Const", []string{"author"}, true},
		{"author,venue|year|count(*)|Const", []string{"author", "venue"}, true},
		{"venue|year|count(*)|Const", []string{"author"}, false},
		{"venue,year|author|count(*)|Const", []string{"author"}, false}, // key in V, not F
		{"|author|count(*)|Const", []string{"author"}, false},
	}
	for _, c := range cases {
		if got := keyInPatternF(c.pkey, c.key); got != c.want {
			t.Errorf("keyInPatternF(%q, %v) = %v, want %v", c.pkey, c.key, got, c.want)
		}
	}
}

func TestAdmittedKeysGates(t *testing.T) {
	th := pattern.Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.5, GlobalSupport: 3}
	shard0 := []candStatFor{{"author|year|count(*)|Const", 2, 2}, {"author|year|count(*)|Lin", 0, 3}, {"venue|year|count(*)|Const", 3, 3}}
	shard1 := []candStatFor{{"author|year|count(*)|Const", 1, 1}, {"author|year|count(*)|Lin", 1, 1}}
	got := admittedKeys(toCandStats(shard0, shard1), th, []string{"author"})
	// Const: good 3/supp 3 ⇒ conf 1 ≥ λ, Δ ok, key-local ⇒ admitted.
	// Lin: good 1 < Δ ⇒ rejected even though shard 1 alone has conf 1.
	// venue pattern: passes the numeric gates but is not key-local.
	want := []string{"author|year|count(*)|Const"}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("admitted = %v, want %v", got, want)
	}

	// The λ denominator must include shards with zero good locals:
	// shard 1 has supported-but-unfit fragments that dilute confidence.
	th = pattern.Thresholds{Theta: 0.5, LocalSupport: 3, Lambda: 0.6, GlobalSupport: 1}
	dilute0 := []candStatFor{{"author|year|count(*)|Const", 3, 3}}
	dilute1 := []candStatFor{{"author|year|count(*)|Const", 0, 3}}
	if got := admittedKeys(toCandStats(dilute0, dilute1), th, []string{"author"}); len(got) != 0 {
		t.Fatalf("conf 3/6 passed λ=0.6: %v", got)
	}
	if got := admittedKeys(toCandStats(dilute0), th, []string{"author"}); len(got) != 1 {
		t.Fatalf("conf 3/3 failed λ=0.6: %v", got)
	}
}

type candStatFor struct {
	key        string
	good, supp int
}

func toCandStats(shards ...[]candStatFor) [][]mining.CandStat {
	out := make([][]mining.CandStat, len(shards))
	for i, sh := range shards {
		for _, c := range sh {
			out[i] = append(out[i], mining.CandStat{Key: c.key, Good: c.good, Supported: c.supp})
		}
	}
	return out
}
