package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cape/internal/engine"
)

// The answer-cache differential suite: a deployment with caching enabled
// must answer every request sequence byte-identically to the same
// deployment with caching disabled — cold, warm (replayed from cache),
// and across appends that invalidate epoch-keyed entries. Parallelism is
// pinned to 1 throughout so response bodies, stats included, are fully
// deterministic and comparable as raw bytes.

// doRaw posts a JSON body and returns the response status and raw bytes.
func doRaw(t *testing.T, method, url string, body interface{}) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// cacheStatsFor reads one pattern set's answer-cache counters from
// GET /v1; ok reports whether the set exposes a cache at all.
func cacheStatsFor(t *testing.T, url, psID string) (hits, misses float64, ok bool) {
	t.Helper()
	resp, out := doJSON(t, "GET", url+"/v1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint: %d", resp.StatusCode)
	}
	for _, raw := range out["patternSets"].([]interface{}) {
		ps := raw.(map[string]interface{})
		if ps["id"] != psID {
			continue
		}
		cache, has := ps["answerCache"].(map[string]interface{})
		if !has {
			return 0, 0, false
		}
		return cache["hits"].(float64), cache["misses"].(float64), true
	}
	t.Fatalf("pattern set %s not in status output", psID)
	return 0, 0, false
}

func loadCSV(t *testing.T, url string, csv []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/tables?name=pub", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load table on %s: status %d", url, resp.StatusCode)
	}
}

func mineDiffSet(t *testing.T, url string) string {
	t.Helper()
	resp, out := doJSON(t, "POST", url+"/v1/mine", diffMine)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mine on %s: %d %v", url, resp.StatusCode, out)
	}
	return out["id"].(string)
}

// TestServerCacheDifferential: one capeserver with the answer cache
// against one with it disabled, over the same table, pattern set, and
// request sequence. Every response — cold, warm, negative, batch, and
// post-append — must match byte for byte, and the warm passes must
// actually come from the cache (hit counters move, not just equality).
func TestServerCacheDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("cache differential is not short")
	}
	const initialRows = 1100
	grown := diffTable(1400)
	initial := engine.NewTable(grown.Schema())
	for _, row := range grown.Rows()[:initialRows] {
		initial.MustAppend(row)
	}
	var csv bytes.Buffer
	if err := initial.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}

	cached, cachedTS := newTestServer(t)
	if cached.AnswerCacheSize != 0 {
		t.Fatalf("caching should be on by default, got size %d", cached.AnswerCacheSize)
	}
	plain, plainTS := newTestServer(t)
	plain.AnswerCacheSize = -1

	for _, url := range []string{cachedTS.URL, plainTS.URL} {
		loadCSV(t, url, csv.Bytes())
	}
	psCached := mineDiffSet(t, cachedTS.URL)
	psPlain := mineDiffSet(t, plainTS.URL)

	specs := diffQuestions(t, initial, 8, 4242)
	// A deterministic validation failure: negative answers must cache and
	// replay byte-identically too.
	specs = append(specs, QuestionSpec{
		GroupBy: []string{"author", "venue", "year"}, Aggregate: "count(*)",
		Tuple: []string{"__nobody__", "V0", "2005"}, Dir: "low",
	})

	explainBoth := func(spec QuestionSpec) (int, []byte) {
		t.Helper()
		mk := func(ps string) ExplainRequest {
			return ExplainRequest{
				Patterns: ps, GroupBy: spec.GroupBy, Aggregate: spec.Aggregate,
				Tuple: spec.Tuple, Dir: spec.Dir, K: 5, Parallelism: 1,
			}
		}
		cStatus, cBody := doRaw(t, "POST", cachedTS.URL+"/v1/explain", mk(psCached))
		pStatus, pBody := doRaw(t, "POST", plainTS.URL+"/v1/explain", mk(psPlain))
		if cStatus != pStatus || !bytes.Equal(cBody, pBody) {
			t.Fatalf("explain diverges for %v:\n cached (%d): %s\n plain  (%d): %s",
				spec.Tuple, cStatus, cBody, pStatus, pBody)
		}
		return cStatus, cBody
	}
	batchBoth := func(specs []QuestionSpec) []byte {
		t.Helper()
		mk := func(ps string) ExplainBatchRequest {
			return ExplainBatchRequest{Patterns: ps, Questions: specs, K: 5, Parallelism: 1}
		}
		cStatus, cBody := doRaw(t, "POST", cachedTS.URL+"/v1/explain/batch", mk(psCached))
		pStatus, pBody := doRaw(t, "POST", plainTS.URL+"/v1/explain/batch", mk(psPlain))
		if cStatus != pStatus || !bytes.Equal(cBody, pBody) {
			t.Fatalf("batch diverges:\n cached (%d): %s\n plain  (%d): %s", cStatus, cBody, pStatus, pBody)
		}
		return cBody
	}

	// Cold pass, then two warm passes: all byte-identical, including the
	// cached 400 for the bogus tuple.
	cold := make([][]byte, len(specs))
	sawError := false
	for i, spec := range specs {
		status, body := explainBoth(spec)
		cold[i] = body
		sawError = sawError || status == http.StatusBadRequest
	}
	if !sawError {
		t.Fatal("no negative answer in the sequence; the 400-caching differential is vacuous")
	}
	coldBatch := batchBoth(specs[:len(specs)-1])
	_, missesAfterCold, ok := cacheStatsFor(t, cachedTS.URL, psCached)
	if !ok || missesAfterCold == 0 {
		t.Fatal("cached server reports no cache activity after the cold pass")
	}
	for pass := 0; pass < 2; pass++ {
		for i, spec := range specs {
			if _, body := explainBoth(spec); !bytes.Equal(body, cold[i]) {
				t.Fatalf("warm pass %d question %d: body drifted from cold pass", pass, i)
			}
		}
		if !bytes.Equal(batchBoth(specs[:len(specs)-1]), coldBatch) {
			t.Fatalf("warm pass %d: batch body drifted from cold pass", pass)
		}
	}
	hits, misses, _ := cacheStatsFor(t, cachedTS.URL, psCached)
	if hits < float64(2*len(specs)) {
		t.Errorf("warm passes produced only %v hits, want at least %d", hits, 2*len(specs))
	}
	if misses != missesAfterCold {
		t.Errorf("warm passes missed (%v -> %v): keyspace not stable", missesAfterCold, misses)
	}
	if _, _, exposed := cacheStatsFor(t, plainTS.URL, psPlain); exposed {
		t.Error("cache-disabled server exposes answer-cache stats")
	}

	// Append the deterministic continuation to both servers: epoch-keyed
	// entries become unreachable and every answer must re-derive from the
	// grown table — byte-identically.
	rows := rowsToJSON(t, grown, initialRows, 1400)
	for _, tc := range []struct{ url string }{{cachedTS.URL}, {plainTS.URL}} {
		resp, out := doJSON(t, "POST", tc.url+"/v1/append", AppendRequest{Table: "pub", Rows: rows})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append on %s: %d %v", tc.url, resp.StatusCode, out)
		}
	}
	changed := false
	for i, spec := range specs {
		_, body := explainBoth(spec)
		changed = changed || !bytes.Equal(body, cold[i])
	}
	if !changed {
		t.Fatal("append changed no answer; the invalidation differential is vacuous")
	}
	batchBoth(specs[:len(specs)-1])
}

// countingShard wraps a shard server and counts requests per path, so
// tests can assert which requests a coordinator cache absorbed.
type countingShard struct {
	mu     sync.Mutex
	counts map[string]int
	inner  http.Handler
}

func (c *countingShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.counts[r.URL.Path]++
	c.mu.Unlock()
	c.inner.ServeHTTP(w, r)
}

func (c *countingShard) get(path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[path]
}

// TestCoordinatorCacheDifferential: a coordinator with the answer cache
// against an identical deployment with it disabled. Beyond byte
// equality, the counting shards pin the tentpole's serving claim: a warm
// question is answered entirely at the coordinator (zero shard fan-out),
// and an append invalidates precisely — entries keyed to the epochs of
// untouched shards keep hitting.
func TestCoordinatorCacheDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("coordinator cache differential is not short")
	}
	const initialRows = 1300
	grown := diffTable(1600)
	initial := engine.NewTable(grown.Schema())
	for _, row := range grown.Rows()[:initialRows] {
		initial.MustAppend(row)
	}
	var csv bytes.Buffer
	if err := initial.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}

	const nShards = 2
	newDeployment := func(cacheSize int) (string, []*countingShard) {
		shards := make([]*countingShard, nShards)
		urls := make([]string, nShards)
		for i := range shards {
			shards[i] = &countingShard{counts: make(map[string]int), inner: New()}
			ts := httptest.NewServer(shards[i])
			t.Cleanup(ts.Close)
			urls[i] = ts.URL
		}
		coord, err := NewCoordinator(CoordConfig{
			Shards: urls, Key: []string{diffShardKey}, AnswerCacheSize: cacheSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		cts := httptest.NewServer(coord)
		t.Cleanup(cts.Close)
		loadCSV(t, cts.URL, csv.Bytes())
		return cts.URL, shards
	}
	cachedURL, cachedShards := newDeployment(0)
	plainURL, _ := newDeployment(-1)
	psCached := mineDiffSet(t, cachedURL)
	psPlain := mineDiffSet(t, plainURL)

	fanout := func(path string) int {
		n := 0
		for _, sh := range cachedShards {
			n += sh.get(path)
		}
		return n
	}
	explainBoth := func(spec QuestionSpec) []byte {
		t.Helper()
		mk := func(ps string) ExplainRequest {
			return ExplainRequest{
				Patterns: ps, GroupBy: spec.GroupBy, Aggregate: spec.Aggregate,
				Tuple: spec.Tuple, Dir: spec.Dir, K: 5, Parallelism: 1,
			}
		}
		cStatus, cBody := doRaw(t, "POST", cachedURL+"/v1/explain", mk(psCached))
		pStatus, pBody := doRaw(t, "POST", plainURL+"/v1/explain", mk(psPlain))
		if cStatus != pStatus || !bytes.Equal(cBody, pBody) {
			t.Fatalf("coordinator explain diverges for %v:\n cached (%d): %s\n plain  (%d): %s",
				spec.Tuple, cStatus, cBody, pStatus, pBody)
		}
		return cBody
	}
	batchBoth := func(specs []QuestionSpec) []byte {
		t.Helper()
		mk := func(ps string) ExplainBatchRequest {
			return ExplainBatchRequest{Patterns: ps, Questions: specs, K: 5, Parallelism: 1}
		}
		cStatus, cBody := doRaw(t, "POST", cachedURL+"/v1/explain/batch", mk(psCached))
		pStatus, pBody := doRaw(t, "POST", plainURL+"/v1/explain/batch", mk(psPlain))
		if cStatus != pStatus || !bytes.Equal(cBody, pBody) {
			t.Fatalf("coordinator batch diverges:\n cached (%d): %s\n plain  (%d): %s",
				cStatus, cBody, pStatus, pBody)
		}
		return cBody
	}
	appendBoth := func(rows [][]json.RawMessage) {
		t.Helper()
		for _, url := range []string{cachedURL, plainURL} {
			resp, out := doJSON(t, "POST", url+"/v1/append", AppendRequest{Table: "pub", Rows: rows})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("append on %s: %d %v", url, resp.StatusCode, out)
			}
		}
	}

	specs := diffQuestions(t, initial, 8, 77)

	// Cold pass computes through the shards; the warm pass must be served
	// entirely from the coordinator: zero explain/batch fan-out.
	cold := make([][]byte, len(specs))
	answered := false
	for i, spec := range specs {
		cold[i] = explainBoth(spec)
		var view map[string]interface{}
		if err := json.Unmarshal(cold[i], &view); err == nil {
			if expls, _ := view["explanations"].([]interface{}); len(expls) > 0 {
				answered = true
			}
		}
	}
	coldBatch := batchBoth(specs)
	if !answered {
		t.Fatal("no question produced explanations; the differential is vacuous")
	}
	preExplain, preBatch := fanout("/v1/explain"), fanout("/v1/explain/batch")
	if preExplain == 0 || preBatch == 0 {
		t.Fatal("cold pass did not reach the shards; the fan-out counter is broken")
	}
	for i, spec := range specs {
		if !bytes.Equal(explainBoth(spec), cold[i]) {
			t.Fatalf("warm question %d drifted from cold pass", i)
		}
	}
	if !bytes.Equal(batchBoth(specs), coldBatch) {
		t.Fatal("warm batch drifted from cold pass")
	}
	if d := fanout("/v1/explain") - preExplain; d != 0 {
		t.Errorf("warm explains fanned out %d times; hot questions must be coordinator-local", d)
	}
	if d := fanout("/v1/explain/batch") - preBatch; d != 0 {
		t.Errorf("warm batch fanned out %d times; hot batches must be coordinator-local", d)
	}

	// Locate two question authors living on different shards by probing
	// with single-row appends (mirrored to both deployments to keep them
	// identical). A row routes to exactly one shard: the append counter
	// names it.
	authorCol := grown.Schema().Index(diffShardKey)
	shardOf := func(author string) int {
		t.Helper()
		var probe []json.RawMessage
		for i, row := range grown.Rows() {
			if row[authorCol].String() == author {
				probe = rowsToJSON(t, grown, i, i+1)[0]
				break
			}
		}
		if probe == nil {
			t.Fatalf("author %s not in table", author)
		}
		before := make([]int, nShards)
		for i, sh := range cachedShards {
			before[i] = sh.get("/v1/append")
		}
		appendBoth([][]json.RawMessage{probe})
		for i, sh := range cachedShards {
			if sh.get("/v1/append") > before[i] {
				return i
			}
		}
		t.Fatal("probe append reached no shard")
		return -1
	}
	qA := specs[0]
	shardA := shardOf(qA.Tuple[0])
	qB := QuestionSpec{}
	for _, spec := range specs[1:] {
		if spec.Tuple[0] != qA.Tuple[0] && shardOf(spec.Tuple[0]) != shardA {
			qB = spec
			break
		}
	}
	if qB.Tuple == nil {
		t.Skip("all sampled question authors hash to one shard; cannot exercise cross-shard precision")
	}

	// A row matching qA's exact group: appending it is guaranteed to
	// change qA's answer (the question embeds the group's aggregate
	// value) while routing only to qA's shard.
	sch := grown.Schema()
	colOf := map[string]int{}
	for _, a := range qA.GroupBy {
		colOf[a] = sch.Index(a)
	}
	var qARow []json.RawMessage
	for i, row := range grown.Rows() {
		match := true
		for j, a := range qA.GroupBy {
			match = match && row[colOf[a]].String() == qA.Tuple[j]
		}
		if match {
			qARow = rowsToJSON(t, grown, i, i+1)[0]
			break
		}
	}
	if qARow == nil {
		t.Fatalf("no row matches question group %v", qA.Tuple)
	}

	// Re-warm after the probe appends, then append the matching row: only
	// qA's shard's epoch moves, so qB must stay hot while qA re-derives —
	// and both still match the uncached mirror.
	warmA, warmB := explainBoth(qA), explainBoth(qB)
	explainBoth(qA)
	explainBoth(qB)
	pre := fanout("/v1/explain")
	appendBoth([][]json.RawMessage{qARow})
	if !bytes.Equal(explainBoth(qB), warmB) {
		t.Error("append to the other shard changed qB's answer bytes")
	}
	if d := fanout("/v1/explain") - pre; d != 0 {
		t.Errorf("append to shard %d invalidated a question on the other shard (%d fan-outs)", shardA, d)
	}
	if bytes.Equal(explainBoth(qA), warmA) {
		t.Error("append touching qA's group left its answer bytes unchanged; staleness undetectable")
	}
	if fanout("/v1/explain")-pre == 0 {
		t.Error("qA was served from cache after its shard's epoch advanced")
	}

	// Bulk append the rest of the deterministic continuation and
	// re-compare everything once more.
	appendBoth(rowsToJSON(t, grown, initialRows, 1600))
	for _, spec := range specs {
		explainBoth(spec)
	}
	batchBoth(specs)
}
