package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/store"
	"cape/internal/value"
)

// Live maintenance: POST /v1/append applies a batch of rows to a loaded
// table and folds them into every pattern set mined over it, so the
// offline phase keeps up with arriving data instead of going silently
// stale. GET /v1 reports the freshness of every set against its table's
// current epoch/row count. See DESIGN.md §11.

// AddPatternSetEntry registers a pattern set loaded from a stamped store
// file (the capeserver -patterns-dir startup path) and returns its
// assigned ID plus a human-readable staleness warning — empty when the
// store's stamp matches the loaded table (or when the store predates
// stamping, where divergence is undetectable).
func (s *Server) AddPatternSetEntry(entry *pattern.StoreEntry) (id, warning string) {
	locals := 0
	for _, m := range entry.Patterns {
		locals += len(m.Locals)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	ps := &patternSet{
		ID:       "ps-" + strconv.Itoa(s.nextID),
		Table:    entry.Table,
		Count:    len(entry.Patterns),
		Locals:   locals,
		patterns: entry.Patterns,
		stamp:    entry.Stamp,
		spec:     entry.Spec,
	}
	s.patterns[ps.ID] = ps

	tab, ok := s.tables[entry.Table]
	if !ok {
		return ps.ID, fmt.Sprintf("pattern store for table %q: table is not loaded; staleness unknown", entry.Table)
	}
	// Two distinct stale shapes (classifyStamp): a stamp strictly behind
	// the table is maintainable — catch-up heals it — while a stamp
	// ahead of the table on either axis means the mined history is not a
	// prefix of this table and only a re-mine reconciles them.
	c := classifyStamp(entry.Stamp, tab.NumRows(), tab.Epoch())
	warning = staleWarning(entry.Table, c, entry.Stamp, tab.NumRows(), tab.Epoch(), entry.Spec != nil)
	return ps.ID, warning
}

// AppendRequest is the body of POST /v1/append. Each row is a JSON array
// with one element per table column; elements are raw scalars (string,
// number, null) or the kind-tagged object form the engine marshals.
type AppendRequest struct {
	Table string              `json:"table"`
	Rows  [][]json.RawMessage `json:"rows"`
}

// appendSetStatus reports what an append did to one pattern set.
type appendSetStatus struct {
	ID string `json:"id"`
	// Status is "maintained" (the set now reflects the table including
	// the appended rows) or "stale" (the set could not be maintained;
	// Reason says why).
	Status   string `json:"status"`
	Patterns int    `json:"patterns"`
	Reason   string `json:"reason,omitempty"`
	// CandStats carries the refreshed raw candidate evidence for sets
	// mined withStats, so a shard coordinator can recompute global
	// admission after routing an append batch.
	CandStats []mining.CandStat `json:"candStats,omitempty"`
}

// handleAppend applies a batch of rows and catches up every pattern set
// mined over the table. ServeHTTP already holds the appendMu write lock,
// so no explanation, query, or mine is in flight: tables and explainer
// pattern sets mutate in place safely, and the lazily epoch-checked
// group-by caches invalidate only the groupings a later request actually
// revisits.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	if !readJSON(w, r, &req) {
		return
	}
	tab, ok := s.table(req.Table)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown table %q", req.Table)
		return
	}
	rows := make([]value.Tuple, len(req.Rows))
	for i, raw := range req.Rows {
		t, err := value.ParseJSONTuple(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "row %d: %v", i, err)
			return
		}
		rows[i] = t
	}
	// Validation happens before anything is written, so a bad row leaves
	// the table, its WAL, its indexes, and its columnar view untouched.
	// Store-backed tables route through the WAL: the batch is framed and
	// fsynced per the store's policy before this handler replies, so an
	// acknowledged append survives a crash. In-memory tables append
	// directly, as before.
	var walSeq uint64
	if st, ok := s.storeFor(req.Table); ok {
		seq, err := st.Append(rows)
		switch {
		case err == nil:
			walSeq = seq
		case errors.Is(err, store.ErrInvalidBatch):
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		default:
			// Durability is unknown (failed fsync / torn append): the
			// store has write-disabled itself; nothing was acknowledged.
			httpError(w, http.StatusServiceUnavailable, "durable append failed: %v", err)
			return
		}
	} else if err := tab.AppendRows(rows); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	var sets []*patternSet
	for _, ps := range s.patterns {
		if ps.Table == req.Table {
			sets = append(sets, ps)
		}
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].ID < sets[j].ID })

	statuses := make([]appendSetStatus, 0, len(sets))
	for _, ps := range sets {
		statuses = append(statuses, s.maintainSet(ps, tab))
	}
	s.mu.Unlock()

	resp := map[string]interface{}{
		"table":       req.Table,
		"appended":    len(rows),
		"rows":        tab.NumRows(),
		"epoch":       tab.Epoch(),
		"patternSets": statuses,
	}
	if walSeq != 0 {
		resp["walSeq"] = walSeq
		resp["durable"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// maintainSet folds the table's current rows into one pattern set,
// building its maintainer on first use (or after the table was replaced)
// and swapping the maintained patterns into the set and its warm
// explainer. Caller holds s.mu and the appendMu write lock.
func (s *Server) maintainSet(ps *patternSet, tab *engine.Table) appendSetStatus {
	st := appendSetStatus{ID: ps.ID, Status: "stale", Patterns: ps.Count}
	if ps.spec == nil {
		st.Reason = "no mining spec recorded (legacy or FD-pruned store); re-mine to refresh"
		return st
	}
	if ps.maintainer == nil || ps.maintainer.Table() != tab {
		opt, err := mining.OptionsFromSpec(ps.spec)
		if err != nil {
			st.Reason = err.Error()
			return st
		}
		// NewMaintainer runs over the table as it stands now — including
		// the batch just appended — so a set whose store was already
		// stale at load is healed here, not perpetuated.
		m, err := mining.NewMaintainer(tab, opt)
		if err != nil {
			st.Reason = err.Error()
			return st
		}
		ps.maintainer = m
	} else if err := ps.maintainer.CatchUp(); err != nil {
		st.Reason = err.Error()
		return st
	}

	// A coordinator-admitted shard set keeps serving only admitted keys
	// across maintenance; the coordinator re-admits from the refreshed
	// CandStats before any explanation can observe the new rows (its
	// write lock spans append + admit).
	maintained := filterAdmitted(ps.maintainer.Patterns(), ps.admitted)
	locals := 0
	for _, m := range maintained {
		locals += len(m.Locals)
	}
	ps.patterns = maintained
	ps.Count = len(maintained)
	ps.Locals = locals
	// The version bump reopens the answer-cache keyspace: cached answers
	// computed over the pre-maintenance pattern list stop matching even
	// if this maintenance pass left the table epoch unchanged.
	ps.version++
	ps.stamp = &pattern.StoreStamp{Epoch: tab.Epoch(), Rows: tab.NumRows()}
	if e, ok := s.explainers[ps.ID]; ok && e.table == tab {
		// The warm explainer keeps its sharded group-by cache; entries
		// recompute lazily when a request reads them at the new epoch.
		// SetPatterns also rebuilds the structural relevance index — the
		// admission/maintenance-time build that keeps questions from
		// ever paying index construction.
		e.ex.SetPatterns(maintained)
	}
	st.Status = "maintained"
	st.Patterns = ps.Count
	if ps.withStats {
		st.CandStats = ps.maintainer.CandStats()
	}
	return st
}

// handleStatus reports every loaded table and pattern set with live
// freshness: a set is stale when its recorded stamp no longer matches
// its table's epoch/row count (or the table is gone); sets from
// un-stamped legacy stores report stamped=false, staleness unknown.
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	type tableStatus struct {
		Name  string `json:"name"`
		Rows  int    `json:"rows"`
		Epoch uint64 `json:"epoch"`
		// Durable is true for store-backed tables; WriteDisabled reports
		// a poisoned store (a write-path fault disabled further appends).
		Durable       bool   `json:"durable,omitempty"`
		WriteDisabled bool   `json:"writeDisabled,omitempty"`
		WriteError    string `json:"writeError,omitempty"`
	}
	type setStatus struct {
		ID           string `json:"id"`
		Table        string `json:"table"`
		Patterns     int    `json:"patterns"`
		Stamped      bool   `json:"stamped"`
		Maintainable bool   `json:"maintainable"`
		Stale        bool   `json:"stale"`
		// Freshness distinguishes the two stale shapes: "behind" (the
		// stamp is a prefix of the table's history; maintenance heals
		// it) vs "diverged" (the stamp is ahead of the table; only a
		// re-mine reconciles). "fresh" and "unknown" otherwise.
		Freshness string `json:"freshness"`
		Reason    string `json:"reason,omitempty"`
		// Version counts served-pattern swaps (maintenance, admission);
		// with the table epoch it keys the answer cache, so operators
		// can correlate hit-rate drops with invalidation events.
		Version uint64 `json:"version"`
		// Cache reports this set's answer-cache counters; absent until
		// the first explanation touches the set (lazy creation) or when
		// caching is disabled.
		Cache *answerCacheStats `json:"answerCache,omitempty"`
		// Index reports the relevance-index shape backing this set's
		// warm explainer; absent until the explainer is built.
		Index *explain.IndexStats `json:"index,omitempty"`
	}
	s.mu.RLock()
	tables := make([]tableStatus, 0, len(s.tables))
	for name, t := range s.tables {
		ts := tableStatus{Name: name, Rows: t.NumRows(), Epoch: t.Epoch()}
		if st, ok := s.stores[name]; ok {
			ts.Durable = true
			if err := st.Err(); err != nil {
				ts.WriteDisabled = true
				ts.WriteError = err.Error()
			}
		}
		tables = append(tables, ts)
	}
	sets := make([]setStatus, 0, len(s.patterns))
	for _, ps := range s.patterns {
		st := setStatus{
			ID: ps.ID, Table: ps.Table, Patterns: ps.Count,
			Stamped: ps.stamp != nil, Maintainable: ps.spec != nil,
			Version: ps.version,
		}
		if ps.anscache != nil {
			cs := ps.anscache.stats()
			st.Cache = &cs
		}
		if e, ok := s.explainers[ps.ID]; ok {
			is := e.ex.IndexStats()
			st.Index = &is
		}
		tab, ok := s.tables[ps.Table]
		if !ok {
			st.Stale = true
			st.Freshness = "unknown"
			st.Reason = fmt.Sprintf("table %q is not loaded", ps.Table)
			sets = append(sets, st)
			continue
		}
		c := classifyStamp(ps.stamp, tab.NumRows(), tab.Epoch())
		st.Freshness = c.String()
		switch c {
		case stampBehind:
			st.Stale = true
			st.Reason = fmt.Sprintf("set reflects rows=%d epoch=%d, table has rows=%d epoch=%d; maintainable by POST /v1/append",
				ps.stamp.Rows, ps.stamp.Epoch, tab.NumRows(), tab.Epoch())
		case stampDiverged:
			st.Stale = true
			st.Reason = fmt.Sprintf("set reflects rows=%d epoch=%d but table has rows=%d epoch=%d: epoch mismatch, must re-mine",
				ps.stamp.Rows, ps.stamp.Epoch, tab.NumRows(), tab.Epoch())
		}
		sets = append(sets, st)
	}
	s.mu.RUnlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	sort.Slice(sets, func(i, j int) bool { return sets[i].ID < sets[j].ID })
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tables":      tables,
		"patternSets": sets,
	})
}
