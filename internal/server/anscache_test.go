package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAnswerCacheLRUEviction(t *testing.T) {
	c := newAnswerCache(3)
	put := func(k string) {
		c.do(k, func() (int, interface{}, bool) { return 200, k, true })
	}
	put("a")
	put("b")
	put("c")
	// Touch "a" so it becomes most recent; inserting "d" must evict "b".
	if _, v, hit := c.do("a", nil); !hit || v != "a" {
		t.Fatalf("expected hit on a, got %v/%v", v, hit)
	}
	put("d")
	if _, _, hit := c.lookup("b"); hit {
		t.Error("b should have been evicted as the LRU entry")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, v, hit := c.lookup(k); !hit || v != k {
			t.Errorf("%s should have survived, got %v/%v", k, v, hit)
		}
	}
	st := c.stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 3 entries / 1 eviction", st)
	}
}

func TestAnswerCacheUncacheableNotStored(t *testing.T) {
	c := newAnswerCache(8)
	calls := 0
	compute := func() (int, interface{}, bool) {
		calls++
		return 503, "transient", false
	}
	if _, _, hit := c.do("k", compute); hit {
		t.Error("first call cannot be a hit")
	}
	if _, _, hit := c.do("k", compute); hit {
		t.Error("uncacheable result must not satisfy later calls")
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2", calls)
	}
	if st := c.stats(); st.Entries != 0 {
		t.Errorf("uncacheable result was stored: %+v", st)
	}
}

func TestAnswerCacheNegativeCaching(t *testing.T) {
	c := newAnswerCache(8)
	calls := 0
	status, v, hit := c.do("bad", func() (int, interface{}, bool) {
		calls++
		return 400, "no such tuple", true
	})
	if status != 400 || v != "no such tuple" || hit {
		t.Fatalf("first = %d/%v/%v", status, v, hit)
	}
	status, v, hit = c.do("bad", func() (int, interface{}, bool) {
		calls++
		return 400, "recomputed", true
	})
	if status != 400 || v != "no such tuple" || !hit {
		t.Errorf("negative answer not replayed: %d/%v/%v", status, v, hit)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
}

// TestAnswerCacheSingleflight: concurrent callers of one cold key run
// compute exactly once; everyone gets the same value.
func TestAnswerCacheSingleflight(t *testing.T) {
	c := newAnswerCache(8)
	var computes atomic.Int64
	start := make(chan struct{})
	const callers = 16
	results := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, v, _ := c.do("hot", func() (int, interface{}, bool) {
				computes.Add(1)
				return 200, "answer", true
			})
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times under contention, want 1", n)
	}
	for i, v := range results {
		if v != "answer" {
			t.Errorf("caller %d saw %v", i, v)
		}
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, callers-1)
	}
}

func TestAnswerCacheLookupInsert(t *testing.T) {
	c := newAnswerCache(2)
	if _, _, hit := c.lookup("x"); hit {
		t.Fatal("lookup on empty cache hit")
	}
	c.insert("x", 200, "vx")
	c.insert("x", 200, "dup") // duplicate insert keeps the original
	if status, v, hit := c.lookup("x"); !hit || status != 200 || v != "vx" {
		t.Errorf("lookup(x) = %d/%v/%v", status, v, hit)
	}
	c.insert("y", 200, "vy")
	if _, _, hit := c.lookup("x"); !hit {
		t.Fatal("x disappeared before capacity was reached")
	}
	c.insert("z", 200, "vz") // capacity 2: x was just read, y is LRU
	if _, _, hit := c.lookup("y"); hit {
		t.Error("y should have been evicted")
	}
	if _, v, hit := c.lookup("x"); !hit || v != "vx" {
		t.Errorf("x (recently read) should have survived, got %v/%v", v, hit)
	}
	if st := c.stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

// TestAnsKeyDisambiguation: every keyed dimension — kind, pattern-set
// version, table generation, epoch, question, K, parallelism, metric
// config — must produce a distinct key, while identical inputs collide.
func TestAnsKeyDisambiguation(t *testing.T) {
	spec := QuestionSpec{GroupBy: []string{"a", "b"}, Tuple: []string{"x", "1"}, Dir: "low"}
	base := ansKey('e', 1, 1, 5, spec, 10, 1, nil, nil)
	if base != ansKey('e', 1, 1, 5, spec, 10, 1, nil, nil) {
		t.Fatal("identical inputs must produce identical keys")
	}
	variants := map[string]string{
		"kind":        ansKey('b', 1, 1, 5, spec, 10, 1, nil, nil),
		"version":     ansKey('e', 2, 1, 5, spec, 10, 1, nil, nil),
		"generation":  ansKey('e', 1, 2, 5, spec, 10, 1, nil, nil),
		"epoch":       ansKey('e', 1, 1, 6, spec, 10, 1, nil, nil),
		"k":           ansKey('e', 1, 1, 5, spec, 11, 1, nil, nil),
		"parallelism": ansKey('e', 1, 1, 5, spec, 10, 2, nil, nil),
		"numeric":     ansKey('e', 1, 1, 5, spec, 10, 1, map[string]float64{"b": 4}, nil),
		"weights":     ansKey('e', 1, 1, 5, spec, 10, 1, nil, map[string]float64{"a": 2}),
		"question": ansKey('e', 1, 1, 5,
			QuestionSpec{GroupBy: []string{"a", "b"}, Tuple: []string{"x", "2"}, Dir: "low"}, 10, 1, nil, nil),
	}
	seen := map[string]string{base: "base"}
	for dim, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("dimension %q collides with %q", dim, prev)
		}
		seen[k] = dim
	}
}

func TestAnswerCacheDefaultCapacity(t *testing.T) {
	c := newAnswerCache(0)
	if c.capacity != defaultAnswerCacheEntries {
		t.Errorf("capacity = %d, want default %d", c.capacity, defaultAnswerCacheEntries)
	}
	for i := 0; i < 10; i++ {
		c.insert(fmt.Sprintf("k%d", i), 200, i)
	}
	if st := c.stats(); st.Entries != 10 || st.Evictions != 0 {
		t.Errorf("default-capacity cache evicted early: %+v", st)
	}
}
