package server

import "sort"

// Scatter-gather merge for the sharded deployment: each shard answers a
// question from its own partition with the engine's top-k generator, and
// the coordinator folds the per-shard lists back into the single-node
// ranking. The engine's total order over explanations is score
// descending, ties broken by the deterministic identity key ascending
// (explain.Explanation.key, carried on the wire as explanationDTO.
// SortKey). Reproducing exactly that order here — and nothing cleverer —
// is what makes the merged response byte-identical to the answer one
// process holding all the rows would have produced.

// mergeTopK merges per-shard explanation lists into the global top k.
// k ≤ 0 applies the engine default (explain.Options.withDefaults).
// Duplicate sort keys across lists keep their best-scoring instance;
// under the fragment-colocation contract each candidate exists on
// exactly one shard, so this is defensive, not load-bearing.
func mergeTopK(lists [][]explanationDTO, k int) []explanationDTO {
	if k <= 0 {
		k = 10
	}
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	all := make([]explanationDTO, 0, n)
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].SortKey < all[j].SortKey
	})
	out := make([]explanationDTO, 0, k)
	seen := make(map[string]bool, k)
	for _, e := range all {
		if seen[e.SortKey] {
			continue
		}
		seen[e.SortKey] = true
		out = append(out, e)
		if len(out) == k {
			break
		}
	}
	return out
}
