package server

import (
	"net/http"

	"cape/internal/explain"
)

// maxBatchQuestions caps one batch request. The limit guards the
// per-item slices the handler allocates before any real work happens;
// legitimate explanation sweeps are orders of magnitude smaller.
const maxBatchQuestions = 1024

// ExplainBatchRequest is the body of POST /v1/explain/batch: one
// pattern set, shared scoring options, and many questions. The batch
// shares the pattern set's warm group-by cache and the relevant-pattern
// scan across its questions, so N questions cost far less than N
// /v1/explain calls.
type ExplainBatchRequest struct {
	// Patterns names a pattern set from /v1/mine.
	Patterns string `json:"patterns"`
	// Questions are the batch items; answers align positionally.
	Questions []QuestionSpec `json:"questions"`
	// K, Parallelism, Numeric and Weights apply to every question.
	K           int                `json:"k,omitempty"`
	Parallelism int                `json:"parallelism,omitempty"`
	Numeric     map[string]float64 `json:"numeric,omitempty"`
	Weights     map[string]float64 `json:"weights,omitempty"`
}

// batchItemDTO is the per-question result of a batch call. Status is an
// HTTP-style code for this item alone: 200 with explanations, or 400
// with an error message — one bad question never fails the batch.
type batchItemDTO struct {
	Index        int              `json:"index"`
	Status       int              `json:"status"`
	Question     string           `json:"question,omitempty"`
	Explanations []explanationDTO `json:"explanations,omitempty"`
	Stats        *explain.Stats   `json:"stats,omitempty"`
	Error        string           `json:"error,omitempty"`
}

// reindexed copies a batch item with a different position. Cached items
// are stored at index 0 (the index is request-local, everything else is
// question-local); hits copy the value back out with the caller's
// index. The Explanations slice and Stats pointer are shared — both are
// immutable once rendered.
func reindexed(it batchItemDTO, index int) batchItemDTO {
	it.Index = index
	return it
}

func (s *Server) handleExplainBatch(w http.ResponseWriter, r *http.Request) {
	var req ExplainBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Questions) == 0 {
		httpError(w, http.StatusBadRequest, "batch needs at least one question")
		return
	}
	if len(req.Questions) > maxBatchQuestions {
		httpError(w, http.StatusBadRequest, "batch of %d questions exceeds the limit of %d", len(req.Questions), maxBatchQuestions)
		return
	}
	s.mu.RLock()
	ps, ok := s.patterns[req.Patterns]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown pattern set %q", req.Patterns)
		return
	}
	tab, gen, ok := s.tableState(ps.Table)
	if !ok {
		httpError(w, http.StatusNotFound, "table %q for pattern set is gone", ps.Table)
		return
	}
	metric, err := buildMetric(req.Numeric, req.Weights)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Resolve every spec to a question; specs that fail validation get
	// their 400 item now and are excluded from the engine batch, so the
	// engine only sees questions the table can actually answer. Items
	// with a cached answer skip the engine batch the same way — the
	// cached value is the fully rendered item, reindexed per request.
	cache := s.answerCacheFor(ps)
	epoch := tab.Epoch()
	items := make([]batchItemDTO, len(req.Questions))
	keys := make([]string, len(req.Questions))
	builder := newQuestionBuilder(tab)
	var qs []explain.UserQuestion
	var qIdx []int // qs[j] answers items[qIdx[j]]
	for i, spec := range req.Questions {
		items[i].Index = i
		if cache != nil {
			keys[i] = ansKey('b', ps.version, gen, epoch, spec, req.K, req.Parallelism, req.Numeric, req.Weights)
			if _, v, ok := cache.lookup(keys[i]); ok {
				it := v.(batchItemDTO)
				it.Index = i
				items[i] = it
				continue
			}
		}
		q, err := builder.build(spec)
		if err != nil {
			items[i].Status = http.StatusBadRequest
			items[i].Error = err.Error()
			if cache != nil {
				cache.insert(keys[i], items[i].Status, reindexed(items[i], 0))
			}
			continue
		}
		items[i].Question = q.String()
		qs = append(qs, q)
		qIdx = append(qIdx, i)
	}

	opt := explain.Options{K: req.K, Metric: metric, Parallelism: req.Parallelism}
	for j, it := range s.explainerFor(ps, tab).ExplainBatchOpts(qs, opt) {
		i := qIdx[j]
		if it.Err != nil {
			items[i].Status = http.StatusBadRequest
			items[i].Error = it.Err.Error()
		} else {
			items[i].Status = http.StatusOK
			items[i].Stats = it.Stats
			items[i].Explanations = make([]explanationDTO, 0, len(it.Explanations))
			for _, e := range it.Explanations {
				items[i].Explanations = append(items[i].Explanations, newExplanationDTO(e, qs[j]))
			}
		}
		if cache != nil {
			cache.insert(keys[i], items[i].Status, reindexed(items[i], 0))
		}
	}

	okCount := 0
	for _, it := range items {
		if it.Status == http.StatusOK {
			okCount++
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"items":  items,
		"ok":     okCount,
		"failed": len(items) - okCount,
	})
}
