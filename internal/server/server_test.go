package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cape/internal/dataset"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body interface{}) (*http.Response, map[string]interface{}) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]interface{}
	dec := json.NewDecoder(resp.Body)
	_ = dec.Decode(&out)
	return resp, out
}

func loadRunningExample(t *testing.T, ts *httptest.Server) {
	t.Helper()
	var csv bytes.Buffer
	if err := dataset.RunningExample().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/tables?name=pub", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load table status = %d", resp.StatusCode)
	}
}

func mineExample(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, out := doJSON(t, "POST", ts.URL+"/v1/mine", MineRequest{
		Table:          "pub",
		MaxPatternSize: 3,
		Theta:          0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2,
		Aggregates: []string{"count"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mine status = %d: %v", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("mine response missing id: %v", out)
	}
	if n, _ := out["patterns"].(float64); n == 0 {
		t.Fatal("mine found no patterns")
	}
	return id
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, out)
	}
}

func TestLoadListAndQuery(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)

	resp, err := http.Get(ts.URL + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tables []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0]["name"] != "pub" || tables[0]["rows"].(float64) != 150 {
		t.Fatalf("tables = %v", tables)
	}

	qresp, out := doJSON(t, "POST", ts.URL+"/v1/query", QueryRequest{
		SQL: "SELECT author, count(*) AS n FROM pub GROUP BY author ORDER BY author",
	})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %v", qresp.StatusCode, out)
	}
	rows := out["rows"].([]interface{})
	if len(rows) != 3 {
		t.Fatalf("query rows = %v", rows)
	}
	first := rows[0].([]interface{})
	if first[0] != "AX" || first[1] != "60" {
		t.Errorf("first row = %v", first)
	}
}

func TestMineAndExplainFlow(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	id := mineExample(t, ts)

	// Inspect the pattern set.
	resp, out := doJSON(t, "GET", ts.URL+"/v1/patterns/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get patterns = %d", resp.StatusCode)
	}
	if out["table"] != "pub" {
		t.Errorf("pattern set table = %v", out["table"])
	}

	// Ask the running-example question.
	resp, out = doJSON(t, "POST", ts.URL+"/v1/explain", ExplainRequest{
		Patterns: id,
		GroupBy:  []string{"author", "venue", "year"},
		Tuple:    []string{"AX", "SIGKDD", "2007"},
		Dir:      "low",
		K:        5,
		Numeric:  map[string]float64{"year": 4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d: %v", resp.StatusCode, out)
	}
	expls := out["explanations"].([]interface{})
	if len(expls) == 0 {
		t.Fatal("no explanations returned")
	}
	top := expls[0].(map[string]interface{})
	joined := fmt.Sprintf("%v%v", top["attrs"], top["tuple"])
	if !strings.Contains(joined, "ICDE") || !strings.Contains(joined, "2007") {
		t.Errorf("top explanation = %v", top)
	}
	if top["narration"] == "" {
		t.Error("narration missing")
	}
	if _, ok := out["stats"].(map[string]interface{}); !ok {
		t.Error("stats missing")
	}
}

func TestBaselineEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	resp, out := doJSON(t, "POST", ts.URL+"/v1/baseline", ExplainRequest{
		Table:   "pub",
		GroupBy: []string{"author", "venue", "year"},
		Tuple:   []string{"AX", "SIGKDD", "2007"},
		Dir:     "low",
		K:       5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status = %d: %v", resp.StatusCode, out)
	}
	if len(out["explanations"].([]interface{})) == 0 {
		t.Error("baseline returned nothing")
	}
}

func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	id := mineExample(t, ts)

	cases := []struct {
		name   string
		method string
		path   string
		body   interface{}
		want   int
	}{
		{"load without name", "POST", "/v1/tables", nil, http.StatusBadRequest},
		{"bad sql", "POST", "/v1/query", QueryRequest{SQL: "SELECT nope FROM pub"}, http.StatusBadRequest},
		{"mine unknown table", "POST", "/v1/mine", MineRequest{Table: "ghost"}, http.StatusNotFound},
		{"mine unknown miner", "POST", "/v1/mine", MineRequest{Table: "pub", Miner: "quantum"}, http.StatusBadRequest},
		{"mine bad aggregate", "POST", "/v1/mine", MineRequest{Table: "pub", Aggregates: []string{"median"}}, http.StatusBadRequest},
		{"patterns unknown id", "GET", "/v1/patterns/ps-999", nil, http.StatusNotFound},
		{"explain unknown set", "POST", "/v1/explain", ExplainRequest{Patterns: "ps-999", GroupBy: []string{"a"}, Tuple: []string{"x"}, Dir: "low"}, http.StatusNotFound},
		{"explain bad dir", "POST", "/v1/explain", ExplainRequest{Patterns: id, GroupBy: []string{"author"}, Tuple: []string{"AX"}, Dir: "sideways"}, http.StatusBadRequest},
		{"explain arity", "POST", "/v1/explain", ExplainRequest{Patterns: id, GroupBy: []string{"author"}, Tuple: []string{"AX", "extra"}, Dir: "low"}, http.StatusBadRequest},
		{"explain non-result", "POST", "/v1/explain", ExplainRequest{Patterns: id, GroupBy: []string{"author"}, Tuple: []string{"NOBODY"}, Dir: "low"}, http.StatusBadRequest},
		{"explain bad scale", "POST", "/v1/explain", ExplainRequest{Patterns: id, GroupBy: []string{"author", "venue", "year"}, Tuple: []string{"AX", "SIGKDD", "2007"}, Dir: "low", Numeric: map[string]float64{"year": -1}}, http.StatusBadRequest},
		{"baseline no table", "POST", "/v1/baseline", ExplainRequest{GroupBy: []string{"a"}, Tuple: []string{"x"}, Dir: "low"}, http.StatusBadRequest},
		{"baseline unknown table", "POST", "/v1/baseline", ExplainRequest{Table: "ghost", GroupBy: []string{"a"}, Tuple: []string{"x"}, Dir: "low"}, http.StatusNotFound},
	}
	for _, c := range cases {
		resp, _ := doJSON(t, c.method, ts.URL+c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

func TestRejectsUnknownFieldsAndGarbage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"sql":"SELECT 1","bogus":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"sql":"x"} trailing`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing garbage accepted: %d", resp2.StatusCode)
	}
}

func TestAggregateSpecInExplain(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	id := mineExample(t, ts)
	// Explicit count(*) aggregate string parses.
	resp, _ := doJSON(t, "POST", ts.URL+"/v1/explain", ExplainRequest{
		Patterns:  id,
		GroupBy:   []string{"author", "venue", "year"},
		Aggregate: "count(*)",
		Tuple:     []string{"AX", "SIGKDD", "2007"},
		Dir:       "low",
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("count(*) aggregate rejected: %d", resp.StatusCode)
	}
	// Malformed aggregate string errors.
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/explain", ExplainRequest{
		Patterns:  id,
		GroupBy:   []string{"author"},
		Aggregate: "count",
		Tuple:     []string{"AX"},
		Dir:       "low",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed aggregate accepted: %d", resp.StatusCode)
	}
}

func TestAddTableProgrammatic(t *testing.T) {
	s, ts := newTestServer(t)
	s.AddTable("direct", dataset.RunningExample())
	resp, out := doJSON(t, "POST", ts.URL+"/v1/query", QueryRequest{
		SQL: "SELECT count(*) FROM direct",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query on AddTable'd table: %d %v", resp.StatusCode, out)
	}
}

func TestGeneralizeAndInterveneEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	loadRunningExample(t, ts)
	id := mineExample(t, ts)

	resp, out := doJSON(t, "POST", ts.URL+"/v1/generalize", ExplainRequest{
		Patterns: id,
		GroupBy:  []string{"author", "venue", "year"},
		Tuple:    []string{"AX", "SIGKDD", "2007"},
		Dir:      "low",
		K:        3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generalize status = %d: %v", resp.StatusCode, out)
	}
	if _, ok := out["generalizations"]; !ok {
		t.Error("generalizations field missing")
	}

	// Intervention refuses low questions with 422.
	resp, out = doJSON(t, "POST", ts.URL+"/v1/intervene", ExplainRequest{
		Table:   "pub",
		GroupBy: []string{"author", "venue", "year"},
		Tuple:   []string{"AX", "SIGKDD", "2007"},
		Dir:     "low",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("intervene low status = %d: %v", resp.StatusCode, out)
	}

	// A high question succeeds.
	resp, out = doJSON(t, "POST", ts.URL+"/v1/intervene", ExplainRequest{
		Table:   "pub",
		GroupBy: []string{"author", "venue", "year"},
		Tuple:   []string{"AX", "ICDE", "2007"},
		Dir:     "high",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("intervene high status = %d: %v", resp.StatusCode, out)
	}
	if _, ok := out["interventions"]; !ok {
		t.Error("interventions field missing")
	}
}
