package server

import (
	"net/http"
	"strconv"
	"strings"

	"cape/internal/engine"
	"cape/internal/mining"
	"cape/internal/pattern"
)

// Shard role of the sharded deployment (DESIGN.md §15). A capeshard
// coordinator runs each shard as a plain capeserver holding one hash
// partition of every table, and drives it through two extensions:
//
//   - POST /v1/mine with "withStats": the shard mines through the
//     maintainer (byte-identical to ARPMine) and reports the raw
//     per-candidate evidence — good / supported / total fragments —
//     including candidates with zero good locals. Shards are mined
//     with loosened global thresholds (λ=0, Δ=1); the real gates are
//     per-fragment (θ, local support) and fragments are wholly owned
//     by one shard, so summing the counters across shards reproduces
//     the single-node evidence exactly.
//   - POST /v1/patterns/{id}/admit: the coordinator applies the real
//     λ/Δ gates to the summed counters and pushes the surviving key
//     set down; the shard serves only admitted patterns from then on,
//     re-applying the filter after every maintenance pass.

// handleMineWithStats is the WithStats branch of handleMine: mine via
// mining.NewMaintainer so the retained state can report candidate
// evidence now and after every future append.
func (s *Server) handleMineWithStats(w http.ResponseWriter, req MineRequest, tab *engine.Table, opt mining.Options) {
	if m := strings.ToLower(req.Miner); m != "" && m != "arpmine" {
		httpError(w, http.StatusBadRequest, "withStats mining supports only the arpmine miner, not %q", req.Miner)
		return
	}
	if req.UseFDs {
		httpError(w, http.StatusBadRequest, "withStats mining is incompatible with useFDs")
		return
	}
	m, err := mining.NewMaintainer(tab, opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mined := m.Patterns()
	locals := 0
	for _, p := range mined {
		locals += len(p.Locals)
	}
	stamp := &pattern.StoreStamp{Epoch: tab.Epoch(), Rows: tab.NumRows()}
	spec, _ := mining.SpecFor(tab, opt)
	s.mu.Lock()
	s.nextID++
	ps := &patternSet{
		ID:         "ps-" + strconv.Itoa(s.nextID),
		Table:      req.Table,
		Count:      len(mined),
		Locals:     locals,
		Options:    req,
		patterns:   mined,
		stamp:      stamp,
		spec:       spec,
		maintainer: m,
		withStats:  true,
	}
	s.patterns[ps.ID] = ps
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"id": ps.ID, "table": ps.Table, "patterns": ps.Count,
		"localModels": ps.Locals, "options": req,
		"candStats": m.CandStats(),
	})
}

// AdmitRequest is the body of POST /v1/patterns/{id}/admit: the set of
// pattern keys (pattern.Key()) this shard may serve. Keys the shard
// never mined are ignored — a shard holding no good local for an
// admitted pattern has nothing to serve for it, which is exactly the
// single-node behavior for fragments it does not own.
type AdmitRequest struct {
	Keys []string `json:"keys"`
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var req AdmitRequest
	if !readJSON(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	s.mu.Lock()
	ps, ok := s.patterns[id]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown pattern set %q", id)
		return
	}
	if ps.maintainer == nil {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "pattern set %q was not mined withStats; admission needs the retained mining state", id)
		return
	}
	admitted := make(map[string]bool, len(req.Keys))
	for _, k := range req.Keys {
		admitted[k] = true
	}
	ps.admitted = admitted
	served := filterAdmitted(ps.maintainer.Patterns(), admitted)
	locals := 0
	for _, p := range served {
		locals += len(p.Locals)
	}
	ps.patterns = served
	ps.Count = len(served)
	ps.Locals = locals
	// Admission swaps the served list without touching the table, so the
	// version bump is what invalidates this set's cached answers.
	ps.version++
	if e, ok := s.explainers[ps.ID]; ok {
		if tab, tok := s.tables[ps.Table]; tok && e.table == tab {
			e.ex.SetPatterns(served)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id": id, "admitted": len(req.Keys), "patterns": len(served), "localModels": locals,
	})
}

// filterAdmitted keeps the patterns whose key the coordinator admitted.
// The input is Patterns() output (sorted by key), so the filtered list
// stays sorted — explain iterates it in this order.
func filterAdmitted(mined []*pattern.Mined, admitted map[string]bool) []*pattern.Mined {
	if admitted == nil {
		return mined
	}
	out := make([]*pattern.Mined, 0, len(mined))
	for _, m := range mined {
		if admitted[m.Pattern.Key()] {
			out = append(out, m)
		}
	}
	return out
}
