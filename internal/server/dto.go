package server

import (
	"fmt"
	"strings"

	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/pattern"
	"cape/internal/value"
)

// ExplainRequest is the body of POST /v1/explain (with Patterns set) and
// POST /v1/baseline (with Table set).
type ExplainRequest struct {
	// Patterns names a pattern set from /v1/mine (explain only).
	Patterns string `json:"patterns,omitempty"`
	// Table names a loaded table (baseline only; explain takes the table
	// from the pattern set).
	Table string `json:"table,omitempty"`
	// GroupBy + Aggregate + Tuple + Dir define the user question. Tuple
	// values are rendered strings, parsed with the CSV value rules.
	GroupBy   []string `json:"groupBy"`
	Aggregate string   `json:"aggregate,omitempty"` // e.g. "count(*)", "sum(x)"; default count(*)
	Tuple     []string `json:"tuple"`
	Dir       string   `json:"dir"`
	K         int      `json:"k,omitempty"`
	// Parallelism overrides the server's default explanation worker
	// count for this request; 0 keeps the default, 1 forces sequential.
	Parallelism int `json:"parallelism,omitempty"`
	// Numeric maps attribute names to numeric-distance scales.
	Numeric map[string]float64 `json:"numeric,omitempty"`
	// Weights maps attribute names to metric weights.
	Weights map[string]float64 `json:"weights,omitempty"`
}

// build validates the request against the table and produces the
// question plus explanation options.
func (r ExplainRequest) build(tab *engine.Table) (explain.UserQuestion, explain.Options, error) {
	q, err := newQuestionBuilder(tab).build(QuestionSpec{
		GroupBy: r.GroupBy, Aggregate: r.Aggregate, Tuple: r.Tuple, Dir: r.Dir,
	})
	if err != nil {
		return q, explain.Options{}, err
	}
	metric, err := buildMetric(r.Numeric, r.Weights)
	if err != nil {
		return q, explain.Options{}, err
	}
	return q, explain.Options{K: r.K, Metric: metric, Parallelism: r.Parallelism}, nil
}

// QuestionSpec is the wire form of one user question: the shape shared
// by ExplainRequest (inline) and ExplainBatchRequest (one per item).
type QuestionSpec struct {
	GroupBy   []string `json:"groupBy"`
	Aggregate string   `json:"aggregate,omitempty"` // e.g. "count(*)", "sum(x)"; default count(*)
	Tuple     []string `json:"tuple"`
	Dir       string   `json:"dir"`
}

// questionBuilder resolves question specs against one table. The
// aggregate query results used to verify that each tuple is an actual
// answer are memoized, so a batch of questions over the same group-by
// runs that query once, not once per item.
type questionBuilder struct {
	tab  *engine.Table
	memo map[string]*engine.Table
}

func newQuestionBuilder(tab *engine.Table) *questionBuilder {
	return &questionBuilder{tab: tab, memo: make(map[string]*engine.Table)}
}

// build validates one spec and resolves its aggregate value from the
// question query's result.
func (b *questionBuilder) build(spec QuestionSpec) (explain.UserQuestion, error) {
	var q explain.UserQuestion
	if len(spec.GroupBy) == 0 || len(spec.Tuple) != len(spec.GroupBy) {
		return q, fmt.Errorf("groupBy and tuple must be non-empty and the same length")
	}
	dir, err := explain.ParseDirection(spec.Dir)
	if err != nil {
		return q, err
	}
	agg, err := engine.ParseAggSpec(spec.Aggregate)
	if err != nil {
		return q, err
	}

	memoKey := strings.Join(spec.GroupBy, "\x1f") + "\x1e" + agg.String()
	grouped, ok := b.memo[memoKey]
	if !ok {
		grouped, err = b.tab.GroupBy(spec.GroupBy, []engine.AggSpec{agg})
		if err != nil {
			return q, err
		}
		b.memo[memoKey] = grouped
	}

	vals := make(value.Tuple, len(spec.Tuple))
	for i, raw := range spec.Tuple {
		vals[i] = value.Parse(raw)
	}
	for _, row := range grouped.Rows() {
		if value.Tuple(row[:len(spec.GroupBy)]).Equal(vals) {
			return explain.UserQuestion{
				GroupBy: spec.GroupBy, Agg: agg, Values: vals,
				AggValue: row[len(spec.GroupBy)], Dir: dir,
			}, nil
		}
	}
	return q, fmt.Errorf("tuple %v is not a result of the question query", spec.Tuple)
}

// buildMetric turns the request's numeric-scale and weight maps into a
// distance metric.
func buildMetric(numeric, weights map[string]float64) (*distance.Metric, error) {
	metric := distance.NewMetric()
	for attr, scale := range numeric {
		if scale <= 0 {
			return nil, fmt.Errorf("numeric scale for %q must be positive", attr)
		}
		metric.SetFunc(attr, distance.Numeric{Scale: scale})
	}
	for attr, weight := range weights {
		if weight < 0 {
			return nil, fmt.Errorf("weight for %q must be non-negative", attr)
		}
		metric.SetWeight(attr, weight)
	}
	return metric, nil
}

// tableDTO renders a relation as column names plus stringified rows.
func tableDTO(t *engine.Table) map[string]interface{} {
	cols := t.Schema().Names()
	rows := make([][]string, t.NumRows())
	for i, r := range t.Rows() {
		cells := make([]string, len(r))
		for j, v := range r {
			if v.IsNull() {
				cells[j] = ""
			} else {
				cells[j] = v.String()
			}
		}
		rows[i] = cells
	}
	return map[string]interface{}{"columns": cols, "rows": rows}
}

// patternDTO is the wire form of a mined pattern summary. Key is the
// pattern's canonical identity (pattern.Key()); the shard coordinator
// matches per-shard candidate stats and admission decisions on it.
type patternDTO struct {
	Pattern    string  `json:"pattern"`
	Key        string  `json:"key"`
	Confidence float64 `json:"confidence"`
	Locals     int     `json:"localModels"`
	Supported  int     `json:"supportedFragments"`
	Fragments  int     `json:"fragments"`
}

func newPatternDTO(m *pattern.Mined) patternDTO {
	return patternDTO{
		Pattern:    m.Pattern.String(),
		Key:        m.Pattern.Key(),
		Confidence: m.Confidence,
		Locals:     m.GlobalSupport(),
		Supported:  m.NumSupported,
		Fragments:  m.NumFragments,
	}
}

// explanationDTO is the wire form of one ranked counterbalance. SortKey
// carries the engine's deterministic tie-break identity (refined
// pattern key + candidate tuple key), so a shard coordinator can merge
// per-shard top-k lists into exactly the ordering a single node would
// have produced: scores are compared first, ties broken by SortKey
// ascending — the same total order explain's own heap uses.
type explanationDTO struct {
	Attrs     []string `json:"attrs"`
	Tuple     []string `json:"tuple"`
	AggValue  string   `json:"aggValue"`
	Predicted float64  `json:"predicted"`
	Deviation float64  `json:"deviation"`
	Distance  float64  `json:"distance"`
	Score     float64  `json:"score"`
	Relevant  string   `json:"relevantPattern"`
	Refined   string   `json:"refinedPattern"`
	SortKey   string   `json:"sortKey"`
	Narration string   `json:"narration"`
}

func newExplanationDTO(e explain.Explanation, q explain.UserQuestion) explanationDTO {
	tuple := make([]string, len(e.Tuple))
	for i, v := range e.Tuple {
		tuple[i] = v.String()
	}
	return explanationDTO{
		Attrs:     e.Attrs,
		Tuple:     tuple,
		AggValue:  e.AggValue.String(),
		Predicted: e.Predicted,
		Deviation: e.Deviation,
		Distance:  e.Distance,
		Score:     e.Score,
		Relevant:  e.Relevant.String(),
		Refined:   e.Refined.String(),
		SortKey:   e.Refined.Key() + "\x1e" + e.Tuple.Key(),
		Narration: e.Narrate(q),
	}
}

// generalizationDTO is the wire form of one drill-up explanation.
type generalizationDTO struct {
	Attrs     []string `json:"attrs"`
	Tuple     []string `json:"tuple"`
	AggValue  string   `json:"aggValue"`
	Predicted float64  `json:"predicted"`
	Deviation float64  `json:"deviation"`
	Score     float64  `json:"score"`
	Pattern   string   `json:"pattern"`
}

func newGeneralizationDTO(g explain.Generalization) generalizationDTO {
	tuple := make([]string, len(g.Tuple))
	for i, v := range g.Tuple {
		tuple[i] = v.String()
	}
	return generalizationDTO{
		Attrs: g.Attrs, Tuple: tuple, AggValue: g.AggValue.String(),
		Predicted: g.Predicted, Deviation: g.Deviation, Score: g.Score,
		Pattern: g.Pattern.String(),
	}
}
