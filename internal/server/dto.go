package server

import (
	"fmt"

	"cape/internal/distance"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/pattern"
	"cape/internal/value"
)

// ExplainRequest is the body of POST /v1/explain (with Patterns set) and
// POST /v1/baseline (with Table set).
type ExplainRequest struct {
	// Patterns names a pattern set from /v1/mine (explain only).
	Patterns string `json:"patterns,omitempty"`
	// Table names a loaded table (baseline only; explain takes the table
	// from the pattern set).
	Table string `json:"table,omitempty"`
	// GroupBy + Aggregate + Tuple + Dir define the user question. Tuple
	// values are rendered strings, parsed with the CSV value rules.
	GroupBy   []string `json:"groupBy"`
	Aggregate string   `json:"aggregate,omitempty"` // e.g. "count(*)", "sum(x)"; default count(*)
	Tuple     []string `json:"tuple"`
	Dir       string   `json:"dir"`
	K         int      `json:"k,omitempty"`
	// Parallelism overrides the server's default explanation worker
	// count for this request; 0 keeps the default, 1 forces sequential.
	Parallelism int `json:"parallelism,omitempty"`
	// Numeric maps attribute names to numeric-distance scales.
	Numeric map[string]float64 `json:"numeric,omitempty"`
	// Weights maps attribute names to metric weights.
	Weights map[string]float64 `json:"weights,omitempty"`
}

// build validates the request against the table and produces the
// question plus explanation options.
func (r ExplainRequest) build(tab *engine.Table) (explain.UserQuestion, explain.Options, error) {
	var q explain.UserQuestion
	if len(r.GroupBy) == 0 || len(r.Tuple) != len(r.GroupBy) {
		return q, explain.Options{}, fmt.Errorf("groupBy and tuple must be non-empty and the same length")
	}
	dir, err := explain.ParseDirection(r.Dir)
	if err != nil {
		return q, explain.Options{}, err
	}
	agg := engine.AggSpec{Func: engine.Count}
	if r.Aggregate != "" && r.Aggregate != "count(*)" {
		var fn, arg string
		if i := indexByte(r.Aggregate, '('); i > 0 && r.Aggregate[len(r.Aggregate)-1] == ')' {
			fn, arg = r.Aggregate[:i], r.Aggregate[i+1:len(r.Aggregate)-1]
		} else {
			return q, explain.Options{}, fmt.Errorf("aggregate %q must look like func(arg)", r.Aggregate)
		}
		f, err := engine.ParseAggFunc(fn)
		if err != nil {
			return q, explain.Options{}, err
		}
		agg = engine.AggSpec{Func: f, Arg: arg}
		if agg.IsStar() && f != engine.Count {
			return q, explain.Options{}, fmt.Errorf("%s requires an argument", fn)
		}
	}

	vals := make(value.Tuple, len(r.Tuple))
	for i, raw := range r.Tuple {
		vals[i] = value.Parse(raw)
	}
	grouped, err := tab.GroupBy(r.GroupBy, []engine.AggSpec{agg})
	if err != nil {
		return q, explain.Options{}, err
	}
	found := false
	for _, row := range grouped.Rows() {
		if value.Tuple(row[:len(r.GroupBy)]).Equal(vals) {
			q = explain.UserQuestion{
				GroupBy: r.GroupBy, Agg: agg, Values: vals,
				AggValue: row[len(r.GroupBy)], Dir: dir,
			}
			found = true
			break
		}
	}
	if !found {
		return q, explain.Options{}, fmt.Errorf("tuple %v is not a result of the question query", r.Tuple)
	}

	metric := distance.NewMetric()
	for attr, scale := range r.Numeric {
		if scale <= 0 {
			return q, explain.Options{}, fmt.Errorf("numeric scale for %q must be positive", attr)
		}
		metric.SetFunc(attr, distance.Numeric{Scale: scale})
	}
	for attr, weight := range r.Weights {
		if weight < 0 {
			return q, explain.Options{}, fmt.Errorf("weight for %q must be non-negative", attr)
		}
		metric.SetWeight(attr, weight)
	}
	return q, explain.Options{K: r.K, Metric: metric, Parallelism: r.Parallelism}, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// tableDTO renders a relation as column names plus stringified rows.
func tableDTO(t *engine.Table) map[string]interface{} {
	cols := t.Schema().Names()
	rows := make([][]string, t.NumRows())
	for i, r := range t.Rows() {
		cells := make([]string, len(r))
		for j, v := range r {
			if v.IsNull() {
				cells[j] = ""
			} else {
				cells[j] = v.String()
			}
		}
		rows[i] = cells
	}
	return map[string]interface{}{"columns": cols, "rows": rows}
}

// patternDTO is the wire form of a mined pattern summary.
type patternDTO struct {
	Pattern    string  `json:"pattern"`
	Confidence float64 `json:"confidence"`
	Locals     int     `json:"localModels"`
	Supported  int     `json:"supportedFragments"`
	Fragments  int     `json:"fragments"`
}

func newPatternDTO(m *pattern.Mined) patternDTO {
	return patternDTO{
		Pattern:    m.Pattern.String(),
		Confidence: m.Confidence,
		Locals:     m.GlobalSupport(),
		Supported:  m.NumSupported,
		Fragments:  m.NumFragments,
	}
}

// explanationDTO is the wire form of one ranked counterbalance.
type explanationDTO struct {
	Attrs     []string `json:"attrs"`
	Tuple     []string `json:"tuple"`
	AggValue  string   `json:"aggValue"`
	Predicted float64  `json:"predicted"`
	Deviation float64  `json:"deviation"`
	Distance  float64  `json:"distance"`
	Score     float64  `json:"score"`
	Relevant  string   `json:"relevantPattern"`
	Refined   string   `json:"refinedPattern"`
	Narration string   `json:"narration"`
}

func newExplanationDTO(e explain.Explanation, q explain.UserQuestion) explanationDTO {
	tuple := make([]string, len(e.Tuple))
	for i, v := range e.Tuple {
		tuple[i] = v.String()
	}
	return explanationDTO{
		Attrs:     e.Attrs,
		Tuple:     tuple,
		AggValue:  e.AggValue.String(),
		Predicted: e.Predicted,
		Deviation: e.Deviation,
		Distance:  e.Distance,
		Score:     e.Score,
		Relevant:  e.Relevant.String(),
		Refined:   e.Refined.String(),
		Narration: e.Narrate(q),
	}
}

// generalizationDTO is the wire form of one drill-up explanation.
type generalizationDTO struct {
	Attrs     []string `json:"attrs"`
	Tuple     []string `json:"tuple"`
	AggValue  string   `json:"aggValue"`
	Predicted float64  `json:"predicted"`
	Deviation float64  `json:"deviation"`
	Score     float64  `json:"score"`
	Pattern   string   `json:"pattern"`
}

func newGeneralizationDTO(g explain.Generalization) generalizationDTO {
	tuple := make([]string, len(g.Tuple))
	for i, v := range g.Tuple {
		tuple[i] = v.String()
	}
	return generalizationDTO{
		Attrs: g.Attrs, Tuple: tuple, AggValue: g.AggValue.String(),
		Predicted: g.Predicted, Deviation: g.Deviation, Score: g.Score,
		Pattern: g.Pattern.String(),
	}
}
