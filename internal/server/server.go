// Package server exposes CAPE over HTTP: load CSV tables, mine pattern
// sets offline, and answer user questions online — the deployment shape
// the paper's architecture implies (mining is a batch job; explanation is
// an interactive endpoint). The API is JSON over REST:
//
//	GET  /healthz                    liveness probe
//	GET  /v1                         status: tables, pattern sets, staleness
//	GET  /v1/tables                  list loaded tables
//	POST /v1/tables?name=pub         load a CSV body as a table
//	POST /v1/append                  append rows to a table, maintain its pattern sets
//	POST /v1/query                   run a SQL query
//	POST /v1/mine                    mine a pattern set, returns its id
//	GET  /v1/patterns/{id}           inspect a mined pattern set
//	POST /v1/explain                 top-k counterbalances for a question
//	POST /v1/explain/batch           many questions in one pass, per-item status
//	POST /v1/generalize              same-direction coarser deviations
//	POST /v1/intervene               provenance-restricted intervention baseline
//	POST /v1/baseline                the pattern-blind comparison method
//
// The server holds everything in memory and is safe for concurrent use.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"cape/internal/baseline"
	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/intervention"
	"cape/internal/mining"
	"cape/internal/pattern"
	"cape/internal/sql"
	"cape/internal/store"
)

// Server is the HTTP handler. Create with New.
type Server struct {
	mux *http.ServeMux

	// appendMu serializes table mutation against every other request:
	// /v1/append takes the write side for its whole run (append rows,
	// catch maintainers up, swap pattern sets), all other requests take
	// the read side. This is what lets appends mutate tables and
	// explainer pattern sets in place — no explanation, query, or mine
	// is ever in flight across an epoch change.
	appendMu sync.RWMutex

	mu       sync.RWMutex
	tables   map[string]*engine.Table
	patterns map[string]*patternSet
	// tableGen counts replacements of each table name (load, attach,
	// reload). Answer-cache keys include it alongside the table epoch:
	// epochs restart when a table is reloaded from scratch, so the epoch
	// alone cannot distinguish "same name, different history".
	tableGen map[string]uint64
	// stores maps table name → the WAL store backing it (AttachStore).
	// A store-backed table's appends are durable: /v1/append replies
	// only after the batch is framed into the WAL (fsynced per the
	// store's policy).
	stores map[string]*store.Store
	// explainers holds one warm Explainer per pattern set, so the
	// group-by cache survives across /v1/explain requests instead of
	// being rebuilt per call.
	explainers map[string]*explainerEntry
	nextID     int

	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64

	// ExplainParallelism is the default worker count for explanation
	// generation (runtime.NumCPU() from New); requests may override it
	// with their own "parallelism" field.
	ExplainParallelism int

	// AnswerCacheSize bounds each pattern set's answer cache (entries,
	// not bytes): rendered /v1/explain responses and per-item batch
	// answers keyed by canonical question bytes × pattern-set version ×
	// table generation/epoch, so appends and admission swaps invalidate
	// for free. 0 uses the default (4096); negative disables answer
	// caching entirely.
	AnswerCacheSize int

	// DataDir, when non-empty, makes POST /v1/tables bootstrap a
	// durable store under DataDir/<name> for every newly loaded table,
	// using StoreOptions. Recovery of existing stores at startup is the
	// operator's (capeserver's) job.
	DataDir string
	// StoreOptions configures stores bootstrapped via DataDir.
	StoreOptions store.Options
}

// explainerEntry pins the Explainer to the table snapshot it was built
// over, so reloading a table invalidates the cached aggregates.
type explainerEntry struct {
	table *engine.Table
	ex    *explain.Explainer
}

// patternSet is a stored mining result.
type patternSet struct {
	ID       string      `json:"id"`
	Table    string      `json:"table"`
	Count    int         `json:"patterns"`
	Locals   int         `json:"localModels"`
	Options  MineRequest `json:"options"`
	patterns []*pattern.Mined
	// stamp records the source table's epoch/rows when the set was mined
	// or last maintained; nil for legacy (unstamped) stores, where
	// staleness is undetectable.
	stamp *pattern.StoreStamp
	// spec records the mining parameters when they are reconstructible
	// (non-FD runs); a set with a spec is append-maintainable.
	spec *pattern.StoreSpec
	// maintainer folds appended rows into the set; built lazily on the
	// first append that touches the set's table (or eagerly by a
	// withStats mine).
	maintainer *mining.Maintainer
	// withStats marks a set mined with MineRequest.WithStats: its
	// append statuses carry refreshed candidate stats for the
	// coordinator's global admission.
	withStats bool
	// admitted, when non-nil, restricts the served patterns to the keys
	// a coordinator admitted (POST /v1/patterns/{id}/admit); patterns
	// holds the filtered list, the maintainer retains the full state.
	admitted map[string]bool
	// version counts swaps of the served pattern list (maintenance and
	// admission). Answer-cache keys include it, so any swap — even one
	// that does not move the table epoch — invalidates cached answers.
	// Written only under the appendMu write lock; read under its read
	// side, like the patterns slice itself.
	version uint64
	// anscache is the set's answer cache, built lazily on first use
	// (nil until then, and permanently nil when caching is disabled).
	// Guarded by Server.mu.
	anscache *answerCache
}

// New returns a ready-to-serve Server.
func New() *Server {
	s := &Server{
		tables:             make(map[string]*engine.Table),
		patterns:           make(map[string]*patternSet),
		tableGen:           make(map[string]uint64),
		explainers:         make(map[string]*explainerEntry),
		stores:             make(map[string]*store.Store),
		MaxBodyBytes:       64 << 20,
		ExplainParallelism: runtime.NumCPU(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1", s.handleStatus)
	mux.HandleFunc("GET /v1/{$}", s.handleStatus)
	mux.HandleFunc("GET /v1/tables", s.handleListTables)
	mux.HandleFunc("POST /v1/tables", s.handleLoadTable)
	mux.HandleFunc("POST /v1/append", s.handleAppend)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/mine", s.handleMine)
	mux.HandleFunc("GET /v1/patterns/{id}", s.handleGetPatterns)
	mux.HandleFunc("POST /v1/patterns/{id}/admit", s.handleAdmit)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/explain/batch", s.handleExplainBatch)
	mux.HandleFunc("POST /v1/generalize", s.handleGeneralize)
	mux.HandleFunc("POST /v1/intervene", s.handleIntervene)
	mux.HandleFunc("POST /v1/baseline", s.handleBaseline)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler. Append and admit requests run
// exclusively; everything else shares the read side of appendMu (see
// the field doc). Admission swaps served pattern lists in place, so it
// needs the same exclusion from in-flight explains that appends get.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)
	path := strings.TrimSuffix(r.URL.Path, "/")
	writer := r.Method == http.MethodPost &&
		(path == "/v1/append" || (strings.HasPrefix(path, "/v1/patterns/") && strings.HasSuffix(path, "/admit")))
	if writer {
		s.appendMu.Lock()
		defer s.appendMu.Unlock()
	} else {
		s.appendMu.RLock()
		defer s.appendMu.RUnlock()
	}
	s.mux.ServeHTTP(w, r)
}

// AddTable registers a table programmatically (e.g. preloaded data).
func (s *Server) AddTable(name string, t *engine.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[name] = t
	s.tableGen[name]++
}

// AddPatternSet registers a pattern set programmatically — e.g. one
// loaded from a pattern store directory at startup — and returns its
// assigned ID, usable in explain/generalize requests exactly like a set
// mined via /v1/mine.
func (s *Server) AddPatternSet(table string, patterns []*pattern.Mined) string {
	locals := 0
	for _, m := range patterns {
		locals += len(m.Locals)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	ps := &patternSet{
		ID:       "ps-" + strconv.Itoa(s.nextID),
		Table:    table,
		Count:    len(patterns),
		Locals:   locals,
		patterns: patterns,
	}
	s.patterns[ps.ID] = ps
	return ps.ID
}

// ---- handlers ----

func (s *Server) handleListTables(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type info struct {
		Name    string   `json:"name"`
		Rows    int      `json:"rows"`
		Columns []string `json:"columns"`
	}
	out := make([]info, 0, len(s.tables))
	for name, t := range s.tables {
		out = append(out, info{Name: name, Rows: t.NumRows(), Columns: t.Schema().Names()})
	}
	// Deterministic order for clients and tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Name > out[j].Name; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLoadTable(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		httpError(w, http.StatusBadRequest, "query parameter 'name' is required")
		return
	}
	// A durable table cannot be silently replaced by a CSV upload: its
	// store (WAL, segments, pattern stamps) describes the existing
	// history.
	if _, ok := s.storeFor(name); ok {
		httpError(w, http.StatusConflict, "table %q is store-backed; append to it or remove its data directory", name)
		return
	}
	tab, err := engine.ReadCSV(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "loading CSV: %v", err)
		return
	}
	resp := map[string]interface{}{
		"name": name, "rows": tab.NumRows(), "columns": tab.Schema().Names(),
	}
	if s.DataDir != "" {
		if err := s.BootstrapStore(name, tab); err != nil {
			if errors.Is(err, store.ErrStoreExists) {
				httpError(w, http.StatusConflict,
					"a data directory for table %q already exists; restart the server to recover it", name)
				return
			}
			httpError(w, http.StatusInternalServerError, "creating durable store: %v", err)
			return
		}
		resp["durable"] = true
	} else {
		s.mu.Lock()
		s.tables[name] = tab
		s.tableGen[name]++
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusCreated, resp)
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	SQL string `json:"sql"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.RLock()
	cat := make(sql.Catalog, len(s.tables))
	for n, t := range s.tables {
		cat[n] = t
	}
	s.mu.RUnlock()
	out, err := sql.Run(req.SQL, cat)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, tableDTO(out))
}

// MineRequest is the body of POST /v1/mine.
type MineRequest struct {
	Table          string   `json:"table"`
	Miner          string   `json:"miner,omitempty"` // arpmine (default), sharegrp, cube, naive
	Attributes     []string `json:"attributes,omitempty"`
	MaxPatternSize int      `json:"maxPatternSize,omitempty"`
	Theta          float64  `json:"theta,omitempty"`
	LocalSupport   int      `json:"localSupport,omitempty"`
	Lambda         float64  `json:"lambda,omitempty"`
	GlobalSupport  int      `json:"globalSupport,omitempty"`
	Aggregates     []string `json:"aggregates,omitempty"`
	UseFDs         bool     `json:"useFDs,omitempty"`
	Parallelism    int      `json:"parallelism,omitempty"`
	// WithStats mines via the maintainer (byte-identical patterns) and
	// additionally returns the raw per-candidate evidence counters
	// (mining.CandStat) in the response, keeping them fresh across
	// appends. This is the shard role of a sharded deployment: shards
	// mine with loosened global thresholds, the coordinator sums the
	// counters and applies the real λ/Δ gates via
	// POST /v1/patterns/{id}/admit. Incompatible with useFDs and with
	// miners other than arpmine (the maintainer is the arpmine fit).
	WithStats bool `json:"withStats,omitempty"`
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	var req MineRequest
	if !readJSON(w, r, &req) {
		return
	}
	tab, ok := s.table(req.Table)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown table %q", req.Table)
		return
	}
	opt, err := req.options()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.WithStats {
		s.handleMineWithStats(w, req, tab, opt)
		return
	}
	run := mining.ARPMine
	switch strings.ToLower(req.Miner) {
	case "", "arpmine":
	case "sharegrp":
		run = mining.ShareGrp
	case "cube":
		run = mining.CubeMine
	case "naive":
		run = mining.Naive
	default:
		httpError(w, http.StatusBadRequest, "unknown miner %q", req.Miner)
		return
	}
	res, err := run(tab, opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	locals := 0
	for _, m := range res.Patterns {
		locals += len(m.Locals)
	}
	// Stamp the set with the table shape it was mined at, and keep the
	// mining spec when reconstructible (non-FD), so /v1/append can build
	// a maintainer and fold future rows into this set.
	stamp := &pattern.StoreStamp{Epoch: tab.Epoch(), Rows: tab.NumRows()}
	spec, _ := mining.SpecFor(tab, opt)
	s.mu.Lock()
	s.nextID++
	ps := &patternSet{
		ID:       "ps-" + strconv.Itoa(s.nextID),
		Table:    req.Table,
		Count:    len(res.Patterns),
		Locals:   locals,
		Options:  req,
		patterns: res.Patterns,
		stamp:    stamp,
		spec:     spec,
	}
	s.patterns[ps.ID] = ps
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, ps)
}

// options converts a MineRequest to mining.Options.
func (r MineRequest) options() (mining.Options, error) {
	opt := mining.Options{
		MaxPatternSize: r.MaxPatternSize,
		Attributes:     r.Attributes,
		UseFDs:         r.UseFDs,
		Parallelism:    r.Parallelism,
		Thresholds: pattern.Thresholds{
			Theta:         r.Theta,
			LocalSupport:  r.LocalSupport,
			Lambda:        r.Lambda,
			GlobalSupport: r.GlobalSupport,
		},
	}
	if opt.Thresholds == (pattern.Thresholds{}) {
		opt.Thresholds = pattern.DefaultThresholds()
	}
	for _, a := range r.Aggregates {
		f, err := engine.ParseAggFunc(a)
		if err != nil {
			return opt, err
		}
		opt.AggFuncs = append(opt.AggFuncs, f)
	}
	return opt, nil
}

func (s *Server) handleGetPatterns(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	ps, ok := s.patterns[id]
	var mined []*pattern.Mined
	if ok {
		mined = ps.patterns
	}
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown pattern set %q", id)
		return
	}
	out := make([]patternDTO, 0, len(mined))
	for _, m := range mined {
		out = append(out, newPatternDTO(m))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id": ps.ID, "table": ps.Table, "patterns": out,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.RLock()
	ps, ok := s.patterns[req.Patterns]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown pattern set %q", req.Patterns)
		return
	}
	tab, gen, ok := s.tableState(ps.Table)
	if !ok {
		httpError(w, http.StatusNotFound, "table %q for pattern set is gone", ps.Table)
		return
	}
	// Both outcomes below are deterministic functions of the request and
	// the (pattern set version, table generation/epoch) state in the
	// cache key: a question that fails validation keeps failing until
	// the data changes, so negative answers cache like positive ones.
	compute := func() (int, interface{}, bool) {
		q, opt, err := req.build(tab)
		if err != nil {
			return http.StatusBadRequest, errorBody(err), true
		}
		expls, stats, err := s.explainerFor(ps, tab).ExplainOpts(q, opt)
		if err != nil {
			return http.StatusBadRequest, errorBody(err), true
		}
		out := make([]explanationDTO, 0, len(expls))
		for _, e := range expls {
			out = append(out, newExplanationDTO(e, q))
		}
		return http.StatusOK, map[string]interface{}{
			"question":     q.String(),
			"explanations": out,
			"stats":        stats,
		}, true
	}
	cache := s.answerCacheFor(ps)
	if cache == nil {
		status, v, _ := compute()
		writeJSON(w, status, v)
		return
	}
	key := ansKey('e', ps.version, gen, tab.Epoch(),
		QuestionSpec{GroupBy: req.GroupBy, Aggregate: req.Aggregate, Tuple: req.Tuple, Dir: req.Dir},
		req.K, req.Parallelism, req.Numeric, req.Weights)
	status, v, _ := cache.do(key, compute)
	writeJSON(w, status, v)
}

// errorBody matches httpError's JSON payload for cached negative
// answers.
func errorBody(err error) map[string]string {
	return map[string]string{"error": err.Error()}
}

// answerCacheFor returns the set's answer cache, building it on first
// use; nil when the server has answer caching disabled.
func (s *Server) answerCacheFor(ps *patternSet) *answerCache {
	if s.AnswerCacheSize < 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps.anscache == nil {
		ps.anscache = newAnswerCache(s.AnswerCacheSize)
	}
	return ps.anscache
}

// tableState returns a table with its replacement generation, read
// atomically so cache keys never pair a new table with an old
// generation.
func (s *Server) tableState(name string) (*engine.Table, uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, s.tableGen[name], ok
}

func (s *Server) handleGeneralize(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.RLock()
	ps, ok := s.patterns[req.Patterns]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown pattern set %q", req.Patterns)
		return
	}
	tab, ok := s.table(ps.Table)
	if !ok {
		httpError(w, http.StatusNotFound, "table %q for pattern set is gone", ps.Table)
		return
	}
	q, opt, err := req.build(tab)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	gens, err := explain.Generalize(q, tab, ps.patterns, opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]generalizationDTO, 0, len(gens))
	for _, g := range gens {
		out = append(out, newGeneralizationDTO(g))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"question":        q.String(),
		"generalizations": out,
	})
}

func (s *Server) handleIntervene(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Table == "" {
		httpError(w, http.StatusBadRequest, "intervention requests need 'table'")
		return
	}
	tab, ok := s.table(req.Table)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown table %q", req.Table)
		return
	}
	q, opt, err := req.build(tab)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	expls, err := intervention.Explain(q, tab, intervention.Options{K: opt.K})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, intervention.ErrLowQuestion) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"question":      q.String(),
		"interventions": expls,
	})
}

func (s *Server) handleBaseline(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Table == "" {
		httpError(w, http.StatusBadRequest, "baseline requests need 'table'")
		return
	}
	tab, ok := s.table(req.Table)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown table %q", req.Table)
		return
	}
	q, opt, err := req.build(tab)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	expls, err := baseline.Explain(q, tab, baseline.Options{K: opt.K, Metric: opt.Metric})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"question":     q.String(),
		"explanations": expls,
	})
}

// explainerFor returns the pattern set's shared Explainer, building it
// on first use and rebuilding it when the backing table was replaced.
// Reusing one Explainer per pattern set is what makes the sharded
// group-by cache warm across requests: N concurrent identical questions
// run one GroupBy per distinct grouping instead of N.
func (s *Server) explainerFor(ps *patternSet, tab *engine.Table) *explain.Explainer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.explainers[ps.ID]; ok && e.table == tab {
		return e.ex
	}
	ex := explain.NewExplainer(tab, ps.patterns, explain.Options{Parallelism: s.ExplainParallelism})
	s.explainers[ps.ID] = &explainerEntry{table: tab, ex: ex}
	return ex
}

// Table looks up a loaded table by name.
func (s *Server) Table(name string) (*engine.Table, bool) { return s.table(name) }

// table looks up a loaded table.
func (s *Server) table(name string) (*engine.Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, ok
}

// ---- plumbing ----

func readJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	// Reject trailing garbage.
	if dec.More() {
		httpError(w, http.StatusBadRequest, "unexpected trailing data in request body")
		return false
	}
	io.Copy(io.Discard, r.Body)
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
