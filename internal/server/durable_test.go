package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cape/internal/dataset"
	"cape/internal/engine"
	"cape/internal/pattern"
	"cape/internal/store"
	"cape/internal/value"
)

// These tests cover the WAL-backed serving path: /v1/append routed
// through a durable store, the wire contract (walSeq/durable), fsync
// failure surfacing as 503 without a retracted ack, freshness
// classification on GET /v1, and — the headline — concurrent
// append/explain traffic against a store whose filesystem is snapshotted
// mid-stream as a crash image and reopened, with every acknowledged
// batch surviving.

// newDurableServer serves the running example from a WAL store on the
// given filesystem (the store path inside fsi is "data/pub").
func newDurableServer(t *testing.T, fsi store.FS) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Bootstrap("data/pub", "pub", dataset.RunningExample(), store.Options{FS: fsi})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	if err := s.AttachStore("pub", st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, st
}

// TestDurableAppendEndpoint pins the wire contract of a store-backed
// append: the ack carries the WAL sequence and durable=true, bad rows
// still 400 without touching the WAL, and a table with a store attached
// cannot be clobbered by a re-load.
func TestDurableAppendEndpoint(t *testing.T) {
	_, ts, st := newDurableServer(t, store.NewMemFS())

	resp, out := doJSON(t, "POST", ts.URL+"/v1/append",
		appendBody([]interface{}{"AX", "VLDB", 2010}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d: %v", resp.StatusCode, out)
	}
	if out["durable"] != true {
		t.Errorf("durable = %v, want true", out["durable"])
	}
	if seq, _ := out["walSeq"].(float64); seq != 1 {
		t.Errorf("walSeq = %v, want 1", out["walSeq"])
	}
	resp, out = doJSON(t, "POST", ts.URL+"/v1/append",
		appendBody([]interface{}{"AY", "VLDB", 2010}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second append status = %d: %v", resp.StatusCode, out)
	}
	if seq, _ := out["walSeq"].(float64); seq != 2 {
		t.Errorf("walSeq = %v, want 2", out["walSeq"])
	}

	// A row that fails schema validation must 400 before anything is
	// framed: the WAL sequence does not advance.
	resp, out = doJSON(t, "POST", ts.URL+"/v1/append",
		appendBody([]interface{}{"AX", "VLDB", true}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-row append status = %d: %v", resp.StatusCode, out)
	}
	if info := st.Info(); info.NextSeq != 3 || info.Rows != 152 {
		t.Errorf("after rejected batch: nextSeq=%d rows=%d, want 3/152", info.NextSeq, info.Rows)
	}

	// Reloading over an attached store would orphan the durable state.
	resp, err := http.Post(ts.URL+"/v1/tables?name=pub", "text/csv",
		bytes.NewBufferString("author,venue,year\nAX,VLDB,2010\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("load over store status = %d, want 409", resp.StatusCode)
	}
}

// TestDurableAppendFsyncFailure: when the WAL fsync fails, durability is
// unknown — the handler must answer 503, nothing is acknowledged, and
// the store stays write-disabled (every later append also 503s) until
// an operator intervenes.
func TestDurableAppendFsyncFailure(t *testing.T) {
	ffs := store.NewFaultFS(store.NewMemFS())
	_, ts, st := newDurableServer(t, ffs)

	ffs.SyncErrAfter(ffs.Syncs() + 1) // next fsync = the WAL append's
	resp, out := doJSON(t, "POST", ts.URL+"/v1/append",
		appendBody([]interface{}{"AX", "VLDB", 2010}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append with failing fsync = %d %v, want 503", resp.StatusCode, out)
	}
	if _, ok := out["walSeq"]; ok {
		t.Error("failed append leaked a walSeq ack")
	}
	if st.Err() == nil {
		t.Error("store did not write-disable itself after a failed fsync")
	}
	resp, out = doJSON(t, "POST", ts.URL+"/v1/append",
		appendBody([]interface{}{"AY", "VLDB", 2010}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append on poisoned store = %d %v, want 503", resp.StatusCode, out)
	}
}

// TestStatusFreshnessClasses: GET /v1 must tell apart the two stale
// shapes — "behind" (stamp is a prefix of the table's history, the next
// append heals it) and "diverged" (stamp is ahead on rows or epoch, the
// mined history is not a prefix, only a re-mine helps).
func TestStatusFreshnessClasses(t *testing.T) {
	s, ts := newTestServer(t)
	loadRunningExample(t, ts)
	mineExample(t, ts)
	// One append maintains ps-1 and stamps it at the live shape: fresh.
	if resp, out := doJSON(t, "POST", ts.URL+"/v1/append",
		appendBody([]interface{}{"AX", "VLDB", 2010})); resp.StatusCode != http.StatusOK {
		t.Fatalf("append = %d: %v", resp.StatusCode, out)
	}

	_, behindWarn := s.AddPatternSetEntry(&pattern.StoreEntry{
		Table: "pub", Stamp: &pattern.StoreStamp{Rows: 100, Epoch: 50},
	})
	if behindWarn == "" || !bytes.Contains([]byte(behindWarn), []byte("STALE")) {
		t.Errorf("behind warning = %q, want a STALE warning", behindWarn)
	}
	_, divergedWarn := s.AddPatternSetEntry(&pattern.StoreEntry{
		Table: "pub", Stamp: &pattern.StoreStamp{Rows: 500, Epoch: 1},
	})
	if divergedWarn == "" || !bytes.Contains([]byte(divergedWarn), []byte("EPOCH MISMATCH")) {
		t.Errorf("diverged warning = %q, want an EPOCH MISMATCH warning", divergedWarn)
	}

	resp, out := doJSON(t, "GET", ts.URL+"/v1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sets, _ := out["patternSets"].([]interface{})
	if len(sets) != 3 {
		t.Fatalf("patternSets = %v, want 3 entries", out["patternSets"])
	}
	wantFresh := map[string]string{"ps-1": "fresh", "ps-2": "behind", "ps-3": "diverged"}
	for _, raw := range sets {
		set := raw.(map[string]interface{})
		id, _ := set["id"].(string)
		if got := set["freshness"]; got != wantFresh[id] {
			t.Errorf("%s freshness = %v, want %s", id, got, wantFresh[id])
		}
		if wantStale := wantFresh[id] != "fresh"; set["stale"] != wantStale {
			t.Errorf("%s stale = %v, want %v", id, set["stale"], wantStale)
		}
	}
}

// TestDurableRecoveryUnderConcurrentTraffic is the satellite stress test:
// writers hammer /v1/append while readers run /v1/explain/batch and
// GET /v1 against the same WAL-backed server. Mid-stream — with traffic
// still flowing — the store's filesystem is snapshotted as a strict
// crash image (durable bytes only). Every batch acknowledged before the
// snapshot must recover from that image, recovery must cut on a batch
// boundary, and the reopened store must serve appends again. Run it
// under -race: the point is the locking between the append path, the
// explainers, and the store.
func TestDurableRecoveryUnderConcurrentTraffic(t *testing.T) {
	mfs := store.NewMemFS()
	_, ts, st := newDurableServer(t, mfs)
	id := mineExample(t, ts)

	const writers, perWriter = 4, 8
	const total = writers * perWriter
	var (
		mu        sync.Mutex
		acked     = map[uint64]string{} // walSeq -> venue marker of its 1-row batch
		snapView  map[string][]byte
		snapAcked map[uint64]string
	)
	snapAt := total / 2
	snapped := make(chan struct{})

	stopRead := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				resp, out := doJSON(t, "POST", ts.URL+"/v1/explain/batch", ExplainBatchRequest{
					Patterns:  id,
					K:         3,
					Questions: []QuestionSpec{sigkddSpec()},
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("explain/batch during appends = %d: %v", resp.StatusCode, out)
					return
				}
				if resp, _ := doJSON(t, "GET", ts.URL+"/v1", nil); resp.StatusCode != http.StatusOK {
					t.Errorf("status during appends = %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				marker := fmt.Sprintf("W%d-%d", w, i)
				resp, out := doJSON(t, "POST", ts.URL+"/v1/append",
					appendBody([]interface{}{"AX", marker, 2010}))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("append %s = %d: %v", marker, resp.StatusCode, out)
					return
				}
				seq, _ := out["walSeq"].(float64)
				if seq == 0 || out["durable"] != true {
					t.Errorf("append %s ack not durable: %v", marker, out)
					return
				}
				mu.Lock()
				acked[uint64(seq)] = marker
				if len(acked) == snapAt {
					// The crash image: everything fsync-durable right now,
					// taken while the other writers and readers keep going.
					snapAcked = make(map[uint64]string, len(acked))
					for k, v := range acked {
						snapAcked[k] = v
					}
					snapView = mfs.CrashView(true)
					close(snapped)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stopRead)
	readers.Wait()
	<-snapped

	// Final live state: all acked batches visible, in walSeq order.
	info := st.Info()
	if info.Rows != 150+total || info.NextSeq != total+1 {
		t.Fatalf("final store rows=%d nextSeq=%d, want %d/%d", info.Rows, info.NextSeq, 150+total, total+1)
	}
	tab := st.Table().(*engine.Table)
	for seq, marker := range acked {
		if got := tab.Row(150 + int(seq) - 1)[1]; got != value.NewString(marker) {
			t.Errorf("live row for walSeq %d = %s, want %s", seq, got, marker)
		}
	}

	// The crash image must recover a batch-boundary prefix holding at
	// least every batch acknowledged before the snapshot.
	re, err := store.Open("data/pub", store.Options{FS: store.SeedMemFS(snapView)})
	if err != nil {
		t.Fatalf("crash image does not recover: %v", err)
	}
	reInfo := re.Info()
	j := int(reInfo.NextSeq) - 1
	if j < len(snapAcked) {
		t.Fatalf("recovered %d batches, but %d were acknowledged before the snapshot", j, len(snapAcked))
	}
	if reInfo.Rows != 150+j {
		t.Fatalf("recovered rows=%d with %d batches: not a batch-boundary cut", reInfo.Rows, j)
	}
	reTab := re.Table().(*engine.Table)
	for seq, marker := range snapAcked {
		if int(seq) > j {
			t.Fatalf("acked walSeq %d beyond recovered prefix %d", seq, j)
		}
		if got := reTab.Row(150 + int(seq) - 1)[1]; got != value.NewString(marker) {
			t.Errorf("recovered row for walSeq %d = %s, want %s", seq, got, marker)
		}
	}

	// The reopened store serves: attach to a fresh server and append.
	s2 := New()
	if err := s2.AttachStore("pub", re); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp, out := doJSON(t, "POST", ts2.URL+"/v1/append",
		appendBody([]interface{}{"AX", "post-crash", 2011}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append after recovery = %d: %v", resp.StatusCode, out)
	}
	if seq, _ := out["walSeq"].(float64); int(seq) != j+1 {
		t.Errorf("post-recovery walSeq = %v, want %d", out["walSeq"], j+1)
	}
}
