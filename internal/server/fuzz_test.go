package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cape/internal/dataset"
)

// fuzzServer builds one server with the running example loaded and
// mined, shared across all fuzz iterations. The handler is exercised
// in-process (no network), so a panic anywhere in decoding or per-item
// mapping reaches the fuzzer instead of being swallowed by a transport.
func fuzzServer(tb testing.TB) (*Server, string) {
	tb.Helper()
	s := New()
	s.AddTable("pub", dataset.RunningExample())
	body, err := json.Marshal(MineRequest{
		Table: "pub", MaxPatternSize: 3,
		Theta: 0.5, LocalSupport: 3, Lambda: 0.3, GlobalSupport: 2,
		Aggregates: []string{"count"},
	})
	if err != nil {
		tb.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/mine", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		tb.Fatalf("mine status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.ID == "" {
		tb.Fatalf("mine response: %v %s", err, rec.Body)
	}
	return s, out.ID
}

// FuzzExplainBatchRequest feeds arbitrary bodies to POST
// /v1/explain/batch and enforces the endpoint's error contract:
// malformed JSON, arity mismatches, unknown directions, absurd sizes —
// none may panic, and none may produce a whole-batch 500. Bad requests
// fail with a request-level 4xx; bad questions inside a well-formed
// request fail as per-item 400 entries in a 200 response.
func FuzzExplainBatchRequest(f *testing.F) {
	s, ps := fuzzServer(f)

	valid := func(qs string) string {
		return `{"patterns":"` + ps + `","k":3,"numeric":{"year":4},"questions":[` + qs + `]}`
	}
	seeds := []string{
		valid(`{"groupBy":["author","venue","year"],"tuple":["AX","SIGKDD","2007"],"dir":"low"}`),
		valid(`{"groupBy":["author","venue","year"],"tuple":["AX","ICDE","2007"],"dir":"high"},` +
			`{"groupBy":["author"],"tuple":["AX","extra"],"dir":"low"}`), // arity mismatch item
		valid(`{"groupBy":["author"],"tuple":["AX"],"dir":"sideways"}`),                    // unknown dir
		valid(`{"groupBy":[],"tuple":[],"dir":"low"}`),                                     // empty group-by
		valid(`{"groupBy":["author"],"tuple":["AX"],"dir":"low","aggregate":"sum"}`),       // malformed agg
		valid(`{"groupBy":["author"],"tuple":["AX"],"dir":"low","aggregate":"median(x)"}`), // unknown agg
		valid(`{"groupBy":["nope"],"tuple":["x"],"dir":"low"}`),                            // unknown attribute
		`{"patterns":"` + ps + `","questions":[]}`,                                         // empty batch
		`{"patterns":"ps-999","questions":[{"groupBy":["author"],"tuple":["AX"],"dir":"low"}]}`,
		`{"patterns":"` + ps + `","k":-5,"questions":[{"groupBy":["author"],"tuple":["AX"],"dir":"low"}]}`,
		`{"patterns":"` + ps + `","k":999999999,"questions":[{"groupBy":["author"],"tuple":["AX"],"dir":"low"}]}`,
		`{"patterns":"` + ps + `","parallelism":-3,"questions":[{"groupBy":["author"],"tuple":["AX"],"dir":"low"}]}`,
		`{"patterns":"` + ps + `","numeric":{"year":-1},"questions":[{"groupBy":["author"],"tuple":["AX"],"dir":"low"}]}`,
		`{not json`,
		`[]`,
		`null`,
		`{}`,
		`{"bogus":1}`,
		valid(`{"groupBy":["author"],"tuple":["AX"],"dir":"low"}`) + `trailing`,
		`{"patterns":"` + ps + `","questions":"not-an-array"}`,
		strings.Repeat(`[`, 2000),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/explain/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)

		if rec.Code >= 500 {
			t.Fatalf("whole-batch %d for body %q: %s", rec.Code, body, rec.Body)
		}
		var resp struct {
			Items []struct {
				Status int    `json:"status"`
				Error  string `json:"error"`
			} `json:"items"`
			Error *string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("non-JSON response (%d) for body %q: %s", rec.Code, body, rec.Body)
		}
		switch {
		case rec.Code == http.StatusOK:
			if len(resp.Items) == 0 {
				t.Fatalf("200 with no items for body %q: %s", body, rec.Body)
			}
			for i, it := range resp.Items {
				if it.Status != http.StatusOK && it.Status != http.StatusBadRequest {
					t.Fatalf("item %d status %d for body %q", i, it.Status, body)
				}
				if it.Status == http.StatusBadRequest && it.Error == "" {
					t.Fatalf("item %d failed without an error message for body %q", i, body)
				}
			}
		case rec.Code == http.StatusBadRequest || rec.Code == http.StatusNotFound:
			if resp.Error == nil || *resp.Error == "" {
				t.Fatalf("%d without an error message for body %q: %s", rec.Code, body, rec.Body)
			}
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
	})
}
