package fd

import (
	"testing"
)

func TestKeyCanonical(t *testing.T) {
	if Key([]string{"b", "a"}) != Key([]string{"a", "b"}) {
		t.Error("Key should be order-insensitive")
	}
	if Key([]string{"a"}) == Key([]string{"a", "b"}) {
		t.Error("different sets should have different keys")
	}
	// Input slice must not be mutated.
	in := []string{"z", "a"}
	Key(in)
	if in[0] != "z" {
		t.Error("Key mutated its input")
	}
}

func TestAddDedupAndTrivial(t *testing.T) {
	s := NewSet()
	s.Add([]string{"a"}, "b")
	s.Add([]string{"a"}, "b")
	if s.Len() != 1 {
		t.Errorf("duplicate Add: Len = %d", s.Len())
	}
	s.Add([]string{"a", "b"}, "a") // trivial
	if s.Len() != 1 {
		t.Errorf("trivial FD stored: Len = %d", s.Len())
	}
	s.Add([]string{"b", "a"}, "c")
	s.Add([]string{"a", "b"}, "c") // same FD, different order
	if s.Len() != 2 {
		t.Errorf("order-insensitive dedup failed: Len = %d", s.Len())
	}
}

func TestClosureTransitive(t *testing.T) {
	s := NewSet()
	s.Add([]string{"a"}, "b")
	s.Add([]string{"b"}, "c")
	s.Add([]string{"c", "d"}, "e")
	cl := s.Closure([]string{"a"})
	for _, want := range []string{"a", "b", "c"} {
		if !cl[want] {
			t.Errorf("closure(a) missing %q", want)
		}
	}
	if cl["e"] {
		t.Error("closure(a) should not contain e (d missing)")
	}
	cl2 := s.Closure([]string{"a", "d"})
	if !cl2["e"] {
		t.Error("closure(a,d) should contain e via a→b→c, cd→e")
	}
}

func TestImplies(t *testing.T) {
	s := NewSet()
	s.Add([]string{"block"}, "district")
	s.Add([]string{"district"}, "community")
	if !s.Implies([]string{"block"}, "community") {
		t.Error("block → community should be implied transitively")
	}
	if s.Implies([]string{"community"}, "block") {
		t.Error("reverse implication should not hold")
	}
}

func TestIsMinimal(t *testing.T) {
	s := NewSet()
	s.Add([]string{"block"}, "district")
	if s.IsMinimal([]string{"block", "district"}) {
		t.Error("{block, district} should be non-minimal (block → district)")
	}
	if !s.IsMinimal([]string{"block", "year"}) {
		t.Error("{block, year} should be minimal")
	}
	if !s.IsMinimal([]string{"district"}) {
		t.Error("singleton sets are always minimal")
	}
	empty := NewSet()
	if !empty.IsMinimal([]string{"a", "b", "c"}) {
		t.Error("no FDs ⟹ everything minimal")
	}
}

func TestDeterminesAll(t *testing.T) {
	s := NewSet()
	s.Add([]string{"id"}, "year")
	s.Add([]string{"id"}, "venue")
	if !s.DeterminesAll([]string{"id"}, []string{"year", "venue"}) {
		t.Error("id should determine both year and venue")
	}
	if s.DeterminesAll([]string{"id"}, []string{"year", "author"}) {
		t.Error("id should not determine author")
	}
	if NewSet().DeterminesAll([]string{"id"}, []string{"year"}) {
		t.Error("empty FD set determines nothing")
	}
}

func TestDetect(t *testing.T) {
	// Simulated group counts: grouping on {block} gives 100 groups, and
	// {block, district} also 100 ⟹ block → district. {block, year} gives
	// 400 ⟹ no FD in either direction w.r.t. year.
	sizes := map[string]int{
		Key([]string{"block"}):             100,
		Key([]string{"district"}):          10,
		Key([]string{"year"}):              4,
		Key([]string{"block", "district"}): 100,
		Key([]string{"block", "year"}):     400,
	}
	s := NewSet()
	if added := s.Detect(sizes, []string{"block", "district"}); added != 1 {
		t.Errorf("Detect added %d FDs, want 1", added)
	}
	if !s.Implies([]string{"block"}, "district") {
		t.Error("detected FD block → district missing")
	}
	if added := s.Detect(sizes, []string{"block", "year"}); added != 0 {
		t.Errorf("no FD should be detected for block/year, got %d", added)
	}
	// Re-detection of a known FD adds nothing.
	if added := s.Detect(sizes, []string{"block", "district"}); added != 0 {
		t.Errorf("re-detect added %d", added)
	}
}

func TestDetectMissingCounts(t *testing.T) {
	s := NewSet()
	if added := s.Detect(map[string]int{}, []string{"a", "b"}); added != 0 {
		t.Error("missing counts should add nothing")
	}
	if added := s.Detect(map[string]int{Key([]string{"a"}): 5}, []string{"a"}); added != 0 {
		t.Error("singleton g should add nothing")
	}
}

func TestDeps(t *testing.T) {
	s := NewSet()
	s.Add([]string{"a"}, "b")
	deps := s.Deps()
	if len(deps) != 1 || deps[0].RHS != "b" || len(deps[0].LHS) != 1 || deps[0].LHS[0] != "a" {
		t.Errorf("Deps = %+v", deps)
	}
	// Mutating the returned copy must not affect the set.
	deps[0].LHS[0] = "zzz"
	if !s.Implies([]string{"a"}, "b") {
		t.Error("Deps returned aliased storage")
	}
}
