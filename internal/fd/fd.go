// Package fd implements functional-dependency bookkeeping for pattern
// mining (Appendix D of the CAPE paper): storing FDs with single-attribute
// right-hand sides, computing attribute closures, checking that a
// pattern's partition attributes are minimal, and detecting FDs from the
// group counts that mining computes anyway (|π_A(R)| = |π_{A∪B}(R)| ⟹
// A → B).
package fd

import (
	"sort"
	"strings"
)

// dep is one functional dependency lhs → rhs with a single RHS attribute.
type dep struct {
	lhs []string // sorted
	rhs string
}

// Set is a collection of functional dependencies. The zero value is not
// usable; construct with NewSet.
type Set struct {
	deps []dep
	seen map[string]struct{} // dedup key per dependency
}

// NewSet returns an empty FD set.
func NewSet() *Set {
	return &Set{seen: make(map[string]struct{})}
}

// Key returns a canonical string for an attribute set: sorted names
// joined with an unprintable separator. Used to index group-size maps.
func Key(attrs []string) string {
	s := append([]string(nil), attrs...)
	sort.Strings(s)
	return strings.Join(s, "\x1f")
}

// Add records the dependency lhs → rhs. Trivial dependencies (rhs ∈ lhs)
// and duplicates are ignored.
func (s *Set) Add(lhs []string, rhs string) {
	for _, a := range lhs {
		if a == rhs {
			return
		}
	}
	sorted := append([]string(nil), lhs...)
	sort.Strings(sorted)
	k := Key(sorted) + "\x1e" + rhs
	if _, dup := s.seen[k]; dup {
		return
	}
	s.seen[k] = struct{}{}
	s.deps = append(s.deps, dep{lhs: sorted, rhs: rhs})
}

// Len reports the number of stored dependencies.
func (s *Set) Len() int { return len(s.deps) }

// Closure computes the attribute closure of attrs under the stored FDs
// (all attributes implied by attrs), returned as a membership set.
func (s *Set) Closure(attrs []string) map[string]bool {
	closure := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		closure[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, d := range s.deps {
			if closure[d.rhs] {
				continue
			}
			all := true
			for _, a := range d.lhs {
				if !closure[a] {
					all = false
					break
				}
			}
			if all {
				closure[d.rhs] = true
				changed = true
			}
		}
	}
	return closure
}

// Implies reports whether lhs → rhs follows from the stored FDs.
func (s *Set) Implies(lhs []string, rhs string) bool {
	return s.Closure(lhs)[rhs]
}

// IsMinimal reports whether no attribute of attrs is implied by the
// remaining attributes — the condition under which a pattern's partition
// attributes F should be considered (non-minimal F yields a pattern
// redundant with the one over the reduced F, per the augmentation rule in
// Appendix D).
func (s *Set) IsMinimal(attrs []string) bool {
	if len(s.deps) == 0 || len(attrs) < 2 {
		return true
	}
	rest := make([]string, 0, len(attrs)-1)
	for i, a := range attrs {
		rest = rest[:0]
		rest = append(rest, attrs[:i]...)
		rest = append(rest, attrs[i+1:]...)
		if s.Implies(rest, a) {
			return false
		}
	}
	return true
}

// DeterminesAll reports whether lhs functionally determines every
// attribute in rhs. A pattern where F → V cannot satisfy a local support
// threshold δ > 1 (each fragment has exactly one predictor point), so
// mining skips it.
func (s *Set) DeterminesAll(lhs, rhs []string) bool {
	if len(s.deps) == 0 {
		return false
	}
	closure := s.Closure(lhs)
	for _, a := range rhs {
		if !closure[a] {
			return false
		}
	}
	return true
}

// Detect inspects recorded group counts to find dependencies
// (g − {A}) → A for each attribute A of g: the dependency holds exactly
// when grouping on g − {A} produces as many groups as grouping on g.
// groupSizes maps Key(attrSet) → number of distinct combinations; entries
// missing from the map are skipped. Newly found FDs are added to s; the
// number added is returned.
func (s *Set) Detect(groupSizes map[string]int, g []string) int {
	if len(g) < 2 {
		return 0
	}
	full, ok := groupSizes[Key(g)]
	if !ok {
		return 0
	}
	added := 0
	rest := make([]string, 0, len(g)-1)
	for i, a := range g {
		rest = rest[:0]
		rest = append(rest, g[:i]...)
		rest = append(rest, g[i+1:]...)
		sub, ok := groupSizes[Key(rest)]
		if !ok || sub != full {
			continue
		}
		before := s.Len()
		s.Add(rest, a)
		if s.Len() > before {
			added++
		}
	}
	return added
}

// Dep is an exported view of one stored dependency.
type Dep struct {
	LHS []string
	RHS string
}

// Deps returns copies of the stored dependencies for inspection.
func (s *Set) Deps() []Dep {
	out := make([]Dep, len(s.deps))
	for i, d := range s.deps {
		out[i] = Dep{LHS: append([]string(nil), d.lhs...), RHS: d.rhs}
	}
	return out
}
