// Package intervention implements a simplified intervention-based
// explainer in the spirit of the provenance-restricted systems the CAPE
// paper contrasts itself with (Scorpion [47], Roy–Suciu [36], Roy et
// al. [35]): given a "why is this aggregate so high?" question, it finds
// predicates over the non-group-by attributes of the question tuple's
// *provenance* whose removal moves the aggregate toward the rest of the
// result, ranked by influence per removed tuple.
//
// The package also demonstrates — by construction — the paper's central
// motivation: intervention can only delete provenance tuples, so it has
// nothing to offer for "why is this value so LOW?" questions (removing
// tuples from a count or a non-negative sum can never raise it), and it
// can never surface counterbalances that live outside the provenance.
// Explain returns ErrLowQuestion in that case; CAPE's counterbalances
// are the answer the paper proposes instead.
package intervention

import (
	"errors"
	"fmt"
	"sort"

	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/value"
)

// ErrLowQuestion is returned for dir = low questions: deleting provenance
// tuples cannot raise a count or a non-negative sum, which is exactly the
// limitation CAPE's counterbalances overcome.
var ErrLowQuestion = errors.New(
	"intervention: removing provenance tuples cannot explain a LOW outcome; use counterbalance explanations")

// Explanation is one candidate intervention: a single-attribute predicate
// over the provenance whose removal lowers the aggregate toward the
// expected value.
type Explanation struct {
	// Attr = Val is the predicate describing the removed tuples.
	Attr string
	Val  value.V
	// Removed is the number of provenance tuples matching the predicate.
	Removed int
	// NewValue is the question aggregate after removal.
	NewValue float64
	// Influence is the aggregate change per removed tuple (Δagg / n).
	Influence float64
}

// String renders "venue=ICDE: removing 7 tuples lowers count(*) to 5
// (influence 1.00)".
func (e Explanation) String() string {
	return fmt.Sprintf("%s=%s: removing %d tuples lowers the aggregate to %.2f (influence %.2f)",
		e.Attr, e.Val, e.Removed, e.NewValue, e.Influence)
}

// Options configures the intervention explainer.
type Options struct {
	// K is the number of predicates to return (default 10).
	K int
	// Expected is the target value the aggregate "should" have; when 0 it
	// defaults to the average aggregate over the question query's other
	// groups. Candidates that would push the aggregate below Expected are
	// discarded (over-deletion explains nothing).
	Expected float64
}

// Explain finds single-attribute predicates over the question tuple's
// provenance whose removal moves the aggregate toward Expected. Only
// count(*) and sum over non-negative attributes are supported — the
// aggregates for which monotone deletion semantics are well-defined.
func Explain(q explain.UserQuestion, r *engine.Table, opt Options) ([]Explanation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Dir == explain.Low {
		return nil, ErrLowQuestion
	}
	if opt.K <= 0 {
		opt.K = 10
	}
	if q.Agg.Func != engine.Count && q.Agg.Func != engine.Sum {
		return nil, fmt.Errorf("intervention: aggregate %s not supported (count and sum only)", q.Agg)
	}

	// The provenance of the question tuple: rows in its group.
	prov, err := r.SelectEq(q.GroupBy, q.Values)
	if err != nil {
		return nil, err
	}
	current, err := aggValue(prov, q.Agg)
	if err != nil {
		return nil, err
	}

	expected := opt.Expected
	if expected == 0 {
		expected, err = expectedFromOtherGroups(q, r)
		if err != nil {
			return nil, err
		}
	}
	if current <= expected {
		return nil, nil // nothing to explain away
	}

	inGroup := map[string]bool{}
	for _, a := range q.GroupBy {
		inGroup[a] = true
	}
	var aggIdx = -1
	if !q.Agg.IsStar() {
		aggIdx = prov.Schema().Index(q.Agg.Arg)
	}

	// Enumerate (attr, value) predicates over non-group-by attributes and
	// accumulate each predicate's removal effect in one scan per attr.
	var out []Explanation
	for ci, col := range prov.Schema() {
		if inGroup[col.Name] || (!q.Agg.IsStar() && col.Name == q.Agg.Arg) {
			continue
		}
		type eff struct {
			n     int
			delta float64
		}
		effects := map[string]*eff{}
		vals := map[string]value.V{}
		for _, row := range prov.Rows() {
			k := row[ci].String()
			e, ok := effects[k]
			if !ok {
				e = &eff{}
				effects[k] = e
				vals[k] = row[ci]
			}
			e.n++
			if q.Agg.IsStar() {
				e.delta++
			} else if f, ok := row[aggIdx].AsFloat(); ok {
				if f < 0 {
					return nil, fmt.Errorf("intervention: sum over negative values has no monotone deletion semantics")
				}
				e.delta += f
			}
		}
		for k, e := range effects {
			if e.n == prov.NumRows() {
				continue // removing everything is not an explanation
			}
			newVal := current - e.delta
			if newVal < expected {
				continue // over-deletes past the expected value
			}
			out = append(out, Explanation{
				Attr:      col.Name,
				Val:       vals[k],
				Removed:   e.n,
				NewValue:  newVal,
				Influence: e.delta / float64(e.n),
			})
		}
	}

	// Rank: biggest aggregate reduction first (most of the anomaly
	// explained), then higher influence, then predicate text.
	sort.Slice(out, func(i, j int) bool {
		di := current - out[i].NewValue
		dj := current - out[j].NewValue
		if di != dj {
			return di > dj
		}
		if out[i].Influence != out[j].Influence {
			return out[i].Influence > out[j].Influence
		}
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return value.Compare(out[i].Val, out[j].Val) < 0
	})
	if len(out) > opt.K {
		out = out[:opt.K]
	}
	return out, nil
}

// aggValue evaluates the question aggregate over a set of rows.
func aggValue(t *engine.Table, agg engine.AggSpec) (float64, error) {
	g, err := t.GroupBy(nil, []engine.AggSpec{agg})
	if err != nil {
		return 0, err
	}
	if g.NumRows() == 0 {
		return 0, nil
	}
	f, _ := g.Row(0)[0].AsFloat()
	return f, nil
}

// expectedFromOtherGroups averages the aggregate over the question
// query's other result tuples.
func expectedFromOtherGroups(q explain.UserQuestion, r *engine.Table) (float64, error) {
	grouped, err := r.GroupBy(q.GroupBy, []engine.AggSpec{q.Agg})
	if err != nil {
		return 0, err
	}
	aggIdx := len(q.GroupBy)
	var sum float64
	var n int
	for _, row := range grouped.Rows() {
		if value.Tuple(row[:aggIdx]).Equal(q.Values) {
			continue
		}
		if f, ok := row[aggIdx].AsFloat(); ok {
			sum += f
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}
