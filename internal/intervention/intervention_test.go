package intervention

import (
	"errors"
	"testing"

	"cape/internal/engine"
	"cape/internal/explain"
	"cape/internal/value"
)

// salesTable: the "west" region's count is inflated by a burst of
// online-channel orders — the classic Scorpion scenario where a predicate
// over a non-group-by attribute explains the outlier away.
func salesTable(t *testing.T) *engine.Table {
	t.Helper()
	tab := engine.NewTable(engine.Schema{
		{Name: "region", Kind: value.String},
		{Name: "channel", Kind: value.String},
		{Name: "rep", Kind: value.String},
		{Name: "amount", Kind: value.Int},
	})
	add := func(region, channel, rep string, amount int64, n int) {
		for i := 0; i < n; i++ {
			tab.MustAppend(value.Tuple{
				value.NewString(region), value.NewString(channel),
				value.NewString(rep), value.NewInt(amount),
			})
		}
	}
	add("east", "store", "bob", 10, 5)
	add("north", "store", "eve", 10, 5)
	// west: 5 ordinary store orders plus a 9-order online burst.
	add("west", "store", "amy", 10, 5)
	add("west", "online", "amy", 10, 9)
	return tab
}

func highQuestion() explain.UserQuestion {
	return explain.UserQuestion{
		GroupBy:  []string{"region"},
		Agg:      engine.AggSpec{Func: engine.Count},
		Values:   value.Tuple{value.NewString("west")},
		AggValue: value.NewInt(14),
		Dir:      explain.High,
	}
}

func TestInterventionFindsBurstPredicate(t *testing.T) {
	tab := salesTable(t)
	expls, err := Explain(highQuestion(), tab, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) == 0 {
		t.Fatal("no interventions found")
	}
	top := expls[0]
	if top.Attr != "channel" || top.Val.Str() != "online" {
		t.Errorf("top intervention = %s, want channel=online", top)
	}
	if top.Removed != 9 || top.NewValue != 5 {
		t.Errorf("top removal effect = %d → %g, want 9 → 5", top.Removed, top.NewValue)
	}
}

func TestInterventionRefusesLowQuestions(t *testing.T) {
	tab := salesTable(t)
	q := highQuestion()
	q.Dir = explain.Low
	_, err := Explain(q, tab, Options{})
	if !errors.Is(err, ErrLowQuestion) {
		t.Errorf("low question error = %v, want ErrLowQuestion", err)
	}
}

func TestInterventionSumAggregate(t *testing.T) {
	tab := salesTable(t)
	q := explain.UserQuestion{
		GroupBy:  []string{"region"},
		Agg:      engine.AggSpec{Func: engine.Sum, Arg: "amount"},
		Values:   value.Tuple{value.NewString("west")},
		AggValue: value.NewInt(140),
		Dir:      explain.High,
	}
	expls, err := Explain(q, tab, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) == 0 {
		t.Fatal("no sum interventions")
	}
	if expls[0].Attr != "channel" || expls[0].Val.Str() != "online" {
		t.Errorf("top sum intervention = %s", expls[0])
	}
	if expls[0].NewValue != 50 {
		t.Errorf("sum after removal = %g, want 50", expls[0].NewValue)
	}
}

func TestInterventionNoOverDeletion(t *testing.T) {
	tab := salesTable(t)
	expls, err := Explain(highQuestion(), tab, Options{K: 100, Expected: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range expls {
		if e.NewValue < 5 {
			t.Errorf("over-deleting predicate survived: %s", e)
		}
	}
}

func TestInterventionNothingToExplain(t *testing.T) {
	tab := salesTable(t)
	q := explain.UserQuestion{
		GroupBy:  []string{"region"},
		Agg:      engine.AggSpec{Func: engine.Count},
		Values:   value.Tuple{value.NewString("east")},
		AggValue: value.NewInt(5),
		Dir:      explain.High,
	}
	// east (5) is below the average of the others ((5+14)/2 = 9.5).
	expls, err := Explain(q, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) != 0 {
		t.Errorf("nothing should need explaining: %v", expls)
	}
}

func TestInterventionErrors(t *testing.T) {
	tab := salesTable(t)
	if _, err := Explain(explain.UserQuestion{}, tab, Options{}); err == nil {
		t.Error("invalid question should error")
	}
	q := highQuestion()
	q.Agg = engine.AggSpec{Func: engine.Avg, Arg: "amount"}
	if _, err := Explain(q, tab, Options{}); err == nil {
		t.Error("avg aggregate should be rejected")
	}
	// Negative sums have no monotone deletion semantics.
	neg := engine.NewTable(tab.Schema())
	for _, r := range tab.Rows() {
		neg.MustAppend(r.Clone())
	}
	neg.MustAppend(value.Tuple{
		value.NewString("west"), value.NewString("refund"),
		value.NewString("amy"), value.NewInt(-50),
	})
	q = highQuestion()
	q.Agg = engine.AggSpec{Func: engine.Sum, Arg: "amount"}
	if _, err := Explain(q, neg, Options{}); err == nil {
		t.Error("negative sum values should be rejected")
	}
}

// TestInterventionCannotSeeCounterbalances documents the package-level
// point: the running example's counterbalance (AX's extra ICDE papers)
// is invisible to intervention because it is outside the question
// tuple's provenance, and the low question is refused outright.
func TestInterventionCannotSeeCounterbalances(t *testing.T) {
	tab := engine.NewTable(engine.Schema{
		{Name: "author", Kind: value.String},
		{Name: "venue", Kind: value.String},
		{Name: "year", Kind: value.Int},
	})
	rows := []struct {
		v string
		n int
	}{{"SIGKDD", 1}, {"ICDE", 7}}
	for _, r := range rows {
		for i := 0; i < r.n; i++ {
			tab.MustAppend(value.Tuple{
				value.NewString("AX"), value.NewString(r.v), value.NewInt(2007),
			})
		}
	}
	q := explain.UserQuestion{
		GroupBy:  []string{"author", "venue", "year"},
		Agg:      engine.AggSpec{Func: engine.Count},
		Values:   value.Tuple{value.NewString("AX"), value.NewString("SIGKDD"), value.NewInt(2007)},
		AggValue: value.NewInt(1),
		Dir:      explain.Low,
	}
	if _, err := Explain(q, tab, Options{}); !errors.Is(err, ErrLowQuestion) {
		t.Errorf("err = %v, want ErrLowQuestion", err)
	}
}
