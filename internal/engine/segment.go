package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"cape/internal/value"
)

// On-disk columnar segment format (version 1).
//
// A segment is an immutable, sealed slab of rows stored column-wise with
// the same dictionary + compressed-code representation the in-memory
// kernels consume (CompressedCol), so an opened segment's columns feed
// GroupBy/SelectEq/CountDistinct directly — the bit-packed code payload
// is used in place from the mmap'd file and is never decoded into dense
// heap slices. Layout (all integers little-endian):
//
//	header:
//	  magic        [8]byte  "CAPESEG1"
//	  version      uint32   (1)
//	  ncols        uint32
//	  nrows        uint64
//	  schemaLen    uint32   followed by schemaLen bytes of schema JSON
//	  (pad to 8)
//	column blocks, one per column, 8-aligned:
//	  encoding     uint32   1=RLE 2=bit-packed
//	  bitWidth     uint32   packed code width (PACK only, else 0)
//	  dictCount    uint32
//	  runCount     uint32   (RLE only, else 0)
//	  dictBytes    uint64
//	  dataBytes    uint64
//	  dict payload: per value, kind byte (0 null, 1 int, 2 float,
//	                3 string) + payload (int64 / float64 bits / u32 len
//	                + bytes); (pad to 8)
//	  data payload: RLE  → runEnds int32[runCount] ++ runCodes
//	                       int32[runCount]
//	                PACK → codes bit-packed LSB-first into uint64 words
//	  (pad to 8)
//	footer:
//	  per column:  offset uint64, length uint64, crc uint32, pad uint32
//	               (offset/length span the whole column block; crc is
//	               CRC-32C over those bytes)
//	  headerCRC    uint32   CRC-32C over the header bytes
//	  footerCRC    uint32   CRC-32C over the per-column entries
//	  footerOff    uint64   file offset of the footer
//	  magic        [8]byte  "CAPESEGF"
//
// Every checksum is validated eagerly by OpenSegment before any column
// is served; a flipped bit anywhere in the file is rejected at open, not
// discovered mid-query. Version bumps change the leading magic's digit,
// and readers reject versions they do not know.
//
// Dictionary canonicalization: codes identify AppendKey equality
// classes, and the dictionary stores one representative per class (first
// appearance). Values that are AppendKey-equal but not bitwise identical
// — Int(1) vs Float(1.0) — therefore read back as the representative.
// Columns of uniform kind (anything produced by value.Parse or the
// generators) round-trip exactly.

const (
	segMagic     = "CAPESEG1"
	segTailMagic = "CAPESEGF"
	segVersion   = 1
)

var segCRC = crc32.MakeTable(crc32.Castagnoli)

// SegmentWriter accumulates rows column-wise — dictionary map plus
// coalesced runs per column — and seals them into a Segment or a
// segment file. Rows stream through Append; the writer's memory is
// proportional to dictionaries + runs, not rows, so arbitrarily large
// segments build in bounded memory when the data has bounded domains.
type SegmentWriter struct {
	schema Schema
	nrows  int
	cols   []segColBuilder
}

type segColBuilder struct {
	lookup   map[string]int32
	dict     []value.V
	runEnds  []int32
	runCodes []int32
}

// NewSegmentWriter creates a writer for the given schema.
func NewSegmentWriter(schema Schema) *SegmentWriter {
	w := &SegmentWriter{schema: schema.Clone()}
	w.cols = make([]segColBuilder, len(schema))
	for i := range w.cols {
		w.cols[i].lookup = make(map[string]int32, 16)
	}
	return w
}

// Schema returns the writer's schema.
func (w *SegmentWriter) Schema() Schema { return w.schema }

// NumRows reports how many rows have been appended.
func (w *SegmentWriter) NumRows() int { return w.nrows }

// Append adds one row. Kind checking matches Table.Append: values must
// match typed columns unless NULL.
func (w *SegmentWriter) Append(row value.Tuple) error {
	if len(row) != len(w.schema) {
		return fmt.Errorf("engine: arity mismatch: row has %d values, schema %d columns", len(row), len(w.schema))
	}
	for i, v := range row {
		want := w.schema[i].Kind
		if want != value.Null && !v.IsNull() && v.Kind() != want {
			return fmt.Errorf("engine: column %q expects %s, got %s", w.schema[i].Name, want, v.Kind())
		}
	}
	var keyBuf [24]byte
	end := int32(w.nrows + 1)
	for i, v := range row {
		cb := &w.cols[i]
		key := v.AppendKey(keyBuf[:0])
		code, ok := cb.lookup[string(key)]
		if !ok {
			code = int32(len(cb.dict))
			cb.lookup[string(key)] = code
			cb.dict = append(cb.dict, v)
		}
		if n := len(cb.runCodes); n > 0 && cb.runCodes[n-1] == code {
			cb.runEnds[n-1] = end
		} else {
			cb.runEnds = append(cb.runEnds, end)
			cb.runCodes = append(cb.runCodes, code)
		}
	}
	w.nrows++
	return nil
}

// AppendRows appends a batch of rows, validating each.
func (w *SegmentWriter) AppendRows(rows []value.Tuple) error {
	for i, r := range rows {
		if err := w.Append(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// sealCol converts one builder into its CompressedCol, choosing RLE or
// bit-packed storage exactly like compressCodes.
func (cb *segColBuilder) sealCol(n int) *CompressedCol {
	cc := &CompressedCol{n: n, dict: cb.dict}
	cc.buildDictMeta()
	bw := bitWidthFor(len(cb.dict))
	rleBytes := len(cb.runEnds) * 8
	packBytes := (n*int(bw) + 63) / 64 * 8
	if rleBytes <= packBytes {
		cc.runEnds, cc.runCodes = cb.runEnds, cb.runCodes
	} else {
		cc.bitWidth = bw
		cc.packed = packRuns(cb.runEnds, cb.runCodes, bw)
	}
	return cc
}

// packRuns bit-packs run-length-encoded codes into words without first
// expanding to a dense code slice.
func packRuns(ends, codes []int32, bw uint32) []byte {
	var n int
	if len(ends) > 0 {
		n = int(ends[len(ends)-1])
	}
	words := (uint64(n)*uint64(bw) + 63) / 64
	out := make([]byte, words*8)
	var acc uint64
	var accBits uint
	w := 0
	prev := int32(0)
	for i, end := range ends {
		c := uint64(uint32(codes[i]))
		for r := prev; r < end; r++ {
			acc |= c << accBits
			accBits += uint(bw)
			if accBits >= 64 {
				binary.LittleEndian.PutUint64(out[w:], acc)
				w += 8
				accBits -= 64
				if accBits > 0 {
					acc = c >> (uint(bw) - accBits)
				} else {
					acc = 0
				}
			}
		}
		prev = end
	}
	if accBits > 0 {
		binary.LittleEndian.PutUint64(out[w:], acc)
	}
	return out
}

// Segment seals the writer into an in-memory Segment (no file). The
// writer must not be used afterwards.
func (w *SegmentWriter) Segment() *Segment {
	seg := &Segment{schema: w.schema, nrows: w.nrows}
	seg.cols = make([]*CompressedCol, len(w.cols))
	for i := range w.cols {
		seg.cols[i] = w.cols[i].sealCol(w.nrows)
	}
	return seg
}

// Encode serializes the writer's contents into one in-memory segment
// image — the exact bytes WriteFile would produce. Callers that need
// control over how (and through what filesystem) the image reaches disk
// — the crash-safe store writes segments via temp-file + rename through
// an injectable FS — encode first and write themselves.
func (w *SegmentWriter) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := w.writeTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile serializes the writer's contents to path in segment format.
// The writer remains usable (it is not consumed).
func (w *SegmentWriter) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := w.writeTo(f); err != nil {
		return err
	}
	return f.Sync()
}

// writeTo streams the segment image — header, column blocks, footer —
// to out. Column blocks are encoded one at a time, so memory stays
// proportional to the largest single column block.
func (w *SegmentWriter) writeTo(out io.Writer) error {
	// Header.
	schemaJSON, err := json.Marshal(schemaDTO(w.schema))
	if err != nil {
		return err
	}
	var hdr []byte
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(w.cols)))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(w.nrows))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(schemaJSON)))
	hdr = append(hdr, schemaJSON...)
	hdr = pad8(hdr)
	headerCRC := crc32.Checksum(hdr, segCRC)
	if _, err := out.Write(hdr); err != nil {
		return err
	}
	off := uint64(len(hdr))

	// Column blocks.
	type blockRef struct {
		off, length uint64
		crc         uint32
	}
	refs := make([]blockRef, len(w.cols))
	for ci := range w.cols {
		block := w.cols[ci].encodeBlock(w.nrows)
		refs[ci] = blockRef{off: off, length: uint64(len(block)), crc: crc32.Checksum(block, segCRC)}
		if _, err := out.Write(block); err != nil {
			return err
		}
		off += uint64(len(block))
	}

	// Footer.
	var ftr []byte
	for _, r := range refs {
		ftr = binary.LittleEndian.AppendUint64(ftr, r.off)
		ftr = binary.LittleEndian.AppendUint64(ftr, r.length)
		ftr = binary.LittleEndian.AppendUint32(ftr, r.crc)
		ftr = binary.LittleEndian.AppendUint32(ftr, 0)
	}
	footerCRC := crc32.Checksum(ftr, segCRC)
	ftr = binary.LittleEndian.AppendUint32(ftr, headerCRC)
	ftr = binary.LittleEndian.AppendUint32(ftr, footerCRC)
	ftr = binary.LittleEndian.AppendUint64(ftr, off)
	ftr = append(ftr, segTailMagic...)
	if _, err := out.Write(ftr); err != nil {
		return err
	}
	return nil
}

// encodeBlock serializes one column (header + dict + data payloads).
func (cb *segColBuilder) encodeBlock(n int) []byte {
	bw := bitWidthFor(len(cb.dict))
	rleBytes := len(cb.runEnds) * 8
	packBytes := (n*int(bw) + 63) / 64 * 8
	useRLE := rleBytes <= packBytes

	var dict []byte
	for _, v := range cb.dict {
		dict = appendSegValue(dict, v)
	}
	dict = pad8(dict)

	var data []byte
	if useRLE {
		for _, e := range cb.runEnds {
			data = binary.LittleEndian.AppendUint32(data, uint32(e))
		}
		for _, c := range cb.runCodes {
			data = binary.LittleEndian.AppendUint32(data, uint32(c))
		}
	} else {
		data = packRuns(cb.runEnds, cb.runCodes, bw)
	}
	data = pad8(data)

	var blk []byte
	if useRLE {
		blk = binary.LittleEndian.AppendUint32(blk, encRLE)
		blk = binary.LittleEndian.AppendUint32(blk, 0)
	} else {
		blk = binary.LittleEndian.AppendUint32(blk, encPack)
		blk = binary.LittleEndian.AppendUint32(blk, bw)
	}
	blk = binary.LittleEndian.AppendUint32(blk, uint32(len(cb.dict)))
	if useRLE {
		blk = binary.LittleEndian.AppendUint32(blk, uint32(len(cb.runEnds)))
	} else {
		blk = binary.LittleEndian.AppendUint32(blk, 0)
	}
	blk = binary.LittleEndian.AppendUint64(blk, uint64(len(dict)))
	blk = binary.LittleEndian.AppendUint64(blk, uint64(len(data)))
	blk = append(blk, dict...)
	blk = append(blk, data...)
	return blk
}

func pad8(b []byte) []byte {
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	return b
}

// appendSegValue appends the segment codec encoding of v.
func appendSegValue(dst []byte, v value.V) []byte {
	switch v.Kind() {
	case value.Null:
		return append(dst, 0)
	case value.Int:
		dst = append(dst, 1)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.Int()))
	case value.Float:
		dst = append(dst, 2)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case value.String:
		s := v.Str()
		dst = append(dst, 3)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
		return append(dst, s...)
	default:
		panic("engine: unknown value kind")
	}
}

// decodeSegValue decodes one codec value, returning the remaining bytes.
func decodeSegValue(b []byte) (value.V, []byte, error) {
	if len(b) < 1 {
		return value.V{}, nil, fmt.Errorf("engine: truncated dictionary value")
	}
	switch b[0] {
	case 0:
		return value.NewNull(), b[1:], nil
	case 1:
		if len(b) < 9 {
			return value.V{}, nil, fmt.Errorf("engine: truncated int dictionary value")
		}
		return value.NewInt(int64(binary.LittleEndian.Uint64(b[1:]))), b[9:], nil
	case 2:
		if len(b) < 9 {
			return value.V{}, nil, fmt.Errorf("engine: truncated float dictionary value")
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))), b[9:], nil
	case 3:
		if len(b) < 5 {
			return value.V{}, nil, fmt.Errorf("engine: truncated string dictionary value")
		}
		n := int(binary.LittleEndian.Uint32(b[1:]))
		if len(b) < 5+n {
			return value.V{}, nil, fmt.Errorf("engine: truncated string dictionary value")
		}
		return value.NewString(string(b[5 : 5+n])), b[5+n:], nil
	default:
		return value.V{}, nil, fmt.Errorf("engine: unknown dictionary value tag %d", b[0])
	}
}

// schemaDTO is the JSON shape of a schema in the segment header.
type schemaColDTO struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

func schemaDTO(s Schema) []schemaColDTO {
	out := make([]schemaColDTO, len(s))
	for i, c := range s {
		out[i] = schemaColDTO{Name: c.Name, Kind: c.Kind.String()}
	}
	return out
}

func schemaFromDTO(dto []schemaColDTO) (Schema, error) {
	out := make(Schema, len(dto))
	for i, c := range dto {
		var k value.Kind
		switch c.Kind {
		case "null":
			k = value.Null
		case "int":
			k = value.Int
		case "float":
			k = value.Float
		case "string":
			k = value.String
		default:
			return nil, fmt.Errorf("engine: unknown column kind %q in segment schema", c.Kind)
		}
		out[i] = Column{Name: c.Name, Kind: k}
	}
	return out, nil
}

// Segment is an opened (or in-memory sealed) immutable columnar slab.
// Its columns are CompressedCol views; for a file-backed segment the
// bit-packed payloads reference the mmap'd file directly, so closing the
// segment invalidates them. Segments are safe for concurrent reads.
type Segment struct {
	schema Schema
	nrows  int
	cols   []*CompressedCol
	data   []byte
	closer func() error
}

// Schema returns the segment's schema.
func (s *Segment) Schema() Schema { return s.schema }

// NumRows reports the segment's row count.
func (s *Segment) NumRows() int { return s.nrows }

// Col returns the compressed view of column ci.
func (s *Segment) Col(ci int) *CompressedCol { return s.cols[ci] }

// AppendRowAt appends row r's values to buf and returns it — the boxed
// materialization used for result rows and reference fallbacks.
func (s *Segment) AppendRowAt(r int, buf value.Tuple) value.Tuple {
	for _, cc := range s.cols {
		buf = append(buf, cc.dict[cc.CodeAt(r)])
	}
	return buf
}

// Close releases the mmap (no-op for in-memory segments). The segment's
// columns must not be used afterwards.
func (s *Segment) Close() error {
	s.cols = nil
	s.data = nil
	if s.closer != nil {
		c := s.closer
		s.closer = nil
		return c()
	}
	return nil
}

// OpenSegment maps the segment file at path and validates every
// checksum — header, footer, and each column block — before returning.
// Column code payloads are served from the mapping (bit-packed columns
// are never decoded to dense slices); dictionaries and RLE run vectors
// are decoded to the heap, whose size scales with distinct values and
// runs, not rows.
func OpenSegment(path string) (*Segment, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	seg, err := openSegmentBytes(data)
	if err != nil {
		if closer != nil {
			closer()
		}
		return nil, err
	}
	seg.closer = closer
	return seg, nil
}

// OpenSegmentBytes validates and opens a segment image held in memory —
// the same checks OpenSegment runs on a mapped file. The returned
// segment serves bit-packed column payloads directly from data, so the
// caller must not mutate or recycle the slice while the segment is in
// use. Recovery paths that read segment files through an injectable
// filesystem (internal/store) open the bytes they read with this.
func OpenSegmentBytes(data []byte) (*Segment, error) {
	return openSegmentBytes(data)
}

func openSegmentBytes(data []byte) (*Segment, error) {
	const tailLen = 4 + 4 + 8 + 8 // headerCRC + footerCRC + footerOff + magic
	if len(data) < len(segMagic)+tailLen {
		return nil, fmt.Errorf("engine: segment file too short (%d bytes)", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		if string(data[:7]) == segMagic[:7] {
			return nil, fmt.Errorf("engine: unsupported segment version (magic %q)", data[:8])
		}
		return nil, fmt.Errorf("engine: not a segment file (bad magic)")
	}
	tail := data[len(data)-tailLen:]
	if string(tail[16:]) != segTailMagic {
		return nil, fmt.Errorf("engine: segment file truncated (bad tail magic)")
	}
	headerCRC := binary.LittleEndian.Uint32(tail[0:])
	footerCRC := binary.LittleEndian.Uint32(tail[4:])
	footerOff := binary.LittleEndian.Uint64(tail[8:])
	if footerOff > uint64(len(data)-tailLen) {
		return nil, fmt.Errorf("engine: segment footer offset out of range")
	}

	// Header.
	h := data[8:]
	version := binary.LittleEndian.Uint32(h[0:])
	if version != segVersion {
		return nil, fmt.Errorf("engine: unsupported segment version %d", version)
	}
	ncols := int(binary.LittleEndian.Uint32(h[4:]))
	nrows64 := binary.LittleEndian.Uint64(h[8:])
	if nrows64 > math.MaxInt32 {
		return nil, fmt.Errorf("engine: segment row count %d out of range", nrows64)
	}
	nrows := int(nrows64)
	schemaLen := int(binary.LittleEndian.Uint32(h[16:]))
	if 20+schemaLen > len(h) {
		return nil, fmt.Errorf("engine: segment schema out of range")
	}
	hdrLen := 8 + 20 + schemaLen
	for hdrLen%8 != 0 {
		hdrLen++
	}
	if hdrLen > len(data) {
		return nil, fmt.Errorf("engine: segment header out of range")
	}
	if crc32.Checksum(data[:hdrLen], segCRC) != headerCRC {
		return nil, fmt.Errorf("engine: segment header checksum mismatch")
	}
	var dto []schemaColDTO
	if err := json.Unmarshal(h[20:20+schemaLen], &dto); err != nil {
		return nil, fmt.Errorf("engine: segment schema: %w", err)
	}
	schema, err := schemaFromDTO(dto)
	if err != nil {
		return nil, err
	}
	if len(schema) != ncols {
		return nil, fmt.Errorf("engine: segment schema has %d columns, header says %d", len(schema), ncols)
	}

	// Footer entries.
	entBytes := uint64(ncols) * 24
	if footerOff+entBytes > uint64(len(data)-tailLen) {
		return nil, fmt.Errorf("engine: segment footer out of range")
	}
	ents := data[footerOff : footerOff+entBytes]
	if crc32.Checksum(ents, segCRC) != footerCRC {
		return nil, fmt.Errorf("engine: segment footer checksum mismatch")
	}

	seg := &Segment{schema: schema, nrows: nrows, data: data}
	seg.cols = make([]*CompressedCol, ncols)
	for ci := 0; ci < ncols; ci++ {
		e := ents[ci*24:]
		off := binary.LittleEndian.Uint64(e[0:])
		length := binary.LittleEndian.Uint64(e[8:])
		crc := binary.LittleEndian.Uint32(e[16:])
		// Bounds are checked without off+length, which wraps for crafted
		// huge offsets and would pass despite pointing outside the file.
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("engine: column %d block out of range", ci)
		}
		blk := data[off : off+length]
		if crc32.Checksum(blk, segCRC) != crc {
			return nil, fmt.Errorf("engine: column %d (%s) block checksum mismatch", ci, schema[ci].Name)
		}
		cc, err := decodeSegCol(blk, nrows)
		if err != nil {
			return nil, fmt.Errorf("engine: column %d (%s): %w", ci, schema[ci].Name, err)
		}
		seg.cols[ci] = cc
	}
	return seg, nil
}

// decodeSegCol parses one column block into a CompressedCol view.
func decodeSegCol(blk []byte, nrows int) (*CompressedCol, error) {
	if len(blk) < 32 {
		return nil, fmt.Errorf("truncated column block")
	}
	enc := binary.LittleEndian.Uint32(blk[0:])
	bw := binary.LittleEndian.Uint32(blk[4:])
	dictCount := int(binary.LittleEndian.Uint32(blk[8:]))
	runCount := int(binary.LittleEndian.Uint32(blk[12:]))
	dictBytes := binary.LittleEndian.Uint64(blk[16:])
	dataBytes := binary.LittleEndian.Uint64(blk[24:])
	// Checked without summing, which wraps for crafted huge lengths.
	if dictBytes > uint64(len(blk))-32 || dataBytes > uint64(len(blk))-32-dictBytes {
		return nil, fmt.Errorf("column payload out of range")
	}
	dictBuf := blk[32 : 32+dictBytes]
	dataBuf := blk[32+dictBytes : 32+dictBytes+dataBytes]

	cc := &CompressedCol{n: nrows}
	cc.dict = make([]value.V, 0, dictCount)
	rest := dictBuf
	for i := 0; i < dictCount; i++ {
		var v value.V
		var err error
		v, rest, err = decodeSegValue(rest)
		if err != nil {
			return nil, err
		}
		cc.dict = append(cc.dict, v)
	}
	cc.buildDictMeta()

	switch enc {
	case encRLE:
		if uint64(runCount)*8 > dataBytes {
			return nil, fmt.Errorf("run vectors out of range")
		}
		cc.runEnds = make([]int32, runCount)
		cc.runCodes = make([]int32, runCount)
		for i := 0; i < runCount; i++ {
			cc.runEnds[i] = int32(binary.LittleEndian.Uint32(dataBuf[i*4:]))
		}
		base := runCount * 4
		for i := 0; i < runCount; i++ {
			cc.runCodes[i] = int32(binary.LittleEndian.Uint32(dataBuf[base+i*4:]))
		}
		if runCount > 0 && int(cc.runEnds[runCount-1]) != nrows {
			return nil, fmt.Errorf("run ends do not cover the segment (%d != %d)", cc.runEnds[runCount-1], nrows)
		}
		if runCount == 0 && nrows > 0 {
			return nil, fmt.Errorf("empty run vector for %d rows", nrows)
		}
		// Run ends must be positive and strictly increasing, or the run
		// cursor's seek and CodeAt's binary search index out of range (or
		// serve wrong rows) on a CRC-consistent crafted file.
		prev := int32(0)
		for _, end := range cc.runEnds {
			if end <= prev {
				return nil, fmt.Errorf("run ends not strictly increasing (%d after %d)", end, prev)
			}
			prev = end
		}
		for _, c := range cc.runCodes {
			if int(c) < 0 || int(c) >= dictCount {
				return nil, fmt.Errorf("run code %d out of dictionary range", c)
			}
		}
	case encPack:
		if bw == 0 || bw > 32 {
			return nil, fmt.Errorf("invalid bit width %d", bw)
		}
		need := (uint64(nrows)*uint64(bw) + 63) / 64 * 8
		if need > dataBytes {
			return nil, fmt.Errorf("packed payload too short (%d < %d)", dataBytes, need)
		}
		cc.bitWidth = bw
		cc.packed = dataBuf[:need]
		// Codes are range-checked lazily by consumers via the dictionary
		// length; validate the maximum here so a corrupt-but-checksummed
		// file cannot index out of the dictionary.
		for i := 0; i < nrows; i++ {
			if c := cc.unpack(i); int(c) >= dictCount {
				return nil, fmt.Errorf("packed code %d out of dictionary range at row %d", c, i)
			}
		}
	default:
		return nil, fmt.Errorf("unknown column encoding %d", enc)
	}
	return cc, nil
}
