package engine

import (
	"testing"

	"cape/internal/value"
)

func pubSchema() Schema {
	return Schema{
		{Name: "author", Kind: value.String},
		{Name: "pubid", Kind: value.String},
		{Name: "year", Kind: value.Int},
		{Name: "venue", Kind: value.String},
	}
}

// pubTable builds the running-example Pub table from Figure 1 of the
// paper.
func pubTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable(pubSchema())
	rows := []struct {
		author, pubid string
		year          int64
		venue         string
	}{
		{"AX", "P1", 2004, "SIGKDD"},
		{"AX", "P2", 2004, "SIGKDD"},
		{"AX", "P3", 2005, "SIGKDD"},
		{"AX", "P4", 2005, "SIGKDD"},
		{"AX", "P5", 2005, "ICDE"},
		{"AY", "P2", 2004, "SIGKDD"},
		{"AY", "P6", 2004, "ICDE"},
		{"AY", "P7", 2004, "ICDM"},
		{"AY", "P8", 2005, "ICDE"},
		{"AZ", "P9", 2004, "SIGMOD"},
	}
	for _, r := range rows {
		tab.MustAppend(value.Tuple{
			value.NewString(r.author), value.NewString(r.pubid),
			value.NewInt(r.year), value.NewString(r.venue),
		})
	}
	return tab
}

func TestSchemaIndexAndNames(t *testing.T) {
	s := pubSchema()
	if s.Index("year") != 2 {
		t.Errorf("Index(year) = %d", s.Index("year"))
	}
	if s.Index("nope") != -1 {
		t.Error("Index of missing column should be -1")
	}
	names := s.Names()
	if len(names) != 4 || names[0] != "author" || names[3] != "venue" {
		t.Errorf("Names = %v", names)
	}
}

func TestSchemaIndices(t *testing.T) {
	s := pubSchema()
	idx, err := s.Indices([]string{"venue", "author"})
	if err != nil || idx[0] != 3 || idx[1] != 0 {
		t.Errorf("Indices = %v, %v", idx, err)
	}
	if _, err := s.Indices([]string{"author", "bogus"}); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestSchemaCloneAndEqual(t *testing.T) {
	s := pubSchema()
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone should be Equal")
	}
	c[0].Name = "x"
	if s.Equal(c) {
		t.Error("mutated clone should differ")
	}
	if s[0].Name != "author" {
		t.Error("clone mutation leaked into original")
	}
	if s.Equal(s[:3]) {
		t.Error("different lengths should not be Equal")
	}
}

func TestAppendArityAndTypeChecks(t *testing.T) {
	tab := NewTable(pubSchema())
	if err := tab.Append(value.Tuple{value.NewString("a")}); err == nil {
		t.Error("arity mismatch should error")
	}
	bad := value.Tuple{value.NewInt(1), value.NewString("p"), value.NewInt(2000), value.NewString("v")}
	if err := tab.Append(bad); err == nil {
		t.Error("type mismatch should error")
	}
	withNull := value.Tuple{value.NewNull(), value.NewString("p"), value.NewInt(2000), value.NewString("v")}
	if err := tab.Append(withNull); err != nil {
		t.Errorf("NULL should be accepted in typed column: %v", err)
	}
}

func TestSelect(t *testing.T) {
	tab := pubTable(t)
	ax := tab.Select(func(r value.Tuple) bool { return r[0].Str() == "AX" })
	if ax.NumRows() != 5 {
		t.Errorf("AX rows = %d, want 5", ax.NumRows())
	}
	none := tab.Select(func(r value.Tuple) bool { return false })
	if none.NumRows() != 0 {
		t.Error("empty selection should have no rows")
	}
}

func TestSelectEq(t *testing.T) {
	tab := pubTable(t)
	got, err := tab.SelectEq([]string{"author", "year"}, value.Tuple{value.NewString("AY"), value.NewInt(2004)})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Errorf("AY 2004 rows = %d, want 3", got.NumRows())
	}
	if _, err := tab.SelectEq([]string{"author"}, value.Tuple{}); err == nil {
		t.Error("value/column count mismatch should error")
	}
	if _, err := tab.SelectEq([]string{"ghost"}, value.Tuple{value.NewInt(1)}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestProject(t *testing.T) {
	tab := pubTable(t)
	p, err := tab.Project([]string{"venue", "year"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows() != tab.NumRows() {
		t.Error("Project should preserve row count")
	}
	if p.Schema()[0].Name != "venue" || p.Schema()[1].Name != "year" {
		t.Errorf("projected schema = %v", p.Schema())
	}
	if p.Row(0)[0].Str() != "SIGKDD" || p.Row(0)[1].Int() != 2004 {
		t.Errorf("projected row = %v", p.Row(0))
	}
	if _, err := tab.Project([]string{"missing"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestDistinctProject(t *testing.T) {
	tab := pubTable(t)
	d, err := tab.DistinctProject([]string{"author"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 {
		t.Errorf("distinct authors = %d, want 3", d.NumRows())
	}
	// First-appearance order.
	if d.Row(0)[0].Str() != "AX" || d.Row(1)[0].Str() != "AY" || d.Row(2)[0].Str() != "AZ" {
		t.Errorf("distinct order = %v", d.Rows())
	}
}

func TestCountDistinct(t *testing.T) {
	tab := pubTable(t)
	n, err := tab.CountDistinct([]string{"author", "year"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 { // AX×{04,05}, AY×{04,05}, AZ×{04}
		t.Errorf("CountDistinct(author,year) = %d, want 5", n)
	}
	if _, err := tab.CountDistinct([]string{"nope"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestSortByAndSorted(t *testing.T) {
	tab := pubTable(t)
	sorted, err := tab.Sorted([]string{"year", "author"})
	if err != nil {
		t.Fatal(err)
	}
	prevYear, prevAuthor := int64(-1), ""
	for _, r := range sorted.Rows() {
		y, a := r[2].Int(), r[0].Str()
		if y < prevYear || (y == prevYear && a < prevAuthor) {
			t.Fatalf("not sorted at row %v", r)
		}
		prevYear, prevAuthor = y, a
	}
	// Original table untouched.
	if tab.Row(0)[1].Str() != "P1" {
		t.Error("Sorted mutated the source table")
	}
	if err := tab.SortBy([]string{"missing"}); err == nil {
		t.Error("unknown sort column should error")
	}
}

func TestClone(t *testing.T) {
	tab := pubTable(t)
	c := tab.Clone()
	c.Rows()[0][0] = value.NewString("MUTATED")
	if tab.Row(0)[0].Str() != "AX" {
		t.Error("Clone should deep-copy rows")
	}
}

func TestTableString(t *testing.T) {
	tab := NewTable(Schema{{Name: "a", Kind: value.Int}, {Name: "b", Kind: value.String}})
	tab.MustAppend(value.Tuple{value.NewInt(1), value.NewString("x")})
	want := "a | b\n1 | x\n"
	if got := tab.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppend should panic on bad row")
		}
	}()
	NewTable(pubSchema()).MustAppend(value.Tuple{})
}

func TestIndexedSelectEqMatchesScan(t *testing.T) {
	tab := pubTable(t)
	cols := []string{"author", "year"}
	key := value.Tuple{value.NewString("AY"), value.NewInt(2004)}
	scan, err := tab.SelectEq(cols, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.BuildIndex(cols); err != nil {
		t.Fatal(err)
	}
	if !tab.HasIndex([]string{"year", "author"}) {
		t.Error("index lookup should be order-insensitive on the column set")
	}
	indexed, err := tab.SelectEq(cols, key)
	if err != nil {
		t.Fatal(err)
	}
	if indexed.NumRows() != scan.NumRows() {
		t.Fatalf("indexed %d rows vs scan %d", indexed.NumRows(), scan.NumRows())
	}
	for i := range scan.Rows() {
		if !indexed.Row(i).Equal(scan.Row(i)) {
			t.Errorf("row %d differs: %v vs %v", i, indexed.Row(i), scan.Row(i))
		}
	}
	// Reversed column order with correspondingly reversed values.
	rev, err := tab.SelectEq([]string{"year", "author"}, value.Tuple{value.NewInt(2004), value.NewString("AY")})
	if err != nil {
		t.Fatal(err)
	}
	if rev.NumRows() != scan.NumRows() {
		t.Errorf("reversed-order indexed lookup = %d rows", rev.NumRows())
	}
}

func TestIndexExtendedByAppend(t *testing.T) {
	tab := pubTable(t)
	cols := []string{"author"}
	if err := tab.BuildIndex(cols); err != nil {
		t.Fatal(err)
	}
	tab.MustAppend(value.Tuple{
		value.NewString("AX"), value.NewString("P99"),
		value.NewInt(2006), value.NewString("VLDB"),
	})
	if !tab.HasIndex(cols) {
		t.Fatal("index must survive Append (extended in place)")
	}
	// Post-append lookups go through the extended index and see both the
	// old rows and the new one.
	got, err := tab.SelectEq(cols, value.Tuple{value.NewString("AX")})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 6 {
		t.Errorf("AX rows after append = %d, want 6", got.NumRows())
	}
	// A brand-new key lands in a fresh bucket.
	tab.MustAppend(value.Tuple{
		value.NewString("NEW"), value.NewString("P100"),
		value.NewInt(2007), value.NewString("KDD"),
	})
	got, err = tab.SelectEq(cols, value.Tuple{value.NewString("NEW")})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 {
		t.Errorf("NEW rows after append = %d, want 1", got.NumRows())
	}
}

func TestIndexInvalidatedBySortBy(t *testing.T) {
	tab := pubTable(t)
	cols := []string{"author"}
	if err := tab.BuildIndex(cols); err != nil {
		t.Fatal(err)
	}
	if err := tab.SortBy([]string{"year"}); err != nil {
		t.Fatal(err)
	}
	if tab.HasIndex(cols) {
		t.Fatal("index must be invalidated by SortBy")
	}
}

func TestBuildIndexUnknownColumn(t *testing.T) {
	tab := pubTable(t)
	if err := tab.BuildIndex([]string{"ghost"}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestIndexMissLookup(t *testing.T) {
	tab := pubTable(t)
	if err := tab.BuildIndex([]string{"author"}); err != nil {
		t.Fatal(err)
	}
	got, err := tab.SelectEq([]string{"author"}, value.Tuple{value.NewString("NOBODY")})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Errorf("missing key returned %d rows", got.NumRows())
	}
}
