package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cape/internal/value"
)

// SegTable is a relation stored as a sequence of sealed, immutable
// columnar segments (typically mmap'd from segment files) followed by
// one uncompressed in-memory tail that absorbs appends. Row order is
// segments in order, then the tail — appends land at the global end, so
// the incremental-maintenance invariants (group fold order, fragment
// observation order) carry over from Table unchanged.
//
// Queries run on the compressed kernels directly over segment runs plus
// a zero-copy dense view of the tail; results are byte-identical to
// loading the same rows into a Table (for kind-pure columns; see the
// dictionary-canonicalization note in segment.go). Sealed segments are
// never mutated: Compact seals the current tail into a new in-memory
// segment and resets the tail, leaving row order untouched.
//
// SegTable is not safe for concurrent mutation; concurrent reads are
// fine (same contract as Table).
type SegTable struct {
	schema Schema
	segs   []*Segment
	tail   *Table
	sealed int // rows across segs
	epoch  uint64
	// pool, when set, lets the compressed kernels fan morsels and parts
	// across a shared worker pool (SetPool); see morsel.go.
	pool atomic.Pointer[Pool]

	// unify caches, per column index, the cross-segment dictionary
	// unification the compressed group-by keys on (see colUnify).
	// Sealed segments are immutable, so entries stay valid until the
	// segment list itself changes (AddSegment, Compact); tail-only
	// appends never invalidate. Guarded by unifyMu because concurrent
	// readers build entries lazily.
	unifyMu sync.Mutex
	unify   map[int]*colUnify
}

// colUnify is the cached dictionary unification of one column across
// the sealed segments: segXl[j] maps segment j's local codes to
// column-global codes (nil when the mapping is the identity — always
// true for the first segment), and m (canonical AppendKey bytes →
// global code) extends the same numbering over the append tail's
// dictionary at query time. m is never mutated after the build — unseen
// tail values get codes from a per-query overlay.
type colUnify struct {
	segXl [][]int32
	m     map[string]int32
}

// NewSegTable creates an empty segment table with the given schema.
func NewSegTable(schema Schema) *SegTable {
	return &SegTable{schema: schema.Clone(), tail: NewTable(schema)}
}

// NewSegTableFromSegments assembles a table from sealed segments, whose
// schemas must agree.
func NewSegTableFromSegments(segs ...*Segment) (*SegTable, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("engine: no segments")
	}
	st := NewSegTable(segs[0].Schema())
	for _, s := range segs {
		if err := st.AddSegment(s); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// OpenSegTable opens the segment files at paths (validating checksums)
// and assembles them into one table. Close releases the mappings.
func OpenSegTable(paths ...string) (*SegTable, error) {
	var segs []*Segment
	for _, p := range paths {
		s, err := OpenSegment(p)
		if err != nil {
			for _, prev := range segs {
				prev.Close()
			}
			return nil, err
		}
		segs = append(segs, s)
	}
	return NewSegTableFromSegments(segs...)
}

// Schema returns the table's schema (callers must not mutate it).
func (st *SegTable) Schema() Schema { return st.schema }

// NumRows reports the total row count (sealed segments + tail).
func (st *SegTable) NumRows() int { return st.sealed + st.tail.NumRows() }

// NumSegments reports how many sealed segments back the table.
func (st *SegTable) NumSegments() int { return len(st.segs) }

// TailRows reports how many rows sit in the uncompressed tail.
func (st *SegTable) TailRows() int { return st.tail.NumRows() }

// Epoch returns the mutation counter (AppendRows, AddSegment, Compact).
func (st *SegTable) Epoch() uint64 { return st.epoch }

// RestoreEpoch overwrites the mutation counter. Recovery paths
// (internal/store) use it after reassembling a table from persisted
// segments so the epoch sequence matches the one the original table went
// through; see Table.RestoreEpoch.
func (st *SegTable) RestoreEpoch(e uint64) { st.epoch = e }

// SetPool attaches a worker pool for the query kernels to fan morsels
// and parts across (nil restores sequential execution). Results are
// byte-identical at any pool width; see morsel.go.
func (st *SegTable) SetPool(p *Pool) { st.pool.Store(p) }

func (st *SegTable) queryPool() *Pool { return st.pool.Load() }

// AddSegment appends a sealed segment. To preserve row order it is only
// legal while the tail is empty (segments always precede tail rows);
// Compact first if appends have landed.
func (st *SegTable) AddSegment(seg *Segment) error {
	if !st.schema.Equal(seg.Schema()) {
		return fmt.Errorf("engine: segment schema mismatch")
	}
	if st.tail.NumRows() > 0 {
		return fmt.Errorf("engine: cannot add a segment behind a non-empty tail (Compact first)")
	}
	st.segs = append(st.segs, seg)
	st.sealed += seg.NumRows()
	st.invalidateUnify()
	st.epoch++
	return nil
}

// invalidateUnify drops the cached per-column dictionary unifications;
// called whenever the sealed segment list changes.
func (st *SegTable) invalidateUnify() {
	st.unifyMu.Lock()
	st.unify = nil
	st.unifyMu.Unlock()
}

// colUnify returns (building and caching on first use) the dictionary
// unification of column ci across the sealed segments. Cost is one pass
// over each segment's dictionary — paid once per column per segment-list
// epoch, not once per query.
func (st *SegTable) colUnify(ci int) *colUnify {
	st.unifyMu.Lock()
	defer st.unifyMu.Unlock()
	if u, ok := st.unify[ci]; ok {
		return u
	}
	u := &colUnify{m: make(map[string]int32)}
	var buf []byte
	for _, seg := range st.segs {
		dict := seg.Col(ci).dict
		xl := make([]int32, len(dict))
		ident := true
		for c, v := range dict {
			buf = v.AppendKey(buf[:0])
			g, ok := u.m[string(buf)]
			if !ok {
				g = int32(len(u.m))
				u.m[string(buf)] = g
			}
			xl[c] = g
			if g != int32(c) {
				ident = false
			}
		}
		if ident {
			xl = nil // identity (always true for the first segment): skip translation
		}
		u.segXl = append(u.segXl, xl)
	}
	if st.unify == nil {
		st.unify = make(map[int]*colUnify)
	}
	st.unify[ci] = u
	return u
}

// tailXlat extends a column's cached unification over the live tail
// dictionary for one query: values the sealed segments know resolve to
// their cached code, unseen ones get fresh codes from a local overlay
// (the shared map is never written, so concurrent queries stay safe).
func tailXlat(u *colUnify, dict []value.V) []int32 {
	xl := make([]int32, len(dict))
	next := int32(len(u.m))
	var buf []byte
	var overlay map[string]int32
	for c, v := range dict {
		buf = v.AppendKey(buf[:0])
		if g, ok := u.m[string(buf)]; ok {
			xl[c] = g
			continue
		}
		if g, ok := overlay[string(buf)]; ok {
			xl[c] = g
			continue
		}
		if overlay == nil {
			overlay = make(map[string]int32)
		}
		overlay[string(buf)] = next
		xl[c] = next
		next++
	}
	return xl
}

// AppendRows appends a batch to the uncompressed tail — sealed segments
// are immutable and never touched by appends. Validation and atomicity
// match Table.AppendRows.
func (st *SegTable) AppendRows(rows []value.Tuple) error {
	if err := st.tail.AppendRows(rows); err != nil {
		return err
	}
	if len(rows) > 0 {
		st.epoch++
	}
	return nil
}

// Append appends one row to the tail.
func (st *SegTable) Append(row value.Tuple) error {
	if err := st.tail.Append(row); err != nil {
		return err
	}
	st.epoch++
	return nil
}

// Compact seals the current tail into a new in-memory segment and
// resets the tail. Row order is unchanged (the tail's rows were already
// last), so derived state keyed to row positions — retained aggregates,
// fragment membership — stays valid across a compaction.
func (st *SegTable) Compact() error {
	n := st.tail.NumRows()
	if n == 0 {
		return nil
	}
	w := NewSegmentWriter(st.schema)
	if err := w.AppendRows(st.tail.Rows()); err != nil {
		return err
	}
	st.segs = append(st.segs, w.Segment())
	st.sealed += n
	st.tail = NewTable(st.schema)
	st.invalidateUnify()
	st.epoch++
	return nil
}

// Close releases every mmap'd segment. The table must not be used
// afterwards.
func (st *SegTable) Close() error {
	var first error
	for _, s := range st.segs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.segs = nil
	return first
}

// ScanRows streams rows [lo, hi) in row order. Tuples materialized from
// segments are reused between calls — fn must copy any value it
// retains (tail rows are passed as stored, per the Table contract).
func (st *SegTable) ScanRows(lo, hi int, fn func(row value.Tuple) error) error {
	if lo < 0 || hi > st.NumRows() || lo > hi {
		return fmt.Errorf("engine: ScanRows range [%d, %d) out of bounds", lo, hi)
	}
	buf := make(value.Tuple, 0, len(st.schema))
	base := 0
	for _, seg := range st.segs {
		n := seg.NumRows()
		s, e := lo-base, hi-base
		if s < n && e > 0 {
			if s < 0 {
				s = 0
			}
			if e > n {
				e = n
			}
			for r := s; r < e; r++ {
				buf = seg.AppendRowAt(r, buf[:0])
				if err := fn(buf); err != nil {
					return err
				}
			}
		}
		base += n
	}
	s, e := lo-base, hi-base
	rows := st.tail.Rows()
	if s < len(rows) && e > 0 {
		if s < 0 {
			s = 0
		}
		for _, r := range rows[s:e] {
			if err := fn(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// parts assembles the compressed-kernel parts for a query over key
// columns gIdx and aggregate columns aCols: one part per sealed segment
// (columns served straight from the segment, bit-packed payloads
// mmap'd) plus, when non-empty, a zero-copy dense view of the tail.
func (st *SegTable) parts(gIdx []int, aCols []aggCol) []*compPart {
	nK := len(gIdx)
	out := make([]*compPart, 0, len(st.segs)+1)
	unify := make([]*colUnify, nK)
	for i, ci := range gIdx {
		unify[i] = st.colUnify(ci)
	}
	for si, seg := range st.segs {
		p := &compPart{n: seg.NumRows()}
		p.keys = make([]*CompressedCol, nK)
		p.xlat = make([][]int32, nK)
		for i, ci := range gIdx {
			p.keys[i] = seg.Col(ci)
			p.xlat[i] = unify[i].segXl[si]
		}
		p.aggs = make([]*CompressedCol, len(aCols))
		for i, ac := range aCols {
			if ac.idx >= 0 {
				p.aggs[i] = seg.Col(ac.idx)
			}
		}
		cols := seg.cols
		p.val = func(row, slot int) value.V {
			var cc *CompressedCol
			if slot < nK {
				cc = cols[gIdx[slot]]
			} else {
				cc = cols[aCols[slot-nK].idx]
			}
			return cc.dict[cc.CodeAt(row)]
		}
		out = append(out, p)
	}
	if st.tail.NumRows() > 0 {
		c := st.tail.Columns()
		p := &compPart{n: st.tail.NumRows()}
		p.keys = make([]*CompressedCol, nK)
		p.xlat = make([][]int32, nK)
		for i, ci := range gIdx {
			p.keys[i] = denseView(c.Col(ci))
			p.xlat[i] = tailXlat(unify[i], p.keys[i].dict)
		}
		p.aggs = make([]*CompressedCol, len(aCols))
		for i, ac := range aCols {
			if ac.idx >= 0 {
				p.aggs[i] = denseView(c.Col(ac.idx))
			}
		}
		rows := st.tail.Rows()
		p.val = func(row, slot int) value.V {
			if slot < nK {
				return rows[row][gIdx[slot]]
			}
			return rows[row][aCols[slot-nK].idx]
		}
		out = append(out, p)
	}
	return out
}

// materialize decodes the whole table into an in-memory Table — the
// correctness fallback for queries the compressed kernels decline (NaN
// Min/Max, divergent equality probes). It costs full decode + row
// memory and is expected to be rare.
func (st *SegTable) materialize() *Table {
	out := NewTable(st.schema)
	rows := make([]value.Tuple, 0, st.NumRows())
	width := len(st.schema)
	for _, seg := range st.segs {
		n := seg.NumRows()
		slab := make(value.Tuple, 0, n*width)
		for r := 0; r < n; r++ {
			slab = seg.AppendRowAt(r, slab)
			rows = append(rows, slab[len(slab)-width:len(slab):len(slab)])
		}
	}
	rows = append(rows, st.tail.Rows()...)
	out.rows = rows
	return out
}

// GroupBy evaluates the grouped aggregation over all segments and the
// tail via the compressed kernels; output is byte-identical to Table
// GroupBy over the same rows (group order, key values, aggregate
// results, float summation order).
func (st *SegTable) GroupBy(groupCols []string, aggs []AggSpec) (*Table, error) {
	gIdx, aCols, sch, err := st.groupPlan(groupCols, aggs)
	if err != nil {
		return nil, err
	}
	parts := st.parts(gIdx, aCols)
	for _, p := range parts {
		for i, ac := range aCols {
			if aggDeclinesCompressed(ac.spec.Func, p.aggs[i]) {
				return st.materialize().GroupBy(groupCols, aggs)
			}
		}
	}
	return groupByCompressedPartsPool(st.queryPool(), parts, len(gIdx), aCols, sch), nil
}

// groupPlan mirrors Table.groupPlan over the SegTable's schema.
func (st *SegTable) groupPlan(groupCols []string, aggs []AggSpec) ([]int, []aggCol, Schema, error) {
	gIdx, err := st.schema.Indices(groupCols)
	if err != nil {
		return nil, nil, nil, err
	}
	aCols := make([]aggCol, len(aggs))
	for i, a := range aggs {
		ac := aggCol{spec: a, idx: -1}
		if !a.IsStar() {
			ci := st.schema.Index(a.Arg)
			if ci < 0 {
				return nil, nil, nil, fmt.Errorf("engine: unknown aggregate argument %q", a.Arg)
			}
			ac.idx = ci
		} else if a.Func != Count {
			return nil, nil, nil, fmt.Errorf("engine: %s requires an argument", a.Func)
		}
		aCols[i] = ac
	}
	sch := make(Schema, 0, len(gIdx)+len(aggs))
	for _, ci := range gIdx {
		sch = append(sch, st.schema[ci])
	}
	for _, a := range aggs {
		sch = append(sch, Column{Name: a.String(), Kind: value.Null})
	}
	return gIdx, aCols, sch, nil
}

// SelectEq returns the rows whose values in cols equal vals, in row
// order, materialized into an in-memory Table.
func (st *SegTable) SelectEq(cols []string, vals value.Tuple) (*Table, error) {
	idx, err := st.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(cols) {
		return nil, fmt.Errorf("engine: SelectEq got %d values for %d columns", len(vals), len(cols))
	}
	if len(idx) == 0 || st.NumRows() == 0 {
		return st.materialize().SelectEq(cols, vals)
	}
	parts := st.parts(idx, nil)
	want, divergent := selectEqPlanParts(parts, vals)
	if divergent {
		return st.materialize().SelectEq(cols, vals)
	}
	// Each part's matches are independent: sealed segments answer from
	// their code-span indexes (selectEqSpans) and materialize matching
	// rows into private slabs; the mutable tail falls back to the merged
	// run scan. Parts fan across the pool and concatenate in part order,
	// so the output row order is the global row order either way.
	out := NewTable(st.schema)
	width := len(st.schema)
	partRows := make([][]value.Tuple, len(parts))
	_ = st.queryPool().ForEach("engine:selecteq", len(parts), func(pi int) error {
		if want[pi] == nil {
			return nil
		}
		p := parts[pi]
		var matched []value.Tuple
		var emit func(lo, hi int32)
		if pi < len(st.segs) {
			seg := st.segs[pi]
			emit = func(lo, hi int32) {
				slab := make(value.Tuple, 0, int(hi-lo)*width)
				for r := lo; r < hi; r++ {
					slab = seg.AppendRowAt(int(r), slab)
					matched = append(matched, slab[len(slab)-width:len(slab):len(slab)])
				}
			}
		} else {
			rows := st.tail.Rows()
			emit = func(lo, hi int32) {
				matched = append(matched, rows[lo:hi]...)
			}
		}
		if !selectEqSpans(p, want[pi], emit) {
			selectEqRuns(p, want[pi], emit)
		}
		partRows[pi] = matched
		return nil
	})
	for _, rs := range partRows {
		out.rows = append(out.rows, rs...)
	}
	return out, nil
}

// CountDistinct counts distinct combinations of the named columns under
// AppendKey equality. A single column unions the part dictionaries
// (O(distinct values), no row walk); multi-column sets walk merged runs.
func (st *SegTable) CountDistinct(cols []string) (int, error) {
	idx, err := st.schema.Indices(cols)
	if err != nil {
		return 0, err
	}
	if len(idx) == 0 || st.NumRows() == 0 {
		return st.materialize().CountDistinct(cols)
	}
	if len(idx) == 1 {
		parts := st.parts(idx, nil)
		if len(parts) == 1 {
			return len(parts[0].keys[0].dict), nil
		}
		seen := make(map[string]struct{})
		var buf []byte
		for _, p := range parts {
			for _, v := range p.keys[0].dict {
				buf = v.AppendKey(buf[:0])
				seen[string(buf)] = struct{}{}
			}
		}
		return len(seen), nil
	}
	return countGroupsParts(st.parts(idx, nil), len(idx)), nil
}

// DistinctProject returns the distinct combinations of the named
// columns in first-appearance order.
func (st *SegTable) DistinctProject(cols []string) (*Table, error) {
	idx, err := st.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	sch := make(Schema, len(idx))
	for i, ci := range idx {
		sch[i] = st.schema[ci]
	}
	out := NewTable(sch)
	if len(idx) == 0 || st.NumRows() == 0 {
		return st.materialize().DistinctProject(cols)
	}
	parts := st.parts(idx, nil)
	firsts := distinctParts(parts, len(idx))
	out.rows = make([]value.Tuple, len(firsts))
	width := len(idx)
	slab := make([]value.V, len(firsts)*width)
	for g, fr := range firsts {
		row := slab[g*width : (g+1)*width : (g+1)*width]
		p := parts[fr.part]
		for k := 0; k < width; k++ {
			row[k] = p.val(int(fr.row), k)
		}
		out.rows[g] = row
	}
	return out, nil
}

// Cube evaluates the aggregation for every subset of cols within the
// size bounds, exactly like Table.Cube, with each grouping served by
// the compressed GroupBy.
func (st *SegTable) Cube(cols []string, minSize, maxSize int, aggs []AggSpec) (*Table, error) {
	return cubeOver(st, false, cols, minSize, maxSize, aggs)
}
