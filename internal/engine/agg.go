package engine

import (
	"bytes"
	"fmt"
	"hash/maphash"
	"strings"

	"cape/internal/value"
)

// hashSeed keys the group-by hash chains; one process-wide seed keeps
// hashes comparable across calls without exposing them anywhere.
var hashSeed = maphash.MakeSeed()

// AggFunc enumerates the aggregate functions the engine evaluates.
type AggFunc uint8

const (
	// Count counts rows (count(*)) or non-null values of an argument.
	Count AggFunc = iota
	// Sum adds numeric values.
	Sum
	// Avg averages numeric values.
	Avg
	// Min takes the minimum under value.Compare order.
	Min
	// Max takes the maximum under value.Compare order.
	Max
)

// String returns the lowercase SQL-ish name.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// ParseAggFunc converts a name back to an AggFunc.
func ParseAggFunc(s string) (AggFunc, error) {
	switch strings.ToLower(s) {
	case "count":
		return Count, nil
	case "sum":
		return Sum, nil
	case "avg":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	}
	return 0, fmt.Errorf("engine: unknown aggregate %q", s)
}

// AggSpec is one aggregate expression, e.g. count(*) or sum(amount).
// Arg "*" (or "") with Count counts rows.
type AggSpec struct {
	Func AggFunc
	Arg  string
}

// ParseAggSpec parses a rendered aggregate expression of the form
// "func(arg)" — the inverse of AggSpec.String. An empty string parses
// to count(*); non-count aggregates require a non-star argument.
func ParseAggSpec(s string) (AggSpec, error) {
	if s == "" || s == "count(*)" {
		return AggSpec{Func: Count}, nil
	}
	i := strings.IndexByte(s, '(')
	if i <= 0 || s[len(s)-1] != ')' {
		return AggSpec{}, fmt.Errorf("engine: aggregate %q must look like func(arg)", s)
	}
	f, err := ParseAggFunc(s[:i])
	if err != nil {
		return AggSpec{}, err
	}
	a := AggSpec{Func: f, Arg: s[i+1 : len(s)-1]}
	if a.IsStar() && f != Count {
		return AggSpec{}, fmt.Errorf("engine: %s requires an argument", f)
	}
	return a, nil
}

// String renders "func(arg)" — the output column name used by GroupBy.
func (a AggSpec) String() string {
	arg := a.Arg
	if arg == "" {
		arg = "*"
	}
	return a.Func.String() + "(" + arg + ")"
}

// IsStar reports whether the aggregate is count(*) style (no argument).
func (a AggSpec) IsStar() bool { return a.Arg == "" || a.Arg == "*" }

// aggState accumulates one aggregate over one group.
type aggState struct {
	count    int64
	sumF     float64
	sumI     int64
	anyFloat bool
	minV     value.V
	maxV     value.V
	seen     bool
}

func (s *aggState) add(v value.V, f AggFunc, star bool) {
	switch f {
	case Count:
		if star || !v.IsNull() {
			s.count++
		}
	case Sum, Avg:
		switch v.Kind() {
		case value.Int:
			s.sumI += v.Int()
			s.sumF += float64(v.Int())
			s.count++
		case value.Float:
			s.sumF += v.Float()
			s.anyFloat = true
			s.count++
		}
	case Min:
		if v.IsNull() {
			return
		}
		if !s.seen || value.Compare(v, s.minV) < 0 {
			s.minV = v
		}
		s.seen = true
	case Max:
		if v.IsNull() {
			return
		}
		if !s.seen || value.Compare(v, s.maxV) > 0 {
			s.maxV = v
		}
		s.seen = true
	}
}

func (s *aggState) result(f AggFunc) value.V {
	switch f {
	case Count:
		return value.NewInt(s.count)
	case Sum:
		if s.count == 0 {
			return value.NewNull()
		}
		if s.anyFloat {
			return value.NewFloat(s.sumF)
		}
		return value.NewInt(s.sumI)
	case Avg:
		if s.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat(s.sumF / float64(s.count))
	case Min:
		if !s.seen {
			return value.NewNull()
		}
		return s.minV
	case Max:
		if !s.seen {
			return value.NewNull()
		}
		return s.maxV
	default:
		return value.NewNull()
	}
}

// AggAccum is the exported face of one aggregate accumulator: the exact
// fold GroupBy runs per group, resumable across appends. Feeding it the
// argument values of a group's rows in row order and calling Result
// yields a value bitwise identical to GroupBy over those rows — the
// float sum is accumulated in the same order, the Int-vs-Float result
// kind follows the same anyFloat rule — which is what lets incremental
// pattern maintenance extend retained group aggregates instead of
// recomputing them (appended rows always land at the table tail, so the
// fold order of old rows never changes).
type AggAccum struct {
	spec AggSpec
	st   aggState
}

// NewAggAccum returns an empty accumulator for the given aggregate.
func NewAggAccum(spec AggSpec) AggAccum {
	return AggAccum{spec: spec}
}

// Add folds one row's argument value. For count(*) pass any value
// (including NULL); it is counted regardless.
func (a *AggAccum) Add(v value.V) {
	a.st.add(v, a.spec.Func, a.spec.IsStar())
}

// Result returns the aggregate over everything folded so far.
func (a *AggAccum) Result() value.V {
	return a.st.result(a.spec.Func)
}

// aggCol is one planned aggregate: the spec plus the resolved column
// index of its argument (-1 for count(*)).
type aggCol struct {
	spec AggSpec
	idx  int
}

// groupPlan resolves group columns, aggregate arguments and the output
// schema shared by both GroupBy implementations.
func (t *Table) groupPlan(groupCols []string, aggs []AggSpec) (gIdx []int, aCols []aggCol, sch Schema, err error) {
	gIdx, err = t.schema.Indices(groupCols)
	if err != nil {
		return nil, nil, nil, err
	}
	aCols = make([]aggCol, len(aggs))
	for i, a := range aggs {
		ac := aggCol{spec: a, idx: -1}
		if !a.IsStar() {
			ci := t.schema.Index(a.Arg)
			if ci < 0 {
				return nil, nil, nil, fmt.Errorf("engine: unknown aggregate argument %q", a.Arg)
			}
			ac.idx = ci
		} else if a.Func != Count {
			return nil, nil, nil, fmt.Errorf("engine: %s requires an argument", a.Func)
		}
		aCols[i] = ac
	}
	sch = make(Schema, 0, len(gIdx)+len(aggs))
	for _, ci := range gIdx {
		sch = append(sch, t.schema[ci])
	}
	for _, a := range aggs {
		kind := value.Null // result kind varies (Int/Float/arg kind)
		sch = append(sch, Column{Name: a.String(), Kind: kind})
	}
	return gIdx, aCols, sch, nil
}

// GroupBy evaluates SELECT groupCols, aggs... FROM t GROUP BY groupCols.
// The output schema is the group columns followed by one column per
// aggregate, named by AggSpec.String(). Groups appear in first-appearance
// order. groupCols may be empty, producing a single global group.
//
// Grouped queries route through the columnar kernel (dictionary codes +
// flat aggregation loops); the global group and ForceRowPath tables use
// the row-oriented reference, which stays byte-identical — same group
// order, key values, aggregate results and float summation order.
func (t *Table) GroupBy(groupCols []string, aggs []AggSpec) (*Table, error) {
	gIdx, aCols, sch, err := t.groupPlan(groupCols, aggs)
	if err != nil {
		return nil, err
	}
	if !t.rowOnly && len(gIdx) > 0 && len(t.rows) > 0 {
		if out := t.groupByCompressed(gIdx, aCols, sch); out != nil {
			return out, nil
		}
		return t.groupByColumnar(gIdx, aCols, sch), nil
	}
	return t.groupByRows(gIdx, aCols, sch), nil
}

// groupByColumnar is the vectorized GroupBy: rows get dense group ids
// from their dictionary codes (groupCodes), then each aggregate runs as
// one tight pass over a flat column buffer — no per-row key encoding,
// hashing of byte strings, or boxed dispatch.
func (t *Table) groupByColumnar(gIdx []int, aCols []aggCol, sch Schema) *Table {
	c := t.Columns()
	n := len(t.rows)
	keyCols := make([]*Col, len(gIdx))
	for i, ci := range gIdx {
		keyCols[i] = c.Col(ci)
	}
	gidx, first := groupCodes(keyCols, n)
	nG := len(first)
	nK, nA := len(gIdx), len(aCols)

	states := make([]aggState, nG*nA)
	for ai, ac := range aCols {
		st := states[ai*nG : (ai+1)*nG]
		if ac.idx < 0 { // count(*)
			for r := 0; r < n; r++ {
				st[gidx[r]].count++
			}
			continue
		}
		col := c.FlatCol(ac.idx)
		switch ac.spec.Func {
		case Count:
			if col.nullCount == 0 {
				for r := 0; r < n; r++ {
					st[gidx[r]].count++
				}
				break
			}
			kinds := col.Kinds
			for r := 0; r < n; r++ {
				if kinds[r] != value.Null {
					st[gidx[r]].count++
				}
			}
		case Sum, Avg:
			kinds, f64, i64 := col.Kinds, col.F64, col.I64
			for r := 0; r < n; r++ {
				switch kinds[r] {
				case value.Int:
					s := &st[gidx[r]]
					s.sumI += i64[r]
					s.sumF += f64[r]
					s.count++
				case value.Float:
					s := &st[gidx[r]]
					s.sumF += f64[r]
					s.anyFloat = true
					s.count++
				}
			}
		case Min:
			// Boxed value.Compare keeps the reference tie semantics
			// exactly (first-encountered minimum wins), including for
			// NaN; nulls skip via the kind vector.
			kinds, rows, ci := col.Kinds, t.rows, ac.idx
			for r := 0; r < n; r++ {
				if kinds[r] == value.Null {
					continue
				}
				s := &st[gidx[r]]
				v := rows[r][ci]
				if !s.seen || value.Compare(v, s.minV) < 0 {
					s.minV = v
				}
				s.seen = true
			}
		case Max:
			kinds, rows, ci := col.Kinds, t.rows, ac.idx
			for r := 0; r < n; r++ {
				if kinds[r] == value.Null {
					continue
				}
				s := &st[gidx[r]]
				v := rows[r][ci]
				if !s.seen || value.Compare(v, s.maxV) > 0 {
					s.maxV = v
				}
				s.seen = true
			}
		}
	}

	out := NewTable(sch)
	out.rowOnly = t.rowOnly
	out.rows = make([]value.Tuple, nG)
	width := len(sch)
	slab := make([]value.V, nG*width)
	rows := t.rows
	for g := 0; g < nG; g++ {
		row := slab[g*width : (g+1)*width : (g+1)*width]
		src := rows[first[g]]
		for i, ci := range gIdx {
			row[i] = src[ci]
		}
		for ai := range aCols {
			row[nK+ai] = states[ai*nG+g].result(aCols[ai].spec.Func)
		}
		out.rows[g] = row
	}
	return out
}

// groupByRows is the row-oriented reference GroupBy, retained for the
// global group, ForceRowPath, and as the semantics oracle the columnar
// kernel is pinned against by differential tests.
func (t *Table) groupByRows(gIdx []int, aCols []aggCol, sch Schema) *Table {
	// Hash aggregation. Groups live in one growing slice preserving
	// first-appearance order; their keys, key bytes, and aggregate states
	// are carved out of chunked arenas. Group lookup goes through an
	// open-addressed table of group indices keyed by a 64-bit hash of the
	// encoded key, disambiguated by comparing the arena-stored key bytes
	// — so a new group costs only amortized bump allocations (no
	// per-group map-key string), and the per-row hot loop allocates
	// nothing at all.
	type group struct {
		key      value.Tuple
		keyBytes []byte
		states   []aggState
		hash     uint64
	}
	nK, nA := len(gIdx), len(aCols)
	tabSize := 64
	tab := make([]int32, tabSize)
	for i := range tab {
		tab[i] = -1
	}
	mask := uint64(tabSize - 1)
	var groups []group
	var stateArena []aggState // groups keep slices into retired chunks
	var keyArena []value.V
	var byteArena []byte
	var keyBuf []byte
	for _, r := range t.rows {
		keyBuf = keyBuf[:0]
		for _, ci := range gIdx {
			keyBuf = r[ci].AppendKey(keyBuf)
		}
		h := maphash.Bytes(hashSeed, keyBuf)
		gi := int32(-1)
		slot := h & mask
		for tab[slot] >= 0 {
			j := tab[slot]
			if groups[j].hash == h && bytes.Equal(groups[j].keyBytes, keyBuf) {
				gi = j
				break
			}
			slot = (slot + 1) & mask
		}
		if gi < 0 {
			if len(stateArena)+nA > cap(stateArena) {
				stateArena = make([]aggState, 0, arenaChunk(nA))
			}
			states := stateArena[len(stateArena) : len(stateArena)+nA : len(stateArena)+nA]
			stateArena = stateArena[:len(stateArena)+nA]
			if len(keyArena)+nK > cap(keyArena) {
				keyArena = make([]value.V, 0, arenaChunk(nK))
			}
			key := keyArena[len(keyArena) : len(keyArena)+nK : len(keyArena)+nK]
			keyArena = keyArena[:len(keyArena)+nK]
			for i, ci := range gIdx {
				key[i] = r[ci]
			}
			if len(byteArena)+len(keyBuf) > cap(byteArena) {
				n := 4096
				if len(keyBuf) > n {
					n = len(keyBuf)
				}
				byteArena = make([]byte, 0, n)
			}
			kb := byteArena[len(byteArena) : len(byteArena)+len(keyBuf) : len(byteArena)+len(keyBuf)]
			byteArena = byteArena[:len(byteArena)+len(keyBuf)]
			copy(kb, keyBuf)
			gi = int32(len(groups))
			groups = append(groups, group{key: key, keyBytes: kb, states: states, hash: h})
			tab[slot] = gi
			// Keep the load factor under 1/2: rebuild the index from the
			// stored hashes when the group count reaches half the slots.
			if len(groups)*2 >= tabSize {
				tabSize *= 2
				mask = uint64(tabSize - 1)
				tab = make([]int32, tabSize)
				for i := range tab {
					tab[i] = -1
				}
				for j := range groups {
					s := groups[j].hash & mask
					for tab[s] >= 0 {
						s = (s + 1) & mask
					}
					tab[s] = int32(j)
				}
			}
		}
		st := groups[gi].states
		for i, ac := range aCols {
			var arg value.V
			if ac.idx >= 0 {
				arg = r[ac.idx]
			}
			st[i].add(arg, ac.spec.Func, ac.idx < 0)
		}
	}

	// Materialize all output rows into one slab; the capped subslices
	// keep a later append on any row from clobbering its neighbor.
	out := NewTable(sch)
	out.rowOnly = t.rowOnly
	out.rows = make([]value.Tuple, len(groups))
	width := len(sch)
	slab := make([]value.V, len(groups)*width)
	for gi := range groups {
		row := slab[gi*width : (gi+1)*width : (gi+1)*width]
		copy(row, groups[gi].key)
		for i, ac := range aCols {
			row[nK+i] = groups[gi].states[i].result(ac.spec.Func)
		}
		out.rows[gi] = row
	}
	return out
}

// arenaChunk sizes an arena chunk to hold many groups' worth of entries
// while never being smaller than one group's need.
func arenaChunk(n int) int {
	const target = 1024
	if n > target {
		return n
	}
	if n == 0 {
		return 0
	}
	return target - target%n // whole groups per chunk
}
