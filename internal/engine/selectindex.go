package engine

// Per-code row-span index over a CompressedCol: for every dictionary
// code, the half-open row ranges where it occurs, in row order, stored
// CSR-style (spanOff[c] .. spanOff[c+1] index (lo, hi) pairs in spans).
// SegTable.SelectEq probes it instead of walking every merged run of
// every segment per fragment — the walk that made NAIVE's per-candidate
// selections O(fragments × rows) over segments while the dense baseline
// answered them from hash indexes. The index is built lazily, once per
// column, only for the immutable RLE/PACK encodings; the mutable dense
// tail view keeps the plain run scan (an index built per query would
// cost more than the scan it replaces).

// spanIndex builds (once) and returns the CSR span index.
func (cc *CompressedCol) spanIndex() (off, spans []int32) {
	cc.spanOnce.Do(func() {
		d := len(cc.dict)
		o := make([]int32, d+1)
		nRuns := 0
		cc.forEachRun(func(code, lo, hi int32) {
			o[code+1]++
			nRuns++
		})
		for c := 0; c < d; c++ {
			o[c+1] += o[c]
		}
		sp := make([]int32, 2*nRuns)
		next := make([]int32, d)
		copy(next, o[:d])
		cc.forEachRun(func(code, lo, hi int32) {
			i := next[code]
			sp[2*i], sp[2*i+1] = lo, hi
			next[code]++
		})
		cc.spanOff, cc.spans = o, sp
	})
	return cc.spanOff, cc.spans
}

// codeSpans returns the (lo, hi) row-range pairs of code, in row order.
func (cc *CompressedCol) codeSpans(code int32) []int32 {
	off, spans := cc.spanIndex()
	return spans[2*off[code] : 2*off[code+1]]
}

// forEachRun walks the column's maximal equal-code runs in row order.
func (cc *CompressedCol) forEachRun(fn func(code, lo, hi int32)) {
	switch {
	case cc.runEnds != nil:
		lo := int32(0)
		for i, e := range cc.runEnds {
			fn(cc.runCodes[i], lo, e)
			lo = e
		}
	case cc.packed != nil:
		n := cc.n
		buf := make([]int32, decodeBlockLen)
		start, prev := int32(0), int32(-1)
		first := true
		for b := 0; b<<decodeBlockShift < n; b++ {
			blk := buf[:cc.blockLen(b)]
			cc.unpackBlock(b, blk)
			base := int32(b << decodeBlockShift)
			for i, c := range blk {
				if first {
					prev, first = c, false
					continue
				}
				if c != prev {
					fn(prev, start, base+int32(i))
					start, prev = base+int32(i), c
				}
			}
		}
		if !first {
			fn(prev, start, int32(n))
		}
	default:
		dense := cc.dense
		for i := 0; i < len(dense); {
			c := dense[i]
			j := i + 1
			for j < len(dense) && dense[j] == c {
				j++
			}
			fn(c, int32(i), int32(j))
			i = j
		}
	}
}

// selectEqSpans answers an equality probe over one part from the probed
// columns' span indexes, emitting matching row ranges in row order —
// the same rows (split at the same run boundaries) the merged-run scan
// selectEqRuns emits. Returns false when any probed column is the
// mutable dense tail view, where no index is kept.
func selectEqSpans(p *compPart, want []int32, emit func(lo, hi int32)) bool {
	lists := make([][]int32, len(want))
	for k, cc := range p.keys {
		if cc.dense != nil {
			return false
		}
		lists[k] = cc.codeSpans(want[k])
		if len(lists[k]) == 0 {
			return true // code occurs in no row
		}
	}
	intersectSpans(lists, emit)
	return true
}

// intersectSpans emits, in row order, the row ranges covered by every
// one of the span lists (each sorted by row and pairwise disjoint).
// Cursors only move forward and skips use binary search, so the cost
// tracks the sparsest list plus the emitted ranges — not the total span
// count of every probed code.
func intersectSpans(lists [][]int32, emit func(lo, hi int32)) {
	if len(lists) == 1 {
		l := lists[0]
		for i := 0; i+1 < len(l); i += 2 {
			emit(l[i], l[i+1])
		}
		return
	}
	idx := make([]int, len(lists))
	lo := int32(0)
	for {
		// Grow lo until every list's current span contains it; hi is the
		// nearest span end, so [lo, hi) lies inside all current spans.
		stable := false
		var hi int32
		for !stable {
			stable = true
			hi = int32(1<<31 - 1)
			for i, l := range lists {
				j := idx[i]
				if 2*j >= len(l) {
					return
				}
				if l[2*j+1] <= lo {
					// Skip spans ending at or before lo (binary search —
					// a linear walk here would re-introduce the full span
					// scan for high-run columns).
					a, b := j+1, len(l)/2
					for a < b {
						mid := (a + b) / 2
						if l[2*mid+1] <= lo {
							a = mid + 1
						} else {
							b = mid
						}
					}
					j = a
					idx[i] = j
					if 2*j >= len(l) {
						return
					}
				}
				if s := l[2*j]; s > lo {
					lo = s
					stable = false
				}
				if e := l[2*j+1]; e < hi {
					hi = e
				}
			}
		}
		emit(lo, hi)
		lo = hi
	}
}
