package engine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"cape/internal/value"
)

func TestReadCSVTypesAndNulls(t *testing.T) {
	in := "name,year,score\nalice,2004,1.5\nbob,,\n"
	tab, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	r0 := tab.Row(0)
	if r0[0].Kind() != value.String || r0[1].Kind() != value.Int || r0[2].Kind() != value.Float {
		t.Errorf("row 0 kinds = %v %v %v", r0[0].Kind(), r0[1].Kind(), r0[2].Kind())
	}
	r1 := tab.Row(1)
	if !r1[1].IsNull() || !r1[2].IsNull() {
		t.Errorf("empty fields should parse as NULL: %v", r1)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error (no header)")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := pubTable(t)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", back.NumRows(), tab.NumRows())
	}
	for i := range tab.Rows() {
		if !back.Row(i).Equal(tab.Row(i)) {
			t.Errorf("row %d: %v vs %v", i, back.Row(i), tab.Row(i))
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	tab := pubTable(t)
	path := filepath.Join(t.TempDir(), "pub.csv")
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Errorf("file round trip rows = %d", back.NumRows())
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}
