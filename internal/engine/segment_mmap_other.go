//go:build !unix

package engine

import "os"

// mapFile reads path into memory on platforms without mmap support; the
// segment reader is agnostic to whether its bytes are mapped or heap.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
