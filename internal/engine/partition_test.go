package engine

import (
	"testing"

	"cape/internal/value"
)

func TestPartitionerValidate(t *testing.T) {
	cases := []struct {
		p  Partitioner
		ok bool
	}{
		{Partitioner{Key: []string{"a"}, N: 1}, true},
		{Partitioner{Key: []string{"a", "b"}, N: 8}, true},
		{Partitioner{Key: nil, N: 2}, false},
		{Partitioner{Key: []string{"a", "a"}, N: 2}, false},
		{Partitioner{Key: []string{"a"}, N: 0}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

// TestPartitionerStable pins the hash mapping: routing decisions must
// not drift across releases, or a coordinator restart would send
// appends to shards that do not own the existing rows.
func TestPartitionerStable(t *testing.T) {
	p := Partitioner{Key: []string{"k"}, N: 4}
	want := map[string]int{"alice": 3, "bob": 2, "carol": 2, "dave": 0, "erin": 2}
	for k, shard := range want {
		if got := p.ShardOf(value.Tuple{value.NewString(k)}); got != shard {
			t.Errorf("ShardOf(%q) = %d, want %d", k, got, shard)
		}
	}
}

// TestPartitionerNumericEquivalence: Int and integral Float values of
// equal magnitude must route identically, because the engine groups
// them together.
func TestPartitionerNumericEquivalence(t *testing.T) {
	p := Partitioner{Key: []string{"k"}, N: 7}
	for i := int64(-5); i < 40; i++ {
		a := p.ShardOf(value.Tuple{value.NewInt(i)})
		b := p.ShardOf(value.Tuple{value.NewFloat(float64(i))})
		if a != b {
			t.Fatalf("Int(%d) routes to %d but Float(%d) routes to %d", i, a, i, b)
		}
	}
}

func TestPartitionTable(t *testing.T) {
	sch := Schema{{Name: "k", Kind: value.String}, {Name: "x", Kind: value.Int}}
	tab := NewTable(sch)
	const rows = 500
	for i := 0; i < rows; i++ {
		key := value.NewString(string(rune('a' + i%17)))
		if err := tab.Append(value.Tuple{key, value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{1, 2, 3, 5, 8} {
		p := Partitioner{Key: []string{"k"}, N: n}
		parts, err := p.PartitionTable(tab)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != n {
			t.Fatalf("N=%d: got %d parts", n, len(parts))
		}
		total := 0
		lastX := make([]int64, n) // per-shard input order must be preserved
		for si, part := range parts {
			total += part.NumRows()
			lastX[si] = -1
			for _, row := range part.Rows() {
				if got := p.ShardOf(row[:1]); got != si {
					t.Fatalf("N=%d: row %v landed on shard %d, ShardOf says %d", n, row, si, got)
				}
				x, _ := row[1].AsFloat()
				if int64(x) <= lastX[si] {
					t.Fatalf("N=%d shard %d: row order not preserved (%d after %d)", n, si, int64(x), lastX[si])
				}
				lastX[si] = int64(x)
			}
		}
		if total != rows {
			t.Fatalf("N=%d: partitions hold %d rows, want %d", n, total, rows)
		}
	}
}

// TestPartitionRowsMatchesTable: the row-level router used by append
// fan-out must agree with the bootstrap table partitioner.
func TestPartitionRowsMatchesTable(t *testing.T) {
	sch := Schema{{Name: "a", Kind: value.Int}, {Name: "k", Kind: value.String}}
	tab := NewTable(sch)
	var rows []value.Tuple
	for i := 0; i < 100; i++ {
		row := value.Tuple{value.NewInt(int64(i)), value.NewString(string(rune('A' + i%9)))}
		rows = append(rows, row)
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	p := Partitioner{Key: []string{"k"}, N: 3}
	keyIdx, err := p.KeyIndices(sch)
	if err != nil {
		t.Fatal(err)
	}
	byRows := p.PartitionRows(rows, keyIdx)
	byTable, err := p.PartitionTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < p.N; s++ {
		if len(byRows[s]) != byTable[s].NumRows() {
			t.Fatalf("shard %d: PartitionRows has %d rows, PartitionTable %d", s, len(byRows[s]), byTable[s].NumRows())
		}
		for i, row := range byRows[s] {
			if !row.Equal(byTable[s].Rows()[i]) {
				t.Fatalf("shard %d row %d differs", s, i)
			}
		}
	}
}
