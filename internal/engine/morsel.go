package engine

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"cape/internal/value"
)

// Morsel-driven execution: the compressed kernels split their input
// parts into independent row ranges ("morsels" — each sealed segment
// plus the append tail, large segments further split on RLE-run
// boundaries of the leading key column), scan each morsel into a
// private partial state on a worker of a shared bounded pool, and fold
// the partials back in fixed segment order. The fold-order discipline
// keeps the output byte-identical to the sequential kernel at any
// worker count:
//
//   - Group ids: morsels are folded in global row order and each
//     morsel's local groups are visited in local first-appearance
//     order, so global ids are assigned exactly in global
//     first-appearance order — identical to one sequential scan.
//     Cross-morsel identity goes through the same canonical AppendKey
//     bytes the sequential kernel hashes.
//   - Aggregates: only exactly-mergeable states are ever merged —
//     integer count/sum adds are associative, and the Min/Max merge
//     re-applies the strict-Compare first-encountered-wins rule, which
//     picks the same winner as the sequential fold (ties keep the
//     earlier morsel's value, i.e. the earlier row's). Aggregates whose
//     result depends on float summation order (Avg, and Sum over a
//     column with float values) make the whole query fall back to the
//     sequential kernel — see morselMergeable.

// Pool is a bounded worker pool shared by every layer of one mining or
// explanation run: miners fan attribute sets across it and the engine's
// morsel kernels fan row ranges across the same pool, so composing the
// two levels never oversubscribes the configured width. The zero of
// *Pool (nil) runs everything inline.
//
// ForEach uses caller-runs semantics: the calling goroutine always
// participates, and up to workers−1 extra goroutines join only while
// pool tokens are free. A nested ForEach from inside a worker therefore
// never blocks waiting for capacity — it simply runs inline when the
// pool is saturated — so the composition is deadlock-free by
// construction.
type Pool struct {
	workers int
	sem     chan struct{} // one token per extra goroutine beyond the caller
}

// NewPool creates a pool of the given width; widths below 2 yield a
// pool that runs everything inline on the caller.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers-1)}
}

// Workers reports the configured width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for i in [0, n), fanning across the pool, and
// returns the first error. It fails fast: after an error no new item is
// claimed. Worker goroutines run under a pprof label ("cape_pool" →
// label) so profiles attribute time to the stage that spawned them.
func (p *Pool) ForEach(label string, n int, fn func(i int) error) error {
	if p == nil || p.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var mu sync.Mutex
	var firstErr error
	run := func() {
		for !failed.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				failed.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
	extra := p.workers - 1
	if extra > n-1 {
		extra = n - 1
	}
	labels := pprof.Labels("cape_pool", label)
acquire:
	for j := 0; j < extra; j++ {
		select {
		case p.sem <- struct{}{}:
		default:
			break acquire // saturated: caller + existing workers cover the queue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-p.sem }()
			pprof.Do(context.Background(), labels, func(context.Context) { run() })
		}()
	}
	run()
	wg.Wait()
	return firstErr
}

// PoolSettable is implemented by relations whose query kernels can fan
// work across a shared pool (Table, SegTable). Miners attach their
// run's pool so per-attribute-set and per-morsel parallelism draw from
// one budget.
type PoolSettable interface {
	SetPool(*Pool)
}

// pooledRelation lets generic operators (cubeOver) discover the pool a
// relation carries without widening the Relation interface.
type pooledRelation interface{ queryPool() *Pool }

// morsel is one independently scannable row range of one part.
type morsel struct {
	part   int32
	lo, hi int32
}

// morselTargetRows is the row count one morsel aims for. A variable so
// the property tests can shrink it and force many morsels over small
// inputs.
var morselTargetRows = int32(64 * 1024)

// splitMorsels cuts parts into morsels of roughly target rows each, in
// global row order. Split points snap to the end of the enclosing run
// of the leading key column when it is RLE-encoded, so huge runs are
// never cut (a cut would be harmless for the fold but would make the
// morsel boundaries encoding-dependent for no gain); parts smaller than
// two targets stay whole.
func splitMorsels(parts []*compPart, target int32) []morsel {
	var out []morsel
	for pi, p := range parts {
		n := int32(p.n)
		if n == 0 {
			continue
		}
		if n < 2*target || len(p.keys) == 0 {
			out = append(out, morsel{part: int32(pi), lo: 0, hi: n})
			continue
		}
		key0 := p.keys[0]
		lo := int32(0)
		for lo < n {
			hi := lo + target
			if hi >= n || n-hi < target/2 {
				hi = n
			} else if ends := key0.runEnds; ends != nil {
				a, b := 0, len(ends)
				for a < b {
					mid := (a + b) / 2
					if ends[mid] <= hi {
						a = mid + 1
					} else {
						b = mid
					}
				}
				hi = ends[a]
				if hi >= n {
					hi = n
				}
			}
			out = append(out, morsel{part: int32(pi), lo: lo, hi: hi})
			lo = hi
		}
	}
	return out
}

// morselMergeable reports whether every aggregate's per-morsel partial
// states merge bit-exactly: Count always (associative integer adds),
// Min/Max always (the strict-Compare first-wins merge reproduces the
// sequential winner; NaN columns were already declined upstream), and
// Sum only when no part's argument column contains a float — the
// result is then the associative integer sumI, and the order-sensitive
// float mirror sum is never read. Avg, and Sum with float
// contributions, depend on float summation order, so those queries stay
// on the sequential kernel.
func morselMergeable(parts []*compPart, aCols []aggCol) bool {
	for ai, ac := range aCols {
		switch ac.spec.Func {
		case Avg:
			return false
		case Sum:
			for _, p := range parts {
				if cc := p.aggs[ai]; cc != nil && cc.hasFloat {
					return false
				}
			}
		}
	}
	return true
}

// mergeAggState folds a later morsel's partial state for one group into
// an earlier morsel's (or the global) state. Only called for aggregates
// morselMergeable admits; sumF/anyFloat are never populated there.
func mergeAggState(dst, src *aggState, f AggFunc) {
	switch f {
	case Count:
		dst.count += src.count
	case Sum:
		dst.count += src.count
		dst.sumI += src.sumI
	case Min:
		if !src.seen {
			return
		}
		if !dst.seen || value.Compare(src.minV, dst.minV) < 0 {
			dst.minV = src.minV
		}
		dst.seen = true
	case Max:
		if !src.seen {
			return
		}
		if !dst.seen || value.Compare(src.maxV, dst.maxV) > 0 {
			dst.maxV = src.maxV
		}
		dst.seen = true
	}
}

// growStates extends an aggState slice to need elements (zero-valued),
// doubling capacity so per-group growth amortizes instead of allocating
// a fresh temp slice per new group.
func growStates(states []aggState, need int) []aggState {
	if need <= cap(states) {
		// The region between len and cap was zeroed at allocation and
		// never written (growth is the only way len advances).
		return states[:need]
	}
	grown := make([]aggState, need, 2*need)
	copy(grown, states)
	return grown
}

// morselGroupBound is an upper bound on the number of distinct groups:
// per part, the key columns' dictionary cross product, capped at the
// part's rows.
func morselGroupBound(parts []*compPart) int64 {
	var bound int64
	for _, p := range parts {
		prod := int64(1)
		for _, kc := range p.keys {
			d := int64(len(kc.dict))
			if d == 0 {
				d = 1
			}
			prod *= d
			if prod >= int64(p.n) {
				prod = int64(p.n)
				break
			}
		}
		bound += prod
	}
	return bound
}

// groupByCompressedPartsPool evaluates GroupBy over parts, fanning
// morsels across the pool when the query's aggregates merge exactly
// and the grouping is low-cardinality; otherwise (or for small inputs
// and width-1 pools) it runs the sequential kernel. Output is
// byte-identical either way.
//
// The cardinality gate matters as much as the mergeability one: when
// groups ≈ rows, each morsel's private group table approaches the
// global one and the serial canonical-key merge costs more than the
// parallel scans save — group-bys like that run *slower* morselized at
// every worker count, so they stay sequential.
func groupByCompressedPartsPool(pool *Pool, parts []*compPart, nK int, aCols []aggCol, sch Schema) *Table {
	if pool.Workers() > 1 && nK > 0 && morselMergeable(parts, aCols) {
		var rows int64
		for _, p := range parts {
			rows += int64(p.n)
		}
		if morselGroupBound(parts)*8 <= rows {
			morsels := splitMorsels(parts, morselTargetRows)
			if len(morsels) > 1 {
				return groupByMorsels(pool, morsels, parts, nK, aCols, sch)
			}
		}
	}
	return groupByCompressedParts(parts, nK, aCols, sch)
}

// groupByMorsels scans every morsel into a private partial group table
// on the pool, then folds the partials in morsel (= global row) order.
func groupByMorsels(pool *Pool, morsels []morsel, parts []*compPart,
	nK int, aCols []aggCol, sch Schema) *Table {

	sumNeedsF := sumNeedsFFor(parts, aCols)
	nA := len(aCols)
	countOnly := countOnlyAggs(aCols)
	dims := globalKeyDims(parts, nK)
	partials := make([]*gbScan, len(morsels))
	// fn never fails; the error return exists for ForEach's signature.
	_ = pool.ForEach("engine:groupby", len(morsels), func(i int) error {
		sc := newGbScan(nK, nA, true)
		m := morsels[i]
		sc.countOnly = countOnly
		sc.flatDims = dims
		sc.flatBudget = int(m.hi - m.lo)
		sc.scanRange(parts[m.part], m.part, m.lo, m.hi, aCols, sumNeedsF)
		partials[i] = sc
		return nil
	})

	global := make(map[string]int32)
	var firsts []partRef
	var states []aggState
	var counts []int64
	for _, sc := range partials {
		for li, key := range sc.ga.keys {
			g, ok := global[string(key)]
			if !ok {
				g = int32(len(firsts))
				global[string(key)] = g
				firsts = append(firsts, sc.ga.firsts[li])
				if countOnly {
					counts = growI64(counts, len(counts)+1)
				} else {
					states = growStates(states, len(states)+nA)
				}
			}
			if countOnly {
				if li < len(sc.counts) {
					counts[g] += sc.counts[li]
				}
				continue
			}
			for ai := 0; ai < nA; ai++ {
				mergeAggState(&states[int(g)*nA+ai], &sc.states[li*nA+ai], aCols[ai].spec.Func)
			}
		}
	}
	if countOnly {
		states = countStates(counts, len(firsts), nA)
	}
	return materializeGroups(parts, firsts, states, nK, aCols, sch)
}
