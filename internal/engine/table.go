package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cape/internal/value"
)

// Table is an in-memory relation. Rows are the primary storage and the
// compatibility API (Row, Rows, value.Tuple); a columnar view with
// dictionary-encoded columns materializes lazily on top of them (see
// Columnar) and feeds the vectorized operator kernels. The table is not
// safe for concurrent mutation; concurrent reads are fine.
type Table struct {
	schema Schema
	rows   []value.Tuple
	// epoch counts mutations (Append, AppendRows, SortBy). Consumers that
	// cache anything derived from the table — explanation caches, mined
	// pattern sets, persisted stores — record the epoch they saw and
	// compare it later to detect staleness instead of guessing.
	epoch uint64
	// indexes holds hash indexes built with BuildIndex; extended in place
	// by appends, invalidated by reordering mutations.
	indexes map[string]*tableIndex
	// cols caches the columnar view; extended in place by appends,
	// invalidated by reordering mutations. colsMu serializes its creation.
	cols   atomic.Pointer[Columnar]
	colsMu sync.Mutex
	// rowOnly forces the row-oriented reference paths (ForceRowPath).
	rowOnly bool
	// pool, when set, lets the compressed kernels fan morsels across a
	// shared worker pool (SetPool). Stored atomically so queries running
	// on pool workers can read it without racing a SetPool.
	pool atomic.Pointer[Pool]
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) *Table {
	return &Table{schema: schema.Clone()}
}

// Schema returns the table's schema (callers must not mutate it).
func (t *Table) Schema() Schema { return t.schema }

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i (callers must not mutate it).
func (t *Table) Row(i int) value.Tuple { return t.rows[i] }

// Rows returns the backing row slice (callers must not mutate it).
func (t *Table) Rows() []value.Tuple { return t.rows }

// Epoch returns the table's mutation counter. It starts at 0 and
// increments once per mutating call (Append, AppendRows, SortBy), so two
// reads returning the same epoch bracket a window with no mutations.
func (t *Table) Epoch() uint64 { return t.epoch }

// RestoreEpoch overwrites the mutation counter. It exists for recovery
// paths (internal/store) that rebuild a table from persisted state and
// must reproduce the exact epoch sequence the original table went
// through, so persisted pattern-store stamps keep comparing correctly
// against the rebuilt table. It must not be used to mask mutations.
func (t *Table) RestoreEpoch(e uint64) { t.epoch = e }

// SetPool attaches a worker pool for the compressed query kernels to
// fan morsels across (nil restores sequential execution). Results are
// byte-identical at any pool width; see morsel.go.
func (t *Table) SetPool(p *Pool) { t.pool.Store(p) }

func (t *Table) queryPool() *Pool { return t.pool.Load() }

// validateRow checks one row against the schema: matching arity, and each
// value matching the column kind unless the column is untyped or the
// value is NULL.
func (t *Table) validateRow(row value.Tuple) error {
	return t.schema.ValidateRow(row)
}

// Append adds a row. The arity must match the schema, and each value must
// match the column kind unless the column is untyped or the value is NULL.
// Hash indexes and the columnar view are extended in place for the new
// row, so an append costs O(indexed columns + encoded columns), not a
// rebuild.
func (t *Table) Append(row value.Tuple) error {
	if err := t.validateRow(row); err != nil {
		return err
	}
	oldLen := len(t.rows)
	t.rows = append(t.rows, row)
	t.extendDerived(oldLen)
	return nil
}

// AppendRows appends a batch of rows atomically: every row is validated
// before any is appended, so a bad row in the middle of a batch leaves
// the table untouched. Derived structures (hash indexes, the columnar
// view) are extended in place once for the whole batch, and the epoch
// advances by exactly one.
func (t *Table) AppendRows(rows []value.Tuple) error {
	for i, row := range rows {
		if err := t.validateRow(row); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	oldLen := len(t.rows)
	t.rows = append(t.rows, rows...)
	t.extendDerived(oldLen)
	return nil
}

// MustAppend is Append that panics on error; intended for tests and
// generators that construct rows programmatically.
func (t *Table) MustAppend(row value.Tuple) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the table (rows are cloned). The clone
// carries the source's epoch, so staleness checks against a snapshot
// taken before cloning still line up.
func (t *Table) Clone() *Table {
	out := NewTable(t.schema)
	out.rowOnly = t.rowOnly
	out.epoch = t.epoch
	out.rows = make([]value.Tuple, len(t.rows))
	for i, r := range t.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// Select returns the rows satisfying pred, sharing row storage with t.
func (t *Table) Select(pred func(value.Tuple) bool) *Table {
	out := NewTable(t.schema)
	out.rowOnly = t.rowOnly
	for _, r := range t.rows {
		if pred(r) {
			out.rows = append(out.rows, r)
		}
	}
	return out
}

// SelectEq returns the rows whose values in cols equal vals positionally.
// A hash index built via BuildIndex over exactly this column set answers
// the query in O(result); otherwise the columnar kernel scans dictionary
// codes, falling back to a row-at-a-time scan only in the rare cases
// where code equality and value.Equal diverge.
func (t *Table) SelectEq(cols []string, vals value.Tuple) (*Table, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(cols) {
		return nil, fmt.Errorf("engine: SelectEq got %d values for %d columns", len(vals), len(cols))
	}
	out := NewTable(t.schema)
	out.rowOnly = t.rowOnly
	if rows, ok := t.lookupIndex(cols, vals); ok {
		for _, ri := range rows {
			out.rows = append(out.rows, t.rows[ri])
		}
		return out, nil
	}
	if !t.rowOnly && len(idx) > 0 && len(t.rows) > 0 {
		if t.selectEqCompressed(out, idx, vals) {
			return out, nil
		}
		if done := t.selectEqColumnar(out, idx, vals); done {
			return out, nil
		}
	}
	for _, r := range t.rows {
		match := true
		for i, ci := range idx {
			if !value.Equal(r[ci], vals[i]) {
				match = false
				break
			}
		}
		if match {
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// selectEqColumnar appends matching rows to out by comparing dictionary
// codes. It reports false when the query must use the row-scan
// reference instead: dictionary codes are AppendKey equality classes,
// which coincide with value.Equal's Compare classes except when NaN is
// involved (NaN compares equal to every numeric) or a queried value sits
// at magnitude ≥ 2^53, where float rounding can make AppendKey-distinct
// integers Compare-equal.
func (t *Table) selectEqColumnar(out *Table, idx []int, vals value.Tuple) bool {
	c := t.Columns()
	want := make([]int32, 0, len(idx))
	codeCols := make([][]int32, 0, len(idx))
	miss := false
	for i, ci := range idx {
		v := vals[i]
		col := c.Col(ci)
		if eqDivergent(v, col.hasNaN) {
			return false
		}
		code, ok := col.CodeOf(v)
		if !ok {
			// Value absent from the dictionary: no row can match (the
			// divergent cases were excluded above). Keep checking the
			// remaining columns for fallback conditions before deciding.
			miss = true
			continue
		}
		want = append(want, code)
		codeCols = append(codeCols, col.Codes)
	}
	if miss {
		return true // empty result
	}
	n := len(t.rows)
	if len(codeCols) == 1 {
		codes, w := codeCols[0], want[0]
		for r := 0; r < n; r++ {
			if codes[r] == w {
				out.rows = append(out.rows, t.rows[r])
			}
		}
		return true
	}
	for r := 0; r < n; r++ {
		match := true
		for j, codes := range codeCols {
			if codes[r] != want[j] {
				match = false
				break
			}
		}
		if match {
			out.rows = append(out.rows, t.rows[r])
		}
	}
	return true
}

// Project returns a table with only the named columns, preserving
// duplicates and row order.
func (t *Table) Project(cols []string) (*Table, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	sch := make(Schema, len(idx))
	for i, ci := range idx {
		sch[i] = t.schema[ci]
	}
	out := NewTable(sch)
	out.rowOnly = t.rowOnly
	out.rows = make([]value.Tuple, len(t.rows))
	for ri, r := range t.rows {
		row := make(value.Tuple, len(idx))
		for i, ci := range idx {
			row[i] = r[ci]
		}
		out.rows[ri] = row
	}
	return out, nil
}

// DistinctProject returns the distinct combinations of the named columns,
// in first-appearance order.
func (t *Table) DistinctProject(cols []string) (*Table, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	sch := make(Schema, len(idx))
	for i, ci := range idx {
		sch[i] = t.schema[ci]
	}
	out := NewTable(sch)
	out.rowOnly = t.rowOnly
	if !t.rowOnly && len(idx) > 0 && len(t.rows) > 0 {
		c := t.Columns()
		keyCols := make([]*Col, len(idx))
		for i, ci := range idx {
			keyCols[i] = c.Col(ci)
		}
		_, first := groupCodes(keyCols, len(t.rows))
		out.rows = make([]value.Tuple, len(first))
		for g, fr := range first {
			r := t.rows[fr]
			row := make(value.Tuple, len(idx))
			for i, ci := range idx {
				row[i] = r[ci]
			}
			out.rows[g] = row
		}
		return out, nil
	}
	seen := make(map[string]struct{})
	var keyBuf []byte
	for _, r := range t.rows {
		keyBuf = keyBuf[:0]
		for _, ci := range idx {
			keyBuf = r[ci].AppendKey(keyBuf)
		}
		if _, dup := seen[string(keyBuf)]; dup {
			continue
		}
		seen[string(keyBuf)] = struct{}{}
		row := make(value.Tuple, len(idx))
		for i, ci := range idx {
			row[i] = r[ci]
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// CountDistinct counts the distinct combinations of the named columns.
// Distinctness is AppendKey equality — the same classes the dictionary
// codes identify — so the columnar path counts codes: O(1) per column
// already encoded, one grouping pass for multi-column sets.
func (t *Table) CountDistinct(cols []string) (int, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return 0, err
	}
	if !t.rowOnly && len(idx) > 0 && len(t.rows) > 0 {
		if cnt, ok := t.countDistinctCompressed(idx); ok {
			return cnt, nil
		}
		c := t.Columns()
		if len(idx) == 1 {
			return len(c.Col(idx[0]).Dict), nil
		}
		keyCols := make([]*Col, len(idx))
		for i, ci := range idx {
			keyCols[i] = c.Col(ci)
		}
		_, first := groupCodes(keyCols, len(t.rows))
		return len(first), nil
	}
	seen := make(map[string]struct{})
	var keyBuf []byte
	for _, r := range t.rows {
		keyBuf = keyBuf[:0]
		for _, ci := range idx {
			keyBuf = r[ci].AppendKey(keyBuf)
		}
		seen[string(keyBuf)] = struct{}{}
	}
	return len(seen), nil
}

// SortBy sorts the table in place by the given columns ascending (using
// value.Compare ordering). The sort is stable. Reordering rows
// invalidates derived caches (indexes and the columnar view), which
// store row positions.
func (t *Table) SortBy(cols []string) error {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return err
	}
	t.invalidateDerived()
	sort.SliceStable(t.rows, func(a, b int) bool {
		ra, rb := t.rows[a], t.rows[b]
		for _, ci := range idx {
			if c := value.Compare(ra[ci], rb[ci]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// Sorted returns a copy of the table sorted by the given columns. The
// copy shares row storage (rows are not mutated by sorting, only
// reordered).
func (t *Table) Sorted(cols []string) (*Table, error) {
	out := NewTable(t.schema)
	out.rowOnly = t.rowOnly
	out.rows = make([]value.Tuple, len(t.rows))
	copy(out.rows, t.rows)
	if err := out.SortBy(cols); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the table as a small ASCII grid, for debugging and
// example output.
func (t *Table) String() string {
	var sb strings.Builder
	for i, c := range t.schema {
		if i > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString(c.Name)
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
