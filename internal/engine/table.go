package engine

import (
	"fmt"
	"sort"
	"strings"

	"cape/internal/value"
)

// Table is an in-memory row-oriented relation. It is not safe for
// concurrent mutation; concurrent reads are fine.
type Table struct {
	schema Schema
	rows   []value.Tuple
	// indexes holds hash indexes built with BuildIndex; invalidated by
	// Append.
	indexes map[string]*tableIndex
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) *Table {
	return &Table{schema: schema.Clone()}
}

// Schema returns the table's schema (callers must not mutate it).
func (t *Table) Schema() Schema { return t.schema }

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i (callers must not mutate it).
func (t *Table) Row(i int) value.Tuple { return t.rows[i] }

// Rows returns the backing row slice (callers must not mutate it).
func (t *Table) Rows() []value.Tuple { return t.rows }

// Append adds a row. The arity must match the schema, and each value must
// match the column kind unless the column is untyped or the value is NULL.
func (t *Table) Append(row value.Tuple) error {
	if len(row) != len(t.schema) {
		return fmt.Errorf("engine: arity mismatch: row has %d values, schema %d columns", len(row), len(t.schema))
	}
	for i, v := range row {
		want := t.schema[i].Kind
		if want != value.Null && !v.IsNull() && v.Kind() != want {
			return fmt.Errorf("engine: column %q expects %s, got %s", t.schema[i].Name, want, v.Kind())
		}
	}
	t.rows = append(t.rows, row)
	t.indexes = nil // mutation invalidates all indexes
	return nil
}

// MustAppend is Append that panics on error; intended for tests and
// generators that construct rows programmatically.
func (t *Table) MustAppend(row value.Tuple) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the table (rows are cloned).
func (t *Table) Clone() *Table {
	out := NewTable(t.schema)
	out.rows = make([]value.Tuple, len(t.rows))
	for i, r := range t.rows {
		out.rows[i] = r.Clone()
	}
	return out
}

// Select returns the rows satisfying pred, sharing row storage with t.
func (t *Table) Select(pred func(value.Tuple) bool) *Table {
	out := NewTable(t.schema)
	for _, r := range t.rows {
		if pred(r) {
			out.rows = append(out.rows, r)
		}
	}
	return out
}

// SelectEq returns the rows whose values in cols equal vals positionally.
func (t *Table) SelectEq(cols []string, vals value.Tuple) (*Table, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(cols) {
		return nil, fmt.Errorf("engine: SelectEq got %d values for %d columns", len(vals), len(cols))
	}
	out := NewTable(t.schema)
	if rows, ok := t.lookupIndex(cols, vals); ok {
		for _, ri := range rows {
			out.rows = append(out.rows, t.rows[ri])
		}
		return out, nil
	}
	for _, r := range t.rows {
		match := true
		for i, ci := range idx {
			if !value.Equal(r[ci], vals[i]) {
				match = false
				break
			}
		}
		if match {
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// Project returns a table with only the named columns, preserving
// duplicates and row order.
func (t *Table) Project(cols []string) (*Table, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	sch := make(Schema, len(idx))
	for i, ci := range idx {
		sch[i] = t.schema[ci]
	}
	out := NewTable(sch)
	out.rows = make([]value.Tuple, len(t.rows))
	for ri, r := range t.rows {
		row := make(value.Tuple, len(idx))
		for i, ci := range idx {
			row[i] = r[ci]
		}
		out.rows[ri] = row
	}
	return out, nil
}

// DistinctProject returns the distinct combinations of the named columns,
// in first-appearance order.
func (t *Table) DistinctProject(cols []string) (*Table, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	sch := make(Schema, len(idx))
	for i, ci := range idx {
		sch[i] = t.schema[ci]
	}
	out := NewTable(sch)
	seen := make(map[string]struct{})
	var keyBuf []byte
	for _, r := range t.rows {
		keyBuf = keyBuf[:0]
		for _, ci := range idx {
			keyBuf = r[ci].AppendKey(keyBuf)
		}
		if _, dup := seen[string(keyBuf)]; dup {
			continue
		}
		seen[string(keyBuf)] = struct{}{}
		row := make(value.Tuple, len(idx))
		for i, ci := range idx {
			row[i] = r[ci]
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// CountDistinct counts the distinct combinations of the named columns.
func (t *Table) CountDistinct(cols []string) (int, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return 0, err
	}
	seen := make(map[string]struct{})
	var keyBuf []byte
	for _, r := range t.rows {
		keyBuf = keyBuf[:0]
		for _, ci := range idx {
			keyBuf = r[ci].AppendKey(keyBuf)
		}
		seen[string(keyBuf)] = struct{}{}
	}
	return len(seen), nil
}

// SortBy sorts the table in place by the given columns ascending (using
// value.Compare ordering). The sort is stable.
func (t *Table) SortBy(cols []string) error {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return err
	}
	sort.SliceStable(t.rows, func(a, b int) bool {
		ra, rb := t.rows[a], t.rows[b]
		for _, ci := range idx {
			if c := value.Compare(ra[ci], rb[ci]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// Sorted returns a copy of the table sorted by the given columns. The
// copy shares row storage (rows are not mutated by sorting, only
// reordered).
func (t *Table) Sorted(cols []string) (*Table, error) {
	out := NewTable(t.schema)
	out.rows = make([]value.Tuple, len(t.rows))
	copy(out.rows, t.rows)
	if err := out.SortBy(cols); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the table as a small ASCII grid, for debugging and
// example output.
func (t *Table) String() string {
	var sb strings.Builder
	for i, c := range t.schema {
		if i > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString(c.Name)
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
