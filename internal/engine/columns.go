package engine

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cape/internal/value"
)

// Columnar is a lazily built column-oriented view of a Table. Each column
// is dictionary-encoded once — int32 codes over a dictionary of distinct
// values — alongside flat float64/int64 buffers and a null bitmap, so the
// hot operators (GroupBy, SelectEq, CountDistinct, CUBE) and downstream
// consumers (pattern fitting, explanation scoring) run tight loops over
// machine types instead of boxed value.V dispatch.
//
// The view is cached on the Table and invalidated by mutation (Append,
// SortBy), like hash indexes. Columns materialize on first use, one at a
// time, so a query touching two of ten columns never pays for the other
// eight. All methods are safe for concurrent use; the underlying rows
// must not be mutated while a Columnar is live (the usual Table
// contract).
type Columnar struct {
	rows  []value.Tuple
	mu    sync.Mutex // serializes column builds (misses only)
	cols  []atomic.Pointer[Col]
	flats []atomic.Pointer[Col]
	// comp caches opt-in compressed views (Table.CompressColumns).
	// Appends drop them atomically (see extendColumnar) — a compressed
	// view is immutable, so unlike cols/flats it cannot be extended in
	// place — and kernels double-check NumRows before trusting one.
	comp []atomic.Pointer[CompressedCol]
}

// NumRows reports the number of rows in the snapshot.
func (c *Columnar) NumRows() int { return len(c.rows) }

// Col returns the fully encoded view of column ci (schema position) —
// flat buffers plus dictionary codes — building it on first use.
// Concurrent callers block on one build; different columns build
// independently.
func (c *Columnar) Col(ci int) *Col {
	if col := c.cols[ci].Load(); col != nil {
		return col
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if col := c.cols[ci].Load(); col != nil {
		return col
	}
	col := buildCol(c.rows, ci, true)
	c.cols[ci].Store(col)
	return col
}

// FlatCol returns at least the flat buffers (Kinds, Num, F64, I64, null
// bitmap) of column ci, skipping the dictionary encode — the cheap tier
// for consumers that only read values, like aggregation and regression
// fitting. If the full view already exists it is returned instead; a
// flat view never replaces a full one.
func (c *Columnar) FlatCol(ci int) *Col {
	if col := c.cols[ci].Load(); col != nil {
		return col
	}
	if col := c.flats[ci].Load(); col != nil {
		return col
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if col := c.cols[ci].Load(); col != nil {
		return col
	}
	if col := c.flats[ci].Load(); col != nil {
		return col
	}
	col := buildCol(c.rows, ci, false)
	c.flats[ci].Store(col)
	return col
}

// Col is one dictionary-encoded column. Codes identify equality classes
// under value.V's canonical AppendKey encoding — exactly the classes
// GroupBy, CountDistinct and DistinctProject group by — so kernels
// compare int32s where the row path compared encoded byte strings.
//
// The exported buffers are views shared with the cache: callers must not
// mutate them.
type Col struct {
	// Kinds holds the value kind of every row (value.Null marks NULLs).
	Kinds []value.Kind
	// Num reports, per row, whether the value is numeric (Int or Float).
	Num []bool
	// F64 holds the numeric value per row as float64 (0 where !Num).
	F64 []float64
	// I64 holds the payload of Int rows (0 elsewhere). It is nil when the
	// column contains no Int values.
	I64 []int64
	// Codes holds the per-row dictionary code. Codes are dense, assigned
	// in first-appearance order: Dict[Codes[i]] is row i's value.
	Codes []int32
	// Dict holds one representative value per code, in code order.
	Dict []value.V

	lookup    map[string]int32 // AppendKey bytes → code
	nulls     []uint64         // null bitmap, bit i ↔ row i
	nullCount int
	hasNaN    bool

	// ranks maps each code to its dense value.Compare rank (NULL first,
	// numerics by magnitude, strings last; Compare-equal codes — e.g.
	// Int(1) vs Float(1) — share a rank). nil when the column contains
	// NaN, whose reflexively-unequal comparisons break the ordering.
	ranks    []int32
	numRanks int32
}

func buildCol(rows []value.Tuple, ci int, withDict bool) *Col {
	n := len(rows)
	c := &Col{
		Kinds: make([]value.Kind, n),
		Num:   make([]bool, n),
		F64:   make([]float64, n),
		nulls: make([]uint64, (n+63)/64),
	}
	if withDict {
		c.Codes = make([]int32, n)
		c.Dict = make([]value.V, 0, 16)
		c.lookup = make(map[string]int32, 16)
	}
	var keyBuf []byte
	for i, row := range rows {
		v := row[ci]
		k := v.Kind()
		c.Kinds[i] = k
		switch k {
		case value.Int:
			if c.I64 == nil {
				c.I64 = make([]int64, n)
			}
			iv := v.Int()
			c.I64[i] = iv
			c.F64[i] = float64(iv)
			c.Num[i] = true
		case value.Float:
			f := v.Float()
			c.F64[i] = f
			c.Num[i] = true
			if math.IsNaN(f) {
				c.hasNaN = true
			}
		case value.Null:
			c.nulls[i>>6] |= 1 << uint(i&63)
			c.nullCount++
		}
		if withDict {
			keyBuf = v.AppendKey(keyBuf[:0])
			code, ok := c.lookup[string(keyBuf)]
			if !ok {
				code = int32(len(c.Dict))
				c.lookup[string(keyBuf)] = code
				c.Dict = append(c.Dict, v)
			}
			c.Codes[i] = code
		}
	}
	if withDict && !c.hasNaN {
		c.buildRanks()
	}
	return c
}

// buildRanks sorts the dictionary under value.Compare and assigns each
// code a dense rank. Distinct codes may share a rank: Int(1)/Float(1)
// are AppendKey-distinct yet Compare-equal, as are integers past 2^53
// that collide after float rounding. Compare over non-NaN values orders
// by (kind class, float value | string), a total preorder, so the sort
// is well-defined.
func (c *Col) buildRanks() {
	d := len(c.Dict)
	order := make([]int32, d)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return value.Compare(c.Dict[order[a]], c.Dict[order[b]]) < 0
	})
	c.ranks = make([]int32, d)
	rank := int32(0)
	for i, code := range order {
		if i > 0 && value.Compare(c.Dict[order[i-1]], c.Dict[code]) != 0 {
			rank++
		}
		c.ranks[code] = rank
	}
	if d > 0 {
		c.numRanks = rank + 1
	}
}

// CodeOf returns the dictionary code of v, or ok=false when v does not
// occur in the column (under AppendKey equality). Only meaningful on
// full views obtained via Col; flat views (FlatCol) have no dictionary
// and report every value absent.
func (c *Col) CodeOf(v value.V) (int32, bool) {
	var buf [24]byte
	key := v.AppendKey(buf[:0])
	code, ok := c.lookup[string(key)]
	return code, ok
}

// EqCode resolves an equality probe against the dictionary for use in
// value.Equal-semantics scans. When divergent is true, code comparison
// cannot answer value.Equal for this probe (v is NaN or past the
// float-exact integer range, or the column contains NaN) and the caller
// must fall back to a boxed row scan. Otherwise ok reports whether any
// row equals v, and on ok the rows matching v under value.Equal are
// exactly the rows whose Codes entry equals code.
func (c *Col) EqCode(v value.V) (code int32, ok, divergent bool) {
	if eqDivergent(v, c.hasNaN) {
		return 0, false, true
	}
	code, ok = c.CodeOf(v)
	return code, ok, false
}

// Null reports whether row i is NULL, via the null bitmap.
func (c *Col) Null(i int) bool { return c.nulls[i>>6]>>uint(i&63)&1 != 0 }

// NullCount reports how many rows are NULL.
func (c *Col) NullCount() int { return c.nullCount }

// HasNaN reports whether any Float row is NaN. NaN breaks the
// correspondence between code equality and value.Equal (NaN compares
// equal to every numeric), so kernels that must reproduce row-path
// Compare semantics fall back when it is set.
func (c *Col) HasNaN() bool { return c.hasNaN }

// RankCodes returns a fresh per-row vector of dense value.Compare ranks
// (the SortCodes encoding) derived from the dictionary, plus the rank
// count. ok is false when the column contains NaN and no total order
// exists; callers then fall back to the row-at-a-time encoder.
func (c *Col) RankCodes() ([]int32, int32, bool) {
	if c.ranks == nil {
		return nil, 0, false
	}
	out := make([]int32, len(c.Codes))
	for i, code := range c.Codes {
		out[i] = c.ranks[code]
	}
	return out, c.numRanks, true
}

// Compressed returns the cached compressed view of column ci, or nil
// when none has been built (CompressColumns) or an append dropped it.
// Callers must additionally check NumRows against the live table before
// use; the kernels' dispatchers do.
func (c *Columnar) Compressed(ci int) *CompressedCol {
	if c.comp == nil {
		return nil
	}
	return c.comp[ci].Load()
}

// CompressColumns builds compressed views (run-length or bit-packed
// dictionary codes, see CompressedCol) of the named columns — all
// columns when none are named — and caches them on the columnar view.
// Compressed views are strictly opt-in: operators use them only when
// every column a query touches has a current view, so default Table
// behaviour is unchanged. An append invalidates the views (they are
// immutable, sealed encodings); re-calling CompressColumns rebuilds
// them over the longer table.
func (t *Table) CompressColumns(cols ...string) error {
	if len(cols) == 0 {
		cols = t.schema.Names()
	}
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return err
	}
	c := t.Columns()
	for _, ci := range idx {
		col := c.Col(ci)
		cc := compressCodes(col.Codes, col.Dict)
		cc.markMixedKinds(col.Kinds, col.Codes)
		c.comp[ci].Store(cc)
	}
	return nil
}

// maxExactFloat bounds the range in which AppendKey equality classes
// and value.Compare equality classes coincide for numerics: at
// magnitude ≥ 2^53, AppendKey-distinct integers can round to the same
// float and become Compare-equal.
const maxExactFloat = float64(1 << 53)

// eqDivergent reports whether an equality probe for v against a column
// can distinguish AppendKey matching (dictionary codes, index buckets)
// from value.Equal matching (the row-scan reference): v is NaN, v sits
// past the float-exact integer range, or the column itself contains NaN
// (which value.Equal matches against every numeric probe).
func eqDivergent(v value.V, colHasNaN bool) bool {
	f, numeric := v.AsFloat()
	if !numeric {
		return false
	}
	return math.IsNaN(f) || f >= maxExactFloat || f <= -maxExactFloat || colHasNaN
}

// Columns returns the table's columnar view, building the (empty) shell
// on first use. The same Columnar is returned until the table is
// mutated, so repeated operators — and concurrent readers — share one
// encoding per column.
func (t *Table) Columns() *Columnar {
	if c := t.cols.Load(); c != nil {
		return c
	}
	t.colsMu.Lock()
	defer t.colsMu.Unlock()
	if c := t.cols.Load(); c != nil {
		return c
	}
	c := &Columnar{
		rows:  t.rows,
		cols:  make([]atomic.Pointer[Col], len(t.schema)),
		flats: make([]atomic.Pointer[Col], len(t.schema)),
		comp:  make([]atomic.Pointer[CompressedCol], len(t.schema)),
	}
	t.cols.Store(c)
	return c
}

// invalidateDerived drops caches derived from row storage (hash indexes
// and the columnar view) and advances the epoch; every reordering
// mutation of t.rows must call it. Appends instead go through
// extendDerived, which grows the caches in place.
func (t *Table) invalidateDerived() {
	t.epoch++
	t.indexes = nil
	t.cols.Store(nil)
}

// ForceRowPath toggles the row-oriented reference implementations of
// GroupBy, SelectEq, CountDistinct and DistinctProject, bypassing the
// columnar kernels. The flag propagates to derived tables (Select,
// Project, GroupBy results, clones, ...), so forcing it on a source
// table keeps an entire query pipeline on the reference paths. It
// exists so differential tests and benchmarks can pin the vectorized
// paths to the reference behaviour; production code never sets it.
// Returns t for chaining.
func (t *Table) ForceRowPath(on bool) *Table {
	t.rowOnly = on
	return t
}

// RowPathForced reports whether ForceRowPath is set (directly or via
// propagation), letting consumers outside the engine honour the
// reference-path request in their own columnar fast paths.
func (t *Table) RowPathForced() bool { return t.rowOnly }

// groupCodes assigns every row a dense group id over the combined
// dictionary codes of the key columns, in first-appearance order —
// the same equality classes and ordering the row-oriented GroupBy
// derives from encoded key bytes. It returns the per-row group ids and,
// per group, the index of its first row.
//
// Three strategies, cheapest first: a single key column maps codes
// through a direct array; a small cross-dictionary flattens multiple
// codes into one combined index; otherwise the code vectors are hashed
// into an open-addressed table sized so no rehash is ever needed.
func groupCodes(keyCols []*Col, n int) (gidx []int32, first []int32) {
	gidx = make([]int32, n)
	if len(keyCols) == 1 {
		codes := keyCols[0].Codes
		remap := make([]int32, len(keyCols[0].Dict))
		for i := range remap {
			remap[i] = -1
		}
		for r := 0; r < n; r++ {
			g := remap[codes[r]]
			if g < 0 {
				g = int32(len(first))
				remap[codes[r]] = g
				first = append(first, int32(r))
			}
			gidx[r] = g
		}
		return gidx, first
	}

	// Flatten multi-column keys into one combined code when the cross
	// dictionary stays small relative to the table: the remap array is
	// then a perfect hash.
	const maxFlatProduct = 1 << 22
	prod := 1
	for _, kc := range keyCols {
		d := len(kc.Dict)
		if d == 0 {
			d = 1
		}
		prod *= d
		if prod > maxFlatProduct || prod > 4*n+64 {
			prod = -1
			break
		}
	}
	if prod > 0 {
		remap := make([]int32, prod)
		for i := range remap {
			remap[i] = -1
		}
		for r := 0; r < n; r++ {
			key := 0
			for _, kc := range keyCols {
				key = key*len(kc.Dict) + int(kc.Codes[r])
			}
			g := remap[key]
			if g < 0 {
				g = int32(len(first))
				remap[key] = g
				first = append(first, int32(r))
			}
			gidx[r] = g
		}
		return gidx, first
	}

	// General case: open-addressed hash of the code vector. Sizing the
	// table to ≥2n slots up front (group count ≤ n) keeps the load
	// factor under 1/2 with no rehashing; collisions resolve by
	// comparing codes against the group's first row.
	tabSize := 64
	for tabSize < 2*n {
		tabSize <<= 1
	}
	slots := make([]int32, tabSize)
	for i := range slots {
		slots[i] = -1
	}
	mask := uint64(tabSize - 1)
	const fnvOffset, fnvPrime = uint64(14695981039346656037), uint64(1099511628211)
	for r := 0; r < n; r++ {
		h := fnvOffset
		for _, kc := range keyCols {
			h ^= uint64(uint32(kc.Codes[r]))
			h *= fnvPrime
		}
		slot := h & mask
		g := int32(-1)
		for {
			j := slots[slot]
			if j < 0 {
				break
			}
			fr := first[j]
			match := true
			for _, kc := range keyCols {
				if kc.Codes[r] != kc.Codes[fr] {
					match = false
					break
				}
			}
			if match {
				g = j
				break
			}
			slot = (slot + 1) & mask
		}
		if g < 0 {
			g = int32(len(first))
			first = append(first, int32(r))
			slots[slot] = g
		}
		gidx[r] = g
	}
	return gidx, first
}
