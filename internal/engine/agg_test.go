package engine

import (
	"math/rand"
	"testing"

	"cape/internal/value"
)

func TestAggFuncStringAndParse(t *testing.T) {
	for _, f := range []AggFunc{Count, Sum, Avg, Min, Max} {
		got, err := ParseAggFunc(f.String())
		if err != nil || got != f {
			t.Errorf("round trip %v: got %v, %v", f, got, err)
		}
	}
	if _, err := ParseAggFunc("median"); err == nil {
		t.Error("unknown aggregate should error")
	}
	if got := AggFunc(9).String(); got != "agg(9)" {
		t.Errorf("unknown AggFunc rendered %q", got)
	}
}

func TestAggSpecString(t *testing.T) {
	if got := (AggSpec{Func: Count}).String(); got != "count(*)" {
		t.Errorf("count spec = %q", got)
	}
	if got := (AggSpec{Func: Sum, Arg: "x"}).String(); got != "sum(x)" {
		t.Errorf("sum spec = %q", got)
	}
}

func TestGroupByCountStar(t *testing.T) {
	tab := pubTable(t)
	g, err := tab.GroupBy([]string{"author", "year"}, []AggSpec{{Func: Count}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"AX|2004": 2, "AX|2005": 3, "AY|2004": 3, "AY|2005": 1, "AZ|2004": 1,
	}
	if g.NumRows() != len(want) {
		t.Fatalf("groups = %d, want %d", g.NumRows(), len(want))
	}
	for _, r := range g.Rows() {
		k := r[0].Str() + "|" + r[1].String()
		if r[2].Int() != want[k] {
			t.Errorf("group %s count = %d, want %d", k, r[2].Int(), want[k])
		}
	}
	if g.Schema()[2].Name != "count(*)" {
		t.Errorf("aggregate column named %q", g.Schema()[2].Name)
	}
}

func TestGroupByGlobalGroup(t *testing.T) {
	tab := pubTable(t)
	g, err := tab.GroupBy(nil, []AggSpec{{Func: Count}, {Func: Min, Arg: "year"}, {Func: Max, Arg: "year"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 1 {
		t.Fatalf("global group rows = %d", g.NumRows())
	}
	r := g.Row(0)
	if r[0].Int() != 10 || r[1].Int() != 2004 || r[2].Int() != 2005 {
		t.Errorf("global aggregates = %v", r)
	}
}

func TestGroupBySumAvg(t *testing.T) {
	tab := NewTable(Schema{{Name: "k", Kind: value.String}, {Name: "v", Kind: value.Null}})
	tab.MustAppend(value.Tuple{value.NewString("a"), value.NewInt(1)})
	tab.MustAppend(value.Tuple{value.NewString("a"), value.NewInt(3)})
	tab.MustAppend(value.Tuple{value.NewString("b"), value.NewFloat(0.5)})
	tab.MustAppend(value.Tuple{value.NewString("b"), value.NewInt(2)})
	tab.MustAppend(value.Tuple{value.NewString("c"), value.NewNull()})

	g, err := tab.GroupBy([]string{"k"}, []AggSpec{{Func: Sum, Arg: "v"}, {Func: Avg, Arg: "v"}})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]value.Tuple{}
	for _, r := range g.Rows() {
		byKey[r[0].Str()] = r
	}
	if r := byKey["a"]; r[1].Int() != 4 || r[2].Float() != 2 {
		t.Errorf("group a = %v", r)
	}
	if r := byKey["b"]; r[1].Float() != 2.5 || r[2].Float() != 1.25 {
		t.Errorf("group b = %v", r)
	}
	// All values null: Sum and Avg are NULL.
	if r := byKey["c"]; !r[1].IsNull() || !r[2].IsNull() {
		t.Errorf("group c = %v, want NULL aggregates", r)
	}
}

func TestGroupByCountArgSkipsNulls(t *testing.T) {
	tab := NewTable(Schema{{Name: "k", Kind: value.String}, {Name: "v", Kind: value.Null}})
	tab.MustAppend(value.Tuple{value.NewString("a"), value.NewInt(1)})
	tab.MustAppend(value.Tuple{value.NewString("a"), value.NewNull()})
	g, err := tab.GroupBy([]string{"k"}, []AggSpec{{Func: Count, Arg: "v"}, {Func: Count, Arg: "*"}})
	if err != nil {
		t.Fatal(err)
	}
	r := g.Row(0)
	if r[1].Int() != 1 {
		t.Errorf("count(v) = %d, want 1", r[1].Int())
	}
	if r[2].Int() != 2 {
		t.Errorf("count(*) = %d, want 2", r[2].Int())
	}
}

func TestGroupByMinMaxStrings(t *testing.T) {
	tab := pubTable(t)
	g, err := tab.GroupBy([]string{"author"}, []AggSpec{{Func: Min, Arg: "venue"}, {Func: Max, Arg: "venue"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range g.Rows() {
		if r[0].Str() == "AY" {
			if r[1].Str() != "ICDE" || r[2].Str() != "SIGKDD" {
				t.Errorf("AY min/max venue = %v / %v", r[1], r[2])
			}
		}
	}
}

func TestGroupByErrors(t *testing.T) {
	tab := pubTable(t)
	if _, err := tab.GroupBy([]string{"nope"}, []AggSpec{{Func: Count}}); err == nil {
		t.Error("unknown group column should error")
	}
	if _, err := tab.GroupBy([]string{"author"}, []AggSpec{{Func: Sum, Arg: "nope"}}); err == nil {
		t.Error("unknown aggregate argument should error")
	}
	if _, err := tab.GroupBy([]string{"author"}, []AggSpec{{Func: Sum, Arg: "*"}}); err == nil {
		t.Error("sum(*) should error")
	}
}

func TestGroupByMatchesNaiveScan(t *testing.T) {
	// Property check: hash grouping agrees with an independent
	// select-per-distinct-key evaluation, on randomized data.
	rng := rand.New(rand.NewSource(3))
	tab := NewTable(Schema{
		{Name: "g1", Kind: value.Int},
		{Name: "g2", Kind: value.String},
		{Name: "v", Kind: value.Int},
	})
	letters := []string{"p", "q", "r"}
	for i := 0; i < 500; i++ {
		tab.MustAppend(value.Tuple{
			value.NewInt(int64(rng.Intn(5))),
			value.NewString(letters[rng.Intn(len(letters))]),
			value.NewInt(int64(rng.Intn(100))),
		})
	}
	g, err := tab.GroupBy([]string{"g1", "g2"}, []AggSpec{{Func: Count}, {Func: Sum, Arg: "v"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range g.Rows() {
		sel, err := tab.SelectEq([]string{"g1", "g2"}, value.Tuple{gr[0], gr[1]})
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, r := range sel.Rows() {
			sum += r[2].Int()
		}
		if int64(sel.NumRows()) != gr[2].Int() {
			t.Errorf("group %v count mismatch: %d vs %d", gr[:2], sel.NumRows(), gr[2].Int())
		}
		if sum != gr[3].Int() {
			t.Errorf("group %v sum mismatch: %d vs %d", gr[:2], sum, gr[3].Int())
		}
	}
	// Group count equals distinct key count.
	nd, _ := tab.CountDistinct([]string{"g1", "g2"})
	if g.NumRows() != nd {
		t.Errorf("group count %d != distinct %d", g.NumRows(), nd)
	}
}

// benchGroupTable builds a relation with a realistic group cardinality
// for the aggregation benchmark: ~600 distinct (g1, g2, g3) groups over
// `rows` rows.
func benchGroupTable(rows int) *Table {
	rng := rand.New(rand.NewSource(42))
	tab := NewTable(Schema{
		{Name: "g1", Kind: value.Int},
		{Name: "g2", Kind: value.String},
		{Name: "g3", Kind: value.Int},
		{Name: "v", Kind: value.Int},
	})
	cats := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < rows; i++ {
		tab.MustAppend(value.Tuple{
			value.NewInt(int64(rng.Intn(12))),
			value.NewString(cats[rng.Intn(len(cats))]),
			value.NewInt(int64(2000 + rng.Intn(10))),
			value.NewInt(int64(rng.Intn(100))),
		})
	}
	return tab
}

// BenchmarkGroupBy tracks the allocation profile of the hash-aggregation
// hot path (the arena layout keeps per-group costs to amortized bump
// allocations; per-row lookups allocate nothing).
func BenchmarkGroupBy(b *testing.B) {
	tab := benchGroupTable(20000)
	aggs := []AggSpec{{Func: Count}, {Func: Sum, Arg: "v"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.GroupBy([]string{"g1", "g2", "g3"}, aggs); err != nil {
			b.Fatal(err)
		}
	}
}
