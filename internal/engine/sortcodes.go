package engine

import (
	"fmt"
	"sort"

	"cape/internal/value"
)

// SortCodes are dense per-column sort keys for a table: each encoded
// column is dictionary-encoded once into int32 ranks that order exactly
// like value.Compare (equal values share a rank), so multi-key sorts
// compare machine integers instead of boxed values, and a sort of the
// table becomes a sort of a row-index permutation. ARP mining builds one
// SortCodes per grouped result and reuses it across every sort order it
// explores.
type SortCodes struct {
	numRows int
	codes   map[string][]int32
	ranks   map[string]int32 // rank count per column (codes are 0..ranks-1)
	scratch []int32          // counting-sort output buffer
	counts  []int32          // counting-sort histogram
}

// BuildSortCodes dictionary-encodes the given columns of t. The fast
// path derives each column's ranks from the table's columnar dictionary
// — sorting d distinct values instead of n rows, and sharing the
// dictionary with every other operator on the table. Columns containing
// NaN (no total order) and ForceRowPath tables use the row-at-a-time
// encoder, after which every SortPerm call is pure integer work either
// way.
func BuildSortCodes(t *Table, cols []string) (*SortCodes, error) {
	idx, err := t.schema.Indices(cols)
	if err != nil {
		return nil, err
	}
	n := t.NumRows()
	sc := &SortCodes{
		numRows: n,
		codes:   make(map[string][]int32, len(cols)),
		ranks:   make(map[string]int32, len(cols)),
	}
	var colr *Columnar
	if !t.rowOnly && n > 0 {
		colr = t.Columns()
	}
	rows := t.rows
	var order []int32
	var fKeys []float64
	var sKeys []string
	for k, col := range cols {
		if _, dup := sc.codes[col]; dup {
			continue
		}
		ci := idx[k]
		if colr != nil {
			if codes, nRanks, ok := colr.Col(ci).RankCodes(); ok {
				sc.codes[col] = codes
				sc.ranks[col] = nRanks
				continue
			}
		}
		if order == nil {
			order = make([]int32, n)
		}
		for i := range order {
			order[i] = int32(i)
		}
		codes := make([]int32, n)
		rank := int32(0)

		// Classify the column so homogeneous columns (the common case)
		// sort on unboxed keys instead of through value.Compare.
		numeric, str := true, true
		for _, row := range rows {
			switch row[ci].Kind() {
			case value.Int, value.Float:
				str = false
			case value.String:
				numeric = false
			default: // NULL
				numeric, str = false, false
			}
			if !numeric && !str {
				break
			}
		}
		switch {
		case n == 0:
			// nothing to encode
		case numeric:
			if fKeys == nil {
				fKeys = make([]float64, n)
			}
			for i, row := range rows {
				fKeys[i], _ = row[ci].AsFloat()
			}
			sort.Slice(order, func(a, b int) bool {
				return fKeys[order[a]] < fKeys[order[b]]
			})
			for i, ri := range order {
				if i > 0 && fKeys[order[i-1]] != fKeys[ri] {
					rank++
				}
				codes[ri] = rank
			}
		case str:
			if sKeys == nil {
				sKeys = make([]string, n)
			}
			for i, row := range rows {
				sKeys[i] = row[ci].Str()
			}
			sort.Slice(order, func(a, b int) bool {
				return sKeys[order[a]] < sKeys[order[b]]
			})
			for i, ri := range order {
				if i > 0 && sKeys[order[i-1]] != sKeys[ri] {
					rank++
				}
				codes[ri] = rank
			}
		default:
			sort.Slice(order, func(a, b int) bool {
				return value.Compare(rows[order[a]][ci], rows[order[b]][ci]) < 0
			})
			for i, ri := range order {
				if i > 0 && value.Compare(rows[order[i-1]][ci], rows[ri][ci]) != 0 {
					rank++
				}
				codes[ri] = rank
			}
		}
		sc.codes[col] = codes
		if n > 0 {
			sc.ranks[col] = rank + 1
		}
	}
	return sc, nil
}

// Codes returns the rank column for an encoded column (aligned with the
// table's rows), or nil when the column was not encoded.
func (sc *SortCodes) Codes(col string) []int32 { return sc.codes[col] }

// NewPerm returns the identity permutation over the table's rows, the
// starting point for SortPerm.
func (sc *SortCodes) NewPerm() []int32 {
	perm := make([]int32, sc.numRows)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// SortPerm sorts perm — a permutation of row indices — lexicographically
// by the encoded columns in order. keepPrefix > 0 declares that perm is
// already sorted by order[:keepPrefix] (because the previous sort order
// shared that prefix); only runs of rows equal on the prefix are then
// re-sorted, by the remaining columns. The sort need not be stable: ARP
// mining sorts grouped results whose rows are distinct on the full
// column set, so no two rows tie.
//
// Because the codes are dense ranks, a full sort is an LSD counting sort
// — one stable O(n + ranks) pass per column, minor to major — and a
// prefix re-sort insertion-sorts each (typically short) run.
func (sc *SortCodes) SortPerm(perm []int32, order []string, keepPrefix int) error {
	cols := make([][]int32, len(order))
	nRanks := make([]int32, len(order))
	for i, name := range order {
		c := sc.codes[name]
		if c == nil {
			return fmt.Errorf("engine: column %q has no sort codes", name)
		}
		cols[i] = c
		nRanks[i] = sc.ranks[name]
	}
	if keepPrefix < 0 {
		keepPrefix = 0
	}
	if keepPrefix >= len(cols) {
		return nil // identical order: already sorted
	}
	if keepPrefix == 0 {
		for i := len(cols) - 1; i >= 0; i-- {
			sc.countingSort(perm, cols[i], nRanks[i])
		}
		return nil
	}
	rest := cols[keepPrefix:]
	prefix := cols[:keepPrefix]
	for lo := 0; lo < len(perm); {
		hi := lo + 1
		for hi < len(perm) && equalOn(prefix, perm[lo], perm[hi]) {
			hi++
		}
		if hi-lo > 1 {
			insertionSort(perm[lo:hi], rest)
		}
		lo = hi
	}
	return nil
}

// countingSort stably reorders perm by codes (a dense-rank column with
// ranks in [0, nRanks)), reusing the receiver's histogram and output
// scratch.
func (sc *SortCodes) countingSort(perm []int32, codes []int32, nRanks int32) {
	if cap(sc.counts) < int(nRanks)+1 {
		sc.counts = make([]int32, nRanks+1)
	}
	counts := sc.counts[:nRanks+1]
	for i := range counts {
		counts[i] = 0
	}
	for _, ri := range perm {
		counts[codes[ri]+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	if cap(sc.scratch) < len(perm) {
		sc.scratch = make([]int32, len(perm))
	}
	out := sc.scratch[:len(perm)]
	for _, ri := range perm {
		out[counts[codes[ri]]] = ri
		counts[codes[ri]]++
	}
	copy(perm, out)
}

// insertionSort orders a short run of row indices by the code columns in
// cols, avoiding sort.Slice's closure overhead on the many small runs a
// prefix re-sort produces.
func insertionSort(run []int32, cols [][]int32) {
	for i := 1; i < len(run); i++ {
		for j := i; j > 0 && lessOn(cols, run[j], run[j-1]); j-- {
			run[j], run[j-1] = run[j-1], run[j]
		}
	}
}

// lessOn compares rows a and b lexicographically by the code columns.
func lessOn(cols [][]int32, a, b int32) bool {
	for _, c := range cols {
		if ca, cb := c[a], c[b]; ca != cb {
			return ca < cb
		}
	}
	return false
}

// equalOn reports whether rows a and b agree on every code column.
func equalOn(cols [][]int32, a, b int32) bool {
	for _, c := range cols {
		if c[a] != c[b] {
			return false
		}
	}
	return true
}
