package engine

import (
	"math"
	"sort"
	"strings"

	"cape/internal/value"
)

// tableIndex is a hash index over one column set: canonical key bytes of
// the indexed columns → row positions.
type tableIndex struct {
	cols    []string // sorted
	buckets map[string][]int
	// hasNaN marks, per sorted column, whether any indexed value is NaN.
	// Bucket keys are AppendKey encodings, whose equality diverges from
	// value.Equal around NaN; lookups decline such probes (eqDivergent)
	// so indexed SelectEq stays identical to the scan paths.
	hasNaN []bool
}

// indexKey canonically identifies a column set.
func indexKey(cols []string) string {
	s := append([]string(nil), cols...)
	sort.Strings(s)
	return strings.Join(s, "\x1f")
}

// BuildIndex constructs (and retains) a hash index over the given
// columns, accelerating subsequent SelectEq calls on exactly that column
// set. Building is O(rows); each indexed SelectEq then costs O(result)
// instead of a full scan. Appends extend all indexes in place;
// reordering mutations (SortBy) invalidate them. Build indexes before
// sharing the table across goroutines.
func (t *Table) BuildIndex(cols []string) error {
	if _, err := t.schema.Indices(cols); err != nil {
		return err
	}
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	sortedIdx, _ := t.schema.Indices(sorted)

	idx := &tableIndex{
		cols:    sorted,
		buckets: make(map[string][]int),
		hasNaN:  make([]bool, len(sorted)),
	}
	var keyBuf []byte
	for ri, row := range t.rows {
		keyBuf = keyBuf[:0]
		for i, ci := range sortedIdx {
			v := row[ci]
			if v.Kind() == value.Float && math.IsNaN(v.Float()) {
				idx.hasNaN[i] = true
			}
			keyBuf = v.AppendKey(keyBuf)
		}
		idx.buckets[string(keyBuf)] = append(idx.buckets[string(keyBuf)], ri)
	}
	if t.indexes == nil {
		t.indexes = make(map[string]*tableIndex)
	}
	t.indexes[indexKey(cols)] = idx
	return nil
}

// HasIndex reports whether an index over exactly this column set exists.
func (t *Table) HasIndex(cols []string) bool {
	_, ok := t.indexes[indexKey(cols)]
	return ok
}

// lookupIndex finds rows matching vals (positionally aligned with cols)
// via an index, if one covers the column set. ok is false when no index
// exists.
func (t *Table) lookupIndex(cols []string, vals value.Tuple) ([]int, bool) {
	idx, found := t.indexes[indexKey(cols)]
	if !found {
		return nil, false
	}
	// Reorder vals into the index's sorted column order.
	byName := make(map[string]value.V, len(cols))
	for i, c := range cols {
		byName[c] = vals[i]
	}
	var keyBuf []byte
	for i, c := range idx.cols {
		v := byName[c]
		if eqDivergent(v, idx.hasNaN[i]) {
			return nil, false // bucket equality would diverge from value.Equal
		}
		keyBuf = v.AppendKey(keyBuf)
	}
	return idx.buckets[string(keyBuf)], true
}
