package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"cape/internal/value"
)

// setMorselTarget shrinks the morsel size so small test tables split
// into many morsels, restoring it afterwards.
func setMorselTarget(t *testing.T, target int32) {
	t.Helper()
	orig := morselTargetRows
	morselTargetRows = target
	t.Cleanup(func() { morselTargetRows = orig })
}

// packedCol builds a deliberately bit-packed column (never RLE), the
// encoding whose block-decode paths these tests pin.
func packedCol(codes []int32, dict []value.V) *CompressedCol {
	cc := &CompressedCol{n: len(codes), dict: dict}
	cc.buildDictMeta()
	cc.bitWidth = bitWidthFor(len(dict))
	cc.packed = packCodes(codes, cc.bitWidth)
	return cc
}

func intDict(n int) []value.V {
	dict := make([]value.V, n)
	for i := range dict {
		dict[i] = value.NewInt(int64(i))
	}
	return dict
}

// TestMorselGroupByDeterminism is the merge-order property test: over
// random segment splits, worker counts, and mixed int/float columns,
// the morsel-parallel GroupBy must be byte-identical to the sequential
// kernel and to the row-path reference — group order, key values,
// aggregate results, and float summation order included. Aggregates
// whose partials do not merge exactly (Avg, float Sum) must transparently
// take the sequential kernel and still agree.
func TestMorselGroupByDeterminism(t *testing.T) {
	setMorselTarget(t, 16)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := typedRandomTable(rng, 50+rng.Intn(250), 2+rng.Intn(3))
		ref := tab.Clone().ForceRowPath(true)
		for _, nSegs := range []int{1, 3} {
			st := segTableFromTable(t, tab, nSegs)
			for trial := 0; trial < 3; trial++ {
				cols := randomCols(rng, tab, 1+rng.Intn(2))
				aggs := randomAggs(rng, tab)
				label := fmt.Sprintf("seed %d segs %d GroupBy(%v, %v)", seed, nSegs, cols, aggs)

				st.SetPool(nil)
				seq, err := st.GroupBy(cols, aggs)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.GroupBy(cols, aggs)
				if err != nil {
					t.Fatal(err)
				}
				tablesIdentical(t, seq, want, label+" [sequential]")

				for _, workers := range []int{2, 3, 8} {
					st.SetPool(NewPool(workers))
					got, err := st.GroupBy(cols, aggs)
					if err != nil {
						t.Fatal(err)
					}
					tablesIdentical(t, got, want, fmt.Sprintf("%s [workers %d]", label, workers))
				}
				st.SetPool(nil)
			}
		}
	}
}

// TestSegTablePoolDifferential runs the full operator surface (GroupBy,
// SelectEq, CountDistinct, DistinctProject, Cube) of a pool-attached
// SegTable against the row-path reference — the same oracle the
// sequential differential test uses, now with morsel, per-part, and
// per-cube-mask fan-out active.
func TestSegTablePoolDifferential(t *testing.T) {
	setMorselTarget(t, 16)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		tab := typedRandomTable(rng, rng.Intn(250), 2+rng.Intn(3))
		for _, workers := range []int{2, 8} {
			st := segTableFromTable(t, tab, 3)
			st.SetPool(NewPool(workers))
			checkSegTable(t, rng, st, tab, fmt.Sprintf("seed %d workers %d", seed, workers))
		}
	}
}

// TestSplitMorsels: morsels must partition the parts exactly — in
// order, contiguous, non-empty — and RLE split points must land on run
// ends of the leading key column.
func TestSplitMorsels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Long runs (~50 rows each, alternating codes) so the encoder picks RLE.
	runVals := make([]int32, 40)
	for i := range runVals {
		runVals[i] = int32(rng.Intn(2))
		if i > 0 && runVals[i] == runVals[i-1] {
			runVals[i] = runVals[i-1] + 1
		}
	}
	codes := make([]int32, 2000)
	for i := range codes {
		codes[i] = runVals[i/50]
	}
	cc := compressCodes(codes, intDict(3))
	if cc.encoding() != encRLE {
		t.Fatalf("expected RLE, got %s", cc.EncodingName())
	}
	parts := []*compPart{
		{n: 2000, keys: []*CompressedCol{cc}},
		{n: 10, keys: []*CompressedCol{compressCodes(make([]int32, 10), intDict(1))}},
		{n: 0, keys: []*CompressedCol{compressCodes(nil, nil)}},
	}
	morsels := splitMorsels(parts, 64)

	next := map[int32]int32{0: 0, 1: 0}
	for _, m := range morsels {
		if m.lo >= m.hi {
			t.Fatalf("empty morsel %+v", m)
		}
		if m.lo != next[m.part] {
			t.Fatalf("morsel %+v does not continue part coverage (want lo %d)", m, next[m.part])
		}
		next[m.part] = m.hi
		if m.part == 0 && m.hi != 2000 {
			// Interior split of the RLE part: must sit on a run end.
			found := false
			for _, e := range cc.runEnds {
				if e == m.hi {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("split at %d is not an RLE run end", m.hi)
			}
		}
	}
	if next[0] != 2000 || next[1] != 10 {
		t.Fatalf("parts not fully covered: %v", next)
	}
	if len(morsels) < 10 {
		t.Fatalf("expected many morsels over 2000 rows at target 64, got %d", len(morsels))
	}
}

// TestMorselMergeable: Avg always declines; Sum declines exactly when a
// part's argument column holds floats; Count/Min/Max merge.
func TestMorselMergeable(t *testing.T) {
	intCol := compressCodes([]int32{0, 1, 0}, intDict(2))
	fltCol := compressCodes([]int32{0, 1, 0}, []value.V{value.NewFloat(0.5), value.NewFloat(1.5)})
	mk := func(f AggFunc, cc *CompressedCol) ([]*compPart, []aggCol) {
		return []*compPart{{n: 3, aggs: []*CompressedCol{cc}}},
			[]aggCol{{spec: AggSpec{Func: f, Arg: "a"}}}
	}
	cases := []struct {
		name string
		f    AggFunc
		cc   *CompressedCol
		want bool
	}{
		{"count", Count, nil, true},
		{"sum-int", Sum, intCol, true},
		{"sum-float", Sum, fltCol, false},
		{"avg-int", Avg, intCol, false},
		{"min-float", Min, fltCol, true},
		{"max-int", Max, intCol, true},
	}
	for _, c := range cases {
		parts, aCols := mk(c.f, c.cc)
		if got := morselMergeable(parts, aCols); got != c.want {
			t.Errorf("%s: morselMergeable = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestUnpackBlockMatchesCodeAt: the batch block decode must agree with
// the per-row unpack for every row, at every bit width the dictionary
// sizes produce, including the final partial block.
func TestUnpackBlockMatchesCodeAt(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dictSize := range []int{2, 3, 17, 300, 5000} {
		for _, n := range []int{1, 1023, 1024, 1025, 5000} {
			codes := make([]int32, n)
			for i := range codes {
				codes[i] = int32(rng.Intn(dictSize))
			}
			cc := packedCol(codes, intDict(dictSize))
			buf := make([]int32, decodeBlockLen)
			for b := 0; b<<decodeBlockShift < n; b++ {
				blk := buf[:cc.blockLen(b)]
				cc.unpackBlock(b, blk)
				base := b << decodeBlockShift
				for i, got := range blk {
					if want := codes[base+i]; got != want {
						t.Fatalf("dict %d n %d: block %d row %d: %d != %d",
							dictSize, n, b, base+i, got, want)
					}
				}
			}
		}
	}
}

// TestRunCursorMaximalRunsAcrossBlocks: the block-buffered PACK cursor
// must still report maximal runs — including runs straddling decode
// block boundaries — because pattern.SharedFitter derives fragment
// boundaries from run ends.
func TestRunCursorMaximalRunsAcrossBlocks(t *testing.T) {
	n := 3 * decodeBlockLen
	codes := make([]int32, n)
	rng := rand.New(rand.NewSource(13))
	for i := range codes {
		codes[i] = int32(rng.Intn(40))
	}
	// A run crossing the first block boundary, another ending exactly on
	// the second, and a run covering the whole tail.
	for i := decodeBlockLen - 100; i < decodeBlockLen+100; i++ {
		codes[i] = 41
	}
	for i := 2*decodeBlockLen - 50; i < 2*decodeBlockLen; i++ {
		codes[i] = 42
	}
	for i := n - 300; i < n; i++ {
		codes[i] = 43
	}
	cc := packedCol(codes, intDict(44))

	var cur RunCursor
	cur.Init(cc)
	for pos := int32(0); pos < int32(n); {
		code, end := cur.Seek(pos)
		if end <= pos {
			t.Fatalf("empty run at %d", pos)
		}
		for i := pos; i < end; i++ {
			if codes[i] != code {
				t.Fatalf("run [%d, %d) code %d: row %d has %d", pos, end, code, i, codes[i])
			}
		}
		if end < int32(n) && codes[end] == code {
			t.Fatalf("run [%d, %d) is not maximal: row %d continues code %d", pos, end, end, code)
		}
		pos = end
	}
}

// TestDecodedBlockCacheEviction: with far more blocks than cache slots,
// repeated strided cursor scans must keep returning correct codes (the
// LRU only ever drops references, never correctness).
func TestDecodedBlockCacheEviction(t *testing.T) {
	n := (decodeCacheBlocks + 8) * decodeBlockLen
	codes := make([]int32, n)
	rng := rand.New(rand.NewSource(17))
	for i := range codes {
		codes[i] = int32(rng.Intn(500))
	}
	cc := packedCol(codes, intDict(500))
	for pass := 0; pass < 2; pass++ {
		var cur RunCursor
		cur.Init(cc)
		for pos := int32(0); pos < int32(n); {
			code, end := cur.Seek(pos)
			if codes[pos] != code {
				t.Fatalf("pass %d: row %d: code %d, want %d", pass, pos, code, codes[pos])
			}
			pos = end
		}
		if len(cc.blockMap) > decodeCacheBlocks {
			t.Fatalf("cache holds %d blocks, cap %d", len(cc.blockMap), decodeCacheBlocks)
		}
	}
}

// TestSelectEqSpansDifferential: for every single code and code pair,
// the span-index path must emit exactly the ranges the merged-run scan
// emits, in the same order with the same boundaries.
func TestSelectEqSpansDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		n := 200 + rng.Intn(2000)
		d1, d2 := 2+rng.Intn(6), 2+rng.Intn(40)
		// Runs of ~17 rows in c1 so RLE and PACK both occur across trials.
		runs := make([]int32, n/17+1)
		for i := range runs {
			runs[i] = int32(rng.Intn(d1))
		}
		c1 := make([]int32, n)
		c2 := make([]int32, n)
		for i := range c1 {
			c1[i] = runs[i/17]
			c2[i] = int32(rng.Intn(d2))
		}
		p := &compPart{n: n, keys: []*CompressedCol{
			compressCodes(c1, intDict(d1)),
			compressCodes(c2, intDict(d2)),
		}}
		type span struct{ lo, hi int32 }
		for w1 := int32(0); w1 < int32(d1); w1++ {
			for w2 := int32(0); w2 < int32(d2); w2++ {
				want := []span{}
				selectEqRuns(p, []int32{w1, w2}, func(lo, hi int32) {
					want = append(want, span{lo, hi})
				})
				got := []span{}
				if !selectEqSpans(p, []int32{w1, w2}, func(lo, hi int32) {
					got = append(got, span{lo, hi})
				}) {
					t.Fatal("selectEqSpans declined a sealed part")
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d probe (%d,%d): %d ranges, want %d", trial, w1, w2, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d probe (%d,%d) range %d: %+v != %+v", trial, w1, w2, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestIntersectSpans covers the galloping intersection directly.
func TestIntersectSpans(t *testing.T) {
	type span struct{ lo, hi int32 }
	collect := func(lists [][]int32) []span {
		var out []span
		intersectSpans(lists, func(lo, hi int32) { out = append(out, span{lo, hi}) })
		return out
	}
	cases := []struct {
		name  string
		lists [][]int32
		want  []span
	}{
		{"single", [][]int32{{0, 5, 9, 12}}, []span{{0, 5}, {9, 12}}},
		{"disjoint", [][]int32{{0, 5}, {5, 9}}, nil},
		{"nested", [][]int32{{0, 100}, {10, 20, 30, 40}}, []span{{10, 20}, {30, 40}}},
		{"partial", [][]int32{{0, 15}, {10, 20}}, []span{{10, 15}}},
		{"three", [][]int32{{0, 50}, {10, 40}, {20, 60}}, []span{{20, 40}}},
		{"empty-list", [][]int32{{0, 50}, {}}, nil},
		{"splinters", [][]int32{{0, 2, 4, 6, 8, 10}, {1, 9}}, []span{{1, 2}, {4, 6}, {8, 9}}},
	}
	for _, c := range cases {
		got := collect(c.lists)
		if len(got) != len(c.want) {
			t.Fatalf("%s: %v, want %v", c.name, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("%s: %v, want %v", c.name, got, c.want)
			}
		}
	}
}
