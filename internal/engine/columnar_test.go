package engine

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"cape/internal/value"
)

// The tests in this file pin every columnar kernel element-wise to the
// row-oriented reference implementation: the same table is evaluated
// twice, once through the default (columnar) path and once through a
// ForceRowPath clone, and the results must be byte-identical — same row
// order, same value kinds, same payload encodings.

// valueIdentical is stricter than value.Equal: the kinds and canonical
// encodings must both match, so Int(1) vs Float(1) — Equal but
// distinguishable — count as different.
func valueIdentical(a, b value.V) bool {
	return a.Kind() == b.Kind() && bytes.Equal(a.AppendKey(nil), b.AppendKey(nil))
}

func tablesIdentical(t *testing.T, got, want *Table, label string) {
	t.Helper()
	gs, ws := got.Schema().Names(), want.Schema().Names()
	if len(gs) != len(ws) {
		t.Fatalf("%s: schema width %d != %d", label, len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("%s: schema[%d] %q != %q", label, i, gs[i], ws[i])
		}
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%s: %d rows != %d rows\ngot:\n%swant:\n%s",
			label, got.NumRows(), want.NumRows(), got, want)
	}
	for ri := 0; ri < want.NumRows(); ri++ {
		gr, wr := got.Row(ri), want.Row(ri)
		for ci := range wr {
			if !valueIdentical(gr[ci], wr[ci]) {
				t.Fatalf("%s: row %d col %d: got %s (%s), want %s (%s)",
					label, ri, ci, gr[ci], gr[ci].Kind(), wr[ci], wr[ci].Kind())
			}
		}
	}
}

// randomValue draws from a small domain so that duplicates, ties across
// kinds (Int vs Float), NULLs, and pathological floats all occur.
func randomValue(rng *rand.Rand) value.V {
	switch rng.Intn(12) {
	case 0:
		return value.NewNull()
	case 1, 2, 3:
		return value.NewInt(int64(rng.Intn(6)))
	case 4:
		return value.NewFloat(float64(rng.Intn(6))) // Compare-equal to Ints
	case 5:
		return value.NewFloat(float64(rng.Intn(6)) + 0.5)
	case 6:
		return value.NewFloat(math.NaN())
	case 7:
		return value.NewInt(int64(1)<<53 + int64(rng.Intn(3))) // float-rounding collisions
	default:
		return value.NewString(fmt.Sprintf("s%d", rng.Intn(5)))
	}
}

func randomTable(rng *rand.Rand, n, width int) *Table {
	sch := make(Schema, width)
	for i := range sch {
		sch[i] = Column{Name: fmt.Sprintf("c%d", i), Kind: value.Null}
	}
	t := NewTable(sch)
	for r := 0; r < n; r++ {
		row := make(value.Tuple, width)
		for c := range row {
			row[c] = randomValue(rng)
		}
		t.MustAppend(row)
	}
	return t
}

func randomCols(rng *rand.Rand, t *Table, k int) []string {
	names := t.Schema().Names()
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	if k > len(names) {
		k = len(names)
	}
	return names[:k]
}

func randomAggs(rng *rand.Rand, t *Table) []AggSpec {
	names := t.Schema().Names()
	funcs := []AggFunc{Count, Sum, Avg, Min, Max}
	aggs := []AggSpec{{Func: Count}} // count(*)
	for i := 0; i < 1+rng.Intn(3); i++ {
		aggs = append(aggs, AggSpec{
			Func: funcs[rng.Intn(len(funcs))],
			Arg:  names[rng.Intn(len(names))],
		})
	}
	return aggs
}

func TestGroupByColumnarDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(200), 2+rng.Intn(3))
		ref := tab.Clone().ForceRowPath(true)
		for trial := 0; trial < 4; trial++ {
			cols := randomCols(rng, tab, 1+rng.Intn(3))
			aggs := randomAggs(rng, tab)
			got, err := tab.GroupBy(cols, aggs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.GroupBy(cols, aggs)
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, got, want,
				fmt.Sprintf("seed %d GroupBy(%v, %v)", seed, cols, aggs))
		}
	}
}

func TestSelectEqColumnarDifferential(t *testing.T) {
	pathological := []value.V{
		value.NewNull(),
		value.NewFloat(math.NaN()),
		value.NewInt(1 << 53),
		value.NewInt(1<<53 + 1),
		value.NewFloat(float64(int64(1) << 53)),
		value.NewFloat(2.5),
		value.NewString("absent"),
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(150), 2+rng.Intn(3))
		ref := tab.Clone().ForceRowPath(true)
		for trial := 0; trial < 8; trial++ {
			cols := randomCols(rng, tab, 1+rng.Intn(2))
			vals := make(value.Tuple, len(cols))
			for i, c := range cols {
				if tab.NumRows() > 0 && rng.Intn(3) > 0 {
					// Value present in the column (usually).
					ci := tab.Schema().Index(c)
					vals[i] = tab.Row(rng.Intn(tab.NumRows()))[ci]
				} else {
					vals[i] = pathological[rng.Intn(len(pathological))]
				}
			}
			got, err := tab.SelectEq(cols, vals)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.SelectEq(cols, vals)
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, got, want,
				fmt.Sprintf("seed %d SelectEq(%v, %s)", seed, cols, vals))
		}
	}
}

func TestCountDistinctColumnarDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(150), 2+rng.Intn(3))
		ref := tab.Clone().ForceRowPath(true)
		for trial := 0; trial < 4; trial++ {
			cols := randomCols(rng, tab, 1+rng.Intn(3))
			got, err := tab.CountDistinct(cols)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.CountDistinct(cols)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d CountDistinct(%v): got %d, want %d", seed, cols, got, want)
			}
			gotP, err := tab.DistinctProject(cols)
			if err != nil {
				t.Fatal(err)
			}
			wantP, err := ref.DistinctProject(cols)
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, gotP, wantP,
				fmt.Sprintf("seed %d DistinctProject(%v)", seed, cols))
		}
	}
}

func TestCubeColumnarDifferential(t *testing.T) {
	aggs := []AggSpec{{Func: Count}, {Func: Sum, Arg: "c0"}, {Func: Avg, Arg: "c1"}}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(80), 3)
		ref := tab.Clone().ForceRowPath(true)
		cols := []string{"c0", "c1", "c2"}
		got, err := tab.Cube(cols, 0, 3, aggs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Cube(cols, 0, 3, aggs)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, got, want, fmt.Sprintf("seed %d Cube", seed))

		for _, subset := range [][]string{{}, {"c1"}, {"c0", "c2"}, {"c0", "c1", "c2"}} {
			gs, err := CubeSlice(got, cols, subset, aggs)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := CubeSlice(want.Clone().ForceRowPath(true), cols, subset, aggs)
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, gs, ws, fmt.Sprintf("seed %d CubeSlice(%v)", seed, subset))
		}
	}
}

func TestSortCodesColumnarDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(150), 3)
		ref := tab.Clone().ForceRowPath(true)
		cols := tab.Schema().Names()
		got, err := BuildSortCodes(tab, cols)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BuildSortCodes(ref, cols)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cols {
			gc, wc := got.Codes(c), want.Codes(c)
			if len(gc) != len(wc) {
				t.Fatalf("seed %d col %s: %d codes != %d", seed, c, len(gc), len(wc))
			}
			for i := range wc {
				if gc[i] != wc[i] {
					t.Fatalf("seed %d col %s row %d: code %d != %d (value %s)",
						seed, c, i, gc[i], wc[i], tab.Row(i)[tab.Schema().Index(c)])
				}
			}
		}
		// Same codes must drive the counting sort to the same permutation.
		order := append([]string(nil), cols...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		gp, wp := got.NewPerm(), want.NewPerm()
		if err := got.SortPerm(gp, order, 0); err != nil {
			t.Fatal(err)
		}
		if err := want.SortPerm(wp, order, 0); err != nil {
			t.Fatal(err)
		}
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("seed %d SortPerm(%v) diverges at %d: %d != %d", seed, order, i, gp[i], wp[i])
			}
		}
	}
}

// TestColumnarInvalidation pins the cache rules: Append extends the
// columnar view in place (same Columnar, new rows visible), while SortBy
// drops it (and indexes), so later queries always see current rows.
func TestColumnarInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(rng, 50, 2)
	if _, err := tab.GroupBy([]string{"c0"}, []AggSpec{{Func: Count}}); err != nil {
		t.Fatal(err)
	}
	before := tab.Columns()
	tab.MustAppend(value.Tuple{value.NewString("fresh"), value.NewInt(99)})
	if tab.Columns() != before {
		t.Fatal("Append must extend the columnar view in place, not drop it")
	}
	if tab.Columns().NumRows() != 51 {
		t.Fatalf("extended columnar view has %d rows, want 51", tab.Columns().NumRows())
	}
	got, err := tab.SelectEq([]string{"c0"}, value.Tuple{value.NewString("fresh")})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 1 {
		t.Fatalf("appended row not visible through columnar SelectEq: got %d rows", got.NumRows())
	}

	before = tab.Columns()
	if err := tab.SortBy([]string{"c1"}); err != nil {
		t.Fatal(err)
	}
	if tab.Columns() == before {
		t.Fatal("SortBy did not invalidate the columnar view")
	}
	ref := tab.Clone().ForceRowPath(true)
	g1, err := tab.GroupBy([]string{"c0"}, []AggSpec{{Func: Count}})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ref.GroupBy([]string{"c0"}, []AggSpec{{Func: Count}})
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, g1, g2, "post-SortBy GroupBy")
}

// TestColumnarConcurrent hammers one table from many goroutines (run
// under -race by make check): the lazy column builds must be safe and
// every result identical to the precomputed reference.
func TestColumnarConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := randomTable(rng, 300, 4)
	ref := tab.Clone().ForceRowPath(true)
	cols := []string{"c0", "c1"}
	aggs := []AggSpec{{Func: Count}, {Func: Sum, Arg: "c2"}}
	wantG, err := ref.GroupBy(cols, aggs)
	if err != nil {
		t.Fatal(err)
	}
	wantN, err := ref.CountDistinct([]string{"c3"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				g, err := tab.GroupBy(cols, aggs)
				if err != nil {
					errs <- err.Error()
					return
				}
				if g.NumRows() != wantG.NumRows() {
					errs <- fmt.Sprintf("GroupBy rows %d != %d", g.NumRows(), wantG.NumRows())
					return
				}
				for ri := 0; ri < wantG.NumRows(); ri++ {
					for ci := range wantG.Row(ri) {
						if !valueIdentical(g.Row(ri)[ci], wantG.Row(ri)[ci]) {
							errs <- fmt.Sprintf("GroupBy cell %d/%d differs", ri, ci)
							return
						}
					}
				}
				n, err := tab.CountDistinct([]string{"c3"})
				if err != nil {
					errs <- err.Error()
					return
				}
				if n != wantN {
					errs <- fmt.Sprintf("CountDistinct %d != %d", n, wantN)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSelectEqUsesIndex proves a hash index built over the queried
// column set answers SelectEq with output identical to the scan paths,
// including column order permutations (indexes are canonical over the
// sorted column set) and absent keys.
func TestSelectEqUsesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := randomTable(rng, 200, 3)
	scan := tab.Clone().ForceRowPath(true)
	if err := tab.BuildIndex([]string{"c0", "c1"}); err != nil {
		t.Fatal(err)
	}
	if !tab.HasIndex([]string{"c1", "c0"}) {
		t.Fatal("index should be canonical over column order")
	}
	queries := make([]value.Tuple, 0, 24)
	for i := 0; i < 20; i++ {
		r := tab.Row(rng.Intn(tab.NumRows()))
		queries = append(queries, value.Tuple{r[0], r[1]})
	}
	queries = append(queries,
		value.Tuple{value.NewString("absent"), value.NewString("absent")},
		value.Tuple{value.NewNull(), value.NewInt(2)},
	)
	for _, q := range queries {
		got, err := tab.SelectEq([]string{"c0", "c1"}, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scan.SelectEq([]string{"c0", "c1"}, q)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, got, want, fmt.Sprintf("indexed SelectEq(%s)", q))
		// Swapped column order must hit the same index and agree too.
		swapped, err := tab.SelectEq([]string{"c1", "c0"}, value.Tuple{q[1], q[0]})
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, swapped, want, fmt.Sprintf("swapped indexed SelectEq(%s)", q))
	}
}

// FuzzColumnarKernels drives GroupBy, SelectEq and CountDistinct on a
// fuzz-shaped table through both paths and requires identical output.
func FuzzColumnarKernels(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(2))
	f.Add(int64(2), uint8(0), uint8(1))
	f.Add(int64(3), uint8(150), uint8(3))
	f.Add(int64(-9), uint8(63), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, n, width uint8) {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, int(n), 1+int(width%4))
		ref := tab.Clone().ForceRowPath(true)
		cols := randomCols(rng, tab, 1+rng.Intn(2))
		aggs := randomAggs(rng, tab)
		got, err := tab.GroupBy(cols, aggs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.GroupBy(cols, aggs)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, got, want, "fuzz GroupBy")
		var q value.Tuple
		ci := tab.Schema().Index(cols[0])
		if tab.NumRows() > 0 {
			q = value.Tuple{tab.Row(rng.Intn(tab.NumRows()))[ci]}
		} else {
			q = value.Tuple{value.NewInt(1)}
		}
		gs, err := tab.SelectEq(cols[:1], q)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := ref.SelectEq(cols[:1], q)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, gs, ws, "fuzz SelectEq")
		gn, err := tab.CountDistinct(cols)
		if err != nil {
			t.Fatal(err)
		}
		wn, err := ref.CountDistinct(cols)
		if err != nil {
			t.Fatal(err)
		}
		if gn != wn {
			t.Fatalf("fuzz CountDistinct: %d != %d", gn, wn)
		}
	})
}

func benchTable(n int) *Table {
	rng := rand.New(rand.NewSource(42))
	sch := Schema{
		{Name: "a", Kind: value.String},
		{Name: "b", Kind: value.Int},
		{Name: "m", Kind: value.Float},
	}
	t := NewTable(sch)
	for i := 0; i < n; i++ {
		t.MustAppend(value.Tuple{
			value.NewString(fmt.Sprintf("a%d", rng.Intn(200))),
			value.NewInt(int64(rng.Intn(50))),
			value.NewFloat(rng.Float64() * 100),
		})
	}
	return t
}

func BenchmarkGroupByPaths(b *testing.B) {
	aggs := []AggSpec{{Func: Count}, {Func: Sum, Arg: "m"}}
	cols := []string{"a", "b"}
	for _, mode := range []string{"columnar", "row"} {
		b.Run(mode, func(b *testing.B) {
			tab := benchTable(20000)
			tab.ForceRowPath(mode == "row")
			tab.Columns() // exclude the one-time encode from the row/columnar delta
			if mode == "columnar" {
				if _, err := tab.GroupBy(cols, aggs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tab.GroupBy(cols, aggs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectEqDrilldown measures repeated point lookups — the
// explain drill-down access pattern — through the three paths.
func BenchmarkSelectEqDrilldown(b *testing.B) {
	keys := make([]value.Tuple, 64)
	for mode, setup := range map[string]func(*Table){
		"indexed":  func(t *Table) { _ = t.BuildIndex([]string{"a"}) },
		"columnar": func(t *Table) { t.Columns() },
		"rowscan":  func(t *Table) { t.ForceRowPath(true) },
	} {
		b.Run(mode, func(b *testing.B) {
			tab := benchTable(20000)
			setup(tab)
			rng := rand.New(rand.NewSource(9))
			for i := range keys {
				keys[i] = value.Tuple{tab.Row(rng.Intn(tab.NumRows()))[0]}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tab.SelectEq([]string{"a"}, keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
