package engine

import (
	"fmt"
	"hash/fnv"

	"cape/internal/value"
)

// Partitioner assigns rows (and questions about them) to shards by
// hashing the row's values on a designated key attribute set — the
// "fragment key" of the sharded deployment. The contract that makes a
// sharded explanation byte-identical to a single-node one (DESIGN.md
// §15) is locality: every pattern served by the deployment has the key
// inside its partition attributes F, so a fragment's rows — and with
// them every candidate counterbalance t' with t'[F] = t[F], the NORM
// selection, and the question's own group — land on exactly one shard.
//
// The hash is FNV-1a over the values' canonical key encoding
// (value.AppendKey), so it is stable across processes, platforms, and
// restarts — a requirement for routing appends to the shard that owns
// the rows it already holds. Int(7) and Float(7.0) hash identically
// because AppendKey encodes them identically, matching the engine's
// grouping equality.
type Partitioner struct {
	// Key names the shard-key attributes, in the order their values are
	// hashed. Order matters for the hash; keep it fixed per deployment.
	Key []string
	// N is the shard count. Must be ≥ 1.
	N int
}

// Validate rejects unusable partitioners.
func (p Partitioner) Validate() error {
	if len(p.Key) == 0 {
		return fmt.Errorf("engine: partitioner needs at least one key attribute")
	}
	seen := make(map[string]bool, len(p.Key))
	for _, a := range p.Key {
		if seen[a] {
			return fmt.Errorf("engine: duplicate partition key attribute %q", a)
		}
		seen[a] = true
	}
	if p.N < 1 {
		return fmt.Errorf("engine: partitioner shard count %d must be ≥ 1", p.N)
	}
	return nil
}

// ShardOf maps a key tuple (the values of the Key attributes, in Key
// order) to its owning shard index in [0, N).
func (p Partitioner) ShardOf(key value.Tuple) int {
	h := fnv.New64a()
	var buf [64]byte
	_, _ = h.Write(key.AppendKey(buf[:0]))
	return int(h.Sum64() % uint64(p.N))
}

// KeyIndices resolves the key attributes against a schema, for routing
// whole rows.
func (p Partitioner) KeyIndices(s Schema) ([]int, error) {
	return s.Indices(p.Key)
}

// ShardOfRow maps a full row to its shard via precomputed key column
// indices (from KeyIndices).
func (p Partitioner) ShardOfRow(row value.Tuple, keyIdx []int) int {
	h := fnv.New64a()
	var buf [64]byte
	b := buf[:0]
	for _, ci := range keyIdx {
		b = row[ci].AppendKey(b)
	}
	_, _ = h.Write(b)
	return int(h.Sum64() % uint64(p.N))
}

// PartitionRows splits rows into per-shard groups, preserving the input
// order within each shard — the property keyed append routing relies on:
// replaying every shard's sub-batches in order reproduces the prefix of
// the global append history that shard owns.
func (p Partitioner) PartitionRows(rows []value.Tuple, keyIdx []int) [][]value.Tuple {
	out := make([][]value.Tuple, p.N)
	for _, row := range rows {
		s := p.ShardOfRow(row, keyIdx)
		out[s] = append(out[s], row)
	}
	return out
}

// PartitionTable splits a table's rows into N per-shard tables with the
// same schema (used when bootstrapping a sharded deployment from one
// CSV). Row order within each shard follows the input table.
func (p Partitioner) PartitionTable(t *Table) ([]*Table, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	keyIdx, err := p.KeyIndices(t.Schema())
	if err != nil {
		return nil, err
	}
	parts := make([]*Table, p.N)
	for i := range parts {
		parts[i] = NewTable(t.Schema())
	}
	for _, row := range t.Rows() {
		s := p.ShardOfRow(row, keyIdx)
		if err := parts[s].Append(row); err != nil {
			return nil, err
		}
	}
	return parts, nil
}
