package engine

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cape/internal/value"
)

// Segment tests use kind-pure columns: codes identify AppendKey classes,
// so a column mixing Int(1) and Float(1.0) reads back as the class
// representative (documented canonicalization). Kind-pure columns — what
// value.Parse and the dataset generators produce — round-trip exactly,
// which is the byte-identity contract these tests pin.

// typedRandomTable builds a table whose columns each stick to one kind
// (with NULLs mixed in), exercising RLE-friendly low-cardinality columns
// and pack-friendly high-cardinality ones.
func typedRandomTable(rng *rand.Rand, n, width int) *Table {
	sch := make(Schema, width)
	gens := make([]func() value.V, width)
	for i := range sch {
		sch[i] = Column{Name: fmt.Sprintf("c%d", i), Kind: value.Null}
		switch rng.Intn(5) {
		case 0: // low-cardinality ints (long runs, RLE)
			gens[i] = func() value.V { return value.NewInt(int64(rng.Intn(3))) }
		case 1: // high-cardinality ints (bit-packed)
			gens[i] = func() value.V { return value.NewInt(int64(rng.Intn(50))) }
		case 2: // floats, including integral ones and NaN
			gens[i] = func() value.V {
				switch rng.Intn(4) {
				case 0:
					return value.NewFloat(float64(rng.Intn(4))) // integral float
				case 1:
					return value.NewFloat(math.NaN())
				default:
					return value.NewFloat(float64(rng.Intn(6)) + 0.5)
				}
			}
		case 3: // mixed int/float numeric (cross-part Sum kind rules);
			// non-integral floats keep the kinds AppendKey-disjoint so
			// canonicalization never rewrites a value.
			gens[i] = func() value.V {
				if rng.Intn(3) > 0 {
					return value.NewInt(int64(rng.Intn(5)))
				}
				return value.NewFloat(float64(rng.Intn(5)) + 0.25)
			}
		default: // strings
			gens[i] = func() value.V { return value.NewString(fmt.Sprintf("s%d", rng.Intn(5))) }
		}
	}
	t := NewTable(sch)
	for r := 0; r < n; r++ {
		row := make(value.Tuple, width)
		for c := range row {
			if rng.Intn(8) == 0 {
				row[c] = value.NewNull()
			} else {
				row[c] = gens[c]()
			}
		}
		if err := t.Append(row); err != nil {
			panic(err)
		}
	}
	return t
}

// segTableFromTable splits tab's rows into nSegs sealed segments plus a
// tail holding the remainder.
func segTableFromTable(t *testing.T, tab *Table, nSegs int) *SegTable {
	t.Helper()
	st := NewSegTable(tab.Schema())
	rows := tab.Rows()
	n := len(rows)
	cut := 0
	for s := 0; s < nSegs; s++ {
		next := (s + 1) * n / (nSegs + 1)
		w := NewSegmentWriter(tab.Schema())
		if err := w.AppendRows(rows[cut:next]); err != nil {
			t.Fatal(err)
		}
		if err := st.AddSegment(w.Segment()); err != nil {
			t.Fatal(err)
		}
		cut = next
	}
	if err := st.AppendRows(rows[cut:]); err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != n {
		t.Fatalf("segTableFromTable: %d rows, want %d", st.NumRows(), n)
	}
	return st
}

// checkSegTable runs the full operator surface of st against the
// row-path reference table and requires byte-identical results.
func checkSegTable(t *testing.T, rng *rand.Rand, st *SegTable, tab *Table, label string) {
	t.Helper()
	ref := tab.Clone().ForceRowPath(true)

	// Row materialization.
	var i int
	err := st.ScanRows(0, st.NumRows(), func(row value.Tuple) error {
		want := tab.Row(i)
		for c := range row {
			if !valueIdentical(row[c], want[c]) {
				return fmt.Errorf("row %d col %d: %s != %s", i, c, row[c], want[c])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("%s: ScanRows: %v", label, err)
	}
	if i != tab.NumRows() {
		t.Fatalf("%s: ScanRows visited %d rows, want %d", label, i, tab.NumRows())
	}

	for trial := 0; trial < 4; trial++ {
		cols := randomCols(rng, tab, 1+rng.Intn(2))
		aggs := randomAggs(rng, tab)
		got, err := st.GroupBy(cols, aggs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.GroupBy(cols, aggs)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, got, want, fmt.Sprintf("%s GroupBy(%v, %v)", label, cols, aggs))

		vals := make(value.Tuple, len(cols))
		for vi, c := range cols {
			if tab.NumRows() > 0 && rng.Intn(4) > 0 {
				vals[vi] = tab.Row(rng.Intn(tab.NumRows()))[c2i(tab, c)]
			} else {
				vals[vi] = value.NewString("absent")
			}
		}
		gotS, err := st.SelectEq(cols, vals)
		if err != nil {
			t.Fatal(err)
		}
		wantS, err := ref.SelectEq(cols, vals)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, gotS, wantS, fmt.Sprintf("%s SelectEq(%v, %s)", label, cols, vals))

		gotC, err := st.CountDistinct(cols)
		if err != nil {
			t.Fatal(err)
		}
		wantC, err := ref.CountDistinct(cols)
		if err != nil {
			t.Fatal(err)
		}
		if gotC != wantC {
			t.Fatalf("%s CountDistinct(%v): got %d, want %d", label, cols, gotC, wantC)
		}

		gotD, err := st.DistinctProject(cols)
		if err != nil {
			t.Fatal(err)
		}
		wantD, err := ref.DistinctProject(cols)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, gotD, wantD, fmt.Sprintf("%s DistinctProject(%v)", label, cols))
	}

	cubeCols := tab.Schema().Names()
	if len(cubeCols) > 3 {
		cubeCols = cubeCols[:3]
	}
	cubeAggs := []AggSpec{{Func: Count}, {Func: Sum, Arg: cubeCols[0]}}
	gotCube, err := st.Cube(cubeCols, 0, len(cubeCols), cubeAggs)
	if err != nil {
		t.Fatal(err)
	}
	wantCube, err := ref.Cube(cubeCols, 0, len(cubeCols), cubeAggs)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, gotCube, wantCube, label+" Cube")
}

func c2i(t *Table, col string) int { return t.Schema().Index(col) }

func TestSegTableDifferential(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := typedRandomTable(rng, rng.Intn(250), 2+rng.Intn(3))
		for _, nSegs := range []int{0, 1, 3} {
			st := segTableFromTable(t, tab, nSegs)
			checkSegTable(t, rng, st, tab,
				fmt.Sprintf("seed %d segs %d", seed, nSegs))
		}
	}
}

func TestSegTableAppendCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := typedRandomTable(rng, 150, 3)
	rows := tab.Rows()

	st := NewSegTable(tab.Schema())
	w := NewSegmentWriter(tab.Schema())
	if err := w.AppendRows(rows[:60]); err != nil {
		t.Fatal(err)
	}
	if err := st.AddSegment(w.Segment()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRows(rows[60:100]); err != nil {
		t.Fatal(err)
	}

	// Segments cannot land behind a non-empty tail (row order).
	w2 := NewSegmentWriter(tab.Schema())
	if err := w2.AppendRows(rows[100:110]); err != nil {
		t.Fatal(err)
	}
	if err := st.AddSegment(w2.Segment()); err == nil {
		t.Fatal("AddSegment behind a non-empty tail must fail")
	}

	epoch := st.Epoch()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() == epoch {
		t.Fatal("Compact must bump the epoch")
	}
	if st.TailRows() != 0 || st.NumSegments() != 2 {
		t.Fatalf("after Compact: %d tail rows, %d segments", st.TailRows(), st.NumSegments())
	}
	if err := st.AddSegment(w2.Segment()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRows(rows[110:]); err != nil {
		t.Fatal(err)
	}

	sub := NewTable(tab.Schema())
	if err := sub.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	checkSegTable(t, rng, st, sub, "append+compact")

	// Seal the remaining tail, then verify compacting an empty tail is
	// a no-op.
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.TailRows() != 0 || st.NumSegments() != 4 {
		t.Fatalf("after final Compact: %d tail rows, %d segments", st.TailRows(), st.NumSegments())
	}
	epoch = st.Epoch()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.NumSegments() != 4 || st.Epoch() != epoch {
		t.Fatal("empty Compact must not add segments or bump the epoch")
	}
}

func TestSegmentFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := typedRandomTable(rng, rng.Intn(200), 2+rng.Intn(3))
		w := NewSegmentWriter(tab.Schema())
		if err := w.AppendRows(tab.Rows()); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("seg%d.seg", seed))
		if err := w.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		st, err := OpenSegTable(path)
		if err != nil {
			t.Fatal(err)
		}
		checkSegTable(t, rng, st, tab, fmt.Sprintf("file seed %d", seed))
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSegmentCorruptionRejected flips bytes all over a segment file and
// requires OpenSegment to reject every mutation — the format has no
// unchecksummed bytes.
func TestSegmentCorruptionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := typedRandomTable(rng, 80, 3)
	w := NewSegmentWriter(tab.Schema())
	if err := w.AppendRows(tab.Rows()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.seg")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openSegmentBytes(orig); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	step := 1
	if len(orig) > 4096 {
		step = len(orig) / 4096
	}
	for off := 0; off < len(orig); off += step {
		mut := make([]byte, len(orig))
		copy(mut, orig)
		mut[off] ^= 0x40
		if seg, err := openSegmentBytes(mut); err == nil {
			seg.Close()
			t.Fatalf("byte flip at offset %d/%d accepted", off, len(orig))
		}
	}
	// Truncations must be rejected too.
	for _, cut := range []int{1, 8, len(orig) / 2, len(orig) - 1} {
		if seg, err := openSegmentBytes(orig[:len(orig)-cut]); err == nil {
			seg.Close()
			t.Fatalf("truncation by %d bytes accepted", cut)
		}
	}
}

func TestSegmentVersionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := typedRandomTable(rng, 20, 2)
	w := NewSegmentWriter(tab.Schema())
	if err := w.AppendRows(tab.Rows()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v.seg")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[7] = '2' // future format magic "CAPESEG2"
	if _, err := openSegmentBytes(data); err == nil {
		t.Fatal("future-version magic accepted")
	}
}

// TestSegmentDictCanonicalization pins the documented caveat: mixed-kind
// AppendKey-equal values read back as the class representative, equal
// under AppendKey though not bitwise.
func TestSegmentDictCanonicalization(t *testing.T) {
	sch := Schema{{Name: "x", Kind: value.Null}}
	w := NewSegmentWriter(sch)
	rows := []value.Tuple{
		{value.NewFloat(1.0)},
		{value.NewInt(1)},
	}
	if err := w.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	seg := w.Segment()
	got := seg.AppendRowAt(1, nil)[0]
	if got.Kind() != value.Float {
		t.Fatalf("row 1 reads back as %s; want the class representative Float(1.0)", got)
	}
	if value.Compare(got, rows[1][0]) != 0 {
		t.Fatalf("representative %s not Compare-equal to original %s", got, rows[1][0])
	}
}

// TestSegTableCrossPartMixedSum pins the cross-part Sum kind rule: a
// float row in ANY part makes the reference Sum return Float(sumF), so
// int runs in float-free parts must still fold into sumF (hasFloat is a
// per-part property, anyFloat a global one). Before the fix, the
// all-int part's contribution was dropped: sum 1.5 instead of 31.5.
func TestSegTableCrossPartMixedSum(t *testing.T) {
	sch := Schema{{Name: "g", Kind: value.Null}, {Name: "v", Kind: value.Null}}
	intRows := []value.Tuple{
		{value.NewString("a"), value.NewInt(10)},
		{value.NewString("a"), value.NewInt(20)},
	}
	floatRows := []value.Tuple{
		{value.NewString("a"), value.NewFloat(1.5)},
	}
	layouts := []struct {
		name      string
		seg, tail []value.Tuple
	}{
		{"ints sealed, float in tail", intRows, floatRows},
		{"float sealed, ints in tail", floatRows, intRows},
	}
	aggs := []AggSpec{{Func: Sum, Arg: "v"}, {Func: Avg, Arg: "v"}}
	for _, l := range layouts {
		st := NewSegTable(sch)
		w := NewSegmentWriter(sch)
		if err := w.AppendRows(l.seg); err != nil {
			t.Fatal(err)
		}
		if err := st.AddSegment(w.Segment()); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendRows(l.tail); err != nil {
			t.Fatal(err)
		}
		ref := NewTable(sch)
		if err := ref.AppendRows(append(append([]value.Tuple{}, l.seg...), l.tail...)); err != nil {
			t.Fatal(err)
		}
		ref.ForceRowPath(true)
		got, err := st.GroupBy([]string{"g"}, aggs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.GroupBy([]string{"g"}, aggs)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, got, want, l.name)
		sum := got.Row(0)[1]
		if sum.Kind() != value.Float || sum.Float() != 31.5 {
			t.Fatalf("%s: sum = %s, want Float(31.5)", l.name, sum)
		}
	}
}

// TestDecodeSegColRejectsBadRunEnds crafts an RLE block whose run ends
// are non-monotonic — CRC-consistent corruption the checksums cannot
// catch — and requires decodeSegCol to reject it rather than let the run
// cursor or CodeAt index out of range later.
func TestDecodeSegColRejectsBadRunEnds(t *testing.T) {
	dict := make([]value.V, 16) // large dict ⇒ encodeBlock picks RLE
	for i := range dict {
		dict[i] = value.NewInt(int64(i))
	}
	for _, bad := range [][]int32{
		{60, 50, 100}, // decreasing
		{50, 50, 100}, // repeated
		{0, 50, 100},  // zero-length first run
		{-4, 50, 100}, // negative
	} {
		cb := segColBuilder{dict: dict, runEnds: bad, runCodes: []int32{0, 1, 2}}
		blk := cb.encodeBlock(100)
		if _, err := decodeSegCol(blk, 100); err == nil {
			t.Fatalf("run ends %v accepted", bad)
		}
	}
	good := segColBuilder{dict: dict, runEnds: []int32{50, 60, 100}, runCodes: []int32{0, 1, 2}}
	if _, err := decodeSegCol(good.encodeBlock(100), 100); err != nil {
		t.Fatalf("well-formed block rejected: %v", err)
	}
}

// TestSegmentCraftedOffsetsRejected patches a footer entry to a huge
// offset whose off+length wraps around uint64, recomputes the footer CRC
// so every checksum still verifies, and requires open to fail cleanly
// instead of panicking on an out-of-range slice.
func TestSegmentCraftedOffsetsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tab := typedRandomTable(rng, 40, 2)
	w := NewSegmentWriter(tab.Schema())
	if err := w.AppendRows(tab.Rows()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "o.seg")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const tailLen = 24
	footerOff := binary.LittleEndian.Uint64(data[len(data)-16:])
	ents := data[footerOff : len(data)-tailLen]
	binary.LittleEndian.PutUint64(ents[0:], ^uint64(0)) // off+length wraps to 1
	binary.LittleEndian.PutUint64(ents[8:], 2)
	binary.LittleEndian.PutUint32(data[len(data)-20:], crc32.Checksum(ents, segCRC))
	if seg, err := openSegmentBytes(data); err == nil {
		seg.Close()
		t.Fatal("wrapping column offset accepted")
	}
}

// TestSegTableMinMaxNaN exercises the materialize fallback: Min/Max over
// a NaN-containing column declines the compressed path but still matches
// the reference.
func TestSegTableMinMaxNaN(t *testing.T) {
	sch := Schema{{Name: "g", Kind: value.Null}, {Name: "v", Kind: value.Null}}
	tab := NewTable(sch)
	rows := []value.Tuple{
		{value.NewString("a"), value.NewFloat(2.5)},
		{value.NewString("a"), value.NewFloat(math.NaN())},
		{value.NewString("b"), value.NewFloat(1.5)},
		{value.NewString("b"), value.NewFloat(3.5)},
	}
	if err := tab.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	st := segTableFromTable(t, tab, 1)
	ref := tab.Clone().ForceRowPath(true)
	aggs := []AggSpec{{Func: Min, Arg: "v"}, {Func: Max, Arg: "v"}}
	got, err := st.GroupBy([]string{"g"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.GroupBy([]string{"g"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, got, want, "NaN Min/Max")
}
