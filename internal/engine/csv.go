package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"cape/internal/value"
)

// ReadCSV loads a table from CSV data. The first record is the header;
// each field is parsed to the most specific value kind (int, float, then
// string; empty fields become NULL). Columns are untyped so mixed-kind
// columns load without error.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: reading CSV header: %w", err)
	}
	sch := make(Schema, len(header))
	for i, name := range header {
		sch[i] = Column{Name: name, Kind: value.Null}
	}
	t := NewTable(sch)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("engine: reading CSV row: %w", err)
		}
		row := make(value.Tuple, len(rec))
		for i, f := range rec {
			row[i] = value.Parse(f)
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile loads a table from the named CSV file.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV writes the table as CSV with a header row. NULL values render
// as empty fields.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return err
	}
	rec := make([]string, len(t.schema))
	for _, r := range t.rows {
		for i, v := range r {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the named file, creating or truncating
// it.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
