//go:build unix

package engine

import (
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the bytes plus an unmap
// closer. Empty files return a nil mapping (mmap of length 0 fails on
// some platforms).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(st.Size())
	if size == 0 {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
