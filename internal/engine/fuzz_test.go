package engine

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV loader never panics: arbitrary input either
// loads into a well-formed table or fails with an error.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"a,b\n1,2\n",
		"a\n\n",
		"x,y,z\nfoo,2.5,\n,,\n",
		"h\n\"quoted,comma\"\n",
		"a,b\n1\n", // ragged
		"",
		"\xff\xfe",
		"a,a\n1,2\n", // duplicate column names
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		tab, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Loaded tables must be structurally sound: every row matches the
		// schema arity.
		for i, r := range tab.Rows() {
			if len(r) != len(tab.Schema()) {
				t.Fatalf("row %d arity %d != schema %d", i, len(r), len(tab.Schema()))
			}
		}
		// And they must round-trip through the writer without error.
		var sb strings.Builder
		if err := tab.WriteCSV(&sb); err != nil {
			t.Fatalf("WriteCSV on loaded table: %v", err)
		}
	})
}
