package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cape/internal/value"
)

// These tests pin the compressed kernels (CompressColumns dispatch) to
// the row-oriented reference exactly like the columnar differential
// suite: same tables, same queries, byte-identical results. The
// compressed paths additionally cross-check against the plain columnar
// path so a divergence is attributable.

// compressedClone returns a clone of tab with compressed views over all
// columns.
func compressedClone(t *testing.T, tab *Table) *Table {
	t.Helper()
	c := tab.Clone()
	if err := c.CompressColumns(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompressedColRoundTrip(t *testing.T) {
	cases := [][]int32{
		nil,
		{0},
		{0, 0, 0, 0, 0}, // single-value run
		{0, 1, 0, 1, 0, 1},
		{2, 2, 1, 1, 0, 0, 2},
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(300)
		d := 1 + rng.Intn(9)
		codes := make([]int32, n)
		for i := range codes {
			if rng.Intn(4) == 0 && i > 0 {
				codes[i] = codes[i-1] // encourage runs
			} else {
				codes[i] = int32(rng.Intn(d))
			}
		}
		cases = append(cases, codes)
	}
	for ci, codes := range cases {
		maxCode := int32(-1)
		for _, c := range codes {
			if c > maxCode {
				maxCode = c
			}
		}
		dict := make([]value.V, maxCode+1)
		for i := range dict {
			dict[i] = value.NewInt(int64(i))
		}
		cc := compressCodes(codes, dict)
		if cc.NumRows() != len(codes) {
			t.Fatalf("case %d: NumRows %d != %d", ci, cc.NumRows(), len(codes))
		}
		// Random access.
		for i, want := range codes {
			if got := cc.CodeAt(i); got != want {
				t.Fatalf("case %d (%s): CodeAt(%d) = %d, want %d", ci, cc.EncodingName(), i, got, want)
			}
		}
		// Sequential run cursor must cover every row with the right code
		// and strictly advancing run ends.
		var cur runCur
		cur.init(cc)
		for pos := int32(0); pos < int32(len(codes)); pos = cur.end {
			cur.seek(pos)
			if cur.end <= pos {
				t.Fatalf("case %d: run end %d did not advance past %d", ci, cur.end, pos)
			}
			for r := pos; r < cur.end; r++ {
				if codes[r] != cur.code {
					t.Fatalf("case %d: run code %d at row %d, want %d", ci, cur.code, r, codes[r])
				}
			}
		}
		// The alternative encoding must agree too.
		alt := &CompressedCol{n: len(codes), dict: dict}
		alt.buildDictMeta()
		if cc.encoding() == encRLE {
			alt.bitWidth = bitWidthFor(len(dict))
			alt.packed = packCodes(codes, alt.bitWidth)
		} else {
			alt.runEnds, alt.runCodes = rleRuns(codes)
		}
		for i, want := range codes {
			if got := alt.CodeAt(i); got != want {
				t.Fatalf("case %d (%s alt): CodeAt(%d) = %d, want %d", ci, alt.EncodingName(), i, got, want)
			}
		}
	}
}

func TestPackRunsMatchesPackCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		d := 1 + rng.Intn(1000)
		codes := make([]int32, n)
		for i := range codes {
			codes[i] = int32(rng.Intn(d))
		}
		bw := bitWidthFor(d)
		dense := packCodes(codes, bw)
		ends, runs := rleRuns(codes)
		fromRuns := packRuns(ends, runs, bw)
		if len(dense) != len(fromRuns) {
			t.Fatalf("trial %d: packed lengths differ: %d != %d", trial, len(dense), len(fromRuns))
		}
		for i := range dense {
			if dense[i] != fromRuns[i] {
				t.Fatalf("trial %d: packed bytes differ at %d", trial, i)
			}
		}
	}
}

func TestGroupByCompressedDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(200), 2+rng.Intn(3))
		comp := compressedClone(t, tab)
		ref := tab.Clone().ForceRowPath(true)
		for trial := 0; trial < 4; trial++ {
			cols := randomCols(rng, tab, 1+rng.Intn(3))
			aggs := randomAggs(rng, tab)
			got, err := comp.GroupBy(cols, aggs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.GroupBy(cols, aggs)
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, got, want,
				fmt.Sprintf("seed %d compressed GroupBy(%v, %v)", seed, cols, aggs))
			col, err := tab.GroupBy(cols, aggs)
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, got, col,
				fmt.Sprintf("seed %d compressed-vs-columnar GroupBy(%v, %v)", seed, cols, aggs))
		}
	}
}

func TestSelectEqCompressedDifferential(t *testing.T) {
	pathological := []value.V{
		value.NewNull(),
		value.NewFloat(math.NaN()),
		value.NewInt(1 << 53),
		value.NewInt(1<<53 + 1),
		value.NewFloat(float64(int64(1) << 53)),
		value.NewFloat(2.5),
		value.NewString("absent"),
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(150), 2+rng.Intn(3))
		comp := compressedClone(t, tab)
		ref := tab.Clone().ForceRowPath(true)
		for trial := 0; trial < 8; trial++ {
			cols := randomCols(rng, tab, 1+rng.Intn(2))
			vals := make(value.Tuple, len(cols))
			for i, c := range cols {
				if tab.NumRows() > 0 && rng.Intn(3) > 0 {
					ci := tab.Schema().Index(c)
					vals[i] = tab.Row(rng.Intn(tab.NumRows()))[ci]
				} else {
					vals[i] = pathological[rng.Intn(len(pathological))]
				}
			}
			got, err := comp.SelectEq(cols, vals)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.SelectEq(cols, vals)
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, got, want,
				fmt.Sprintf("seed %d compressed SelectEq(%v, %s)", seed, cols, vals))
		}
	}
}

func TestCountDistinctCompressedDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(150), 2+rng.Intn(3))
		comp := compressedClone(t, tab)
		ref := tab.Clone().ForceRowPath(true)
		for trial := 0; trial < 4; trial++ {
			cols := randomCols(rng, tab, 1+rng.Intn(3))
			got, err := comp.CountDistinct(cols)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.CountDistinct(cols)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d compressed CountDistinct(%v): got %d, want %d", seed, cols, got, want)
			}
		}
	}
}

func TestCubeCompressedDifferential(t *testing.T) {
	aggs := []AggSpec{{Func: Count}, {Func: Sum, Arg: "c0"}, {Func: Avg, Arg: "c1"}}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, rng.Intn(80), 3)
		comp := compressedClone(t, tab)
		ref := tab.Clone().ForceRowPath(true)
		cols := []string{"c0", "c1", "c2"}
		got, err := comp.Cube(cols, 0, 3, aggs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Cube(cols, 0, 3, aggs)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, got, want, fmt.Sprintf("seed %d compressed Cube", seed))
	}
}

// TestStaleCompressedViewInvalidation is the satellite-1 regression: a
// compressed view built before an append must never serve the longer
// table. Appends drop the views; queries issued in between fall back to
// the (extended-in-place) columnar path and see every row.
func TestStaleCompressedViewInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := randomTable(rng, 120, 3)
	if err := tab.CompressColumns(); err != nil {
		t.Fatal(err)
	}
	cols := []string{"c0"}
	aggs := []AggSpec{{Func: Count}, {Func: Sum, Arg: "c1"}}
	before, err := tab.GroupBy(cols, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if before.NumRows() == 0 {
		t.Fatal("empty grouped result")
	}

	// Append a batch; the compressed views must be invalidated (not
	// silently reused at their old length).
	batch := make([]value.Tuple, 40)
	for i := range batch {
		row := make(value.Tuple, 3)
		for c := range row {
			row[c] = randomValue(rng)
		}
		batch[i] = row
	}
	if err := tab.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	c := tab.Columns()
	for ci := range tab.Schema() {
		if cc := c.Compressed(ci); cc != nil && cc.NumRows() != tab.NumRows() {
			t.Fatalf("column %d: stale compressed view (%d rows) survived append to %d rows",
				ci, cc.NumRows(), tab.NumRows())
		}
	}

	ref := tab.Clone().ForceRowPath(true)
	got, err := tab.GroupBy(cols, aggs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.GroupBy(cols, aggs)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, got, want, "post-append GroupBy")

	// Rebuilding the views over the longer table works and agrees.
	if err := tab.CompressColumns(); err != nil {
		t.Fatal(err)
	}
	got2, err := tab.GroupBy(cols, aggs)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, got2, want, "recompressed GroupBy")
}

func FuzzCompressedKernels(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(3), uint8(1))
	}
	f.Fuzz(func(t *testing.T, seed int64, n, k uint8) {
		rng := rand.New(rand.NewSource(seed))
		tab := randomTable(rng, int(n), 2+int(k%3))
		comp := compressedClone(t, tab)
		ref := tab.Clone().ForceRowPath(true)
		cols := randomCols(rng, tab, 1+int(k%2))
		aggs := randomAggs(rng, tab)

		got, err := comp.GroupBy(cols, aggs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.GroupBy(cols, aggs)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, got, want, "fuzz compressed GroupBy")

		if tab.NumRows() > 0 {
			ci := tab.Schema().Index(cols[0])
			val := tab.Row(rng.Intn(tab.NumRows()))[ci]
			gotS, err := comp.SelectEq(cols[:1], value.Tuple{val})
			if err != nil {
				t.Fatal(err)
			}
			wantS, err := ref.SelectEq(cols[:1], value.Tuple{val})
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, gotS, wantS, "fuzz compressed SelectEq")
		}
	})
}
