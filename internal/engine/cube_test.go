package engine

import (
	"testing"

	"cape/internal/value"
)

func TestCubeCoversAllSubsets(t *testing.T) {
	tab := pubTable(t)
	cols := []string{"author", "year", "venue"}
	aggs := []AggSpec{{Func: Count}}
	cube, err := tab.Cube(cols, 1, 3, aggs)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct grouping bitmasks = number of subsets of size 1..3 = 7.
	gIdx := cube.Schema().Index(GroupingColumn)
	masks := map[int64]bool{}
	for _, r := range cube.Rows() {
		masks[r[gIdx].Int()] = true
	}
	if len(masks) != 7 {
		t.Errorf("distinct groupings = %d, want 7", len(masks))
	}
}

func TestCubeSliceMatchesGroupBy(t *testing.T) {
	tab := pubTable(t)
	cols := []string{"author", "year", "venue"}
	aggs := []AggSpec{{Func: Count}}
	cube, err := tab.Cube(cols, 1, 3, aggs)
	if err != nil {
		t.Fatal(err)
	}
	for _, subset := range [][]string{
		{"author"}, {"year"}, {"venue"},
		{"author", "year"}, {"author", "venue"}, {"year", "venue"},
		{"author", "year", "venue"},
	} {
		slice, err := CubeSlice(cube, cols, subset, aggs)
		if err != nil {
			t.Fatalf("slice %v: %v", subset, err)
		}
		direct, err := tab.GroupBy(subset, aggs)
		if err != nil {
			t.Fatal(err)
		}
		if slice.NumRows() != direct.NumRows() {
			t.Fatalf("slice %v: %d rows, group-by has %d", subset, slice.NumRows(), direct.NumRows())
		}
		// Compare as multisets via sorted string rendering.
		s1, _ := slice.Sorted(subset)
		s2, _ := direct.Sorted(subset)
		for i := range s1.Rows() {
			if !s1.Row(i).Equal(s2.Row(i)) {
				t.Errorf("slice %v row %d: %v vs %v", subset, i, s1.Row(i), s2.Row(i))
			}
		}
	}
}

func TestCubeSizeBounds(t *testing.T) {
	tab := pubTable(t)
	cols := []string{"author", "year", "venue"}
	cube, err := tab.Cube(cols, 2, 2, []AggSpec{{Func: Count}})
	if err != nil {
		t.Fatal(err)
	}
	gIdx := cube.Schema().Index(GroupingColumn)
	masks := map[int64]bool{}
	for _, r := range cube.Rows() {
		masks[r[gIdx].Int()] = true
	}
	if len(masks) != 3 { // C(3,2) subsets
		t.Errorf("distinct size-2 groupings = %d, want 3", len(masks))
	}
}

func TestCubeInvalidBounds(t *testing.T) {
	tab := pubTable(t)
	if _, err := tab.Cube([]string{"author"}, 2, 1, nil); err == nil {
		t.Error("min>max should error")
	}
	if _, err := tab.Cube([]string{"author"}, 0, 5, nil); err == nil {
		t.Error("max beyond column count should error")
	}
	if _, err := tab.Cube([]string{"ghost"}, 1, 1, nil); err == nil {
		t.Error("unknown column should error")
	}
}

func TestCubeSliceErrors(t *testing.T) {
	tab := pubTable(t)
	cols := []string{"author", "year"}
	aggs := []AggSpec{{Func: Count}}
	cube, err := tab.Cube(cols, 1, 2, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CubeSlice(cube, cols, []string{"venue"}, aggs); err == nil {
		t.Error("subset outside cube columns should error")
	}
	if _, err := CubeSlice(tab, cols, []string{"author"}, aggs); err == nil {
		t.Error("non-cube table should error (no grouping column)")
	}
	if _, err := CubeSlice(cube, cols, []string{"author"}, []AggSpec{{Func: Sum, Arg: "zz"}}); err == nil {
		t.Error("missing aggregate column should error")
	}
}

func TestCubeNullGroupValueDistinctFromRollup(t *testing.T) {
	// A genuine NULL group value must not be confused with a rolled-up
	// column: the grouping bitmask distinguishes them.
	tab := NewTable(Schema{{Name: "a", Kind: value.Null}, {Name: "b", Kind: value.Null}})
	tab.MustAppend(value.Tuple{value.NewNull(), value.NewInt(1)})
	tab.MustAppend(value.Tuple{value.NewString("x"), value.NewInt(2)})
	aggs := []AggSpec{{Func: Count}}
	cube, err := tab.Cube([]string{"a", "b"}, 1, 2, aggs)
	if err != nil {
		t.Fatal(err)
	}
	slice, err := CubeSlice(cube, []string{"a", "b"}, []string{"a"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if slice.NumRows() != 2 {
		t.Fatalf("grouping on a should yield 2 groups (NULL and x), got %d", slice.NumRows())
	}
}

// TestCubeSliceMatchesGroupByAllAggregates extends the count-only check
// to sum/avg/min/max over a numeric column.
func TestCubeSliceMatchesGroupByAllAggregates(t *testing.T) {
	tab := pubTable(t)
	cols := []string{"author", "venue"}
	aggs := []AggSpec{
		{Func: Count},
		{Func: Sum, Arg: "year"},
		{Func: Avg, Arg: "year"},
		{Func: Min, Arg: "year"},
		{Func: Max, Arg: "year"},
	}
	cube, err := tab.Cube(cols, 1, 2, aggs)
	if err != nil {
		t.Fatal(err)
	}
	for _, subset := range [][]string{{"author"}, {"venue"}, {"author", "venue"}} {
		slice, err := CubeSlice(cube, cols, subset, aggs)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := tab.GroupBy(subset, aggs)
		if err != nil {
			t.Fatal(err)
		}
		s1, _ := slice.Sorted(subset)
		s2, _ := direct.Sorted(subset)
		if s1.NumRows() != s2.NumRows() {
			t.Fatalf("subset %v: %d vs %d rows", subset, s1.NumRows(), s2.NumRows())
		}
		for i := range s1.Rows() {
			if !s1.Row(i).Equal(s2.Row(i)) {
				t.Errorf("subset %v row %d: %v vs %v", subset, i, s1.Row(i), s2.Row(i))
			}
		}
	}
}
