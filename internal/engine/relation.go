package engine

import "cape/internal/value"

// Relation is the query surface the mining and explanation layers need
// from a base relation: the five operators the paper's algorithms are
// built from, plus schema/size/staleness introspection. Both the
// in-memory Table and the segment-backed SegTable implement it, so
// miners and explainers run unchanged over tables larger than RAM.
//
// Operator results are always in-memory *Tables: grouped results,
// selections and projections are bounded by attribute domains or
// selectivity, not base-table size, which is what makes mining over a
// mmap'd base relation practical.
type Relation interface {
	Schema() Schema
	NumRows() int
	// Epoch counts mutations; equal epochs bracket a window with no
	// mutations, which caches use for staleness checks.
	Epoch() uint64
	GroupBy(groupCols []string, aggs []AggSpec) (*Table, error)
	SelectEq(cols []string, vals value.Tuple) (*Table, error)
	CountDistinct(cols []string) (int, error)
	DistinctProject(cols []string) (*Table, error)
	Cube(cols []string, minSize, maxSize int, aggs []AggSpec) (*Table, error)
}

// RowScanner streams rows of a half-open range in row order. The tuple
// passed to fn may be reused between calls; callers that retain values
// must copy them (value.V copies are cheap and safe — string payloads
// are immutable).
type RowScanner interface {
	ScanRows(lo, hi int, fn func(row value.Tuple) error) error
}

// MutableRelation is a Relation that accepts appends and supports
// streaming row access — what incremental maintenance (mining.Maintainer)
// requires of its base table.
type MutableRelation interface {
	Relation
	RowScanner
	AppendRows(rows []value.Tuple) error
}

var (
	_ MutableRelation = (*Table)(nil)
	_ MutableRelation = (*SegTable)(nil)
)

// ScanRows implements RowScanner for Table: rows are passed as stored
// (not copied; the usual Table sharing contract applies).
func (t *Table) ScanRows(lo, hi int, fn func(row value.Tuple) error) error {
	for _, r := range t.rows[lo:hi] {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}
