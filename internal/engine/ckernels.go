package engine

import (
	"cape/internal/value"
)

// Compressed kernels: GroupBy, SelectEq, CountDistinct and
// DistinctProject evaluated directly over CompressedCol run streams,
// without decoding codes to dense slices or touching boxed rows except
// to materialize results. The kernels are multi-part — a part is one
// physically contiguous slab of rows (a sealed segment, or a Table's
// row storage) — so one implementation serves both the in-memory
// compressed dispatch (one part) and SegTable (segments + tail),
// while group identity, group order, aggregate fold order and result
// values stay byte-identical to the row/columnar reference paths:
//
//   - Group ids are assigned in global first-appearance row order.
//     Cross-part identity goes through the canonical AppendKey bytes of
//     the dictionary values, the same equality classes the reference
//     paths group by.
//   - Aggregates fold runs in global row order. Run-level shortcuts are
//     used only where bitwise exact: count += runLen, sumI += v·runLen
//     (integer arithmetic), one dictionary Compare per run for Min/Max.
//     The float sum is accumulated by repeated per-row adds so the
//     summation order matches the reference fold exactly.
//   - Min/Max store the value of the run's first row (via part.val), the
//     same value the per-row reference keeps, with the same
//     first-encountered-wins tie rule (strict Compare).
//
// NaN dictionaries are rejected by the dispatchers before kernels run
// (see EqCode/eqDivergent); 2^53 probes fall back in SelectEq exactly
// like the columnar path.

// compPart is one contiguous slab of rows presented to the compressed
// kernels: per-key and per-aggregate compressed column views plus an
// accessor for materializing individual values (group representatives,
// Min/Max results). Slot s addresses key column s for s < nK and
// aggregate s-nK otherwise.
type compPart struct {
	n    int
	keys []*CompressedCol
	aggs []*CompressedCol // nil entry ⇔ count(*)
	val  func(row, slot int) value.V

	// xlat, when set, maps each key column's local dictionary codes to
	// codes that are consistent across every part of the query (the
	// SegTable caches this unification per column — see colUnify). solo
	// marks a part that is the query's only part, whose local codes are
	// trivially globally unique. Either way groupAssign skips per-query
	// dictionary translation.
	xlat [][]int32
	solo bool
}

// partRef addresses one row of one part.
type partRef struct {
	part int32
	row  int32
}

// groupAssign tracks the global group table across parts. Group identity
// is the tuple of per-column *global* dictionary codes: each part's local
// dictionary is translated to column-global codes once per part (dict-
// sized work, via the canonical AppendKey bytes of the values — the same
// equality classes the reference paths group by), so resolving a key
// combination never serializes bytes; it probes an open-addressed table
// of int32 tuples. Per part, combinations of local codes additionally
// memoize their global id so even that probe runs once per
// (part, combination), not per run.
type groupAssign struct {
	nK     int
	gdict  []map[string]int32 // per key column: canonical value key bytes → global code
	gslots []int32            // open table over global code tuples: gid or -1
	gkeys  []int32            // group g's global codes at [g*nK, (g+1)*nK)
	gcBuf  []int32
	xlat   [][]int32 // current part: per key column, local code → global code
	firsts []partRef
	keyBuf []byte

	// keepKeys retains each group's canonical key bytes in keys, in
	// group-id order — morsel workers need them to merge their local
	// group tables into the global one (see morsel.go).
	keepKeys bool
	keys     [][]byte

	// Per-part memo, reset by beginPart. remap is a perfect hash over
	// the (flattened) code space when one key column or a small cross
	// product; otherwise slots/entryCodes/entryGid form an open-addressed
	// table over code tuples — both probe without allocating, unlike a
	// map keyed by serialized codes (which showed up as the hottest
	// block of high-cardinality compressed group-bys).
	part    *compPart
	partIdx int32
	remap   []int32
	flat    bool    // remap is indexed by the dims-flattened multi-key code
	dims    []int32 // per-key dict sizes when flat
	zeroGid int32   // nK==0 memo: the part's single group, -1 until assigned
}

func newGroupAssign(nK int) *groupAssign {
	return &groupAssign{nK: nK, gdict: make([]map[string]int32, nK)}
}

// flatRemapCap bounds the code space a perfect-hash remap may span
// (256 KB of int32s — comfortably cache-resident). Above it the O(space)
// clear per part per query and the cache misses of sparse probes cost
// more than the global-table probes the memo would save, so larger code
// spaces take the direct path.
const flatRemapCap = 1 << 16

func (ga *groupAssign) resetRemap(n int) {
	if cap(ga.remap) < n {
		ga.remap = make([]int32, n)
	}
	ga.remap = ga.remap[:n]
	for i := range ga.remap {
		ga.remap[i] = -1
	}
}

// translate maps one part's local dictionary codes for key column k to
// column-global codes, assigning fresh global codes to values this run
// has not seen in column k yet. Identity is the value's canonical
// AppendKey bytes, so Int/Float representatives of the same class share
// one code across parts.
func (ga *groupAssign) translate(k int, dict []value.V) []int32 {
	m := ga.gdict[k]
	if m == nil {
		m = make(map[string]int32, len(dict))
		ga.gdict[k] = m
	}
	xl := make([]int32, len(dict))
	for c, v := range dict {
		ga.keyBuf = v.AppendKey(ga.keyBuf[:0])
		g, ok := m[string(ga.keyBuf)]
		if !ok {
			g = int32(len(m))
			m[string(ga.keyBuf)] = g
		}
		xl[c] = g
	}
	return xl
}

func (ga *groupAssign) beginPart(p *compPart, idx int32) {
	ga.part = p
	ga.partIdx = idx
	if cap(ga.xlat) < ga.nK {
		ga.xlat = make([][]int32, ga.nK)
	}
	ga.xlat = ga.xlat[:ga.nK]
	for k := 0; k < ga.nK; k++ {
		switch {
		case p.xlat != nil:
			ga.xlat[k] = p.xlat[k]
		case p.solo:
			ga.xlat[k] = nil // single-part query: local codes are the global codes
		default:
			ga.xlat[k] = ga.translate(k, p.keys[k].dict)
		}
	}
	if ga.nK == 0 {
		ga.zeroGid = -1
		return
	}
	if ga.nK == 1 && len(p.keys[0].dict) <= flatRemapCap {
		ga.flat = false
		ga.resetRemap(len(p.keys[0].dict))
		return
	}
	if ga.nK == 1 {
		ga.flat = false
		ga.remap = ga.remap[:0] // direct: dictionary too large to memo
		return
	}
	prod := int64(1)
	for _, kc := range p.keys {
		d := int64(len(kc.dict))
		if d == 0 {
			d = 1
		}
		prod *= d
		if prod > flatRemapCap {
			prod = -1
			break
		}
	}
	if prod > 0 && prod <= int64(4*p.n+64) {
		ga.resetRemap(int(prod))
		ga.flat = true
		ga.dims = ga.dims[:0]
		for _, kc := range p.keys {
			ga.dims = append(ga.dims, int32(len(kc.dict)))
		}
		return
	}
	// High-cardinality cross product: a per-part memo would approach the
	// global table in size (an O(rows) clear per part per query) while
	// saving only the xlat indexing — assign probes the global table
	// directly instead (the no-memo fallthrough).
	ga.flat = false
}

// assign resolves the global group id of a run starting at local row
// with the given key codes.
func (ga *groupAssign) assign(codes []int32, row int32) int32 {
	if ga.nK == 0 {
		if ga.zeroGid < 0 {
			ga.zeroGid = ga.assignSlow(codes, row)
		}
		return ga.zeroGid
	}
	if ga.nK == 1 {
		if len(ga.remap) == 0 { // direct: dictionary exceeded flatRemapCap
			return ga.assignSlow(codes, row)
		}
		if g := ga.remap[codes[0]]; g >= 0 {
			return g
		}
		g := ga.assignSlow(codes, row)
		ga.remap[codes[0]] = g
		return g
	}
	if ga.flat {
		key := codes[0]
		for k := 1; k < ga.nK; k++ {
			key = key*ga.dims[k] + codes[k]
		}
		if g := ga.remap[key]; g >= 0 {
			return g
		}
		g := ga.assignSlow(codes, row)
		ga.remap[key] = g
		return g
	}
	return ga.assignSlow(codes, row)
}

func hashCodes(codes []int32) uint64 {
	const fnvOffset, fnvPrime = uint64(14695981039346656037), uint64(1099511628211)
	h := fnvOffset
	for _, c := range codes {
		h = (h ^ uint64(uint32(c))) * fnvPrime
	}
	return h
}

// assignSlow resolves a key combination against the run-global group
// table: local codes are translated to global codes through the per-part
// xlat built by beginPart, then the tuple is probed in an open-addressed
// table. New groups record their first row and, when keepKeys is set,
// their canonical key bytes (only the morsel merge reads those).
func (ga *groupAssign) assignSlow(codes []int32, row int32) int32 {
	if ga.nK == 0 {
		if len(ga.firsts) == 0 {
			ga.firsts = append(ga.firsts, partRef{part: ga.partIdx, row: row})
			if ga.keepKeys {
				ga.keys = append(ga.keys, []byte{})
			}
		}
		return 0
	}
	gc := ga.gcBuf[:0]
	for k, c := range codes {
		if xl := ga.xlat[k]; xl != nil {
			c = xl[c]
		}
		gc = append(gc, c)
	}
	ga.gcBuf = gc
	return ga.assignGlobal(gc, row)
}

// assignGlobal resolves (inserting if new) the group of already-global
// codes gc, first seen at part-local row. New groups re-read their local
// codes via CodeAt when canonical key bytes must be kept — once per
// group, not per run.
func (ga *groupAssign) assignGlobal(gc []int32, row int32) int32 {
	if 2*(len(ga.firsts)+1) > len(ga.gslots) {
		ga.growGlobal()
	}
	mask := len(ga.gslots) - 1
	for i := int(hashCodes(gc)) & mask; ; i = (i + 1) & mask {
		s := ga.gslots[i]
		if s < 0 {
			g := int32(len(ga.firsts))
			ga.gslots[i] = g
			ga.gkeys = append(ga.gkeys, gc...)
			ga.firsts = append(ga.firsts, partRef{part: ga.partIdx, row: row})
			if ga.keepKeys {
				key := ga.keyBuf[:0]
				for k := range gc {
					kc := ga.part.keys[k]
					key = kc.dict[kc.CodeAt(int(row))].AppendKey(key)
				}
				ga.keyBuf = key
				ga.keys = append(ga.keys, append([]byte(nil), key...))
			}
			return g
		}
		eg := ga.gkeys[int(s)*ga.nK : int(s)*ga.nK+ga.nK]
		match := true
		for k := range gc {
			if eg[k] != gc[k] {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
}

// growGlobal doubles the global tuple table and re-probes every existing
// group from the gkeys arena.
func (ga *groupAssign) growGlobal() {
	size := 2 * len(ga.gslots)
	if size < 64 {
		size = 64
	}
	slots := make([]int32, size)
	for i := range slots {
		slots[i] = -1
	}
	mask := size - 1
	for g := 0; g < len(ga.firsts); g++ {
		h := hashCodes(ga.gkeys[g*ga.nK : (g+1)*ga.nK])
		for i := int(h) & mask; ; i = (i + 1) & mask {
			if slots[i] < 0 {
				slots[i] = int32(g)
				break
			}
		}
	}
	ga.gslots = slots
}

// sumNeedsFFor computes, per aggregate, whether Sum/Avg folds must
// accumulate sumF for int runs. hasFloat is a per-part property, but
// anyFloat (which makes result() read sumF) is global to the group: one
// float row anywhere forces every part — including float-free ones — to
// fold its int contributions into sumF, so the flag is OR'd across
// parts before any run is folded.
func sumNeedsFFor(parts []*compPart, aCols []aggCol) []bool {
	sumNeedsF := make([]bool, len(aCols))
	for ai, ac := range aCols {
		switch ac.spec.Func {
		case Avg:
			sumNeedsF[ai] = true
		case Sum:
			for _, p := range parts {
				if cc := p.aggs[ai]; cc != nil && cc.hasFloat {
					sumNeedsF[ai] = true
					break
				}
			}
		}
	}
	return sumNeedsF
}

// gbScan is the reusable state of one grouping walk: the group table,
// aggregate states, and the per-column cursors. The sequential kernel
// runs one gbScan over every part in order; morsel workers each run a
// private gbScan over their row range and merge afterwards.
type gbScan struct {
	ga     *groupAssign
	states []aggState // laid out [gid*nA+ai]
	kcur   []runCur
	acur   []runCur
	codes  []int32

	// Decode-pass state (see scanFlat): flatDims are the global
	// dictionary sizes per key column, flatBudget the scan's total row
	// count — both set by the caller to enable the pass. flatRemap maps
	// the dims-flattened global key to its group id and is shared across
	// every part of the scan (global codes make entries part-independent),
	// so it is cleared once per query, never per part.
	flatDims   []int32
	flatBudget int
	flatRemap  []int32
	keyScratch [][]int32
	aggScratch [][]int32

	// countOnly marks a query whose every aggregate is count(*): both
	// scan paths then accumulate into counts — an 8-byte-stride array —
	// instead of the much wider aggState records, and the caller expands
	// counts into states once at the end (countStates). High-cardinality
	// groupings touch these arrays randomly, so the stride is the
	// difference between one cache line per group and several.
	countOnly bool
	counts    []int64
}

func newGbScan(nK, nA int, keepKeys bool) *gbScan {
	sc := &gbScan{
		ga:    newGroupAssign(nK),
		kcur:  make([]runCur, nK),
		acur:  make([]runCur, nA),
		codes: make([]int32, nK),
	}
	sc.ga.keepKeys = keepKeys
	return sc
}

// globalKeyDims computes, per key column, the size of the global code
// space across parts (the stride basis of the decode pass's flat keys).
// Cost is one pass over each part's translation or dictionary.
func globalKeyDims(parts []*compPart, nK int) []int32 {
	dims := make([]int32, nK)
	for _, p := range parts {
		for k := 0; k < nK; k++ {
			var d int32
			if p.xlat != nil && p.xlat[k] != nil {
				for _, g := range p.xlat[k] {
					if g+1 > d {
						d = g + 1
					}
				}
			} else { // solo part or identity translation: codes are global
				d = int32(len(p.keys[k].dict))
			}
			if d > dims[k] {
				dims[k] = d
			}
		}
	}
	return dims
}

// scanRange folds rows [lo, hi) of part pi into the scan's group table
// and aggregate states, walking merged key runs exactly like the
// whole-part kernel (runs straddling the range are clamped; clamping
// only splits a fold the per-row reference performs row-wise anyway).
// flatScanMinRows is the smallest range worth the decode pass's scratch
// fill; flatScanCap bounds the flattened global code space (16 MB of
// int32s for the shared remap).
const (
	flatScanMinRows = 4096
	flatScanCap     = 1 << 22
)

// scanFlat is the decode-pass alternative to the run walk: materialize
// the range's key codes into scratch (straight block unpack for PACK,
// run expansion for RLE), translate them to global codes in place, and
// resolve groups through one flat remap keyed by the combined global
// code — the same single tight pass the dense columnar kernel runs, so
// compressed group-bys over unsorted (run length ~1) payloads stop
// paying per-run cursor arithmetic and hashing. Aggregates fold per row
// with the exact reference semantics (foldCompressedRun with k=1).
// Returns false — leaving the range to the run walk — when runs are
// long enough that walking them is cheaper, or the flat key space is
// too large to remap.
func (sc *gbScan) scanFlat(p *compPart, pi, lo, hi int32, aCols []aggCol, sumNeedsF []bool) bool {
	nK, nA := len(sc.kcur), len(aCols)
	rows := int(hi - lo)
	if nK == 0 || sc.flatDims == nil || rows < flatScanMinRows {
		return false
	}
	prod := int64(1)
	for _, d := range sc.flatDims {
		dd := int64(d)
		if dd == 0 {
			dd = 1
		}
		prod *= dd
		if prod > flatScanCap {
			return false
		}
	}
	if prod > int64(4*sc.flatBudget+64) {
		return false
	}
	runs := 0
	for k := 0; k < nK; k++ {
		runs += p.keys[k].runsInRange(lo, hi)
	}
	if runs*2 < nK*rows {
		return false // long runs: the run walk folds them wholesale
	}

	ga := sc.ga
	ga.beginPart(p, pi)
	if sc.keyScratch == nil {
		sc.keyScratch = make([][]int32, nK)
	}
	for k := 0; k < nK; k++ {
		s := growI32(sc.keyScratch[k], rows)
		sc.keyScratch[k] = s
		p.keys[k].decodeRange(lo, hi, s)
		if xl := ga.xlat[k]; xl != nil {
			for i, c := range s {
				s[i] = xl[c]
			}
		}
	}
	if sc.aggScratch == nil {
		sc.aggScratch = make([][]int32, nA)
	}
	for ai := 0; ai < nA; ai++ {
		if cc := p.aggs[ai]; cc != nil {
			s := growI32(sc.aggScratch[ai], rows)
			sc.aggScratch[ai] = s
			cc.decodeRange(lo, hi, s)
		}
	}
	if sc.flatRemap == nil {
		sc.flatRemap = make([]int32, prod)
		for i := range sc.flatRemap {
			sc.flatRemap[i] = -1
		}
	}

	gc := make([]int32, nK)
	for r := 0; r < rows; r++ {
		key := int(sc.keyScratch[0][r])
		for k := 1; k < nK; k++ {
			key = key*int(sc.flatDims[k]) + int(sc.keyScratch[k][r])
		}
		g := sc.flatRemap[key]
		if g < 0 {
			for k := 0; k < nK; k++ {
				gc[k] = sc.keyScratch[k][r]
			}
			g = ga.assignGlobal(gc, lo+int32(r))
			sc.flatRemap[key] = g
		}
		if sc.countOnly {
			if need := int(g) + 1; need > len(sc.counts) {
				sc.counts = growI64(sc.counts, need)
			}
			sc.counts[g]++
			continue
		}
		if need := (int(g) + 1) * nA; need > len(sc.states) {
			sc.states = growStates(sc.states, need)
		}
		base := int(g) * nA
		for ai := 0; ai < nA; ai++ {
			cc := p.aggs[ai]
			if cc == nil { // count(*)
				sc.states[base+ai].count++
				continue
			}
			foldCompressedRun(&sc.states[base+ai], aCols[ai].spec.Func, cc,
				sc.aggScratch[ai][r], 1, p, int(lo)+r, nK+ai, sumNeedsF[ai])
		}
	}
	return true
}

// growI32 returns a length-n int32 slice reusing buf's capacity.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growI64 extends a zero-filled int64 slice to need elements, doubling
// capacity (the spare region is zeroed at allocation, like growStates).
func growI64(c []int64, need int) []int64 {
	if need <= cap(c) {
		return c[:need]
	}
	grown := make([]int64, need, 2*need)
	copy(grown, c)
	return grown
}

// countOnlyAggs reports whether every aggregate is count(*) — the case
// the scans accumulate as bare int64 counts.
func countOnlyAggs(aCols []aggCol) bool {
	for _, ac := range aCols {
		if ac.spec.Func != Count || ac.idx >= 0 {
			return false
		}
	}
	return len(aCols) > 0
}

// countStates expands per-group counts into aggState records for
// materializeGroups (every count(*) column reports the group's row
// count).
func countStates(counts []int64, nG, nA int) []aggState {
	states := make([]aggState, nG*nA)
	for g := 0; g < nG && g < len(counts); g++ {
		for ai := 0; ai < nA; ai++ {
			states[g*nA+ai].count = counts[g]
		}
	}
	return states
}

func (sc *gbScan) scanRange(p *compPart, pi, lo, hi int32, aCols []aggCol, sumNeedsF []bool) {
	if sc.scanFlat(p, pi, lo, hi, aCols, sumNeedsF) {
		return
	}
	nK, nA := len(sc.kcur), len(aCols)
	sc.ga.beginPart(p, pi)
	for k := 0; k < nK; k++ {
		sc.kcur[k].initAt(p.keys[k], lo)
	}
	for ai := 0; ai < nA; ai++ {
		if p.aggs[ai] != nil {
			sc.acur[ai].initAt(p.aggs[ai], lo)
		}
	}
	for pos := lo; pos < hi; {
		segEnd := hi
		for k := 0; k < nK; k++ {
			sc.kcur[k].seek(pos)
			if sc.kcur[k].end < segEnd {
				segEnd = sc.kcur[k].end
			}
			sc.codes[k] = sc.kcur[k].code
		}
		gid := sc.ga.assign(sc.codes, pos)
		if sc.countOnly {
			if need := int(gid) + 1; need > len(sc.counts) {
				sc.counts = growI64(sc.counts, need)
			}
			sc.counts[gid] += int64(segEnd - pos)
			pos = segEnd
			continue
		}
		if need := (int(gid) + 1) * nA; need > len(sc.states) {
			sc.states = growStates(sc.states, need)
		}
		base := int(gid) * nA
		for ai := 0; ai < nA; ai++ {
			cc := p.aggs[ai]
			if cc == nil { // count(*)
				sc.states[base+ai].count += int64(segEnd - pos)
				continue
			}
			cur := &sc.acur[ai]
			for q := pos; q < segEnd; {
				cur.seek(q)
				e := cur.end
				if e > segEnd {
					e = segEnd
				}
				foldCompressedRun(&sc.states[base+ai], aCols[ai].spec.Func, cc,
					cur.code, int(e-q), p, int(q), nK+ai, sumNeedsF[ai])
				q = e
			}
		}
		pos = segEnd
	}
}

// materializeGroups builds the grouped output table from the final
// group table (first-appearance refs) and aggregate states.
func materializeGroups(parts []*compPart, firsts []partRef, states []aggState,
	nK int, aCols []aggCol, sch Schema) *Table {

	nG, nA := len(firsts), len(aCols)
	out := NewTable(sch)
	out.rows = make([]value.Tuple, nG)
	width := len(sch)
	slab := make([]value.V, nG*width)
	for g := 0; g < nG; g++ {
		row := slab[g*width : (g+1)*width : (g+1)*width]
		fr := firsts[g]
		p := parts[fr.part]
		for k := 0; k < nK; k++ {
			row[k] = p.val(int(fr.row), k)
		}
		for ai := 0; ai < nA; ai++ {
			row[nK+ai] = states[g*nA+ai].result(aCols[ai].spec.Func)
		}
		out.rows[g] = row
	}
	return out
}

// groupByCompressedParts evaluates GroupBy over the concatenation of
// parts. nK is the number of group columns; aCols carries the aggregate
// specs (aggCol.idx is unused here — part.aggs already resolved the
// argument columns). The output matches the reference GroupBy bitwise.
func groupByCompressedParts(parts []*compPart, nK int, aCols []aggCol, sch Schema) *Table {
	sumNeedsF := sumNeedsFFor(parts, aCols)
	sc := newGbScan(nK, len(aCols), false)
	sc.countOnly = countOnlyAggs(aCols)
	if nK > 0 {
		sc.flatDims = globalKeyDims(parts, nK)
		for _, p := range parts {
			sc.flatBudget += p.n
		}
	}
	for pi, p := range parts {
		if p.n == 0 {
			continue
		}
		sc.scanRange(p, int32(pi), 0, int32(p.n), aCols, sumNeedsF)
	}
	states := sc.states
	if sc.countOnly {
		states = countStates(sc.counts, len(sc.ga.firsts), len(aCols))
	}
	return materializeGroups(parts, sc.ga.firsts, states, nK, aCols, sch)
}

// foldCompressedRun folds one equal-code run of an aggregate argument
// into an aggState, reproducing the per-row reference fold exactly.
// firstRow is the part-local row where the run starts; slot addresses
// the argument column in part.val. needF (computed once per query by
// OR-ing hasFloat across all parts) forces sumF accumulation for int
// runs whenever the result can read sumF — Avg, or a Sum whose column
// holds a float in any part.
func foldCompressedRun(st *aggState, f AggFunc, cc *CompressedCol,
	code int32, k int, p *compPart, firstRow, slot int, needF bool) {

	kind := cc.dictKind[code]
	switch f {
	case Count:
		if kind != value.Null {
			st.count += int64(k)
		}
	case Sum, Avg:
		switch kind {
		case value.Int:
			st.sumI += int64(k) * cc.dictI64[code]
			st.count += int64(k)
			// sumF feeds the result only via Avg or anyFloat; the per-row
			// adds keep its summation order identical to the reference
			// when it does.
			if needF {
				fv := cc.dictF64[code]
				for j := 0; j < k; j++ {
					st.sumF += fv
				}
			}
		case value.Float:
			fv := cc.dictF64[code]
			for j := 0; j < k; j++ {
				st.sumF += fv
			}
			st.anyFloat = true
			st.count += int64(k)
		}
	case Min:
		if kind == value.Null {
			return
		}
		if !st.seen || value.Compare(cc.dict[code], st.minV) < 0 {
			st.minV = p.val(firstRow, slot)
		}
		st.seen = true
	case Max:
		if kind == value.Null {
			return
		}
		if !st.seen || value.Compare(cc.dict[code], st.maxV) > 0 {
			st.maxV = p.val(firstRow, slot)
		}
		st.seen = true
	}
}

// countGroupsParts counts distinct key combinations across parts — the
// grouping walk of groupByCompressedParts without aggregate state.
func countGroupsParts(parts []*compPart, nK int) int {
	ga := newGroupAssign(nK)
	kcur := make([]runCur, nK)
	codes := make([]int32, nK)
	for pi, p := range parts {
		if p.n == 0 {
			continue
		}
		ga.beginPart(p, int32(pi))
		for k := 0; k < nK; k++ {
			kcur[k].init(p.keys[k])
		}
		n := int32(p.n)
		for pos := int32(0); pos < n; {
			segEnd := n
			for k := 0; k < nK; k++ {
				kcur[k].seek(pos)
				if kcur[k].end < segEnd {
					segEnd = kcur[k].end
				}
				codes[k] = kcur[k].code
			}
			ga.assign(codes, pos)
			pos = segEnd
		}
	}
	return len(ga.firsts)
}

// distinctParts returns the first-appearance partRef of every distinct
// key combination across parts, in first-appearance order.
func distinctParts(parts []*compPart, nK int) []partRef {
	ga := newGroupAssign(nK)
	kcur := make([]runCur, nK)
	codes := make([]int32, nK)
	for pi, p := range parts {
		if p.n == 0 {
			continue
		}
		ga.beginPart(p, int32(pi))
		for k := 0; k < nK; k++ {
			kcur[k].init(p.keys[k])
		}
		n := int32(p.n)
		for pos := int32(0); pos < n; {
			segEnd := n
			for k := 0; k < nK; k++ {
				kcur[k].seek(pos)
				if kcur[k].end < segEnd {
					segEnd = kcur[k].end
				}
				codes[k] = kcur[k].code
			}
			ga.assign(codes, pos)
			pos = segEnd
		}
	}
	return ga.firsts
}

// selectEqPlanParts resolves an equality probe against every part's
// dictionaries. It returns, per part, the wanted code of each probed
// column. divergent reports that code comparison cannot answer
// value.Equal for this probe (the caller must use a boxed scan);
// otherwise parts whose entry is nil cannot contain a match.
func selectEqPlanParts(parts []*compPart, vals value.Tuple) (want [][]int32, divergent bool) {
	want = make([][]int32, len(parts))
	for pi, p := range parts {
		w := make([]int32, len(vals))
		miss := false
		for i, v := range vals {
			code, ok, div := p.keys[i].EqCode(v)
			if div {
				return nil, true
			}
			if !ok {
				miss = true
				continue
			}
			w[i] = code
		}
		if !miss {
			want[pi] = w
		}
	}
	return want, false
}

// compressedPart assembles the single compPart of an in-memory Table
// for a query touching key columns gIdx and aggregate columns aCols.
// ok is false unless every touched column has a current compressed view
// covering exactly the live row count — the staleness check that keeps
// a view built before an append from serving the longer table.
func (t *Table) compressedPart(gIdx []int, aCols []aggCol) (*compPart, bool) {
	c := t.cols.Load()
	if c == nil {
		return nil, false
	}
	n := len(t.rows)
	p := &compPart{n: n, solo: true}
	p.keys = make([]*CompressedCol, len(gIdx))
	for i, ci := range gIdx {
		cc := c.Compressed(ci)
		if cc == nil || cc.n != n {
			return nil, false
		}
		p.keys[i] = cc
	}
	p.aggs = make([]*CompressedCol, len(aCols))
	for i, ac := range aCols {
		if ac.idx < 0 {
			continue
		}
		cc := c.Compressed(ac.idx)
		if cc == nil || cc.n != n {
			return nil, false
		}
		p.aggs[i] = cc
	}
	rows := t.rows
	nK := len(gIdx)
	p.val = func(row, slot int) value.V {
		if slot < nK {
			return rows[row][gIdx[slot]]
		}
		return rows[row][aCols[slot-nK].idx]
	}
	return p, true
}

// groupByCompressed runs GroupBy over the table's compressed views,
// returning nil when any touched column lacks a current view (the
// caller then uses the columnar kernel). Some aggregate/column pairs
// also decline — see aggDeclinesCompressed.
func (t *Table) groupByCompressed(gIdx []int, aCols []aggCol, sch Schema) *Table {
	part, ok := t.compressedPart(gIdx, aCols)
	if !ok {
		return nil
	}
	for i, ac := range aCols {
		if aggDeclinesCompressed(ac.spec.Func, part.aggs[i]) {
			return nil
		}
	}
	return groupByCompressedPartsPool(t.queryPool(), []*compPart{part}, len(gIdx), aCols, sch)
}

// aggDeclinesCompressed reports whether folding spec f over cc must be
// left to the per-row reference: Min/Max over a NaN-containing column
// (NaN compares equal to every numeric, so first-encounter tie-breaking
// is load-bearing), and Sum/Avg over a mixed-kind column (the fold reads
// kinds from the dictionary, but the result's Int-vs-Float kind depends
// on the actual per-row kinds).
func aggDeclinesCompressed(f AggFunc, cc *CompressedCol) bool {
	if cc == nil {
		return false
	}
	switch f {
	case Min, Max:
		return cc.hasNaN
	case Sum, Avg:
		return cc.mixedKind
	}
	return false
}

// selectEqCompressed answers SelectEq from the compressed views,
// appending matching rows to out. It reports false when the query
// cannot be served compressed — missing/stale views, or a probe where
// code equality diverges from value.Equal — in which case out is
// untouched and the caller falls through to the columnar/row paths.
func (t *Table) selectEqCompressed(out *Table, idx []int, vals value.Tuple) bool {
	part, ok := t.compressedPart(idx, nil)
	if !ok {
		return false
	}
	want, divergent := selectEqPlanParts([]*compPart{part}, vals)
	if divergent {
		return false
	}
	if want[0] == nil {
		return true // some probed value absent from a dictionary: no rows
	}
	rows := t.rows
	emit := func(lo, hi int32) {
		out.rows = append(out.rows, rows[lo:hi]...)
	}
	// Sealed (non-dense) views answer from the code-span index; the
	// emitted ranges are identical to the merged-run scan's.
	if !selectEqSpans(part, want[0], emit) {
		selectEqRuns(part, want[0], emit)
	}
	return true
}

// countDistinctCompressed answers CountDistinct from the compressed
// views (ok=false when any view is missing or stale).
func (t *Table) countDistinctCompressed(idx []int) (int, bool) {
	part, ok := t.compressedPart(idx, nil)
	if !ok {
		return 0, false
	}
	if len(idx) == 1 {
		return len(part.keys[0].dict), true
	}
	return countGroupsParts([]*compPart{part}, len(idx)), true
}

// selectEqRuns walks the merged key runs of one part and emits the
// half-open local row ranges where every probed column carries its
// wanted code.
func selectEqRuns(p *compPart, want []int32, emit func(lo, hi int32)) {
	nK := len(want)
	kcur := make([]runCur, nK)
	for k := 0; k < nK; k++ {
		kcur[k].init(p.keys[k])
	}
	n := int32(p.n)
	for pos := int32(0); pos < n; {
		segEnd := n
		match := true
		for k := 0; k < nK; k++ {
			kcur[k].seek(pos)
			if kcur[k].end < segEnd {
				segEnd = kcur[k].end
			}
			if kcur[k].code != want[k] {
				match = false
			}
		}
		if match {
			emit(pos, segEnd)
		}
		pos = segEnd
	}
}
