package engine

import (
	"encoding/binary"

	"cape/internal/value"
)

// Compressed kernels: GroupBy, SelectEq, CountDistinct and
// DistinctProject evaluated directly over CompressedCol run streams,
// without decoding codes to dense slices or touching boxed rows except
// to materialize results. The kernels are multi-part — a part is one
// physically contiguous slab of rows (a sealed segment, or a Table's
// row storage) — so one implementation serves both the in-memory
// compressed dispatch (one part) and SegTable (segments + tail),
// while group identity, group order, aggregate fold order and result
// values stay byte-identical to the row/columnar reference paths:
//
//   - Group ids are assigned in global first-appearance row order.
//     Cross-part identity goes through the canonical AppendKey bytes of
//     the dictionary values, the same equality classes the reference
//     paths group by.
//   - Aggregates fold runs in global row order. Run-level shortcuts are
//     used only where bitwise exact: count += runLen, sumI += v·runLen
//     (integer arithmetic), one dictionary Compare per run for Min/Max.
//     The float sum is accumulated by repeated per-row adds so the
//     summation order matches the reference fold exactly.
//   - Min/Max store the value of the run's first row (via part.val), the
//     same value the per-row reference keeps, with the same
//     first-encountered-wins tie rule (strict Compare).
//
// NaN dictionaries are rejected by the dispatchers before kernels run
// (see EqCode/eqDivergent); 2^53 probes fall back in SelectEq exactly
// like the columnar path.

// compPart is one contiguous slab of rows presented to the compressed
// kernels: per-key and per-aggregate compressed column views plus an
// accessor for materializing individual values (group representatives,
// Min/Max results). Slot s addresses key column s for s < nK and
// aggregate s-nK otherwise.
type compPart struct {
	n    int
	keys []*CompressedCol
	aggs []*CompressedCol // nil entry ⇔ count(*)
	val  func(row, slot int) value.V
}

// partRef addresses one row of one part.
type partRef struct {
	part int32
	row  int32
}

// groupAssign tracks the global group table across parts. Group keys are
// the AppendKey bytes of the key values; per part, combinations of local
// dictionary codes memoize their global id so the byte encoding runs
// once per (part, combination), not per run.
type groupAssign struct {
	nK     int
	global map[string]int32
	firsts []partRef
	keyBuf []byte

	// Per-part memo, reset by beginPart: a direct remap array for a
	// single key column, a code-tuple map otherwise.
	part    *compPart
	partIdx int32
	remap   []int32
	combos  map[string]int32
	tupBuf  []byte
}

func newGroupAssign(nK int) *groupAssign {
	return &groupAssign{nK: nK, global: make(map[string]int32)}
}

func (ga *groupAssign) beginPart(p *compPart, idx int32) {
	ga.part = p
	ga.partIdx = idx
	if ga.nK == 1 {
		d := len(p.keys[0].dict)
		if cap(ga.remap) < d {
			ga.remap = make([]int32, d)
		}
		ga.remap = ga.remap[:d]
		for i := range ga.remap {
			ga.remap[i] = -1
		}
		return
	}
	ga.combos = make(map[string]int32, 64)
}

// assign resolves the global group id of a run starting at local row
// with the given key codes.
func (ga *groupAssign) assign(codes []int32, row int32) int32 {
	if ga.nK == 1 {
		if g := ga.remap[codes[0]]; g >= 0 {
			return g
		}
		g := ga.assignSlow(codes, row)
		ga.remap[codes[0]] = g
		return g
	}
	tup := ga.tupBuf[:0]
	for _, c := range codes {
		tup = binary.LittleEndian.AppendUint32(tup, uint32(c))
	}
	ga.tupBuf = tup
	if g, ok := ga.combos[string(tup)]; ok {
		return g
	}
	g := ga.assignSlow(codes, row)
	ga.combos[string(tup)] = g
	return g
}

func (ga *groupAssign) assignSlow(codes []int32, row int32) int32 {
	key := ga.keyBuf[:0]
	for k, c := range codes {
		key = ga.part.keys[k].dict[c].AppendKey(key)
	}
	ga.keyBuf = key
	if g, ok := ga.global[string(key)]; ok {
		return g
	}
	g := int32(len(ga.firsts))
	ga.global[string(key)] = g
	ga.firsts = append(ga.firsts, partRef{part: ga.partIdx, row: row})
	return g
}

// groupByCompressedParts evaluates GroupBy over the concatenation of
// parts. nK is the number of group columns; aCols carries the aggregate
// specs (aggCol.idx is unused here — part.aggs already resolved the
// argument columns). The output matches the reference GroupBy bitwise.
func groupByCompressedParts(parts []*compPart, nK int, aCols []aggCol, sch Schema) *Table {
	nA := len(aCols)
	ga := newGroupAssign(nK)
	var states []aggState // laid out [gid*nA+ai]

	// Whether each Sum/Avg must accumulate sumF for int runs. hasFloat is
	// a per-part property, but anyFloat (which makes result() read sumF)
	// is global to the group: one float row anywhere forces every part —
	// including float-free ones — to fold its int contributions into sumF,
	// so the flag is OR'd across parts before any run is folded.
	sumNeedsF := make([]bool, nA)
	for ai, ac := range aCols {
		switch ac.spec.Func {
		case Avg:
			sumNeedsF[ai] = true
		case Sum:
			for _, p := range parts {
				if cc := p.aggs[ai]; cc != nil && cc.hasFloat {
					sumNeedsF[ai] = true
					break
				}
			}
		}
	}

	kcur := make([]runCur, nK)
	acur := make([]runCur, nA)
	codes := make([]int32, nK)
	for pi, p := range parts {
		if p.n == 0 {
			continue
		}
		ga.beginPart(p, int32(pi))
		for k := 0; k < nK; k++ {
			kcur[k].init(p.keys[k])
		}
		for ai := 0; ai < nA; ai++ {
			if p.aggs[ai] != nil {
				acur[ai].init(p.aggs[ai])
			}
		}
		n := int32(p.n)
		for pos := int32(0); pos < n; {
			segEnd := n
			for k := 0; k < nK; k++ {
				kcur[k].seek(pos)
				if kcur[k].end < segEnd {
					segEnd = kcur[k].end
				}
				codes[k] = kcur[k].code
			}
			gid := ga.assign(codes, pos)
			if int(gid)*nA >= len(states) {
				states = append(states, make([]aggState, nA)...)
			}
			base := int(gid) * nA
			for ai := 0; ai < nA; ai++ {
				cc := p.aggs[ai]
				if cc == nil { // count(*)
					states[base+ai].count += int64(segEnd - pos)
					continue
				}
				cur := &acur[ai]
				for q := pos; q < segEnd; {
					cur.seek(q)
					e := cur.end
					if e > segEnd {
						e = segEnd
					}
					foldCompressedRun(&states[base+ai], aCols[ai].spec.Func, cc,
						cur.code, int(e-q), p, int(q), nK+ai, sumNeedsF[ai])
					q = e
				}
			}
			pos = segEnd
		}
	}

	nG := len(ga.firsts)
	out := NewTable(sch)
	out.rows = make([]value.Tuple, nG)
	width := len(sch)
	slab := make([]value.V, nG*width)
	for g := 0; g < nG; g++ {
		row := slab[g*width : (g+1)*width : (g+1)*width]
		fr := ga.firsts[g]
		p := parts[fr.part]
		for k := 0; k < nK; k++ {
			row[k] = p.val(int(fr.row), k)
		}
		for ai := 0; ai < nA; ai++ {
			row[nK+ai] = states[g*nA+ai].result(aCols[ai].spec.Func)
		}
		out.rows[g] = row
	}
	return out
}

// foldCompressedRun folds one equal-code run of an aggregate argument
// into an aggState, reproducing the per-row reference fold exactly.
// firstRow is the part-local row where the run starts; slot addresses
// the argument column in part.val. needF (computed once per query by
// OR-ing hasFloat across all parts) forces sumF accumulation for int
// runs whenever the result can read sumF — Avg, or a Sum whose column
// holds a float in any part.
func foldCompressedRun(st *aggState, f AggFunc, cc *CompressedCol,
	code int32, k int, p *compPart, firstRow, slot int, needF bool) {

	kind := cc.dictKind[code]
	switch f {
	case Count:
		if kind != value.Null {
			st.count += int64(k)
		}
	case Sum, Avg:
		switch kind {
		case value.Int:
			st.sumI += int64(k) * cc.dictI64[code]
			st.count += int64(k)
			// sumF feeds the result only via Avg or anyFloat; the per-row
			// adds keep its summation order identical to the reference
			// when it does.
			if needF {
				fv := cc.dictF64[code]
				for j := 0; j < k; j++ {
					st.sumF += fv
				}
			}
		case value.Float:
			fv := cc.dictF64[code]
			for j := 0; j < k; j++ {
				st.sumF += fv
			}
			st.anyFloat = true
			st.count += int64(k)
		}
	case Min:
		if kind == value.Null {
			return
		}
		if !st.seen || value.Compare(cc.dict[code], st.minV) < 0 {
			st.minV = p.val(firstRow, slot)
		}
		st.seen = true
	case Max:
		if kind == value.Null {
			return
		}
		if !st.seen || value.Compare(cc.dict[code], st.maxV) > 0 {
			st.maxV = p.val(firstRow, slot)
		}
		st.seen = true
	}
}

// countGroupsParts counts distinct key combinations across parts — the
// grouping walk of groupByCompressedParts without aggregate state.
func countGroupsParts(parts []*compPart, nK int) int {
	ga := newGroupAssign(nK)
	kcur := make([]runCur, nK)
	codes := make([]int32, nK)
	for pi, p := range parts {
		if p.n == 0 {
			continue
		}
		ga.beginPart(p, int32(pi))
		for k := 0; k < nK; k++ {
			kcur[k].init(p.keys[k])
		}
		n := int32(p.n)
		for pos := int32(0); pos < n; {
			segEnd := n
			for k := 0; k < nK; k++ {
				kcur[k].seek(pos)
				if kcur[k].end < segEnd {
					segEnd = kcur[k].end
				}
				codes[k] = kcur[k].code
			}
			ga.assign(codes, pos)
			pos = segEnd
		}
	}
	return len(ga.firsts)
}

// distinctParts returns the first-appearance partRef of every distinct
// key combination across parts, in first-appearance order.
func distinctParts(parts []*compPart, nK int) []partRef {
	ga := newGroupAssign(nK)
	kcur := make([]runCur, nK)
	codes := make([]int32, nK)
	for pi, p := range parts {
		if p.n == 0 {
			continue
		}
		ga.beginPart(p, int32(pi))
		for k := 0; k < nK; k++ {
			kcur[k].init(p.keys[k])
		}
		n := int32(p.n)
		for pos := int32(0); pos < n; {
			segEnd := n
			for k := 0; k < nK; k++ {
				kcur[k].seek(pos)
				if kcur[k].end < segEnd {
					segEnd = kcur[k].end
				}
				codes[k] = kcur[k].code
			}
			ga.assign(codes, pos)
			pos = segEnd
		}
	}
	return ga.firsts
}

// selectEqPlanParts resolves an equality probe against every part's
// dictionaries. It returns, per part, the wanted code of each probed
// column. divergent reports that code comparison cannot answer
// value.Equal for this probe (the caller must use a boxed scan);
// otherwise parts whose entry is nil cannot contain a match.
func selectEqPlanParts(parts []*compPart, vals value.Tuple) (want [][]int32, divergent bool) {
	want = make([][]int32, len(parts))
	for pi, p := range parts {
		w := make([]int32, len(vals))
		miss := false
		for i, v := range vals {
			code, ok, div := p.keys[i].EqCode(v)
			if div {
				return nil, true
			}
			if !ok {
				miss = true
				continue
			}
			w[i] = code
		}
		if !miss {
			want[pi] = w
		}
	}
	return want, false
}

// compressedPart assembles the single compPart of an in-memory Table
// for a query touching key columns gIdx and aggregate columns aCols.
// ok is false unless every touched column has a current compressed view
// covering exactly the live row count — the staleness check that keeps
// a view built before an append from serving the longer table.
func (t *Table) compressedPart(gIdx []int, aCols []aggCol) (*compPart, bool) {
	c := t.cols.Load()
	if c == nil {
		return nil, false
	}
	n := len(t.rows)
	p := &compPart{n: n}
	p.keys = make([]*CompressedCol, len(gIdx))
	for i, ci := range gIdx {
		cc := c.Compressed(ci)
		if cc == nil || cc.n != n {
			return nil, false
		}
		p.keys[i] = cc
	}
	p.aggs = make([]*CompressedCol, len(aCols))
	for i, ac := range aCols {
		if ac.idx < 0 {
			continue
		}
		cc := c.Compressed(ac.idx)
		if cc == nil || cc.n != n {
			return nil, false
		}
		p.aggs[i] = cc
	}
	rows := t.rows
	nK := len(gIdx)
	p.val = func(row, slot int) value.V {
		if slot < nK {
			return rows[row][gIdx[slot]]
		}
		return rows[row][aCols[slot-nK].idx]
	}
	return p, true
}

// groupByCompressed runs GroupBy over the table's compressed views,
// returning nil when any touched column lacks a current view (the
// caller then uses the columnar kernel). Some aggregate/column pairs
// also decline — see aggDeclinesCompressed.
func (t *Table) groupByCompressed(gIdx []int, aCols []aggCol, sch Schema) *Table {
	part, ok := t.compressedPart(gIdx, aCols)
	if !ok {
		return nil
	}
	for i, ac := range aCols {
		if aggDeclinesCompressed(ac.spec.Func, part.aggs[i]) {
			return nil
		}
	}
	return groupByCompressedParts([]*compPart{part}, len(gIdx), aCols, sch)
}

// aggDeclinesCompressed reports whether folding spec f over cc must be
// left to the per-row reference: Min/Max over a NaN-containing column
// (NaN compares equal to every numeric, so first-encounter tie-breaking
// is load-bearing), and Sum/Avg over a mixed-kind column (the fold reads
// kinds from the dictionary, but the result's Int-vs-Float kind depends
// on the actual per-row kinds).
func aggDeclinesCompressed(f AggFunc, cc *CompressedCol) bool {
	if cc == nil {
		return false
	}
	switch f {
	case Min, Max:
		return cc.hasNaN
	case Sum, Avg:
		return cc.mixedKind
	}
	return false
}

// selectEqCompressed answers SelectEq from the compressed views,
// appending matching rows to out. It reports false when the query
// cannot be served compressed — missing/stale views, or a probe where
// code equality diverges from value.Equal — in which case out is
// untouched and the caller falls through to the columnar/row paths.
func (t *Table) selectEqCompressed(out *Table, idx []int, vals value.Tuple) bool {
	part, ok := t.compressedPart(idx, nil)
	if !ok {
		return false
	}
	want, divergent := selectEqPlanParts([]*compPart{part}, vals)
	if divergent {
		return false
	}
	if want[0] == nil {
		return true // some probed value absent from a dictionary: no rows
	}
	rows := t.rows
	selectEqRuns(part, want[0], func(lo, hi int32) {
		out.rows = append(out.rows, rows[lo:hi]...)
	})
	return true
}

// countDistinctCompressed answers CountDistinct from the compressed
// views (ok=false when any view is missing or stale).
func (t *Table) countDistinctCompressed(idx []int) (int, bool) {
	part, ok := t.compressedPart(idx, nil)
	if !ok {
		return 0, false
	}
	if len(idx) == 1 {
		return len(part.keys[0].dict), true
	}
	return countGroupsParts([]*compPart{part}, len(idx)), true
}

// selectEqRuns walks the merged key runs of one part and emits the
// half-open local row ranges where every probed column carries its
// wanted code.
func selectEqRuns(p *compPart, want []int32, emit func(lo, hi int32)) {
	nK := len(want)
	kcur := make([]runCur, nK)
	for k := 0; k < nK; k++ {
		kcur[k].init(p.keys[k])
	}
	n := int32(p.n)
	for pos := int32(0); pos < n; {
		segEnd := n
		match := true
		for k := 0; k < nK; k++ {
			kcur[k].seek(pos)
			if kcur[k].end < segEnd {
				segEnd = kcur[k].end
			}
			if kcur[k].code != want[k] {
				match = false
			}
		}
		if match {
			emit(pos, segEnd)
		}
		pos = segEnd
	}
}
