package engine

import (
	"fmt"

	"cape/internal/value"
)

// GroupingColumn is the name of the bitmask column Cube adds to its
// output. Bit i is set when cols[i] is rolled up (not part of the
// grouping), mirroring SQL's GROUPING() construct that the paper uses to
// filter invalid groups out of the cube result.
const GroupingColumn = "grouping"

// Cube evaluates the aggregation for every subset S of cols with
// minSize <= |S| <= maxSize, returning the union of all those group-by
// results in one table. Rolled-up columns hold NULL; the GroupingColumn
// bitmask distinguishes a genuine NULL group value from a rolled-up
// column. This mirrors the paper's "Using the CUBE BY operator"
// optimization: one (expensive) query whose materialized result serves
// every pattern candidate.
func (t *Table) Cube(cols []string, minSize, maxSize int, aggs []AggSpec) (*Table, error) {
	return cubeOver(t, t.rowOnly, cols, minSize, maxSize, aggs)
}

// cubeOver is the shared CUBE loop: one GroupBy per subset, results
// unioned with rolled-up columns as NULL plus the grouping bitmask. Any
// Relation serves; each grouping routes through the source's own
// GroupBy dispatch (columnar, compressed, or segment-backed).
func cubeOver(r Relation, rowOnly bool, cols []string, minSize, maxSize int, aggs []AggSpec) (*Table, error) {
	if minSize < 0 || maxSize > len(cols) || minSize > maxSize {
		return nil, fmt.Errorf("engine: invalid cube size bounds [%d, %d] for %d columns", minSize, maxSize, len(cols))
	}
	if len(cols) > 62 {
		return nil, fmt.Errorf("engine: cube over %d columns exceeds bitmask width", len(cols))
	}
	if _, err := r.Schema().Indices(cols); err != nil {
		return nil, err
	}

	sch := make(Schema, 0, len(cols)+1+len(aggs))
	for _, c := range cols {
		sch = append(sch, Column{Name: c, Kind: value.Null})
	}
	sch = append(sch, Column{Name: GroupingColumn, Kind: value.Int})
	for _, a := range aggs {
		sch = append(sch, Column{Name: a.String(), Kind: value.Null})
	}
	out := NewTable(sch)
	out.rowOnly = rowOnly

	total := uint64(1) << uint(len(cols))
	var masks []uint64
	for mask := uint64(0); mask < total; mask++ {
		if size := popcount(mask); size >= minSize && size <= maxSize {
			masks = append(masks, mask)
		}
	}

	// One GroupBy per subset. The groupings are independent, so they fan
	// across the source's pool (when it has one) and are assembled in
	// mask order — the same output row order the sequential loop builds.
	var pool *Pool
	if pr, ok := r.(pooledRelation); ok {
		pool = pr.queryPool()
	}
	grouped := make([]*Table, len(masks))
	err := pool.ForEach("engine:cube", len(masks), func(mi int) error {
		mask := masks[mi]
		subset := make([]string, 0, popcount(mask))
		for i, c := range cols {
			if mask&(1<<uint(i)) != 0 {
				subset = append(subset, c)
			}
		}
		part, err := r.GroupBy(subset, aggs)
		if err != nil {
			return err
		}
		grouped[mi] = part
		return nil
	})
	if err != nil {
		return nil, err
	}

	for mi, mask := range masks {
		// grouping bitmask: bit i set when cols[i] is rolled up.
		grouping := int64(^mask) & int64(total-1)
		for _, r := range grouped[mi].Rows() {
			row := make(value.Tuple, 0, len(sch))
			si := 0
			for i := range cols {
				if mask&(1<<uint(i)) != 0 {
					row = append(row, r[si])
					si++
				} else {
					row = append(row, value.NewNull())
				}
			}
			row = append(row, value.NewInt(grouping))
			row = append(row, r[si:]...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// CubeSlice extracts from a Cube result the rows belonging to the
// grouping over exactly the columns in subset (in cube-column order),
// returning a table with schema (subset..., aggs...). cols must be the
// same column list that produced the cube.
func CubeSlice(cube *Table, cols, subset []string, aggs []AggSpec) (*Table, error) {
	var mask uint64
	for _, s := range subset {
		found := false
		for i, c := range cols {
			if c == s {
				mask |= 1 << uint(i)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("engine: subset column %q not in cube columns", s)
		}
	}
	total := uint64(1) << uint(len(cols))
	wantGrouping := int64(^mask) & int64(total-1)
	gIdx := cube.Schema().Index(GroupingColumn)
	if gIdx < 0 {
		return nil, fmt.Errorf("engine: table has no %s column", GroupingColumn)
	}

	sch := make(Schema, 0, len(subset)+len(aggs))
	colIdx := make([]int, len(subset))
	for i, s := range subset {
		ci := cube.Schema().Index(s)
		if ci < 0 {
			return nil, fmt.Errorf("engine: cube missing column %q", s)
		}
		colIdx[i] = ci
		sch = append(sch, Column{Name: s, Kind: value.Null})
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		ci := cube.Schema().Index(a.String())
		if ci < 0 {
			return nil, fmt.Errorf("engine: cube missing aggregate column %q", a.String())
		}
		aggIdx[i] = ci
		sch = append(sch, Column{Name: a.String(), Kind: value.Null})
	}

	// The grouping bitmask is an Int column Cube itself wrote; scan its
	// flat int64 buffer instead of unboxing every row. Rows of any other
	// kind (malformed input) still go through Int() so the row path's
	// panic behaviour is preserved.
	var gKinds []value.Kind
	var gI64 []int64
	if !cube.rowOnly && cube.NumRows() > 0 {
		gcol := cube.Columns().FlatCol(gIdx)
		if gcol.I64 != nil {
			gKinds, gI64 = gcol.Kinds, gcol.I64
		}
	}
	out := NewTable(sch)
	out.rowOnly = cube.rowOnly
	for ri, r := range cube.Rows() {
		if gKinds != nil && gKinds[ri] == value.Int {
			if gI64[ri] != wantGrouping {
				continue
			}
		} else if r[gIdx].Int() != wantGrouping {
			continue
		}
		row := make(value.Tuple, 0, len(sch))
		for _, ci := range colIdx {
			row = append(row, r[ci])
		}
		for _, ci := range aggIdx {
			row = append(row, r[ci])
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
