package engine

import (
	"math"

	"cape/internal/value"
)

// Appends extend derived structures in place instead of dropping them:
// hash indexes gain bucket entries for the tail rows, and every column of
// the columnar view that has already been built grows its flat buffers,
// null bitmap, and dictionary codes. The results are identical to a
// from-scratch rebuild over the longer table — new dictionary codes are
// assigned in first-appearance order just as buildCol would, index
// buckets keep ascending row order — so consumers cannot observe whether
// a view was built before or after an append. Reordering mutations
// (SortBy) still invalidate, since both structures store row positions.

// extendDerived advances the epoch and extends indexes and the columnar
// view for rows[oldLen:]; every append to t.rows must call it.
func (t *Table) extendDerived(oldLen int) {
	t.epoch++
	if len(t.indexes) > 0 {
		t.extendIndexes(oldLen)
	}
	t.extendColumnar(oldLen)
}

// extendIndexes adds the tail rows to every hash index's buckets.
func (t *Table) extendIndexes(oldLen int) {
	var keyBuf []byte
	for _, idx := range t.indexes {
		sortedIdx, err := t.schema.Indices(idx.cols)
		if err != nil {
			continue // unreachable: the index was built against this schema
		}
		for ri := oldLen; ri < len(t.rows); ri++ {
			row := t.rows[ri]
			keyBuf = keyBuf[:0]
			for i, ci := range sortedIdx {
				v := row[ci]
				if v.Kind() == value.Float && math.IsNaN(v.Float()) {
					idx.hasNaN[i] = true
				}
				keyBuf = v.AppendKey(keyBuf)
			}
			idx.buckets[string(keyBuf)] = append(idx.buckets[string(keyBuf)], ri)
		}
	}
}

// extendColumnar extends every already-built column of the cached
// columnar view for the tail rows. Columns never built stay unbuilt (they
// materialize over the full row slice on first use). The table contract
// — no mutation concurrent with reads — covers the in-place growth.
func (t *Table) extendColumnar(oldLen int) {
	c := t.cols.Load()
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows = t.rows
	for ci := range c.cols {
		if col := c.cols[ci].Load(); col != nil {
			col.extend(t.rows, ci, oldLen, true)
		}
		if col := c.flats[ci].Load(); col != nil {
			col.extend(t.rows, ci, oldLen, false)
		}
		// Compressed views are sealed encodings; drop rather than extend.
		// The atomic store means a concurrent reader sees either the old
		// (shorter, row-count-checked) view or none, never a torn one.
		if c.comp != nil {
			c.comp[ci].Store(nil)
		}
	}
}

// extend grows one built column for rows[oldLen:], reproducing exactly
// what buildCol(rows, ci, withDict) would produce over the full slice.
func (c *Col) extend(rows []value.Tuple, ci, oldLen int, withDict bool) {
	var keyBuf []byte
	dictGrew := false
	hadNaN := c.hasNaN
	for i := oldLen; i < len(rows); i++ {
		v := rows[i][ci]
		k := v.Kind()
		c.Kinds = append(c.Kinds, k)
		var f float64
		num := false
		switch k {
		case value.Int:
			iv := v.Int()
			if c.I64 == nil {
				c.I64 = make([]int64, i, len(rows))
			}
			c.I64 = append(c.I64, iv)
			f = float64(iv)
			num = true
		case value.Float:
			f = v.Float()
			num = true
			if math.IsNaN(f) {
				c.hasNaN = true
			}
		case value.Null:
			for len(c.nulls) < (i+64)/64 {
				c.nulls = append(c.nulls, 0)
			}
			c.nulls[i>>6] |= 1 << uint(i&63)
			c.nullCount++
		}
		if c.I64 != nil && k != value.Int {
			c.I64 = append(c.I64, 0)
		}
		c.F64 = append(c.F64, f)
		c.Num = append(c.Num, num)
		if withDict {
			keyBuf = v.AppendKey(keyBuf[:0])
			code, ok := c.lookup[string(keyBuf)]
			if !ok {
				code = int32(len(c.Dict))
				c.lookup[string(keyBuf)] = code
				c.Dict = append(c.Dict, v)
				dictGrew = true
			}
			c.Codes = append(c.Codes, code)
		}
	}
	// The null bitmap always spans every row, even when none of the tail
	// rows is NULL.
	for len(c.nulls) < (len(rows)+63)/64 {
		c.nulls = append(c.nulls, 0)
	}
	if withDict {
		switch {
		case c.hasNaN:
			// NaN breaks the Compare total order; rebuild would skip ranks.
			c.ranks, c.numRanks = nil, 0
		case dictGrew || (!hadNaN && c.ranks == nil):
			c.buildRanks()
		}
	}
}
