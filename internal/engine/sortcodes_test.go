package engine

import (
	"math/rand"
	"testing"

	"cape/internal/value"
)

// randomDistinctTable builds a table whose rows are distinct on the
// full column set (like a group-by output), mixing string and numeric
// columns. Distinctness is what lets the non-stable SortPerm agree with
// the stable Table.Sorted exactly.
func randomDistinctTable(rng *rand.Rand, rows int) (*Table, []string) {
	cols := []string{"a", "b", "c"}
	tab := NewTable(Schema{
		{Name: "a", Kind: value.String},
		{Name: "b", Kind: value.Int},
		{Name: "c", Kind: value.Float},
	})
	seen := map[string]bool{}
	for len(seen) < rows {
		row := value.Tuple{
			value.NewString(string(rune('p' + rng.Intn(6)))),
			value.NewInt(int64(rng.Intn(8))),
			value.NewFloat(float64(rng.Intn(10)) / 2),
		}
		k := row.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		tab.MustAppend(row)
	}
	return tab, cols
}

// applyPerm materializes the row order a permutation denotes.
func applyPerm(t *Table, perm []int32) []value.Tuple {
	out := make([]value.Tuple, len(perm))
	for i, ri := range perm {
		out[i] = t.Rows()[ri]
	}
	return out
}

// TestSortPermMatchesTableSorted: for random tables and random sort
// orders, sorting the permutation must order rows exactly like the
// row-copying Table.Sorted.
func TestSortPermMatchesTableSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		tab, cols := randomDistinctTable(rng, 40+rng.Intn(100))
		codes, err := BuildSortCodes(tab, cols)
		if err != nil {
			t.Fatal(err)
		}
		perm := codes.NewPerm()
		// Random order over a random subset-permutation of the columns.
		order := append([]string(nil), cols...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		order = order[:rng.Intn(len(order))+1]

		if err := codes.SortPerm(perm, order, 0); err != nil {
			t.Fatal(err)
		}
		want, err := tab.Sorted(order)
		if err != nil {
			t.Fatal(err)
		}
		got := applyPerm(tab, perm)
		for i := range got {
			// Rows may tie on a proper column subset; compare the sort
			// keys, which must agree position by position.
			for _, c := range order {
				ci := tab.Schema().Index(c)
				if value.Compare(got[i][ci], want.Rows()[i][ci]) != 0 {
					t.Fatalf("trial %d: row %d differs on %q after sort by %v", trial, i, c, order)
				}
			}
		}
	}
}

// TestSortPermPrefixReuse: re-sorting with a declared shared prefix must
// produce exactly the same permutation as a full sort by the new order.
func TestSortPermPrefixReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		tab, cols := randomDistinctTable(rng, 40+rng.Intn(100))
		codes, err := BuildSortCodes(tab, cols)
		if err != nil {
			t.Fatal(err)
		}

		first := append([]string(nil), cols...)
		rng.Shuffle(len(first), func(i, j int) { first[i], first[j] = first[j], first[i] })
		// Second order shares a random-length prefix with the first.
		k := rng.Intn(len(cols))
		second := append([]string(nil), first[:k]...)
		rest := append([]string(nil), first[k:]...)
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		second = append(second, rest...)

		reused := codes.NewPerm()
		if err := codes.SortPerm(reused, first, 0); err != nil {
			t.Fatal(err)
		}
		if err := codes.SortPerm(reused, second, k); err != nil {
			t.Fatal(err)
		}

		fresh := codes.NewPerm()
		if err := codes.SortPerm(fresh, second, 0); err != nil {
			t.Fatal(err)
		}
		for i := range fresh {
			if reused[i] != fresh[i] {
				t.Fatalf("trial %d: prefix-reused sort differs from full sort at %d (orders %v then %v, prefix %d)",
					trial, i, first, second, k)
			}
		}
	}
}

// TestSortPermIdenticalOrderNoop: keepPrefix covering the whole order
// leaves the permutation untouched.
func TestSortPermIdenticalOrderNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tab, cols := randomDistinctTable(rng, 60)
	codes, err := BuildSortCodes(tab, cols)
	if err != nil {
		t.Fatal(err)
	}
	perm := codes.NewPerm()
	if err := codes.SortPerm(perm, cols, 0); err != nil {
		t.Fatal(err)
	}
	before := append([]int32(nil), perm...)
	if err := codes.SortPerm(perm, cols, len(cols)); err != nil {
		t.Fatal(err)
	}
	for i := range perm {
		if perm[i] != before[i] {
			t.Fatal("no-op re-sort changed the permutation")
		}
	}
}

// TestSortPermUnknownColumn: sorting by an un-encoded column errors.
func TestSortPermUnknownColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tab, cols := randomDistinctTable(rng, 10)
	codes, err := BuildSortCodes(tab, cols[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := codes.SortPerm(codes.NewPerm(), cols, 0); err == nil {
		t.Fatal("sort by un-encoded column should error")
	}
}

// TestBuildSortCodesOrdersLikeCompare: codes must rank values exactly
// like value.Compare, including on columns mixing ints, floats, strings,
// and nulls (the generic fallback path).
func TestBuildSortCodesOrdersLikeCompare(t *testing.T) {
	tab := NewTable(Schema{{Name: "m", Kind: value.Null}})
	vals := []value.V{
		value.NewInt(3), value.NewFloat(3), value.NewFloat(2.5),
		value.NewString("x"), value.NewNull(), value.NewInt(-1),
		value.NewString("a"), value.NewNull(), value.NewFloat(3.5),
	}
	for _, v := range vals {
		tab.MustAppend(value.Tuple{v})
	}
	codes, err := BuildSortCodes(tab, []string{"m"})
	if err != nil {
		t.Fatal(err)
	}
	c := codes.Codes("m")
	for i, a := range vals {
		for j, b := range vals {
			cmp := value.Compare(a, b)
			switch {
			case cmp < 0 && !(c[i] < c[j]):
				t.Errorf("%v < %v but codes %d ≥ %d", a, b, c[i], c[j])
			case cmp == 0 && c[i] != c[j]:
				t.Errorf("%v = %v but codes %d ≠ %d", a, b, c[i], c[j])
			case cmp > 0 && !(c[i] > c[j]):
				t.Errorf("%v > %v but codes %d ≤ %d", a, b, c[i], c[j])
			}
		}
	}
}
