package engine

import (
	"encoding/binary"
	"math/bits"
	"sync"

	"cape/internal/value"
)

// CompressedCol is a compressed encoding of one dictionary-coded column:
// the per-row int32 codes of a Col re-expressed as run-length runs or as
// bit-packed words, next to the shared dictionary. Kernels that group,
// filter, or aggregate consume it through a runCur — a cursor yielding
// maximal equal-code runs in row order — so their cost scales with the
// number of runs (RLE) or with a sequential unpack (bit-packed), never
// with boxed per-row dispatch, and the code payload of an on-disk
// segment column can stay mmap'd instead of being decoded into dense
// heap slices.
//
// Nulls need no separate bitmap here: NULL is a dictionary value like
// any other, so nullCode marks the code kernels must treat as NULL
// (compare Col, whose flat buffers carry an explicit bitmap). All fields
// are immutable after construction; a CompressedCol is safe for
// concurrent use.
type CompressedCol struct {
	n    int
	dict []value.V

	// Dictionary metadata decoded once so aggregate folds never touch
	// boxed values: kind, numeric payloads, and the flags the dispatch
	// rules check.
	dictKind []value.Kind
	dictF64  []float64
	dictI64  []int64
	nullCode int32 // dictionary code of NULL, -1 when the column has none
	hasNaN   bool
	hasFloat bool // any Float value in the dictionary (sumF shortcuts)
	// mixedKind records that some row's kind differs from its dictionary
	// representative's — possible because AppendKey folds Int(k) and the
	// integral Float(k) into one class. Sum/Avg folds read kinds from the
	// dictionary, so dispatchers decline mixed columns (segment columns
	// are canonicalized and never mixed).
	mixedKind bool

	// Exactly one of the three encodings is populated:
	//   RLE:   runEnds[i] is the exclusive end row of run i, whose code
	//          is runCodes[i].
	//   PACK:  codes bit-packed LSB-first into little-endian 64-bit
	//          words (bitWidth bits each); packed may view mmap'd bytes.
	//   DENSE: a zero-copy view over a Col's Codes slice (used for the
	//          uncompressed tail of a SegTable).
	runEnds  []int32
	runCodes []int32
	packed   []byte
	bitWidth uint32
	dense    []int32

	lookupOnce sync.Once
	lookup     map[string]int32 // AppendKey bytes → code, built lazily

	// Decoded-block cache for the PACK encoding: sequential cursors
	// decode 1024-code blocks through here, so refinement scans that
	// revisit the same rows (one group-by per attribute set, repeated
	// selection probes) pay the bit-unpack once per block instead of
	// once per row per scan. The cache is keyed by block index only —
	// the column is immutable, so there is no epoch to track: a column
	// rebuilt after an append (or a segment re-opened after Compact) is
	// a fresh CompressedCol with a fresh cache, and closing a segment
	// drops its columns and their caches together, before the mmap is
	// unmapped. Cached slices are never mutated after insertion, and
	// eviction only drops the cache's reference, so cursors holding an
	// evicted block stay valid.
	blockMu   sync.Mutex
	blockTick uint64
	blockMap  map[int32]*decodedBlock

	// Per-code row-span index (CSR layout), built lazily by spanIndex
	// for the immutable RLE/PACK encodings; see selectindex.go.
	spanOnce sync.Once
	spanOff  []int32
	spans    []int32
}

// decodedBlock is one cached decoded PACK block with its LRU recency.
type decodedBlock struct {
	codes []int32
	used  uint64
}

// Decode blocks are 1024 codes; the per-column cache keeps the 64 most
// recently used (256 KiB of codes), enough to cover a morsel's working
// set many times over while staying irrelevant next to the mmap'd
// payload it fronts.
const (
	decodeBlockShift  = 10
	decodeBlockLen    = 1 << decodeBlockShift
	decodeCacheBlocks = 64
)

// Encoding names for introspection (cape convert reporting, tests).
const (
	encRLE   = 1
	encPack  = 2
	encDense = 3
)

func (cc *CompressedCol) encoding() int {
	switch {
	case cc.runEnds != nil:
		return encRLE
	case cc.packed != nil:
		return encPack
	default:
		return encDense
	}
}

// EncodingName reports the storage encoding ("rle", "bitpack", "dense").
func (cc *CompressedCol) EncodingName() string {
	switch cc.encoding() {
	case encRLE:
		return "rle"
	case encPack:
		return "bitpack"
	default:
		return "dense"
	}
}

// NumRows reports the number of rows the column covers. Kernels compare
// it against the live table length before trusting a cached view — the
// epoch check that keeps a stale compressed view from ever serving a
// query after an append.
func (cc *CompressedCol) NumRows() int { return cc.n }

// NumRuns reports the stored run count (RLE only; 0 otherwise).
func (cc *CompressedCol) NumRuns() int { return len(cc.runEnds) }

// Dict returns the dictionary (callers must not mutate it).
func (cc *CompressedCol) Dict() []value.V { return cc.dict }

// HasNaN reports whether any dictionary value is NaN, in which case code
// equality diverges from value.Equal and kernels must fall back.
func (cc *CompressedCol) HasNaN() bool { return cc.hasNaN }

// buildDictMeta decodes the dictionary into flat lookup arrays.
func (cc *CompressedCol) buildDictMeta() {
	d := len(cc.dict)
	cc.dictKind = make([]value.Kind, d)
	cc.dictF64 = make([]float64, d)
	cc.dictI64 = make([]int64, d)
	cc.nullCode = -1
	for i, v := range cc.dict {
		k := v.Kind()
		cc.dictKind[i] = k
		switch k {
		case value.Int:
			iv := v.Int()
			cc.dictI64[i] = iv
			cc.dictF64[i] = float64(iv)
		case value.Float:
			f := v.Float()
			cc.dictF64[i] = f
			cc.hasFloat = true
			if f != f {
				cc.hasNaN = true
			}
		case value.Null:
			cc.nullCode = int32(i)
		}
	}
}

// CodeOf returns the dictionary code of v under AppendKey equality, or
// ok=false when v does not occur in the column.
func (cc *CompressedCol) CodeOf(v value.V) (int32, bool) {
	cc.lookupOnce.Do(func() {
		m := make(map[string]int32, len(cc.dict))
		var buf []byte
		for i, dv := range cc.dict {
			buf = dv.AppendKey(buf[:0])
			if _, dup := m[string(buf)]; !dup {
				m[string(buf)] = int32(i)
			}
		}
		cc.lookup = m
	})
	var buf [24]byte
	code, ok := cc.lookup[string(v.AppendKey(buf[:0]))]
	return code, ok
}

// EqCode resolves an equality probe like Col.EqCode: divergent means
// code comparison cannot answer value.Equal for this probe and the
// caller must fall back to a boxed scan.
func (cc *CompressedCol) EqCode(v value.V) (code int32, ok, divergent bool) {
	if eqDivergent(v, cc.hasNaN) {
		return 0, false, true
	}
	code, ok = cc.CodeOf(v)
	return code, ok, false
}

// CodeAt returns the code of row i: direct for DENSE and PACK, a binary
// search over run ends for RLE. Intended for sparse random access (row
// materialization, group representatives); sequential consumers use a
// runCur.
func (cc *CompressedCol) CodeAt(i int) int32 {
	switch {
	case cc.dense != nil:
		return cc.dense[i]
	case cc.packed != nil:
		return cc.unpack(i)
	default:
		lo, hi := 0, len(cc.runEnds)
		for lo < hi {
			mid := (lo + hi) / 2
			if int(cc.runEnds[mid]) <= i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return cc.runCodes[lo]
	}
}

// ValueAt returns the dictionary value of row i.
func (cc *CompressedCol) ValueAt(i int) value.V { return cc.dict[cc.CodeAt(i)] }

// unpack decodes one bit-packed code. Codes are packed LSB-first into
// little-endian 64-bit words; a code may straddle two words.
func (cc *CompressedCol) unpack(i int) int32 {
	bw := uint(cc.bitWidth)
	bitPos := uint64(i) * uint64(bw)
	w := (bitPos >> 6) << 3
	off := uint(bitPos & 63)
	lo := binary.LittleEndian.Uint64(cc.packed[w:]) >> off
	if off+bw > 64 {
		lo |= binary.LittleEndian.Uint64(cc.packed[w+8:]) << (64 - off)
	}
	return int32(lo & (1<<bw - 1))
}

// unpackBlock decodes the codes of decode block b — rows
// [b·1024, min(n, (b+1)·1024)) — into dst, which must be exactly the
// block's length. Unlike per-row unpack, the packed words stream
// through one running register: about one 64-bit load per word plus
// two shifts per code, instead of recomputing a byte offset and
// reloading (possibly twice) for every row.
func (cc *CompressedCol) unpackBlock(b int, dst []int32) {
	bw := uint(cc.bitWidth)
	mask := uint64(1)<<bw - 1
	bitPos := uint64(b<<decodeBlockShift) * uint64(bw)
	w := int(bitPos>>6) << 3
	off := uint(bitPos & 63)
	packed := cc.packed
	cur := binary.LittleEndian.Uint64(packed[w:])
	for i := range dst {
		v := cur >> off
		off += bw
		if off >= 64 {
			w += 8
			off -= 64
			if w+8 <= len(packed) {
				cur = binary.LittleEndian.Uint64(packed[w:])
			} else {
				cur = 0
			}
			if off > 0 {
				v |= cur << (bw - off)
			}
		}
		dst[i] = int32(v & mask)
	}
}

// runIdx returns the index of the run containing row i (RLE only).
func runIdx(runEnds []int32, i int32) int {
	lo, hi := 0, len(runEnds)
	for lo < hi {
		mid := (lo + hi) / 2
		if runEnds[mid] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// runsInRange reports how many maximal equal-code runs cover rows
// [lo, hi): exact for RLE, hi-lo for PACK and dense (the worst case —
// unsorted payloads decode to run length ~1, which is when the decode
// pass beats the run walk). Group-by uses it to pick between the two.
func (cc *CompressedCol) runsInRange(lo, hi int32) int {
	if hi <= lo {
		return 0
	}
	if cc.runEnds == nil {
		return int(hi - lo)
	}
	return runIdx(cc.runEnds, hi-1) - runIdx(cc.runEnds, lo) + 1
}

// decodeRange materializes the codes of rows [lo, hi) into dst (length
// hi-lo). PACK blocks fully inside the range unpack straight into dst
// (no lock, no cache churn); edge blocks go through the decoded-block
// cache.
func (cc *CompressedCol) decodeRange(lo, hi int32, dst []int32) {
	switch {
	case cc.dense != nil:
		copy(dst, cc.dense[lo:hi])
	case cc.packed != nil:
		for pos := lo; pos < hi; {
			b := int(pos) >> decodeBlockShift
			bStart := int32(b << decodeBlockShift)
			bLen := int32(cc.blockLen(b))
			if pos == bStart && bStart+bLen <= hi {
				cc.unpackBlock(b, dst[pos-lo:pos-lo+bLen])
				pos += bLen
				continue
			}
			codes := cc.decodedBlockAt(b)
			pos += int32(copy(dst[pos-lo:], codes[pos-bStart:]))
		}
	default: // RLE
		i := runIdx(cc.runEnds, lo)
		for pos := lo; pos < hi; i++ {
			end := cc.runEnds[i]
			if end > hi {
				end = hi
			}
			c := cc.runCodes[i]
			seg := dst[pos-lo : end-lo]
			for j := range seg {
				seg[j] = c
			}
			pos = end
		}
	}
}

// blockLen returns the row count of decode block b.
func (cc *CompressedCol) blockLen(b int) int {
	lo := b << decodeBlockShift
	hi := lo + decodeBlockLen
	if hi > cc.n {
		hi = cc.n
	}
	return hi - lo
}

// decodedBlockAt returns the decoded codes of PACK block b, serving
// repeat reads from the per-column LRU. The returned slice is shared
// and must not be mutated.
func (cc *CompressedCol) decodedBlockAt(b int) []int32 {
	key := int32(b)
	cc.blockMu.Lock()
	if db, ok := cc.blockMap[key]; ok {
		cc.blockTick++
		db.used = cc.blockTick
		codes := db.codes
		cc.blockMu.Unlock()
		return codes
	}
	cc.blockMu.Unlock()

	codes := make([]int32, cc.blockLen(b))
	cc.unpackBlock(b, codes)

	cc.blockMu.Lock()
	if db, ok := cc.blockMap[key]; ok {
		// Decoded concurrently by another cursor; keep the cached copy.
		cc.blockTick++
		db.used = cc.blockTick
		codes = db.codes
	} else {
		if cc.blockMap == nil {
			cc.blockMap = make(map[int32]*decodedBlock, decodeCacheBlocks)
		} else if len(cc.blockMap) >= decodeCacheBlocks {
			var evict int32
			oldest := uint64(1<<64 - 1)
			for k, v := range cc.blockMap {
				if v.used < oldest {
					oldest, evict = v.used, k
				}
			}
			delete(cc.blockMap, evict)
		}
		cc.blockTick++
		cc.blockMap[key] = &decodedBlock{codes: codes, used: cc.blockTick}
	}
	cc.blockMu.Unlock()
	return codes
}

// packCodes bit-packs codes into little-endian words of bw bits each.
func packCodes(codes []int32, bw uint32) []byte {
	words := (uint64(len(codes))*uint64(bw) + 63) / 64
	out := make([]byte, words*8)
	var acc uint64
	var accBits uint
	w := 0
	for _, c := range codes {
		acc |= uint64(uint32(c)) << accBits
		accBits += uint(bw)
		for accBits >= 64 {
			binary.LittleEndian.PutUint64(out[w:], acc)
			w += 8
			accBits -= 64
			if accBits > 0 {
				acc = uint64(uint32(c)) >> (uint(bw) - accBits)
			} else {
				acc = 0
			}
		}
	}
	if accBits > 0 {
		binary.LittleEndian.PutUint64(out[w:], acc)
	}
	return out
}

// bitWidthFor returns the packed width for a dictionary of d entries
// (at least 1 bit so zero-length codes never occur).
func bitWidthFor(d int) uint32 {
	if d <= 1 {
		return 1
	}
	return uint32(bits.Len32(uint32(d - 1)))
}

// rleRuns run-length encodes codes.
func rleRuns(codes []int32) (ends, runs []int32) {
	for i := 0; i < len(codes); {
		c := codes[i]
		j := i + 1
		for j < len(codes) && codes[j] == c {
			j++
		}
		ends = append(ends, int32(j))
		runs = append(runs, c)
		i = j
	}
	return ends, runs
}

// compressCodes builds a CompressedCol from dense codes and their
// dictionary, choosing the smaller of RLE and bit-packed storage (the
// tie goes to RLE, whose cursor is cheaper).
func compressCodes(codes []int32, dict []value.V) *CompressedCol {
	cc := &CompressedCol{n: len(codes), dict: dict}
	cc.buildDictMeta()
	ends, runs := rleRuns(codes)
	bw := bitWidthFor(len(dict))
	rleBytes := len(ends) * 8
	packBytes := (len(codes)*int(bw) + 63) / 64 * 8
	if rleBytes <= packBytes {
		cc.runEnds, cc.runCodes = ends, runs
	} else {
		cc.bitWidth = bw
		cc.packed = packCodes(codes, bw)
	}
	return cc
}

// denseView wraps a Col's dense codes as a CompressedCol without copying
// the code payload — the representation SegTable uses for its
// uncompressed tail so every kernel consumes one cursor type.
func denseView(col *Col) *CompressedCol {
	cc := &CompressedCol{n: len(col.Codes), dict: col.Dict, dense: col.Codes}
	cc.buildDictMeta()
	cc.markMixedKinds(col.Kinds, col.Codes)
	return cc
}

// markMixedKinds sets mixedKind when any row's kind differs from its
// dictionary representative's kind.
func (cc *CompressedCol) markMixedKinds(kinds []value.Kind, codes []int32) {
	for r, k := range kinds {
		if k != cc.dictKind[codes[r]] {
			cc.mixedKind = true
			return
		}
	}
}

// RunCursor iterates the maximal equal-code runs of a CompressedCol in
// row order — the exported face of the kernels' internal cursor, used by
// consumers outside the engine (pattern.SharedFitter intersects
// partition columns' runs to find fragment boundaries without touching
// rows). Seek positions must be non-decreasing.
type RunCursor struct{ c runCur }

// Init binds the cursor to a column and resets it.
func (rc *RunCursor) Init(cc *CompressedCol) { rc.c.init(cc) }

// Seek advances to the run covering row pos and returns the run's
// dictionary code and exclusive end row.
func (rc *RunCursor) Seek(pos int32) (code, end int32) {
	rc.c.seek(pos)
	return rc.c.code, rc.c.end
}

// runCur is a cursor over the maximal equal-code runs of a CompressedCol
// in row order. After seek(pos), code is the code of row pos and end is
// the first row after pos with a different code (or n). PACK and DENSE
// encodings synthesize runs by coalescing adjacent equal codes during
// the sequential decode; PACK decodes 1024-code blocks once (through
// the column's block cache) instead of re-unpacking bits per row, and a
// run continues across block boundaries so runs stay maximal — which
// RunCursor consumers (fragment-boundary intersection) rely on.
type runCur struct {
	cc   *CompressedCol
	idx  int   // next RLE run to load
	end  int32 // exclusive end of the current run
	code int32

	// Current decoded PACK block: rows [bufLo, bufLo+len(buf)).
	buf   []int32
	bufLo int32
}

func (c *runCur) init(cc *CompressedCol) {
	c.cc = cc
	c.idx = 0
	c.end = 0
	c.code = -1
	c.buf = nil
	c.bufLo = 0
}

// initAt binds the cursor and positions its internal state so the first
// seek lands on row pos in O(log runs) — morsel workers enter a part
// mid-way, where the RLE path's sequential run scan from 0 would cost
// O(runs before pos).
func (c *runCur) initAt(cc *CompressedCol, pos int32) {
	c.init(cc)
	if ends := cc.runEnds; ends != nil {
		lo, hi := 0, len(ends)
		for lo < hi {
			mid := (lo + hi) / 2
			if ends[mid] <= pos {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		c.idx = lo
	}
}

// loadBlock points buf at the decoded block containing row pos.
func (c *runCur) loadBlock(pos int32) {
	b := int(pos) >> decodeBlockShift
	c.buf = c.cc.decodedBlockAt(b)
	c.bufLo = int32(b << decodeBlockShift)
}

// seek advances the cursor so that its current run covers row pos.
// pos must be non-decreasing across calls.
func (c *runCur) seek(pos int32) {
	if pos < c.end {
		return
	}
	cc := c.cc
	if cc.runEnds != nil {
		for c.idx < len(cc.runEnds) && cc.runEnds[c.idx] <= pos {
			c.idx++
		}
		c.end = cc.runEnds[c.idx]
		c.code = cc.runCodes[c.idx]
		c.idx++
		return
	}
	n := int32(cc.n)
	if cc.dense != nil {
		code := cc.dense[pos]
		e := pos + 1
		for e < n && cc.dense[e] == code {
			e++
		}
		c.code, c.end = code, e
		return
	}
	if pos < c.bufLo || pos >= c.bufLo+int32(len(c.buf)) {
		c.loadBlock(pos)
	}
	code := c.buf[pos-c.bufLo]
	e := pos + 1
	for e < n {
		if e >= c.bufLo+int32(len(c.buf)) {
			c.loadBlock(e)
		}
		buf, lo := c.buf, c.bufLo
		i := e - lo
		m := int32(len(buf))
		for i < m && buf[i] == code {
			i++
		}
		e = lo + i
		if i < m {
			break // run ended inside this block
		}
	}
	c.code, c.end = code, e
}
