package engine

import (
	"math"
	"reflect"
	"testing"

	"cape/internal/value"
)

// extendTable builds a table whose second column is untyped so append
// batches can introduce new kinds (first Int, NULL, NaN) into the tail.
func extendTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable(Schema{
		{Name: "a", Kind: value.String},
		{Name: "b", Kind: value.Null}, // untyped
		{Name: "c", Kind: value.Int},
	})
	rows := []value.Tuple{
		{value.NewString("x"), value.NewFloat(1.5), value.NewInt(10)},
		{value.NewString("y"), value.NewFloat(2.5), value.NewInt(20)},
		{value.NewString("x"), value.NewNull(), value.NewInt(30)},
		{value.NewString("z"), value.NewString("s"), value.NewInt(40)},
	}
	if err := tab.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	return tab
}

// requireColIdentical compares every field of an extended column against
// a from-scratch rebuild, including the unexported null bitmap, lookup
// map, NaN flag, and rank table.
func requireColIdentical(t *testing.T, label string, got, want *Col) {
	t.Helper()
	if !reflect.DeepEqual(got.Kinds, want.Kinds) {
		t.Errorf("%s: Kinds %v vs %v", label, got.Kinds, want.Kinds)
	}
	if !reflect.DeepEqual(got.Num, want.Num) {
		t.Errorf("%s: Num %v vs %v", label, got.Num, want.Num)
	}
	// Bit-level float equality: DeepEqual treats NaN as unequal to itself.
	if len(got.F64) != len(want.F64) {
		t.Errorf("%s: F64 len %d vs %d", label, len(got.F64), len(want.F64))
	} else {
		for i := range got.F64 {
			if math.Float64bits(got.F64[i]) != math.Float64bits(want.F64[i]) {
				t.Errorf("%s: F64[%d] %v vs %v", label, i, got.F64[i], want.F64[i])
			}
		}
	}
	if !reflect.DeepEqual(got.I64, want.I64) {
		t.Errorf("%s: I64 %v vs %v", label, got.I64, want.I64)
	}
	if !reflect.DeepEqual(got.Codes, want.Codes) {
		t.Errorf("%s: Codes %v vs %v", label, got.Codes, want.Codes)
	}
	if len(got.Dict) != len(want.Dict) {
		t.Errorf("%s: Dict len %d vs %d", label, len(got.Dict), len(want.Dict))
	} else {
		for i := range got.Dict {
			gk := got.Dict[i].AppendKey(nil)
			wk := want.Dict[i].AppendKey(nil)
			if string(gk) != string(wk) {
				t.Errorf("%s: Dict[%d] %v vs %v", label, i, got.Dict[i], want.Dict[i])
			}
		}
	}
	if !reflect.DeepEqual(got.lookup, want.lookup) {
		t.Errorf("%s: lookup %v vs %v", label, got.lookup, want.lookup)
	}
	if !reflect.DeepEqual(got.nulls, want.nulls) {
		t.Errorf("%s: nulls %v vs %v", label, got.nulls, want.nulls)
	}
	if got.nullCount != want.nullCount {
		t.Errorf("%s: nullCount %d vs %d", label, got.nullCount, want.nullCount)
	}
	if got.hasNaN != want.hasNaN {
		t.Errorf("%s: hasNaN %v vs %v", label, got.hasNaN, want.hasNaN)
	}
	if !reflect.DeepEqual(got.ranks, want.ranks) || got.numRanks != want.numRanks {
		t.Errorf("%s: ranks %v/%d vs %v/%d", label, got.ranks, got.numRanks, want.ranks, want.numRanks)
	}
}

// TestColumnarExtendIdenticalToRebuild pins the core extension contract:
// after an append, every built column (dictionary and flat tiers) is
// field-for-field identical to building it from scratch over the longer
// row slice — new dictionary codes in first-appearance order, lazily
// allocated I64, grown null bitmaps, rebuilt ranks.
func TestColumnarExtendIdenticalToRebuild(t *testing.T) {
	batches := [][]value.Tuple{
		// New dictionary value in a, NULL in b.
		{
			{value.NewString("w"), value.NewNull(), value.NewInt(50)},
			{value.NewString("x"), value.NewFloat(3.5), value.NewInt(60)},
		},
		// First Int in b: the I64 buffer must materialize lazily with
		// zero backfill, exactly as a rebuild would allocate it.
		{
			{value.NewString("y"), value.NewInt(7), value.NewInt(70)},
		},
		// Repeat keys only: dictionary must not grow, ranks unchanged.
		{
			{value.NewString("x"), value.NewInt(7), value.NewInt(10)},
		},
	}

	tab := extendTable(t)
	cols := tab.Columns()
	for ci := range tab.Schema() {
		cols.Col(ci) // materialize the dictionary tier
	}
	flatTab := extendTable(t)
	flats := flatTab.Columns()
	for ci := range flatTab.Schema() {
		flats.FlatCol(ci) // materialize only the flat tier
	}

	for bi, batch := range batches {
		if err := tab.AppendRows(batch); err != nil {
			t.Fatal(err)
		}
		if err := flatTab.AppendRows(batch); err != nil {
			t.Fatal(err)
		}
		for ci, sc := range tab.Schema() {
			got := cols.Col(ci)
			want := buildCol(tab.Rows(), ci, true)
			requireColIdentical(t, sc.Name+" dict batch "+string(rune('0'+bi)), got, want)

			gotFlat := flats.FlatCol(ci)
			wantFlat := buildCol(flatTab.Rows(), ci, false)
			requireColIdentical(t, sc.Name+" flat batch "+string(rune('0'+bi)), gotFlat, wantFlat)
		}
	}
}

// TestColumnarExtendNaN pins the rank teardown: a NaN arriving in the
// tail of a previously rank-ordered column must nil the ranks, exactly
// like a rebuild that sees the NaN.
func TestColumnarExtendNaN(t *testing.T) {
	tab := extendTable(t)
	cols := tab.Columns()
	b := cols.Col(1)
	if b.ranks == nil {
		t.Fatal("precondition: column b should have ranks before NaN")
	}
	if err := tab.Append(value.Tuple{
		value.NewString("x"), value.NewFloat(math.NaN()), value.NewInt(80),
	}); err != nil {
		t.Fatal(err)
	}
	got := cols.Col(1)
	want := buildCol(tab.Rows(), 1, true)
	requireColIdentical(t, "b after NaN", got, want)
	if got.ranks != nil || !got.hasNaN {
		t.Errorf("NaN tail must clear ranks and set hasNaN: ranks=%v hasNaN=%v", got.ranks, got.hasNaN)
	}
}

// TestEpochSemantics pins the epoch counter: one tick per Append call,
// one per non-empty AppendRows batch, one per SortBy; empty batches are
// no-ops; Clone carries the source's epoch.
func TestEpochSemantics(t *testing.T) {
	tab := extendTable(t) // one AppendRows batch
	if e := tab.Epoch(); e != 1 {
		t.Fatalf("epoch after initial batch = %d, want 1", e)
	}
	tab.MustAppend(value.Tuple{value.NewString("q"), value.NewNull(), value.NewInt(1)})
	if e := tab.Epoch(); e != 2 {
		t.Fatalf("epoch after Append = %d, want 2", e)
	}
	if err := tab.AppendRows(nil); err != nil {
		t.Fatal(err)
	}
	if e := tab.Epoch(); e != 2 {
		t.Fatalf("epoch after empty AppendRows = %d, want 2 (no-op)", e)
	}
	if err := tab.AppendRows([]value.Tuple{
		{value.NewString("r"), value.NewNull(), value.NewInt(2)},
		{value.NewString("s"), value.NewNull(), value.NewInt(3)},
	}); err != nil {
		t.Fatal(err)
	}
	if e := tab.Epoch(); e != 3 {
		t.Fatalf("epoch after batch AppendRows = %d, want 3", e)
	}
	clone := tab.Clone()
	if clone.Epoch() != tab.Epoch() {
		t.Fatalf("clone epoch = %d, want %d", clone.Epoch(), tab.Epoch())
	}
	if err := tab.SortBy([]string{"c"}); err != nil {
		t.Fatal(err)
	}
	if e := tab.Epoch(); e != 4 {
		t.Fatalf("epoch after SortBy = %d, want 4", e)
	}
	if clone.Epoch() != 3 {
		t.Fatalf("clone epoch changed with source: %d", clone.Epoch())
	}
}

// TestAppendRowsValidation pins atomicity: a batch with one bad row is
// rejected entirely, leaving rows, derived caches, and epoch untouched.
func TestAppendRowsValidation(t *testing.T) {
	tab := extendTable(t)
	before := tab.Epoch()
	n := tab.NumRows()
	err := tab.AppendRows([]value.Tuple{
		{value.NewString("ok"), value.NewNull(), value.NewInt(1)},
		{value.NewInt(9), value.NewNull(), value.NewInt(2)}, // kind mismatch in a
	})
	if err == nil {
		t.Fatal("batch with invalid row must be rejected")
	}
	if tab.NumRows() != n || tab.Epoch() != before {
		t.Fatalf("rejected batch mutated table: rows %d→%d epoch %d→%d", n, tab.NumRows(), before, tab.Epoch())
	}
}
