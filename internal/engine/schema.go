// Package engine is an in-memory relational engine: typed schemas, row
// tables, and the operators CAPE's mining and explanation algorithms are
// built from — selection, projection, multi-aggregate grouping, multi-key
// sorting, and a CUBE operator with group-size filtering. It stands in for
// the PostgreSQL instance the paper ran on; the mining variants differ
// only in which of these operators they invoke and how often.
package engine

import (
	"encoding/json"
	"fmt"

	"cape/internal/value"
)

// Column describes one attribute of a schema. Kind value.Null means the
// column is untyped (accepts any value); a concrete kind is enforced on
// Append.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// Index returns the position of the named column, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Indices resolves a list of column names to positions. It fails on the
// first unknown name.
func (s Schema) Indices(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx := s.Index(n)
		if idx < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", n)
		}
		out[i] = idx
	}
	return out, nil
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two schemas have identical names and kinds in the
// same order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// ValidateRow checks one row against the schema: matching arity, and
// each value matching the column kind unless the column is untyped
// (Kind value.Null) or the value is NULL. This is the exact check Table
// and SegTable apply on append, exported so write-ahead logging can
// reject a bad batch before a record is framed.
func (s Schema) ValidateRow(row value.Tuple) error {
	if len(row) != len(s) {
		return fmt.Errorf("engine: arity mismatch: row has %d values, schema %d columns", len(row), len(s))
	}
	for i, v := range row {
		want := s[i].Kind
		if want != value.Null && !v.IsNull() && v.Kind() != want {
			return fmt.Errorf("engine: column %q expects %s, got %s", s[i].Name, want, v.Kind())
		}
	}
	return nil
}

// MarshalSchemaJSON encodes the schema in the same {name, kind} JSON
// shape the segment header embeds, for use by other persisted envelopes
// (the store manifest, JSONL backups).
func MarshalSchemaJSON(s Schema) ([]byte, error) {
	return json.Marshal(schemaDTO(s))
}

// ParseSchemaJSON decodes a schema encoded by MarshalSchemaJSON,
// rejecting unknown column kinds.
func ParseSchemaJSON(data []byte) (Schema, error) {
	var dto []schemaColDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("engine: decoding schema JSON: %w", err)
	}
	return schemaFromDTO(dto)
}
