package regress

import "fmt"

// FromParams reconstructs a fitted model from its serialized family,
// coefficients, and goodness-of-fit — the inverse of Model.Params() +
// Model.GoF(), used when loading mined patterns from disk.
func FromParams(mt ModelType, params []float64, gof float64) (Model, error) {
	if gof < 0 || gof > 1 {
		return nil, fmt.Errorf("regress: goodness-of-fit %g outside [0,1]", gof)
	}
	switch mt {
	case Const:
		if len(params) != 1 {
			return nil, fmt.Errorf("regress: Const model needs 1 parameter, got %d", len(params))
		}
		return &constModel{mean: params[0], gof: gof}, nil
	case Lin:
		if len(params) < 2 {
			return nil, fmt.Errorf("regress: Lin model needs ≥ 2 parameters, got %d", len(params))
		}
		return &linearModel{beta: append([]float64(nil), params...), gof: gof}, nil
	default:
		return nil, fmt.Errorf("regress: unknown model type %d", mt)
	}
}
