package regress

import "cape/internal/stats"

// Mergeable sufficient statistics for delta pattern maintenance.
//
// ConstStats.Merge and LinStats combine statistics accumulated over
// disjoint row ranges. Counts, mins, maxes, and the normal-equation
// moment matrices merge exactly; the float sums (Σy, Σy², XᵀX, Xᵀy)
// reassociate, so a merged fit is algebraically identical to a
// one-pass fit but may differ in the last float64 bits. Callers that
// need bitwise agreement with a cold fit — the incremental Maintainer
// pinning byte-identical pattern stores — must instead re-fold touched
// fragments in row order through ConstStats.Add / FitLinInto; callers
// that only need statistical agreement (distributed or out-of-order
// accumulation) can merge.

// Merge folds the statistics of other (accumulated over rows disjoint
// from s's) into s, as if s had also seen other's observations.
func (s *ConstStats) Merge(other ConstStats) {
	if other.N == 0 {
		return
	}
	if s.N == 0 {
		*s = other
		return
	}
	if other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.N += other.N
	s.Sum += other.Sum
	s.SumSq += other.SumSq
}

// LinStats accumulates the sufficient statistics of an intercepted
// least-squares fit over d predictors: n, XᵀX, Xᵀy (with the intercept
// column folded in), and Σy² for the R² computation. Two LinStats over
// disjoint row ranges merge by element-wise addition, making the linear
// fit maintainable under appends without retaining observations.
type LinStats struct {
	D     int // number of predictors (excluding intercept)
	N     int
	XtX   []float64 // (d+1)×(d+1) row-major; upper triangle accumulated
	XtY   []float64 // d+1
	SumY  float64
	SumY2 float64
}

// NewLinStats returns empty statistics for d predictors.
func NewLinStats(d int) *LinStats {
	p := d + 1
	return &LinStats{D: d, XtX: make([]float64, p*p), XtY: make([]float64, p)}
}

// Reset clears the statistics for reuse with the same predictor count.
func (s *LinStats) Reset() {
	s.N = 0
	s.SumY = 0
	s.SumY2 = 0
	for i := range s.XtX {
		s.XtX[i] = 0
	}
	for i := range s.XtY {
		s.XtY[i] = 0
	}
}

// Add folds one observation with predictor vector x (length D) and
// response y, accumulating upper-triangle products exactly like
// FitLinInto's one-pass loop.
func (s *LinStats) Add(x []float64, y float64) {
	p := s.D + 1
	s.N++
	s.XtX[0]++
	for j := 1; j < p; j++ {
		s.XtX[j] += x[j-1]
	}
	s.XtY[0] += y
	for i := 1; i < p; i++ {
		xi := x[i-1]
		base := i * p
		for j := i; j < p; j++ {
			s.XtX[base+j] += xi * x[j-1]
		}
		s.XtY[i] += xi * y
	}
	s.SumY += y
	s.SumY2 += y * y
}

// Merge folds other (same D, disjoint rows) into s element-wise.
func (s *LinStats) Merge(other *LinStats) error {
	if s.D != other.D {
		return ErrShape
	}
	s.N += other.N
	for i := range s.XtX {
		s.XtX[i] += other.XtX[i]
	}
	for i := range s.XtY {
		s.XtY[i] += other.XtY[i]
	}
	s.SumY += other.SumY
	s.SumY2 += other.SumY2
	return nil
}

// FitParams solves the normal equations from the accumulated moments and
// returns the coefficients (intercept first) and R². Unlike FitLinInto
// there is no residual pass — ssRes is expanded from the moments as
// yᵀy − 2βᵀXᵀy + βᵀXᵀXβ and ssTot as Σy² − n·ȳ², each clamped at 0
// against cancellation — so the result is algebraically equal to, but
// not bitwise interchangeable with, a slice-based fit.
func (s *LinStats) FitParams() (beta []float64, gof float64, err error) {
	if s.N == 0 {
		return nil, 0, ErrEmpty
	}
	p := s.D + 1
	// solveFlat scribbles on its inputs; keep the accumulated moments.
	a := make([]float64, p*p)
	copy(a, s.XtX)
	for i := 1; i < p; i++ {
		for j := 0; j < i; j++ {
			a[i*p+j] = a[j*p+i]
		}
	}
	b := make([]float64, p)
	copy(b, s.XtY)
	beta = make([]float64, p)
	if err := solveFlat(a, b, p, beta); err != nil {
		return nil, 0, err
	}

	ssRes := s.SumY2
	for i := 0; i < p; i++ {
		ssRes -= 2 * beta[i] * s.XtY[i]
	}
	// Add stores only the upper triangle; read symmetrically.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			k := i*p + j
			if j < i {
				k = j*p + i
			}
			ssRes += beta[i] * beta[j] * s.XtX[k]
		}
	}
	if ssRes < 0 {
		ssRes = 0
	}
	mean := s.SumY / float64(s.N)
	ssTot := s.SumY2 - float64(s.N)*mean*mean
	if ssTot < 0 {
		ssTot = 0
	}
	switch {
	case ssTot == 0 && ssRes <= 1e-18:
		gof = 1
	case ssTot == 0:
		gof = 0
	default:
		gof = stats.Clamp01(1 - ssRes/ssTot)
	}
	return beta, gof, nil
}

// Fit materializes the linear Model described by FitParams output.
func (s *LinStats) Fit() (Model, error) {
	beta, gof, err := s.FitParams()
	if err != nil {
		return nil, err
	}
	return &linearModel{beta: beta, gof: gof}, nil
}
