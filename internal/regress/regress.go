// Package regress implements the two regression model families used by
// aggregate regression patterns: constant regression (prediction is the
// sample mean, goodness-of-fit via Pearson's chi-square test) and linear
// regression (ordinary least squares with any number of predictor
// variables, goodness-of-fit via the R² statistic). Both follow the
// definitions in Section 2.1 of the CAPE paper: GoF maps to [0, 1] and is
// 1 exactly when the model reproduces every observation.
package regress

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"cape/internal/stats"
)

// ModelType identifies a regression model family.
type ModelType uint8

const (
	// Const fits g(x) = β (a constant).
	Const ModelType = iota
	// Lin fits g(x) = β0 + Σ βi·xi (ordinary least squares).
	Lin
)

// AllModelTypes lists the supported model families.
var AllModelTypes = []ModelType{Const, Lin}

// String returns "Const" or "Lin".
func (m ModelType) String() string {
	switch m {
	case Const:
		return "Const"
	case Lin:
		return "Lin"
	default:
		return fmt.Sprintf("ModelType(%d)", uint8(m))
	}
}

// ParseModelType converts a name ("const"/"lin", case-insensitive) back to
// a ModelType.
func ParseModelType(s string) (ModelType, error) {
	switch strings.ToLower(s) {
	case "const", "constant":
		return Const, nil
	case "lin", "linear":
		return Lin, nil
	}
	return 0, fmt.Errorf("regress: unknown model type %q", s)
}

// Errors returned by Fit.
var (
	ErrEmpty    = errors.New("regress: empty training set")
	ErrShape    = errors.New("regress: predictor rows have inconsistent width")
	ErrSingular = errors.New("regress: singular design matrix")
)

// Model is a fitted regression model.
type Model interface {
	// Type reports the model family.
	Type() ModelType
	// Predict evaluates the prediction function at predictor vector x.
	// The length of x must match the training data width (Const models
	// accept any x).
	Predict(x []float64) float64
	// GoF is the goodness-of-fit in [0, 1] measured on the training set.
	GoF() float64
	// Params returns the fitted coefficients: [mean] for Const,
	// [β0, β1, ..., βd] for Lin.
	Params() []float64
}

// Fit trains a model of family mt on the dataset (xs, ys), where xs[i] is
// the predictor vector of observation i and ys[i] the observed dependent
// value. The model is fit over the full dataset (no train/test split) per
// the paper: regression is used to decide whether a trend describes the
// data, not to generalize.
func Fit(mt ModelType, xs [][]float64, ys []float64) (Model, error) {
	if len(ys) == 0 || len(xs) != len(ys) {
		return nil, ErrEmpty
	}
	switch mt {
	case Const:
		return fitConst(ys)
	case Lin:
		return fitLinear(xs, ys)
	default:
		return nil, fmt.Errorf("regress: unknown model type %d", mt)
	}
}

// constModel predicts the training mean everywhere.
type constModel struct {
	mean float64
	gof  float64
}

func (m *constModel) Type() ModelType             { return Const }
func (m *constModel) Predict(_ []float64) float64 { return m.mean }
func (m *constModel) GoF() float64                { return m.gof }
func (m *constModel) Params() []float64           { return []float64{m.mean} }

func (m *constModel) String() string {
	return fmt.Sprintf("Const(%.4g, gof=%.3f)", m.mean, m.gof)
}

// fitConst computes the mean and a chi-square goodness-of-fit. The GoF is
// the p-value of Pearson's statistic χ² = Σ (obs − mean)² / mean with
// n−1 degrees of freedom: 1 when every observation equals the mean,
// decreasing toward 0 as observations scatter. When the mean is not
// positive the chi-square test is undefined; we then report 1 for a
// perfect fit and 0 otherwise.
func fitConst(ys []float64) (Model, error) {
	mean := stats.Mean(ys)
	perfect := true
	for _, y := range ys {
		if y != mean {
			perfect = false
			break
		}
	}
	if perfect {
		return &constModel{mean: mean, gof: 1}, nil
	}
	if mean <= 0 {
		return &constModel{mean: mean, gof: 0}, nil
	}
	var chi2 float64
	for _, y := range ys {
		d := y - mean
		chi2 += d * d / mean
	}
	dof := float64(len(ys) - 1)
	if dof < 1 {
		dof = 1
	}
	p, err := stats.ChiSquareSF(chi2, dof)
	if err != nil {
		return nil, err
	}
	return &constModel{mean: mean, gof: stats.Clamp01(p)}, nil
}

// linearModel predicts β0 + Σ βi·xi.
type linearModel struct {
	beta []float64 // beta[0] is the intercept
	gof  float64
}

func (m *linearModel) Type() ModelType { return Lin }

func (m *linearModel) Predict(x []float64) float64 {
	y := m.beta[0]
	n := len(m.beta) - 1
	for i := 0; i < n && i < len(x); i++ {
		y += m.beta[i+1] * x[i]
	}
	return y
}

func (m *linearModel) GoF() float64      { return m.gof }
func (m *linearModel) Params() []float64 { return append([]float64(nil), m.beta...) }

func (m *linearModel) String() string {
	return fmt.Sprintf("Lin(%v, gof=%.3f)", m.beta, m.gof)
}

// fitLinear runs ordinary least squares with an intercept, solving the
// normal equations (XᵀX)β = Xᵀy by Gaussian elimination with partial
// pivoting. GoF is R² = 1 − SSres/SStot, clamped to [0, 1]; when the
// dependent variable is constant, R² is 1 for a perfect fit and 0
// otherwise.
func fitLinear(xs [][]float64, ys []float64) (Model, error) {
	n := len(ys)
	d := len(xs[0])
	for _, row := range xs {
		if len(row) != d {
			return nil, ErrShape
		}
	}
	p := d + 1 // intercept + predictors

	// Build XᵀX (p×p) and Xᵀy (p).
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	xi := make([]float64, p)
	for r := 0; r < n; r++ {
		xi[0] = 1
		copy(xi[1:], xs[r])
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				xtx[i][j] += xi[i] * xi[j]
			}
			xty[i] += xi[i] * ys[r]
		}
	}
	for i := 1; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}

	beta, err := solveLinearSystem(xtx, xty)
	if err != nil {
		return nil, err
	}

	m := &linearModel{beta: beta}
	var ssRes float64
	for r := 0; r < n; r++ {
		e := ys[r] - m.Predict(xs[r])
		ssRes += e * e
	}
	ssTot := stats.SumSquaredDev(ys)
	switch {
	case ssTot == 0 && ssRes <= 1e-18:
		m.gof = 1
	case ssTot == 0:
		m.gof = 0
	default:
		m.gof = stats.Clamp01(1 - ssRes/ssTot)
	}
	return m, nil
}

// solveLinearSystem solves A·x = b in place using Gaussian elimination
// with partial pivoting. A and b are modified. Returns ErrSingular when a
// pivot is (numerically) zero, which happens for collinear predictors or
// fewer distinct points than coefficients.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest absolute value.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a[r][col]); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a[col], a[pivot] = a[pivot], a[col]
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
