// Package regress implements the two regression model families used by
// aggregate regression patterns: constant regression (prediction is the
// sample mean, goodness-of-fit via Pearson's chi-square test) and linear
// regression (ordinary least squares with any number of predictor
// variables, goodness-of-fit via the R² statistic). Both follow the
// definitions in Section 2.1 of the CAPE paper: GoF maps to [0, 1] and is
// 1 exactly when the model reproduces every observation.
package regress

import (
	"errors"
	"fmt"
	"strings"
)

// ModelType identifies a regression model family.
type ModelType uint8

const (
	// Const fits g(x) = β (a constant).
	Const ModelType = iota
	// Lin fits g(x) = β0 + Σ βi·xi (ordinary least squares).
	Lin
)

// AllModelTypes lists the supported model families.
var AllModelTypes = []ModelType{Const, Lin}

// String returns "Const" or "Lin".
func (m ModelType) String() string {
	switch m {
	case Const:
		return "Const"
	case Lin:
		return "Lin"
	default:
		return fmt.Sprintf("ModelType(%d)", uint8(m))
	}
}

// ParseModelType converts a name ("const"/"lin", case-insensitive) back to
// a ModelType.
func ParseModelType(s string) (ModelType, error) {
	switch strings.ToLower(s) {
	case "const", "constant":
		return Const, nil
	case "lin", "linear":
		return Lin, nil
	}
	return 0, fmt.Errorf("regress: unknown model type %q", s)
}

// Errors returned by Fit.
var (
	ErrEmpty    = errors.New("regress: empty training set")
	ErrShape    = errors.New("regress: predictor rows have inconsistent width")
	ErrSingular = errors.New("regress: singular design matrix")
)

// Model is a fitted regression model.
type Model interface {
	// Type reports the model family.
	Type() ModelType
	// Predict evaluates the prediction function at predictor vector x.
	// The length of x must match the training data width (Const models
	// accept any x).
	Predict(x []float64) float64
	// GoF is the goodness-of-fit in [0, 1] measured on the training set.
	GoF() float64
	// Params returns the fitted coefficients: [mean] for Const,
	// [β0, β1, ..., βd] for Lin.
	Params() []float64
}

// Fit trains a model of family mt on the dataset (xs, ys), where xs[i] is
// the predictor vector of observation i and ys[i] the observed dependent
// value. The model is fit over the full dataset (no train/test split) per
// the paper: regression is used to decide whether a trend describes the
// data, not to generalize.
func Fit(mt ModelType, xs [][]float64, ys []float64) (Model, error) {
	if len(ys) == 0 || len(xs) != len(ys) {
		return nil, ErrEmpty
	}
	switch mt {
	case Const:
		return fitConst(ys)
	case Lin:
		return fitLinear(xs, ys)
	default:
		return nil, fmt.Errorf("regress: unknown model type %d", mt)
	}
}

// constModel predicts the training mean everywhere.
type constModel struct {
	mean float64
	gof  float64
}

func (m *constModel) Type() ModelType             { return Const }
func (m *constModel) Predict(_ []float64) float64 { return m.mean }
func (m *constModel) GoF() float64                { return m.gof }
func (m *constModel) Params() []float64           { return []float64{m.mean} }

func (m *constModel) String() string {
	return fmt.Sprintf("Const(%.4g, gof=%.3f)", m.mean, m.gof)
}

// fitConst computes the mean and a chi-square goodness-of-fit via the
// one-pass sufficient statistics (n, Σy, Σy², min, max): the GoF is the
// p-value of Pearson's statistic with n−1 degrees of freedom — 1 when
// every observation equals the mean, decreasing toward 0 as observations
// scatter. When the mean is not positive the chi-square test is
// undefined; we then report 1 for a perfect fit and 0 otherwise. The
// mining fast path accumulates the same ConstStats directly, so both
// paths produce identical models.
func fitConst(ys []float64) (Model, error) {
	var s ConstStats
	for _, y := range ys {
		s.Add(y)
	}
	return s.Fit()
}

// linearModel predicts β0 + Σ βi·xi.
type linearModel struct {
	beta []float64 // beta[0] is the intercept
	gof  float64
}

func (m *linearModel) Type() ModelType { return Lin }

func (m *linearModel) Predict(x []float64) float64 {
	y := m.beta[0]
	n := len(m.beta) - 1
	for i := 0; i < n && i < len(x); i++ {
		y += m.beta[i+1] * x[i]
	}
	return y
}

func (m *linearModel) GoF() float64      { return m.gof }
func (m *linearModel) Params() []float64 { return append([]float64(nil), m.beta...) }

func (m *linearModel) String() string {
	return fmt.Sprintf("Lin(%v, gof=%.3f)", m.beta, m.gof)
}

// fitLinear runs ordinary least squares with an intercept by flattening
// the predictor rows and delegating to FitLinFlat, which solves the
// normal equations (XᵀX)β = Xᵀy by Gaussian elimination with partial
// pivoting. GoF is R² = 1 − SSres/SStot, clamped to [0, 1]; when the
// dependent variable is constant, R² is 1 for a perfect fit and 0
// otherwise. The mining fast path calls FitLinFlat directly on a buffer
// it gathers itself, so both paths produce identical models.
func fitLinear(xs [][]float64, ys []float64) (Model, error) {
	d := len(xs[0])
	for _, row := range xs {
		if len(row) != d {
			return nil, ErrShape
		}
	}
	flat := make([]float64, 0, len(xs)*d)
	for _, row := range xs {
		flat = append(flat, row...)
	}
	return FitLinFlat(flat, d, ys, nil)
}
