package regress

import "testing"

func TestFromParamsConst(t *testing.T) {
	m, err := FromParams(Const, []float64{4.5}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(nil) != 4.5 || m.GoF() != 0.9 || m.Type() != Const {
		t.Errorf("reconstructed Const wrong: %v %v %v", m.Predict(nil), m.GoF(), m.Type())
	}
}

func TestFromParamsLin(t *testing.T) {
	m, err := FromParams(Lin, []float64{1, 2, -3}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{2, 1}); got != 1+4-3 {
		t.Errorf("reconstructed Lin predicts %g, want 2", got)
	}
	if m.Type() != Lin {
		t.Error("wrong type")
	}
	// Params must be a copy, not aliased to internal state.
	p := m.Params()
	p[0] = 99
	if m.Predict([]float64{0, 0}) != 1 {
		t.Error("Params() aliased internal state")
	}
}

func TestFromParamsErrors(t *testing.T) {
	if _, err := FromParams(Const, []float64{1, 2}, 0.5); err == nil {
		t.Error("Const with 2 params should error")
	}
	if _, err := FromParams(Lin, []float64{1}, 0.5); err == nil {
		t.Error("Lin with 1 param should error")
	}
	if _, err := FromParams(Const, []float64{1}, -0.1); err == nil {
		t.Error("negative GoF should error")
	}
	if _, err := FromParams(Const, []float64{1}, 1.1); err == nil {
		t.Error("GoF > 1 should error")
	}
	if _, err := FromParams(ModelType(9), []float64{1}, 0.5); err == nil {
		t.Error("unknown type should error")
	}
}
