package regress

import (
	"math"
	"math/rand"
	"testing"
)

func near(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestConstStatsMerge pins the merge algebra: N/Min/Max combine exactly,
// the float sums reassociate (equal to a one-pass fold up to rounding),
// and merging with an empty side is the identity.
func TestConstStatsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ys := make([]float64, 257)
	for i := range ys {
		ys[i] = rng.NormFloat64()*3 + 10
	}
	for _, cut := range []int{0, 1, 100, 256, 257} {
		var whole, left, right ConstStats
		for _, y := range ys {
			whole.Add(y)
		}
		for _, y := range ys[:cut] {
			left.Add(y)
		}
		for _, y := range ys[cut:] {
			right.Add(y)
		}
		left.Merge(right)
		if left.N != whole.N || left.Min != whole.Min || left.Max != whole.Max {
			t.Fatalf("cut %d: exact fields diverge: %+v vs %+v", cut, left, whole)
		}
		if !near(left.Sum, whole.Sum, 1e-12) || !near(left.SumSq, whole.SumSq, 1e-12) {
			t.Fatalf("cut %d: sums diverge: %+v vs %+v", cut, left, whole)
		}
		mMean, mGof, err := left.FitParams()
		if err != nil {
			t.Fatal(err)
		}
		wMean, wGof, err := whole.FitParams()
		if err != nil {
			t.Fatal(err)
		}
		if !near(mMean, wMean, 1e-12) || !near(mGof, wGof, 1e-9) {
			t.Fatalf("cut %d: fit diverges: (%v,%v) vs (%v,%v)", cut, mMean, mGof, wMean, wGof)
		}
	}
}

// TestLinStatsMatchesFitLin pins that the moment-based fit agrees with
// the residual-pass fit on the same data, within floating tolerance.
func TestLinStatsMatchesFitLin(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, d = 300, 2
	xs := make([]float64, n*d)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 5
		xs[i*d], xs[i*d+1] = x0, x1
		ys[i] = 3 + 2*x0 - 1.5*x1 + rng.NormFloat64()*0.1
	}
	st := NewLinStats(d)
	for i := 0; i < n; i++ {
		st.Add(xs[i*d:(i+1)*d], ys[i])
	}
	beta, gof, err := st.FitParams()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FitLinFlat(xs, d, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range ref.Params() {
		if !near(beta[i], b, 1e-9) {
			t.Fatalf("beta[%d] = %v, reference %v", i, beta[i], b)
		}
	}
	if !near(gof, ref.GoF(), 1e-9) {
		t.Fatalf("gof = %v, reference %v", gof, ref.GoF())
	}
	m, err := st.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1, 1}); !near(got, beta[0]+beta[1]+beta[2], 1e-12) {
		t.Fatalf("materialized model predicts %v", got)
	}
}

// TestLinStatsMerge pins that merging disjoint halves equals the
// one-pass accumulation up to rounding, and that shape mismatches and
// degenerate systems surface the usual errors.
func TestLinStatsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, d = 128, 1
	xs := make([]float64, n*d)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		ys[i] = 5 + 0.25*xs[i] + rng.NormFloat64()
	}
	whole := NewLinStats(d)
	left := NewLinStats(d)
	right := NewLinStats(d)
	for i := 0; i < n; i++ {
		whole.Add(xs[i*d:(i+1)*d], ys[i])
		if i < n/3 {
			left.Add(xs[i*d:(i+1)*d], ys[i])
		} else {
			right.Add(xs[i*d:(i+1)*d], ys[i])
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if left.N != whole.N {
		t.Fatalf("merged N = %d, want %d", left.N, whole.N)
	}
	mb, mg, err := left.FitParams()
	if err != nil {
		t.Fatal(err)
	}
	wb, wg, err := whole.FitParams()
	if err != nil {
		t.Fatal(err)
	}
	for i := range mb {
		if !near(mb[i], wb[i], 1e-9) {
			t.Fatalf("beta[%d]: merged %v vs whole %v", i, mb[i], wb[i])
		}
	}
	if !near(mg, wg, 1e-9) {
		t.Fatalf("gof: merged %v vs whole %v", mg, wg)
	}

	if err := left.Merge(NewLinStats(d + 1)); err != ErrShape {
		t.Fatalf("dimension mismatch: got %v, want ErrShape", err)
	}
	empty := NewLinStats(d)
	if _, _, err := empty.FitParams(); err != ErrEmpty {
		t.Fatalf("empty fit: got %v, want ErrEmpty", err)
	}
	deg := NewLinStats(d)
	deg.Add([]float64{2}, 1) // one point cannot determine two coefficients
	if _, _, err := deg.FitParams(); err != ErrSingular {
		t.Fatalf("degenerate fit: got %v, want ErrSingular", err)
	}

	reset := NewLinStats(d)
	reset.Add([]float64{1}, 2)
	reset.Reset()
	if reset.N != 0 || reset.SumY != 0 || reset.XtX[0] != 0 {
		t.Fatalf("Reset left state behind: %+v", reset)
	}
}
